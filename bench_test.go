package repro

// One benchmark per table and figure of the paper's evaluation (§VI).
// Each sub-benchmark runs the full simulated measurement (an IMB-style
// off-cache timing on the named machine) and reports the simulated
// operation latency as sim_us/op next to the usual wall-clock ns/op; the
// wall-clock time is the cost of running the simulator, the simulated time
// is the reproduced datum.
//
//	go test -bench=. -benchmem
//
// cmd/imb and cmd/asp print the same data as normalized tables in the
// paper's format.

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/topology"
)

func machines() []*topology.Machine {
	return []*topology.Machine{topology.Zoot(), topology.Dancer(), topology.Saturn(), topology.IG()}
}

func benchOp(b *testing.B, op bench.Op, sizes []int64) {
	b.Helper()
	for _, m := range machines() {
		for _, c := range bench.PaperComponents() {
			for _, sz := range sizes {
				name := fmt.Sprintf("%s/%s/%s", m.Name, c.Name, sizeLabel(sz))
				b.Run(name, func(b *testing.B) {
					var sim float64
					for i := 0; i < b.N; i++ {
						res := bench.MustMeasure(bench.Config{
							Machine: m, Comp: c, Op: op, Size: sz, Iters: 1, OffCache: true,
						})
						sim = res.Seconds
					}
					b.ReportMetric(sim*1e6, "sim_us/op")
				})
			}
		}
	}
}

func sizeLabel(sz int64) string {
	if sz >= 1<<20 {
		return fmt.Sprintf("%dM", sz>>20)
	}
	return fmt.Sprintf("%dK", sz>>10)
}

// BenchmarkFig4 regenerates Figure 4: pipeline-size tuning of the
// hierarchical pipelined Broadcast on IG (linear baseline, unpipelined
// hierarchy, and representative segment sizes).
func BenchmarkFig4(b *testing.B) {
	m := topology.IG()
	comps := []bench.Comp{
		bench.KNEMCollCfg("linear", core.Config{Mode: core.ModeLinear}),
		bench.KNEMCollCfg("no-pipeline", core.Config{Mode: core.ModeHierarchical, NoPipeline: true}),
		bench.KNEMCollCfg("seg4K", core.Config{Mode: core.ModeHierarchical, FixedSeg: 4 << 10}),
		bench.KNEMCollCfg("seg16K", core.Config{Mode: core.ModeHierarchical, FixedSeg: 16 << 10}),
		bench.KNEMCollCfg("seg512K", core.Config{Mode: core.ModeHierarchical, FixedSeg: 512 << 10}),
		bench.KNEMCollCfg("seg2M", core.Config{Mode: core.ModeHierarchical, FixedSeg: 2 << 20}),
	}
	for _, c := range comps {
		for _, sz := range []int64{512 << 10, 2 << 20, 8 << 20} {
			b.Run(fmt.Sprintf("%s/%s", c.Name, sizeLabel(sz)), func(b *testing.B) {
				var sim float64
				for i := 0; i < b.N; i++ {
					res := bench.MustMeasure(bench.Config{
						Machine: m, Comp: c, Op: bench.OpBcast, Size: sz, Iters: 1, OffCache: true,
					})
					sim = res.Seconds
				}
				b.ReportMetric(sim*1e6, "sim_us/op")
			})
		}
	}
}

// BenchmarkFig5 regenerates Figure 5: Broadcast on all four platforms.
func BenchmarkFig5(b *testing.B) {
	benchOp(b, bench.OpBcast, []int64{64 << 10, 1 << 20, 8 << 20})
}

// BenchmarkFig6 regenerates Figure 6: Gather on all four platforms.
func BenchmarkFig6(b *testing.B) {
	benchOp(b, bench.OpGather, []int64{64 << 10, 1 << 20})
}

// BenchmarkScatter regenerates the §VI-C Scatter comparison.
func BenchmarkScatter(b *testing.B) {
	benchOp(b, bench.OpScatter, []int64{64 << 10, 1 << 20})
}

// BenchmarkFig7 regenerates Figure 7: Alltoallv on all four platforms.
func BenchmarkFig7(b *testing.B) {
	benchOp(b, bench.OpAlltoallv, []int64{64 << 10, 256 << 10})
}

// BenchmarkFig8 regenerates Figure 8: Allgather on all four platforms.
func BenchmarkFig8(b *testing.B) {
	benchOp(b, bench.OpAllgather, []int64{64 << 10, 256 << 10})
}

// BenchmarkTable1 regenerates Table I: the ASP application's Bcast and
// total time under Open MPI, MPICH2, and KNEM-Coll, on Zoot and IG.
func BenchmarkTable1(b *testing.B) {
	for _, job := range []struct {
		m *topology.Machine
		n int
	}{{topology.Zoot(), 16384}, {topology.IG(), 32768}} {
		b.Run(job.m.Name, func(b *testing.B) {
			var res bench.Table1Result
			for i := 0; i < b.N; i++ {
				res = bench.RunTable1(job.m, job.n, 48)
			}
			knem := res.Rows[len(res.Rows)-1]
			b.ReportMetric(knem.Bcast, "sim_bcast_s")
			b.ReportMetric(knem.Total, "sim_total_s")
			b.ReportMetric(res.BcastImprovement, "bcast_improvement_%")
		})
	}
}

// BenchmarkRingAllgatherAblation measures the §VI-D "next release" fix:
// the ring-style KNEM Allgather against the paper's Gather+Bcast
// composition on the large NUMA node.
func BenchmarkRingAllgatherAblation(b *testing.B) {
	m := topology.IG()
	for _, c := range []bench.Comp{
		bench.KNEMCollCfg("gather+bcast", core.Config{}),
		bench.KNEMCollCfg("ring", core.Config{RingAllgather: true}),
	} {
		b.Run(c.Name, func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				res := bench.MustMeasure(bench.Config{
					Machine: m, Comp: c, Op: bench.OpAllgather, Size: 256 << 10, Iters: 1, OffCache: true,
				})
				sim = res.Seconds
			}
			b.ReportMetric(sim*1e6, "sim_us/op")
		})
	}
}

// BenchmarkScalability measures the §I scaling claim: Broadcast cost
// versus rank count on IG for the default Open MPI stack and KNEM-Coll.
func BenchmarkScalability(b *testing.B) {
	m := topology.IG()
	for _, c := range []bench.Comp{bench.TunedSM(), bench.KNEMColl()} {
		for _, np := range []int{8, 24, 48} {
			b.Run(fmt.Sprintf("%s/np%d", c.Name, np), func(b *testing.B) {
				var sim float64
				for i := 0; i < b.N; i++ {
					res := bench.MustMeasure(bench.Config{
						Machine: m, NP: np, Comp: c, Op: bench.OpBcast,
						Size: 1 << 20, Iters: 1, OffCache: true,
					})
					sim = res.Seconds
				}
				b.ReportMetric(sim*1e6, "sim_us/op")
			})
		}
	}
}
