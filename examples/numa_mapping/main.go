// NUMA mapping: how rank-to-core placement changes collective cost — the
// §I observation that NUMA-oblivious load patterns "crash into the memory
// wall". The same 12-rank Gather on IG runs packed (filling two NUMA
// domains) and scattered (spread across all eight), with both a
// topology-aware and a topology-oblivious component.
//
//	go run ./examples/numa_mapping
package main

import (
	"fmt"

	"repro/internal/coll/tuned"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/topology"
)

func main() {
	m := topology.IG()
	const np = 12
	const blk = 512 << 10

	packed := make([]int, np) // ranks fill domains 0 and 1
	for i := range packed {
		packed[i] = i
	}
	scattered := make([]int, np) // one or two ranks per domain
	for i := range scattered {
		scattered[i] = (i%8)*6 + i/8
	}

	run := func(label string, mapping []int, coll func(w *mpi.World) mpi.Coll) float64 {
		var worst float64
		_, _, err := mpi.Run(mpi.Options{
			Machine: m, NP: np, Mapping: mapping, Coll: coll,
		}, func(r *mpi.Rank) {
			send := r.Alloc(blk)
			var recv = send.Whole() // placeholder; root allocates real target
			if r.ID() == 0 {
				recv = r.Alloc(np * blk).Whole()
			}
			r.Barrier()
			t0 := r.Now()
			if r.ID() == 0 {
				r.Gather(send.Whole(), recv, 0)
			} else {
				r.Gather(send.Whole(), recv.SubView(0, 0), 0)
			}
			if d := r.Now() - t0; d > worst {
				worst = d
			}
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %-34s %9.1f us\n", label, worst*1e6)
		return worst
	}

	fmt.Printf("Gather of %d KiB blocks from %d ranks on %s:\n\n", blk>>10, np, m.Name)
	fmt.Println("packed placement (2 NUMA domains busy):")
	run("Tuned over SM", packed, tuned.New)
	run("KNEM-Coll", packed, core.New)
	fmt.Println("scattered placement (all 8 domains busy):")
	run("Tuned over SM", scattered, tuned.New)
	run("KNEM-Coll", scattered, core.New)
	fmt.Println("\nScattering the ranks spreads the source reads across all memory")
	fmt.Println("controllers; the root's bus (and with Tuned, the root core) remains")
	fmt.Println("the choke point either way — which is what direction control relieves.")
}
