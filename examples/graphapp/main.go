// Graph application: the paper's showcase (§VI-E) end to end. Solves
// all-pairs-shortest-paths on a random directed graph with the distributed
// Floyd-Warshall solver (ASP), with real data, verifies the result against
// the sequential solver, and reports how much time each collective
// component spent broadcasting pivot rows.
//
//	go run ./examples/graphapp
package main

import (
	"fmt"

	"repro/internal/asp"
	"repro/internal/coll/tuned"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/topology"
)

func main() {
	const n = 96 // matrix dimension: small enough for real data + verification
	machine := topology.Dancer()
	want := asp.Sequential(asp.Generate(n, 42), n)

	type config struct {
		label string
		coll  func(w *mpi.World) mpi.Coll
	}
	// At this (verifiable) scale a pivot row is only 4*n bytes, below the
	// component's usual 16 KiB threshold, so the KNEM path is enabled by
	// lowering the threshold — the point here is end-to-end correctness
	// through the kernel-assisted path; cmd/asp reproduces the paper-scale
	// timing study.
	knem := func(w *mpi.World) mpi.Coll {
		return core.NewWithConfig(w, core.Config{Threshold: 256})
	}
	for _, cfg := range []config{
		{"Tuned over SM", tuned.New},
		{"KNEM-Coll", knem},
	} {
		var bcast, total float64
		mismatches := 0
		_, _, err := mpi.Run(mpi.Options{
			Machine:  machine,
			Coll:     cfg.coll,
			WithData: true,
		}, func(r *mpi.Rank) {
			res := asp.Run(r, asp.Config{N: n, Seed: 42}, asp.Generate(n, 42))
			for i := res.Lo; i < res.Hi; i++ {
				for j := 0; j < n; j++ {
					if res.Dist[(i-res.Lo)*n+j] != want[i*n+j] {
						mismatches++
					}
				}
			}
			if res.BcastSeconds > bcast {
				bcast = res.BcastSeconds
			}
			if res.TotalSeconds > total {
				total = res.TotalSeconds
			}
		})
		if err != nil {
			panic(err)
		}
		status := "verified against sequential solver"
		if mismatches > 0 {
			status = fmt.Sprintf("%d MISMATCHES", mismatches)
		}
		fmt.Printf("%-14s bcast %8.1f us, total %8.1f us — %s\n",
			cfg.label, bcast*1e6, total*1e6, status)
	}
}
