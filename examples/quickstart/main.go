// Quickstart: broadcast 1 MiB across the 48 cores of the simulated IG
// machine with the paper's KNEM collective component, and compare against
// Open MPI's default (Tuned over copy-in/copy-out shared memory).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/coll/tuned"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/topology"
)

func main() {
	machine := topology.IG()
	const size = 1 << 20

	run := func(label string, coll func(w *mpi.World) mpi.Coll, btl mpi.BTLKind) float64 {
		var elapsed float64
		_, w, err := mpi.Run(mpi.Options{
			Machine: machine,
			BTL:     btl,
			Coll:    coll,
		}, func(r *mpi.Rank) {
			buf := r.Alloc(size) // lands on this rank's NUMA domain
			r.Barrier()
			t0 := r.Now()
			r.Bcast(buf.Whole(), 0)
			if d := r.Now() - t0; d > elapsed {
				elapsed = d
			}
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-22s %8.1f us   (%d memory copies, %d KNEM registrations)\n",
			label, elapsed*1e6, w.Stats().Copies, w.Stats().Registrations)
		return elapsed
	}

	fmt.Printf("Broadcast of %d KiB to %d ranks on %s\n\n", size>>10, machine.NCores(), machine.Name)
	t1 := run("Tuned over SM", tuned.New, mpi.BTLSM)
	t2 := run("KNEM-Coll", core.New, mpi.BTLSM)
	fmt.Printf("\nKNEM-Coll speedup: %.2fx\n", t1/t2)
}
