// Sample sort: a second collective-heavy application on top of the
// simulated MPI stack. Each rank sorts a share of random keys, splitters
// are agreed through Allgather, and the keys are redistributed with a
// data-dependent Alltoallv — the irregular exchange of the paper's
// Figure 7 — before a final local merge. The distributed result is
// verified against a sequential sort.
//
//	go run ./examples/samplesort
package main

import (
	"fmt"

	"repro/internal/coll/tuned"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/samplesort"
	"repro/internal/topology"
)

func main() {
	m := topology.IG()
	cfg := samplesort.Config{KeysPerRank: 40_000, Seed: 17}
	np := 16

	for _, c := range []struct {
		label string
		coll  func(w *mpi.World) mpi.Coll
	}{
		{"Tuned over SM", tuned.New},
		{"KNEM-Coll", core.New},
	} {
		results := make([]samplesort.Result, np)
		var worst float64
		_, _, err := mpi.Run(mpi.Options{
			Machine: m, NP: np, Coll: c.coll, WithData: true,
		}, func(r *mpi.Rank) {
			results[r.ID()] = samplesort.Run(r, cfg)
			if results[r.ID()].Seconds > worst {
				worst = results[r.ID()].Seconds
			}
		})
		if err != nil {
			panic(err)
		}
		status := "verified"
		if !samplesort.Verify(cfg, np, results) {
			status = "FAILED"
		}
		fmt.Printf("%-14s %d ranks x %d keys: %8.2f ms simulated — %s\n",
			c.label, np, cfg.KeysPerRank, worst*1e3, status)
	}
}
