// Alltoall schedule: visualize the rotated access pattern of the KNEM
// Alltoall (the paper's Figure 3) and measure what the rotation is worth
// against a naive schedule where every rank reads peers in rank order
// (everyone hammering sender 0, then sender 1, ...).
//
//	go run ./examples/alltoall_schedule
package main

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/topology"
)

func main() {
	// The schedule itself, for 4 processes as in Fig. 3: entry [r][k] is
	// the peer whose send buffer rank r reads at step k.
	const p = 4
	fmt.Println("Rotated KNEM Alltoall schedule (Fig. 3), 4 processes:")
	fmt.Println("step:      1  2  3")
	for r := 0; r < p; r++ {
		fmt.Printf("rank %d:   ", r)
		for k := 1; k < p; k++ {
			fmt.Printf("%2d ", (r+k)%p)
		}
		fmt.Println()
	}
	fmt.Println("\nAt every step each sender's memory is read by exactly one peer,")
	fmt.Println("so no send buffer's NUMA node ever serves two streams at once.")

	// Measure the real thing on Dancer: KNEM-Coll (rotated) vs the
	// linear Basic component (all pairs at once, no schedule) and the
	// pairwise Tuned-KNEM (synchronized rounds).
	m := topology.Dancer()
	const blk = 512 << 10
	fmt.Printf("\nAlltoall with %d KiB blocks on %s (%d ranks):\n", blk>>10, m.Name, m.NCores())
	for _, c := range []bench.Comp{bench.KNEMColl(), bench.TunedKNEM(), bench.BasicSM(), bench.TunedSM()} {
		res := bench.MustMeasure(bench.Config{
			Machine: m, Comp: c, Op: bench.OpAlltoall, Size: blk, Iters: 2, OffCache: true,
		})
		fmt.Printf("  %-12s %9.1f us\n", c.Name, res.Seconds*1e6)
	}
}
