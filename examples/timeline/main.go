// Timeline: trace every memory copy of a 2 MiB broadcast on IG and render
// a per-core Gantt chart, making the paper's Fig. 1 progression visible:
// the linear algorithm serializes on the root's memory node, while the
// hierarchical pipelined algorithm overlaps the leader transfers with the
// leaf copies inside each NUMA node.
//
//	go run ./examples/timeline
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/topology"
	"repro/internal/trace"
)

func main() {
	m := topology.IG()
	const size = 2 << 20

	for _, cfg := range []struct {
		label string
		mode  core.Mode
	}{
		{"linear KNEM Broadcast", core.ModeLinear},
		{"hierarchical pipelined KNEM Broadcast", core.ModeHierarchical},
	} {
		tl := &trace.Timeline{}
		_, _, err := mpi.Run(mpi.Options{
			Machine:  m,
			NP:       12, // 2 ranks per NUMA domain keeps the chart readable
			Mapping:  spread(m, 12),
			Coll:     knem(cfg.mode),
			Timeline: tl,
		}, func(r *mpi.Rank) {
			b := r.Alloc(size)
			r.Bcast(b.Whole(), 0)
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("\n== %s (2 MiB, 12 ranks on IG) ==\n", cfg.label)
		tl.Gantt(os.Stdout, 72)
	}
	fmt.Println("\nLanes are core copy engines; shading is busy fraction per time bucket.")
}

func knem(mode core.Mode) func(w *mpi.World) mpi.Coll {
	return func(w *mpi.World) mpi.Coll {
		return core.NewWithConfig(w, core.Config{Mode: mode})
	}
}

// spread distributes np ranks round-robin over the machine's domains.
func spread(m *topology.Machine, np int) []int {
	mapping := make([]int, 0, np)
	next := make([]int, len(m.Domains))
	for len(mapping) < np {
		d := len(mapping) % len(m.Domains)
		mapping = append(mapping, m.Domains[d].Cores[next[d]].ID)
		next[d]++
	}
	return mapping
}
