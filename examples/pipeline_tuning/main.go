// Pipeline tuning: explore the segment-size trade-off of the hierarchical
// pipelined KNEM Broadcast on IG, the experiment behind the paper's
// Figure 4. Too small a segment pays per-segment kernel and signalling
// overhead; too large a segment loses the overlap between the
// leader-from-root transfers and the leaf-from-leader copies.
//
//	go run ./examples/pipeline_tuning
package main

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/topology"
)

func main() {
	mach := "IG"
	m := topology.ByName(mach)
	sizes := []int64{512 << 10, 2 << 20, 8 << 20}
	segs := []int64{4 << 10, 16 << 10, 64 << 10, 512 << 10, 2 << 20}

	fmt.Printf("Hierarchical pipelined Broadcast on %s (48 ranks), normalized to no-pipeline (lower is better)\n\n", mach)
	fmt.Printf("%10s %12s %12s", "message", "linear", "no-pipe")
	for _, s := range segs {
		fmt.Printf(" %9s", label(s))
	}
	fmt.Println()

	for _, sz := range sizes {
		base := measure(m, core.Config{Mode: core.ModeHierarchical, NoPipeline: true}, sz)
		lin := measure(m, core.Config{Mode: core.ModeLinear}, sz)
		fmt.Printf("%10s %11.2fx %11.2fx", label(sz), lin/base, 1.0)
		best := ""
		bestV := 1e18
		for _, s := range segs {
			v := measure(m, core.Config{Mode: core.ModeHierarchical, FixedSeg: s}, sz)
			if v < bestV {
				bestV, best = v, label(s)
			}
			fmt.Printf(" %8.2fx", v/base)
		}
		fmt.Printf("   best: %s\n", best)
	}
	fmt.Println("\nThe paper settles on 16KB segments for intermediate messages and 512KB for")
	fmt.Println("large ones (>= 2MB); those are the defaults of core.Config.")
}

func measure(m *topology.Machine, cfg core.Config, size int64) float64 {
	res := bench.MustMeasure(bench.Config{
		Machine: m, Comp: bench.KNEMCollCfg("x", cfg),
		Op: bench.OpBcast, Size: size, Iters: 2, OffCache: true,
	})
	return res.Seconds
}

func label(n int64) string {
	if n >= 1<<20 {
		return fmt.Sprintf("%dMB", n>>20)
	}
	return fmt.Sprintf("%dKB", n>>10)
}
