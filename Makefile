GO ?= go

.PHONY: all check test test-race vet fuzz-short bench figures table1 results clean

all: test vet

check: test vet test-race fuzz-short

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...
	gofmt -l .

# A short deterministic-ish shake of every fuzz target; run the targets
# individually with a longer -fuzztime to dig.
fuzz-short:
	$(GO) test -run=NONE -fuzz=FuzzVectorRegion -fuzztime=10s ./internal/knem
	$(GO) test -run=NONE -fuzz=FuzzParseMachine -fuzztime=10s ./internal/topology

bench:
	GOMAXPROCS=1 $(GO) test -bench=. -benchmem -benchtime=1x ./...

# Regenerate every recorded artifact under results/.
results:
	GOMAXPROCS=1 $(GO) run ./cmd/imb -fig all -iters 1 > results/figures.txt
	GOMAXPROCS=1 $(GO) run ./cmd/asp -sample 512 > results/table1.txt
	GOMAXPROCS=1 $(GO) run ./cmd/imb -ablation -iters 2 > results/ablations.txt
	GOMAXPROCS=1 $(GO) run ./cmd/imb -scalability -machine IG -op bcast -sizes 1M -iters 2 > results/scalability.txt

clean:
	$(GO) clean ./...
