GO ?= go

# Extra flags for the simbench trajectory runs. CI passes
# SIMBENCH_FLAGS="-min-cpus 2" so the bench gate fails (rather than
# silently measuring a degenerate trajectory) on single-core runners.
SIMBENCH_FLAGS ?=

.PHONY: all check test test-race vet fuzz-short bench bench-smoke bench-diff cluster-smoke scale-smoke simd-smoke figures table1 results tune-smoke profile clean

all: test vet

check: test vet test-race fuzz-short

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...
	gofmt -l .

# A short deterministic-ish shake of every fuzz target; run the targets
# individually with a longer -fuzztime to dig.
fuzz-short:
	$(GO) test -run=NONE -fuzz=FuzzVectorRegion -fuzztime=10s ./internal/knem
	$(GO) test -run=NONE -fuzz=FuzzParseMachine -fuzztime=10s ./internal/topology
	$(GO) test -run=NONE -fuzz=FuzzClusterConfig -fuzztime=10s ./internal/topology
	$(GO) test -run=NONE -fuzz=FuzzDecisionTable -fuzztime=10s ./internal/tune
	$(GO) test -run=NONE -fuzz=FuzzEventQueue -fuzztime=10s ./internal/sim

bench:
	$(GO) test -bench=. -benchmem -benchtime=100ms ./internal/sim ./internal/memsim
	$(GO) run ./cmd/simbench $(SIMBENCH_FLAGS) -o BENCH_sim.json

# Regression gate: re-measure the full trajectory and fail if the process
# handoff (sim/park_wake) or the sequential sweep wall clock regressed more
# than 25% against the committed BENCH_sim.json. The fresh report lands in
# /tmp so the committed baseline stays the comparison point; `make bench`
# rewrites the baseline deliberately.
bench-smoke:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...
	$(GO) run ./cmd/simbench $(SIMBENCH_FLAGS) -check BENCH_sim.json -tolerance 0.25 -o /tmp/BENCH_sim.current.json

# Print the old-vs-new delta table between the committed baseline and the
# report bench-smoke just measured (run bench-smoke first).
bench-diff:
	$(GO) run ./cmd/simbench -diff BENCH_sim.json /tmp/BENCH_sim.current.json

# Regenerate every recorded artifact under results/. Output is byte-identical
# at any -parallel level (see internal/bench/parallel.go); the sweeps are
# pinned to -parallel 4 so multi-core hosts regenerate faster. Every cell
# goes through the run memoization cache (default on), so a repeated
# `make results` with no simulator change is served almost entirely from
# disk; pass -no-cache through the tools to force re-simulation.
figures:
	$(GO) run ./cmd/imb -parallel 4 -fig all -iters 1 > results/figures.txt

table1:
	$(GO) run ./cmd/asp -parallel 4 -sample 512 > results/table1.txt

results: figures table1
	$(GO) run ./cmd/imb -parallel 4 -ablation -iters 2 > results/ablations.txt
	$(GO) run ./cmd/imb -parallel 4 -scalability -machine IG -op bcast -sizes 1M -iters 2 > results/scalability.txt

# Profile the simulator hot paths: the simbench trajectory (flow churn,
# cache model, coroutine handoff) and a small uncached IMB sweep (the full
# collective stack) under both the CPU and allocation profilers, then print
# a top-10 summary of each. Raw profiles land in profile/ for
# `go tool pprof -http` digs; the allocation summary of a healthy hot path
# attributes (almost) everything to setup, not the copy loop.
profile:
	mkdir -p profile
	$(GO) run ./cmd/simbench $(SIMBENCH_FLAGS) -cpuprofile profile/sim.cpu.pprof -memprofile profile/sim.mem.pprof -o profile/BENCH_sim.profile.json
	$(GO) run ./cmd/imb -no-cache -op bcast -machine Dancer -sizes 64K,1M -iters 2 -cpuprofile profile/imb.cpu.pprof -memprofile profile/imb.mem.pprof > /dev/null
	$(GO) tool pprof -top -nodecount=10 profile/sim.cpu.pprof
	$(GO) tool pprof -top -nodecount=10 -sample_index=alloc_space profile/sim.mem.pprof
	$(GO) tool pprof -top -nodecount=10 profile/imb.cpu.pprof
	$(GO) tool pprof -top -nodecount=10 -sample_index=alloc_space profile/imb.mem.pprof

# Autotuner smoke: search a tiny grid twice at different parallelism
# levels with the sim cache off, assert the emitted tables are
# byte-identical; then twice more against a fresh cache directory (first
# run populates, second is served entirely from disk) and assert both
# match the uncached table byte-for-byte — the memoization determinism
# guard. Finally validate the result (including the committed IG table)
# with `tune show`.
tune-smoke:
	$(GO) run ./cmd/tune search -machine Zoot -ops bcast,gather -sizes 64K,256K,1M -parallel 1 -q -no-cache -o /tmp/tune-smoke-a.json
	$(GO) run ./cmd/tune search -machine Zoot -ops bcast,gather -sizes 64K,256K,1M -parallel 4 -q -no-cache -o /tmp/tune-smoke-b.json
	cmp /tmp/tune-smoke-a.json /tmp/tune-smoke-b.json
	rm -rf /tmp/tune-smoke-cache
	$(GO) run ./cmd/tune search -machine Zoot -ops bcast,gather -sizes 64K,256K,1M -parallel 4 -q -cache-dir /tmp/tune-smoke-cache -o /tmp/tune-smoke-c.json
	$(GO) run ./cmd/tune search -machine Zoot -ops bcast,gather -sizes 64K,256K,1M -parallel 4 -q -cache-dir /tmp/tune-smoke-cache -o /tmp/tune-smoke-d.json
	cmp /tmp/tune-smoke-a.json /tmp/tune-smoke-c.json
	cmp /tmp/tune-smoke-c.json /tmp/tune-smoke-d.json
	$(GO) run ./cmd/tune show -machine Zoot /tmp/tune-smoke-a.json > /dev/null
	$(GO) run ./cmd/tune show -machine IG machines/ig.tune.json > /dev/null
	$(GO) run ./cmd/tune diff -defaults machines/ig.tune.json

# Cluster smoke: compile the example cluster, then run the same small
# hierarchical sweep through a fresh memo cache at -parallel 1 and 4. The
# tables must be byte-identical, and the second run must be served 100%
# from the cache (0 misses) — cluster cells memoize like any other cell.
cluster-smoke:
	$(GO) run ./cmd/topo -cluster machines/cluster4.cluster
	rm -rf /tmp/cluster-smoke-cache
	$(GO) run ./cmd/imb -cluster machines/cluster4.cluster -op bcast -sizes 64K,1M -iters 1 -parallel 1 -cache-dir /tmp/cluster-smoke-cache > /tmp/cluster-smoke-a.txt
	$(GO) run ./cmd/imb -cluster machines/cluster4.cluster -op bcast -sizes 64K,1M -iters 1 -parallel 4 -cache-dir /tmp/cluster-smoke-cache > /tmp/cluster-smoke-b.txt 2>/tmp/cluster-smoke-b.err
	cmp /tmp/cluster-smoke-a.txt /tmp/cluster-smoke-b.txt
	grep -q ", 0 misses" /tmp/cluster-smoke-b.err

# Many-core scaling smoke: drive the 512-core synthetic machine (the
# engine-scaling stress cell) end to end under the race detector, at
# -parallel 1 and -parallel 4 with the memo cache off so both runs truly
# simulate — the sharded sweep runner's reuse of engines and nets across
# cells must keep the tables byte-identical at every parallelism level.
# Then run the 10,240-rank cluster cell once under the CPU profiler (the
# arena-backed construction path at its largest scale) and assert the
# profile landed non-empty. Finally exercise intra-cell parallelism both
# ways: the rendered cluster4 sweep must be byte-identical with the
# partitioned executor on and off, and the cluster_10k_intra cell must
# report bit-identical serial/parallel results (its recorded speedup
# lands in the smoke log via the JSON).
scale-smoke:
	$(GO) run -race ./cmd/imb -machine MC512 -comps KNEM-Coll,Tuned-SM -op bcast -sizes 64K -iters 1 -parallel 1 -no-cache > /tmp/scale-smoke-a.txt
	$(GO) run -race ./cmd/imb -machine MC512 -comps KNEM-Coll,Tuned-SM -op bcast -sizes 64K -iters 1 -parallel 4 -no-cache > /tmp/scale-smoke-b.txt
	cmp /tmp/scale-smoke-a.txt /tmp/scale-smoke-b.txt
	$(GO) run ./cmd/simbench $(SIMBENCH_FLAGS) -only cluster_10k -cpuprofile /tmp/scale-smoke-10k.pprof -o /tmp/scale-smoke-10k.json
	test -s /tmp/scale-smoke-10k.pprof
	$(GO) run ./cmd/imb -cluster machines/cluster4.cluster -op bcast -sizes 64K -iters 1 -no-cache -intra-parallel=false > /tmp/scale-smoke-c.txt
	$(GO) run ./cmd/imb -cluster machines/cluster4.cluster -op bcast -sizes 64K -iters 1 -no-cache -intra-parallel=true > /tmp/scale-smoke-d.txt
	cmp /tmp/scale-smoke-c.txt /tmp/scale-smoke-d.txt
	$(GO) run ./cmd/simbench $(SIMBENCH_FLAGS) -only cluster_10k_intra -o /tmp/scale-smoke-intra.json
	grep -q '"identical": true' /tmp/scale-smoke-intra.json
	grep -A 10 '"cluster_10k_intra"' /tmp/scale-smoke-intra.json

# Serving smoke: boot the simd daemon on a random port against a fresh
# cache directory and run its built-in contract check — the same batch
# posted by concurrent clients twice over must be byte-identical every
# time and the second round 100% cache-served (verified via /v1/stats
# deltas). simd prints the sweep panel for its smoke cells on stdout;
# running imb over the same cells and cache directory must produce the
# byte-identical panel — the serving tier and the CLI are the same
# deterministic engine behind different front doors.
simd-smoke:
	rm -rf /tmp/simd-smoke-cache
	$(GO) run ./cmd/simd -smoke -cache-dir /tmp/simd-smoke-cache > /tmp/simd-smoke-server.txt
	$(GO) run ./cmd/imb -op bcast -machine Zoot -sizes 64K,1M -iters 1 -comps KNEM-Coll,Tuned-SM -cache-dir /tmp/simd-smoke-cache > /tmp/simd-smoke-imb.txt 2>/tmp/simd-smoke-imb.err
	cmp /tmp/simd-smoke-server.txt /tmp/simd-smoke-imb.txt
	grep -q ", 0 misses" /tmp/simd-smoke-imb.err
	$(GO) run ./cmd/simd -selftest -cache-dir /tmp/simd-smoke-cache > /dev/null

clean:
	$(GO) clean ./...
