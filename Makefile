GO ?= go

.PHONY: all test vet bench figures table1 results clean

all: test vet

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...
	gofmt -l .

bench:
	GOMAXPROCS=1 $(GO) test -bench=. -benchmem -benchtime=1x ./...

# Regenerate every recorded artifact under results/.
results:
	GOMAXPROCS=1 $(GO) run ./cmd/imb -fig all -iters 1 > results/figures.txt
	GOMAXPROCS=1 $(GO) run ./cmd/asp -sample 512 > results/table1.txt
	GOMAXPROCS=1 $(GO) run ./cmd/imb -ablation -iters 2 > results/ablations.txt
	GOMAXPROCS=1 $(GO) run ./cmd/imb -scalability -machine IG -op bcast -sizes 1M -iters 2 > results/scalability.txt

clean:
	$(GO) clean ./...
