// Command simd serves the deterministic sweep-and-tune engine over
// HTTP/JSON: batch cell evaluation (POST /v1/cells), streamed sweeps
// (POST /v1/sweep), tuned-decision lookups (GET /v1/decisions), and live
// cache/latency statistics (GET /v1/stats). Responses are deterministic —
// the same batch yields byte-identical bodies whether cells are simulated,
// deduplicated against in-flight twins, or replayed from the layered
// caches, at any request concurrency.
//
// Usage:
//
//	simd -addr :8080                          # serve until SIGTERM
//	simd -addr :8080 -warm-file warm.jsonl    # dump hot set on drain, preload on boot
//	simd -decisions ig.json -machines big.machine -addr :8080
//	simd -smoke                               # boot, verify, exit
//	simd -selftest -concurrency 8 -reps 4     # load-test, then assert a warm restart
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/bench"
	"repro/internal/serve"
	"repro/internal/topology"
	"repro/internal/tune"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simd:", err)
	os.Exit(1)
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	noCache := flag.Bool("no-cache", false, "disable run memoization: re-simulate every cell")
	cacheDir := flag.String("cache-dir", "", "persistent simulation cache directory (default: the user cache dir)")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrently simulating cells")
	lruSize := flag.Int("lru", 4096, "in-memory serving cache capacity, in cells")
	decisionsPath := flag.String("decisions", "", "comma-separated tuned decision tables (JSON from `tune search`) applied to matching machines")
	machinesPath := flag.String("machines", "", "comma-separated machine-description files served in addition to the built-in platforms")
	warmFile := flag.String("warm-file", "", "persist the serving cache across restarts: preload entries on boot, write the hot set on drain")
	smoke := flag.Bool("smoke", false, "boot on a random port, verify determinism and cache behaviour, print the smoke panel, exit")
	selftest := flag.Bool("selftest", false, "boot on a random port, run the load-test harness, print its report as JSON, exit")
	concurrency := flag.Int("concurrency", 8, "selftest: concurrent clients")
	reps := flag.Int("reps", 4, "selftest: batches per client")
	flag.Parse()

	cached, err := bench.EnableDefaultCache("simd", *noCache, *cacheDir)
	if err != nil {
		fatal(err)
	}

	opts := serve.Options{LRUSize: *lruSize, Workers: *parallel}
	set := tune.NewSet()
	for _, p := range splitNonEmpty(*decisionsPath) {
		t, err := tune.Load(p, nil)
		if err != nil {
			fatal(err)
		}
		set.Add(t)
	}
	bench.SetDecisions(set)
	opts.Decisions = set

	extra := map[string]*topology.Machine{}
	for _, p := range splitNonEmpty(*machinesPath) {
		m, err := topology.LoadMachine(p)
		if err != nil {
			fatal(err)
		}
		extra[m.Name] = m
	}
	opts.Machines = func(name string) *topology.Machine {
		if m, ok := extra[name]; ok {
			return m
		}
		return topology.ByName(name)
	}

	switch {
	case *smoke:
		if err := runSmoke(opts); err != nil {
			fatal(err)
		}
	case *selftest:
		if err := runSelftest(opts, *concurrency, *reps, *warmFile); err != nil {
			fatal(err)
		}
	default:
		if err := serveUntilSignal(*addr, opts, cached, *warmFile); err != nil {
			fatal(err)
		}
	}
}

func splitNonEmpty(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

// serveUntilSignal runs the daemon until SIGINT/SIGTERM, then drains:
// in-flight requests get up to 30s to finish before the listener dies.
// With a warm file, the serving cache is preloaded from it on boot and
// its hot set written back after the drain completes.
func serveUntilSignal(addr string, opts serve.Options, cached bool, warmFile string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	api := serve.New(opts)
	if warmFile != "" {
		n, err := preloadWarm(api, warmFile)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "simd: warm start: %d cells preloaded from %s\n", n, warmFile)
	}
	srv := &http.Server{Addr: addr, Handler: api.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "simd: serving on %s (cache %s)\n", addr, onOff(cached))

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "simd: draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if warmFile != "" {
		ents := api.WarmSnapshot()
		if err := saveWarm(warmFile, ents); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "simd: warm stop: %d cells written to %s\n", len(ents), warmFile)
	}
	if cached {
		bench.ReportCacheCounts("simd")
	}
	return nil
}

// saveWarm writes the snapshot as JSON lines, atomically (temp + rename)
// so a crash mid-write never truncates the previous warm set.
func saveWarm(path string, ents []serve.WarmEntry) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".warm-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	enc := json.NewEncoder(tmp)
	for _, e := range ents {
		if err := enc.Encode(e); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// preloadWarm seeds the server's serving cache from a warm file written
// by a previous run's drain. A missing file is a cold start, not an
// error; a malformed line is, so a corrupt file fails loudly instead of
// silently serving a partial set.
func preloadWarm(api *serve.Server, path string) (int, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var ents []serve.WarmEntry
	dec := json.NewDecoder(f)
	for {
		var e serve.WarmEntry
		if err := dec.Decode(&e); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return 0, fmt.Errorf("warm file %s: %v", path, err)
		}
		ents = append(ents, e)
	}
	return api.WarmPreload(ents), nil
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

// bootLocal starts a server on a random loopback port and returns the
// server, its base URL, and a shutdown func.
func bootLocal(opts serve.Options) (*serve.Server, string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", nil, err
	}
	api := serve.New(opts)
	srv := &http.Server{Handler: api.Handler()}
	go srv.Serve(ln)
	return api, "http://" + ln.Addr().String(), func() { srv.Close() }, nil
}

// smokeSizes and smokeComps define the smoke batch — it must mirror
// `imb -op bcast -machine Zoot -sizes 64K,1M -iters 1 -comps
// KNEM-Coll,Tuned-SM` cell for cell (imb sweeps with OffCache on), so the
// rendered panel can be byte-compared against imb's stdout.
var (
	smokeSizes = []int64{64 * bench.KiB, 1 * bench.MiB}
	smokeComps = []string{"KNEM-Coll", "Tuned-SM"}
)

func smokeBatch() serve.BatchRequest {
	req := serve.BatchRequest{Machine: "Zoot"}
	for _, comp := range smokeComps {
		for _, sz := range smokeSizes {
			req.Cells = append(req.Cells, serve.CellSpec{
				Comp: comp, Op: "bcast", Size: sz, Iters: 1, OffCache: true,
			})
		}
	}
	return req
}

// runSmoke boots a throwaway server and verifies the service contract end
// to end: byte-identical responses under concurrency, a fully cache-served
// second round, and library-identical results — the smoke panel printed to
// stdout must byte-match `imb` on the same cells. Diagnostics go to
// stderr; stdout carries only the panel.
func runSmoke(opts serve.Options) error {
	_, base, shutdown, err := bootLocal(opts)
	if err != nil {
		return err
	}
	defer shutdown()
	ctx := context.Background()

	cold, err := serve.Load(ctx, serve.LoadOptions{BaseURL: base, Request: smokeBatch(), Concurrency: 4, Repetitions: 2})
	if err != nil {
		return fmt.Errorf("smoke cold round: %v", err)
	}
	fmt.Fprintf(os.Stderr, "simd: smoke cold round: %d requests byte-identical, hit rate %.2f\n", cold.Requests, cold.HitRate)

	warm, err := serve.Load(ctx, serve.LoadOptions{BaseURL: base, Request: smokeBatch(), Concurrency: 4, Repetitions: 2})
	if err != nil {
		return fmt.Errorf("smoke warm round: %v", err)
	}
	if string(warm.Body) != string(cold.Body) {
		return fmt.Errorf("smoke: warm response differs from cold response")
	}
	if warm.HitRate != 1.0 {
		return fmt.Errorf("smoke: warm round hit rate %v, want 1.0 (cache-served)", warm.HitRate)
	}
	fmt.Fprintf(os.Stderr, "simd: smoke warm round: 100%% cache-served, p50 %.6fs p99 %.6fs\n", warm.P50Seconds, warm.P99Seconds)

	var resp serve.BatchResponse
	if err := json.Unmarshal(cold.Body, &resp); err != nil {
		return err
	}
	panel := bench.Panel{
		Title:    fmt.Sprintf("bcast on Zoot (np=%d)", topology.ByName("Zoot").NCores()),
		Machine:  "Zoot",
		Baseline: "KNEM-Coll",
		Sizes:    smokeSizes,
	}
	for i, comp := range smokeComps {
		s := bench.Series{Label: comp, Seconds: map[int64]float64{}}
		for j, sz := range smokeSizes {
			s.Seconds[sz] = resp.Results[i*len(smokeSizes)+j].Seconds
		}
		panel.Series = append(panel.Series, s)
	}
	panel.Render(os.Stdout)
	return nil
}

// runSelftest boots a throwaway server, drives the load harness against
// it, and prints the report as JSON. It then exercises the warm-restart
// path: the first server's hot set is dumped (to warmFile, or a temp file
// when none was given), a second server preloads it, and the same batch
// must be answered entirely from the preloaded LRU — zero misses.
func runSelftest(opts serve.Options, concurrency, reps int, warmFile string) error {
	api, base, shutdown, err := bootLocal(opts)
	if err != nil {
		return err
	}
	defer shutdown()
	ctx := context.Background()
	rep, err := serve.Load(ctx, serve.LoadOptions{
		BaseURL: base, Request: smokeBatch(), Concurrency: concurrency, Repetitions: reps,
	})
	if err != nil {
		return err
	}

	if warmFile == "" {
		dir, err := os.MkdirTemp("", "simd-selftest-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		warmFile = filepath.Join(dir, "warm.jsonl")
	}
	if err := saveWarm(warmFile, api.WarmSnapshot()); err != nil {
		return err
	}
	shutdown()

	api2, base2, shutdown2, err := bootLocal(opts)
	if err != nil {
		return err
	}
	defer shutdown2()
	n, err := preloadWarm(api2, warmFile)
	if err != nil {
		return err
	}
	if want := len(smokeBatch().Cells); n < want {
		return fmt.Errorf("selftest: warm file preloaded %d cells, want >= %d", n, want)
	}
	warm, err := serve.Load(ctx, serve.LoadOptions{
		BaseURL: base2, Request: smokeBatch(), Concurrency: concurrency, Repetitions: 1,
	})
	if err != nil {
		return fmt.Errorf("selftest warm restart: %v", err)
	}
	if warm.HitRate != 1.0 {
		return fmt.Errorf("selftest: restart hit rate %v, want 1.0 (preloaded LRU must serve the whole batch)", warm.HitRate)
	}
	if misses := lruMisses(base2); misses != 0 {
		return fmt.Errorf("selftest: restarted server took %d LRU misses, want 0", misses)
	}
	fmt.Fprintf(os.Stderr, "simd: warm restart: %d cells preloaded, hit rate 1.00, 0 LRU misses\n", n)

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// lruMisses fetches the server's LRU miss counter (-1 on error: the
// caller treats any failure to read stats as an assertion failure).
func lruMisses(base string) int64 {
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		return -1
	}
	defer resp.Body.Close()
	var st serve.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return -1
	}
	return st.Cache.LRUMisses
}
