// Command simd serves the deterministic sweep-and-tune engine over
// HTTP/JSON: batch cell evaluation (POST /v1/cells), streamed sweeps
// (POST /v1/sweep), tuned-decision lookups (GET /v1/decisions), and live
// cache/latency statistics (GET /v1/stats). Responses are deterministic —
// the same batch yields byte-identical bodies whether cells are simulated,
// deduplicated against in-flight twins, or replayed from the layered
// caches, at any request concurrency.
//
// Usage:
//
//	simd -addr :8080                          # serve until SIGTERM
//	simd -decisions ig.json -machines big.machine -addr :8080
//	simd -smoke                               # boot, verify, exit
//	simd -selftest -concurrency 8 -reps 4     # load-test a fresh server
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/bench"
	"repro/internal/serve"
	"repro/internal/topology"
	"repro/internal/tune"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simd:", err)
	os.Exit(1)
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	noCache := flag.Bool("no-cache", false, "disable run memoization: re-simulate every cell")
	cacheDir := flag.String("cache-dir", "", "persistent simulation cache directory (default: the user cache dir)")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrently simulating cells")
	lruSize := flag.Int("lru", 4096, "in-memory serving cache capacity, in cells")
	decisionsPath := flag.String("decisions", "", "comma-separated tuned decision tables (JSON from `tune search`) applied to matching machines")
	machinesPath := flag.String("machines", "", "comma-separated machine-description files served in addition to the built-in platforms")
	smoke := flag.Bool("smoke", false, "boot on a random port, verify determinism and cache behaviour, print the smoke panel, exit")
	selftest := flag.Bool("selftest", false, "boot on a random port, run the load-test harness, print its report as JSON, exit")
	concurrency := flag.Int("concurrency", 8, "selftest: concurrent clients")
	reps := flag.Int("reps", 4, "selftest: batches per client")
	flag.Parse()

	cached, err := bench.EnableDefaultCache("simd", *noCache, *cacheDir)
	if err != nil {
		fatal(err)
	}

	opts := serve.Options{LRUSize: *lruSize, Workers: *parallel}
	set := tune.NewSet()
	for _, p := range splitNonEmpty(*decisionsPath) {
		t, err := tune.Load(p, nil)
		if err != nil {
			fatal(err)
		}
		set.Add(t)
	}
	bench.SetDecisions(set)
	opts.Decisions = set

	extra := map[string]*topology.Machine{}
	for _, p := range splitNonEmpty(*machinesPath) {
		m, err := topology.LoadMachine(p)
		if err != nil {
			fatal(err)
		}
		extra[m.Name] = m
	}
	opts.Machines = func(name string) *topology.Machine {
		if m, ok := extra[name]; ok {
			return m
		}
		return topology.ByName(name)
	}

	switch {
	case *smoke:
		if err := runSmoke(opts); err != nil {
			fatal(err)
		}
	case *selftest:
		if err := runSelftest(opts, *concurrency, *reps); err != nil {
			fatal(err)
		}
	default:
		if err := serveUntilSignal(*addr, opts, cached); err != nil {
			fatal(err)
		}
	}
}

func splitNonEmpty(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

// serveUntilSignal runs the daemon until SIGINT/SIGTERM, then drains:
// in-flight requests get up to 30s to finish before the listener dies.
func serveUntilSignal(addr string, opts serve.Options, cached bool) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := &http.Server{Addr: addr, Handler: serve.New(opts).Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "simd: serving on %s (cache %s)\n", addr, onOff(cached))

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "simd: draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if cached {
		bench.ReportCacheCounts("simd")
	}
	return nil
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

// bootLocal starts a server on a random loopback port and returns its base
// URL plus a shutdown func.
func bootLocal(opts serve.Options) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: serve.New(opts).Handler()}
	go srv.Serve(ln)
	return "http://" + ln.Addr().String(), func() { srv.Close() }, nil
}

// smokeSizes and smokeComps define the smoke batch — it must mirror
// `imb -op bcast -machine Zoot -sizes 64K,1M -iters 1 -comps
// KNEM-Coll,Tuned-SM` cell for cell (imb sweeps with OffCache on), so the
// rendered panel can be byte-compared against imb's stdout.
var (
	smokeSizes = []int64{64 * bench.KiB, 1 * bench.MiB}
	smokeComps = []string{"KNEM-Coll", "Tuned-SM"}
)

func smokeBatch() serve.BatchRequest {
	req := serve.BatchRequest{Machine: "Zoot"}
	for _, comp := range smokeComps {
		for _, sz := range smokeSizes {
			req.Cells = append(req.Cells, serve.CellSpec{
				Comp: comp, Op: "bcast", Size: sz, Iters: 1, OffCache: true,
			})
		}
	}
	return req
}

// runSmoke boots a throwaway server and verifies the service contract end
// to end: byte-identical responses under concurrency, a fully cache-served
// second round, and library-identical results — the smoke panel printed to
// stdout must byte-match `imb` on the same cells. Diagnostics go to
// stderr; stdout carries only the panel.
func runSmoke(opts serve.Options) error {
	base, shutdown, err := bootLocal(opts)
	if err != nil {
		return err
	}
	defer shutdown()
	ctx := context.Background()

	cold, err := serve.Load(ctx, serve.LoadOptions{BaseURL: base, Request: smokeBatch(), Concurrency: 4, Repetitions: 2})
	if err != nil {
		return fmt.Errorf("smoke cold round: %v", err)
	}
	fmt.Fprintf(os.Stderr, "simd: smoke cold round: %d requests byte-identical, hit rate %.2f\n", cold.Requests, cold.HitRate)

	warm, err := serve.Load(ctx, serve.LoadOptions{BaseURL: base, Request: smokeBatch(), Concurrency: 4, Repetitions: 2})
	if err != nil {
		return fmt.Errorf("smoke warm round: %v", err)
	}
	if string(warm.Body) != string(cold.Body) {
		return fmt.Errorf("smoke: warm response differs from cold response")
	}
	if warm.HitRate != 1.0 {
		return fmt.Errorf("smoke: warm round hit rate %v, want 1.0 (cache-served)", warm.HitRate)
	}
	fmt.Fprintf(os.Stderr, "simd: smoke warm round: 100%% cache-served, p50 %.6fs p99 %.6fs\n", warm.P50Seconds, warm.P99Seconds)

	var resp serve.BatchResponse
	if err := json.Unmarshal(cold.Body, &resp); err != nil {
		return err
	}
	panel := bench.Panel{
		Title:    fmt.Sprintf("bcast on Zoot (np=%d)", topology.ByName("Zoot").NCores()),
		Machine:  "Zoot",
		Baseline: "KNEM-Coll",
		Sizes:    smokeSizes,
	}
	for i, comp := range smokeComps {
		s := bench.Series{Label: comp, Seconds: map[int64]float64{}}
		for j, sz := range smokeSizes {
			s.Seconds[sz] = resp.Results[i*len(smokeSizes)+j].Seconds
		}
		panel.Series = append(panel.Series, s)
	}
	panel.Render(os.Stdout)
	return nil
}

// runSelftest boots a throwaway server, drives the load harness against
// it, and prints the report as JSON.
func runSelftest(opts serve.Options, concurrency, reps int) error {
	base, shutdown, err := bootLocal(opts)
	if err != nil {
		return err
	}
	defer shutdown()
	rep, err := serve.Load(context.Background(), serve.LoadOptions{
		BaseURL: base, Request: smokeBatch(), Concurrency: concurrency, Repetitions: reps,
	})
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
