// Command simbench records the simulator's performance trajectory as
// BENCH_sim.json: ns/op and allocs/op for the hot paths (flow churn under
// contention, event scheduling, coroutine process handoff), the wall-clock
// time of a reference sweep run sequentially and with four concurrent
// measurement cells, and the fresh-versus-memoized wall clock of a small
// autotuner search.
//
// The emitted file carries the host's CPU count so speedup numbers can be
// judged honestly: on a single-CPU runner the parallel sweep cannot beat
// the sequential one no matter how good the runner is — it is therefore
// skipped (and annotated) when GOMAXPROCS < 2 instead of polluting the
// trajectory. The allocs/op and ns/op trajectory against the recorded
// baselines is machine-independent.
//
// Usage:
//
//	simbench                     # full run, JSON on stdout
//	simbench -short              # CI smoke: tiny sweep, tiny search grid
//	simbench -o BENCH_sim.json
//	simbench -check BENCH_sim.json   # regression gate against a baseline
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"reflect"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/memsim"
	"repro/internal/mpi"
	"repro/internal/serve"
	"repro/internal/shm"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/tune/search"
)

const MB = 1 << 20

// Report is the BENCH_sim.json schema ("bench_sim/v8"; v7 lacked the
// intra-cell parallelism section (cluster_10k_intra: serial vs parallel
// wall clock, identity flag, conservative-window counts), predated the
// sim/g3-partition fingerprint (cluster cells now keep warm-up counters;
// the lazy per-flow depletion made partitioned runs bit-identical), and
// did not gate the cluster cells' allocs_per_op, v6 lacked the
// 10,240-rank cluster cell, the cluster cells' allocs_per_op, and ran the
// many-core Broadcast cells on fresh engines instead of reused
// arena-backed shards, v5 lacked the serving-tier cell
// (serve_batch_64cells: HTTP batch latency and cache hit rate through
// cmd/simd's stack), v4 lacked the many-core scale cells
// (core/bcast_cell_128, core/bcast_cell_512, the 1024-rank cluster cell)
// and the binary-heap queue baseline, v3 lacked the cluster section, v2
// lacked the core/bcast_cell_64KiB scenario and the zero-allocation gates,
// v1 lacked the tune_search section, the parallel-sweep skip annotation,
// and the channel-engine baseline).
type Report struct {
	Schema     string      `json:"schema"`
	GoVersion  string      `json:"go"`
	CPUs       int         `json:"cpus"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Short      bool        `json:"short"`
	Benchmarks []BenchLine `json:"benchmarks"`
	Sweep      SweepLine   `json:"sweep"`
	Cluster    ClusterLine `json:"cluster"`
	// Cluster1024 is the 1024-rank hierarchical broadcast over sixteen
	// 64-core nodes — the "10k simulated ranks per cluster run" direction
	// at a size one CI runner can still time.
	Cluster1024 ClusterLine `json:"cluster_1024"`
	// Cluster10k is the ROADMAP's 10k-rank point itself: eighty 128-core
	// nodes, 10,240 ranks, one hierarchical broadcast — runnable inside
	// the CI smoke budget now that per-rank state is arena-backed.
	Cluster10k ClusterLine    `json:"cluster_10k"`
	// Cluster10kIntra re-runs the 10k-rank cell serially and under
	// intra-cell parallelism (one engine per node plus a fabric engine,
	// conservative time windows) and records both wall clocks plus the
	// byte-identity verdict. -check always gates identity; the speedup is
	// gated at >= 2 only when GOMAXPROCS >= 8 (single-core runners record
	// it without judging it).
	Cluster10kIntra IntraLine      `json:"cluster_10k_intra"`
	TuneSearch      TuneSearchLine `json:"tune_search"`
	// Serve is the serving-tier cell: a 64-cell batch posted to an
	// in-process simd server by concurrent clients, cold (populating the
	// layered caches) then warm. The warm round must be fully cache-served
	// — its hit rate is gated exactly at 1.0 by -check — while the latency
	// quantiles are recorded for the trajectory but not gated (wall-clock
	// noise on shared CI runners).
	Serve    ServeLine   `json:"serve_batch_64cells"`
	Baseline []BenchLine `json:"baseline_pre_optimization"`
	// BaselineChannels records the goroutine-channel engine's committed
	// numbers immediately before the coroutine switch, so this report
	// always shows the handoff and sweep trajectory across that change.
	BaselineChannels EngineBaseline `json:"baseline_channel_engine"`
	// BaselineHeapQueue records the committed numbers of the
	// container/heap event queue immediately before the switch to the
	// bucketed calendar queue, measured on the same scenarios.
	BaselineHeapQueue []BenchLine `json:"baseline_binary_heap_queue"`
}

// BenchLine is one micro-benchmark result (or recorded baseline).
type BenchLine struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// SweepLine is the reference sweep (imb -op bcast -machine IG) measured
// sequentially and with four concurrent cells. Speedup > 1 requires real
// parallelism, so the parallel leg only runs when GOMAXPROCS >= 2;
// otherwise ParallelSkipped names the reason and Parallel4/Speedup are
// omitted.
type SweepLine struct {
	Op              string  `json:"op"`
	Machine         string  `json:"machine"`
	Iters           int     `json:"iters"`
	Cells           int     `json:"cells"`
	Sequential      float64 `json:"seconds_sequential"`
	Parallel4       float64 `json:"seconds_parallel4,omitempty"`
	Speedup         float64 `json:"speedup,omitempty"`
	ParallelSkipped string  `json:"parallel_skipped,omitempty"`
}

// ClusterLine is the many-rank cluster cell: one hierarchical broadcast
// over a synthetic multi-node cluster, timed once (wall clock) with its
// simulated completion time — the scale point none of the single-machine
// scenarios reach.
type ClusterLine struct {
	Nodes     int     `json:"nodes"`
	NP        int     `json:"np"`
	Op        string  `json:"op"`
	Size      int64   `json:"size"`
	Simulated float64 `json:"seconds_simulated"`
	Wall      float64 `json:"seconds_wall"`
	// AllocsPerOp is the heap-allocation count of re-running the same cell
	// on the warmed measurement shard (ReadMemStats delta over a second
	// Measure call) — the arena's figure of merit at cluster scale.
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// IntraLine is the intra-cell parallelism cell: the same cluster cell
// measured once on a single engine and once across the partitioned engine
// group, with the simulated results compared bit for bit.
type IntraLine struct {
	Nodes int    `json:"nodes"`
	NP    int    `json:"np"`
	Op    string `json:"op"`
	Size  int64  `json:"size"`
	// SerialWall/ParallelWall are the wall clocks of the two runs (warmed
	// shard; the cold construction cost is cluster_10k's to report).
	SerialWall   float64 `json:"seconds_wall_serial"`
	ParallelWall float64 `json:"seconds_wall_parallel"`
	Speedup      float64 `json:"speedup"`
	// Identical reports whether the parallel run reproduced the serial
	// run's simulated seconds and every counter exactly.
	Identical bool  `json:"identical"`
	Engines   int   `json:"engines"`
	Windows   int64 `json:"windows_executed"`
}

// TuneSearchLine times one autotuner search twice against an empty
// persistent cache: the first run simulates every cell, the second is
// served entirely by the memoization layer.
type TuneSearchLine struct {
	Machine       string  `json:"machine"`
	Ops           string  `json:"ops"`
	Cells         int     `json:"cells"`
	SecondsFresh  float64 `json:"seconds_fresh"`
	SecondsCached float64 `json:"seconds_cached"`
	Speedup       float64 `json:"speedup"`
}

// ServeLine is the serving-tier cell (see Report.Serve): client-observed
// batch-request latency quantiles and the server-side cache hit rate for
// the cold (populating) and warm (fully cached) rounds.
type ServeLine struct {
	Machine      string  `json:"machine"`
	Cells        int     `json:"cells"` // cells per batch request
	Requests     int     `json:"requests"`
	ColdSeconds  float64 `json:"seconds_cold"` // wall clock of the populating round
	ColdHitRate  float64 `json:"cold_hit_rate"`
	WarmP50      float64 `json:"warm_p50_seconds"`
	WarmP99      float64 `json:"warm_p99_seconds"`
	WarmHitRate  float64 `json:"warm_hit_rate"`
	WarmSimCells int64   `json:"warm_sim_cells"` // cells the warm round re-simulated (must be 0)
}

// EngineBaseline is the committed channel-engine snapshot (see
// Report.BaselineChannels).
type EngineBaseline struct {
	ParkWakeNs             float64 `json:"park_wake_ns_per_op"`
	SweepSecondsSequential float64 `json:"sweep_seconds_sequential"`
}

// baseline numbers measured on this codebase immediately before the
// allocation-free solver + pooled-event optimizations (same scenarios,
// benchtime 200ms, GOMAXPROCS=1). Kept in the report so any future run
// shows the trajectory without digging through git history.
var baseline = []BenchLine{
	{Name: "memsim/copy_churn_64KiB", NsPerOp: 5278, AllocsPerOp: 34, BytesPerOp: 2772},
	{Name: "sim/schedule_fire", NsPerOp: 67.4, AllocsPerOp: 1, BytesPerOp: 80},
	{Name: "sim/park_wake", NsPerOp: 1218, AllocsPerOp: 4, BytesPerOp: 248},
	{Name: "memsim/recompute_rates_flows48", NsPerOp: 15690, AllocsPerOp: 11, BytesPerOp: 3176},
	{Name: "memsim/reschedule_flows48", NsPerOp: 13399, AllocsPerOp: 13, BytesPerOp: 3560},
}

// channelBaseline is the committed BENCH_sim.json of the goroutine-channel
// engine, recorded just before the switch to iter.Pull coroutines.
var channelBaseline = EngineBaseline{
	ParkWakeNs:             1421.9479311770851,
	SweepSecondsSequential: 2.793275014,
}

// heapBaseline is the committed snapshot of the container/heap binary-heap
// event queue, measured on this codebase immediately before the switch to
// the bucketed calendar queue (benchtime ~1s, GOMAXPROCS=1). The
// schedule_fire alloc is the per-event box the heap path could never shed;
// the many-core cells are dominated by queue traffic, which is where the
// calendar queue pays off.
var heapBaseline = []BenchLine{
	{Name: "sim/schedule_fire", NsPerOp: 70.9, AllocsPerOp: 1, BytesPerOp: 80},
	{Name: "core/bcast_cell_64KiB", NsPerOp: 25313, AllocsPerOp: 0, BytesPerOp: 0},
	{Name: "core/bcast_cell_128", NsPerOp: 1951049, AllocsPerOp: 60, BytesPerOp: 1806},
	{Name: "core/bcast_cell_512", NsPerOp: 25023983, AllocsPerOp: 284, BytesPerOp: 9034},
}

func main() {
	short := flag.Bool("short", false, "CI smoke mode: tiny sweep and search grid, capped benchtime")
	out := flag.String("o", "", "write JSON to this file instead of stdout")
	check := flag.String("check", "", "baseline BENCH_sim.json to compare against; exit 1 on regression")
	tolerance := flag.Float64("tolerance", 0.25, "with -check: allowed relative regression before failing")
	minCPUs := flag.Int("min-cpus", 0, "fail unless the host has at least this many CPUs (CI guard: the parallel sweep must not be skipped silently)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile (all allocations, not just live) to this file at exit")
	only := flag.String("only", "", "comma-separated scenario filter (benchmark names, sweep, cluster, cluster_1024, cluster_10k, cluster_10k_intra, tune_search, serve); empty runs everything")
	diff := flag.Bool("diff", false, "print per-metric deltas between two BENCH_sim.json files (old new) and exit")
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "simbench: -diff needs exactly two arguments: old.json new.json")
			os.Exit(1)
		}
		if err := printDiff(flag.Arg(0), flag.Arg(1)); err != nil {
			fmt.Fprintln(os.Stderr, "simbench:", err)
			os.Exit(1)
		}
		return
	}

	if *minCPUs > 0 && runtime.NumCPU() < *minCPUs {
		fmt.Fprintf(os.Stderr, "simbench: host has %d CPU(s), -min-cpus %d: a single-core runner would skip the parallel sweep instead of measuring it\n",
			runtime.NumCPU(), *minCPUs)
		os.Exit(1)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simbench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "simbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer writeMemProfile(*memProfile)
	}

	var base *Report
	if *check != "" {
		data, err := os.ReadFile(*check)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simbench:", err)
			os.Exit(1)
		}
		base = &Report{}
		if err := json.Unmarshal(data, base); err != nil {
			fmt.Fprintf(os.Stderr, "simbench: %s: %v\n", *check, err)
			os.Exit(1)
		}
	}

	rep := Report{
		Schema:            "bench_sim/v8",
		GoVersion:         runtime.Version(),
		CPUs:              runtime.NumCPU(),
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		Short:             *short,
		Baseline:          baseline,
		BaselineChannels:  channelBaseline,
		BaselineHeapQueue: heapBaseline,
	}

	want := func(name string) bool {
		if *only == "" {
			return true
		}
		for _, n := range strings.Split(*only, ",") {
			if strings.TrimSpace(n) == name {
				return true
			}
		}
		return false
	}

	// testing.Benchmark self-calibrates to ~1s per scenario — short
	// enough that even the CI smoke job runs the full micro set; -short
	// only trims the sweep and search below. The many-core cells instead
	// pin their iteration count (see the iters arguments): the integer
	// allocs/op gate at 0 needs enough measured iterations that the slow
	// tail of pool growth (fifo backing arrays, map buckets) divides away,
	// which self-calibration on a fast host does not guarantee.
	run := func(name string, iters string, fn func(b *testing.B)) {
		if !want(name) {
			return
		}
		if iters != "" {
			testing.Init()
			if err := flag.Set("test.benchtime", iters); err != nil {
				fmt.Fprintln(os.Stderr, "simbench:", err)
				os.Exit(1)
			}
			defer flag.Set("test.benchtime", "1s")
		}
		r := testing.Benchmark(fn)
		rep.Benchmarks = append(rep.Benchmarks, BenchLine{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}

	run("memsim/copy_churn_64KiB", "", benchCopyChurn)
	run("sim/schedule_fire", "", benchScheduleFire)
	run("sim/park_wake", "", benchParkWake)
	run("core/bcast_cell_64KiB", "", benchBcastCell)
	run("core/bcast_cell_128", "2000x", benchBcastCellManyCore(128))
	run("core/bcast_cell_512", "1000x", benchBcastCellManyCore(512))

	if want("sweep") {
		rep.Sweep = measureSweep(*short)
	}
	if want("cluster") {
		rep.Cluster = measureCluster(*short)
	}
	if want("cluster_1024") {
		rep.Cluster1024 = measureCluster1024(*short)
	}
	if want("cluster_10k") {
		rep.Cluster10k = measureCluster10k()
	}
	if want("cluster_10k_intra") {
		rep.Cluster10kIntra = measureCluster10kIntra()
	}
	if want("tune_search") {
		rep.TuneSearch = measureTuneSearch(*short)
	}
	if want("serve") {
		rep.Serve = measureServe(*short)
	}

	enc, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(1)
	}
	if base != nil && !checkAgainst(&rep, base, *tolerance) {
		// os.Exit skips the deferred profile writers; flush them first so a
		// failing gate still leaves usable profiles behind.
		if *cpuProfile != "" {
			pprof.StopCPUProfile()
		}
		if *memProfile != "" {
			writeMemProfile(*memProfile)
		}
		os.Exit(1)
	}
}

// writeMemProfile dumps the allocation profile (alloc_space/alloc_objects
// sample indexes included) to path.
func writeMemProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		return
	}
	defer f.Close()
	runtime.GC() // materialize the final heap state
	if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
	}
}

// checkAgainst is the bench-smoke regression gate: the handoff
// micro-benchmark and the sequential sweep wall clock must stay within
// tolerance of the baseline report, and the zero-allocation scenarios must
// stay at exactly 0 allocs/op — an allocation on those paths is a
// regression however cheap it is, so no tolerance applies. Comparisons
// whose scenarios differ (short vs full sweep) are skipped with a note
// rather than compared apples-to-oranges.
func checkAgainst(cur, base *Report, tol float64) bool {
	ok := true
	// The copy/cache hot path, the event queue, and the steady-state
	// Broadcast cells are pinned allocation-free: events come from the
	// engine's slab, per-rank and component state from the engine's arena,
	// and Pending handles, cache entries, flows, OOB envelopes, and waiter
	// records are all pooled. Since the arena conversion the 128/512-rank
	// many-core cells hold the same exact-0 pin as the small cell — they
	// run on a reused shard with a pinned iteration count precisely so
	// world-scale structure growth amortizes below one alloc per op.
	for _, pin := range []struct {
		name   string
		budget int64
	}{
		{"memsim/copy_churn_64KiB", 0}, {"sim/schedule_fire", 0},
		{"core/bcast_cell_64KiB", 0},
		{"core/bcast_cell_128", 0}, {"core/bcast_cell_512", 0},
	} {
		found := false
		for _, b := range cur.Benchmarks {
			if b.Name != pin.name {
				continue
			}
			found = true
			status := "ok"
			if b.AllocsPerOp > pin.budget {
				status = "REGRESSION"
				ok = false
			}
			fmt.Fprintf(os.Stderr, "simbench: check: %s allocs/op: %d (budget %d): %s\n",
				pin.name, b.AllocsPerOp, pin.budget, status)
		}
		if !found {
			fmt.Fprintf(os.Stderr, "simbench: check: %s: scenario missing from this run\n", pin.name)
			ok = false
		}
	}
	compare := func(what string, curV, baseV float64) {
		if baseV <= 0 {
			fmt.Fprintf(os.Stderr, "simbench: check: %s: no baseline value, skipped\n", what)
			return
		}
		rel := curV/baseV - 1
		status := "ok"
		if rel > tol {
			status = "REGRESSION"
			ok = false
		}
		fmt.Fprintf(os.Stderr, "simbench: check: %s: %.4g vs baseline %.4g (%+.1f%%, tolerance %.0f%%): %s\n",
			what, curV, baseV, 100*rel, 100*tol, status)
	}
	find := func(r *Report, name string) float64 {
		for _, b := range r.Benchmarks {
			if b.Name == name {
				return b.NsPerOp
			}
		}
		return 0
	}
	// Serving-tier gate: the warm round must be answered entirely from the
	// layered caches — an exact 1.0, no tolerance, because a single
	// re-simulated cell means the determinism/caching contract broke (key
	// instability, a dropped memo write, an LRU that stopped admitting).
	// The latency quantiles are trajectory data only, never gated.
	if cur.Serve.Requests > 0 {
		status := "ok"
		if cur.Serve.WarmHitRate != 1.0 || cur.Serve.WarmSimCells != 0 {
			status = "REGRESSION"
			ok = false
		}
		fmt.Fprintf(os.Stderr, "simbench: check: serve warm hit rate: %.4f (%d re-simulated; must be 1.0000 / 0): %s\n",
			cur.Serve.WarmHitRate, cur.Serve.WarmSimCells, status)
		fmt.Fprintf(os.Stderr, "simbench: check: serve warm p50/p99: %.4gs / %.4gs (recorded, not gated)\n",
			cur.Serve.WarmP50, cur.Serve.WarmP99)
	} else {
		fmt.Fprintln(os.Stderr, "simbench: check: serve: scenario missing from this run")
		ok = false
	}
	compare("sim/park_wake ns/op", find(cur, "sim/park_wake"), find(base, "sim/park_wake"))
	compare("core/bcast_cell_512 ns/op", find(cur, "core/bcast_cell_512"), find(base, "core/bcast_cell_512"))
	if cur.Short == base.Short && cur.Sweep.Cells == base.Sweep.Cells {
		compare("sweep seconds_sequential", cur.Sweep.Sequential, base.Sweep.Sequential)
	} else {
		fmt.Fprintln(os.Stderr, "simbench: check: sweep shapes differ (short/full), wall-clock comparison skipped")
	}
	if cur.Cluster1024.Nodes == base.Cluster1024.Nodes && cur.Cluster1024.Size == base.Cluster1024.Size {
		compare("cluster_1024 seconds_wall", cur.Cluster1024.Wall, base.Cluster1024.Wall)
	} else {
		fmt.Fprintln(os.Stderr, "simbench: check: cluster_1024 shapes differ (short/full), wall-clock comparison skipped")
	}
	if cur.Cluster10k.Nodes == base.Cluster10k.Nodes && cur.Cluster10k.Size == base.Cluster10k.Size {
		compare("cluster_10k seconds_wall", cur.Cluster10k.Wall, base.Cluster10k.Wall)
	} else {
		fmt.Fprintln(os.Stderr, "simbench: check: cluster_10k shapes differ (old baseline?), wall-clock comparison skipped")
	}
	// Cluster cells carry a tolerant allocs_per_op gate rather than the
	// micro-benchmarks' exact-0 pin: the number is a ReadMemStats delta
	// over one warmed re-run, so background runtime work (map growth past
	// a high-water mark, timer and GC bookkeeping) contributes a small
	// machine-dependent residue on top of the arena-backed zero. The same
	// -tolerance as the wall clocks applies; a real leak (per-rank or
	// per-flow state escaping the arenas) shows up orders of magnitude
	// above it.
	allocGate := func(name string, curLine, baseLine ClusterLine) {
		if baseLine.NP == 0 || baseLine.AllocsPerOp <= 0 {
			fmt.Fprintf(os.Stderr, "simbench: check: %s allocs_per_op: no baseline value (old schema?), skipped\n", name)
			return
		}
		if curLine.Nodes != baseLine.Nodes || curLine.Size != baseLine.Size {
			fmt.Fprintf(os.Stderr, "simbench: check: %s shapes differ, allocs_per_op comparison skipped\n", name)
			return
		}
		compare(name+" allocs_per_op", float64(curLine.AllocsPerOp), float64(baseLine.AllocsPerOp))
	}
	allocGate("cluster", cur.Cluster, base.Cluster)
	allocGate("cluster_1024", cur.Cluster1024, base.Cluster1024)
	allocGate("cluster_10k", cur.Cluster10k, base.Cluster10k)
	// Intra-cell parallelism gates: byte-identity is unconditional — a
	// parallel run that differs from the serial run in any bit is a
	// correctness failure, not a perf number. The >= 2x speedup is only
	// judged with real cores behind it (GOMAXPROCS >= 8, the cell's
	// design point); below that the ratio is recorded, not gated.
	if cur.Cluster10kIntra.NP > 0 {
		status := "ok"
		if !cur.Cluster10kIntra.Identical {
			status = "REGRESSION"
			ok = false
		}
		fmt.Fprintf(os.Stderr, "simbench: check: cluster_10k_intra identical: %t (must be true): %s\n",
			cur.Cluster10kIntra.Identical, status)
		if cur.GOMAXPROCS >= 8 {
			status = "ok"
			if cur.Cluster10kIntra.Speedup < 2 {
				status = "REGRESSION"
				ok = false
			}
			fmt.Fprintf(os.Stderr, "simbench: check: cluster_10k_intra speedup: %.2fx (>= 2x at GOMAXPROCS %d): %s\n",
				cur.Cluster10kIntra.Speedup, cur.GOMAXPROCS, status)
		} else {
			fmt.Fprintf(os.Stderr, "simbench: check: cluster_10k_intra speedup: %.2fx (recorded; not gated at GOMAXPROCS %d < 8)\n",
				cur.Cluster10kIntra.Speedup, cur.GOMAXPROCS)
		}
	} else {
		fmt.Fprintln(os.Stderr, "simbench: check: cluster_10k_intra: scenario missing from this run")
		ok = false
	}
	return ok
}

// printDiff loads two BENCH_sim.json files and prints per-metric deltas —
// the `make bench-diff` view a reviewer reads next to a perf PR. It never
// fails on regressions; that is -check's job.
func printDiff(oldPath, newPath string) error {
	load := func(p string) (*Report, error) {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		r := &Report{}
		if err := json.Unmarshal(data, r); err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		return r, nil
	}
	o, err := load(oldPath)
	if err != nil {
		return err
	}
	n, err := load(newPath)
	if err != nil {
		return err
	}
	pct := func(ov, nv float64) string {
		if ov <= 0 {
			return "n/a"
		}
		return fmt.Sprintf("%+.1f%%", 100*(nv/ov-1))
	}
	fmt.Printf("# BENCH_sim diff: %s (%s) -> %s (%s)\n", oldPath, o.Schema, newPath, n.Schema)
	oldBench := map[string]BenchLine{}
	for _, b := range o.Benchmarks {
		oldBench[b.Name] = b
	}
	for _, b := range n.Benchmarks {
		ob, found := oldBench[b.Name]
		if !found {
			fmt.Printf("%-28s ns/op %12.0f  allocs/op %5d  (new scenario)\n", b.Name, b.NsPerOp, b.AllocsPerOp)
			continue
		}
		fmt.Printf("%-28s ns/op %12.0f -> %12.0f (%s)  allocs/op %5d -> %5d\n",
			b.Name, ob.NsPerOp, b.NsPerOp, pct(ob.NsPerOp, b.NsPerOp), ob.AllocsPerOp, b.AllocsPerOp)
	}
	fmt.Printf("%-28s %12.4gs -> %12.4gs (%s)\n", "sweep sequential",
		o.Sweep.Sequential, n.Sweep.Sequential, pct(o.Sweep.Sequential, n.Sweep.Sequential))
	// Sections absent from the old file (a report predating their schema
	// version unmarshals them as zero values) print n/a on the old side
	// instead of a bogus 0 -> N delta.
	cluster := func(name string, oc, nc ClusterLine) {
		if nc.NP == 0 {
			return
		}
		if oc.NP == 0 {
			fmt.Printf("%-28s wall %8s -> %8.4gs (n/a)  allocs/op %7s -> %7d  [np=%d] (no baseline: old schema)\n",
				name, "n/a", nc.Wall, "n/a", nc.AllocsPerOp, nc.NP)
			return
		}
		fmt.Printf("%-28s wall %8.4gs -> %8.4gs (%s)  allocs/op %7d -> %7d  [np=%d]\n",
			name, oc.Wall, nc.Wall, pct(oc.Wall, nc.Wall), oc.AllocsPerOp, nc.AllocsPerOp, nc.NP)
	}
	cluster("cluster", o.Cluster, n.Cluster)
	cluster("cluster_1024", o.Cluster1024, n.Cluster1024)
	cluster("cluster_10k", o.Cluster10k, n.Cluster10k)
	if n.Cluster10kIntra.NP > 0 {
		oldSpeedup := "n/a"
		if o.Cluster10kIntra.NP > 0 {
			oldSpeedup = fmt.Sprintf("%.2fx", o.Cluster10kIntra.Speedup)
		}
		fmt.Printf("%-28s speedup %s -> %.2fx  identical=%t  engines=%d windows=%d\n",
			"cluster_10k_intra", oldSpeedup, n.Cluster10kIntra.Speedup,
			n.Cluster10kIntra.Identical, n.Cluster10kIntra.Engines, n.Cluster10kIntra.Windows)
	}
	if n.TuneSearch.Cells > 0 {
		if o.TuneSearch.Cells > 0 {
			fmt.Printf("%-28s %12.4gx -> %12.4gx\n", "tune_search speedup", o.TuneSearch.Speedup, n.TuneSearch.Speedup)
		} else {
			fmt.Printf("%-28s %12s -> %12.4gx (no baseline: old schema)\n", "tune_search speedup", "n/a", n.TuneSearch.Speedup)
		}
	}
	if n.Serve.Requests > 0 {
		if o.Serve.Requests > 0 {
			fmt.Printf("%-28s p50 %.4gs -> %.4gs (%s)  p99 %.4gs -> %.4gs  hit %.4f -> %.4f\n",
				"serve warm", o.Serve.WarmP50, n.Serve.WarmP50, pct(o.Serve.WarmP50, n.Serve.WarmP50),
				o.Serve.WarmP99, n.Serve.WarmP99, o.Serve.WarmHitRate, n.Serve.WarmHitRate)
		} else {
			fmt.Printf("%-28s p50 %s -> %.4gs (n/a)  p99 %s -> %.4gs  hit %s -> %.4f (no baseline: old schema)\n",
				"serve warm", "n/a", n.Serve.WarmP50, "n/a", n.Serve.WarmP99, "n/a", n.Serve.WarmHitRate)
		}
	}
	return nil
}

// benchCopyChurn is the end-to-end flow lifecycle under contention: each op
// is one 64 KiB copy (flow start, two rate recomputations, completion
// dispatch) with a second copy stream keeping the shared links loaded.
func benchCopyChurn(b *testing.B) {
	m := topology.IG()
	e := sim.NewEngine()
	n := memsim.New(e, m, nil)
	src := n.Alloc(m.Domains[0], MB, false)
	dst := n.Alloc(m.Domains[1], MB, false)
	src2 := n.Alloc(m.Domains[2], MB, false)
	dst2 := n.Alloc(m.Domains[3], MB, false)
	b.ReportAllocs()
	b.ResetTimer()
	e.Spawn("bg", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			n.Copy(p, m.Cores[12], dst2.View(0, 64<<10), src2.View(0, 64<<10))
		}
	})
	e.Spawn("fg", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			n.Copy(p, m.Cores[0], dst.View(0, 64<<10), src.View(0, 64<<10))
		}
	})
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// benchScheduleFire is the engine's bare event lifecycle.
func benchScheduleFire(b *testing.B) {
	e := sim.NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.Schedule(1e-9, tick)
		}
	}
	e.Schedule(1e-9, tick)
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// benchParkWake is one process handoff per op: a parked process woken by
// another — two coroutine switches plus the wake/wait event lifecycle,
// the primitive under every message and copy completion.
func benchParkWake(b *testing.B) {
	e := sim.NewEngine()
	var waiter *sim.Proc
	b.ReportAllocs()
	b.ResetTimer()
	waiter = e.Spawn("waiter", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Park("bench")
		}
	})
	e.Spawn("waker", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			waiter.Wake()
			p.Wait(1e-9)
		}
	})
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// benchBcastCell is one full measurement cell of the paper's component: a
// 64 KiB KNEM-Coll Broadcast across all of Zoot's ranks per op — region
// registration, out-of-band cookie fan-out, every receiver's kernel-assisted
// copy, ACK collection, deregistration. The whole protocol stack (core,
// mpi, shm, knem, memsim, sim) must stay allocation-free in steady state;
// the warm-up iteration takes the one-time pool fills off the measurement.
func benchBcastCell(b *testing.B) {
	m := topology.Zoot()
	b.ReportAllocs()
	_, _, err := mpi.Run(mpi.Options{
		Machine: m,
		BTL:     mpi.BTLSM,
		SHM:     shm.Config{FragSize: 128 << 10},
		Coll:    core.New,
	}, func(r *mpi.Rank) {
		buf := r.Alloc(64 << 10).Whole()
		r.Bcast(buf, 0) // warm-up: fill the free lists
		r.Barrier()
		if r.ID() == 0 {
			b.ResetTimer()
		}
		for i := 0; i < b.N; i++ {
			r.Bcast(buf, 0)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// benchBcastCellManyCore is benchBcastCell at the ROADMAP's many-core
// scale: one 64 KiB KNEM-Coll Broadcast across all 128 or 512 ranks of a
// ManyCore node per op. These are the cells the bucketed event queue and
// the arena are gated on — at 512 ranks every op pushes tens of thousands
// of events and flow reprices through the engine.
//
// Like the sharded sweep runner, the cell keeps one engine/net pair and
// Resets it per invocation, so the reported allocs/op measures repeat
// runs on a reused arena-backed shard — testing.Benchmark's calibration
// pass doubles as shard warm-up.
func benchBcastCellManyCore(cores int) func(b *testing.B) {
	var (
		m   *topology.Machine
		eng *sim.Engine
		net *memsim.Net
	)
	return func(b *testing.B) {
		if eng == nil {
			m = topology.ManyCore(cores)
			eng = sim.NewEngine()
			net = memsim.New(eng, m, nil)
		} else {
			eng.Reset()
			net.Reset(nil)
		}
		b.ReportAllocs()
		_, _, err := mpi.Run(mpi.Options{
			Machine: m,
			BTL:     mpi.BTLSM,
			SHM:     shm.Config{FragSize: 128 << 10},
			Coll:    core.New,
			Engine:  eng,
			Net:     net,
		}, func(r *mpi.Rank) {
			buf := r.Alloc(64 << 10).Whole()
			for i := 0; i < 64; i++ {
				r.Bcast(buf, 0) // warm-up: fill the free lists
			}
			r.Barrier()
			if r.ID() == 0 {
				b.ResetTimer()
			}
			for i := 0; i < b.N; i++ {
				r.Bcast(buf, 0)
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// measureSweep times the reference sweep — Broadcast across the paper's
// five components on IG — sequentially and, when the host can actually run
// cells concurrently, with four concurrent cells.
func measureSweep(short bool) SweepLine {
	m := topology.IG()
	sizes := bench.PaperSizes()
	comps := bench.PaperComponents()
	if short {
		sizes = []int64{64 * bench.KiB, 1 * bench.MiB}
		comps = comps[:2]
	}
	var cfgs []bench.Config
	for _, c := range comps {
		for _, sz := range sizes {
			cfgs = append(cfgs, bench.Config{
				Machine: m, Comp: c, Op: bench.OpBcast, Size: sz,
				Iters: 1, OffCache: true,
			})
		}
	}
	timeIt := func(par int) float64 {
		bench.SetParallel(par)
		defer bench.SetParallel(1)
		start := time.Now()
		bench.MeasureAll(cfgs)
		return time.Since(start).Seconds()
	}
	line := SweepLine{
		Op: "bcast", Machine: m.Name, Iters: 1, Cells: len(cfgs),
		Sequential: timeIt(1),
	}
	if runtime.GOMAXPROCS(0) < 2 {
		// A 1-CPU box time-slices the four workers over one core; the
		// measured "speedup" would only record scheduling overhead.
		line.ParallelSkipped = fmt.Sprintf("GOMAXPROCS=%d", runtime.GOMAXPROCS(0))
		return line
	}
	line.Parallel4 = timeIt(4)
	line.Speedup = line.Sequential / line.Parallel4
	return line
}

// measureCluster times the 256-rank hierarchical broadcast cell: 8
// synthetic 32-core nodes behind one switch, the hierarchical tree family
// end to end through the measurement harness (full mode; -short drops to
// 64 ranks over 4 nodes so the CI smoke stays fast).
func measureCluster(short bool) ClusterLine {
	nodes, op, size := 8, bench.OpBcast, int64(1*bench.MiB)
	if short {
		nodes, size = 4, 64*bench.KiB
	}
	box := topology.Synthetic(topology.SyntheticSpec{
		Boards: 1, SocketsPerBoard: 4, CoresPerSocket: 8,
		BusBW: 20e9, LinkBW: 12e9,
		CacheSize: 18 << 20, CachePortBW: 32e9,
		Spec: topology.Dancer().Spec,
	})
	cfg := topology.ClusterConfig{
		Name:   "simbench",
		Switch: &topology.SwitchSpec{Name: "tor", BW: 6e9, Lat: 2e-6},
	}
	if short {
		box = topology.Synthetic(topology.SyntheticSpec{
			Boards: 1, SocketsPerBoard: 2, CoresPerSocket: 8,
			BusBW: 20e9, LinkBW: 12e9,
			CacheSize: 18 << 20, CachePortBW: 32e9,
			Spec: topology.Dancer().Spec,
		})
	}
	for i := 0; i < nodes; i++ {
		cfg.Nodes = append(cfg.Nodes, topology.NodeSpec{Name: fmt.Sprintf("n%d", i), Machine: "box"})
	}
	cl, err := topology.CompileCluster(cfg, func(string) (*topology.Machine, error) { return box, nil })
	if err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(1)
	}
	return runClusterCell(cl, op, size, nodes)
}

// runClusterCell runs one cluster cell twice through the measurement
// harness: a cold run for the wall clock (shard construction included, as
// a fresh process would pay it) and a repeat run on the now-warmed shard
// whose ReadMemStats delta is the cell's allocs_per_op — the arena's
// figure of merit at cluster scale. The cells are pinned to the serial
// executor: allocs_per_op measures the single-shard arena path, and
// letting eligible shapes drift into the partitioned executor would fold
// 80-odd engine constructions into the number and break comparisons
// across report versions. The partitioned path has its own cell
// (cluster_10k_intra) with its own figures of merit.
func runClusterCell(cl *topology.Cluster, op bench.Op, size int64, nodes int) ClusterLine {
	bench.SetParallelIntra(false)
	defer bench.SetParallelIntra(true)
	cfg := bench.Config{
		Machine: cl.Global, Comp: bench.Hier(cl), Op: op, Size: size, Iters: 1, OffCache: true,
	}
	start := time.Now()
	res, err := bench.Measure(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(1)
	}
	wall := time.Since(start).Seconds()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if _, err := bench.Measure(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(1)
	}
	runtime.ReadMemStats(&after)
	return ClusterLine{
		Nodes: nodes, NP: cl.Global.NCores(), Op: string(op), Size: size,
		Simulated: res.Seconds, Wall: wall,
		AllocsPerOp: int64(after.Mallocs - before.Mallocs),
	}
}

// measureCluster1024 times the 1024-rank hierarchical broadcast cell:
// sixteen 64-core nodes behind one switch (-short drops to 8 nodes / 512
// ranks so the smoke stays fast; the -check gate only compares matching
// shapes).
func measureCluster1024(short bool) ClusterLine {
	nodes, op, size := 16, bench.OpBcast, int64(1*bench.MiB)
	if short {
		nodes, size = 8, 64*bench.KiB
	}
	box := topology.Synthetic(topology.SyntheticSpec{
		Boards: 1, SocketsPerBoard: 8, CoresPerSocket: 8,
		BusBW: 35e9, LinkBW: 18e9,
		CacheSize: 32 << 20, CachePortBW: 60e9,
		Spec: topology.ManyCore(128).Spec,
	})
	cfg := topology.ClusterConfig{
		Name:   "simbench1024",
		Switch: &topology.SwitchSpec{Name: "tor", BW: 12e9, Lat: 2e-6},
	}
	for i := 0; i < nodes; i++ {
		cfg.Nodes = append(cfg.Nodes, topology.NodeSpec{Name: fmt.Sprintf("n%d", i), Machine: "box"})
	}
	cl, err := topology.CompileCluster(cfg, func(string) (*topology.Machine, error) { return box, nil })
	if err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(1)
	}
	return runClusterCell(cl, op, size, nodes)
}

// measureCluster10k is the ROADMAP's 10k-rank cluster point: eighty
// 128-core nodes (10,240 ranks) behind one switch, one hierarchical
// 64 KiB broadcast. It keeps the same shape in -short mode on purpose —
// the cell exists to prove the full 10,240-rank run fits the CI smoke
// budget, so shrinking it would defeat it.
func measureCluster10k() ClusterLine {
	cl, nodes := cluster10k()
	return runClusterCell(cl, bench.OpBcast, 64*bench.KiB, nodes)
}

// cluster10k compiles the canonical 10,240-rank cluster shape shared by
// the cluster_10k and cluster_10k_intra cells.
func cluster10k() (*topology.Cluster, int) {
	nodes := 80
	box := topology.Synthetic(topology.SyntheticSpec{
		Boards: 1, SocketsPerBoard: 16, CoresPerSocket: 8,
		BusBW: 35e9, LinkBW: 18e9,
		CacheSize: 32 << 20, CachePortBW: 60e9,
		Spec: topology.ManyCore(128).Spec,
	})
	cfg := topology.ClusterConfig{
		Name:   "simbench10k",
		Switch: &topology.SwitchSpec{Name: "tor", BW: 12e9, Lat: 2e-6},
	}
	for i := 0; i < nodes; i++ {
		cfg.Nodes = append(cfg.Nodes, topology.NodeSpec{Name: fmt.Sprintf("n%d", i), Machine: "box"})
	}
	cl, err := topology.CompileCluster(cfg, func(string) (*topology.Machine, error) { return box, nil })
	if err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(1)
	}
	return cl, nodes
}

// measureCluster10kIntra is the intra-cell parallelism cell: the 10k-rank
// broadcast forced through the single-engine path and the partitioned
// engine group in one process (both bypass the memo cache), wall clocks
// and the bit-identity verdict recorded. The serial leg runs first so
// both legs pay comparable shard warm-up.
func measureCluster10kIntra() IntraLine {
	cl, nodes := cluster10k()
	op, size := bench.OpBcast, int64(64*bench.KiB)
	cfg := bench.Config{
		Machine: cl.Global, Comp: bench.Hier(cl), Op: op, Size: size, Iters: 1, OffCache: true,
	}
	ctx := context.Background()
	start := time.Now()
	serial, err := bench.MeasureForced(ctx, cfg, false)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(1)
	}
	serialWall := time.Since(start).Seconds()
	groupsBefore := bench.EngineGroups()
	start = time.Now()
	parallel, err := bench.MeasureForced(ctx, cfg, true)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(1)
	}
	parallelWall := time.Since(start).Seconds()
	groups := bench.EngineGroups()
	return IntraLine{
		Nodes: nodes, NP: cl.Global.NCores(), Op: string(op), Size: size,
		SerialWall: serialWall, ParallelWall: parallelWall,
		Speedup:   serialWall / parallelWall,
		Identical: parallel.Seconds == serial.Seconds && reflect.DeepEqual(parallel.Stats, serial.Stats),
		Engines:   groups.EnginesHighWater,
		Windows:   groups.Windows - groupsBefore.Windows,
	}
}

// serveBatch is the serving-tier reference batch: 64 cells (two
// components x two ops x sixteen sizes) on Zoot at np=8 — small enough
// that the cold round finishes in CI, wide enough that the warm round's
// hit rate actually exercises the sharded LRU and memo layers (-short
// trims to 16 cells).
func serveBatch(short bool) serve.BatchRequest {
	comps := []string{"KNEM-Coll", "Tuned-SM"}
	ops := []string{"bcast", "gather"}
	nsizes := 16
	if short {
		nsizes = 4
	}
	req := serve.BatchRequest{Machine: "Zoot"}
	for _, comp := range comps {
		for _, op := range ops {
			for i := 0; i < nsizes; i++ {
				req.Cells = append(req.Cells, serve.CellSpec{
					Comp: comp, Op: op, Size: 1 << (10 + i), NP: 8, Iters: 1,
				})
			}
		}
	}
	return req
}

// measureServe boots an in-process simd server over a fresh temporary
// cache and drives the load harness through real HTTP: a cold round that
// populates the layered caches, then a timed warm round that must be
// served entirely without re-simulation. The harness itself asserts
// byte-identical responses across every repetition and concurrency level.
func measureServe(short bool) ServeLine {
	dir, err := os.MkdirTemp("", "simbench-serve-cache-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	if err := bench.EnableCache(dir); err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(1)
	}
	defer bench.DisableCache()
	bench.SetParallel(runtime.GOMAXPROCS(0))
	defer bench.SetParallel(1)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(1)
	}
	srv := &http.Server{Handler: serve.New(serve.Options{}).Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	req := serveBatch(short)
	ctx := context.Background()
	t0 := time.Now()
	cold, err := serve.Load(ctx, serve.LoadOptions{BaseURL: base, Request: req, Concurrency: 4, Repetitions: 1})
	if err != nil {
		fmt.Fprintln(os.Stderr, "simbench: serve cold round:", err)
		os.Exit(1)
	}
	coldWall := time.Since(t0).Seconds()

	simsBefore := fetchSimCount(base)
	warm, err := serve.Load(ctx, serve.LoadOptions{BaseURL: base, Request: req, Concurrency: 8, Repetitions: 2})
	if err != nil {
		fmt.Fprintln(os.Stderr, "simbench: serve warm round:", err)
		os.Exit(1)
	}
	if string(warm.Body) != string(cold.Body) {
		fmt.Fprintln(os.Stderr, "simbench: serve warm response differs from cold response")
		os.Exit(1)
	}
	return ServeLine{
		Machine: req.Machine, Cells: len(req.Cells), Requests: cold.Requests + warm.Requests,
		ColdSeconds: coldWall, ColdHitRate: cold.HitRate,
		WarmP50: warm.P50Seconds, WarmP99: warm.P99Seconds, WarmHitRate: warm.HitRate,
		WarmSimCells: fetchSimCount(base) - simsBefore,
	}
}

// fetchSimCount reads the server's cumulative simulated-cell count (cells
// that reached the runner and were not memo hits).
func fetchSimCount(base string) int64 {
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	var st serve.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(1)
	}
	return st.SimLatency.Count - st.Cache.SimHits
}

// measureTuneSearch runs one autotuner search twice against a fresh
// temporary cache directory: the first run simulates every cell, the
// second replays them all from the memoization layer.
func measureTuneSearch(short bool) TuneSearchLine {
	m := topology.Zoot()
	o := search.Options{
		Machine: m,
		Ops:     []string{"bcast", "gather"},
		Sizes:   []int64{64 * bench.KiB, 256 * bench.KiB, 1 * bench.MiB},
	}
	if short {
		o.Ops = []string{"bcast"}
		o.Sizes = []int64{64 * bench.KiB, 1 * bench.MiB}
	}
	dir, err := os.MkdirTemp("", "simbench-cache-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	if err := bench.EnableCache(dir); err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(1)
	}
	defer bench.DisableCache()
	timeIt := func() (float64, int) {
		// Drop the in-memory layer so the second run exercises the
		// persistent path, like a separate process would.
		bench.DisableCache()
		if err := bench.EnableCache(dir); err != nil {
			fmt.Fprintln(os.Stderr, "simbench:", err)
			os.Exit(1)
		}
		start := time.Now()
		t, err := search.Run(o)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simbench:", err)
			os.Exit(1)
		}
		return time.Since(start).Seconds(), len(t.Cells)
	}
	fresh, cells := timeIt()
	cached, _ := timeIt()
	return TuneSearchLine{
		Machine: m.Name, Ops: strings.Join(o.Ops, ","), Cells: cells,
		SecondsFresh: fresh, SecondsCached: cached, Speedup: fresh / cached,
	}
}
