// Command simbench records the simulator's performance trajectory as
// BENCH_sim.json: ns/op and allocs/op for the hot paths (flow churn under
// contention, event scheduling, process handoff) plus the wall-clock time
// of a reference sweep run sequentially and with four concurrent
// measurement cells.
//
// The emitted file carries the host's CPU count so speedup numbers can be
// judged honestly: on a single-CPU runner the parallel sweep cannot beat
// the sequential one no matter how good the runner is. The allocs/op and
// ns/op trajectory against the recorded pre-optimization baseline is
// machine-independent.
//
// Usage:
//
//	simbench                 # full run, JSON on stdout
//	simbench -short          # CI smoke: 1-iteration sweep, -benchtime=10000x
//	simbench -o BENCH_sim.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/memsim"
	"repro/internal/sim"
	"repro/internal/topology"
)

const MB = 1 << 20

// Report is the BENCH_sim.json schema ("bench_sim/v1").
type Report struct {
	Schema     string      `json:"schema"`
	GoVersion  string      `json:"go"`
	CPUs       int         `json:"cpus"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Short      bool        `json:"short"`
	Benchmarks []BenchLine `json:"benchmarks"`
	Sweep      SweepLine   `json:"sweep"`
	Baseline   []BenchLine `json:"baseline_pre_optimization"`
}

// BenchLine is one micro-benchmark result (or recorded baseline).
type BenchLine struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// SweepLine is the reference sweep (imb -op bcast -machine IG) measured
// sequentially and with four concurrent cells. Speedup > 1 requires real
// parallelism; on cpus=1 expect ~1.0 (the point of recording cpus).
type SweepLine struct {
	Op         string  `json:"op"`
	Machine    string  `json:"machine"`
	Iters      int     `json:"iters"`
	Cells      int     `json:"cells"`
	Sequential float64 `json:"seconds_sequential"`
	Parallel4  float64 `json:"seconds_parallel4"`
	Speedup    float64 `json:"speedup"`
}

// baseline numbers measured on this codebase immediately before the
// allocation-free solver + pooled-event optimizations (same scenarios,
// benchtime 200ms, GOMAXPROCS=1). Kept in the report so any future run
// shows the trajectory without digging through git history.
var baseline = []BenchLine{
	{Name: "memsim/copy_churn_64KiB", NsPerOp: 5278, AllocsPerOp: 34, BytesPerOp: 2772},
	{Name: "sim/schedule_fire", NsPerOp: 67.4, AllocsPerOp: 1, BytesPerOp: 80},
	{Name: "sim/park_wake", NsPerOp: 1218, AllocsPerOp: 4, BytesPerOp: 248},
	{Name: "memsim/recompute_rates_flows48", NsPerOp: 15690, AllocsPerOp: 11, BytesPerOp: 3176},
	{Name: "memsim/reschedule_flows48", NsPerOp: 13399, AllocsPerOp: 13, BytesPerOp: 3560},
}

func main() {
	short := flag.Bool("short", false, "CI smoke mode: tiny sweep, capped benchtime")
	out := flag.String("o", "", "write JSON to this file instead of stdout")
	flag.Parse()

	rep := Report{
		Schema:     "bench_sim/v1",
		GoVersion:  runtime.Version(),
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Short:      *short,
		Baseline:   baseline,
	}

	// testing.Benchmark self-calibrates to ~1s per scenario — short
	// enough that even the CI smoke job runs the full micro set; -short
	// only trims the sweep below.
	run := func(name string, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		rep.Benchmarks = append(rep.Benchmarks, BenchLine{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}

	run("memsim/copy_churn_64KiB", benchCopyChurn)
	run("sim/schedule_fire", benchScheduleFire)
	run("sim/park_wake", benchParkWake)

	rep.Sweep = measureSweep(*short)

	enc, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(1)
	}
}

// benchCopyChurn is the end-to-end flow lifecycle under contention: each op
// is one 64 KiB copy (flow start, two rate recomputations, completion
// dispatch) with a second copy stream keeping the shared links loaded.
func benchCopyChurn(b *testing.B) {
	m := topology.IG()
	e := sim.NewEngine()
	n := memsim.New(e, m, nil)
	src := n.Alloc(m.Domains[0], MB, false)
	dst := n.Alloc(m.Domains[1], MB, false)
	src2 := n.Alloc(m.Domains[2], MB, false)
	dst2 := n.Alloc(m.Domains[3], MB, false)
	b.ReportAllocs()
	b.ResetTimer()
	e.Spawn("bg", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			n.Copy(p, m.Cores[12], dst2.View(0, 64<<10), src2.View(0, 64<<10))
		}
	})
	e.Spawn("fg", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			n.Copy(p, m.Cores[0], dst.View(0, 64<<10), src.View(0, 64<<10))
		}
	})
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// benchScheduleFire is the engine's bare event lifecycle.
func benchScheduleFire(b *testing.B) {
	e := sim.NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.Schedule(1e-9, tick)
		}
	}
	e.Schedule(1e-9, tick)
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// benchParkWake is one process handoff per op: a parked process woken by
// another, the primitive under every message and copy completion.
func benchParkWake(b *testing.B) {
	e := sim.NewEngine()
	var waiter *sim.Proc
	b.ReportAllocs()
	b.ResetTimer()
	waiter = e.Spawn("waiter", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Park("bench")
		}
	})
	e.Spawn("waker", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			waiter.Wake()
			p.Wait(1e-9)
		}
	})
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// measureSweep times the reference sweep — Broadcast across the paper's
// five components on IG — sequentially and with four concurrent cells.
func measureSweep(short bool) SweepLine {
	m := topology.IG()
	sizes := bench.PaperSizes()
	comps := bench.PaperComponents()
	if short {
		sizes = []int64{64 * bench.KiB, 1 * bench.MiB}
		comps = comps[:2]
	}
	var cfgs []bench.Config
	for _, c := range comps {
		for _, sz := range sizes {
			cfgs = append(cfgs, bench.Config{
				Machine: m, Comp: c, Op: bench.OpBcast, Size: sz,
				Iters: 1, OffCache: true,
			})
		}
	}
	timeIt := func(par int) float64 {
		bench.SetParallel(par)
		defer bench.SetParallel(1)
		start := time.Now()
		bench.MeasureAll(cfgs)
		return time.Since(start).Seconds()
	}
	seq := timeIt(1)
	par := timeIt(4)
	return SweepLine{
		Op: "bcast", Machine: m.Name, Iters: 1, Cells: len(cfgs),
		Sequential: seq, Parallel4: par, Speedup: seq / par,
	}
}
