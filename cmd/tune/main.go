// Command tune drives the empirical autotuner: it searches the collective
// algorithm space on a simulated machine, persists the winning decisions
// as a versioned JSON table, and inspects or compares such tables.
//
// Usage:
//
//	tune search -machine IG -o machines/ig.tune.json          # full default grid
//	tune search -machine IG -ops bcast -sizes 512K,1M,2M,4M,8M -parallel 4 -o ig.json
//	tune show machines/ig.tune.json                            # validate + print
//	tune show -machine IG machines/ig.tune.json                # also check fingerprint
//	tune diff old.json new.json                                # decision drift
//	tune diff -defaults machines/ig.tune.json                  # tuned vs hardcoded rules
//
// Searches are deterministic: the same machine, grid, and seed emit a
// byte-identical table at any -parallel level.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/topology"
	"repro/internal/tune"
	"repro/internal/tune/search"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "search":
		cmdSearch(os.Args[2:])
	case "show":
		cmdShow(os.Args[2:])
	case "diff":
		cmdDiff(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "tune: unknown command %q (valid: search, show, diff)\n", os.Args[1])
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  tune search -machine <name|file> [-ops a,b] [-np n,m] [-sizes 32K,1M] [-iters n] [-seed n] [-keep f] [-parallel n] [-o table.json]
  tune show [-machine <name|file>] <table.json>
  tune diff <old.json> <new.json>
  tune diff -defaults [-v] <table.json>
`)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tune:", strings.TrimPrefix(err.Error(), "tune: "))
	os.Exit(1)
}

func cmdSearch(args []string) {
	fs := flag.NewFlagSet("tune search", flag.ExitOnError)
	machine := fs.String("machine", "IG", "machine to tune: Zoot, Dancer, Saturn, IG, or a machine-description file")
	cluster := fs.String("cluster", "", "cluster-description file (.cluster) to tune; replaces -machine and adds the hierarchical family to the grid")
	ops := fs.String("ops", "", "comma-separated operations to tune (default: bcast,gather,scatter,allgather,alltoall)")
	nps := fs.String("np", "", "comma-separated communicator sizes (default: all cores)")
	sizes := fs.String("sizes", "", "comma-separated grid sizes (default: the paper's 32K..8M)")
	iters := fs.Int("iters", 1, "measured iterations per cell")
	seed := fs.Int64("seed", 0, "seed recorded in the table (the search draws no randomness)")
	keep := fs.Float64("keep", 0, "successive-halving keep factor (default 1.5)")
	parallel := fs.Int("parallel", 1, "concurrent measurement cells; the table is byte-identical at any level")
	out := fs.String("o", "", "output path (default: stdout)")
	quiet := fs.Bool("q", false, "suppress progress logging")
	noCache := fs.Bool("no-cache", false, "disable run memoization: re-simulate every cell")
	cacheDir := fs.String("cache-dir", "", "persistent simulation cache directory (default: the user cache dir)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write an allocation profile to this file at exit")
	fs.Parse(args)
	bench.SetParallel(*parallel)
	cached, err := bench.EnableDefaultCache("tune", *noCache, *cacheDir)
	if err != nil {
		fatal(err)
	}
	stopProfiles, err := bench.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	defer stopProfiles()

	o := search.Options{Iters: *iters, Seed: *seed, KeepFactor: *keep}
	if *cluster != "" {
		cl, err := topology.LoadCluster(*cluster)
		if err != nil {
			fatal(err)
		}
		o.Cluster = cl
	} else {
		m, err := topology.LoadMachine(*machine)
		if err != nil {
			fatal(err)
		}
		o.Machine = m
	}
	if !*quiet {
		o.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "tune: "+format+"\n", args...)
		}
	}
	if *ops != "" {
		o.Ops = splitList(*ops)
	}
	for _, s := range splitList(*nps) {
		np, err := strconv.Atoi(s)
		if err != nil {
			fatal(fmt.Errorf("bad -np entry %q", s))
		}
		o.NPs = append(o.NPs, np)
	}
	for _, s := range splitList(*sizes) {
		o.Sizes = append(o.Sizes, parseSize(s))
	}
	t, err := search.Run(o)
	if err != nil {
		fatal(err)
	}
	if cached {
		hits, misses := bench.CacheCounts()
		fmt.Fprintf(os.Stderr, "tune: sim cache: %d hits, %d misses\n", hits, misses)
	}
	if *out == "" {
		if err := t.Write(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if err := t.WriteFile(*out); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "tune: wrote %d cells to %s\n", len(t.Cells), *out)
}

func cmdShow(args []string) {
	fs := flag.NewFlagSet("tune show", flag.ExitOnError)
	machine := fs.String("machine", "", "verify the table matches this machine's fingerprint")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	var m *topology.Machine
	if *machine != "" {
		var err error
		if m, err = topology.LoadMachine(*machine); err != nil {
			fatal(err)
		}
	}
	t, err := tune.Load(fs.Arg(0), m)
	if err != nil {
		fatal(err)
	}
	show(t, fs.Arg(0))
}

func show(t *tune.Table, path string) {
	fmt.Printf("# decision table %s\n", path)
	fmt.Printf("machine %s (fingerprint %s)  schema v%d  seed %d\n", t.Machine, t.Fingerprint, t.Version, t.Seed)
	fmt.Printf("grid: ops=%s nps=%s sizes=%s iters=%d keep=%.2f\n",
		strings.Join(t.Grid.Ops, ","), intList(t.Grid.NPs), sizeList(t.Grid.Sizes),
		t.Grid.Iters, t.Grid.KeepFactor)
	fmt.Printf("%-10s %4s %6s  %-38s %12s  %s\n", "op", "np", "size", "winner", "seconds", "runner-up (margin)")
	for _, c := range t.Cells {
		ru := "-"
		if c.RunnerUp != "" {
			ru = fmt.Sprintf("%s (+%.1f%%)", c.RunnerUp, 100*c.Margin())
		}
		fmt.Printf("%-10s %4d %6s  %-38s %10.1fus  %s\n",
			c.Op, c.NP, sizeLabel(c.Size), c.Choice.String(), c.Seconds*1e6, ru)
	}
}

func cmdDiff(args []string) {
	fs := flag.NewFlagSet("tune diff", flag.ExitOnError)
	defaults := fs.Bool("defaults", false, "compare the table's tuned decisions against the hardcoded default rules")
	verbose := fs.Bool("v", false, "with -defaults: list every cell, not only the improved ones")
	fs.Parse(args)
	switch {
	case *defaults && fs.NArg() == 1:
		t, err := tune.Load(fs.Arg(0), nil)
		if err != nil {
			fatal(err)
		}
		diffDefaults(t, *verbose)
	case !*defaults && fs.NArg() == 2:
		a, err := tune.Load(fs.Arg(0), nil)
		if err != nil {
			fatal(err)
		}
		b, err := tune.Load(fs.Arg(1), nil)
		if err != nil {
			fatal(err)
		}
		diffTables(a, b)
	default:
		usage()
		os.Exit(2)
	}
}

// diffDefaults renders, per cell, how the tuned decision compares with the
// per-family hardcoded defaults that were measured alongside it. Positive
// speedups are guaranteed by construction: the default configurations are
// never pruned, so each family's tuned best is at least as fast.
func diffDefaults(t *tune.Table, verbose bool) {
	fmt.Printf("# tuned vs hardcoded defaults on %s (positive = tuned faster)\n", t.Machine)
	fmt.Printf("%-10s %4s %6s  %-38s %12s %12s %9s\n",
		"op", "np", "size", "winner", "tuned", "knem-def", "speedup")
	var improved, total int
	for _, c := range t.Cells {
		k := c.Alts.Knem
		if k == nil {
			continue
		}
		total++
		best := k.Seconds
		if fb := c.Alts.TunedSM; fb != nil && fb.Seconds < best {
			best = fb.Seconds // the component delegates on this cell
		}
		speedup := k.DefaultSeconds/best - 1
		if speedup > 1e-9 {
			improved++
		} else if !verbose {
			continue
		}
		fmt.Printf("%-10s %4d %6s  %-38s %10.1fus %10.1fus %+8.1f%%\n",
			c.Op, c.NP, sizeLabel(c.Size), c.Choice.String(), best*1e6, k.DefaultSeconds*1e6, 100*speedup)
	}
	fmt.Printf("# %d of %d cells improved over the default KNEM-Coll rules; none regressed\n", improved, total)
}

func diffTables(a, b *tune.Table) {
	if a.Machine != b.Machine || a.Fingerprint != b.Fingerprint {
		fmt.Printf("# WARNING: tables are for different machines (%s/%s vs %s/%s)\n",
			a.Machine, a.Fingerprint, b.Machine, b.Fingerprint)
	}
	type key struct {
		op   string
		np   int
		size int64
	}
	am := map[key]tune.Cell{}
	for _, c := range a.Cells {
		am[key{c.Op, c.NP, c.Size}] = c
	}
	bm := map[key]tune.Cell{}
	keys := map[key]bool{}
	for k := range am {
		keys[k] = true
	}
	for _, c := range b.Cells {
		bm[key{c.Op, c.NP, c.Size}] = c
		keys[key{c.Op, c.NP, c.Size}] = true
	}
	ordered := make([]key, 0, len(keys))
	for k := range keys {
		ordered = append(ordered, k)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].op != ordered[j].op {
			return ordered[i].op < ordered[j].op
		}
		if ordered[i].np != ordered[j].np {
			return ordered[i].np < ordered[j].np
		}
		return ordered[i].size < ordered[j].size
	})
	changed := 0
	for _, k := range ordered {
		ca, inA := am[k]
		cb, inB := bm[k]
		switch {
		case !inA:
			fmt.Printf("%-10s %4d %6s  only new: %s\n", k.op, k.np, sizeLabel(k.size), cb.Choice)
			changed++
		case !inB:
			fmt.Printf("%-10s %4d %6s  only old: %s\n", k.op, k.np, sizeLabel(k.size), ca.Choice)
			changed++
		case ca.Choice != cb.Choice:
			fmt.Printf("%-10s %4d %6s  %s -> %s (%.1fus -> %.1fus)\n",
				k.op, k.np, sizeLabel(k.size), ca.Choice, cb.Choice, ca.Seconds*1e6, cb.Seconds*1e6)
			changed++
		}
	}
	fmt.Printf("# %d of %d cells differ\n", changed, len(ordered))
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseSize(s string) int64 {
	s = strings.TrimSpace(strings.ToUpper(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "M"):
		mult = 1 << 20
		s = s[:len(s)-1]
	case strings.HasSuffix(s, "K"):
		mult = 1 << 10
		s = s[:len(s)-1]
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil || v <= 0 {
		fatal(fmt.Errorf("bad size %q", s))
	}
	return v * mult
}

func sizeLabel(n int64) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dK", n>>10)
	}
	return fmt.Sprintf("%d", n)
}

func intList(ns []int) string {
	parts := make([]string, len(ns))
	for i, n := range ns {
		parts[i] = strconv.Itoa(n)
	}
	return strings.Join(parts, ",")
}

func sizeList(ns []int64) string {
	parts := make([]string, len(ns))
	for i, n := range ns {
		parts[i] = sizeLabel(n)
	}
	return strings.Join(parts, ",")
}
