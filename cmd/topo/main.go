// Command topo inspects the simulated hardware models: the four platforms
// of the paper's §VI-A (Zoot, Dancer, Saturn, IG), their cores, caches,
// NUMA domains, links, and domain distance matrices — the information the
// collective component derives its hierarchy from (hwloc's role, §IV).
//
// Usage:
//
//	topo              # summary of all four machines
//	topo -machine IG  # full detail for one machine
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/topology"
)

func main() {
	machine := flag.String("machine", "", "built-in machine or description file to detail (default: summarize all)")
	cluster := flag.String("cluster", "", "cluster-description file (.cluster) to detail")
	flag.Parse()

	if *cluster != "" {
		cl, err := topology.LoadCluster(*cluster)
		if err != nil {
			fmt.Fprintln(os.Stderr, "topo:", err)
			os.Exit(2)
		}
		detailCluster(cl)
		return
	}
	if *machine == "" {
		for _, name := range []string{"Zoot", "Dancer", "Saturn", "IG"} {
			summarize(topology.ByName(name))
		}
		return
	}
	m, err := topology.LoadMachine(*machine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "topo:", err)
		os.Exit(2)
	}
	detail(m)
}

func detailCluster(cl *topology.Cluster) {
	fmt.Printf("cluster %s: %d nodes, %d cores, %d NUMA domains\n",
		cl.Name, cl.NNodes(), cl.Global.NCores(), len(cl.Global.Domains))
	for _, n := range cl.Nodes {
		fmt.Printf("  node %-10s machine %-10s cores %d-%d, domains %d-%d, gateway vertex %d\n",
			n.Name, n.MachineName, n.FirstCore, n.FirstCore+n.NCores-1,
			n.FirstDomain, n.FirstDomain+n.NDomains-1, n.Gateway)
	}
	fmt.Println("  fabric:")
	if cl.Config.Switch != nil {
		sw := cl.Config.Switch
		fmt.Printf("    switch %s @ %.2f GB/s", sw.Name, sw.BW/1e9)
		if sw.Lat > 0 {
			fmt.Printf(", %.1f us", sw.Lat*1e6)
		}
		fmt.Printf(" (star vertex %d)\n", cl.SwitchVertex)
	}
	for _, l := range cl.Config.Links {
		fmt.Printf("    link %s: %s <-> %s @ %.2f GB/s", l.Name, l.A, l.B, l.BW/1e9)
		if l.Lat > 0 {
			fmt.Printf(", %.1f us", l.Lat*1e6)
		}
		fmt.Println()
	}
	fmt.Println("  composite machine:")
	summarize(cl.Global)
}

func summarize(m *topology.Machine) {
	fmt.Printf("%-8s %3d cores, %d NUMA domains, %d cache groups, %d links, max domain distance %d\n",
		m.Name, m.NCores(), len(m.Domains), len(m.Groups), len(m.Links), m.MaxDomainDistance())
}

func detail(m *topology.Machine) {
	summarize(m)
	fmt.Printf("  per-core copy engine %.1f GB/s, kernel trap %.0f ns, copy setup %.0f ns, pin %.0f ns/page, ctrl %.0f ns\n",
		m.Spec.CoreCopyBW/1e9, m.Spec.KernelTrap*1e9, m.Spec.CopySetup*1e9, m.Spec.PinPerPage*1e9, m.Spec.CtrlLatency*1e9)
	for _, d := range m.Domains {
		cores := make([]int, 0, len(d.Cores))
		for _, c := range d.Cores {
			cores = append(cores, c.ID)
		}
		fmt.Printf("  domain %d: bus %.1f GB/s, cores %v\n", d.ID, d.Bus.BW/1e9, cores)
	}
	for _, g := range m.Groups {
		cores := make([]int, 0, len(g.Cores))
		for _, c := range g.Cores {
			cores = append(cores, c.ID)
		}
		fmt.Printf("  cache group %d: %d KiB, port %.1f GB/s, cores %v\n", g.ID, g.Size>>10, g.Port.BW/1e9, cores)
	}
	fmt.Println("  interconnect links:")
	seen := map[string]int{}
	for _, l := range m.Links {
		if strings.HasPrefix(l.Name, "mem") || strings.HasPrefix(l.Name, "core") ||
			strings.HasPrefix(l.Name, "cache") || strings.HasPrefix(l.Name, "dma") {
			continue
		}
		seen[fmt.Sprintf("%s @ %.1f GB/s", l.Name, l.BW/1e9)]++
	}
	for k, v := range seen {
		fmt.Printf("    %d x %s\n", v, k)
	}
	fmt.Println("  domain distance matrix (hops):")
	fmt.Print("      ")
	for j := range m.Domains {
		fmt.Printf("%3d", j)
	}
	fmt.Println()
	for i, a := range m.Domains {
		fmt.Printf("    %2d", i)
		for _, b := range m.Domains {
			fmt.Printf("%3d", m.DomainDistance(a, b))
		}
		fmt.Println()
		_ = i
	}
}
