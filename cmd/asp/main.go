// Command asp regenerates the paper's Table I: the execution-time
// breakdown of the ASP all-pairs-shortest-path application (parallel
// Floyd-Warshall) under Open MPI (Tuned over shared memory), MPICH2, and
// the KNEM collective component, on the two extreme platforms Zoot and IG.
//
// Usage:
//
//	asp                     # both machines at paper scale (sampled)
//	asp -machine Zoot -n 16384 -sample 1024
//	asp -verify -n 64       # real-data run checked against the
//	                        # sequential solver
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/asp"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/topology"
)

func main() {
	machine := flag.String("machine", "", "built-in machine or description file (default: Zoot and IG at paper scale)")
	n := flag.Int("n", 0, "matrix dimension (default: paper scale per machine)")
	sample := flag.Int("sample", 512, "iterations to simulate and scale up (0 = all)")
	verify := flag.Bool("verify", false, "run with real data and verify against the sequential solver")
	parallel := flag.Int("parallel", 1, "concurrent simulation cells (results are identical at any level)")
	noCache := flag.Bool("no-cache", false, "disable run memoization: re-simulate every cell")
	cacheDir := flag.String("cache-dir", "", "persistent simulation cache directory (default: the user cache dir)")
	flag.Parse()
	bench.SetParallel(*parallel)

	if *verify {
		runVerify(*n)
		return
	}
	// Verification runs are real-data checks and never cached; the Table I
	// application cells below are deterministic and memoize like any sweep.
	cached, err := bench.EnableDefaultCache("asp", *noCache, *cacheDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "asp:", err)
		os.Exit(1)
	}
	type job struct {
		m *topology.Machine
		n int
	}
	var jobs []job
	switch *machine {
	case "":
		jobs = []job{{topology.Zoot(), 16384}, {topology.IG(), 32768}}
	default:
		m, err := topology.LoadMachine(*machine)
		if err != nil {
			fmt.Fprintln(os.Stderr, "asp:", err)
			os.Exit(2)
		}
		dim := *n
		if dim == 0 {
			dim = 16384
			if m.Name == "IG" {
				dim = 32768
			}
		}
		jobs = []job{{m, dim}}
	}
	for _, j := range jobs {
		bench.RunTable1(j.m, j.n, *sample).Render(os.Stdout)
		fmt.Println()
	}
	if cached {
		bench.ReportCacheCounts("asp")
	}
}

func runVerify(n int) {
	if n == 0 {
		n = 64
	}
	m := topology.Dancer()
	want := asp.Sequential(asp.Generate(n, 3), n)
	bad := false
	_, _, err := mpi.Run(mpi.Options{Machine: m, Coll: core.New, WithData: true}, func(r *mpi.Rank) {
		res := asp.Run(r, asp.Config{N: n}, asp.Generate(n, 3))
		for i := res.Lo; i < res.Hi; i++ {
			for j := 0; j < n; j++ {
				if res.Dist[(i-res.Lo)*n+j] != want[i*n+j] {
					bad = true
				}
			}
		}
	})
	if err != nil || bad {
		fmt.Fprintf(os.Stderr, "asp: verification FAILED (err=%v, mismatch=%v)\n", err, bad)
		os.Exit(1)
	}
	fmt.Printf("asp: %d^2 distributed solve matches the sequential solver on %s (%d ranks)\n",
		n, m.Name, m.NCores())
}
