package main

import (
	"strings"
	"testing"
)

// TestFlagValidation pins the closed-set validation for -op and -fig: every
// valid spelling is accepted, anything else is rejected with a one-line
// error that lists the valid values.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		flag  string
		val   string
		valid []string
		ok    bool
	}{
		{"-op", "bcast", validOps, true},
		{"-op", "gather", validOps, true},
		{"-op", "scatter", validOps, true},
		{"-op", "allgather", validOps, true},
		{"-op", "alltoall", validOps, true},
		{"-op", "alltoallv", validOps, true},
		{"-op", "barrier", validOps, true},
		{"-op", "pingpong", validOps, true},
		{"-op", "broadcast", validOps, false},
		{"-op", "Bcast", validOps, false},
		{"-op", "reduce", validOps, false},
		{"-op", "", validOps, false},
		{"-fig", "4", validFigs, true},
		{"-fig", "5", validFigs, true},
		{"-fig", "6", validFigs, true},
		{"-fig", "7", validFigs, true},
		{"-fig", "8", validFigs, true},
		{"-fig", "scatter", validFigs, true},
		{"-fig", "all", validFigs, true},
		{"-fig", "9", validFigs, false},
		{"-fig", "fig5", validFigs, false},
		{"-fig", "Scatter", validFigs, false},
	}
	for _, tc := range cases {
		err := checkChoice(tc.flag, tc.val, tc.valid)
		if tc.ok {
			if err != nil {
				t.Errorf("checkChoice(%s, %q) = %v, want accepted", tc.flag, tc.val, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("checkChoice(%s, %q) accepted, want rejection", tc.flag, tc.val)
			continue
		}
		msg := err.Error()
		if strings.ContainsRune(msg, '\n') {
			t.Errorf("checkChoice(%s, %q) error is not one line: %q", tc.flag, tc.val, msg)
		}
		for _, v := range tc.valid {
			if !strings.Contains(msg, v) {
				t.Errorf("checkChoice(%s, %q) error %q does not list valid value %q", tc.flag, tc.val, msg, v)
			}
		}
	}
}

// TestFigureMapMatchesValidFigs keeps the runFigures dispatch map and the
// validated -fig list from drifting apart.
func TestFigureMapMatchesValidFigs(t *testing.T) {
	for _, f := range validFigs {
		if f == "all" {
			continue
		}
		if err := checkChoice("-fig", f, validFigs); err != nil {
			t.Fatalf("valid fig %q rejected: %v", f, err)
		}
	}
	if err := checkChoice("-op", "bcast", validOps); err != nil {
		t.Fatalf("bcast rejected: %v", err)
	}
}
