// Command imb regenerates the paper's synthetic benchmark figures (Fig. 4
// through Fig. 8 and the §VI-C Scatter comparison) on the simulated
// platforms, printing normalized-runtime tables in the paper's format.
//
// Usage:
//
//	imb -fig 5              # Figure 5 (Broadcast, all four machines)
//	imb -fig all            # every figure
//	imb -op gather -machine IG -sizes 1M,8M   # ad-hoc sweep
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/topology"
)

var jsonOut bool

func main() {
	fig := flag.String("fig", "", "figure to regenerate: 4, 5, 6, 7, 8, scatter, all")
	scal := flag.Bool("scalability", false, "core-count scaling sweep (op, machine, sizes flags apply)")
	ablation := flag.Bool("ablation", false, "A/B measurements of the component's design choices")
	op := flag.String("op", "", "ad-hoc sweep: bcast, gather, scatter, allgather, alltoall, alltoallv")
	machine := flag.String("machine", "IG", "machine for ad-hoc sweeps: Zoot, Dancer, Saturn, IG, or a machine-description file")
	np := flag.Int("np", 0, "ranks (default: all cores)")
	sizes := flag.String("sizes", "", "comma-separated sizes for ad-hoc sweeps (e.g. 32K,1M,8M)")
	iters := flag.Int("iters", 3, "measured iterations per point")
	asJSON := flag.Bool("json", false, "emit figures as JSON instead of tables")
	comps := flag.String("comps", "", "comma-separated components for ad-hoc sweeps (default: the paper's five); options: Tuned-SM, Tuned-KNEM, MPICH2-SM, MPICH2-KNEM, KNEM-Coll, Basic-SM, SM-Coll")
	flag.Parse()
	jsonOut = *asJSON

	switch {
	case *ablation:
		bench.RenderAblations(os.Stdout, bench.RunAblations(*iters))
	case *scal:
		runScalability(*op, *machine, *sizes, *iters)
	case *fig != "":
		runFigures(*fig, *iters)
	case *op != "":
		runSweep(*op, *machine, *np, *sizes, *iters, *comps)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runFigures(which string, iters int) {
	figs := map[string]func(int) bench.Figure{
		"4":       bench.Fig4,
		"5":       bench.Fig5,
		"6":       bench.Fig6,
		"7":       bench.Fig7,
		"8":       bench.Fig8,
		"scatter": bench.ScatterFigure,
	}
	emit := func(f bench.Figure) {
		if jsonOut {
			if err := f.WriteJSON(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "imb:", err)
				os.Exit(1)
			}
			return
		}
		f.Render(os.Stdout)
	}
	if which == "all" {
		for _, k := range []string{"4", "5", "6", "scatter", "7", "8"} {
			emit(figs[k](iters))
		}
		return
	}
	f, ok := figs[which]
	if !ok {
		fmt.Fprintf(os.Stderr, "imb: unknown figure %q\n", which)
		os.Exit(2)
	}
	emit(f(iters))
}

func runSweep(op, machine string, np int, sizeList string, iters int, compList string) {
	m, err := topology.LoadMachine(machine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "imb:", err)
		os.Exit(2)
	}
	if np == 0 {
		np = m.NCores()
	}
	szs := bench.PaperSizes()
	if sizeList != "" {
		szs = nil
		for _, s := range strings.Split(sizeList, ",") {
			szs = append(szs, parseSize(s))
		}
	}
	panel := bench.Panel{
		Title:    fmt.Sprintf("%s on %s (np=%d)", op, m.Name, np),
		Machine:  m.Name,
		Baseline: "KNEM-Coll",
		Sizes:    szs,
	}
	for _, c := range pickComps(compList) {
		s := bench.Series{Label: c.Name, Seconds: map[int64]float64{}}
		for _, sz := range szs {
			res := bench.MustMeasure(bench.Config{
				Machine: m, NP: np, Comp: c, Op: bench.Op(op), Size: sz,
				Iters: iters, OffCache: true,
			})
			s.Seconds[sz] = res.Seconds
		}
		panel.Series = append(panel.Series, s)
	}
	panel.Render(os.Stdout)
}

func parseSize(s string) int64 {
	s = strings.TrimSpace(strings.ToUpper(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "M"):
		mult = 1 << 20
		s = s[:len(s)-1]
	case strings.HasSuffix(s, "K"):
		mult = 1 << 10
		s = s[:len(s)-1]
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		fmt.Fprintf(os.Stderr, "imb: bad size %q\n", s)
		os.Exit(2)
	}
	return v * mult
}

func runScalability(op, machine, sizeList string, iters int) {
	if op == "" {
		op = "bcast"
	}
	m, err := topology.LoadMachine(machine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "imb:", err)
		os.Exit(2)
	}
	size := int64(1 << 20)
	if sizeList != "" {
		size = parseSize(strings.Split(sizeList, ",")[0])
	}
	var ranks []int
	for np := 2; np < m.NCores(); np *= 2 {
		ranks = append(ranks, np)
	}
	ranks = append(ranks, m.NCores())
	s := bench.RunScalability(m, bench.Op(op), size, ranks,
		[]bench.Comp{bench.TunedSM(), bench.TunedKNEM(), bench.KNEMColl()}, iters)
	s.Render(os.Stdout)
}

func pickComps(list string) []bench.Comp {
	if list == "" {
		return bench.PaperComponents()
	}
	byName := map[string]bench.Comp{}
	for _, c := range append(bench.PaperComponents(), bench.BasicSM(), bench.SMColl()) {
		byName[strings.ToLower(c.Name)] = c
	}
	var out []bench.Comp
	for _, name := range strings.Split(list, ",") {
		c, ok := byName[strings.ToLower(strings.TrimSpace(name))]
		if !ok {
			fmt.Fprintf(os.Stderr, "imb: unknown component %q\n", name)
			os.Exit(2)
		}
		out = append(out, c)
	}
	return out
}
