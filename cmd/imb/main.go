// Command imb regenerates the paper's synthetic benchmark figures (Fig. 4
// through Fig. 8 and the §VI-C Scatter comparison) on the simulated
// platforms, printing normalized-runtime tables in the paper's format.
//
// Usage:
//
//	imb -fig 5              # Figure 5 (Broadcast, all four machines)
//	imb -fig all            # every figure
//	imb -op gather -machine IG -sizes 1M,8M   # ad-hoc sweep
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/coll/hier"
	"repro/internal/fault"
	"repro/internal/topology"
	"repro/internal/tune"
)

var jsonOut bool

// validOps are the operations runSweep and -scalability accept, and
// validFigs the arguments -fig accepts; both lists back the one-line
// rejection errors below.
var (
	validOps  = []string{"bcast", "gather", "scatter", "allgather", "alltoall", "alltoallv", "barrier", "pingpong"}
	validFigs = []string{"4", "5", "6", "7", "8", "scatter", "all"}
)

// checkChoice validates a flag value against its closed set, returning the
// one-line error `imb` prints: unknown value plus every valid spelling.
func checkChoice(flagName, val string, valid []string) error {
	for _, v := range valid {
		if val == v {
			return nil
		}
	}
	return fmt.Errorf("unknown %s %q (valid: %s)", flagName, val, strings.Join(valid, ", "))
}

// loadDecisions installs tuned decision tables (comma-separated paths,
// written by `tune search`) as the process-wide decision set: any measured
// machine whose fingerprint matches a table runs under its decisions.
func loadDecisions(paths string) error {
	set := tune.NewSet()
	for _, p := range splitNonEmpty(paths) {
		t, err := tune.Load(p, nil)
		if err != nil {
			return err
		}
		set.Add(t)
	}
	bench.SetDecisions(set)
	return nil
}

func main() {
	fig := flag.String("fig", "", "figure to regenerate: 4, 5, 6, 7, 8, scatter, all")
	scal := flag.Bool("scalability", false, "core-count scaling sweep (op, machine, sizes flags apply)")
	ablation := flag.Bool("ablation", false, "A/B measurements of the component's design choices")
	op := flag.String("op", "", "ad-hoc sweep: bcast, gather, scatter, allgather, alltoall, alltoallv")
	machine := flag.String("machine", "IG", "machine for ad-hoc sweeps: Zoot, Dancer, Saturn, IG, or a machine-description file")
	cluster := flag.String("cluster", "", "cluster-description file (.cluster) for ad-hoc sweeps; replaces -machine and adds the hierarchical components")
	np := flag.Int("np", 0, "ranks (default: all cores)")
	sizes := flag.String("sizes", "", "comma-separated sizes for ad-hoc sweeps (e.g. 32K,1M,8M)")
	iters := flag.Int("iters", 3, "measured iterations per point")
	parallel := flag.Int("parallel", 1, "concurrent measurement cells; output is byte-identical at any level")
	intraPar := flag.Bool("intra-parallel", true, "partition eligible cluster cells across engines (Chandy–Misra windows); output is byte-identical either way")
	asJSON := flag.Bool("json", false, "emit figures as JSON instead of tables")
	comps := flag.String("comps", "", "comma-separated components for ad-hoc sweeps (default: the paper's five); options: Tuned-SM, Tuned-KNEM, MPICH2-SM, MPICH2-KNEM, KNEM-Coll, Basic-SM, SM-Coll")
	faultSeed := flag.Int64("fault-seed", 0, "seed for probabilistic fault draws (reproducible schedules)")
	faultCreate := flag.Int("fault-create-every", 0, "fail every Nth KNEM region registration with ENOMEM")
	faultPin := flag.Int64("fault-pin-budget", 0, "pinned-page budget; registrations beyond it fail")
	faultInval := flag.Int("fault-invalidate-every", 0, "invalidate every Nth live region cookie mid-collective")
	faultCopyTr := flag.Float64("fault-copy-transient", 0, "probability a kernel copy fails transiently (EAGAIN)")
	faultStrag := flag.String("fault-straggler", "", "comma-separated rank:delay stragglers (e.g. 3:2e-3)")
	faultLink := flag.String("fault-link", "", "comma-separated link:scale degradations (e.g. bus0:0.5)")
	decisionsPath := flag.String("decisions", "", "comma-separated tuned decision tables (JSON from `tune search`) applied to matching machines")
	noCache := flag.Bool("no-cache", false, "disable run memoization: re-simulate every cell")
	cacheDir := flag.String("cache-dir", "", "persistent simulation cache directory (default: the user cache dir)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	flag.Parse()
	jsonOut = *asJSON
	bench.SetParallel(*parallel)
	bench.SetParallelIntra(*intraPar)
	cached, err := bench.EnableDefaultCache("imb", *noCache, *cacheDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "imb:", err)
		os.Exit(1)
	}
	stopProfiles, err := bench.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "imb:", err)
		os.Exit(1)
	}
	defer stopProfiles()
	if *fig != "" {
		if err := checkChoice("-fig", *fig, validFigs); err != nil {
			fmt.Fprintln(os.Stderr, "imb:", err)
			os.Exit(2)
		}
	}
	if *op != "" {
		if err := checkChoice("-op", *op, validOps); err != nil {
			fmt.Fprintln(os.Stderr, "imb:", err)
			os.Exit(2)
		}
	}
	if *decisionsPath != "" {
		if err := loadDecisions(*decisionsPath); err != nil {
			fmt.Fprintln(os.Stderr, "imb:", err)
			os.Exit(2)
		}
	}
	plan := buildPlan(*faultSeed, *faultCreate, *faultPin, *faultInval, *faultCopyTr, *faultStrag, *faultLink)

	switch {
	case *ablation:
		bench.RenderAblations(os.Stdout, bench.RunAblations(*iters))
	case *scal:
		runScalability(*op, *machine, *sizes, *iters)
	case *fig != "":
		runFigures(*fig, *iters)
	case *op != "":
		runSweep(*op, *machine, *cluster, *np, *sizes, *iters, *comps, plan)
	case *cluster != "":
		fmt.Fprintln(os.Stderr, "imb: -cluster needs an -op to sweep")
		os.Exit(2)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if cached {
		bench.ReportCacheCounts("imb")
	}
}

// buildPlan assembles a fault.Plan from the -fault-* flags; nil when none
// is set, so fault-free runs take the zero-overhead path.
func buildPlan(seed int64, createEvery int, pinBudget int64, invalEvery int, copyTr float64, strag, link string) *fault.Plan {
	p := &fault.Plan{
		Seed:             seed,
		CreateFailEvery:  createEvery,
		PinnedPageBudget: pinBudget,
		InvalidateEvery:  invalEvery,
		CopyTransient:    copyTr,
	}
	for _, kv := range splitNonEmpty(strag) {
		rank, delay := parsePair(kv, "straggler")
		if p.Straggler == nil {
			p.Straggler = map[int]float64{}
		}
		p.Straggler[int(rank)] = delay
	}
	for _, kv := range splitNonEmpty(link) {
		i := strings.LastIndex(kv, ":")
		if i < 0 {
			fmt.Fprintf(os.Stderr, "imb: bad -fault-link entry %q (want name:scale)\n", kv)
			os.Exit(2)
		}
		scale, err := strconv.ParseFloat(kv[i+1:], 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "imb: bad -fault-link scale %q\n", kv[i+1:])
			os.Exit(2)
		}
		if p.LinkSlowdown == nil {
			p.LinkSlowdown = map[string]float64{}
		}
		p.LinkSlowdown[kv[:i]] = scale
	}
	if p.Empty() {
		return nil
	}
	return p
}

func splitNonEmpty(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

func parsePair(kv, what string) (int64, float64) {
	i := strings.Index(kv, ":")
	if i < 0 {
		fmt.Fprintf(os.Stderr, "imb: bad -fault-%s entry %q (want key:value)\n", what, kv)
		os.Exit(2)
	}
	k, err1 := strconv.ParseInt(kv[:i], 10, 64)
	v, err2 := strconv.ParseFloat(kv[i+1:], 64)
	if err1 != nil || err2 != nil {
		fmt.Fprintf(os.Stderr, "imb: bad -fault-%s entry %q\n", what, kv)
		os.Exit(2)
	}
	return k, v
}

func runFigures(which string, iters int) {
	figs := map[string]func(int) bench.Figure{
		"4":       bench.Fig4,
		"5":       bench.Fig5,
		"6":       bench.Fig6,
		"7":       bench.Fig7,
		"8":       bench.Fig8,
		"scatter": bench.ScatterFigure,
	}
	emit := func(f bench.Figure) {
		if jsonOut {
			if err := f.WriteJSON(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "imb:", err)
				os.Exit(1)
			}
			return
		}
		f.Render(os.Stdout)
	}
	if which == "all" {
		for _, k := range []string{"4", "5", "6", "scatter", "7", "8"} {
			emit(figs[k](iters))
		}
		return
	}
	f, ok := figs[which]
	if !ok {
		fmt.Fprintf(os.Stderr, "imb: unknown figure %q\n", which)
		os.Exit(2)
	}
	emit(f(iters))
}

func runSweep(op, machine, cluster string, np int, sizeList string, iters int, compList string, plan *fault.Plan) {
	var m *topology.Machine
	var cl *topology.Cluster
	var err error
	if cluster != "" {
		cl, err = topology.LoadCluster(cluster)
		if err != nil {
			fmt.Fprintln(os.Stderr, "imb:", err)
			os.Exit(2)
		}
		m = cl.Global
	} else {
		m, err = topology.LoadMachine(machine)
		if err != nil {
			fmt.Fprintln(os.Stderr, "imb:", err)
			os.Exit(2)
		}
	}
	if np == 0 {
		np = m.NCores()
	}
	szs := bench.PaperSizes()
	if sizeList != "" {
		szs = nil
		for _, s := range strings.Split(sizeList, ",") {
			szs = append(szs, parseSize(s))
		}
	}
	baseline := "KNEM-Coll"
	if cl != nil {
		baseline = "Hier-Tree"
	}
	panel := bench.Panel{
		Title:    fmt.Sprintf("%s on %s (np=%d)", op, m.Name, np),
		Machine:  m.Name,
		Baseline: baseline,
		Sizes:    szs,
	}
	comps := pickComps(compList, cl)
	var cfgs []bench.Config
	for _, c := range comps {
		for _, sz := range szs {
			cfgs = append(cfgs, bench.Config{
				Machine: m, NP: np, Comp: c, Op: bench.Op(op), Size: sz,
				Iters: iters, OffCache: true, Fault: plan,
			})
		}
	}
	results := bench.MeasureAll(cfgs)
	for i, c := range comps {
		s := bench.Series{Label: c.Name, Seconds: map[int64]float64{}}
		for j, sz := range szs {
			res := results[i*len(szs)+j]
			s.Seconds[sz] = res.Seconds
			if plan != nil {
				fmt.Printf("# %s %s size=%d: %s\n", c.Name, op, sz, res.Stats.String())
			}
		}
		panel.Series = append(panel.Series, s)
	}
	panel.Render(os.Stdout)
}

func parseSize(s string) int64 {
	s = strings.TrimSpace(strings.ToUpper(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "M"):
		mult = 1 << 20
		s = s[:len(s)-1]
	case strings.HasSuffix(s, "K"):
		mult = 1 << 10
		s = s[:len(s)-1]
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		fmt.Fprintf(os.Stderr, "imb: bad size %q\n", s)
		os.Exit(2)
	}
	return v * mult
}

func runScalability(op, machine, sizeList string, iters int) {
	if op == "" {
		op = "bcast"
	}
	m, err := topology.LoadMachine(machine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "imb:", err)
		os.Exit(2)
	}
	size := int64(1 << 20)
	if sizeList != "" {
		size = parseSize(strings.Split(sizeList, ",")[0])
	}
	var ranks []int
	for np := 2; np < m.NCores(); np *= 2 {
		ranks = append(ranks, np)
	}
	ranks = append(ranks, m.NCores())
	s := bench.RunScalability(m, bench.Op(op), size, ranks,
		[]bench.Comp{bench.TunedSM(), bench.TunedKNEM(), bench.KNEMColl()}, iters)
	s.Render(os.Stdout)
}

func pickComps(list string, cl *topology.Cluster) []bench.Comp {
	if list == "" {
		if cl != nil {
			// Cluster default: both hierarchical shapes against the flat
			// baseline over the same composite machine.
			return []bench.Comp{bench.Hier(cl), bench.HierCfg(cl, hier.Config{Inter: "ring"}), bench.TunedSM()}
		}
		return bench.PaperComponents()
	}
	byName := map[string]bench.Comp{}
	all := append(bench.PaperComponents(), bench.BasicSM(), bench.SMColl())
	if cl != nil {
		all = append(all, bench.Hier(cl), bench.HierCfg(cl, hier.Config{Inter: "ring"}))
	}
	for _, c := range all {
		byName[strings.ToLower(c.Name)] = c
	}
	var out []bench.Comp
	for _, name := range strings.Split(list, ",") {
		c, ok := byName[strings.ToLower(strings.TrimSpace(name))]
		if !ok {
			fmt.Fprintf(os.Stderr, "imb: unknown component %q\n", name)
			os.Exit(2)
		}
		out = append(out, c)
	}
	return out
}
