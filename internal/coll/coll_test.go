package coll

import (
	"testing"
	"testing/quick"
)

func TestVRankRoundTrip(t *testing.T) {
	f := func(rank, root, pp uint8) bool {
		p := int(pp)%32 + 1
		r := int(rank) % p
		rt := int(root) % p
		return RRank(VRank(r, rt, p), rt, p) == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// The binomial tree must be consistent: every non-root has exactly one
// parent that lists it as a child, and the tree spans all ranks.
func TestBinomialTreeConsistency(t *testing.T) {
	for p := 1; p <= 40; p++ {
		for _, root := range []int{0, p / 2, p - 1} {
			childOf := make(map[int]int)
			for r := 0; r < p; r++ {
				_, children := BinomialChildren(r, root, p)
				for _, c := range children {
					if prev, dup := childOf[c]; dup {
						t.Fatalf("p=%d root=%d: %d child of both %d and %d", p, root, c, prev, r)
					}
					childOf[c] = r
				}
			}
			if len(childOf) != p-1 {
				t.Fatalf("p=%d root=%d: %d edges, want %d", p, root, len(childOf), p-1)
			}
			for r := 0; r < p; r++ {
				parent, _ := BinomialChildren(r, root, p)
				if r == root {
					if parent != -1 {
						t.Fatalf("root has parent %d", parent)
					}
					continue
				}
				if childOf[r] != parent {
					t.Fatalf("p=%d root=%d rank=%d: parent %d but child of %d", p, root, r, parent, childOf[r])
				}
			}
		}
	}
}

func TestBinomialDepthLogarithmic(t *testing.T) {
	depth := func(r, root, p int) int {
		d := 0
		for r != root {
			r, _ = func() (int, []int) { return BinomialChildren(r, root, p) }()
			d++
			if d > 64 {
				t.Fatal("cycle in binomial tree")
			}
		}
		return d
	}
	for _, p := range []int{2, 7, 16, 48, 100} {
		maxD := 0
		for r := 0; r < p; r++ {
			if d := depth(r, 0, p); d > maxD {
				maxD = d
			}
		}
		logP := 0
		for 1<<logP < p {
			logP++
		}
		if maxD > logP {
			t.Errorf("p=%d: binomial depth %d > ceil(log2 p)=%d", p, maxD, logP)
		}
	}
}

func TestSubtreeSizesSum(t *testing.T) {
	for p := 1; p <= 64; p++ {
		// Root's children subtrees plus the root itself cover p.
		_, children := BinomialChildren(0, 0, p)
		total := 1
		for _, c := range children {
			total += SubtreeSize(c, p)
		}
		if total != p {
			t.Fatalf("p=%d: subtree sizes sum to %d", p, total)
		}
	}
}

func TestChainShape(t *testing.T) {
	p := 6
	for _, root := range []int{0, 2} {
		// Follow the chain from root; it must visit all ranks once.
		visited := map[int]bool{}
		cur := root
		for {
			visited[cur] = true
			_, next := ChainNext(cur, root, p)
			if next == -1 {
				break
			}
			cur = next
		}
		if len(visited) != p {
			t.Fatalf("chain from root %d visits %d ranks", root, len(visited))
		}
		prev, _ := ChainNext(root, root, p)
		if prev != -1 {
			t.Fatalf("chain root has predecessor")
		}
	}
}

func TestSplitBinaryShape(t *testing.T) {
	p := 11
	counts := map[int]int{}
	for r := 0; r < p; r++ {
		parent, children := SplitBinaryParent(r, 3, p)
		if len(children) > 2 {
			t.Fatalf("binary node with %d children", len(children))
		}
		if r == 3 && parent != -1 {
			t.Fatal("root has parent")
		}
		for _, c := range children {
			counts[c]++
		}
	}
	for r := 0; r < p; r++ {
		if r == 3 {
			continue
		}
		if counts[r] != 1 {
			t.Fatalf("rank %d appears as child %d times", r, counts[r])
		}
	}
}

func TestUniformAndTotal(t *testing.T) {
	counts, displs := Uniform(4, 100)
	if Total(counts, displs) != 400 {
		t.Fatalf("total = %d", Total(counts, displs))
	}
	for i := range counts {
		if counts[i] != 100 || displs[i] != int64(i)*100 {
			t.Fatalf("uniform layout wrong at %d", i)
		}
	}
}

func TestSegments(t *testing.T) {
	var offs, lens []int64
	Segments(100, 30, func(off, n int64) {
		offs = append(offs, off)
		lens = append(lens, n)
	})
	if len(offs) != 4 || offs[3] != 90 || lens[3] != 10 {
		t.Fatalf("segments = %v %v", offs, lens)
	}
	if NumSegments(100, 30) != 4 || NumSegments(100, 0) != 1 || NumSegments(0, 8) != 0 {
		t.Fatal("NumSegments wrong")
	}
	// seg >= total: single segment.
	n := 0
	Segments(10, 1000, func(off, ln int64) {
		n++
		if off != 0 || ln != 10 {
			t.Fatalf("oversized seg: off=%d len=%d", off, ln)
		}
	})
	if n != 1 {
		t.Fatalf("oversized seg count = %d", n)
	}
}
