package coll

import (
	"repro/internal/memsim"
	"repro/internal/mpi"
)

// Generic collectives over any mpi.Ranker — in particular over
// sub-communicators (mpi.CommRank). They use a compact Tuned-style
// decision menu: binomial for small payloads, pipelined trees and rings
// for large ones, recursive doubling / Rabenseifner on power-of-two sizes.
// The world's pluggable components remain in charge of the world
// communicator; these functions make subgroup algorithms (hierarchies,
// per-NUMA phases, application task groups) expressible without one.

const (
	genericBinomialMax = 64 << 10
	genericSeg         = 64 << 10
)

// Bcast broadcasts root's v to every member.
func Bcast(r mpi.Ranker, v memsim.View, root int) {
	tag := r.CollTag()
	if v.Len <= genericBinomialMax || r.Size() <= 2 {
		BcastBinomial(r, v, root, tag)
		return
	}
	BcastBinaryPipelined(r, v, root, tag, genericSeg)
}

// Barrier synchronizes all members.
func Barrier(r mpi.Ranker) { Dissemination(r, r.CollTag()) }

// Gather collects equal blocks at the root.
func Gather(r mpi.Ranker, send, recv memsim.View, root int) {
	tag := r.CollTag()
	if send.Len <= genericBinomialMax {
		GatherBinomial(r, send, recv, root, tag)
		return
	}
	// Linear for large blocks: the root sinks each contribution once.
	if r.ID() == root {
		var reqs []*mpi.Request
		for i := 0; i < r.Size(); i++ {
			blk := recv.SubView(int64(i)*send.Len, send.Len)
			if i == root {
				r.LocalCopy(blk, send)
				continue
			}
			reqs = append(reqs, r.Irecv(i, tag, blk))
		}
		r.Wait(reqs...)
		return
	}
	r.Send(root, tag, send)
}

// Scatter distributes equal blocks from the root.
func Scatter(r mpi.Ranker, send, recv memsim.View, root int) {
	tag := r.CollTag()
	if recv.Len <= genericBinomialMax {
		ScatterBinomial(r, send, recv, root, tag)
		return
	}
	if r.ID() == root {
		var reqs []*mpi.Request
		for i := 0; i < r.Size(); i++ {
			blk := send.SubView(int64(i)*recv.Len, recv.Len)
			if i == root {
				r.LocalCopy(recv, blk)
				continue
			}
			reqs = append(reqs, r.Isend(i, tag, blk))
		}
		r.Wait(reqs...)
		return
	}
	r.Recv(root, tag, recv)
}

// Allgather gathers every member's block everywhere.
func Allgather(r mpi.Ranker, send, recv memsim.View) {
	p := r.Size()
	tag := r.CollTag()
	if p&(p-1) == 0 && send.Len <= genericBinomialMax {
		AllgatherRecDoubling(r, send, recv, tag)
		return
	}
	AllgatherRing(r, send, recv, tag)
}

// Alltoall exchanges personalized blocks pairwise.
func Alltoall(r mpi.Ranker, send, recv memsim.View) {
	AlltoallPairwise(r, send, recv, r.CollTag())
}

// Reduce combines at the root.
func Reduce(r mpi.Ranker, send, recv memsim.View, op mpi.ReduceOp, root int) {
	ReduceBinomial(r, send, recv, op, root, r.CollTag())
}

// Allreduce combines everywhere.
func Allreduce(r mpi.Ranker, send, recv memsim.View, op mpi.ReduceOp) {
	p := r.Size()
	tag := r.CollTag()
	pow2 := p&(p-1) == 0
	switch {
	case pow2 && send.Len <= genericBinomialMax:
		AllreduceRecDoubling(r, send, recv, op, tag)
	case pow2 && send.Len%int64(p) == 0:
		AllreduceRabenseifner(r, send, recv, op, tag)
	default:
		Reduce(r, send, recv, op, 0)
		Bcast(r, recv.SubView(0, send.Len), 0)
	}
}
