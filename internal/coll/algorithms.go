package coll

import (
	"repro/internal/memsim"
	"repro/internal/mpi"
)

// Shared algorithm implementations used by the Tuned and MPICH2 components.
// All operate over point-to-point messages; the topology-oblivious shapes
// here are exactly the baselines the paper's KNEM component is measured
// against.

// SubtreeSize returns the number of virtual ranks in the binomial subtree
// rooted at virtual rank v (p total).
func SubtreeSize(v, p int) int {
	if v == 0 {
		return p
	}
	lsb := v & -v
	if rem := p - v; rem < lsb {
		return rem
	}
	return lsb
}

// BcastBinomial broadcasts v down the binomial tree in one piece.
func BcastBinomial(r mpi.Ranker, v memsim.View, root, tag int) {
	parent, children := BinomialChildren(r.ID(), root, r.Size())
	if parent != -1 {
		r.Recv(parent, tag, v)
	}
	var reqs []*mpi.Request
	for _, c := range children {
		reqs = append(reqs, r.Isend(c, tag, v))
	}
	r.Wait(reqs...)
}

// BcastTreePipelined streams v from the root down an arbitrary tree in
// segments of seg bytes: each rank forwards segment s to its children as
// soon as it arrives, overlapping with the reception of segment s+1.
func BcastTreePipelined(r mpi.Ranker, v memsim.View, tag int, parent int, children []int, seg int64) {
	var sends []*mpi.Request
	if parent == -1 {
		Segments(v.Len, seg, func(off, n int64) {
			for _, c := range children {
				sends = append(sends, r.Isend(c, tag, v.SubView(off, n)))
			}
		})
		r.Wait(sends...)
		return
	}
	var recvs []*mpi.Request
	Segments(v.Len, seg, func(off, n int64) {
		recvs = append(recvs, r.Irecv(parent, tag, v.SubView(off, n)))
	})
	i := 0
	Segments(v.Len, seg, func(off, n int64) {
		r.Wait(recvs[i])
		i++
		for _, c := range children {
			sends = append(sends, r.Isend(c, tag, v.SubView(off, n)))
		}
	})
	r.Wait(sends...)
}

// BcastChainPipelined streams v down the chain root -> root+1 -> ... in
// segments (Open MPI's pipeline algorithm for large messages).
func BcastChainPipelined(r mpi.Ranker, v memsim.View, root, tag int, seg int64) {
	prev, next := ChainNext(r.ID(), root, r.Size())
	var children []int
	if next != -1 {
		children = []int{next}
	}
	BcastTreePipelined(r, v, tag, prev, children, seg)
}

// BcastBinaryPipelined streams v down a balanced binary tree in segments
// (stand-in for Open MPI's split-binary algorithm at intermediate sizes;
// same tree depth and pipelining, without the final half-exchange).
func BcastBinaryPipelined(r mpi.Ranker, v memsim.View, root, tag int, seg int64) {
	parent, children := SplitBinaryParent(r.ID(), root, r.Size())
	BcastTreePipelined(r, v, tag, parent, children, seg)
}

// GatherBinomial gathers equal blocks up the binomial tree, packing
// subtree data in interior temporaries (MPICH2's gather for all sizes,
// Open MPI Tuned's for small ones).
func GatherBinomial(r mpi.Ranker, send, recv memsim.View, root, tag int) {
	p := r.Size()
	me := r.ID()
	v := VRank(me, root, p)
	blk := send.Len
	if p == 1 {
		r.LocalCopy(recv.SubView(0, blk), send)
		return
	}
	sub := SubtreeSize(v, p)
	parent, children := BinomialChildren(me, root, p)

	if sub == 1 {
		r.Send(parent, tag, send)
		return
	}
	var temp memsim.View
	var tempIsRecv bool
	if v == 0 && root == 0 {
		temp = recv.SubView(0, int64(p)*blk)
		tempIsRecv = true
	} else {
		temp = r.Alloc(int64(sub) * blk).Whole()
	}
	r.LocalCopy(temp.SubView(0, blk), send)
	var reqs []*mpi.Request
	for _, c := range children {
		cv := VRank(c, root, p)
		cnt := int64(SubtreeSize(cv, p)) * blk
		reqs = append(reqs, r.Irecv(c, tag, temp.SubView(int64(cv-v)*blk, cnt)))
	}
	r.Wait(reqs...)
	if v != 0 {
		r.Send(parent, tag, temp)
		return
	}
	if !tempIsRecv {
		// Root with rotated virtual order: place block vi at real rank.
		for vi := 0; vi < p; vi++ {
			r.LocalCopy(recv.SubView(int64(RRank(vi, root, p))*blk, blk), temp.SubView(int64(vi)*blk, blk))
		}
	}
}

// ScatterBinomial scatters equal blocks down the binomial tree.
func ScatterBinomial(r mpi.Ranker, send, recv memsim.View, root, tag int) {
	p := r.Size()
	me := r.ID()
	v := VRank(me, root, p)
	blk := recv.Len
	if p == 1 {
		r.LocalCopy(recv, send.SubView(0, blk))
		return
	}
	sub := SubtreeSize(v, p)
	parent, children := BinomialChildren(me, root, p)

	var temp memsim.View
	switch {
	case v == 0 && root == 0:
		temp = send.SubView(0, int64(p)*blk)
	case v == 0:
		temp = r.Alloc(int64(p) * blk).Whole()
		for vi := 0; vi < p; vi++ {
			r.LocalCopy(temp.SubView(int64(vi)*blk, blk), send.SubView(int64(RRank(vi, root, p))*blk, blk))
		}
	case sub > 1:
		temp = r.Alloc(int64(sub) * blk).Whole()
		r.Recv(parent, tag, temp)
	default:
		r.Recv(parent, tag, recv)
		return
	}
	var reqs []*mpi.Request
	for _, c := range children {
		cv := VRank(c, root, p)
		cnt := int64(SubtreeSize(cv, p)) * blk
		reqs = append(reqs, r.Isend(c, tag, temp.SubView(int64(cv-v)*blk, cnt)))
	}
	r.LocalCopy(recv, temp.SubView(0, blk))
	r.Wait(reqs...)
}

// AllgatherRecDoubling runs recursive-doubling allgather (power-of-two
// rank counts only).
func AllgatherRecDoubling(r mpi.Ranker, send, recv memsim.View, tag int) {
	p := r.Size()
	if p&(p-1) != 0 {
		panic("coll: recursive doubling needs power-of-two ranks")
	}
	me := r.ID()
	blk := send.Len
	r.LocalCopy(recv.SubView(int64(me)*blk, blk), send)
	for d := 1; d < p; d <<= 1 {
		partner := me ^ d
		myBase := me &^ (d - 1)
		pBase := partner &^ (d - 1)
		r.Sendrecv(partner, tag,
			recv.SubView(int64(myBase)*blk, int64(d)*blk),
			partner, tag,
			recv.SubView(int64(pBase)*blk, int64(d)*blk))
	}
}

// AllgatherRing runs the bandwidth-optimal ring allgather: p-1 steps of
// neighbor exchange, every link loaded evenly — the algorithm the paper
// suggests borrowing for KNEM Allgather on large NUMA nodes (§VI-D).
func AllgatherRing(r mpi.Ranker, send, recv memsim.View, tag int) {
	p := r.Size()
	counts, displs := Uniform(p, send.Len)
	r.LocalCopy(VBlock(recv, counts, displs, r.ID()), send)
	ringPhase(r, recv, counts, displs, tag, func(i int) int { return i })
}

// AllgathervRing is the ring allgather with per-rank counts.
func AllgathervRing(r mpi.Ranker, send, recv memsim.View, rcounts, rdispls []int64, tag int) {
	r.LocalCopy(VBlock(recv, rcounts, rdispls, r.ID()), send.SubView(0, rcounts[r.ID()]))
	ringPhase(r, recv, rcounts, rdispls, tag, func(i int) int { return i })
}

// ringPhase circulates blocks around the ring; blockOf maps a step-owner
// index to its block index (identity for allgather; virtual-to-real
// mapping for the scatter-allgather broadcast).
func ringPhase(r mpi.Ranker, recv memsim.View, counts, displs []int64, tag int, blockOf func(int) int) {
	p := r.Size()
	me := r.ID()
	right := (me + 1) % p
	left := (me - 1 + p) % p
	for step := 0; step < p-1; step++ {
		sb := blockOf((me - step + p) % p)
		rb := blockOf((me - step - 1 + p) % p)
		r.Sendrecv(right, tag, VBlock(recv, counts, displs, sb), left, tag, VBlock(recv, counts, displs, rb))
	}
}

// AlltoallPairwise exchanges equal blocks in p-1 rounds; at round k each
// rank sends to me+k and receives from me-k.
func AlltoallPairwise(r mpi.Ranker, send, recv memsim.View, tag int) {
	p := r.Size()
	counts, displs := Uniform(p, send.Len/int64(p))
	AlltoallvPairwise(r, send, counts, displs, recv, counts, displs, tag)
}

// AlltoallvPairwise is the vector pairwise exchange.
func AlltoallvPairwise(r mpi.Ranker, send memsim.View, scounts, sdispls []int64, recv memsim.View, rcounts, rdispls []int64, tag int) {
	p := r.Size()
	me := r.ID()
	r.LocalCopy(VBlock(recv, rcounts, rdispls, me), VBlock(send, scounts, sdispls, me))
	for step := 1; step < p; step++ {
		to := (me + step) % p
		from := (me - step + p) % p
		r.Sendrecv(to, tag, VBlock(send, scounts, sdispls, to), from, tag, VBlock(recv, rcounts, rdispls, from))
	}
}

// BcastScatterAllgather is the van de Geijn large-message broadcast used
// by MPICH2: binomial-scatter the buffer into near-equal ranges (in
// virtual rank order), then allgather the ranges — by recursive doubling
// when recDoubling is set (MPICH2's medium-size case, power-of-two ranks
// only), by ring otherwise (the large-size case). All arithmetic is in
// virtual coordinates so any root works in place.
func BcastScatterAllgather(r mpi.Ranker, v memsim.View, root, tag int, recDoubling bool) {
	p := r.Size()
	me := r.ID()
	vr := VRank(me, root, p)
	n := v.Len
	// Near-equal ranges per virtual rank.
	counts := make([]int64, p)
	displs := make([]int64, p)
	base := n / int64(p)
	rem := n % int64(p)
	var off int64
	for i := 0; i < p; i++ {
		counts[i] = base
		if int64(i) < rem {
			counts[i]++
		}
		displs[i] = off
		off += counts[i]
	}
	subRange := func(v0 int) (int64, int64) { // offset, length of subtree range
		sz := SubtreeSize(v0, p)
		var l int64
		for i := v0; i < v0+sz; i++ {
			l += counts[i]
		}
		return displs[v0], l
	}
	// Phase 1: binomial scatter of ranges, in place.
	parent, children := BinomialChildren(me, root, p)
	if parent != -1 {
		o, l := subRange(vr)
		if l > 0 {
			r.Recv(parent, tag, v.SubView(o, l))
		} else {
			// Degenerate tiny message: still complete the handshake.
			r.Recv(parent, tag, v.SubView(o, 0))
		}
	}
	var reqs []*mpi.Request
	for _, c := range children {
		o, l := subRange(VRank(c, root, p))
		reqs = append(reqs, r.Isend(c, tag, v.SubView(o, l)))
	}
	r.Wait(reqs...)
	tag2 := tag + 1
	if recDoubling && p&(p-1) == 0 {
		// Phase 2a: recursive-doubling allgather of the ranges. At step
		// d, exchange the contiguous range of the aligned 2^d-group.
		rangeOf := func(base, width int) (int64, int64) {
			lo := displs[base]
			end := base + width
			hi := displs[end-1] + counts[end-1]
			return lo, hi - lo
		}
		for d := 1; d < p; d <<= 1 {
			partner := vr ^ d
			myLo, myLen := rangeOf(vr&^(d-1), d)
			pLo, pLen := rangeOf(partner&^(d-1), d)
			r.Sendrecv(RRank(partner, root, p), tag2, v.SubView(myLo, myLen),
				RRank(partner, root, p), tag2, v.SubView(pLo, pLen))
		}
		return
	}
	// Phase 2b: ring allgather of the ranges over virtual neighbors.
	right := RRank((vr+1)%p, root, p)
	left := RRank((vr-1+p)%p, root, p)
	for step := 0; step < p-1; step++ {
		sb := (vr - step + p) % p
		rb := (vr - step - 1 + p) % p
		r.Sendrecv(right, tag2, VBlock(v, counts, displs, sb), left, tag2, VBlock(v, counts, displs, rb))
	}
}
