package coll_test

import (
	"bytes"
	"testing"

	"repro/internal/coll"
	"repro/internal/mpi"
	"repro/internal/topology"
)

// Split by NUMA domain and broadcast within each sub-communicator
// concurrently: the disjoint tag spaces must keep the two broadcasts from
// interfering, and each group sees only its own root's data.
func TestSplitByDomainConcurrentBcast(t *testing.T) {
	m := topology.Dancer()
	_, _, err := mpi.Run(mpi.Options{Machine: m, WithData: true}, func(r *mpi.Rank) {
		world := r.World().WorldComm()
		dom := r.Core().Domain.ID
		sub := world.Split(r, dom, r.ID())
		if sub == nil || sub.Size() != 4 {
			t.Errorf("rank %d: sub size %v", r.ID(), sub)
			return
		}
		g := sub.Rank(r)
		b := r.Alloc(100_000)
		if g.ID() == 0 {
			for i := range b.Data {
				b.Data[i] = byte(dom*91 + i)
			}
		}
		coll.Bcast(g, b.Whole(), 0)
		for i := 0; i < 100_000; i += 997 {
			if b.Data[i] != byte(dom*91+i) {
				t.Errorf("rank %d (dom %d): byte %d wrong", r.ID(), dom, i)
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Split with keys reverses the rank order inside the new communicator.
func TestSplitKeyOrdering(t *testing.T) {
	m := topology.Dancer()
	_, _, err := mpi.Run(mpi.Options{Machine: m, WithData: true}, func(r *mpi.Rank) {
		world := r.World().WorldComm()
		sub := world.Split(r, 0, -r.ID()) // one group, reversed order
		g := sub.Rank(r)
		if want := 7 - r.ID(); g.ID() != want {
			t.Errorf("world rank %d: comm rank %d, want %d", r.ID(), g.ID(), want)
		}
		if sub.WorldRank(0) != 7 {
			t.Errorf("comm rank 0 is world %d, want 7", sub.WorldRank(0))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Negative color excludes the caller (MPI_UNDEFINED) but the collective
// still completes for everyone else.
func TestSplitUndefinedColor(t *testing.T) {
	m := topology.Dancer()
	_, _, err := mpi.Run(mpi.Options{Machine: m, WithData: true}, func(r *mpi.Rank) {
		world := r.World().WorldComm()
		color := 0
		if r.ID() == 3 {
			color = -1
		}
		sub := world.Split(r, color, r.ID())
		if r.ID() == 3 {
			if sub != nil {
				t.Error("excluded rank got a communicator")
			}
			return
		}
		if sub.Size() != 7 {
			t.Errorf("sub size = %d, want 7", sub.Size())
		}
		g := sub.Rank(r)
		b := r.Alloc(1024)
		coll.Barrier(g)
		coll.Bcast(g, b.Whole(), 0)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Every generic collective works on a sub-communicator with translated
// ranks, including reductions and irregular member sets.
func TestGenericCollectivesOnSubComm(t *testing.T) {
	m := topology.IG()
	_, _, err := mpi.Run(mpi.Options{Machine: m, NP: 12, WithData: true}, func(r *mpi.Rank) {
		world := r.World().WorldComm()
		// Odd world ranks form the group (6 members), evens idle after the
		// split collective.
		color := r.ID() % 2
		sub := world.Split(r, color, r.ID())
		g := sub.Rank(r)
		p := int64(g.Size())
		const blk = 40 << 10

		// Allgather.
		send := r.Alloc(blk)
		for i := range send.Data {
			send.Data[i] = byte(g.ID()*31 + i)
		}
		recv := r.Alloc(p * blk)
		coll.Allgather(g, send.Whole(), recv.Whole())
		for src := 0; src < int(p); src++ {
			want := byte(src*31 + 100)
			if recv.Data[src*blk+100] != want {
				t.Errorf("allgather block %d wrong", src)
				return
			}
		}

		// Alltoall.
		a2aSend := r.Alloc(p * blk)
		for j := 0; j < int(p); j++ {
			for i := int64(0); i < blk; i += 512 {
				a2aSend.Data[int64(j)*blk+i] = byte(g.ID()*10 + j)
			}
		}
		a2aRecv := r.Alloc(p * blk)
		coll.Alltoall(g, a2aSend.Whole(), a2aRecv.Whole())
		for src := 0; src < int(p); src++ {
			if a2aRecv.Data[int64(src)*blk] != byte(src*10+g.ID()) {
				t.Errorf("alltoall block %d wrong", src)
				return
			}
		}

		// Allreduce (p == 6: non power of two -> reduce+bcast path).
		x := r.Alloc(4096)
		for e := 0; e < 1024; e++ {
			x.Data[e*4] = 1
		}
		sum := r.Alloc(4096)
		coll.Allreduce(g, x.Whole(), sum.Whole(), mpi.OpSumInt32)
		if sum.Data[0] != byte(p) {
			t.Errorf("allreduce elem 0 = %d, want %d", sum.Data[0], p)
		}

		// Gather/Scatter round trip at a non-zero root.
		root := int(p) - 1
		var all []byte
		gbuf := r.Alloc(p * blk)
		coll.Gather(g, send.Whole(), gbuf.Whole(), root)
		if g.ID() == root {
			all = append(all, gbuf.Data...)
			for src := 0; src < int(p); src++ {
				if gbuf.Data[src*int(blk)+5] != byte(src*31+5) {
					t.Errorf("gather block %d wrong", src)
				}
			}
		}
		back := r.Alloc(blk)
		coll.Scatter(g, gbuf.Whole(), back.Whole(), root)
		if !bytes.Equal(back.Data, send.Data) {
			t.Errorf("scatter round trip lost data on comm rank %d", g.ID())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Comm collectives and world-component collectives interleave without tag
// collisions.
func TestWorldAndCommCollectivesInterleave(t *testing.T) {
	m := topology.Dancer()
	_, _, err := mpi.Run(mpi.Options{Machine: m, WithData: true}, func(r *mpi.Rank) {
		world := r.World().WorldComm()
		g := world.Rank(r)
		for iter := 0; iter < 3; iter++ {
			b := r.Alloc(64 << 10)
			if r.ID() == iter%8 {
				for i := range b.Data {
					b.Data[i] = byte(iter*3 + i)
				}
			}
			coll.Bcast(g, b.Whole(), iter%8)
			if b.Data[7] != byte(iter*3+7) {
				t.Errorf("iter %d wrong", iter)
			}
			coll.Barrier(g)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
