package coll

import (
	"repro/internal/memsim"
	"repro/internal/mpi"
)

// Reduction algorithm implementations shared by the components. KNEM
// cannot combine data in kernel space, so the paper's component delegates
// reductions to its fallback (§V-A); these algorithms are the baselines
// that fallback resolves to.

// ReduceLinear receives every contribution at the root and combines
// sequentially (the basic algorithm).
func ReduceLinear(r mpi.Ranker, send, recv memsim.View, op mpi.ReduceOp, root, tag int) {
	if r.ID() != root {
		r.Send(root, tag, send)
		return
	}
	r.LocalCopy(recv.SubView(0, send.Len), send)
	if r.Size() == 1 {
		return
	}
	temp := r.Alloc(send.Len).Whole()
	for i := 0; i < r.Size(); i++ {
		if i == root {
			continue
		}
		r.Recv(i, tag, temp)
		r.ApplyReduce(op, recv.SubView(0, send.Len), temp)
	}
}

// ReduceBinomial combines contributions up the binomial tree: every
// interior rank accumulates its children's partial results before
// forwarding one combined message to its parent.
func ReduceBinomial(r mpi.Ranker, send, recv memsim.View, op mpi.ReduceOp, root, tag int) {
	p := r.Size()
	me := r.ID()
	if p == 1 {
		r.LocalCopy(recv.SubView(0, send.Len), send)
		return
	}
	parent, children := BinomialChildren(me, root, p)
	accum := recv
	if me != root {
		accum = r.Alloc(send.Len).Whole()
	}
	accum = accum.SubView(0, send.Len)
	r.LocalCopy(accum, send)
	if len(children) > 0 {
		temp := r.Alloc(send.Len).Whole()
		// Children must be combined in arrival order of the tree: the
		// deepest subtrees (largest) finish last, so receive smallest
		// first — BinomialChildren returns largest first; walk reversed.
		for i := len(children) - 1; i >= 0; i-- {
			r.Recv(children[i], tag, temp)
			r.ApplyReduce(op, accum, temp)
		}
	}
	if me != root {
		r.Send(parent, tag, accum)
	}
}

// AllreduceRecDoubling combines full vectors pairwise over log2(p) rounds
// (power-of-two ranks only): every rank ends with the total.
func AllreduceRecDoubling(r mpi.Ranker, send, recv memsim.View, op mpi.ReduceOp, tag int) {
	p := r.Size()
	if p&(p-1) != 0 {
		panic("coll: recursive doubling allreduce needs power-of-two ranks")
	}
	me := r.ID()
	acc := recv.SubView(0, send.Len)
	r.LocalCopy(acc, send)
	if p == 1 {
		return
	}
	temp := r.Alloc(send.Len).Whole()
	for d := 1; d < p; d <<= 1 {
		partner := me ^ d
		r.Sendrecv(partner, tag, acc, partner, tag, temp)
		r.ApplyReduce(op, acc, temp)
	}
}

// ReduceScatterHalving runs recursive-halving reduce-scatter on
// power-of-two ranks over a scratch buffer holding the full vector
// (p * blk bytes); on return scratch's block me holds the reduced block.
// The caller provides scratch so Rabenseifner's allreduce can continue
// in place.
func ReduceScatterHalving(r mpi.Ranker, scratch memsim.View, blk int64, op mpi.ReduceOp, tag int) {
	p := r.Size()
	if p&(p-1) != 0 {
		panic("coll: recursive halving needs power-of-two ranks")
	}
	me := r.ID()
	temp := r.Alloc(scratch.Len / 2).Whole()
	lo, hi := 0, p
	for d := p / 2; d >= 1; d /= 2 {
		partner := me ^ d
		mid := (lo + hi) / 2
		var mineLo, mineHi, theirLo, theirHi int
		if me&d == 0 {
			mineLo, mineHi, theirLo, theirHi = lo, mid, mid, hi
		} else {
			mineLo, mineHi, theirLo, theirHi = mid, hi, lo, mid
		}
		n := int64(theirHi-theirLo) * blk
		r.Sendrecv(partner, tag,
			scratch.SubView(int64(theirLo)*blk, n),
			partner, tag,
			temp.SubView(0, int64(mineHi-mineLo)*blk))
		r.ApplyReduce(op,
			scratch.SubView(int64(mineLo)*blk, int64(mineHi-mineLo)*blk),
			temp.SubView(0, int64(mineHi-mineLo)*blk))
		lo, hi = mineLo, mineHi
	}
	if lo != me || hi != me+1 {
		panic("coll: halving did not converge on own block")
	}
}

// AllreduceRabenseifner is the bandwidth-optimal large-vector allreduce:
// recursive-halving reduce-scatter followed by recursive-doubling
// allgather, both in place on recv (power-of-two ranks, vector divisible
// into p blocks).
func AllreduceRabenseifner(r mpi.Ranker, send, recv memsim.View, op mpi.ReduceOp, tag int) {
	p := r.Size()
	full := recv.SubView(0, send.Len)
	r.LocalCopy(full, send)
	if p == 1 {
		return
	}
	blk := send.Len / int64(p)
	ReduceScatterHalving(r, full, blk, op, tag)
	// Allgather the reduced blocks by recursive doubling, in place.
	me := r.ID()
	for d := 1; d < p; d <<= 1 {
		partner := me ^ d
		myBase := me &^ (d - 1)
		pBase := partner &^ (d - 1)
		r.Sendrecv(partner, tag+1,
			full.SubView(int64(myBase)*blk, int64(d)*blk),
			partner, tag+1,
			full.SubView(int64(pBase)*blk, int64(d)*blk))
	}
}

// ReduceScatterBlockHalving reduces and scatters equal blocks by
// recursive halving (power-of-two ranks).
func ReduceScatterBlockHalving(r mpi.Ranker, send, recv memsim.View, op mpi.ReduceOp, tag int) {
	p := r.Size()
	blk := recv.Len
	scratch := r.Alloc(int64(p) * blk).Whole()
	r.LocalCopy(scratch, send.SubView(0, int64(p)*blk))
	if p > 1 {
		ReduceScatterHalving(r, scratch, blk, op, tag)
	}
	r.LocalCopy(recv, scratch.SubView(int64(r.ID())*blk, blk))
}
