package coll_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/coll"
	"repro/internal/memsim"
	"repro/internal/mpi"
	"repro/internal/topology"
)

// world runs body on a Dancer-with-data world of np ranks with no
// collective component (the algorithms are called directly).
func world(t *testing.T, np int, body func(r *mpi.Rank)) {
	t.Helper()
	_, _, err := mpi.Run(mpi.Options{
		Machine: topology.Dancer(), NP: np, WithData: true,
	}, func(r *mpi.Rank) { body(r) })
	if err != nil {
		t.Fatal(err)
	}
}

func pattern(rank int, n int64) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rank*53 + i*7 + 1)
	}
	return b
}

func TestBcastAlgorithms(t *testing.T) {
	const sz = 100_000
	algos := []struct {
		name string
		run  func(r *mpi.Rank, v memsim.View, root int)
	}{
		{"binomial", func(r *mpi.Rank, v memsim.View, root int) {
			coll.BcastBinomial(r, v, root, r.CollTag())
		}},
		{"chain-pipelined", func(r *mpi.Rank, v memsim.View, root int) {
			coll.BcastChainPipelined(r, v, root, r.CollTag(), 8<<10)
		}},
		{"binary-pipelined", func(r *mpi.Rank, v memsim.View, root int) {
			coll.BcastBinaryPipelined(r, v, root, r.CollTag(), 8<<10)
		}},
		{"scatter-allgather-ring", func(r *mpi.Rank, v memsim.View, root int) {
			coll.BcastScatterAllgather(r, v, root, r.CollTag(), false)
		}},
		{"scatter-allgather-recdbl", func(r *mpi.Rank, v memsim.View, root int) {
			coll.BcastScatterAllgather(r, v, root, r.CollTag(), true)
		}},
	}
	for _, a := range algos {
		for _, np := range []int{5, 8} {
			for _, root := range []int{0, np - 1} {
				name := fmt.Sprintf("%s/np%d/root%d", a.name, np, root)
				t.Run(name, func(t *testing.T) {
					want := pattern(root, sz)
					world(t, np, func(r *mpi.Rank) {
						b := r.Alloc(sz)
						if r.ID() == root {
							copy(b.Data, want)
						}
						a.run(r, b.Whole(), root)
						if !bytes.Equal(b.Data, want) {
							t.Errorf("rank %d: wrong data", r.ID())
						}
					})
				})
			}
		}
	}
}

// Degenerate broadcast: message shorter than the rank count still works
// through the scatter+allgather path (zero-length ranges).
func TestBcastScatterAllgatherTiny(t *testing.T) {
	world(t, 8, func(r *mpi.Rank) {
		b := r.Alloc(5) // 5 bytes across 8 ranks: three ranks own nothing
		if r.ID() == 0 {
			copy(b.Data, []byte{9, 8, 7, 6, 5})
		}
		coll.BcastScatterAllgather(r, b.Whole(), 0, r.CollTag(), false)
		if !bytes.Equal(b.Data, []byte{9, 8, 7, 6, 5}) {
			t.Errorf("rank %d: %v", r.ID(), b.Data)
		}
	})
}

func TestGatherBinomialRotatedRoot(t *testing.T) {
	const blk = 10_000
	for _, np := range []int{5, 8} {
		for _, root := range []int{0, 2, np - 1} {
			t.Run(fmt.Sprintf("np%d/root%d", np, root), func(t *testing.T) {
				world(t, np, func(r *mpi.Rank) {
					send := r.Alloc(blk)
					copy(send.Data, pattern(r.ID(), blk))
					var recv memsim.View
					var rb *memsim.Buffer
					if r.ID() == root {
						rb = r.Alloc(int64(np) * blk)
						recv = rb.Whole()
					}
					coll.GatherBinomial(r, send.Whole(), recv, root, r.CollTag())
					if r.ID() == root {
						for src := 0; src < np; src++ {
							want := pattern(src, blk)
							got := rb.Data[src*blk : (src+1)*blk]
							if !bytes.Equal(got, want) {
								t.Errorf("block %d wrong", src)
							}
						}
					}
				})
			})
		}
	}
}

func TestScatterBinomialRotatedRoot(t *testing.T) {
	const blk = 10_000
	for _, root := range []int{0, 3} {
		t.Run(fmt.Sprintf("root%d", root), func(t *testing.T) {
			world(t, 7, func(r *mpi.Rank) {
				var send memsim.View
				if r.ID() == root {
					sb := r.Alloc(7 * blk)
					for i := 0; i < 7; i++ {
						copy(sb.Data[i*blk:], pattern(i, blk))
					}
					send = sb.Whole()
				}
				recv := r.Alloc(blk)
				coll.ScatterBinomial(r, send, recv.Whole(), root, r.CollTag())
				if !bytes.Equal(recv.Data, pattern(r.ID(), blk)) {
					t.Errorf("rank %d wrong", r.ID())
				}
			})
		})
	}
}

func TestAllgatherAlgorithms(t *testing.T) {
	const blk = 8_000
	t.Run("recdoubling", func(t *testing.T) {
		world(t, 8, func(r *mpi.Rank) {
			send := r.Alloc(blk)
			copy(send.Data, pattern(r.ID(), blk))
			recv := r.Alloc(8 * blk)
			coll.AllgatherRecDoubling(r, send.Whole(), recv.Whole(), r.CollTag())
			for src := 0; src < 8; src++ {
				if !bytes.Equal(recv.Data[src*blk:(src+1)*blk], pattern(src, blk)) {
					t.Errorf("rank %d block %d wrong", r.ID(), src)
				}
			}
		})
	})
	t.Run("ring-nonpow2", func(t *testing.T) {
		world(t, 5, func(r *mpi.Rank) {
			send := r.Alloc(blk)
			copy(send.Data, pattern(r.ID(), blk))
			recv := r.Alloc(5 * blk)
			coll.AllgatherRing(r, send.Whole(), recv.Whole(), r.CollTag())
			for src := 0; src < 5; src++ {
				if !bytes.Equal(recv.Data[src*blk:(src+1)*blk], pattern(src, blk)) {
					t.Errorf("rank %d block %d wrong", r.ID(), src)
				}
			}
		})
	})
}

func TestAlltoallPairwiseOddRanks(t *testing.T) {
	const blk = 6_000
	world(t, 7, func(r *mpi.Rank) {
		send := r.Alloc(7 * blk)
		for j := 0; j < 7; j++ {
			copy(send.Data[j*blk:], pattern(r.ID()*10+j, blk))
		}
		recv := r.Alloc(7 * blk)
		coll.AlltoallPairwise(r, send.Whole(), recv.Whole(), r.CollTag())
		for src := 0; src < 7; src++ {
			if !bytes.Equal(recv.Data[src*blk:(src+1)*blk], pattern(src*10+r.ID(), blk)) {
				t.Errorf("rank %d from %d wrong", r.ID(), src)
			}
		}
	})
}

func TestReduceAlgorithmsDirect(t *testing.T) {
	// Verify the binomial combine against the linear reference.
	const n = 40_000 // 10k int32 elements
	for _, algo := range []string{"linear", "binomial"} {
		algo := algo
		t.Run(algo, func(t *testing.T) {
			var ref, got []byte
			for pass := 0; pass < 2; pass++ {
				world(t, 8, func(r *mpi.Rank) {
					send := r.Alloc(n)
					for i := range send.Data {
						send.Data[i] = 0 // keep values tiny: set int32 elems below
					}
					for e := 0; e < n/4; e++ {
						send.Data[e*4] = byte(r.ID() + e%3)
					}
					var recv memsim.View
					var rb *memsim.Buffer
					if r.ID() == 2 {
						rb = r.Alloc(n)
						recv = rb.Whole()
					}
					if pass == 0 {
						coll.ReduceLinear(r, send.Whole(), recv, mpi.OpSumInt32, 2, r.CollTag())
					} else if algo == "binomial" {
						coll.ReduceBinomial(r, send.Whole(), recv, mpi.OpSumInt32, 2, r.CollTag())
					} else {
						coll.ReduceLinear(r, send.Whole(), recv, mpi.OpSumInt32, 2, r.CollTag())
					}
					if r.ID() == 2 {
						cp := append([]byte(nil), rb.Data...)
						if pass == 0 {
							ref = cp
						} else {
							got = cp
						}
					}
				})
			}
			if !bytes.Equal(ref, got) {
				t.Fatal("algorithm disagrees with linear reference")
			}
		})
	}
}

func TestRabenseifnerMatchesRecDoubling(t *testing.T) {
	const n = 64_000
	run := func(rab bool) []byte {
		var out []byte
		world(t, 8, func(r *mpi.Rank) {
			send := r.Alloc(n)
			for e := 0; e < n/4; e++ {
				send.Data[e*4] = byte((r.ID() + e) % 5)
			}
			recv := r.Alloc(n)
			if rab {
				coll.AllreduceRabenseifner(r, send.Whole(), recv.Whole(), mpi.OpSumInt32, r.CollTag())
			} else {
				coll.AllreduceRecDoubling(r, send.Whole(), recv.Whole(), mpi.OpSumInt32, r.CollTag())
			}
			if r.ID() == 0 {
				out = append([]byte(nil), recv.Data...)
			}
		})
		return out
	}
	if !bytes.Equal(run(true), run(false)) {
		t.Fatal("Rabenseifner disagrees with recursive doubling")
	}
}
