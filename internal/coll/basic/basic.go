// Package basic implements the baseline linear collective component: every
// operation decomposes into point-to-point messages with the root (or every
// rank) looping over peers. It is the functional reference the optimized
// components are validated against, and the fallback for operations a
// specialized component does not implement.
package basic

import (
	"repro/internal/coll"
	"repro/internal/memsim"
	"repro/internal/mpi"
)

// Component is the linear collective component.
type Component struct{}

// New returns the component; it is stateless and shared by all ranks.
func New(*mpi.World) mpi.Coll { return &Component{} }

// Name implements mpi.Coll.
func (*Component) Name() string { return "basic" }

// Barrier uses dissemination over the out-of-band channel.
func (*Component) Barrier(r *mpi.Rank) { coll.Dissemination(r, r.CollTag()) }

// Bcast sends the buffer linearly from the root to every peer.
func (*Component) Bcast(r *mpi.Rank, v memsim.View, root int) {
	tag := r.CollTag()
	if r.ID() == root {
		reqs := make([]*mpi.Request, 0, r.Size()-1)
		for i := 0; i < r.Size(); i++ {
			if i != root {
				reqs = append(reqs, r.Isend(i, tag, v))
			}
		}
		r.Wait(reqs...)
		return
	}
	r.Recv(root, tag, v)
}

// Scatter sends block i of the root's buffer to rank i.
func (c *Component) Scatter(r *mpi.Rank, send, recv memsim.View, root int) {
	p := r.Size()
	counts, displs := coll.Uniform(p, recv.Len)
	c.Scatterv(r, send, counts, displs, recv, root)
}

// Scatterv implements the vector scatter linearly.
func (*Component) Scatterv(r *mpi.Rank, send memsim.View, scounts, sdispls []int64, recv memsim.View, root int) {
	tag := r.CollTag()
	if r.ID() == root {
		var reqs []*mpi.Request
		for i := 0; i < r.Size(); i++ {
			blk := coll.VBlock(send, scounts, sdispls, i)
			if i == root {
				r.LocalCopy(recv.SubView(0, blk.Len), blk)
				continue
			}
			reqs = append(reqs, r.Isend(i, tag, blk))
		}
		r.Wait(reqs...)
		return
	}
	r.Recv(root, tag, recv)
}

// Gather collects block i from rank i into the root's buffer.
func (c *Component) Gather(r *mpi.Rank, send, recv memsim.View, root int) {
	counts, displs := coll.Uniform(r.Size(), send.Len)
	c.Gatherv(r, send, recv, counts, displs, root)
}

// Gatherv implements the vector gather linearly.
func (*Component) Gatherv(r *mpi.Rank, send, recv memsim.View, rcounts, rdispls []int64, root int) {
	tag := r.CollTag()
	if r.ID() == root {
		var reqs []*mpi.Request
		for i := 0; i < r.Size(); i++ {
			blk := coll.VBlock(recv, rcounts, rdispls, i)
			if i == root {
				r.LocalCopy(blk, send.SubView(0, blk.Len))
				continue
			}
			reqs = append(reqs, r.Irecv(i, tag, blk))
		}
		r.Wait(reqs...)
		return
	}
	r.Send(root, tag, send)
}

// Allgather is a gather to rank 0 followed by a broadcast.
func (c *Component) Allgather(r *mpi.Rank, send, recv memsim.View) {
	c.Gather(r, send, recv, 0)
	c.Bcast(r, recv, 0)
}

// Allgatherv is a vector gather to rank 0 followed by a broadcast of the
// full extent.
func (c *Component) Allgatherv(r *mpi.Rank, send, recv memsim.View, rcounts, rdispls []int64) {
	c.Gatherv(r, send, recv, rcounts, rdispls, 0)
	c.Bcast(r, recv.SubView(0, coll.Total(rcounts, rdispls)), 0)
}

// Alltoall posts all receives and sends at once.
func (c *Component) Alltoall(r *mpi.Rank, send, recv memsim.View) {
	p := r.Size()
	counts, displs := coll.Uniform(p, send.Len/int64(p))
	c.Alltoallv(r, send, counts, displs, recv, counts, displs)
}

// Alltoallv posts all receives and sends at once.
func (*Component) Alltoallv(r *mpi.Rank, send memsim.View, scounts, sdispls []int64, recv memsim.View, rcounts, rdispls []int64) {
	tag := r.CollTag()
	me := r.ID()
	var reqs []*mpi.Request
	for i := 0; i < r.Size(); i++ {
		if i == me {
			continue
		}
		reqs = append(reqs, r.Irecv(i, tag, coll.VBlock(recv, rcounts, rdispls, i)))
	}
	r.LocalCopy(coll.VBlock(recv, rcounts, rdispls, me), coll.VBlock(send, scounts, sdispls, me))
	for i := 0; i < r.Size(); i++ {
		if i == me {
			continue
		}
		reqs = append(reqs, r.Isend(i, tag, coll.VBlock(send, scounts, sdispls, i)))
	}
	r.Wait(reqs...)
}

// Reduce receives every contribution at the root, combining sequentially.
func (*Component) Reduce(r *mpi.Rank, send, recv memsim.View, op mpi.ReduceOp, root int) {
	coll.ReduceLinear(r, send, recv, op, root, r.CollTag())
}

// Allreduce is a reduce to rank 0 followed by a broadcast.
func (c *Component) Allreduce(r *mpi.Rank, send, recv memsim.View, op mpi.ReduceOp) {
	c.Reduce(r, send, recv, op, 0)
	c.Bcast(r, recv.SubView(0, send.Len), 0)
}

// ReduceScatterBlock is a reduce to rank 0 followed by a scatter.
func (c *Component) ReduceScatterBlock(r *mpi.Rank, send, recv memsim.View, op mpi.ReduceOp) {
	p := int64(r.Size())
	var full memsim.View
	if r.ID() == 0 {
		full = r.Alloc(p * recv.Len).Whole()
	}
	c.Reduce(r, send.SubView(0, p*recv.Len), full, op, 0)
	c.Scatter(r, full, recv, 0)
}
