// Package mpich2 models MPICH2's collective algorithm selection (the
// paper's second baseline, §VI): over Nemesis shared memory (MPICH2-SM)
// or over the KNEM LMT (MPICH2-KNEM), depending on the world's BTL.
//
// Algorithm menu, following MPICH2 1.3's coll_tuning defaults:
//
//	Bcast:     binomial (< 12 KiB or < 8 ranks) ->
//	           scatter + recursive-doubling allgather (medium, pow2) ->
//	           scatter + ring allgather (large)
//	Gather:    binomial at every size
//	Scatter:   binomial at every size
//	Allgather: recursive doubling (pow2, medium) -> ring
//	Alltoall:  batched nonblocking (medium) -> pairwise (large)
package mpich2

import (
	"repro/internal/coll"
	"repro/internal/coll/basic"
	"repro/internal/memsim"
	"repro/internal/mpi"
)

// Config carries MPICH2's switch points.
type Config struct {
	BcastShortMax    int64 // <= : binomial (default 12 KiB)
	BcastMediumMax   int64 // <= : scatter + recursive-doubling allgather (default 512 KiB)
	AllgatherRDMax   int64 // <= total bytes: recursive doubling if pow2 (default 512 KiB)
	AlltoallBatchMax int64 // <= block bytes: batched isend/irecv (default 32 KiB)
}

func (c *Config) fill() {
	if c.BcastShortMax == 0 {
		c.BcastShortMax = 12 << 10
	}
	if c.BcastMediumMax == 0 {
		c.BcastMediumMax = 512 << 10
	}
	if c.AllgatherRDMax == 0 {
		c.AllgatherRDMax = 512 << 10
	}
	if c.AlltoallBatchMax == 0 {
		c.AlltoallBatchMax = 32 << 10
	}
}

// Component is the MPICH2 collective component.
type Component struct {
	cfg    Config
	linear *basic.Component
}

// New builds the component with default switch points.
func New(w *mpi.World) mpi.Coll { return NewWithConfig(w, Config{}) }

// NewWithConfig builds the component with explicit switch points.
func NewWithConfig(_ *mpi.World, cfg Config) mpi.Coll {
	cfg.fill()
	return &Component{cfg: cfg, linear: &basic.Component{}}
}

// Name implements mpi.Coll.
func (*Component) Name() string { return "mpich2" }

// Barrier implements mpi.Coll (dissemination, as MPICH2 uses).
func (c *Component) Barrier(r *mpi.Rank) { c.linear.Barrier(r) }

// Bcast follows the short/medium/long split of MPICH2.
func (c *Component) Bcast(r *mpi.Rank, v memsim.View, root int) {
	tag := r.CollTag()
	if v.Len <= c.cfg.BcastShortMax || r.Size() < 8 || v.Len < int64(r.Size()) {
		coll.BcastBinomial(r, v, root, tag)
		return
	}
	// Medium messages allgather the scattered ranges by recursive
	// doubling (power-of-two ranks), long ones by ring.
	coll.BcastScatterAllgather(r, v, root, tag, v.Len <= c.cfg.BcastMediumMax)
}

// Gather is binomial at every size (MPICH2's only intra-communicator
// algorithm) — the root-serialized packing whose cost Fig. 6 exposes.
func (c *Component) Gather(r *mpi.Rank, send, recv memsim.View, root int) {
	coll.GatherBinomial(r, send, recv, root, r.CollTag())
}

// Scatter is binomial at every size.
func (c *Component) Scatter(r *mpi.Rank, send, recv memsim.View, root int) {
	coll.ScatterBinomial(r, send, recv, root, r.CollTag())
}

// Allgather is recursive doubling for medium power-of-two worlds, ring
// otherwise.
func (c *Component) Allgather(r *mpi.Rank, send, recv memsim.View) {
	p := r.Size()
	if p&(p-1) == 0 && send.Len*int64(p) <= c.cfg.AllgatherRDMax {
		coll.AllgatherRecDoubling(r, send, recv, r.CollTag())
		return
	}
	coll.AllgatherRing(r, send, recv, r.CollTag())
}

// Alltoall batches nonblocking operations for medium blocks and goes
// pairwise for large ones.
func (c *Component) Alltoall(r *mpi.Rank, send, recv memsim.View) {
	blk := send.Len / int64(r.Size())
	if blk <= c.cfg.AlltoallBatchMax {
		c.linear.Alltoall(r, send, recv)
		return
	}
	coll.AlltoallPairwise(r, send, recv, r.CollTag())
}

// Gatherv is linear, as in MPICH2.
func (c *Component) Gatherv(r *mpi.Rank, send, recv memsim.View, rcounts, rdispls []int64, root int) {
	c.linear.Gatherv(r, send, recv, rcounts, rdispls, root)
}

// Scatterv is linear.
func (c *Component) Scatterv(r *mpi.Rank, send memsim.View, scounts, sdispls []int64, recv memsim.View, root int) {
	c.linear.Scatterv(r, send, scounts, sdispls, recv, root)
}

// Allgatherv rings the variable blocks.
func (c *Component) Allgatherv(r *mpi.Rank, send, recv memsim.View, rcounts, rdispls []int64) {
	coll.AllgathervRing(r, send, recv, rcounts, rdispls, r.CollTag())
}

// Alltoallv is pairwise.
func (c *Component) Alltoallv(r *mpi.Rank, send memsim.View, scounts, sdispls []int64, recv memsim.View, rcounts, rdispls []int64) {
	coll.AlltoallvPairwise(r, send, scounts, sdispls, recv, rcounts, rdispls, r.CollTag())
}

// Reduce combines up the binomial tree (MPICH2's short-vector algorithm,
// used here for all sizes).
func (c *Component) Reduce(r *mpi.Rank, send, recv memsim.View, op mpi.ReduceOp, root int) {
	coll.ReduceBinomial(r, send, recv, op, root, r.CollTag())
}

// Allreduce follows MPICH2: recursive doubling below 2 KiB, Rabenseifner
// above (power-of-two ranks), reduce+broadcast otherwise.
func (c *Component) Allreduce(r *mpi.Rank, send, recv memsim.View, op mpi.ReduceOp) {
	p := r.Size()
	pow2 := p&(p-1) == 0
	switch {
	case pow2 && send.Len <= 2<<10:
		coll.AllreduceRecDoubling(r, send, recv, op, r.CollTag())
	case pow2 && send.Len%int64(p) == 0:
		coll.AllreduceRabenseifner(r, send, recv, op, r.CollTag())
	default:
		c.Reduce(r, send, recv, op, 0)
		c.Bcast(r, recv.SubView(0, send.Len), 0)
	}
}

// ReduceScatterBlock uses recursive halving on power-of-two ranks.
func (c *Component) ReduceScatterBlock(r *mpi.Rank, send, recv memsim.View, op mpi.ReduceOp) {
	if p := r.Size(); p&(p-1) == 0 {
		coll.ReduceScatterBlockHalving(r, send, recv, op, r.CollTag())
		return
	}
	c.linear.ReduceScatterBlock(r, send, recv, op)
}
