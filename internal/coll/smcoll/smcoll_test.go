package smcoll

import (
	"testing"

	"repro/internal/memsim"
	"repro/internal/mpi"
	"repro/internal/topology"
)

func TestTreeShape(t *testing.T) {
	w, err := mpi.NewWorld(mpi.Options{Machine: topology.Zoot(), Coll: New})
	if err != nil {
		t.Fatal(err)
	}
	c := w.Coll().(*Component)
	p := 16
	childOf := map[int]int{}
	for r := 0; r < p; r++ {
		parent, children := c.tree(r, 0, p)
		if len(children) > c.cfg.Degree {
			t.Fatalf("rank %d has %d children, degree %d", r, len(children), c.cfg.Degree)
		}
		if r == 0 && parent != -1 {
			t.Fatal("root has a parent")
		}
		for _, ch := range children {
			if _, dup := childOf[ch]; dup {
				t.Fatalf("rank %d has two parents", ch)
			}
			childOf[ch] = r
		}
	}
	if len(childOf) != p-1 {
		t.Fatalf("tree has %d edges, want %d", len(childOf), p-1)
	}
	// Rotated root.
	parent, _ := c.tree(5, 5, p)
	if parent != -1 {
		t.Fatal("rotated root has a parent")
	}
}

func TestBcastThroughBanks(t *testing.T) {
	// Message much larger than Banks*FragSize forces bank reuse and the
	// flow-control path.
	_, w, err := mpi.Run(mpi.Options{
		Machine:  topology.Zoot(),
		WithData: true,
		Coll: func(w *mpi.World) mpi.Coll {
			return NewWithConfig(w, Config{Degree: 3, FragSize: 8 << 10, Banks: 2})
		},
	}, func(r *mpi.Rank) {
		b := r.Alloc(200_000) // 25 fragments, unaligned tail
		if r.ID() == 2 {
			for i := range b.Data {
				b.Data[i] = byte(i * 13)
			}
		}
		r.Bcast(b.Whole(), 2)
		for i := 0; i < 200_000; i += 1009 {
			if b.Data[i] != byte(i*13) {
				t.Errorf("rank %d byte %d wrong", r.ID(), i)
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = w
}

func TestGatherThroughBanks(t *testing.T) {
	const blk = 50_000
	_, _, err := mpi.Run(mpi.Options{
		Machine:  topology.Dancer(),
		WithData: true,
		Coll: func(w *mpi.World) mpi.Coll {
			return NewWithConfig(w, Config{FragSize: 8 << 10, Banks: 2})
		},
	}, func(r *mpi.Rank) {
		send := r.Alloc(blk)
		for i := range send.Data {
			send.Data[i] = byte(r.ID()*11 + i)
		}
		var recv memsim.View
		var rb *memsim.Buffer
		if r.ID() == 0 {
			rb = r.Alloc(8 * blk)
			recv = rb.Whole()
		}
		r.Gather(send.Whole(), recv, 0)
		if r.ID() == 0 {
			for src := 0; src < 8; src++ {
				for i := 0; i < blk; i += 499 {
					if rb.Data[src*blk+i] != byte(src*11+i) {
						t.Errorf("block %d byte %d wrong", src, i)
						return
					}
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// The fan-out tree is topology-oblivious by design: on IG its edges cross
// NUMA domains that the hierarchical KNEM tree would avoid — the paper's
// §II critique. Assert the structural fact.
func TestTreeIgnoresTopology(t *testing.T) {
	m := topology.IG()
	w, err := mpi.NewWorld(mpi.Options{Machine: m, Coll: New})
	if err != nil {
		t.Fatal(err)
	}
	c := w.Coll().(*Component)
	cross := 0
	for r := 0; r < 48; r++ {
		parent, _ := c.tree(r, 0, 48)
		if parent == -1 {
			continue
		}
		if w.Rank(r).Core().Domain != w.Rank(parent).Core().Domain {
			cross++
		}
	}
	if cross == 0 {
		t.Fatal("rank-order tree unexpectedly respects NUMA domains")
	}
}
