// Package smcoll models the shared-memory fan-in/fan-out collective
// component of Graham et al. (§II): a logical fixed-degree tree over rank
// order, pipelined fragments through per-process shared-memory banks sized
// to stay cache-resident, and lightweight flag synchronization. The tree
// follows logical ranks and deliberately ignores NUMA topology — the
// limitation the paper's hierarchical KNEM Broadcast addresses.
//
// Broadcast fans out: the root copies each fragment into its shared banks;
// an interior process copies its parent's bank into its own bank (serving
// its subtree) and then into its user buffer; a leaf copies the parent's
// bank straight to its user buffer. Gather fans in through the same banks.
// Every payload byte therefore crosses shared memory with the double (or
// triple) copies the KNEM component eliminates.
//
// Operations without a fan-in/fan-out specialization delegate to Tuned.
package smcoll

import (
	"repro/internal/coll"
	"repro/internal/coll/tuned"
	"repro/internal/memsim"
	"repro/internal/mpi"
)

// Config shapes the component.
type Config struct {
	// Degree is the tree fan-out (default 4, Graham et al.'s default).
	Degree int
	// FragSize is the pipeline fragment (default 32 KiB).
	FragSize int64
	// Banks is the per-process double-buffering depth (default 2).
	Banks int
}

func (c *Config) fill() {
	if c.Degree == 0 {
		c.Degree = 4
	}
	if c.FragSize == 0 {
		c.FragSize = 32 << 10
	}
	if c.Banks == 0 {
		c.Banks = 2
	}
}

// Component is the fan-in/fan-out shared-memory component.
type Component struct {
	w    *mpi.World
	cfg  Config
	fb   mpi.Coll
	segs []*memsim.Buffer // per-rank shared bank storage
}

// New builds the component with defaults.
func New(w *mpi.World) mpi.Coll { return NewWithConfig(w, Config{}) }

// NewWithConfig builds the component with explicit parameters.
func NewWithConfig(w *mpi.World, cfg Config) mpi.Coll {
	cfg.fill()
	c := &Component{w: w, cfg: cfg, fb: tuned.New(w)}
	for i := 0; i < w.Size(); i++ {
		c.segs = append(c.segs, w.Net().Alloc(w.Rank(i).Core().Domain, int64(cfg.Banks)*cfg.FragSize, true))
	}
	return c
}

// Name implements mpi.Coll.
func (*Component) Name() string { return "smcoll" }

// bank returns fragment f's bank in rank i's shared segment.
func (c *Component) bank(i int, f int) memsim.View {
	b := int64(f % c.cfg.Banks)
	return c.segs[i].View(b*c.cfg.FragSize, c.cfg.FragSize)
}

// tree returns the parent and children of rank in the degree-k tree over
// virtual ranks.
func (c *Component) tree(rank, root, p int) (parent int, children []int) {
	k := c.cfg.Degree
	v := coll.VRank(rank, root, p)
	parent = -1
	if v != 0 {
		parent = coll.RRank((v-1)/k, root, p)
	}
	for j := 1; j <= k; j++ {
		cv := k*v + j
		if cv < p {
			children = append(children, coll.RRank(cv, root, p))
		}
	}
	return
}

type fragNote struct{ f int }
type bankFree struct{ f int }

// Bcast fans the message out through the shared banks.
func (c *Component) Bcast(r *mpi.Rank, v memsim.View, root int) {
	p := r.Size()
	if p == 1 {
		return
	}
	tag := r.CollTag()
	me := r.ID()
	parent, children := c.tree(me, root, p)
	nfrag := coll.NumSegments(v.Len, c.cfg.FragSize)
	tr := c.w.Transport()

	acks := 0                  // total child acks received
	acked := make(map[int]int) // per-child count of acked fragments
	minAcked := func() int {
		min := nfrag
		for _, ch := range children {
			if acked[ch] < min {
				min = acked[ch]
			}
		}
		return min
	}
	waitBank := func(f int) {
		// Reuse bank f%Banks only after every child acked fragment
		// f-Banks (acks arrive in fragment order per child).
		for minAcked() < f-c.cfg.Banks+1 {
			m, from := r.RecvOOB(mpi.AnySource, tag+1)
			_ = m.(bankFree)
			acked[from]++
			acks++
		}
	}
	fr := 0
	coll.Segments(v.Len, c.cfg.FragSize, func(off, n int64) {
		f := fr
		fr++
		if parent == -1 {
			waitBank(f)
			tr.CopyIn(r.Proc(), me, c.bank(me, f), v.SubView(off, n))
			for _, ch := range children {
				r.SendOOB(ch, tag, fragNote{f: f})
			}
			return
		}
		m, _ := r.RecvOOB(parent, tag)
		if m.(fragNote).f != f {
			panic("smcoll: fragment out of order")
		}
		src := c.bank(parent, f).SubView(0, n)
		if len(children) > 0 {
			waitBank(f)
			// Interior: parent bank -> own bank, own bank -> user buffer.
			c.w.Net().Copy(r.Proc(), r.Core(), c.bank(me, f).SubView(0, n), src)
			for _, ch := range children {
				r.SendOOB(ch, tag, fragNote{f: f})
			}
			c.w.Net().Copy(r.Proc(), r.Core(), v.SubView(off, n), c.bank(me, f).SubView(0, n))
		} else {
			tr.CopyOut(r.Proc(), me, v.SubView(off, n), src)
		}
		r.SendOOB(parent, tag+1, bankFree{f: f})
	})
	// Drain remaining child acks so banks are quiescent before reuse by
	// the next collective.
	for acks < nfrag*len(children) {
		m, _ := r.RecvOOB(mpi.AnySource, tag+1)
		_ = m.(bankFree)
		acks++
	}
}

// Gather fans blocks in: every rank streams its block through its own
// banks and the root drains every rank's banks — the root-core
// serialization of §III-A, kept faithfully.
func (c *Component) Gather(r *mpi.Rank, send, recv memsim.View, root int) {
	p := r.Size()
	if p == 1 {
		r.LocalCopy(recv.SubView(0, send.Len), send)
		return
	}
	tag := r.CollTag()
	me := r.ID()
	tr := c.w.Transport()
	if me != root {
		freeUpTo := c.cfg.Banks // fragments the root has released
		fr := 0
		coll.Segments(send.Len, c.cfg.FragSize, func(off, n int64) {
			f := fr
			fr++
			for f >= freeUpTo {
				m, _ := r.RecvOOB(root, tag+1)
				freeUpTo = m.(bankFree).f + c.cfg.Banks + 1
			}
			tr.CopyIn(r.Proc(), me, c.bank(me, f), send.SubView(off, n))
			r.SendOOB(root, tag, fragNote{f: f})
		})
		return
	}
	// Root: its own block locally, then drain children rank by rank as
	// fragments arrive (single consumer core).
	blk := send.Len
	r.LocalCopy(recv.SubView(int64(me)*blk, blk), send)
	pendingNotes := make(map[int][]int)
	nextFrag := make([]int, p)
	done := 0
	total := (p - 1) * coll.NumSegments(blk, c.cfg.FragSize)
	for done < total {
		m, from := r.RecvOOB(mpi.AnySource, tag)
		pendingNotes[from] = append(pendingNotes[from], m.(fragNote).f)
		for len(pendingNotes[from]) > 0 && pendingNotes[from][0] == nextFrag[from] {
			f := pendingNotes[from][0]
			pendingNotes[from] = pendingNotes[from][1:]
			off := int64(f) * c.cfg.FragSize
			n := c.cfg.FragSize
			if rem := blk - off; rem < n {
				n = rem
			}
			tr.CopyOut(r.Proc(), me, recv.SubView(int64(from)*blk+off, n), c.bank(from, f))
			r.SendOOB(from, tag+1, bankFree{f: f})
			nextFrag[from]++
			done++
		}
	}
}

// Scatter delegates to Tuned (Graham et al. specialize fan-out/fan-in for
// Bcast/Reduce-style patterns).
func (c *Component) Scatter(r *mpi.Rank, send, recv memsim.View, root int) {
	c.fb.Scatter(r, send, recv, root)
}

// Barrier delegates to Tuned.
func (c *Component) Barrier(r *mpi.Rank) { c.fb.Barrier(r) }

// Allgather delegates to Tuned.
func (c *Component) Allgather(r *mpi.Rank, send, recv memsim.View) { c.fb.Allgather(r, send, recv) }

// Alltoall delegates to Tuned.
func (c *Component) Alltoall(r *mpi.Rank, send, recv memsim.View) { c.fb.Alltoall(r, send, recv) }

// Gatherv delegates to Tuned.
func (c *Component) Gatherv(r *mpi.Rank, send, recv memsim.View, rcounts, rdispls []int64, root int) {
	c.fb.Gatherv(r, send, recv, rcounts, rdispls, root)
}

// Scatterv delegates to Tuned.
func (c *Component) Scatterv(r *mpi.Rank, send memsim.View, scounts, sdispls []int64, recv memsim.View, root int) {
	c.fb.Scatterv(r, send, scounts, sdispls, recv, root)
}

// Allgatherv delegates to Tuned.
func (c *Component) Allgatherv(r *mpi.Rank, send, recv memsim.View, rcounts, rdispls []int64) {
	c.fb.Allgatherv(r, send, recv, rcounts, rdispls)
}

// Alltoallv delegates to Tuned.
func (c *Component) Alltoallv(r *mpi.Rank, send memsim.View, scounts, sdispls []int64, recv memsim.View, rcounts, rdispls []int64) {
	c.fb.Alltoallv(r, send, scounts, sdispls, recv, rcounts, rdispls)
}

// Reduce fans partial results in through the shared banks (the fan-in
// side of Graham et al.): each rank combines its children's fragments
// into an accumulator and streams the result up through its own banks,
// fragment by fragment.
func (c *Component) Reduce(r *mpi.Rank, send, recv memsim.View, op mpi.ReduceOp, root int) {
	p := r.Size()
	me := r.ID()
	if p == 1 {
		r.LocalCopy(recv.SubView(0, send.Len), send)
		return
	}
	tag := r.CollTag()
	parent, children := c.tree(me, root, p)

	accum := recv
	if me != root {
		accum = r.Alloc(send.Len).Whole()
	}
	accum = accum.SubView(0, send.Len)
	r.LocalCopy(accum, send)

	temp := r.Alloc(c.cfg.FragSize).Whole()
	freeUpTo := c.cfg.Banks
	fr := 0
	coll.Segments(send.Len, c.cfg.FragSize, func(off, n int64) {
		f := fr
		fr++
		// Pull fragment f from every child's bank as it is announced.
		for _, ch := range children {
			m, _ := r.RecvOOB(ch, tag)
			if m.(fragNote).f != f {
				panic("smcoll: reduce fragment out of order")
			}
			c.w.Net().Copy(r.Proc(), r.Core(), temp.SubView(0, n), c.bank(ch, f).SubView(0, n))
			r.ApplyReduce(op, accum.SubView(off, n), temp.SubView(0, n))
			r.SendOOB(ch, tag+1, bankFree{f: f})
		}
		if parent == -1 {
			return
		}
		// Publish the combined fragment to the parent through own banks.
		for f >= freeUpTo {
			m, _ := r.RecvOOB(parent, tag+1)
			freeUpTo = m.(bankFree).f + c.cfg.Banks + 1
		}
		c.w.Net().Copy(r.Proc(), r.Core(), c.bank(me, f).SubView(0, n), accum.SubView(off, n))
		r.SendOOB(parent, tag, fragNote{f: f})
	})
}

// Allreduce is the fan-in reduce followed by the fan-out broadcast.
func (c *Component) Allreduce(r *mpi.Rank, send, recv memsim.View, op mpi.ReduceOp) {
	c.Reduce(r, send, recv, op, 0)
	c.Bcast(r, recv.SubView(0, send.Len), 0)
}

// ReduceScatterBlock delegates to Tuned.
func (c *Component) ReduceScatterBlock(r *mpi.Rank, send, recv memsim.View, op mpi.ReduceOp) {
	c.fb.ReduceScatterBlock(r, send, recv, op)
}
