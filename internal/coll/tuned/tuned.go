// Package tuned models Open MPI's Tuned collective component (§II of the
// paper): a menu of algorithms per operation with message-size and
// communicator-size switch points, running over whatever point-to-point
// BTL the world is configured with (SM copy-in/copy-out, or SM/KNEM).
// Teamed with BTLSM it is the paper's "Tuned-SM" baseline; with BTLKNEM it
// is "Tuned-KNEM".
//
// Decision rules follow Open MPI's fixed decision functions in shape:
//
//	Bcast:     binomial (small) -> pipelined binary tree (intermediate,
//	           standing in for split-binary) -> pipelined chain (large)
//	Gather:    binomial (small) -> linear (large)
//	Scatter:   binomial (small) -> linear (large)
//	Allgather: recursive doubling (small, power of two) -> ring (large)
//	Alltoall:  linear (small) -> pairwise (large)
//
// The exact thresholds are tunable; the defaults below are the shapes the
// paper describes ("binomial for small, split binary for intermediate,
// pipeline for large").
package tuned

import (
	"repro/internal/coll"
	"repro/internal/coll/basic"
	"repro/internal/memsim"
	"repro/internal/mpi"
	"repro/internal/tune"
)

// Config carries the switch points.
type Config struct {
	BcastBinomialMax int64 // <= : binomial (default 8 KiB)
	BcastTreeMax     int64 // <= : pipelined binary tree (default 512 KiB)
	BcastTreeSeg     int64 // binary-tree segment size (default 32 KiB)
	BcastChainSeg    int64 // chain segment size (default 128 KiB)
	GatherBinMax     int64 // <= : binomial gather/scatter (default 16 KiB blocks)
	AllgatherRDMax   int64 // <= : recursive doubling if pow2 (default 64 KiB blocks)
	AlltoallLinMax   int64 // <= : linear alltoall (default 4 KiB blocks)
	// Fanout forces the Broadcast tree shape above the binomial range:
	// 1 is the pipelined chain, 2 the pipelined binary tree; 0 keeps the
	// size-based rule. It is the tree-fanout dimension the autotuner
	// sweeps.
	Fanout int
	// Seg, if nonzero, overrides both pipeline segment sizes.
	Seg int64
	// Decider, when non-nil, supplies empirically tuned per-size
	// Broadcast knobs (segment size, fanout) from a decision table
	// (internal/tune). A component built with an all-default Config
	// adopts the world's decider automatically; explicitly configured
	// ones keep their settings.
	Decider *tune.Decider
}

func (c *Config) fill() {
	if c.BcastBinomialMax == 0 {
		c.BcastBinomialMax = 8 << 10
	}
	if c.BcastTreeMax == 0 {
		c.BcastTreeMax = 512 << 10
	}
	if c.BcastTreeSeg == 0 {
		c.BcastTreeSeg = 32 << 10
	}
	if c.BcastChainSeg == 0 {
		c.BcastChainSeg = 128 << 10
	}
	if c.GatherBinMax == 0 {
		c.GatherBinMax = 16 << 10
	}
	if c.AllgatherRDMax == 0 {
		c.AllgatherRDMax = 64 << 10
	}
	if c.AlltoallLinMax == 0 {
		c.AlltoallLinMax = 4 << 10
	}
}

// Component is the Tuned collective component.
type Component struct {
	cfg    Config
	linear *basic.Component
	// btlKNEM records whether the world's point-to-point transport is
	// KNEM: a decision table stores separate best Tuned knobs per BTL.
	btlKNEM bool
}

// tunable reports whether every switch point is at its default, i.e.
// whether a world-level decision table may steer this component.
func (c *Config) tunable() bool {
	return *c == Config{}
}

// New builds the component with default switch points.
func New(w *mpi.World) mpi.Coll { return NewWithConfig(w, Config{}) }

// NewWithConfig builds the component with explicit switch points. A nil
// world is accepted (direct algorithm tests); decision tables then never
// apply.
func NewWithConfig(w *mpi.World, cfg Config) mpi.Coll {
	comp := &Component{linear: &basic.Component{}}
	if w != nil {
		if cfg.Decider == nil && cfg.tunable() {
			cfg.Decider = w.Decider()
		}
		comp.btlKNEM = w.BTL() == mpi.BTLKNEM
	}
	cfg.fill()
	comp.cfg = cfg
	return comp
}

// bcastKnobs resolves the effective segment override and fanout for an
// n-byte Broadcast: the tuned cell's best knobs for this component's BTL
// flavour when a table covers the size, else the configured values.
func (c *Component) bcastKnobs(r *mpi.Rank, n int64) (seg int64, fanout int) {
	seg, fanout = c.cfg.Seg, c.cfg.Fanout
	if c.cfg.Decider == nil {
		return seg, fanout
	}
	cell, ok := c.cfg.Decider.Lookup(tune.OpBcast, r.Size(), n)
	if !ok {
		return seg, fanout
	}
	alt := cell.Alts.TunedSM
	if c.btlKNEM {
		alt = cell.Alts.TunedKNEM
	}
	if alt == nil {
		return seg, fanout
	}
	if alt.Choice.Seg > 0 {
		seg = alt.Choice.Seg
	}
	if alt.Choice.Fanout > 0 {
		fanout = alt.Choice.Fanout
	}
	return seg, fanout
}

// Name implements mpi.Coll.
func (*Component) Name() string { return "tuned" }

// Barrier implements mpi.Coll.
func (c *Component) Barrier(r *mpi.Rank) { c.linear.Barrier(r) }

// Bcast selects binomial, pipelined binary tree, or pipelined chain by
// message size; a forced fanout (configured or tuned) overrides the tree
// shape above the binomial range, and a segment override replaces the
// per-shape pipeline segments.
func (c *Component) Bcast(r *mpi.Rank, v memsim.View, root int) {
	tag := r.CollTag()
	seg, fanout := c.bcastKnobs(r, v.Len)
	treeSeg, chainSeg := c.cfg.BcastTreeSeg, c.cfg.BcastChainSeg
	if seg > 0 {
		treeSeg, chainSeg = seg, seg
	}
	switch {
	case r.Size() <= 2 || (v.Len <= c.cfg.BcastBinomialMax && fanout == 0):
		coll.BcastBinomial(r, v, root, tag)
	case fanout == 1:
		coll.BcastChainPipelined(r, v, root, tag, chainSeg)
	case fanout == 2:
		coll.BcastBinaryPipelined(r, v, root, tag, treeSeg)
	case v.Len <= c.cfg.BcastTreeMax:
		coll.BcastBinaryPipelined(r, v, root, tag, treeSeg)
	default:
		coll.BcastChainPipelined(r, v, root, tag, chainSeg)
	}
}

// Gather is binomial for small blocks, linear for large ones.
func (c *Component) Gather(r *mpi.Rank, send, recv memsim.View, root int) {
	if send.Len <= c.cfg.GatherBinMax {
		coll.GatherBinomial(r, send, recv, root, r.CollTag())
		return
	}
	c.linear.Gather(r, send, recv, root)
}

// Scatter is binomial for small blocks, linear for large ones.
func (c *Component) Scatter(r *mpi.Rank, send, recv memsim.View, root int) {
	if recv.Len <= c.cfg.GatherBinMax {
		coll.ScatterBinomial(r, send, recv, root, r.CollTag())
		return
	}
	c.linear.Scatter(r, send, recv, root)
}

// Allgather is recursive doubling for small power-of-two worlds, ring
// otherwise.
func (c *Component) Allgather(r *mpi.Rank, send, recv memsim.View) {
	p := r.Size()
	if p&(p-1) == 0 && send.Len <= c.cfg.AllgatherRDMax {
		coll.AllgatherRecDoubling(r, send, recv, r.CollTag())
		return
	}
	coll.AllgatherRing(r, send, recv, r.CollTag())
}

// Alltoall is linear for small blocks, pairwise for large ones.
func (c *Component) Alltoall(r *mpi.Rank, send, recv memsim.View) {
	blk := send.Len / int64(r.Size())
	if blk <= c.cfg.AlltoallLinMax {
		c.linear.Alltoall(r, send, recv)
		return
	}
	coll.AlltoallPairwise(r, send, recv, r.CollTag())
}

// Gatherv is linear (Open MPI Tuned delegates irregular collectives).
func (c *Component) Gatherv(r *mpi.Rank, send, recv memsim.View, rcounts, rdispls []int64, root int) {
	c.linear.Gatherv(r, send, recv, rcounts, rdispls, root)
}

// Scatterv is linear.
func (c *Component) Scatterv(r *mpi.Rank, send memsim.View, scounts, sdispls []int64, recv memsim.View, root int) {
	c.linear.Scatterv(r, send, scounts, sdispls, recv, root)
}

// Allgatherv rings the variable blocks.
func (c *Component) Allgatherv(r *mpi.Rank, send, recv memsim.View, rcounts, rdispls []int64) {
	coll.AllgathervRing(r, send, recv, rcounts, rdispls, r.CollTag())
}

// Alltoallv is pairwise.
func (c *Component) Alltoallv(r *mpi.Rank, send memsim.View, scounts, sdispls []int64, recv memsim.View, rcounts, rdispls []int64) {
	coll.AlltoallvPairwise(r, send, scounts, sdispls, recv, rcounts, rdispls, r.CollTag())
}

// Reduce combines up the binomial tree.
func (c *Component) Reduce(r *mpi.Rank, send, recv memsim.View, op mpi.ReduceOp, root int) {
	coll.ReduceBinomial(r, send, recv, op, root, r.CollTag())
}

// Allreduce uses recursive doubling for small vectors and Rabenseifner's
// reduce-scatter + allgather for large ones (power-of-two ranks; other
// counts fall back to reduce + broadcast).
func (c *Component) Allreduce(r *mpi.Rank, send, recv memsim.View, op mpi.ReduceOp) {
	p := r.Size()
	pow2 := p&(p-1) == 0
	switch {
	case pow2 && send.Len <= c.cfg.AllgatherRDMax:
		coll.AllreduceRecDoubling(r, send, recv, op, r.CollTag())
	case pow2 && send.Len%int64(p) == 0:
		coll.AllreduceRabenseifner(r, send, recv, op, r.CollTag())
	default:
		c.Reduce(r, send, recv, op, 0)
		c.Bcast(r, recv.SubView(0, send.Len), 0)
	}
}

// ReduceScatterBlock uses recursive halving on power-of-two ranks.
func (c *Component) ReduceScatterBlock(r *mpi.Rank, send, recv memsim.View, op mpi.ReduceOp) {
	if p := r.Size(); p&(p-1) == 0 {
		coll.ReduceScatterBlockHalving(r, send, recv, op, r.CollTag())
		return
	}
	c.linear.ReduceScatterBlock(r, send, recv, op)
}
