package conformance

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/coll/hier"
	"repro/internal/coll/tuned"
	"repro/internal/mpi"
	"repro/internal/topology"
)

// Cluster dimension of the conformance harness: every hierarchical
// collective must deliver bit-for-bit the same payload bytes as the flat
// reference component run over the same global communicator on the same
// composite machine. Cells cover np ∈ {8, 64, 256} across 2–8 nodes.

// clusterSpec is the shared scalar spec of every synthetic cluster node.
var clusterSpec = topology.Spec{
	CoreCopyBW:  4.5e9,
	KernelTrap:  100e-9,
	CopySetup:   500e-9,
	PinPerPage:  40e-9,
	CtrlLatency: 300e-9,
	Flops:       5.5e9,
}

func clusterResolve(ref string) (*topology.Machine, error) {
	switch ref {
	case "quadbox": // 4 cores: 2 sockets × 2
		return topology.Synthetic(topology.SyntheticSpec{
			Boards: 1, SocketsPerBoard: 2, CoresPerSocket: 2,
			BusBW: 16e9, LinkBW: 11e9,
			CacheSize: 8 << 20, CachePortBW: 30e9,
			Spec: clusterSpec,
		}), nil
	case "bigbox": // 32 cores: 4 sockets × 8
		return topology.Synthetic(topology.SyntheticSpec{
			Boards: 1, SocketsPerBoard: 4, CoresPerSocket: 8,
			BusBW: 20e9, LinkBW: 12e9,
			CacheSize: 18 << 20, CachePortBW: 32e9,
			Spec: clusterSpec,
		}), nil
	}
	if m := topology.ByName(ref); m != nil {
		return m, nil
	}
	return nil, fmt.Errorf("unknown machine %q", ref)
}

type cenv struct {
	name string
	cl   *topology.Cluster
	np   int
}

func mustCompile(t *testing.T, cfg topology.ClusterConfig) *topology.Cluster {
	t.Helper()
	cl, err := topology.CompileCluster(cfg, clusterResolve)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// clusterEnvs builds the (np, nodes) grid: 8 ranks over 2 nodes, 64 over
// 4, 256 over 8. np always equals the cluster's core count so the default
// identity mapping fills every node.
func clusterEnvs(t *testing.T) []cenv {
	t.Helper()
	nodes := func(n int, machine string) []topology.NodeSpec {
		ns := make([]topology.NodeSpec, n)
		for i := range ns {
			ns[i] = topology.NodeSpec{Name: fmt.Sprintf("n%d", i), Machine: machine}
		}
		return ns
	}
	return []cenv{
		{"np8x2nodes", mustCompile(t, topology.ClusterConfig{
			Name:  "pair",
			Nodes: nodes(2, "quadbox"),
			Links: []topology.LinkSpec{{A: "n0", B: "n1", Name: "eth0", BW: 1.25e9, Lat: 50e-6}},
		}), 8},
		{"np64x4nodes", mustCompile(t, topology.ClusterConfig{
			Name:   "quad",
			Nodes:  nodes(4, "Saturn"),
			Switch: &topology.SwitchSpec{Name: "sw", BW: 3e9, Lat: 2e-6},
		}), 64},
		{"np256x8nodes", mustCompile(t, topology.ClusterConfig{
			Name:   "rack",
			Nodes:  nodes(8, "bigbox"),
			Switch: &topology.SwitchSpec{Name: "tor", BW: 6e9, Lat: 2e-6},
		}), 256},
	}
}

// hierFactories returns the hierarchical components under test for a
// cluster, plus the flat reference they must match byte for byte.
func hierFactories(cl *topology.Cluster) []factory {
	return []factory{
		{"hier-tree", mpi.BTLSM, hier.New(cl)},
		{"hier-ring", mpi.BTLSM, hier.NewWithConfig(cl, hier.Config{Inter: "ring"})},
	}
}

var flatReference = factory{"tuned-sm", mpi.BTLSM, tuned.New}

// runCluster executes body over the cluster's composite machine and
// returns the per-rank payload snapshots body stores.
func runCluster(t *testing.T, f factory, e cenv, body func(r *mpi.Rank, out [][]byte)) [][]byte {
	t.Helper()
	out := make([][]byte, e.np)
	_, _, err := mpi.Run(mpi.Options{
		Machine:  e.cl.Global,
		NP:       e.np,
		BTL:      f.btl,
		Coll:     f.make,
		WithData: true,
	}, func(r *mpi.Rank) { body(r, out) })
	if err != nil {
		t.Fatalf("%s/%s: %v", f.name, e.name, err)
	}
	return out
}

// diffOut asserts two per-rank snapshots are bit-for-bit identical.
func diffOut(t *testing.T, what string, got, want [][]byte) {
	t.Helper()
	for rank := range want {
		if !bytes.Equal(got[rank], want[rank]) {
			i := 0
			for i < len(want[rank]) && i < len(got[rank]) && got[rank][i] == want[rank][i] {
				i++
			}
			t.Fatalf("%s: rank %d differs from flat reference at byte %d", what, rank, i)
		}
	}
}

func TestClusterBcast(t *testing.T) {
	// 4 KiB runs the generic intra-node path, 96 KiB the KNEM region path.
	sizes := []int64{4 << 10, 96 << 10}
	for _, e := range clusterEnvs(t) {
		for _, size := range sizes {
			for _, root := range []int{0, e.np - 1} {
				body := func(r *mpi.Rank, out [][]byte) {
					b := r.Alloc(size)
					if r.ID() == root {
						fillPat(b, root)
					}
					r.Bcast(b.Whole(), root)
					out[r.ID()] = append([]byte(nil), b.Data...)
				}
				want := runCluster(t, flatReference, e, body)
				for _, f := range hierFactories(e.cl) {
					name := fmt.Sprintf("%s/%s/%d/root%d", f.name, e.name, size, root)
					t.Run(name, func(t *testing.T) {
						got := runCluster(t, f, e, body)
						diffOut(t, name, got, want)
					})
				}
			}
		}
	}
}

func TestClusterReduce(t *testing.T) {
	// Integer sum is associative and commutative, so the hierarchical
	// combine order must still produce exactly the flat result.
	const size = 4 << 10
	for _, e := range clusterEnvs(t) {
		root := e.np / 2
		body := func(r *mpi.Rank, out [][]byte) {
			send := r.Alloc(size)
			fillPat(send, r.ID())
			recv := r.Alloc(size)
			r.Reduce(send.Whole(), recv.Whole(), mpi.OpSumInt32, root)
			if r.ID() == root {
				out[r.ID()] = append([]byte(nil), recv.Data...)
			}
		}
		want := runCluster(t, flatReference, e, body)
		for _, f := range hierFactories(e.cl) {
			name := fmt.Sprintf("%s/%s/sum_int32", f.name, e.name)
			t.Run(name, func(t *testing.T) {
				diffOut(t, name, runCluster(t, f, e, body), want)
			})
		}
	}
}

func TestClusterAllgather(t *testing.T) {
	const blk = 1 << 10
	for _, e := range clusterEnvs(t) {
		body := func(r *mpi.Rank, out [][]byte) {
			send := r.Alloc(blk)
			fillPat(send, r.ID())
			recv := r.Alloc(int64(e.np) * blk)
			r.Allgather(send.Whole(), recv.Whole())
			out[r.ID()] = append([]byte(nil), recv.Data...)
		}
		want := runCluster(t, flatReference, e, body)
		for _, f := range hierFactories(e.cl) {
			name := fmt.Sprintf("%s/%s/%d", f.name, e.name, blk)
			t.Run(name, func(t *testing.T) {
				diffOut(t, name, runCluster(t, f, e, body), want)
			})
		}
	}
}

// The hierarchical component must actually use the KNEM region protocol
// for large intra-node payloads — otherwise the cluster cells above would
// silently validate the fallback path only.
func TestClusterBcastUsesKnem(t *testing.T) {
	e := clusterEnvs(t)[0]
	_, w, err := mpi.Run(mpi.Options{
		Machine:  e.cl.Global,
		NP:       e.np,
		BTL:      mpi.BTLSM,
		Coll:     hier.New(e.cl),
		WithData: true,
	}, func(r *mpi.Rank) {
		b := r.Alloc(96 << 10)
		r.Bcast(b.Whole(), 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	// One region per node leader (2 nodes).
	if w.Stats().Registrations != 2 {
		t.Fatalf("registrations = %d, want 2 (one per node leader)", w.Stats().Registrations)
	}
	if w.Knem().ActiveRegions() != 0 {
		t.Fatalf("%d KNEM regions leaked", w.Knem().ActiveRegions())
	}
}
