// Package conformance validates every collective component against the
// MPI semantics of each operation, with real data, across message sizes
// spanning all algorithm switch points, multiple roots, and both flat and
// deeply-NUMA machines.
package conformance

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/coll/basic"
	"repro/internal/coll/mpich2"
	"repro/internal/coll/smcoll"
	"repro/internal/coll/tuned"
	"repro/internal/core"
	"repro/internal/memsim"
	"repro/internal/mpi"
	"repro/internal/topology"
)

type factory struct {
	name string
	btl  mpi.BTLKind
	make func(w *mpi.World) mpi.Coll
}

func components() []factory {
	return []factory{
		{"basic-sm", mpi.BTLSM, basic.New},
		{"basic-knem", mpi.BTLKNEM, basic.New},
		{"tuned-sm", mpi.BTLSM, tuned.New},
		{"tuned-knem", mpi.BTLKNEM, tuned.New},
		{"mpich2-sm", mpi.BTLSM, mpich2.New},
		{"mpich2-knem", mpi.BTLKNEM, mpich2.New},
		{"smcoll", mpi.BTLSM, smcoll.New},
		{"knemcoll", mpi.BTLSM, core.New},
		{"knemcoll-hier", mpi.BTLSM, func(w *mpi.World) mpi.Coll {
			return core.NewWithConfig(w, core.Config{Mode: core.ModeHierarchical})
		}},
		{"knemcoll-linear", mpi.BTLSM, func(w *mpi.World) mpi.Coll {
			return core.NewWithConfig(w, core.Config{Mode: core.ModeLinear})
		}},
	}
}

// pat gives a deterministic byte for (rank, index) pairs.
func pat(rank int, i int64) byte { return byte(int64(rank*131) + i*7 + 3) }

func fillPat(b *memsim.Buffer, rank int) {
	for i := range b.Data {
		b.Data[i] = pat(rank, int64(i))
	}
}

type env struct {
	name string
	mach *topology.Machine
	np   int
}

func envs() []env {
	return []env{
		{"dancer8", topology.Dancer(), 8},
		{"dancer5", topology.Dancer(), 5}, // non-power-of-two
		{"zoot16", topology.Zoot(), 16},
		{"ig12", topology.IG(), 12},
	}
}

func forAll(t *testing.T, sizes []int64, fn func(t *testing.T, f factory, e env, size int64)) {
	t.Helper()
	for _, f := range components() {
		for _, e := range envs() {
			for _, size := range sizes {
				name := fmt.Sprintf("%s/%s/%d", f.name, e.name, size)
				t.Run(name, func(t *testing.T) {
					fn(t, f, e, size)
				})
			}
		}
	}
}

func runColl(t *testing.T, f factory, e env, body func(r *mpi.Rank)) *mpi.World {
	t.Helper()
	_, w, err := mpi.Run(mpi.Options{
		Machine:  e.mach,
		NP:       e.np,
		BTL:      f.btl,
		Coll:     f.make,
		WithData: true,
	}, body)
	if err != nil {
		t.Fatalf("%v", err)
	}
	return w
}

// Sizes straddle eager (4 KiB), the KNEM threshold (16 KiB), and the
// broadcast switch points (8 KiB, 512 KiB, 2 MiB).
var bcastSizes = []int64{1 << 10, 20 << 10, 600 << 10, 2100 << 10}

func TestBcast(t *testing.T) {
	forAll(t, bcastSizes, func(t *testing.T, f factory, e env, size int64) {
		for _, root := range []int{0, e.np - 1} {
			root := root
			runColl(t, f, e, func(r *mpi.Rank) {
				b := r.Alloc(size)
				if r.ID() == root {
					fillPat(b, root)
				}
				r.Bcast(b.Whole(), root)
				for i := int64(0); i < size; i += 511 {
					if b.Data[i] != pat(root, i) {
						t.Errorf("root %d rank %d: byte %d = %d, want %d", root, r.ID(), i, b.Data[i], pat(root, i))
						return
					}
				}
			})
		}
	})
}

var blockSizes = []int64{2 << 10, 40 << 10, 300 << 10}

func TestScatter(t *testing.T) {
	forAll(t, blockSizes, func(t *testing.T, f factory, e env, blk int64) {
		root := e.np / 2
		runColl(t, f, e, func(r *mpi.Rank) {
			p := int64(e.np)
			var send memsim.View
			if r.ID() == root {
				sb := r.Alloc(p * blk)
				for i := range sb.Data {
					sb.Data[i] = pat(int(int64(i)/blk), int64(i)%blk)
				}
				send = sb.Whole()
			}
			recv := r.Alloc(blk)
			r.Scatter(send, recv.Whole(), root)
			for i := int64(0); i < blk; i += 257 {
				if recv.Data[i] != pat(r.ID(), i) {
					t.Errorf("rank %d: scatter byte %d wrong", r.ID(), i)
					return
				}
			}
		})
	})
}

func TestGather(t *testing.T) {
	forAll(t, blockSizes, func(t *testing.T, f factory, e env, blk int64) {
		root := e.np - 1
		runColl(t, f, e, func(r *mpi.Rank) {
			p := int64(e.np)
			send := r.Alloc(blk)
			fillPat(send, r.ID())
			var recv memsim.View
			var rb *memsim.Buffer
			if r.ID() == root {
				rb = r.Alloc(p * blk)
				recv = rb.Whole()
			}
			r.Gather(send.Whole(), recv, root)
			if r.ID() == root {
				for src := 0; src < e.np; src++ {
					for i := int64(0); i < blk; i += 509 {
						if rb.Data[int64(src)*blk+i] != pat(src, i) {
							t.Errorf("gather: block %d byte %d wrong", src, i)
							return
						}
					}
				}
			}
		})
	})
}

func TestAllgather(t *testing.T) {
	forAll(t, blockSizes, func(t *testing.T, f factory, e env, blk int64) {
		runColl(t, f, e, func(r *mpi.Rank) {
			p := int64(e.np)
			send := r.Alloc(blk)
			fillPat(send, r.ID())
			recv := r.Alloc(p * blk)
			r.Allgather(send.Whole(), recv.Whole())
			for src := 0; src < e.np; src++ {
				for i := int64(0); i < blk; i += 503 {
					if recv.Data[int64(src)*blk+i] != pat(src, i) {
						t.Errorf("rank %d: allgather block %d byte %d wrong", r.ID(), src, i)
						return
					}
				}
			}
		})
	})
}

func TestAlltoall(t *testing.T) {
	forAll(t, []int64{2 << 10, 40 << 10}, func(t *testing.T, f factory, e env, blk int64) {
		runColl(t, f, e, func(r *mpi.Rank) {
			p := int64(e.np)
			send := r.Alloc(p * blk)
			// Block j carries pat(me*100+j, .).
			for j := 0; j < e.np; j++ {
				for i := int64(0); i < blk; i++ {
					send.Data[int64(j)*blk+i] = pat(r.ID()*100+j, i)
				}
			}
			recv := r.Alloc(p * blk)
			r.Alltoall(send.Whole(), recv.Whole())
			for src := 0; src < e.np; src++ {
				for i := int64(0); i < blk; i += 251 {
					if recv.Data[int64(src)*blk+i] != pat(src*100+r.ID(), i) {
						t.Errorf("rank %d: alltoall block from %d wrong", r.ID(), src)
						return
					}
				}
			}
		})
	})
}

func TestBarrierSemantics(t *testing.T) {
	for _, f := range components() {
		f := f
		t.Run(f.name, func(t *testing.T) {
			e := env{"dancer8", topology.Dancer(), 8}
			enter := make([]float64, e.np)
			exit := make([]float64, e.np)
			runColl(t, f, e, func(r *mpi.Rank) {
				r.Sleep(float64(r.ID()) * 1e-3) // staggered arrival
				enter[r.ID()] = r.Now()
				r.Barrier()
				exit[r.ID()] = r.Now()
			})
			maxEnter := 0.0
			for _, v := range enter {
				if v > maxEnter {
					maxEnter = v
				}
			}
			for i, v := range exit {
				if v < maxEnter {
					t.Fatalf("rank %d exited barrier at %g before last entry %g", i, v, maxEnter)
				}
			}
		})
	}
}

// Vector variants with random uneven counts.
func TestVectorVariants(t *testing.T) {
	for _, f := range components() {
		f := f
		t.Run(f.name, func(t *testing.T) {
			e := env{"dancer8", topology.Dancer(), 8}
			rng := rand.New(rand.NewSource(42))
			p := e.np
			counts := make([]int64, p)
			displs := make([]int64, p)
			var off int64
			for i := range counts {
				counts[i] = int64(rng.Intn(90_000)) + 1
				displs[i] = off
				off += counts[i]
			}
			total := off

			// Gatherv.
			root := 3
			runColl(t, f, e, func(r *mpi.Rank) {
				send := r.Alloc(counts[r.ID()])
				fillPat(send, r.ID())
				var recv memsim.View
				var rb *memsim.Buffer
				if r.ID() == root {
					rb = r.Alloc(total)
					recv = rb.Whole()
				}
				r.Gatherv(send.Whole(), recv, counts, displs, root)
				if r.ID() == root {
					for src := 0; src < p; src++ {
						for i := int64(0); i < counts[src]; i += 101 {
							if rb.Data[displs[src]+i] != pat(src, i) {
								t.Errorf("gatherv block %d wrong", src)
								return
							}
						}
					}
				}
			})

			// Scatterv.
			runColl(t, f, e, func(r *mpi.Rank) {
				var send memsim.View
				if r.ID() == root {
					sb := r.Alloc(total)
					for i := 0; i < p; i++ {
						for j := int64(0); j < counts[i]; j++ {
							sb.Data[displs[i]+j] = pat(i, j)
						}
					}
					send = sb.Whole()
				}
				recv := r.Alloc(counts[r.ID()])
				r.Scatterv(send, counts, displs, recv.Whole(), root)
				for i := int64(0); i < counts[r.ID()]; i += 97 {
					if recv.Data[i] != pat(r.ID(), i) {
						t.Errorf("scatterv rank %d wrong", r.ID())
						return
					}
				}
			})

			// Allgatherv.
			runColl(t, f, e, func(r *mpi.Rank) {
				send := r.Alloc(counts[r.ID()])
				fillPat(send, r.ID())
				recv := r.Alloc(total)
				r.Allgatherv(send.Whole(), recv.Whole(), counts, displs)
				for src := 0; src < p; src++ {
					for i := int64(0); i < counts[src]; i += 103 {
						if recv.Data[displs[src]+i] != pat(src, i) {
							t.Errorf("allgatherv rank %d block %d wrong", r.ID(), src)
							return
						}
					}
				}
			})

			// Alltoallv: rank r sends counts2[j] bytes to rank j; the
			// matrix must be consistent: what i sends to j == what j
			// receives from i. Use size dependent on (i+j).
			mat := make([][]int64, p)
			for i := range mat {
				mat[i] = make([]int64, p)
				for j := range mat[i] {
					mat[i][j] = int64((i+j)*7919)%50_000 + 1
				}
			}
			runColl(t, f, e, func(r *mpi.Rank) {
				me := r.ID()
				sc := make([]int64, p)
				sd := make([]int64, p)
				var so int64
				for j := 0; j < p; j++ {
					sc[j] = mat[me][j]
					sd[j] = so
					so += sc[j]
				}
				rc := make([]int64, p)
				rd := make([]int64, p)
				var ro int64
				for j := 0; j < p; j++ {
					rc[j] = mat[j][me]
					rd[j] = ro
					ro += rc[j]
				}
				sb := r.Alloc(so)
				for j := 0; j < p; j++ {
					for i := int64(0); i < sc[j]; i++ {
						sb.Data[sd[j]+i] = pat(me*100+j, i)
					}
				}
				rb := r.Alloc(ro)
				r.Alltoallv(sb.Whole(), sc, sd, rb.Whole(), rc, rd)
				for src := 0; src < p; src++ {
					for i := int64(0); i < rc[src]; i += 89 {
						if rb.Data[rd[src]+i] != pat(src*100+me, i) {
							t.Errorf("alltoallv rank %d from %d wrong", me, src)
							return
						}
					}
				}
			})
		})
	}
}

// Consecutive collectives must not interfere (tag reuse, region leaks).
func TestBackToBackCollectives(t *testing.T) {
	for _, f := range components() {
		f := f
		t.Run(f.name, func(t *testing.T) {
			e := env{"dancer8", topology.Dancer(), 8}
			w := runColl(t, f, e, func(r *mpi.Rank) {
				for iter := 0; iter < 4; iter++ {
					b := r.Alloc(64 << 10)
					if r.ID() == iter%e.np {
						fillPat(b, iter)
					}
					r.Bcast(b.Whole(), iter%e.np)
					if b.Data[100] != pat(iter, 100) {
						t.Errorf("iter %d corrupted", iter)
					}
					r.Barrier()
				}
			})
			if w.Knem().ActiveRegions() != 0 {
				t.Fatalf("%d KNEM regions leaked", w.Knem().ActiveRegions())
			}
		})
	}
}

// KNEM-Coll structural properties from the paper.
func TestKnemCollStructure(t *testing.T) {
	e := env{"dancer8", topology.Dancer(), 8}
	f := factory{"knemcoll", mpi.BTLSM, core.New}

	t.Run("linear-bcast-one-registration", func(t *testing.T) {
		lin := factory{"knemcoll-linear", mpi.BTLSM, func(w *mpi.World) mpi.Coll {
			return core.NewWithConfig(w, core.Config{Mode: core.ModeLinear})
		}}
		w := runColl(t, lin, e, func(r *mpi.Rank) {
			b := r.Alloc(1 << 20)
			r.Bcast(b.Whole(), 0)
		})
		if w.Stats().Registrations != 1 {
			t.Errorf("registrations = %d, want 1", w.Stats().Registrations)
		}
		if w.Stats().Copies != int64(e.np-1) {
			t.Errorf("copies = %d, want %d (one per receiver)", w.Stats().Copies, e.np-1)
		}
	})

	t.Run("hier-bcast-two-registrations", func(t *testing.T) {
		// Dancer has 2 domains: the root's region plus one leader region.
		hier := factory{"knemcoll-hier", mpi.BTLSM, func(w *mpi.World) mpi.Coll {
			return core.NewWithConfig(w, core.Config{Mode: core.ModeHierarchical, NoPipeline: true})
		}}
		w := runColl(t, hier, e, func(r *mpi.Rank) {
			b := r.Alloc(1 << 20)
			r.Bcast(b.Whole(), 0)
		})
		if w.Stats().Registrations != 2 {
			t.Errorf("registrations = %d, want 2 (root + leader)", w.Stats().Registrations)
		}
		// 3 locals + 1 leader + 3 remote leaves, one whole-buffer copy each.
		if w.Stats().Copies != int64(e.np-1) {
			t.Errorf("copies = %d, want %d", w.Stats().Copies, e.np-1)
		}
	})

	t.Run("gather-parallel-writes", func(t *testing.T) {
		w := runColl(t, f, e, func(r *mpi.Rank) {
			send := r.Alloc(256 << 10)
			var recv memsim.View
			if r.ID() == 0 {
				recv = r.Alloc(8 * 256 << 10).Whole()
			}
			r.Gather(send.Whole(), recv, 0)
		})
		// 1 registration, 7 peer writes + 1 root local copy.
		if w.Stats().Registrations != 1 {
			t.Errorf("registrations = %d, want 1", w.Stats().Registrations)
		}
		if w.Stats().Copies != int64(e.np) {
			t.Errorf("copies = %d, want %d", w.Stats().Copies, e.np)
		}
	})

	t.Run("small-messages-delegate", func(t *testing.T) {
		w := runColl(t, f, e, func(r *mpi.Rank) {
			b := r.Alloc(4 << 10) // below the 16 KiB threshold
			r.Bcast(b.Whole(), 0)
		})
		if w.Stats().Registrations != 0 {
			t.Errorf("small bcast used KNEM (%d registrations)", w.Stats().Registrations)
		}
	})
}
