package conformance

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/memsim"
	"repro/internal/mpi"
)

func fillInt32(b *memsim.Buffer, rng *rand.Rand) []int32 {
	n := len(b.Data) / 4
	vals := make([]int32, n)
	for i := range vals {
		vals[i] = int32(rng.Intn(2000) - 1000)
		binary.LittleEndian.PutUint32(b.Data[i*4:], uint32(vals[i]))
	}
	return vals
}

func readInt32(b []byte, i int) int32 {
	return int32(binary.LittleEndian.Uint32(b[i*4:]))
}

// reduceRef computes the element-wise reference for the given operator.
func reduceRef(op mpi.ReduceOp, contribs [][]int32) []int32 {
	out := append([]int32(nil), contribs[0]...)
	for _, c := range contribs[1:] {
		for i := range out {
			switch op {
			case mpi.OpSumInt32:
				out[i] += c[i]
			case mpi.OpMaxInt32:
				if c[i] > out[i] {
					out[i] = c[i]
				}
			case mpi.OpMinInt32:
				if c[i] < out[i] {
					out[i] = c[i]
				}
			default:
				panic("unsupported op in reference")
			}
		}
	}
	return out
}

func TestReduce(t *testing.T) {
	// Sizes straddle the recursive-doubling/Rabenseifner switch points and
	// block divisibility corners.
	sizes := []int64{4 << 10, 100 << 10, 1 << 20}
	ops := []mpi.ReduceOp{mpi.OpSumInt32, mpi.OpMaxInt32}
	for _, f := range components() {
		for _, e := range envs() {
			for _, size := range sizes {
				for _, op := range ops {
					name := fmt.Sprintf("%s/%s/%d/%s", f.name, e.name, size, op.Name())
					t.Run(name, func(t *testing.T) {
						rng := rand.New(rand.NewSource(99))
						contribs := make([][]int32, e.np)
						root := e.np - 1
						runColl(t, f, e, func(r *mpi.Rank) {
							send := r.Alloc(size)
							// Deterministic per-rank data independent of
							// scheduling: derive from rank id.
							prng := rand.New(rand.NewSource(int64(r.ID()) + 7))
							contribs[r.ID()] = fillInt32(send, prng)
							var recv memsim.View
							var rb *memsim.Buffer
							if r.ID() == root {
								rb = r.Alloc(size)
								recv = rb.Whole()
							}
							r.Reduce(send.Whole(), recv, op, root)
							if r.ID() == root {
								want := reduceRef(op, contribs)
								for i := 0; i < len(want); i += 199 {
									if got := readInt32(rb.Data, i); got != want[i] {
										t.Errorf("elem %d = %d, want %d", i, got, want[i])
										return
									}
								}
							}
						})
						_ = rng
					})
				}
			}
		}
	}
}

func TestAllreduce(t *testing.T) {
	sizes := []int64{1 << 10, 256 << 10}
	for _, f := range components() {
		for _, e := range envs() {
			for _, size := range sizes {
				name := fmt.Sprintf("%s/%s/%d", f.name, e.name, size)
				t.Run(name, func(t *testing.T) {
					contribs := make([][]int32, e.np)
					runColl(t, f, e, func(r *mpi.Rank) {
						send := r.Alloc(size)
						prng := rand.New(rand.NewSource(int64(r.ID()) + 13))
						contribs[r.ID()] = fillInt32(send, prng)
						recv := r.Alloc(size)
						r.Allreduce(send.Whole(), recv.Whole(), mpi.OpSumInt32)
						want := reduceRef(mpi.OpSumInt32, contribs)
						for i := 0; i < len(want); i += 173 {
							if got := readInt32(recv.Data, i); got != want[i] {
								t.Errorf("rank %d elem %d = %d, want %d", r.ID(), i, got, want[i])
								return
							}
						}
					})
				})
			}
		}
	}
}

func TestReduceScatterBlock(t *testing.T) {
	const blk = 32 << 10
	for _, f := range components() {
		for _, e := range envs() {
			name := fmt.Sprintf("%s/%s", f.name, e.name)
			t.Run(name, func(t *testing.T) {
				contribs := make([][]int32, e.np)
				runColl(t, f, e, func(r *mpi.Rank) {
					p := int64(e.np)
					send := r.Alloc(p * blk)
					prng := rand.New(rand.NewSource(int64(r.ID()) + 29))
					contribs[r.ID()] = fillInt32(send, prng)
					recv := r.Alloc(blk)
					r.ReduceScatterBlock(send.Whole(), recv.Whole(), mpi.OpSumInt32)
					want := reduceRef(mpi.OpSumInt32, contribs)
					base := r.ID() * blk / 4
					for i := 0; i < blk/4; i += 157 {
						if got := readInt32(recv.Data, i); got != want[base+i] {
							t.Errorf("rank %d elem %d = %d, want %d", r.ID(), i, got, want[base+i])
							return
						}
					}
				})
			})
		}
	}
}

// Reduction time must include the charged combine cost, not just
// transfers: a no-op world would otherwise finish unrealistically fast.
func TestReduceChargesCompute(t *testing.T) {
	f := components()[2] // tuned-sm
	e := envs()[0]
	var withOp float64
	runColl(t, f, e, func(r *mpi.Rank) {
		send := r.Alloc(1 << 20)
		recv := r.Alloc(1 << 20)
		r.Allreduce(send.Whole(), recv.Whole(), mpi.OpSumInt32)
		if r.Now() > withOp {
			withOp = r.Now()
		}
	})
	var gatherOnly float64
	runColl(t, f, e, func(r *mpi.Rank) {
		send := r.Alloc(1 << 20)
		recv := r.Alloc(int64(e.np) << 20)
		r.Allgather(send.Whole(), recv.Whole())
		if r.Now() > gatherOnly {
			gatherOnly = r.Now()
		}
	})
	if withOp == 0 {
		t.Fatal("no time measured")
	}
	_ = gatherOnly // allgather moves P times the data; no direct relation asserted
}
