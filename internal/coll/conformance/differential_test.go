// Differential conformance: seeded randomized scenarios (operation, block
// size, root, uneven counts, machine) executed by every component and
// compared bit-for-bit against the basic reference — with and without
// fault plans. A component may degrade however it likes under faults; the
// bytes it delivers may not differ by a single bit.
package conformance

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/memsim"
	"repro/internal/mpi"
)

type scenario struct {
	op     string
	e      env
	blk    int64
	root   int
	counts []int64 // allgatherv only
	displs []int64
	total  int64
}

func (s scenario) String() string {
	return fmt.Sprintf("%s/%s/blk=%d/root=%d", s.op, s.e.name, s.blk, s.root)
}

var diffOps = []string{"bcast", "scatter", "gather", "allgather", "alltoall", "allgatherv"}

func genScenario(rng *rand.Rand) scenario {
	es := envs()
	s := scenario{
		op:  diffOps[rng.Intn(len(diffOps))],
		e:   es[rng.Intn(len(es))],
		blk: 1<<10 + rng.Int63n(80<<10),
	}
	s.root = rng.Intn(s.e.np)
	if s.op == "allgatherv" {
		s.counts = make([]int64, s.e.np)
		s.displs = make([]int64, s.e.np)
		for i := range s.counts {
			s.counts[i] = rng.Int63n(40<<10) + 1
			s.displs[i] = s.total
			s.total += s.counts[i]
		}
	}
	return s
}

// execute runs the scenario on one component under an optional fault plan
// and returns each rank's delivered bytes (nil for ranks that receive
// nothing, e.g. non-roots of a Gather).
func (s scenario) execute(t *testing.T, f factory, plan *fault.Plan) ([][]byte, *mpi.World) {
	t.Helper()
	out := make([][]byte, s.e.np)
	_, w, err := mpi.Run(mpi.Options{
		Machine: s.e.mach, NP: s.e.np, BTL: f.btl, Coll: f.make,
		WithData: true, Fault: plan,
	}, func(r *mpi.Rank) {
		p := int64(s.e.np)
		me := r.ID()
		deposit := func(b *memsim.Buffer) {
			out[me] = append([]byte(nil), b.Data...)
		}
		switch s.op {
		case "bcast":
			b := r.Alloc(s.blk)
			if me == s.root {
				fillPat(b, s.root)
			}
			r.Bcast(b.Whole(), s.root)
			deposit(b)
		case "scatter":
			var send memsim.View
			if me == s.root {
				sb := r.Alloc(p * s.blk)
				for i := range sb.Data {
					sb.Data[i] = pat(int(int64(i)/s.blk), int64(i)%s.blk)
				}
				send = sb.Whole()
			}
			recv := r.Alloc(s.blk)
			r.Scatter(send, recv.Whole(), s.root)
			deposit(recv)
		case "gather":
			send := r.Alloc(s.blk)
			fillPat(send, me)
			if me == s.root {
				rb := r.Alloc(p * s.blk)
				r.Gather(send.Whole(), rb.Whole(), s.root)
				deposit(rb)
			} else {
				r.Gather(send.Whole(), memsim.View{}, s.root)
			}
		case "allgather":
			send := r.Alloc(s.blk)
			fillPat(send, me)
			recv := r.Alloc(p * s.blk)
			r.Allgather(send.Whole(), recv.Whole())
			deposit(recv)
		case "alltoall":
			send := r.Alloc(p * s.blk)
			for j := 0; j < s.e.np; j++ {
				for i := int64(0); i < s.blk; i++ {
					send.Data[int64(j)*s.blk+i] = pat(me*100+j, i)
				}
			}
			recv := r.Alloc(p * s.blk)
			r.Alltoall(send.Whole(), recv.Whole())
			deposit(recv)
		case "allgatherv":
			send := r.Alloc(s.counts[me])
			fillPat(send, me)
			recv := r.Alloc(s.total)
			r.Allgatherv(send.Whole(), recv.Whole(), s.counts, s.displs)
			deposit(recv)
		}
	})
	if err != nil {
		t.Fatalf("%s on %s: %v", s, f.name, err)
	}
	return out, w
}

// diffPlans are the fault schedules every component must survive while
// staying bit-for-bit equal to the fault-free reference.
func diffPlans() []struct {
	name string
	plan *fault.Plan
} {
	return []struct {
		name string
		plan *fault.Plan
	}{
		{"no-faults", nil},
		{"create-fail", &fault.Plan{CreateFailEvery: 2}},
		{"invalidate-transient", &fault.Plan{
			Seed: 99, InvalidateEvery: 3, CopyTransient: 0.25, MaxRetries: 3,
		}},
	}
}

func TestDifferentialConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(20260806))
	for trial := 0; trial < 5; trial++ {
		sc := genScenario(rng)
		ref, _ := sc.execute(t, factory{"basic-sm", mpi.BTLSM, func(w *mpi.World) mpi.Coll {
			return components()[0].make(w)
		}}, nil)
		t.Run(sc.String(), func(t *testing.T) {
			for _, f := range components() {
				for _, pl := range diffPlans() {
					f, pl := f, pl
					t.Run(f.name+"/"+pl.name, func(t *testing.T) {
						got, w := sc.execute(t, f, pl.plan)
						for rank := range ref {
							if !bytes.Equal(got[rank], ref[rank]) {
								t.Fatalf("rank %d: output differs from basic reference", rank)
							}
						}
						if w.Knem().ActiveRegions() != 0 {
							t.Fatalf("%d KNEM regions leaked", w.Knem().ActiveRegions())
						}
					})
				}
			}
		})
	}
}

// Property: under ANY randomized fault schedule, KNEM-Coll finishes every
// operation with data identical to the fault-free reference, leaks no
// regions, and replays deterministically under the same seed.
func TestFaultScheduleProperty(t *testing.T) {
	variants := []factory{
		{"knemcoll", mpi.BTLSM, core.New},
		{"knemcoll-linear", mpi.BTLSM, func(w *mpi.World) mpi.Coll {
			return core.NewWithConfig(w, core.Config{Mode: core.ModeLinear})
		}},
		{"knemcoll-hier", mpi.BTLSM, func(w *mpi.World) mpi.Coll {
			return core.NewWithConfig(w, core.Config{Mode: core.ModeHierarchical})
		}},
		{"knemcoll-ml", mpi.BTLSM, func(w *mpi.World) mpi.Coll {
			return core.NewWithConfig(w, core.Config{Mode: core.ModeMultiLevel})
		}},
		{"knemcoll-ring", mpi.BTLSM, func(w *mpi.World) mpi.Coll {
			return core.NewWithConfig(w, core.Config{RingAllgather: true})
		}},
	}
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 8; trial++ {
		sc := genScenario(rng)
		plan := &fault.Plan{
			Seed:            rng.Int63(),
			CreateFailEvery: rng.Intn(4),
			InvalidateEvery: rng.Intn(5),
			CreateTransient: float64(rng.Intn(3)) * 0.1,
			CopyTransient:   float64(rng.Intn(3)) * 0.1,
			MaxRetries:      1 + rng.Intn(4),
		}
		if rng.Intn(3) == 0 {
			plan.PinnedPageBudget = 32 + rng.Int63n(512)
		}
		f := variants[trial%len(variants)]
		t.Run(fmt.Sprintf("%s/%s", f.name, sc), func(t *testing.T) {
			ref, _ := sc.execute(t, factory{"ref", mpi.BTLSM, components()[0].make}, nil)
			got1, w1 := sc.execute(t, f, plan)
			for rank := range ref {
				if !bytes.Equal(got1[rank], ref[rank]) {
					t.Fatalf("rank %d: faulted run differs from fault-free reference", rank)
				}
			}
			if w1.Knem().ActiveRegions() != 0 {
				t.Fatalf("%d regions leaked", w1.Knem().ActiveRegions())
			}
			got2, w2 := sc.execute(t, f, plan)
			for rank := range got1 {
				if !bytes.Equal(got1[rank], got2[rank]) {
					t.Fatalf("rank %d: same seed, different bytes", rank)
				}
			}
			if w1.Stats().String() != w2.Stats().String() {
				t.Fatalf("same seed, different stats:\n%s\nvs\n%s", w1.Stats(), w2.Stats())
			}
		})
	}
}
