// Package coll provides building blocks shared by the collective
// components: block arithmetic for regular layouts, virtual-rank tree
// shapes (binomial, chain, split-binary), and a dissemination barrier.
// The components themselves live in subpackages (basic, tuned, mpich2,
// smcoll) and in internal/core (the paper's KNEM component).
package coll

import (
	"fmt"

	"repro/internal/memsim"
	"repro/internal/mpi"
)

// Block returns block i of a buffer divided into p equal blocks.
func Block(v memsim.View, i, p int) memsim.View {
	if v.Len%int64(p) != 0 {
		panic(fmt.Sprintf("coll: buffer of %d bytes not divisible into %d blocks", v.Len, p))
	}
	blk := v.Len / int64(p)
	return v.SubView(int64(i)*blk, blk)
}

// VBlock returns the block [displs[i], displs[i]+counts[i]) of a vector
// layout.
func VBlock(v memsim.View, counts, displs []int64, i int) memsim.View {
	return v.SubView(displs[i], counts[i])
}

// Uniform builds counts/displs arrays for p equal blocks of size blk.
func Uniform(p int, blk int64) (counts, displs []int64) {
	counts = make([]int64, p)
	displs = make([]int64, p)
	for i := range counts {
		counts[i] = blk
		displs[i] = int64(i) * blk
	}
	return
}

// Total returns the extent covered by a counts/displs layout (max of
// displ+count).
func Total(counts, displs []int64) int64 {
	var max int64
	for i := range counts {
		if end := displs[i] + counts[i]; end > max {
			max = end
		}
	}
	return max
}

// VRank maps a rank into the virtual numbering where the root is 0.
func VRank(rank, root, p int) int { return (rank - root + p) % p }

// RRank maps a virtual rank back to a real rank.
func RRank(vrank, root, p int) int { return (vrank + root) % p }

// BinomialChildren returns the children of rank in the binomial tree
// rooted at root, in the order a broadcast sends to them (largest subtree
// first), along with the rank's parent (-1 for the root).
func BinomialChildren(rank, root, p int) (parent int, children []int) {
	v := VRank(rank, root, p)
	parent = -1
	// The parent clears the lowest set bit of v.
	if v != 0 {
		lsb := v & -v
		parent = RRank(v^lsb, root, p)
	}
	// Children are v + 2^k for 2^k below the lowest set bit (for the
	// root, below the smallest power of two covering p), while in range.
	low := 1
	for low < p {
		low <<= 1
	}
	if v != 0 {
		low = v & -v
	}
	for m := low >> 1; m > 0; m >>= 1 {
		c := v + m
		if c < p {
			children = append(children, RRank(c, root, p))
		}
	}
	return
}

// ChainNext returns the successor and predecessor of rank in the chain
// (pipeline) rooted at root: root -> root+1 -> ... wrapping around.
func ChainNext(rank, root, p int) (prev, next int) {
	v := VRank(rank, root, p)
	prev, next = -1, -1
	if v > 0 {
		prev = RRank(v-1, root, p)
	}
	if v < p-1 {
		next = RRank(v+1, root, p)
	}
	return
}

// SplitBinaryTree describes Open MPI's split-binary broadcast shape: a
// balanced binary tree over virtual ranks; the message is halved, each
// half pipelined down one subtree, and the halves exchanged between
// opposite leaves at the end. SplitBinaryParent returns parent and
// children in the balanced binary tree rooted at root.
func SplitBinaryParent(rank, root, p int) (parent int, children []int) {
	v := VRank(rank, root, p)
	parent = -1
	if v != 0 {
		parent = RRank((v-1)/2, root, p)
	}
	for _, c := range []int{2*v + 1, 2*v + 2} {
		if c < p {
			children = append(children, RRank(c, root, p))
		}
	}
	return
}

// Dissemination runs a dissemination barrier over the out-of-band channel:
// ceil(log2 P) rounds of token exchanges.
func Dissemination(r mpi.Ranker, tag int) {
	p := r.Size()
	if p == 1 {
		return
	}
	me := r.ID()
	for k := 1; k < p; k <<= 1 {
		r.SendOOB((me+k)%p, tag, k)
		for {
			v, _ := r.RecvOOB((me-k+p)%p, tag)
			if v.(int) == k {
				break
			}
			panic("coll: barrier round mismatch")
		}
	}
}

// Segments iterates [0, total) in chunks of seg, calling fn(off, n).
func Segments(total, seg int64, fn func(off, n int64)) {
	if seg <= 0 || seg > total {
		seg = total
	}
	for off := int64(0); off < total; off += seg {
		n := seg
		if rem := total - off; rem < n {
			n = rem
		}
		fn(off, n)
	}
}

// NumSegments returns how many chunks Segments would produce.
func NumSegments(total, seg int64) int {
	if total == 0 {
		return 0
	}
	if seg <= 0 || seg > total {
		return 1
	}
	return int((total + seg - 1) / seg)
}
