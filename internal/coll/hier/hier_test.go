package hier_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/coll/hier"
	"repro/internal/fault"
	"repro/internal/memsim"
	"repro/internal/mpi"
	"repro/internal/topology"
)

// twoNodeCluster compiles a 2-node cluster of 4-core machines (np = 8)
// joined by one fabric link.
func twoNodeCluster(t *testing.T) *topology.Cluster {
	t.Helper()
	box := topology.Synthetic(topology.SyntheticSpec{
		Boards: 1, SocketsPerBoard: 2, CoresPerSocket: 2,
		BusBW: 16e9, LinkBW: 11e9,
		CacheSize: 8 << 20, CachePortBW: 30e9,
		Spec: topology.Dancer().Spec,
	})
	cl, err := topology.CompileCluster(topology.ClusterConfig{
		Name: "pair",
		Nodes: []topology.NodeSpec{
			{Name: "n0", Machine: "box"},
			{Name: "n1", Machine: "box"},
		},
		Links: []topology.LinkSpec{{A: "n0", B: "n1", Name: "eth0", BW: 1.25e9, Lat: 50e-6}},
	}, func(string) (*topology.Machine, error) { return box, nil })
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func pat(rank int, i int64) byte { return byte(int64(rank*131) + i*7 + 3) }

func fillPat(b *memsim.Buffer, rank int) {
	for i := range b.Data {
		b.Data[i] = pat(rank, int64(i))
	}
}

// runHier runs body over the cluster with the given fault plan and returns
// the world plus the built component (captured from the factory).
func runHier(t *testing.T, cl *topology.Cluster, plan *fault.Plan, body func(r *mpi.Rank)) (*mpi.World, *hier.Component) {
	t.Helper()
	var comp *hier.Component
	factory := hier.New(cl)
	_, w, err := mpi.Run(mpi.Options{
		Machine:  cl.Global,
		NP:       cl.Global.NCores(),
		BTL:      mpi.BTLSM,
		WithData: true,
		Fault:    plan,
		Coll: func(w *mpi.World) mpi.Coll {
			c := factory(w).(*hier.Component)
			comp = c
			return c
		},
	}, body)
	if err != nil {
		t.Fatal(err)
	}
	return w, comp
}

// checkBcast runs a 96 KiB broadcast (large enough for the KNEM region
// path) under the plan and asserts every rank holds the root's bytes.
func checkBcast(t *testing.T, cl *topology.Cluster, plan *fault.Plan, root int) (*mpi.World, *hier.Component) {
	t.Helper()
	const size = 96 << 10
	w, comp := runHier(t, cl, plan, func(r *mpi.Rank) {
		b := r.Alloc(size)
		if r.ID() == root {
			fillPat(b, root)
		}
		r.Bcast(b.Whole(), root)
		for i := int64(0); i < size; i += 127 {
			if b.Data[i] != pat(root, i) {
				t.Errorf("rank %d: byte %d = %d, want %d", r.ID(), i, b.Data[i], pat(root, i))
				return
			}
		}
	})
	return w, comp
}

func TestLeaderElection(t *testing.T) {
	cl := twoNodeCluster(t)
	cases := []struct {
		name    string
		plan    *fault.Plan
		leaders []int
	}{
		{"default", nil, []int{0, 4}},
		{"node0-leader-down", &fault.Plan{LeaderDown: map[int]bool{0: true}}, []int{1, 4}},
		{"both-leaders-down", &fault.Plan{LeaderDown: map[int]bool{0: true, 4: true}}, []int{1, 5}},
		// Every member of node 0 is down: the first member serves anyway.
		{"whole-node-down", &fault.Plan{LeaderDown: map[int]bool{0: true, 1: true, 2: true, 3: true}}, []int{0, 4}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, comp := checkBcast(t, cl, tc.plan, 2) // non-leader root
			if got := comp.Leaders(); !reflect.DeepEqual(got, tc.leaders) {
				t.Fatalf("Leaders() = %v, want %v", got, tc.leaders)
			}
		})
	}
}

// TestLeaderDownMidSchedule kills each possible designated leader in turn —
// the property that payloads survive any single LeaderDown placement across
// every op in a mixed schedule.
func TestLeaderDownMidSchedule(t *testing.T) {
	cl := twoNodeCluster(t)
	const size = 64 << 10
	for down := 0; down < 8; down++ {
		t.Run(fmt.Sprintf("down%d", down), func(t *testing.T) {
			plan := &fault.Plan{LeaderDown: map[int]bool{down: true}}
			w, _ := runHier(t, cl, plan, func(r *mpi.Rank) {
				np := r.Size()
				b := r.Alloc(size)
				if r.ID() == 3 {
					fillPat(b, 3)
				}
				r.Bcast(b.Whole(), 3)
				r.Barrier()
				sum := r.Alloc(size)
				r.Allreduce(b.Whole(), sum.Whole(), mpi.OpSumInt32)
				blk := size / int64(np)
				all := r.Alloc(size)
				r.Allgather(b.View(0, blk), all.Whole())
				for i := int64(0); i < size; i += 61 {
					if b.Data[i] != pat(3, i) {
						t.Errorf("rank %d: bcast byte %d corrupt", r.ID(), i)
						return
					}
				}
				// Allgather of identical blocks: every block must equal the
				// broadcast prefix.
				for k := 0; k < np; k++ {
					base := int64(k) * blk
					for i := int64(0); i < blk; i += 61 {
						if all.Data[base+i] != pat(3, i) {
							t.Errorf("rank %d: allgather block %d byte %d corrupt", r.ID(), k, i)
							return
						}
					}
				}
			})
			if w.Stats().FaultsInjected != 0 {
				t.Fatalf("LeaderDown alone must inject no runtime faults, got %d", w.Stats().FaultsInjected)
			}
		})
	}
}

// TestDegradeFallback starves every region registration: the leaders must
// announce whole-phase fallbacks and deliver over the generic algorithms.
func TestDegradeFallback(t *testing.T) {
	cl := twoNodeCluster(t)
	w, _ := checkBcast(t, cl, &fault.Plan{CreateFailEvery: 1}, 0)
	if w.Stats().Fallbacks == 0 {
		t.Fatal("expected fallbacks under CreateFailEvery=1")
	}
	if w.Stats().Registrations != 0 {
		t.Fatalf("no registration may succeed, got %d", w.Stats().Registrations)
	}
}

// TestDegradeResend makes every copy fail even after retries: each peer
// must NACK and receive a point-to-point resend from its leader.
func TestDegradeResend(t *testing.T) {
	cl := twoNodeCluster(t)
	w, _ := checkBcast(t, cl, &fault.Plan{CopyTransient: 1.0, MaxRetries: 2}, 0)
	if w.Stats().Resends == 0 {
		t.Fatal("expected resends under CopyTransient=1")
	}
	if w.Stats().Retries == 0 {
		t.Fatal("expected retries before degradation")
	}
}

// TestDegradeInvalidate invalidates cookies mid-collective: the affected
// peers resend, the leaders tolerate destroying a dead region.
func TestDegradeInvalidate(t *testing.T) {
	cl := twoNodeCluster(t)
	w, _ := checkBcast(t, cl, &fault.Plan{InvalidateEvery: 2}, 0)
	if w.Stats().Resends == 0 {
		t.Fatal("expected resends under InvalidateEvery=2")
	}
	if n := w.Knem().ActiveRegions(); n != 0 {
		t.Fatalf("%d KNEM regions leaked", n)
	}
}

// TestDegradedLeaderSchedule combines a downed leader with transient create
// and copy faults and a straggling member across several collectives — the
// headline graceful-degradation property.
func TestDegradedLeaderSchedule(t *testing.T) {
	cl := twoNodeCluster(t)
	plan := &fault.Plan{
		Seed:            7,
		LeaderDown:      map[int]bool{0: true},
		CreateTransient: 0.3,
		CopyTransient:   0.3,
		Straggler:       map[int]float64{5: 20e-6},
		MaxRetries:      4,
	}
	const size = 96 << 10
	root := 6
	w, comp := runHier(t, cl, plan, func(r *mpi.Rank) {
		b := r.Alloc(size)
		if r.ID() == root {
			fillPat(b, root)
		}
		r.Bcast(b.Whole(), root)
		r.Barrier()
		out := r.Alloc(size)
		r.Reduce(b.Whole(), out.Whole(), mpi.OpMaxInt32, 1)
		for i := int64(0); i < size; i += 127 {
			if b.Data[i] != pat(root, i) {
				t.Errorf("rank %d: byte %d corrupt after degraded schedule", r.ID(), i)
				return
			}
		}
		// Identical inputs: the max-reduction must reproduce them exactly.
		if r.ID() == 1 {
			for i := int64(0); i < size; i += 127 {
				if out.Data[i] != pat(root, i) {
					t.Errorf("reduce byte %d corrupt", i)
					return
				}
			}
		}
	})
	if got := comp.Leaders(); !reflect.DeepEqual(got, []int{1, 4}) {
		t.Fatalf("Leaders() = %v, want [1 4]", got)
	}
	if w.Stats().FaultsInjected == 0 {
		t.Fatal("plan injected nothing — test is vacuous")
	}
	if n := w.Knem().ActiveRegions(); n != 0 {
		t.Fatalf("%d KNEM regions leaked", n)
	}
}

// TestDeterministicUnderFaults pins byte-determinism: two runs of the same
// degraded schedule finish at the identical simulated time with identical
// fault counters.
func TestDeterministicUnderFaults(t *testing.T) {
	cl := twoNodeCluster(t)
	run := func() (float64, int64) {
		plan := &fault.Plan{Seed: 11, CreateTransient: 0.5, CopyTransient: 0.5, MaxRetries: 3}
		var comp *hier.Component
		end, w, err := mpi.Run(mpi.Options{
			Machine:  cl.Global,
			NP:       cl.Global.NCores(),
			BTL:      mpi.BTLSM,
			WithData: true,
			Fault:    plan,
			Coll: func(w *mpi.World) mpi.Coll {
				c := hier.New(cl)(w).(*hier.Component)
				comp = c
				return c
			},
		}, func(r *mpi.Rank) {
			b := r.Alloc(96 << 10)
			if r.ID() == 0 {
				fillPat(b, 0)
			}
			r.Bcast(b.Whole(), 0)
		})
		if err != nil {
			t.Fatal(err)
		}
		_ = comp
		return end, w.Stats().FaultsInjected
	}
	t1, f1 := run()
	t2, f2 := run()
	if t1 != t2 || f1 != f2 {
		t.Fatalf("degraded runs diverged: (%v, %d) vs (%v, %d)", t1, f1, t2, f2)
	}
}
