// Package hier is the cluster-level hierarchical collective family: the
// paper's kernel-assisted intra-node protocols composed under a node-leader
// layer, the design of the hybrid MPI+MPI and cluster-model literature.
// Each collective decomposes into three phases — intra-node movement into a
// per-node leader, an inter-node exchange among the leaders over the
// modeled fabric (tree or ring/pipeline shapes), and intra-node fan-out —
// with the intra-node phases reusing the existing machinery unchanged:
// generic algorithms over per-node communicators for small payloads, the
// KNEM linear region protocol (register at the leader, every local peer
// reads or writes through one cookie) for large ones.
//
// The component is built for a compiled topology.Cluster and groups world
// ranks into nodes by the core each rank is pinned to. One leader per node
// is elected at construction: the first member the fault plan's LeaderDown
// set permits (a downed designated leader is routed around by re-election,
// and if every member of a node is marked down, the first member serves
// anyway so the job can proceed). Under a fault plan the KNEM phases
// degrade exactly like internal/core's protocols: failed registrations
// announce a fallback to the generic algorithm, failed copies are retried
// with bounded backoff and then NACKed for a point-to-point resend, and
// every degradation is counted in trace.Stats.
//
// Irregular operations (alltoall and the vector variants) and the
// non-contiguous-mapping cases of gather/scatter/allgather delegate to a
// flat fallback component over the world communicator.
package hier

import (
	"fmt"

	"repro/internal/coll"
	"repro/internal/coll/tuned"
	"repro/internal/fault"
	"repro/internal/knem"
	"repro/internal/memsim"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Config parameterizes the hierarchical family.
type Config struct {
	// Inter selects the inter-node exchange shape among the leaders:
	// "tree" (binomial / pipelined binary, the default) or "ring"
	// (pipelined chain).
	Inter string
	// KnemMin is the smallest intra-node payload moved through a KNEM
	// region instead of the generic algorithms (default 16 KiB).
	KnemMin int64
	// InterSeg is the pipeline segment size of the inter-node phase
	// (default 128 KiB).
	InterSeg int64
	// Fallback builds the flat component delegated to for irregular
	// operations (default tuned.New).
	Fallback func(w *mpi.World) mpi.Coll
}

func (c *Config) fill() {
	if c.Inter == "" {
		c.Inter = "tree"
	}
	if c.Inter != "tree" && c.Inter != "ring" {
		panic(fmt.Sprintf("hier: unknown inter-node shape %q", c.Inter))
	}
	if c.KnemMin == 0 {
		c.KnemMin = 16 << 10
	}
	if c.InterSeg == 0 {
		c.InterSeg = 128 << 10
	}
	if c.Fallback == nil {
		c.Fallback = tuned.New
	}
}

// New builds the component factory for a compiled cluster with default
// configuration.
func New(cl *topology.Cluster) func(w *mpi.World) mpi.Coll {
	return NewWithConfig(cl, Config{})
}

// NewWithConfig builds the component factory with explicit configuration.
func NewWithConfig(cl *topology.Cluster, cfg Config) func(w *mpi.World) mpi.Coll {
	cfg.fill()
	return func(w *mpi.World) mpi.Coll { return build(w, cl, cfg) }
}

// Component implements mpi.Coll hierarchically over a cluster.
type Component struct {
	w   *mpi.World
	cl  *topology.Cluster
	cfg Config
	fb  mpi.Coll

	// nodes[d] lists the world ranks on populated node d (dense node
	// numbering, cluster-node order), ascending.
	nodes [][]int
	// nodeOf maps a world rank to its dense node index.
	nodeOf []int
	// leader[d] is node d's leader world rank; leadPos[d] its position in
	// nodes[d] (= its rank in the node communicator).
	leader  []int
	leadPos []int
	// first[d] is the world rank starting node d's block when the mapping
	// is node-contiguous.
	first  []int
	contig bool

	// nodeRank[r] is world rank r's handle on its node communicator;
	// leadRank[r] its handle on the leader communicator (nil for
	// non-leaders). The handles are persistent so comm-scoped collective
	// tags keep advancing across operations.
	nodeRank []*mpi.CommRank
	leadRank []*mpi.CommRank
}

// build assembles the component from the engine's arena: the node/member
// tables are CSR-style — one dense int backing carved into per-node
// sub-slices in rank order — and the handle tables are dense
// rank-indexed slices, so a warmed shard rebuilds the hierarchy without
// heap allocations and node walks scan contiguous memory.
func build(w *mpi.World, cl *topology.Cluster, cfg Config) *Component {
	arena := w.Engine().Arena()
	c := sim.SlabFor[Component](arena).Get()
	c.w, c.cl, c.cfg = w, cl, cfg
	c.fb = cfg.Fallback(w)
	np := w.Size()
	in := w.Knem().Injector()

	ints := sim.SlicesFor[int](arena)
	nn := cl.NNodes()
	counts := ints.Make(nn)
	nodeIdx := ints.Stale(np)
	for r := 0; r < np; r++ {
		n := cl.NodeOfCore(w.Rank(r).Core().ID)
		nodeIdx[r] = n
		counts[n]++
	}
	members := sim.SlicesFor[[]int](arena).Make(nn)
	backing := ints.Stale(np)
	off := 0
	for n := 0; n < nn; n++ {
		members[n] = backing[off : off : off+counts[n]]
		off += counts[n]
	}
	for r := 0; r < np; r++ {
		members[nodeIdx[r]] = append(members[nodeIdx[r]], r)
	}

	populated := 0
	for _, ms := range members {
		if len(ms) > 0 {
			populated++
		}
	}
	c.nodes = sim.SlicesFor[[]int](arena).Make(populated)[:0]
	c.leader = ints.Make(populated)[:0]
	c.leadPos = ints.Make(populated)[:0]
	c.nodeOf = ints.Stale(np)
	for _, ms := range members {
		if len(ms) == 0 {
			continue
		}
		d := len(c.nodes)
		c.nodes = append(c.nodes, ms)
		lead := ms[0]
		if in != nil {
			for _, m := range ms {
				if !in.LeaderDown(m) {
					lead = m
					break
				}
			}
		}
		pos := 0
		for i, m := range ms {
			c.nodeOf[m] = d
			if m == lead {
				pos = i
			}
		}
		c.leader = append(c.leader, lead)
		c.leadPos = append(c.leadPos, pos)
	}

	// A node-contiguous mapping (node d's ranks are exactly one ascending
	// block, blocks in node order) lets gather/scatter/allgather address
	// node extents directly in the global buffer.
	c.contig = true
	c.first = ints.Stale(len(c.nodes))
	next := 0
	for d, ms := range c.nodes {
		c.first[d] = next
		for _, m := range ms {
			if m != next {
				c.contig = false
			}
			next++
		}
	}

	c.nodeRank = sim.SlicesFor[*mpi.CommRank](arena).Make(np)
	c.leadRank = sim.SlicesFor[*mpi.CommRank](arena).Make(np)
	leadComm := w.NewComm(c.leader)
	for _, ms := range c.nodes {
		nc := w.NewComm(ms)
		for _, m := range ms {
			c.nodeRank[m] = nc.Rank(w.Rank(m))
		}
	}
	for _, l := range c.leader {
		c.leadRank[l] = leadComm.Rank(w.Rank(l))
	}
	return c
}

// Leaders returns the elected leader world rank of each populated node, in
// node order.
func (c *Component) Leaders() []int { return append([]int(nil), c.leader...) }

// Name implements mpi.Coll.
func (c *Component) Name() string { return "hier-" + c.cfg.Inter }

// injector returns the world's fault injector, or nil.
func (c *Component) injector() *fault.Injector { return c.w.Knem().Injector() }

// enter applies the per-entry fault bookkeeping (straggler delay).
func (c *Component) enter(r *mpi.Rank) {
	if in := c.injector(); in != nil {
		if d := in.Straggle(r.ID()); d > 0 {
			r.Sleep(d)
		}
	}
}

// --- fault helpers (the degradation idiom of internal/core) --------------

// hierCookie announces a leader's KNEM region to its node peers; the zero
// value announces a whole-phase fallback to the generic algorithm.
type hierCookie struct {
	cookie knem.Cookie
	n      int64
}

// hierResp is a peer's single response: ok, or a NACK asking for a resend.
type hierResp struct {
	ok bool
}

// tryCreate registers a region, retrying transient failures under the
// plan's budget; without an injector a failure is a bug.
func (c *Component) tryCreate(r *mpi.Rank, v memsim.View, dir knem.Direction) (knem.Cookie, bool) {
	in := c.injector()
	for attempt := 0; ; attempt++ {
		ck, err := r.Knem().CreateView(r.Proc(), r.ID(), v, dir)
		switch {
		case err == nil:
			return ck, true
		case in == nil:
			panic(fmt.Sprintf("hier: rank %d knem create: %v", r.ID(), err))
		case err == knem.ErrAgain && attempt < in.MaxRetries():
			r.Stats().Retries++
			r.Sleep(in.Backoff(attempt))
		default:
			return 0, false
		}
	}
}

// tryCopy copies through a region, retrying transient failures.
func (c *Component) tryCopy(r *mpi.Rank, local memsim.View, ck knem.Cookie, off int64, dir knem.Direction) error {
	in := c.injector()
	for attempt := 0; ; attempt++ {
		err := r.Knem().CopyView(r.Proc(), r.Core(), local, ck, off, dir)
		switch {
		case err == nil:
			return nil
		case in == nil:
			panic(fmt.Sprintf("hier: rank %d knem copy: %v", r.ID(), err))
		case err == knem.ErrAgain && attempt < in.MaxRetries():
			r.Stats().Retries++
			r.Sleep(in.Backoff(attempt))
		default:
			return err
		}
	}
}

// destroyQuiet deregisters, tolerating an injected invalidation.
func (c *Component) destroyQuiet(r *mpi.Rank, ck knem.Cookie) {
	if ck == 0 {
		return
	}
	if err := r.Knem().Destroy(r.Proc(), ck); err != nil && err != knem.ErrInvalidCookie {
		panic(fmt.Sprintf("hier: rank %d knem destroy: %v", r.ID(), err))
	}
}

func (c *Component) noteFallback(r *mpi.Rank, op string) {
	r.Stats().Fallbacks++
	if in := c.injector(); in != nil {
		in.Event("fallback", fmt.Sprintf("rank %d %s", r.ID(), op))
	}
}

func (c *Component) noteResend(r *mpi.Rank, op string) {
	r.Stats().Resends++
	if in := c.injector(); in != nil {
		in.Event("resend", fmt.Sprintf("rank %d %s", r.ID(), op))
	}
}

// --- intra-node building blocks ------------------------------------------

// intraBcast fans v out from the node leader to the node's members:
// generic binomial below KnemMin, otherwise the KNEM linear region
// protocol with core-style degradation. World tags tag+1..tag+3 carry the
// cookie announcement, responses, and resends.
func (c *Component) intraBcast(r *mpi.Rank, v memsim.View, tag int) {
	me := r.ID()
	d := c.nodeOf[me]
	ms := c.nodes[d]
	if len(ms) == 1 {
		return
	}
	nr := c.nodeRank[me]
	lead := c.leader[d]
	if v.Len < c.cfg.KnemMin {
		coll.BcastBinomial(nr, v, c.leadPos[d], nr.CollTag())
		return
	}
	if me == lead {
		ck, ok := c.tryCreate(r, v, knem.DirRead)
		if !ok {
			c.noteFallback(r, "hier-bcast-intra")
			for _, m := range ms {
				if m != me {
					r.SendOOB(m, tag+1, hierCookie{})
				}
			}
			coll.BcastBinomial(nr, v, c.leadPos[d], nr.CollTag())
			return
		}
		for _, m := range ms {
			if m != me {
				r.SendOOB(m, tag+1, hierCookie{cookie: ck, n: v.Len})
			}
		}
		c.collectAndResend(r, v, tag+2, tag+3, len(ms)-1, "hier-bcast-intra")
		c.destroyQuiet(r, ck)
		return
	}
	msg, _ := r.RecvOOB(lead, tag+1)
	cm := msg.(hierCookie)
	if cm.cookie == 0 && cm.n == 0 {
		coll.BcastBinomial(nr, v, c.leadPos[d], nr.CollTag())
		return
	}
	if err := c.tryCopy(r, v, cm.cookie, 0, knem.DirRead); err != nil {
		r.SendOOB(lead, tag+2, hierResp{ok: false})
		r.Recv(lead, tag+3, v)
		return
	}
	r.SendOOB(lead, tag+2, hierResp{ok: true})
}

// collectAndResend gathers n peer responses and serves every NACK with a
// point-to-point resend of v.
func (c *Component) collectAndResend(r *mpi.Rank, v memsim.View, respTag, dataTag, n int, op string) {
	var nacks []int
	for i := 0; i < n; i++ {
		m, from := r.RecvOOB(mpi.AnySource, respTag)
		if !m.(hierResp).ok {
			nacks = append(nacks, from)
		}
	}
	for _, from := range nacks {
		c.noteResend(r, op)
		r.Send(from, dataTag, v)
	}
}

// interBcast moves v among the leaders, rooted at dense node rootNode.
func (c *Component) interBcast(lr *mpi.CommRank, v memsim.View, rootNode int) {
	if lr.Size() == 1 {
		return
	}
	tag := lr.CollTag()
	if c.cfg.Inter == "ring" {
		coll.BcastChainPipelined(lr, v, rootNode, tag, c.cfg.InterSeg)
		return
	}
	if v.Len <= 64<<10 {
		coll.BcastBinomial(lr, v, rootNode, tag)
		return
	}
	coll.BcastBinaryPipelined(lr, v, rootNode, tag, c.cfg.InterSeg)
}

// --- collectives ---------------------------------------------------------

// Barrier funnels each node through its leader: members report in via OOB
// tokens, the leaders run a dissemination barrier over the fabric, and the
// release tokens fan back out.
func (c *Component) Barrier(r *mpi.Rank) {
	c.enter(r)
	tag := r.CollTag()
	me := r.ID()
	d := c.nodeOf[me]
	lead := c.leader[d]
	if me != lead {
		r.SendOOB(lead, tag, hierResp{ok: true})
		r.RecvOOB(lead, tag+1)
		return
	}
	ms := c.nodes[d]
	for i := 0; i < len(ms)-1; i++ {
		r.RecvOOB(mpi.AnySource, tag)
	}
	lr := c.leadRank[me]
	coll.Dissemination(lr, lr.CollTag())
	for _, m := range ms {
		if m != me {
			r.SendOOB(m, tag+1, hierResp{ok: true})
		}
	}
}

// Bcast moves v root → root's node leader → all leaders → all members.
func (c *Component) Bcast(r *mpi.Rank, v memsim.View, root int) {
	c.enter(r)
	tag := r.CollTag()
	me := r.ID()
	rootNode := c.nodeOf[root]
	rootLead := c.leader[rootNode]
	if root != rootLead {
		if me == root {
			r.Send(rootLead, tag, v)
		}
		if me == rootLead {
			r.Recv(root, tag, v)
		}
	}
	if lr := c.leadRank[me]; lr != nil {
		c.interBcast(lr, v, rootNode)
	}
	c.intraBcast(r, v, tag)
}

// Reduce combines intra-node partials at each leader, reduces the partials
// across the leaders to the root's node, and hands the result to the root.
func (c *Component) Reduce(r *mpi.Rank, send, recv memsim.View, op mpi.ReduceOp, root int) {
	c.enter(r)
	tag := r.CollTag()
	me := r.ID()
	d := c.nodeOf[me]
	rootNode := c.nodeOf[root]
	rootLead := c.leader[rootNode]
	nr := c.nodeRank[me]

	var mid memsim.View
	if me == c.leader[d] {
		mid = r.Alloc(send.Len).Whole()
	}
	coll.ReduceBinomial(nr, send, mid, op, c.leadPos[d], nr.CollTag())

	if lr := c.leadRank[me]; lr != nil {
		var out memsim.View
		if me == rootLead {
			if me == root {
				out = recv
			} else {
				out = r.Alloc(send.Len).Whole()
			}
		}
		coll.ReduceBinomial(lr, mid, out, op, rootNode, lr.CollTag())
		if me == rootLead && me != root {
			r.Send(root, tag, out.SubView(0, send.Len))
		}
	}
	if me == root && me != rootLead {
		r.Recv(rootLead, tag, recv.SubView(0, send.Len))
	}
}

// Allreduce reduces to the leaders, allreduces among them, and broadcasts
// the total back into each node.
func (c *Component) Allreduce(r *mpi.Rank, send, recv memsim.View, op mpi.ReduceOp) {
	c.enter(r)
	tag := r.CollTag()
	me := r.ID()
	d := c.nodeOf[me]
	nr := c.nodeRank[me]

	coll.ReduceBinomial(nr, send, recv, op, c.leadPos[d], nr.CollTag())
	if lr := c.leadRank[me]; lr != nil && lr.Size() > 1 {
		tmp := r.Alloc(send.Len).Whole()
		r.LocalCopy(tmp, recv.SubView(0, send.Len))
		if p := lr.Size(); p&(p-1) == 0 {
			coll.AllreduceRecDoubling(lr, tmp, recv, op, lr.CollTag())
		} else {
			coll.ReduceBinomial(lr, tmp, recv, op, 0, lr.CollTag())
			coll.BcastBinomial(lr, recv.SubView(0, send.Len), 0, lr.CollTag())
		}
	}
	c.intraBcast(r, recv.SubView(0, send.Len), tag)
}

// Allgather gathers each node's blocks into its leader's global buffer,
// ring-exchanges the node extents among the leaders, and broadcasts the
// assembled buffer within each node. Requires a node-contiguous mapping;
// other mappings delegate.
func (c *Component) Allgather(r *mpi.Rank, send, recv memsim.View) {
	c.enter(r)
	if !c.contig {
		c.fb.Allgather(r, send, recv)
		return
	}
	tag := r.CollTag()
	me := r.ID()
	d := c.nodeOf[me]
	nr := c.nodeRank[me]
	blk := send.Len
	nodeBlock := recv.SubView(int64(c.first[d])*blk, int64(len(c.nodes[d]))*blk)

	coll.GatherBinomial(nr, send, nodeBlock, c.leadPos[d], nr.CollTag())
	if lr := c.leadRank[me]; lr != nil && lr.Size() > 1 {
		counts := make([]int64, len(c.nodes))
		displs := make([]int64, len(c.nodes))
		for i := range c.nodes {
			counts[i] = int64(len(c.nodes[i])) * blk
			displs[i] = int64(c.first[i]) * blk
		}
		coll.AllgathervRing(lr, nodeBlock, recv, counts, displs, lr.CollTag())
	}
	c.intraBcast(r, recv, tag)
}

// Gather funnels blocks through the node leaders to the root's leader and
// then to the root. Requires a node-contiguous mapping; others delegate.
func (c *Component) Gather(r *mpi.Rank, send, recv memsim.View, root int) {
	c.enter(r)
	if !c.contig {
		c.fb.Gather(r, send, recv, root)
		return
	}
	tag := r.CollTag()
	me := r.ID()
	d := c.nodeOf[me]
	rootNode := c.nodeOf[root]
	rootLead := c.leader[rootNode]
	nr := c.nodeRank[me]
	blk := send.Len

	var nodeBuf memsim.View
	if me == c.leader[d] {
		nodeBuf = r.Alloc(int64(len(c.nodes[d])) * blk).Whole()
	}
	coll.GatherBinomial(nr, send, nodeBuf, c.leadPos[d], nr.CollTag())

	if lr := c.leadRank[me]; lr != nil {
		ltag := lr.CollTag()
		if me != rootLead {
			lr.Send(rootNode, ltag, nodeBuf)
		} else {
			dst := recv
			if me != root {
				dst = r.Alloc(int64(c.w.Size()) * blk).Whole()
			}
			var reqs []*mpi.Request
			for i := range c.nodes {
				ext := dst.SubView(int64(c.first[i])*blk, int64(len(c.nodes[i]))*blk)
				if i == rootNode {
					r.LocalCopy(ext, nodeBuf)
					continue
				}
				reqs = append(reqs, lr.Irecv(i, ltag, ext))
			}
			lr.Wait(reqs...)
			if me != root {
				r.Send(root, tag, dst)
			}
		}
	}
	if me == root && me != rootLead {
		r.Recv(rootLead, tag, recv.SubView(0, int64(c.w.Size())*blk))
	}
}

// Scatter reverses Gather: the root hands the buffer to its leader, node
// extents travel to each leader, and leaders scatter within their nodes.
func (c *Component) Scatter(r *mpi.Rank, send, recv memsim.View, root int) {
	c.enter(r)
	if !c.contig {
		c.fb.Scatter(r, send, recv, root)
		return
	}
	tag := r.CollTag()
	me := r.ID()
	d := c.nodeOf[me]
	rootNode := c.nodeOf[root]
	rootLead := c.leader[rootNode]
	nr := c.nodeRank[me]
	blk := recv.Len

	if me == root && me != rootLead {
		r.Send(rootLead, tag, send.SubView(0, int64(c.w.Size())*blk))
	}
	var nodeBuf memsim.View
	if lr := c.leadRank[me]; lr != nil {
		ltag := lr.CollTag()
		if me == rootLead {
			src := send
			if me != root {
				src = r.Alloc(int64(c.w.Size()) * blk).Whole()
				r.Recv(root, tag, src)
			}
			var reqs []*mpi.Request
			for i := range c.nodes {
				ext := src.SubView(int64(c.first[i])*blk, int64(len(c.nodes[i]))*blk)
				if i == rootNode {
					nodeBuf = ext
					continue
				}
				reqs = append(reqs, lr.Isend(i, ltag, ext))
			}
			lr.Wait(reqs...)
		} else {
			nodeBuf = r.Alloc(int64(len(c.nodes[d])) * blk).Whole()
			lr.Recv(rootNode, ltag, nodeBuf)
		}
	}
	coll.ScatterBinomial(nr, nodeBuf, recv, c.leadPos[d], nr.CollTag())
}

// --- delegated operations ------------------------------------------------

// Alltoall delegates: every pair crosses the fabric anyway, so the flat
// pairwise schedules are already the right shape.
func (c *Component) Alltoall(r *mpi.Rank, send, recv memsim.View) {
	c.enter(r)
	c.fb.Alltoall(r, send, recv)
}

// Gatherv delegates (irregular layouts).
func (c *Component) Gatherv(r *mpi.Rank, send, recv memsim.View, rcounts, rdispls []int64, root int) {
	c.enter(r)
	c.fb.Gatherv(r, send, recv, rcounts, rdispls, root)
}

// Scatterv delegates.
func (c *Component) Scatterv(r *mpi.Rank, send memsim.View, scounts, sdispls []int64, recv memsim.View, root int) {
	c.enter(r)
	c.fb.Scatterv(r, send, scounts, sdispls, recv, root)
}

// Allgatherv delegates.
func (c *Component) Allgatherv(r *mpi.Rank, send, recv memsim.View, rcounts, rdispls []int64) {
	c.enter(r)
	c.fb.Allgatherv(r, send, recv, rcounts, rdispls)
}

// Alltoallv delegates.
func (c *Component) Alltoallv(r *mpi.Rank, send memsim.View, scounts, sdispls []int64, recv memsim.View, rcounts, rdispls []int64) {
	c.enter(r)
	c.fb.Alltoallv(r, send, scounts, sdispls, recv, rcounts, rdispls)
}

// ReduceScatterBlock delegates.
func (c *Component) ReduceScatterBlock(r *mpi.Rank, send, recv memsim.View, op mpi.ReduceOp) {
	c.enter(r)
	c.fb.ReduceScatterBlock(r, send, recv, op)
}
