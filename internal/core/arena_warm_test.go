package core

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"testing"

	"repro/internal/memsim"
	"repro/internal/mpi"
	"repro/internal/shm"
	"repro/internal/sim"
	"repro/internal/topology"
)

// runCell builds a many-core bcast cell on the given shard and runs one
// broadcast, mirroring the simbench bcast_cell_* scenarios.
func runCell(t testing.TB, m *topology.Machine, eng *sim.Engine, net *memsim.Net) sim.Time {
	t.Helper()
	now, _, err := mpi.Run(mpi.Options{
		Machine: m,
		BTL:     mpi.BTLSM,
		SHM:     shm.Config{FragSize: 128 << 10},
		Coll:    New,
		Engine:  eng,
		Net:     net,
	}, func(r *mpi.Rank) {
		buf := r.Alloc(64 << 10).Whole()
		r.Bcast(buf, 0)
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	return now
}

// TestWarmShardConstructionAllocs pins the construction cost of a cell on
// a warmed shard. After the arena high-water mark is established, building
// the whole per-rank state — world, rank tables, transport, collective
// component — must allocate nothing from the arena-backed layers; what
// remains is the per-rank coroutine machinery (iter.Pull closures and
// goroutine bookkeeping), which measures ~12 allocations per rank. The
// bound of 13 per rank is a regression tripwire: before the arena it
// took several hundred per rank.
func TestWarmShardConstructionAllocs(t *testing.T) {
	for _, np := range []int{128, 512} {
		t.Run(fmt.Sprintf("np%d", np), func(t *testing.T) {
			if testing.Short() && np > 128 {
				t.Skip("short mode")
			}
			m := topology.ManyCore(np)
			eng := sim.NewEngine()
			net := memsim.New(eng, m, nil)

			// Warm: the first run sizes the arena; a few more let the
			// non-arena pools (fifo backing arrays, free lists, map
			// buckets) reach their plateau.
			runCell(t, m, eng, net)
			for i := 0; i < 4; i++ {
				eng.Reset()
				net.Reset(nil)
				runCell(t, m, eng, net)
			}

			defer debug.SetGCPercent(debug.SetGCPercent(-1))
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			eng.Reset()
			net.Reset(nil)
			runCell(t, m, eng, net)
			runtime.ReadMemStats(&after)

			allocs := after.Mallocs - before.Mallocs
			if limit := uint64(13 * np); allocs > limit {
				t.Errorf("warm-shard cell construction at np=%d: %d allocs, want <= %d",
					np, allocs, limit)
			}
		})
	}
}

// TestArenaResetBitIdentical pins the arena's observable-freshness
// contract: a cell run on a reused shard (stale slabs, recycled rank
// tables, warm pools) must complete at exactly the same simulated time as
// the same cell on a factory-fresh engine. The subtests run in parallel so
// `go test -race -parallel 4` exercises concurrent shards the way the
// sweep runner does.
func TestArenaResetBitIdentical(t *testing.T) {
	const np = 128
	for i := 0; i < 4; i++ {
		t.Run(fmt.Sprintf("shard%d", i), func(t *testing.T) {
			t.Parallel()
			m := topology.ManyCore(np)

			fresh := sim.NewEngine()
			freshNet := memsim.New(fresh, m, nil)
			want := runCell(t, m, fresh, freshNet)

			eng := sim.NewEngine()
			net := memsim.New(eng, m, nil)
			runCell(t, m, eng, net)
			for run := 0; run < 2; run++ {
				eng.Reset()
				net.Reset(nil)
				if got := runCell(t, m, eng, net); got != want {
					t.Fatalf("reused shard run %d finished at %v, fresh at %v", run, got, want)
				}
			}
		})
	}
}
