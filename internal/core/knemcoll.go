// Package core implements KNEM-Coll, the paper's contribution: an Open
// MPI-style collective component that drives the KNEM kernel module
// directly from the collective algorithms instead of through point-to-point
// primitives (§V). The shared-memory transport is used only as an
// out-of-band channel for cookies and synchronization.
//
// The component exploits the three KNEM extensions of §III-B:
//
//   - persistent regions: one registration per collective, not per peer;
//   - direction control: receiver-reads for one-to-all (Broadcast,
//     Scatter, Alltoall), sender-writes for all-to-one (Gather), so every
//     non-root core executes its own copy in parallel and the root core
//     stops being the serial bottleneck;
//   - granularity control: peers copy arbitrary sub-ranges, enabling
//     Scatter offsets, the rotated Alltoall schedule, and the segment
//     pipeline of the hierarchical Broadcast.
//
// Operations below the kernel-trap profitability threshold (16 KiB, §V-A)
// are delegated to the fallback component (Open MPI Tuned by default), as
// are operations the component does not specialize.
package core

import (
	"fmt"

	"repro/internal/coll"
	"repro/internal/coll/tuned"
	"repro/internal/knem"
	"repro/internal/memsim"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/tune"
)

// Mode selects the Broadcast topology.
type Mode int

const (
	// ModeAuto uses the hierarchical algorithm on NUMA machines (more
	// than one memory domain) and the linear algorithm on UMA machines
	// like Zoot, reflecting the paper's per-platform choices (§IV, §VI-E:
	// linear on Zoot, hierarchical pipelined on the NUMA nodes).
	ModeAuto Mode = iota
	// ModeLinear forces the flat single-region Broadcast.
	ModeLinear
	// ModeHierarchical forces the two-level NUMA tree.
	ModeHierarchical
	// ModeMultiLevel uses the full physical hierarchy (boards, then NUMA
	// domains, then cores) — the dynamic topology mapping the paper
	// defers to future work (§V-B).
	ModeMultiLevel
)

// Config tunes the component.
type Config struct {
	// Threshold is the smallest message the KNEM paths handle; smaller
	// operations delegate to the fallback (default 16 KiB).
	Threshold int64
	// Mode selects the Broadcast topology.
	Mode Mode
	// SegIntermediate and SegLarge are the hierarchical pipeline segment
	// sizes tuned in Fig. 4: 16 KiB below LargeMin, 512 KiB at or above.
	SegIntermediate int64
	SegLarge        int64
	LargeMin        int64
	// FixedSeg, if nonzero, overrides the segment size (Fig. 4 sweeps).
	FixedSeg int64
	// NoPipeline disables segmentation in the hierarchical Broadcast
	// (the Fig. 4 normalization baseline).
	NoPipeline bool
	// DMADepth > 0 offloads Alltoall(v) copies to the per-domain I/OAT
	// DMA engines (§III) with up to DMADepth transfers in flight per
	// rank: the engine streams one block while the core sets up the
	// next, instead of serializing the P-1 reads on the core. Ignored on
	// machines without DMA engines (Spec.DMABw == 0).
	DMADepth int
	// RingAllgather replaces the paper's Gather+Bcast Allgather
	// composition (§V-C) with the ring-style algorithm the paper
	// announces for the next release (§VI-D), removing the root-NUMA
	// bottleneck on large nodes. Off by default to stay faithful to the
	// published component.
	RingAllgather bool
	// Decider, when non-nil, supplies empirically tuned decisions
	// (internal/tune): whether the KNEM path beats the fallback for a
	// given (op, nranks, size) cell, which Broadcast topology to use, and
	// which pipeline segment. Cells the table does not cover fall back to
	// the hardcoded rules above. A component built with an all-default
	// Config adopts the world's decider automatically (mpi.Options);
	// explicitly configured components (fixed segments, forced modes —
	// the Fig. 4 sweeps and ablations) are never steered.
	Decider *tune.Decider
	// LazySync defers the root-side synchronization of rooted operations:
	// instead of idling for every peer's ACK before returning (§V-B step
	// 6), the root returns once the cookies are out and drains the ACKs —
	// deregistering the region — when it next enters the component. This
	// follows §III-B's persistent-region rationale (regions outlive a
	// single access; synchronization overhead is amortized) and matters
	// for applications like ASP whose per-rank compute is uneven: the
	// root stops absorbing the stragglers' skew. The strict protocol
	// (default) matches §V-B exactly.
	LazySync bool
	// Fallback builds the delegate component (default: Open MPI Tuned).
	Fallback func(w *mpi.World) mpi.Coll
}

func (c *Config) fill() {
	if c.Threshold == 0 {
		c.Threshold = 16 << 10
	}
	if c.SegIntermediate == 0 {
		c.SegIntermediate = 16 << 10
	}
	if c.SegLarge == 0 {
		c.SegLarge = 512 << 10
	}
	if c.LargeMin == 0 {
		c.LargeMin = 2 << 20
	}
	if c.Fallback == nil {
		c.Fallback = tuned.New
	}
}

// Component is the KNEM collective component.
type Component struct {
	w   *mpi.World
	cfg Config
	fb  mpi.Coll
	// domainOf[rank] and members[domainID] describe rank locality,
	// derived from hwloc-style topology information (§IV).
	domainOf []int
	members  [][]int
	// pending holds each rank's deferred region synchronization when
	// LazySync is on: outstanding ACK count, their tag, and the region
	// to deregister once they are in.
	pending map[int]*pendingSync
	// Free lists for the hot out-of-band envelopes. Sending a bare
	// cookieMsg or segReady boxes it into an interface — one heap
	// allocation per control message. The protocols instead send pooled
	// pointers: the receiver unboxes the value and returns the envelope
	// (cookieOf/segOf), so steady-state collectives allocate nothing for
	// control traffic. The component is shared by every rank of one
	// single-threaded simulated world, so no locking is needed.
	ckPool []*cookieMsg
	sgPool []*segReady
	psPool []*pendingSync
}

type pendingSync struct {
	cookie knem.Cookie
	tag    int
	nACKs  int
}

// drainPending completes rank r's deferred synchronization from its
// previous rooted operation, deregistering the old region.
func (c *Component) drainPending(r *mpi.Rank) {
	ps := c.pending[r.ID()]
	if ps == nil {
		return
	}
	delete(c.pending, r.ID())
	for i := 0; i < ps.nACKs; i++ {
		r.RecvOOB(mpi.AnySource, ps.tag)
	}
	ck := ps.cookie
	*ps = pendingSync{}
	c.psPool = append(c.psPool, ps)
	if c.faulty() {
		c.destroyQuiet(r, ck)
		return
	}
	c.mustDestroy(r, ck)
}

// finishRoot either waits for the peers' ACKs and deregisters now (strict
// §V-B protocol) or defers both to the rank's next entry (LazySync).
func (c *Component) finishRoot(r *mpi.Rank, ck knem.Cookie, ackTag, nACKs int) {
	if c.cfg.LazySync {
		// Drain any state a previous operation left behind before it is
		// overwritten: overwriting would leak the old region and strand its
		// unconsumed ACKs in the out-of-band queue.
		c.drainPending(r)
		ps := c.newPending()
		ps.cookie, ps.tag, ps.nACKs = ck, ackTag, nACKs
		c.pending[r.ID()] = ps
		return
	}
	for i := 0; i < nACKs; i++ {
		r.RecvOOB(mpi.AnySource, ackTag)
	}
	c.mustDestroy(r, ck)
}

// FlushPending drains every deferred synchronization this rank still owes
// (call before tearing down a world or asserting region counts).
func (c *Component) FlushPending(r *mpi.Rank) { c.drainPending(r) }

// newPending takes a pendingSync from the free list or allocates one.
func (c *Component) newPending() *pendingSync {
	if k := len(c.psPool); k > 0 {
		ps := c.psPool[k-1]
		c.psPool[k-1] = nil
		c.psPool = c.psPool[:k-1]
		return ps
	}
	return &pendingSync{}
}

// tunable reports whether every knob is at its default, i.e. whether a
// world-level decision table may steer this component.
func (c *Config) tunable() bool {
	return c.Threshold == 0 && c.Mode == ModeAuto && c.SegIntermediate == 0 &&
		c.SegLarge == 0 && c.LargeMin == 0 && c.FixedSeg == 0 && !c.NoPipeline &&
		c.DMADepth == 0 && !c.RingAllgather && !c.LazySync && c.Fallback == nil
}

// New builds the component with default configuration.
func New(w *mpi.World) mpi.Coll { return NewWithConfig(w, Config{}) }

// NewWithConfig builds the component with explicit configuration.
//
// Components live in the engine's arena. The locality tables use one
// dense CSR-style layout — domainOf plus per-domain member sub-slices
// carved from a single int backing in rank order — so walking a domain's
// members is a contiguous scan, and a warmed shard rebuilds the whole
// component (envelope pools included) without heap allocations.
func NewWithConfig(w *mpi.World, cfg Config) mpi.Coll {
	if cfg.Decider == nil && cfg.tunable() {
		cfg.Decider = w.Decider()
	}
	cfg.fill()
	arena := w.Engine().Arena()
	c := sim.SlabFor[Component](arena).Get()
	c.w, c.cfg = w, cfg
	c.fb = cfg.Fallback(w)
	if c.pending == nil {
		c.pending = make(map[int]*pendingSync)
	} else {
		clear(c.pending)
	}
	// ckPool, sgPool, psPool are kept: recycled envelopes stay valid.
	np := w.Size()
	nd := len(w.Machine().Domains)
	ints := sim.SlicesFor[int](arena)
	c.domainOf = ints.Stale(np)
	counts := ints.Make(nd)
	for rank := 0; rank < np; rank++ {
		d := w.Rank(rank).Core().Domain.ID
		c.domainOf[rank] = d
		counts[d]++
	}
	c.members = sim.SlicesFor[[]int](arena).Make(nd)
	backing := ints.Stale(np)
	off := 0
	for d := 0; d < nd; d++ {
		c.members[d] = backing[off : off : off+counts[d]]
		off += counts[d]
	}
	for rank := 0; rank < np; rank++ {
		d := c.domainOf[rank]
		c.members[d] = append(c.members[d], rank)
	}
	return c
}

// Name implements mpi.Coll.
func (*Component) Name() string { return "knemcoll" }

// Fallback exposes the delegate (tests).
func (c *Component) Fallback() mpi.Coll { return c.fb }

// lookup fetches the tuned cell for an n-byte instance of op, when a
// decision table is attached and covers the operation near this size.
func (c *Component) lookup(op string, n int64) (tune.Cell, bool) {
	if c.cfg.Decider == nil {
		return tune.Cell{}, false
	}
	return c.cfg.Decider.Lookup(op, c.w.Size(), n)
}

// useKnem decides whether an n-byte instance of op takes the KNEM path.
// With a tuned cell the KNEM path runs only when the cell's best KNEM-Coll
// configuration beat the measured fallback, and above that configuration's
// own activation threshold; without one, the hardcoded profitability
// threshold rules (§V-A).
func (c *Component) useKnem(op string, n int64) bool {
	if cell, ok := c.lookup(op, n); ok && cell.Alts.Knem != nil {
		if fb := cell.Alts.TunedSM; fb != nil && fb.Seconds < cell.Alts.Knem.Seconds {
			return false
		}
		if thr := cell.Alts.Knem.Choice.Threshold; thr > 0 {
			return n >= thr
		}
	}
	return n >= c.cfg.Threshold
}

// bcastMode resolves the Broadcast topology for an n-byte message: a tuned
// cell's mode wins, then the configured mode, with ModeAuto resolved by
// the per-platform rule (§IV, §VI-E: hierarchical on NUMA machines with
// leaves under the domain leaders, linear otherwise).
func (c *Component) bcastMode(n int64) Mode {
	mode := c.cfg.Mode
	if cell, ok := c.lookup(tune.OpBcast, n); ok && cell.Alts.Knem != nil {
		switch cell.Alts.Knem.Choice.Mode {
		case "linear":
			mode = ModeLinear
		case "hierarchical":
			mode = ModeHierarchical
		case "multilevel":
			mode = ModeMultiLevel
		}
	}
	if mode != ModeAuto {
		return mode
	}
	// A hierarchy needs leaves: with one rank per domain the tree
	// degenerates to the linear algorithm anyway.
	if len(c.w.Machine().Domains) < 2 || c.w.Size() <= len(c.w.Machine().Domains) {
		return ModeLinear
	}
	return ModeHierarchical
}

// segSize returns the pipeline segment size for an n-byte Broadcast.
func (c *Component) segSize(n int64) int64 {
	if c.cfg.NoPipeline {
		return n
	}
	if c.cfg.FixedSeg != 0 {
		return c.cfg.FixedSeg
	}
	if cell, ok := c.lookup(tune.OpBcast, n); ok && cell.Alts.Knem != nil && cell.Alts.Knem.Choice.Seg > 0 {
		return cell.Alts.Knem.Choice.Seg
	}
	if n >= c.cfg.LargeMin {
		return c.cfg.SegLarge
	}
	return c.cfg.SegIntermediate
}

// Out-of-band payloads.
type (
	cookieMsg struct {
		cookie knem.Cookie
		off    int64 // where the receiver should start in the region
		n      int64 // how many bytes concern the receiver
	}
	segReady struct {
		seg int
	}
	ackMsg struct{}
	a2aMsg struct {
		cookie  knem.Cookie
		sdispls []int64
	}
)

// ck boxes a cookieMsg into a pooled envelope for SendOOB; the receiver
// unboxes and recycles it with cookieOf.
func (c *Component) ck(m cookieMsg) *cookieMsg {
	var p *cookieMsg
	if k := len(c.ckPool); k > 0 {
		p = c.ckPool[k-1]
		c.ckPool[k-1] = nil
		c.ckPool = c.ckPool[:k-1]
	} else {
		p = new(cookieMsg)
	}
	*p = m
	return p
}

// cookieOf unboxes a received cookie envelope and returns it to the pool.
func (c *Component) cookieOf(msg any) cookieMsg {
	p := msg.(*cookieMsg)
	m := *p
	*p = cookieMsg{}
	c.ckPool = append(c.ckPool, p)
	return m
}

// sg boxes a segment notification into a pooled envelope.
func (c *Component) sg(s int) *segReady {
	var p *segReady
	if k := len(c.sgPool); k > 0 {
		p = c.sgPool[k-1]
		c.sgPool[k-1] = nil
		c.sgPool = c.sgPool[:k-1]
	} else {
		p = new(segReady)
	}
	p.seg = s
	return p
}

// segOf unboxes a received segment notification and returns it to the pool.
func (c *Component) segOf(msg any) int {
	p := msg.(*segReady)
	s := p.seg
	p.seg = 0
	c.sgPool = append(c.sgPool, p)
	return s
}

func (c *Component) mustCopy(r *mpi.Rank, local memsim.View, ck knem.Cookie, off int64, dir knem.Direction) {
	err := c.w.Knem().CopyView(r.Proc(), r.Core(), local, ck, off, dir)
	if err != nil {
		panic(fmt.Sprintf("core: rank %d knem copy: %v", r.ID(), err))
	}
}

func (c *Component) mustCreate(r *mpi.Rank, v memsim.View, dir knem.Direction) knem.Cookie {
	ck, err := c.w.Knem().CreateView(r.Proc(), r.ID(), v, dir)
	if err != nil {
		panic(fmt.Sprintf("core: rank %d knem create: %v", r.ID(), err))
	}
	return ck
}

func (c *Component) mustDestroy(r *mpi.Rank, ck knem.Cookie) {
	if err := c.w.Knem().Destroy(r.Proc(), ck); err != nil {
		panic(fmt.Sprintf("core: rank %d knem destroy: %v", r.ID(), err))
	}
}

// Barrier delegates to the fallback component.
func (c *Component) Barrier(r *mpi.Rank) {
	c.enter(r)
	c.fb.Barrier(r)
}

// Bcast implements §V-B: linear single-region broadcast, or the
// hierarchical pipelined algorithm of §IV on deeply NUMA machines.
func (c *Component) Bcast(r *mpi.Rank, v memsim.View, root int) {
	c.enter(r)
	if r.Size() == 1 || !c.useKnem(tune.OpBcast, v.Len) {
		c.fb.Bcast(r, v, root)
		return
	}
	switch c.bcastMode(v.Len) {
	case ModeMultiLevel:
		c.bcastMultiLevel(r, v, root)
	case ModeHierarchical:
		c.bcastHierarchical(r, v, root)
	default:
		c.bcastLinear(r, v, root)
	}
}

// bcastLinear: the root declares one read region; every receiver core
// copies the full buffer in parallel, then ACKs; the root deregisters
// after all ACKs (§V-B steps 1-6).
func (c *Component) bcastLinear(r *mpi.Rank, v memsim.View, root int) {
	if c.faulty() {
		c.bcastLinearFault(r, v, root)
		return
	}
	tag := r.CollTag()
	p := r.Size()
	if r.ID() == root {
		ck := c.mustCreate(r, v, knem.DirRead)
		for i := 0; i < p; i++ {
			if i != root {
				r.SendOOB(i, tag, c.ck(cookieMsg{cookie: ck, n: v.Len}))
			}
		}
		c.finishRoot(r, ck, tag+1, p-1)
		return
	}
	msg, _ := r.RecvOOB(root, tag)
	cm := c.cookieOf(msg)
	c.mustCopy(r, v, cm.cookie, cm.off, knem.DirRead)
	r.SendOOB(root, tag+1, ackMsg{})
}

// Scatter sends block i of the root buffer to rank i; receivers read their
// own offset (granularity control), so the root performs no copies at all.
func (c *Component) Scatter(r *mpi.Rank, send, recv memsim.View, root int) {
	c.enter(r)
	if r.Size() == 1 || !c.useKnem(tune.OpScatter, recv.Len) {
		c.fb.Scatter(r, send, recv, root)
		return
	}
	counts, displs := coll.Uniform(r.Size(), recv.Len)
	c.scatterKnem(r, send, counts, displs, recv, root)
}

// Scatterv is the vector scatter over one read region. Vector variants
// always take the KNEM path: per-rank counts are not globally known, so a
// size-based switch could pick different algorithms on different ranks.
func (c *Component) Scatterv(r *mpi.Rank, send memsim.View, scounts, sdispls []int64, recv memsim.View, root int) {
	c.enter(r)
	if r.Size() == 1 {
		c.fb.Scatterv(r, send, scounts, sdispls, recv, root)
		return
	}
	c.scatterKnem(r, send, scounts, sdispls, recv, root)
}

func (c *Component) scatterKnem(r *mpi.Rank, send memsim.View, scounts, sdispls []int64, recv memsim.View, root int) {
	if c.faulty() {
		c.scatterKnemFault(r, send, scounts, sdispls, recv, root)
		return
	}
	tag := r.CollTag()
	p := r.Size()
	if r.ID() == root {
		ck := c.mustCreate(r, send, knem.DirRead)
		for i := 0; i < p; i++ {
			if i != root {
				r.SendOOB(i, tag, c.ck(cookieMsg{cookie: ck, off: sdispls[i], n: scounts[i]}))
			}
		}
		r.LocalCopy(recv.SubView(0, scounts[root]), coll.VBlock(send, scounts, sdispls, root))
		c.finishRoot(r, ck, tag+1, p-1)
		return
	}
	msg, _ := r.RecvOOB(root, tag)
	cm := c.cookieOf(msg)
	c.mustCopy(r, recv.SubView(0, cm.n), cm.cookie, cm.off, knem.DirRead)
	r.SendOOB(root, tag+1, ackMsg{})
}

// Gather uses direction control (§V-B): the root declares its receive
// buffer as a write region and all non-root processes write their blocks
// simultaneously — impossible with point-to-point semantics.
func (c *Component) Gather(r *mpi.Rank, send, recv memsim.View, root int) {
	c.enter(r)
	if r.Size() == 1 || !c.useKnem(tune.OpGather, send.Len) {
		c.fb.Gather(r, send, recv, root)
		return
	}
	counts, displs := coll.Uniform(r.Size(), send.Len)
	c.gatherKnem(r, send, recv, counts, displs, root)
}

// Gatherv is the vector gather over one write region (always the KNEM
// path: counts are only significant at the root, so no globally
// consistent size switch exists).
func (c *Component) Gatherv(r *mpi.Rank, send, recv memsim.View, rcounts, rdispls []int64, root int) {
	c.enter(r)
	if r.Size() == 1 {
		c.fb.Gatherv(r, send, recv, rcounts, rdispls, root)
		return
	}
	c.gatherKnem(r, send, recv, rcounts, rdispls, root)
}

func (c *Component) gatherKnem(r *mpi.Rank, send, recv memsim.View, rcounts, rdispls []int64, root int) {
	if c.faulty() {
		c.gatherKnemFault(r, send, recv, rcounts, rdispls, root)
		return
	}
	tag := r.CollTag()
	p := r.Size()
	if r.ID() == root {
		ck := c.mustCreate(r, recv, knem.DirWrite)
		for i := 0; i < p; i++ {
			if i != root {
				r.SendOOB(i, tag, c.ck(cookieMsg{cookie: ck, off: rdispls[i], n: rcounts[i]}))
			}
		}
		r.LocalCopy(coll.VBlock(recv, rcounts, rdispls, root), send.SubView(0, rcounts[root]))
		for i := 0; i < p-1; i++ {
			r.RecvOOB(mpi.AnySource, tag+1)
		}
		c.mustDestroy(r, ck)
		return
	}
	msg, _ := r.RecvOOB(root, tag)
	cm := c.cookieOf(msg)
	c.mustCopy(r, send.SubView(0, cm.n), cm.cookie, cm.off, knem.DirWrite)
	r.SendOOB(root, tag+1, ackMsg{})
}

// Allgather is the paper's assembly of a KNEM Gather to rank 0 followed by
// a KNEM Broadcast (§V-C) — simple, and deliberately kept with its known
// root-bottleneck weakness on large NUMA nodes (§VI-D analyses it).
func (c *Component) Allgather(r *mpi.Rank, send, recv memsim.View) {
	c.enter(r)
	if r.Size() == 1 || !c.useKnem(tune.OpAllgather, send.Len) {
		c.fb.Allgather(r, send, recv)
		return
	}
	if c.ringAllgather(send.Len) {
		counts, displs := coll.Uniform(r.Size(), send.Len)
		c.allgatherRing(r, send, recv.SubView(0, send.Len*int64(r.Size())), counts, displs)
		return
	}
	c.Gather(r, send, recv, 0)
	c.Bcast(r, recv.SubView(0, send.Len*int64(r.Size())), 0)
}

// Allgatherv gathers to rank 0 and broadcasts the full extent.
// It may gate on counts: MPI requires identical rcounts/rdispls
// on every rank, so the decision is globally consistent.
func (c *Component) Allgatherv(r *mpi.Rank, send, recv memsim.View, rcounts, rdispls []int64) {
	c.enter(r)
	if maxCount(rcounts) < c.cfg.Threshold || r.Size() == 1 {
		c.fb.Allgatherv(r, send, recv, rcounts, rdispls)
		return
	}
	if c.ringAllgather(maxCount(rcounts)) {
		c.allgatherRing(r, send, recv, rcounts, rdispls)
		return
	}
	c.Gatherv(r, send, recv, rcounts, rdispls, 0)
	c.Bcast(r, recv.SubView(0, coll.Total(rcounts, rdispls)), 0)
}

// Alltoall rotates reads so each sender's memory is accessed by exactly
// one peer per step (§V-C, Fig. 3).
func (c *Component) Alltoall(r *mpi.Rank, send, recv memsim.View) {
	c.enter(r)
	blk := send.Len / int64(r.Size())
	if r.Size() == 1 || !c.useKnem(tune.OpAlltoall, blk) {
		c.fb.Alltoall(r, send, recv)
		return
	}
	counts, displs := coll.Uniform(r.Size(), blk)
	c.alltoallKnem(r, send, counts, displs, recv, counts, displs)
}

// Alltoallv is the rotated exchange with per-peer counts (always the
// KNEM path: each rank only sees its own counts, so a size switch could
// disagree across ranks).
func (c *Component) Alltoallv(r *mpi.Rank, send memsim.View, scounts, sdispls []int64, recv memsim.View, rcounts, rdispls []int64) {
	c.enter(r)
	if r.Size() == 1 {
		c.fb.Alltoallv(r, send, scounts, sdispls, recv, rcounts, rdispls)
		return
	}
	c.alltoallKnem(r, send, scounts, sdispls, recv, rcounts, rdispls)
}

func (c *Component) alltoallKnem(r *mpi.Rank, send memsim.View, scounts, sdispls []int64, recv memsim.View, rcounts, rdispls []int64) {
	if c.faulty() {
		c.alltoallKnemFault(r, send, scounts, sdispls, recv, rcounts, rdispls)
		return
	}
	tag := r.CollTag()
	p := r.Size()
	me := r.ID()
	// Declare the send buffer once and publish the cookie (the paper's
	// out-of-band allgather of cookies) together with the displacements
	// peers need to locate their blocks.
	ck := c.mustCreate(r, send, knem.DirRead)
	for i := 0; i < p; i++ {
		if i != me {
			r.SendOOB(i, tag, a2aMsg{cookie: ck, sdispls: sdispls})
		}
	}
	r.LocalCopy(coll.VBlock(recv, rcounts, rdispls, me), coll.VBlock(send, scounts, sdispls, me))
	peers := make(map[int]a2aMsg, p-1)
	useDMA := c.cfg.DMADepth > 0 && c.w.Machine().DMA[r.Core().Domain.ID] != nil
	var inflight []*knem.Op
	// Fetch blocks in rotated order: step k reads from me+k, so at any
	// instant each sender's region has one reader.
	for step := 1; step < p; step++ {
		peer := (me + step) % p
		pm, ok := peers[peer]
		for !ok {
			msg, from := r.RecvOOB(mpi.AnySource, tag)
			peers[from] = msg.(a2aMsg)
			pm, ok = peers[peer]
		}
		dst := coll.VBlock(recv, rcounts, rdispls, peer)
		if useDMA {
			op, err := c.w.Knem().CopyDMA(r.Proc(), r.Core(), []memsim.View{dst}, pm.cookie, pm.sdispls[me], knem.DirRead)
			if err != nil {
				panic(fmt.Sprintf("core: rank %d dma copy: %v", me, err))
			}
			inflight = append(inflight, op)
			if len(inflight) > c.cfg.DMADepth {
				inflight[0].Wait(r.Proc())
				inflight = inflight[1:]
			}
			continue
		}
		c.mustCopy(r, dst, pm.cookie, pm.sdispls[me], knem.DirRead)
	}
	for _, op := range inflight {
		op.Wait(r.Proc())
	}
	// Nobody may deregister while peers might still read (§V-C).
	coll.Dissemination(r, tag+2)
	c.mustDestroy(r, ck)
}

// ringAllgather resolves the Allgather algorithm for an n-byte block: a
// tuned cell choosing mode "ring" enables the ring-style algorithm (§VI-D)
// for that size, otherwise the configured default applies.
func (c *Component) ringAllgather(n int64) bool {
	if cell, ok := c.lookup(tune.OpAllgather, n); ok && cell.Alts.Knem != nil {
		return cell.Alts.Knem.Choice.Mode == "ring"
	}
	return c.cfg.RingAllgather
}

func maxCount(counts []int64) int64 {
	var m int64
	for _, c := range counts {
		if c > m {
			m = c
		}
	}
	return m
}

// Reduce delegates to the fallback: KNEM moves bytes but cannot combine
// them in kernel space, so reductions are outside the component's scope
// (handled like any unimplemented collective, §V-A).
func (c *Component) Reduce(r *mpi.Rank, send, recv memsim.View, op mpi.ReduceOp, root int) {
	c.enter(r)
	c.fb.Reduce(r, send, recv, op, root)
}

// Allreduce delegates to the fallback.
func (c *Component) Allreduce(r *mpi.Rank, send, recv memsim.View, op mpi.ReduceOp) {
	c.enter(r)
	c.fb.Allreduce(r, send, recv, op)
}

// ReduceScatterBlock delegates to the fallback.
func (c *Component) ReduceScatterBlock(r *mpi.Rank, send, recv memsim.View, op mpi.ReduceOp) {
	c.enter(r)
	c.fb.ReduceScatterBlock(r, send, recv, op)
}
