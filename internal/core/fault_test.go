package core

import (
	"math/rand"
	"testing"

	"repro/internal/fault"
	"repro/internal/memsim"
	"repro/internal/mpi"
	"repro/internal/topology"
)

func runFault(t *testing.T, mach *topology.Machine, np int, cfg Config, plan *fault.Plan, body func(r *mpi.Rank)) *mpi.World {
	t.Helper()
	_, w, err := mpi.Run(mpi.Options{
		Machine: mach, NP: np, BTL: mpi.BTLSM, WithData: true, Fault: plan,
		Coll: func(w *mpi.World) mpi.Coll { return NewWithConfig(w, cfg) },
	}, body)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func fpat(rank int, i int64) byte { return byte(int64(rank*131) + i*7 + 3) }

// Failing every second registration must produce exactly counted faults and
// fallbacks, with every broadcast still delivering the right bytes — the
// acceptance scenario of the fault-injection work.
func TestCreateFaultExactCounters(t *testing.T) {
	const iters, size = 4, 64 << 10
	w := runFault(t, topology.Dancer(), 8,
		Config{Mode: ModeLinear},
		&fault.Plan{CreateFailEvery: 2},
		func(r *mpi.Rank) {
			for it := 0; it < iters; it++ {
				b := r.Alloc(size)
				if r.ID() == 0 {
					for i := range b.Data {
						b.Data[i] = fpat(it, int64(i))
					}
				}
				r.Bcast(b.Whole(), 0)
				for i := int64(0); i < size; i += 313 {
					if b.Data[i] != fpat(it, i) {
						t.Errorf("iter %d rank %d: byte %d = %d, want %d", it, r.ID(), i, b.Data[i], fpat(it, i))
						return
					}
				}
			}
		})
	s := w.Stats()
	// 4 broadcasts = 4 registration attempts, every second one fails: the
	// 2 failures each degrade one whole operation to the fallback.
	if s.CreateFaults != 2 || s.FaultsInjected != 2 || s.Fallbacks != 2 {
		t.Errorf("createFaults=%d faultsInjected=%d fallbacks=%d, want 2/2/2",
			s.CreateFaults, s.FaultsInjected, s.Fallbacks)
	}
	if s.Registrations != 2 {
		t.Errorf("registrations = %d, want 2 (the surviving creates)", s.Registrations)
	}
	if w.Knem().ActiveRegions() != 0 {
		t.Errorf("%d regions leaked", w.Knem().ActiveRegions())
	}
}

// Every specialized collective must survive registration failures with
// correct payloads, and each injected create fault must show up as exactly
// one fallback.
func TestAllCollectivesDegradeOnCreateFaults(t *testing.T) {
	const np = 8
	const blk = 40 << 10
	plan := &fault.Plan{CreateFailEvery: 2}
	type op struct {
		name string
		cfg  Config
		body func(t *testing.T, r *mpi.Rank)
	}
	ops := []op{
		{"bcast", Config{Mode: ModeLinear}, func(t *testing.T, r *mpi.Rank) {
			b := r.Alloc(blk)
			if r.ID() == 2 {
				for i := range b.Data {
					b.Data[i] = fpat(2, int64(i))
				}
			}
			r.Bcast(b.Whole(), 2)
			for i := int64(0); i < blk; i += 257 {
				if b.Data[i] != fpat(2, i) {
					t.Errorf("bcast rank %d byte %d wrong", r.ID(), i)
					return
				}
			}
		}},
		{"scatter", Config{}, func(t *testing.T, r *mpi.Rank) {
			var send memsim.View
			if r.ID() == 1 {
				sb := r.Alloc(np * blk)
				for i := range sb.Data {
					sb.Data[i] = fpat(int(int64(i)/blk), int64(i)%blk)
				}
				send = sb.Whole()
			}
			recv := r.Alloc(blk)
			r.Scatter(send, recv.Whole(), 1)
			for i := int64(0); i < blk; i += 251 {
				if recv.Data[i] != fpat(r.ID(), i) {
					t.Errorf("scatter rank %d byte %d wrong", r.ID(), i)
					return
				}
			}
		}},
		{"gather", Config{}, func(t *testing.T, r *mpi.Rank) {
			send := r.Alloc(blk)
			for i := range send.Data {
				send.Data[i] = fpat(r.ID(), int64(i))
			}
			var recv memsim.View
			var rb *memsim.Buffer
			if r.ID() == np-1 {
				rb = r.Alloc(np * blk)
				recv = rb.Whole()
			}
			r.Gather(send.Whole(), recv, np-1)
			if rb != nil {
				for src := 0; src < np; src++ {
					for i := int64(0); i < blk; i += 509 {
						if rb.Data[int64(src)*blk+i] != fpat(src, i) {
							t.Errorf("gather block %d byte %d wrong", src, i)
							return
						}
					}
				}
			}
		}},
		{"allgather", Config{}, func(t *testing.T, r *mpi.Rank) {
			send := r.Alloc(blk)
			for i := range send.Data {
				send.Data[i] = fpat(r.ID(), int64(i))
			}
			recv := r.Alloc(np * blk)
			r.Allgather(send.Whole(), recv.Whole())
			for src := 0; src < np; src++ {
				for i := int64(0); i < blk; i += 503 {
					if recv.Data[int64(src)*blk+i] != fpat(src, i) {
						t.Errorf("allgather block %d wrong at rank %d", src, r.ID())
						return
					}
				}
			}
		}},
		{"allgather-ring", Config{RingAllgather: true}, func(t *testing.T, r *mpi.Rank) {
			send := r.Alloc(blk)
			for i := range send.Data {
				send.Data[i] = fpat(r.ID(), int64(i))
			}
			recv := r.Alloc(np * blk)
			r.Allgather(send.Whole(), recv.Whole())
			for src := 0; src < np; src++ {
				for i := int64(0); i < blk; i += 499 {
					if recv.Data[int64(src)*blk+i] != fpat(src, i) {
						t.Errorf("ring block %d wrong at rank %d", src, r.ID())
						return
					}
				}
			}
		}},
		{"alltoall", Config{}, func(t *testing.T, r *mpi.Rank) {
			send := r.Alloc(np * blk)
			for j := 0; j < np; j++ {
				for i := int64(0); i < blk; i++ {
					send.Data[int64(j)*blk+i] = fpat(r.ID()*100+j, i)
				}
			}
			recv := r.Alloc(np * blk)
			r.Alltoall(send.Whole(), recv.Whole())
			for src := 0; src < np; src++ {
				for i := int64(0); i < blk; i += 241 {
					if recv.Data[int64(src)*blk+i] != fpat(src*100+r.ID(), i) {
						t.Errorf("alltoall block from %d wrong at rank %d", src, r.ID())
						return
					}
				}
			}
		}},
	}
	for _, o := range ops {
		o := o
		t.Run(o.name, func(t *testing.T) {
			w := runFault(t, topology.Dancer(), np, o.cfg, plan, func(r *mpi.Rank) {
				for it := 0; it < 3; it++ {
					o.body(t, r)
					r.Barrier()
				}
			})
			s := w.Stats()
			if s.CreateFaults == 0 {
				t.Error("plan injected no create faults")
			}
			// With BTLSM, every registration attempt comes from the
			// component, and each failure degrades exactly one operation.
			if s.Fallbacks != s.CreateFaults {
				t.Errorf("fallbacks=%d createFaults=%d, want equal", s.Fallbacks, s.CreateFaults)
			}
			if s.FaultsInjected != s.CreateFaults {
				t.Errorf("faultsInjected=%d createFaults=%d, want equal", s.FaultsInjected, s.CreateFaults)
			}
			if w.Knem().ActiveRegions() != 0 {
				t.Errorf("%d regions leaked", w.Knem().ActiveRegions())
			}
		})
	}
}

// Mid-collective cookie invalidation must be healed by point-to-point
// resends across all broadcast topologies and the ring.
func TestInvalidationRecovery(t *testing.T) {
	cases := []struct {
		name string
		mach *topology.Machine
		np   int
		cfg  Config
	}{
		{"linear", topology.Dancer(), 8, Config{Mode: ModeLinear}},
		{"hierarchical", topology.Dancer(), 8, Config{Mode: ModeHierarchical, FixedSeg: 16 << 10}},
		{"multilevel", topology.IG(), 12, Config{Mode: ModeMultiLevel, FixedSeg: 16 << 10}},
	}
	const iters, size = 3, 96 << 10
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			plan := &fault.Plan{InvalidateEvery: 3, CreateFailEvery: 7}
			w := runFault(t, c.mach, c.np, c.cfg, plan, func(r *mpi.Rank) {
				for it := 0; it < iters; it++ {
					root := it % c.np
					b := r.Alloc(size)
					if r.ID() == root {
						for i := range b.Data {
							b.Data[i] = fpat(it, int64(i))
						}
					}
					r.Bcast(b.Whole(), root)
					for i := int64(0); i < size; i += 317 {
						if b.Data[i] != fpat(it, i) {
							t.Errorf("iter %d rank %d byte %d wrong", it, r.ID(), i)
							return
						}
					}
				}
			})
			s := w.Stats()
			if s.Invalidations == 0 {
				t.Error("plan invalidated no cookies")
			}
			if s.Resends == 0 {
				t.Error("invalidations healed without resends")
			}
			if w.Knem().ActiveRegions() != 0 {
				t.Errorf("%d regions leaked", w.Knem().ActiveRegions())
			}
		})
	}
}

// The ring allgather must stay deadlock-free when regions vanish or never
// register: every rank both requests resends and services its neighbor's.
func TestRingAllgatherFaultRecovery(t *testing.T) {
	const np, blk, iters = 8, 32 << 10, 3
	plan := &fault.Plan{CreateFailEvery: 3, InvalidateEvery: 4}
	w := runFault(t, topology.Dancer(), np, Config{RingAllgather: true}, plan, func(r *mpi.Rank) {
		for it := 0; it < iters; it++ {
			send := r.Alloc(blk)
			for i := range send.Data {
				send.Data[i] = fpat(r.ID()+it, int64(i))
			}
			recv := r.Alloc(np * blk)
			r.Allgather(send.Whole(), recv.Whole())
			for src := 0; src < np; src++ {
				for i := int64(0); i < blk; i += 313 {
					if recv.Data[int64(src)*blk+i] != fpat(src+it, i) {
						t.Errorf("iter %d rank %d block %d wrong", it, r.ID(), src)
						return
					}
				}
			}
		}
	})
	if w.Stats().Resends == 0 {
		t.Error("ring recovered without resends")
	}
	if w.Knem().ActiveRegions() != 0 {
		t.Errorf("%d regions leaked", w.Knem().ActiveRegions())
	}
}

// DMA submissions that fail must degrade to synchronous kernel copies with
// the payload intact.
func TestDMAFaultDegradesToSync(t *testing.T) {
	m := dmaMachine()
	const blk = 64 << 10
	plan := &fault.Plan{DMAFailEvery: 3, DMAStallEvery: 5}
	w := runFault(t, m, m.NCores(), Config{DMADepth: 4}, plan, func(r *mpi.Rank) {
		p := int64(r.Size())
		send := r.Alloc(p * blk)
		for j := 0; j < int(p); j++ {
			for i := int64(0); i < blk; i++ {
				send.Data[int64(j)*blk+i] = fpat(r.ID()*100+j, i)
			}
		}
		recv := r.Alloc(p * blk)
		r.Alltoall(send.Whole(), recv.Whole())
		for src := 0; src < int(p); src++ {
			for i := int64(0); i < blk; i += 239 {
				if recv.Data[int64(src)*blk+i] != fpat(src*100+r.ID(), i) {
					t.Errorf("rank %d block from %d wrong", r.ID(), src)
					return
				}
			}
		}
	})
	s := w.Stats()
	if s.DMAFaults == 0 {
		t.Error("plan injected no DMA faults")
	}
	if s.Fallbacks == 0 {
		t.Error("DMA failures did not fall back to synchronous copies")
	}
}

// Stragglers and degraded links change timing, never results, and the
// straggler delay must actually slow the run down.
func TestStragglerAndLinkSlowdown(t *testing.T) {
	mach := topology.Dancer()
	const size = 64 << 10
	body := func(r *mpi.Rank) {
		for it := 0; it < 3; it++ {
			b := r.Alloc(size)
			if r.ID() == 0 {
				for i := range b.Data {
					b.Data[i] = fpat(it, int64(i))
				}
			}
			r.Bcast(b.Whole(), 0)
		}
	}
	base, _, err := mpi.Run(mpi.Options{
		Machine: mach, NP: 8, WithData: true,
		Coll: func(w *mpi.World) mpi.Coll { return NewWithConfig(w, Config{Mode: ModeLinear}) },
	}, body)
	if err != nil {
		t.Fatal(err)
	}
	plan := &fault.Plan{
		Straggler:    map[int]float64{3: 2e-3},
		LinkSlowdown: map[string]float64{mach.Links[0].Name: 0.5},
	}
	slowed, _, err := mpi.Run(mpi.Options{
		Machine: mach, NP: 8, WithData: true, Fault: plan,
		Coll: func(w *mpi.World) mpi.Coll { return NewWithConfig(w, Config{Mode: ModeLinear}) },
	}, body)
	if err != nil {
		t.Fatal(err)
	}
	// Three collective entries at 2 ms each bound the slowdown from below.
	if slowed < base+5e-3 {
		t.Errorf("straggler run took %g, want >= %g", slowed, base+5e-3)
	}
}

// Transient faults with a fixed seed must replay identically: same fault
// sequence, same counters, same final virtual time.
func TestTransientFaultDeterminism(t *testing.T) {
	run := func() (float64, string) {
		plan := &fault.Plan{Seed: 42, CopyTransient: 0.3, CreateTransient: 0.2, MaxRetries: 4}
		var tEnd float64
		w := runFault(t, topology.Dancer(), 8, Config{Mode: ModeLinear}, plan, func(r *mpi.Rank) {
			for it := 0; it < 4; it++ {
				b := r.Alloc(48 << 10)
				if r.ID() == 0 {
					for i := range b.Data {
						b.Data[i] = fpat(it, int64(i))
					}
				}
				r.Bcast(b.Whole(), 0)
			}
			tEnd = r.Now()
		})
		return tEnd, w.Stats().String()
	}
	t1, s1 := run()
	t2, s2 := run()
	if t1 != t2 || s1 != s2 {
		t.Errorf("seeded runs diverged:\n t=%g vs %g\n %s\n vs\n %s", t1, t2, s1, s2)
	}
	if t1 == 0 {
		t.Error("run did not advance time")
	}
}

// Randomized fault schedules: whatever the plan injects, every collective
// completes with the fault-free payload and no region leaks.
func TestRandomFaultSchedules(t *testing.T) {
	const np, blk = 8, 32 << 10
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 6; trial++ {
		plan := &fault.Plan{
			Seed:            rng.Int63(),
			CreateFailEvery: rng.Intn(4),
			InvalidateEvery: rng.Intn(5),
			CopyTransient:   float64(rng.Intn(3)) * 0.1,
			CreateTransient: float64(rng.Intn(2)) * 0.1,
			MaxRetries:      1 + rng.Intn(3),
		}
		if rng.Intn(2) == 0 {
			plan.PinnedPageBudget = 64 + rng.Int63n(256)
		}
		cfg := Config{RingAllgather: rng.Intn(2) == 0}
		w := runFault(t, topology.Dancer(), np, cfg, plan, func(r *mpi.Rank) {
			b := r.Alloc(blk)
			if r.ID() == 0 {
				for i := range b.Data {
					b.Data[i] = fpat(0, int64(i))
				}
			}
			r.Bcast(b.Whole(), 0)
			for i := int64(0); i < blk; i += 101 {
				if b.Data[i] != fpat(0, i) {
					t.Errorf("trial %d: bcast wrong at rank %d", trial, r.ID())
					return
				}
			}
			send := r.Alloc(blk)
			for i := range send.Data {
				send.Data[i] = fpat(r.ID(), int64(i))
			}
			recv := r.Alloc(np * blk)
			r.Allgather(send.Whole(), recv.Whole())
			for src := 0; src < np; src++ {
				for i := int64(0); i < blk; i += 103 {
					if recv.Data[int64(src)*blk+i] != fpat(src, i) {
						t.Errorf("trial %d: allgather block %d wrong at rank %d", trial, src, r.ID())
						return
					}
				}
			}
		})
		if w.Knem().ActiveRegions() != 0 {
			t.Errorf("trial %d: %d regions leaked", trial, w.Knem().ActiveRegions())
		}
	}
}
