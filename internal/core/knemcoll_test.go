package core

import (
	"testing"

	"repro/internal/mpi"
	"repro/internal/topology"
)

func TestModeAutoSelection(t *testing.T) {
	cases := []struct {
		mach *topology.Machine
		np   int
		hier bool
	}{
		{topology.Zoot(), 16, false},  // UMA: linear
		{topology.Dancer(), 8, true},  // 2 domains, leaves exist
		{topology.Dancer(), 2, false}, // one rank per domain: degenerate
		{topology.IG(), 48, true},
	}
	for _, c := range cases {
		w, err := mpi.NewWorld(mpi.Options{Machine: c.mach, NP: c.np, Coll: New})
		if err != nil {
			t.Fatal(err)
		}
		comp := w.Coll().(*Component)
		if got := comp.bcastMode(1<<20) == ModeHierarchical; got != c.hier {
			t.Errorf("%s np=%d: hierarchical = %v, want %v", c.mach.Name, c.np, got, c.hier)
		}
	}
}

func TestSegSizeDefaults(t *testing.T) {
	w, _ := mpi.NewWorld(mpi.Options{Machine: topology.IG(), Coll: New})
	c := w.Coll().(*Component)
	if got := c.segSize(1 << 20); got != 16<<10 {
		t.Errorf("intermediate seg = %d, want 16K", got)
	}
	if got := c.segSize(4 << 20); got != 512<<10 {
		t.Errorf("large seg = %d, want 512K", got)
	}
	w2, _ := mpi.NewWorld(mpi.Options{Machine: topology.IG(), Coll: func(w *mpi.World) mpi.Coll {
		return NewWithConfig(w, Config{NoPipeline: true})
	}})
	c2 := w2.Coll().(*Component)
	if got := c2.segSize(4 << 20); got != 4<<20 {
		t.Errorf("no-pipeline seg = %d, want full message", got)
	}
}

func TestMembersPartition(t *testing.T) {
	w, _ := mpi.NewWorld(mpi.Options{Machine: topology.IG(), Coll: New})
	c := w.Coll().(*Component)
	seen := map[int]bool{}
	for d, ms := range c.members {
		for _, rank := range ms {
			if seen[rank] {
				t.Fatalf("rank %d in two domains", rank)
			}
			seen[rank] = true
			if c.domainOf[rank] != d {
				t.Fatalf("rank %d domainOf=%d but listed in %d", rank, c.domainOf[rank], d)
			}
		}
	}
	if len(seen) != 48 {
		t.Fatalf("partition covers %d ranks", len(seen))
	}
}

// Lazy sync: the root's bcast must return before the slowest receiver has
// copied, and the region must be deregistered on the next entry.
func TestLazySyncRootDoesNotWait(t *testing.T) {
	m := topology.Dancer()
	rootExit := make([]float64, 2) // strict, lazy
	for i, lazy := range []bool{false, true} {
		var w *mpi.World
		_, w, err := mpi.Run(mpi.Options{
			Machine: m,
			Coll: func(w *mpi.World) mpi.Coll {
				return NewWithConfig(w, Config{Mode: ModeLinear, LazySync: lazy})
			},
		}, func(r *mpi.Rank) {
			b := r.Alloc(1 << 20)
			if r.ID() == 7 {
				r.Sleep(1e-3) // straggler arrives 1 ms late
			}
			r.Bcast(b.Whole(), 0)
			if r.ID() == 0 {
				rootExit[i] = r.Now()
			}
			r.Barrier() // next component entry: drains the pending sync
		})
		if err != nil {
			t.Fatal(err)
		}
		if lazy && w.Knem().ActiveRegions() != 0 {
			t.Error("lazy sync leaked a region past the next collective")
		}
	}
	if rootExit[0] < 1e-3 {
		t.Errorf("strict root exited at %g, before the straggler", rootExit[0])
	}
	if rootExit[1] >= 1e-3 {
		t.Errorf("lazy root exited at %g, should not wait for the straggler", rootExit[1])
	}
}

// Hierarchical bcast structure on IG: root + one leader per remote
// domain register; every other rank performs only reads.
func TestHierarchyRegistrationCount(t *testing.T) {
	m := topology.IG()
	_, w, err := mpi.Run(mpi.Options{
		Machine: m,
		Coll: func(w *mpi.World) mpi.Coll {
			return NewWithConfig(w, Config{Mode: ModeHierarchical, NoPipeline: true})
		},
	}, func(r *mpi.Rank) {
		b := r.Alloc(1 << 20)
		r.Bcast(b.Whole(), 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	// 1 root region + 7 remote leader regions.
	if w.Stats().Registrations != 8 {
		t.Errorf("registrations = %d, want 8", w.Stats().Registrations)
	}
	if w.Knem().ActiveRegions() != 0 {
		t.Error("regions leaked")
	}
}

// The pipelined hierarchy must deliver correct data even when segments
// interleave, for several segment sizes including unaligned ones.
func TestHierarchyPipelineCorrectness(t *testing.T) {
	m := topology.IG()
	const size = 300_000 // deliberately not segment aligned
	for _, seg := range []int64{4 << 10, 16 << 10, 1 << 20} {
		seg := seg
		_, _, err := mpi.Run(mpi.Options{
			Machine:  m,
			NP:       24,
			WithData: true,
			Coll: func(w *mpi.World) mpi.Coll {
				return NewWithConfig(w, Config{Mode: ModeHierarchical, FixedSeg: seg, Threshold: 1})
			},
		}, func(r *mpi.Rank) {
			b := r.Alloc(size)
			if r.ID() == 5 {
				for i := range b.Data {
					b.Data[i] = byte(i * 31)
				}
			}
			r.Bcast(b.Whole(), 5)
			for i := 0; i < size; i += 997 {
				if b.Data[i] != byte(i*31) {
					t.Errorf("seg %d rank %d: byte %d wrong", seg, r.ID(), i)
					return
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// Ring allgather extension: correct data and no region leaks.
func TestRingAllgatherCorrectness(t *testing.T) {
	for _, m := range []*topology.Machine{topology.Dancer(), topology.IG()} {
		np := m.NCores()
		const blk = 64 << 10
		_, w, err := mpi.Run(mpi.Options{
			Machine:  m,
			NP:       np,
			WithData: true,
			Coll: func(w *mpi.World) mpi.Coll {
				return NewWithConfig(w, Config{RingAllgather: true})
			},
		}, func(r *mpi.Rank) {
			send := r.Alloc(blk)
			for i := range send.Data {
				send.Data[i] = byte(r.ID()*37 + i)
			}
			recv := r.Alloc(int64(np) * blk)
			r.Allgather(send.Whole(), recv.Whole())
			for src := 0; src < np; src++ {
				for i := 0; i < blk; i += 509 {
					if recv.Data[src*blk+i] != byte(src*37+i) {
						t.Errorf("%s rank %d: block %d byte %d wrong", m.Name, r.ID(), src, i)
						return
					}
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if w.Knem().ActiveRegions() != 0 {
			t.Errorf("%s: regions leaked", m.Name)
		}
	}
}

// On IG the ring variant must beat the paper's Gather+Bcast composition —
// the fix §VI-D promises.
func TestRingAllgatherBeatsComposition(t *testing.T) {
	m := topology.IG()
	measure := func(ring bool) float64 {
		var worst float64
		_, _, err := mpi.Run(mpi.Options{
			Machine: m,
			Coll: func(w *mpi.World) mpi.Coll {
				return NewWithConfig(w, Config{RingAllgather: ring})
			},
		}, func(r *mpi.Rank) {
			send := r.Alloc(256 << 10)
			recv := r.Alloc(48 * 256 << 10)
			r.Barrier()
			t0 := r.Now()
			r.Allgather(send.Whole(), recv.Whole())
			if d := r.Now() - t0; d > worst {
				worst = d
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return worst
	}
	composed := measure(false)
	ring := measure(true)
	if ring >= composed {
		t.Fatalf("ring allgather (%.0fus) not faster than Gather+Bcast (%.0fus) on IG", ring*1e6, composed*1e6)
	}
}

// The alltoall rotation: rank r's k-th read targets peer (r+k) mod p, so
// within any synchronized step the senders read are a permutation.
func TestAlltoallRotationSchedule(t *testing.T) {
	for p := 2; p <= 9; p++ {
		for k := 1; k < p; k++ {
			seen := map[int]bool{}
			for r := 0; r < p; r++ {
				peer := (r + k) % p
				if peer == r {
					t.Fatalf("p=%d k=%d r=%d: self read", p, k, r)
				}
				if seen[peer] {
					t.Fatalf("p=%d k=%d: sender %d read twice in one step", p, k, peer)
				}
				seen[peer] = true
			}
		}
	}
}

// Fallback wiring: sub-threshold ops must reach the fallback, and the
// fallback must be the Tuned component by default.
func TestFallbackIsTuned(t *testing.T) {
	w, err := mpi.NewWorld(mpi.Options{Machine: topology.Dancer(), Coll: New})
	if err != nil {
		t.Fatal(err)
	}
	c := w.Coll().(*Component)
	if c.Fallback().Name() != "tuned" {
		t.Errorf("fallback = %s, want tuned", c.Fallback().Name())
	}
	if c.Name() != "knemcoll" {
		t.Errorf("name = %s", c.Name())
	}
}

// A custom, tiny threshold must route even small messages through KNEM.
func TestThresholdConfigurable(t *testing.T) {
	_, w, err := mpi.Run(mpi.Options{
		Machine:  topology.Dancer(),
		WithData: true,
		Coll: func(w *mpi.World) mpi.Coll {
			return NewWithConfig(w, Config{Threshold: 1, Mode: ModeLinear})
		},
	}, func(r *mpi.Rank) {
		b := r.Alloc(1024)
		r.Bcast(b.Whole(), 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Stats().Registrations != 1 {
		t.Errorf("registrations = %d, want KNEM path for tiny message", w.Stats().Registrations)
	}
}

// Regression: algorithm selection for vector collectives must not depend
// on rank-local counts. Here some ranks exchange blocks far below the
// KNEM threshold while others are far above; a local size switch would
// send them down different protocols and deadlock.
func TestAlltoallvMixedSizesNoDeadlock(t *testing.T) {
	m := topology.Dancer()
	const np = 8
	_, w, err := mpi.Run(mpi.Options{
		Machine: m, NP: np, WithData: true, Coll: New,
	}, func(r *mpi.Rank) {
		p := r.Size()
		me := r.ID()
		// Rank i sends (i+1)*1KiB to every peer: rank 0's counts are all
		// 1 KiB (below threshold), rank 7's are 8 KiB... and received
		// counts vary per sender.
		sc := make([]int64, p)
		sd := make([]int64, p)
		var so int64
		for j := 0; j < p; j++ {
			sc[j] = int64(me+1) << 10
			sd[j] = so
			so += sc[j]
		}
		rc := make([]int64, p)
		rd := make([]int64, p)
		var ro int64
		for j := 0; j < p; j++ {
			rc[j] = int64(j+1) << 10
			rd[j] = ro
			ro += rc[j]
		}
		send := r.Alloc(so)
		for i := range send.Data {
			send.Data[i] = byte(me*31 + i)
		}
		recv := r.Alloc(ro)
		r.Alltoallv(send.Whole(), sc, sd, recv.Whole(), rc, rd)
		for src := 0; src < p; src++ {
			off := sd[me] // src's displacement for me: same formula on all ranks
			_ = off
			for i := int64(0); i < rc[src]; i += 97 {
				// src sent us its block for rank me, starting at its
				// sdispls[me] = me * (src+1)KiB.
				want := byte(src*31 + int(int64(me)*(int64(src)+1)<<10+i))
				if recv.Data[rd[src]+i] != want {
					t.Errorf("rank %d from %d byte %d wrong", me, src, i)
					return
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Knem().ActiveRegions() != 0 {
		t.Fatal("regions leaked")
	}
}

// dmaMachine is a two-socket box with I/OAT engines for the DMA ablation.
func dmaMachine() *topology.Machine {
	return topology.Synthetic(topology.SyntheticSpec{
		Boards: 1, SocketsPerBoard: 2, CoresPerSocket: 4,
		BusBW: 16e9, LinkBW: 11e9, BoardLinkBW: 1,
		CacheSize: 8 << 20, CachePortBW: 30e9,
		Spec: topology.Spec{
			CoreCopyBW: 4.5e9, KernelTrap: 100e-9, CopySetup: 500e-9,
			PinPerPage: 40e-9, CtrlLatency: 300e-9, Flops: 5.5e9,
			DMABw: 6e9,
		},
	})
}

// The DMA-offloaded Alltoall must deliver correct data and actually move
// the payload through the I/OAT engines, leaving the cores' copy engines
// idle — the offload's purpose (§III) is freeing cores, not raw speed
// (a shared per-domain engine can well be slower than all cores copying).
func TestAlltoallDMAOffload(t *testing.T) {
	m := dmaMachine()
	const blk = 256 << 10
	_, w, err := mpi.Run(mpi.Options{
		Machine: m, WithData: true,
		Coll: func(w *mpi.World) mpi.Coll {
			return NewWithConfig(w, Config{DMADepth: 4})
		},
	}, func(r *mpi.Rank) {
		p := int64(r.Size())
		send := r.Alloc(p * blk)
		for j := 0; j < int(p); j++ {
			for i := int64(0); i < blk; i += 1024 {
				send.Data[int64(j)*blk+i] = byte(r.ID()*16 + j)
			}
		}
		recv := r.Alloc(p * blk)
		r.Alltoall(send.Whole(), recv.Whole())
		for src := 0; src < int(p); src++ {
			if recv.Data[int64(src)*blk] != byte(src*16+r.ID()) {
				t.Errorf("rank %d block %d wrong", r.ID(), src)
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Payload went through the DMA engines; the cores only did the local
	// self-block copies.
	dmaBytes := w.Stats().LinkBytes["dma0"] + w.Stats().LinkBytes["dma1"]
	if dmaBytes == 0 {
		t.Fatal("no bytes moved through DMA engines")
	}
	var coreBytes int64
	for name, b := range w.Stats().LinkBytes {
		if len(name) > 4 && name[:4] == "core" {
			coreBytes += b
		}
	}
	selfCopies := int64(8) * blk // one local block per rank
	if coreBytes > selfCopies {
		t.Errorf("cores moved %d bytes, want only the %d self-block bytes", coreBytes, selfCopies)
	}
}

// DMADepth on a machine without engines silently falls back to the
// synchronous path.
func TestDMADepthWithoutEngines(t *testing.T) {
	_, _, err := mpi.Run(mpi.Options{
		Machine: topology.Dancer(), WithData: true,
		Coll: func(w *mpi.World) mpi.Coll {
			return NewWithConfig(w, Config{DMADepth: 4})
		},
	}, func(r *mpi.Rank) {
		p := int64(r.Size())
		send := r.Alloc(p * 64 << 10)
		recv := r.Alloc(p * 64 << 10)
		r.Alltoall(send.Whole(), recv.Whole())
	})
	if err != nil {
		t.Fatal(err)
	}
}

// The hierarchy must be derived from the actual core placement, not rank
// numbers: with a scattered mapping (ranks round-robin over domains) the
// pipelined broadcast still delivers correct data and still registers one
// region per populated remote domain.
func TestHierarchyWithScatteredMapping(t *testing.T) {
	m := topology.IG()
	const np = 16
	mapping := m.ScatterMapping(np)
	_, w, err := mpi.Run(mpi.Options{
		Machine: m, NP: np, Mapping: mapping, WithData: true,
		Coll: func(w *mpi.World) mpi.Coll {
			return NewWithConfig(w, Config{Mode: ModeHierarchical, Threshold: 1})
		},
	}, func(r *mpi.Rank) {
		b := r.Alloc(300_000)
		if r.ID() == 3 {
			for i := range b.Data {
				b.Data[i] = byte(i * 7)
			}
		}
		r.Bcast(b.Whole(), 3)
		for i := 0; i < 300_000; i += 991 {
			if b.Data[i] != byte(i*7) {
				t.Errorf("rank %d byte %d wrong", r.ID(), i)
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// 16 ranks over 8 domains: every domain has 2 ranks; the root's domain
	// needs no leader region, the other 7 do, plus the root's own region.
	if w.Stats().Registrations != 8 {
		t.Errorf("registrations = %d, want 8", w.Stats().Registrations)
	}
}

// Multi-level tree: the roles must form a spanning tree rooted at root,
// respecting board and domain locality.
func TestMultiLevelRoles(t *testing.T) {
	w, err := mpi.NewWorld(mpi.Options{Machine: topology.IG(), Coll: func(w *mpi.World) mpi.Coll {
		return NewWithConfig(w, Config{Mode: ModeMultiLevel})
	}})
	if err != nil {
		t.Fatal(err)
	}
	c := w.Coll().(*Component)
	for _, root := range []int{0, 7, 47} {
		roles := c.multiLevelRoles(root)
		// Spanning tree: every non-root has a parent; edges = n-1; no cycles
		// (depth bounded).
		edges := 0
		for rank, ro := range roles {
			if rank == root {
				if ro.parent != -1 {
					t.Fatalf("root %d has parent %d", root, ro.parent)
				}
				continue
			}
			if ro.parent == -1 {
				t.Fatalf("rank %d unparented (root %d)", rank, root)
			}
			edges++
			depth := 0
			for cur := rank; cur != root; cur = roles[cur].parent {
				depth++
				if depth > 3 {
					t.Fatalf("rank %d deeper than 3 levels", rank)
				}
			}
		}
		if edges != 47 {
			t.Fatalf("tree has %d edges", edges)
		}
		// Exactly one child of root lives on the remote board.
		m := w.Machine()
		remoteChildren := 0
		for _, ch := range roles[root].children {
			if m.Domains[c.domainOf[ch]].Board != m.Domains[c.domainOf[root]].Board {
				remoteChildren++
			}
		}
		if remoteChildren != 1 {
			t.Fatalf("root %d has %d remote-board children, want 1", root, remoteChildren)
		}
	}
}

func TestMultiLevelBcastCorrectness(t *testing.T) {
	m := topology.IG()
	for _, np := range []int{48, 17} {
		np := np
		_, w, err := mpi.Run(mpi.Options{
			Machine: m, NP: np, WithData: true,
			Coll: func(w *mpi.World) mpi.Coll {
				return NewWithConfig(w, Config{Mode: ModeMultiLevel, Threshold: 1})
			},
		}, func(r *mpi.Rank) {
			b := r.Alloc(200_000)
			if r.ID() == np-1 {
				for i := range b.Data {
					b.Data[i] = byte(i * 11)
				}
			}
			r.Bcast(b.Whole(), np-1)
			for i := 0; i < 200_000; i += 887 {
				if b.Data[i] != byte(i*11) {
					t.Errorf("np %d rank %d byte %d wrong", np, r.ID(), i)
					return
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if w.Knem().ActiveRegions() != 0 {
			t.Fatal("regions leaked")
		}
	}
}

// On the multi-board IG, the three-level tree must beat the flat two-level
// hierarchy for large broadcasts (fewer cross-board streams, lighter root
// bus).
func TestMultiLevelBeatsTwoLevelOnIG(t *testing.T) {
	m := topology.IG()
	measure := func(mode Mode) float64 {
		var worst float64
		_, _, err := mpi.Run(mpi.Options{
			Machine: m,
			Coll: func(w *mpi.World) mpi.Coll {
				return NewWithConfig(w, Config{Mode: mode})
			},
		}, func(r *mpi.Rank) {
			b := r.Alloc(8 << 20)
			r.Barrier()
			t0 := r.Now()
			r.Bcast(b.Whole(), 0)
			if d := r.Now() - t0; d > worst {
				worst = d
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return worst
	}
	two := measure(ModeHierarchical)
	three := measure(ModeMultiLevel)
	if three >= two {
		t.Errorf("multi-level (%.0fus) not faster than two-level (%.0fus)", three*1e6, two*1e6)
	}
}

// On a single-board machine the multi-level tree degenerates to the
// two-level shape and stays correct.
func TestMultiLevelDegeneratesOnFlatMachine(t *testing.T) {
	_, _, err := mpi.Run(mpi.Options{
		Machine: topology.Dancer(), WithData: true,
		Coll: func(w *mpi.World) mpi.Coll {
			return NewWithConfig(w, Config{Mode: ModeMultiLevel, Threshold: 1})
		},
	}, func(r *mpi.Rank) {
		b := r.Alloc(64 << 10)
		if r.ID() == 0 {
			for i := range b.Data {
				b.Data[i] = byte(i)
			}
		}
		r.Bcast(b.Whole(), 0)
		if b.Data[1000] != byte(1000%256) {
			t.Errorf("rank %d wrong", r.ID())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
