package core

import (
	"repro/internal/coll"
	"repro/internal/knem"
	"repro/internal/memsim"
	"repro/internal/mpi"
)

// Ring-style KNEM Allgather — the improvement the paper announces for the
// "next release" (§VI-D): instead of composing Gather+Bcast through one
// root (whose NUMA node's memory bandwidth caps the whole operation on
// large nodes), blocks travel around the rank ring, one single-copy read
// per step from the left neighbor's receive buffer. Memory accesses are
// spread evenly across all memory controllers, most reads are
// intra-domain (ring neighbors share NUMA nodes under the linear
// rank-to-core mapping) and frequently land in the neighbor's still-warm
// cache.
//
// Protocol: every rank places its contribution in its receive buffer and
// declares the whole buffer as a read region; the cookie goes to the right
// neighbor. At step s a rank reads block (me-s-1 mod p) from its left
// neighbor — announced available by an out-of-band token — and announces
// it to its right neighbor. A final barrier precedes deregistration.
//
// Enable with Config.RingAllgather; the default remains the paper's
// Gather+Bcast composition, kept faithful including its IG weakness.

type ringToken struct {
	step int
}

func (c *Component) allgatherRing(r *mpi.Rank, send, recv memsim.View, rcounts, rdispls []int64) {
	if c.faulty() {
		c.allgatherRingFault(r, send, recv, rcounts, rdispls)
		return
	}
	tag := r.CollTag()
	p := r.Size()
	me := r.ID()
	left := (me - 1 + p) % p
	right := (me + 1) % p

	r.LocalCopy(coll.VBlock(recv, rcounts, rdispls, me), send.SubView(0, rcounts[me]))
	ck := c.mustCreate(r, recv, knem.DirRead)
	r.SendOOB(right, tag, c.ck(cookieMsg{cookie: ck, n: recv.Len}))
	msg, _ := r.RecvOOB(left, tag)
	leftCk := c.cookieOf(msg).cookie

	// Step 0 needs no token: the left neighbor's own block is in place
	// before its cookie is published.
	for step := 0; step < p-1; step++ {
		if step > 0 {
			tok, _ := r.RecvOOB(left, tag+1)
			if tok.(ringToken).step != step {
				panic("core: ring allgather token out of order")
			}
		}
		rb := (me - step - 1 + p) % p
		c.mustCopy(r, coll.VBlock(recv, rcounts, rdispls, rb), leftCk, rdispls[rb], knem.DirRead)
		if step < p-2 {
			r.SendOOB(right, tag+1, ringToken{step: step + 1})
		}
	}
	coll.Dissemination(r, tag+2)
	c.mustDestroy(r, ck)
}
