package core

import (
	"repro/internal/knem"
	"repro/internal/memsim"
	"repro/internal/mpi"
)

// Multi-level pipelined Broadcast — the "dynamic topology mapping" the
// paper leaves to future work (§V-B: "the topology mapping is static for
// now, but will be dynamic in future works"). Instead of the fixed
// two-level NUMA tree, the tree follows the machine's physical hierarchy:
//
//	root -> board leaders -> NUMA-domain leaders -> leaves
//
// On IG this sends one stream per board across the inter-board links and
// relieves the root's memory bus (one board leader plus the on-board
// domain leaders read from it, instead of every domain leader on the
// machine), while every level stays segment-pipelined. On machines with a
// single board the tree degenerates to the paper's two-level shape.
//
// Enable with Config.Mode = ModeMultiLevel.

// bcastRole describes one rank's place in the multi-level tree.
type bcastRole struct {
	parent     int   // -1 for the root
	children   []int // in notification order
	parentRoot bool  // parent is the root (whole-buffer read allowed for leaves)
}

// multiLevelRoles derives the tree for the given root from board and
// domain locality.
func (c *Component) multiLevelRoles(root int) []bcastRole {
	m := c.w.Machine()
	nDom := len(m.Domains)
	domLeader := make([]int, nDom)
	for d := 0; d < nDom; d++ {
		domLeader[d] = -1
		if len(c.members[d]) > 0 {
			domLeader[d] = c.members[d][0]
		}
	}
	rootDom := c.domainOf[root]
	domLeader[rootDom] = root

	boardOf := func(d int) int { return m.Domains[d].Board }
	rootBoard := boardOf(rootDom)
	boardLeader := make(map[int]int)
	boardLeader[rootBoard] = root
	for d := 0; d < nDom; d++ {
		if domLeader[d] == -1 {
			continue
		}
		b := boardOf(d)
		if cur, ok := boardLeader[b]; !ok || domLeader[d] < cur {
			if b != rootBoard {
				boardLeader[b] = domLeader[d]
			}
		}
	}

	roles := make([]bcastRole, c.w.Size())
	for i := range roles {
		roles[i].parent = -1
	}
	addChild := func(parent, child int) {
		roles[parent].children = append(roles[parent].children, child)
		roles[child].parent = parent
		roles[child].parentRoot = parent == root
	}
	// Board leaders hang off the root.
	for b, bl := range boardLeader {
		if b != rootBoard {
			addChild(root, bl)
		}
	}
	// Domain leaders hang off their board leader.
	for d := 0; d < nDom; d++ {
		dl := domLeader[d]
		if dl == -1 {
			continue
		}
		bl := boardLeader[boardOf(d)]
		if dl != bl {
			addChild(bl, dl)
		}
	}
	// Leaves hang off their domain leader.
	for d := 0; d < nDom; d++ {
		for _, rank := range c.members[d] {
			if rank != domLeader[d] && rank != root {
				addChild(domLeader[d], rank)
			}
		}
	}
	return roles
}

const wholeBuffer = -1 // segReady.seg value meaning "read everything"

// bcastMultiLevel runs the generic pipelined relay protocol over the
// multi-level tree. Tags: tag = cookies, tag+1 = upward ACKs, tag+3 =
// segment notifications; sources disambiguate levels (every rank only
// receives from its own parent and children).
func (c *Component) bcastMultiLevel(r *mpi.Rank, v memsim.View, root int) {
	if c.faulty() {
		c.bcastMultiLevelFault(r, v, root)
		return
	}
	tag := r.CollTag()
	me := r.ID()
	seg := c.segSize(v.Len)
	role := c.multiLevelRoles(root)[me]

	if role.parent == -1 && me != root {
		panic("core: multilevel rank outside tree")
	}

	if me == root {
		ck := c.mustCreate(r, v, knem.DirRead)
		for _, ch := range role.children {
			r.SendOOB(ch, tag, c.ck(cookieMsg{cookie: ck, n: v.Len}))
		}
		// The root's data is complete: leaves under it read in one copy,
		// relays under it still pace themselves per segment so their own
		// subtrees overlap with their reads.
		rolesAll := c.multiLevelRoles(root)
		for _, ch := range role.children {
			if len(rolesAll[ch].children) == 0 {
				r.SendOOB(ch, tag+3, c.sg(wholeBuffer))
				continue
			}
			s := 0
			eachSegment(v.Len, seg, func(off, n int64) {
				r.SendOOB(ch, tag+3, c.sg(s))
				s++
			})
		}
		c.finishRoot(r, ck, tag+1, len(role.children))
		return
	}

	// Relay or leaf.
	msg, _ := r.RecvOOB(role.parent, tag)
	parentCk := c.cookieOf(msg).cookie

	if len(role.children) == 0 {
		// Leaf: whole-buffer read if the parent has everything, else
		// follow the segment notifications.
		first, _ := r.RecvOOB(role.parent, tag+3)
		if c.segOf(first) == wholeBuffer {
			c.mustCopy(r, v, parentCk, 0, knem.DirRead)
			r.SendOOB(role.parent, tag+1, ackMsg{})
			return
		}
		s := 0
		eachSegment(v.Len, seg, func(off, n int64) {
			if s > 0 {
				ready, _ := r.RecvOOB(role.parent, tag+3)
				if c.segOf(ready) != s {
					panic("core: multilevel segment out of order")
				}
			}
			c.mustCopy(r, v.SubView(off, n), parentCk, off, knem.DirRead)
			s++
		})
		r.SendOOB(role.parent, tag+1, ackMsg{})
		return
	}

	ownCk := c.mustCreate(r, v, knem.DirRead)
	for _, ch := range role.children {
		r.SendOOB(ch, tag, c.ck(cookieMsg{cookie: ownCk, n: v.Len}))
	}
	s := 0
	eachSegment(v.Len, seg, func(off, n int64) {
		ready, _ := r.RecvOOB(role.parent, tag+3)
		if c.segOf(ready) != s {
			panic("core: multilevel segment out of order")
		}
		c.mustCopy(r, v.SubView(off, n), parentCk, off, knem.DirRead)
		for _, ch := range role.children {
			r.SendOOB(ch, tag+3, c.sg(s))
		}
		s++
	})
	r.SendOOB(role.parent, tag+1, ackMsg{})
	c.finishRoot(r, ownCk, tag+1, len(role.children))
}

// eachSegment iterates [0, total) in seg-sized pieces.
func eachSegment(total, seg int64, fn func(off, n int64)) {
	for off := int64(0); off < total; off += seg {
		n := seg
		if rem := total - off; rem < n {
			n = rem
		}
		fn(off, n)
	}
}
