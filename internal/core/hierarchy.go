package core

import (
	"repro/internal/knem"
	"repro/internal/memsim"
	"repro/internal/mpi"
)

// Hierarchical pipelined Broadcast (§IV, Fig. 1).
//
// Ranks are split into sets by NUMA domain. The first tree level holds one
// leader per domain (the root acts as leader of its own domain); every
// other rank is a leaf under its domain leader. A single transfer crosses
// the interconnect toward each remote domain (the leader's read), leaves
// read from their leader's buffer — which their shared cache has just been
// warmed with — and the transfer is segmented so leaf copies of segment s
// overlap the leader's read of segment s+1.
//
// Out-of-band protocol per Broadcast (tag strides):
//
//	tag+0  root   -> locals & remote leaders : root region cookie
//	tag+1  locals & remote leaders -> root   : final ACK
//	tag+2  leader -> its members             : leader region cookie
//	tag+3  leader -> its members             : "segment s landed"
//	tag+4  members -> leader                 : final ACK

func (c *Component) bcastHierarchical(r *mpi.Rank, v memsim.View, root int) {
	if c.faulty() {
		c.bcastHierarchicalFault(r, v, root)
		return
	}
	tag := r.CollTag()
	me := r.ID()
	rootDom := c.domainOf[root]
	myDom := c.domainOf[me]
	seg := c.segSize(v.Len)

	leaderOf := func(d int) int {
		if d == rootDom {
			return root
		}
		return c.members[d][0]
	}

	switch {
	case me == root:
		ck := c.mustCreate(r, v, knem.DirRead)
		targets := 0
		for _, m := range c.members[rootDom] {
			if m != root {
				r.SendOOB(m, tag, c.ck(cookieMsg{cookie: ck, n: v.Len}))
				targets++
			}
		}
		for d := range c.members {
			if d != rootDom && len(c.members[d]) > 0 {
				r.SendOOB(leaderOf(d), tag, c.ck(cookieMsg{cookie: ck, n: v.Len}))
				targets++
			}
		}
		c.finishRoot(r, ck, tag+1, targets)

	case myDom == rootDom:
		// Local leaf of the root's domain: one direct full read.
		msg, _ := r.RecvOOB(root, tag)
		cm := c.cookieOf(msg)
		c.mustCopy(r, v, cm.cookie, 0, knem.DirRead)
		r.SendOOB(root, tag+1, ackMsg{})

	case me == leaderOf(myDom):
		c.bcastLeader(r, v, root, tag, seg)

	default:
		c.bcastLeaf(r, v, leaderOf(myDom), tag, seg)
	}
}

// bcastLeader pulls the message from the root segment by segment,
// announcing each landed segment to its domain's leaves.
func (c *Component) bcastLeader(r *mpi.Rank, v memsim.View, root, tag int, seg int64) {
	me := r.ID()
	// A non-root-domain leader is always its domain's first member (see
	// leaderOf), so the leaves are simply the rest of the member table —
	// no per-call slice build on the steady-state broadcast path.
	leaves := c.members[c.domainOf[me]][1:]
	msg, _ := r.RecvOOB(root, tag)
	rootCk := c.cookieOf(msg).cookie

	if len(leaves) == 0 {
		// Alone on the domain: a single full read, no local level.
		c.mustCopy(r, v, rootCk, 0, knem.DirRead)
		r.SendOOB(root, tag+1, ackMsg{})
		return
	}
	ownCk := c.mustCreate(r, v, knem.DirRead)
	for _, l := range leaves {
		r.SendOOB(l, tag+2, c.ck(cookieMsg{cookie: ownCk, n: v.Len}))
	}
	s := 0
	for off := int64(0); off < v.Len; off += seg {
		n := seg
		if rem := v.Len - off; rem < n {
			n = rem
		}
		c.mustCopy(r, v.SubView(off, n), rootCk, off, knem.DirRead)
		for _, l := range leaves {
			r.SendOOB(l, tag+3, c.sg(s))
		}
		s++
	}
	// The leader's duty to the root ends with its own reads; its region
	// must only outlive the leaves' reads.
	r.SendOOB(root, tag+1, ackMsg{})
	c.finishRoot(r, ownCk, tag+4, len(leaves))
}

// bcastLeaf reads each segment from its leader's region as soon as the
// leader announces it.
func (c *Component) bcastLeaf(r *mpi.Rank, v memsim.View, leader, tag int, seg int64) {
	msg, _ := r.RecvOOB(leader, tag+2)
	ck := c.cookieOf(msg).cookie
	s := 0
	for off := int64(0); off < v.Len; off += seg {
		n := seg
		if rem := v.Len - off; rem < n {
			n = rem
		}
		ready, _ := r.RecvOOB(leader, tag+3)
		if got := c.segOf(ready); got != s {
			panic("core: pipeline segment out of order")
		}
		c.mustCopy(r, v.SubView(off, n), ck, off, knem.DirRead)
		s++
	}
	r.SendOOB(leader, tag+4, ackMsg{})
}
