package core

import (
	"fmt"

	"repro/internal/coll"
	"repro/internal/fault"
	"repro/internal/knem"
	"repro/internal/memsim"
	"repro/internal/mpi"
)

// Fault-tolerant variants of the KNEM collective protocols. When the world
// carries a fault injector (Options.Fault), every KNEM entry point routes
// here instead of the must* paths: region registration failures degrade the
// operation to the fallback component or to point-to-point resends, copy
// failures are retried with bounded backoff and then satisfied by a resend
// from the data's owner, and every degradation is counted in trace.Stats.
// Without an injector none of this code runs, so the fault-free simulation
// stays bit-for-bit identical to the strict protocols.
//
// Degradation invariants shared by every protocol below:
//
//   - A region owner never deregisters while a peer might still access the
//     region: owners collect exactly one response (ACK or NACK) per peer
//     that was handed the cookie.
//   - A peer that loses a region mid-operation never blocks a loop the
//     owner's progress depends on: resend receives are posted before the
//     NACK is sent, and stale notifications keep being consumed.
//   - Peers of an owner that never had a region (registration failed) do
//     not send responses — nobody collects them.

// Extra out-of-band payloads for the recovery protocols.
type (
	// respMsg is a peer's single response to a region owner: ok reports a
	// completed access; otherwise off is the first byte the peer still
	// needs, to be resent point-to-point.
	respMsg struct {
		ok  bool
		off int64
	}
	// ringNack asks the left neighbor to resend block rb point-to-point.
	ringNack struct {
		rb int
	}
)

// injector returns the world's fault injector, or nil.
func (c *Component) injector() *fault.Injector { return c.w.Knem().Injector() }

// faulty reports whether the fault-tolerant protocol variants are active.
func (c *Component) faulty() bool { return c.injector() != nil }

// enter runs the per-entry bookkeeping of every collective: draining the
// previous lazy synchronization and, under a fault plan, the configured
// straggler delay for this rank.
func (c *Component) enter(r *mpi.Rank) {
	c.drainPending(r)
	if in := c.injector(); in != nil {
		if d := in.Straggle(r.ID()); d > 0 {
			r.Sleep(d)
		}
	}
}

// tryCreate registers a region, retrying transient failures with the
// plan's backoff. A persistent failure returns ok=false and the caller
// degrades.
func (c *Component) tryCreate(r *mpi.Rank, v memsim.View, dir knem.Direction) (knem.Cookie, bool) {
	in := c.injector()
	for attempt := 0; ; attempt++ {
		ck, err := c.w.Knem().CreateView(r.Proc(), r.ID(), v, dir)
		switch {
		case err == nil:
			return ck, true
		case err == knem.ErrAgain && attempt < in.MaxRetries():
			c.w.Stats().Retries++
			r.Sleep(in.Backoff(attempt))
		default:
			return 0, false
		}
	}
}

// tryCopy copies through a region, retrying transient failures. The
// terminal error (invalid cookie, or a transient that outlived the retry
// budget) is returned for the caller's NACK path.
func (c *Component) tryCopy(r *mpi.Rank, local memsim.View, ck knem.Cookie, off int64, dir knem.Direction) error {
	in := c.injector()
	for attempt := 0; ; attempt++ {
		err := c.w.Knem().CopyView(r.Proc(), r.Core(), local, ck, off, dir)
		switch {
		case err == nil:
			return nil
		case err == knem.ErrAgain && attempt < in.MaxRetries():
			c.w.Stats().Retries++
			r.Sleep(in.Backoff(attempt))
		default:
			return err
		}
	}
}

// copyBlockFault fetches one block, going through the DMA engine when
// configured and degrading an injected DMA failure to a synchronous copy.
func (c *Component) copyBlockFault(r *mpi.Rank, dst memsim.View, ck knem.Cookie, off int64) error {
	if c.cfg.DMADepth > 0 && c.w.Machine().DMA[r.Core().Domain.ID] != nil {
		op, err := c.w.Knem().CopyDMA(r.Proc(), r.Core(), []memsim.View{dst}, ck, off, knem.DirRead)
		if err == nil {
			op.Wait(r.Proc())
			return nil
		}
		if err != knem.ErrDMA && err != knem.ErrNoDMA {
			return err
		}
		c.noteFallback(r, "dma-to-sync")
	}
	return c.tryCopy(r, dst, ck, off, knem.DirRead)
}

// destroyQuiet deregisters a region, tolerating one already torn down by
// an injected invalidation.
func (c *Component) destroyQuiet(r *mpi.Rank, ck knem.Cookie) {
	if ck == 0 {
		return
	}
	if err := c.w.Knem().Destroy(r.Proc(), ck); err != nil && err != knem.ErrInvalidCookie {
		panic(fmt.Sprintf("core: rank %d knem destroy: %v", r.ID(), err))
	}
}

// noteFallback counts one degraded operation.
func (c *Component) noteFallback(r *mpi.Rank, op string) {
	c.w.Stats().Fallbacks++
	if in := c.injector(); in != nil {
		in.Event("fallback", fmt.Sprintf("rank %d %s", r.ID(), op))
	}
}

// noteResend counts one point-to-point resend of lost region data.
func (c *Component) noteResend(r *mpi.Rank, op string) {
	c.w.Stats().Resends++
	if in := c.injector(); in != nil {
		in.Event("resend", fmt.Sprintf("rank %d %s", r.ID(), op))
	}
}

// fbScatter reports whether a cookie message announces a whole-operation
// fallback (registration failed before any per-peer state existed).
func opFallback(cm cookieMsg) bool { return cm.cookie == 0 && cm.n == 0 }

// --- Linear Broadcast ----------------------------------------------------

// bcastLinearFault is bcastLinear with degradation: a root that cannot
// register falls the whole operation back to the delegate; a peer whose
// read fails NACKs and receives the buffer point-to-point.
//
// Tags: tag cookie, tag+1 responses, tag+2 resent data.
func (c *Component) bcastLinearFault(r *mpi.Rank, v memsim.View, root int) {
	tag := r.CollTag()
	p := r.Size()
	if r.ID() == root {
		ck, ok := c.tryCreate(r, v, knem.DirRead)
		if !ok {
			c.noteFallback(r, "bcast-linear")
			for i := 0; i < p; i++ {
				if i != root {
					r.SendOOB(i, tag, c.ck(cookieMsg{}))
				}
			}
			c.fb.Bcast(r, v, root)
			return
		}
		for i := 0; i < p; i++ {
			if i != root {
				r.SendOOB(i, tag, c.ck(cookieMsg{cookie: ck, n: v.Len}))
			}
		}
		c.collectAndResend(r, v, tag+1, tag+2, p-1, "bcast-linear")
		c.destroyQuiet(r, ck)
		return
	}
	msg, _ := r.RecvOOB(root, tag)
	cm := c.cookieOf(msg)
	if opFallback(cm) {
		c.fb.Bcast(r, v, root)
		return
	}
	if err := c.tryCopy(r, v, cm.cookie, cm.off, knem.DirRead); err != nil {
		r.SendOOB(root, tag+1, respMsg{ok: false})
		r.Recv(root, tag+2, v)
		return
	}
	r.SendOOB(root, tag+1, respMsg{ok: true})
}

// collectAndResend gathers n peer responses and serves every NACK with a
// point-to-point resend of v from the requested offset.
func (c *Component) collectAndResend(r *mpi.Rank, v memsim.View, respTag, dataTag, n int, op string) {
	type nack struct {
		from int
		off  int64
	}
	var nacks []nack
	for i := 0; i < n; i++ {
		m, from := r.RecvOOB(mpi.AnySource, respTag)
		if resp := m.(respMsg); !resp.ok {
			nacks = append(nacks, nack{from: from, off: resp.off})
		}
	}
	for _, nk := range nacks {
		c.noteResend(r, op)
		r.Send(nk.from, dataTag, v.SubView(nk.off, v.Len-nk.off))
	}
}

// --- Scatter -------------------------------------------------------------

// scatterKnemFault degrades a failed root registration to the delegate's
// Scatterv and failed peer reads to point-to-point resends of the block.
//
// Tags: tag cookie, tag+1 responses, tag+2 resent blocks.
func (c *Component) scatterKnemFault(r *mpi.Rank, send memsim.View, scounts, sdispls []int64, recv memsim.View, root int) {
	tag := r.CollTag()
	p := r.Size()
	if r.ID() == root {
		ck, ok := c.tryCreate(r, send, knem.DirRead)
		if !ok {
			c.noteFallback(r, "scatter")
			for i := 0; i < p; i++ {
				if i != root {
					r.SendOOB(i, tag, c.ck(cookieMsg{}))
				}
			}
			c.fb.Scatterv(r, send, scounts, sdispls, recv, root)
			return
		}
		for i := 0; i < p; i++ {
			if i != root {
				r.SendOOB(i, tag, c.ck(cookieMsg{cookie: ck, off: sdispls[i], n: scounts[i]}))
			}
		}
		r.LocalCopy(recv.SubView(0, scounts[root]), coll.VBlock(send, scounts, sdispls, root))
		type nack struct{ from int }
		var nacks []nack
		for i := 0; i < p-1; i++ {
			m, from := r.RecvOOB(mpi.AnySource, tag+1)
			if !m.(respMsg).ok {
				nacks = append(nacks, nack{from: from})
			}
		}
		for _, nk := range nacks {
			c.noteResend(r, "scatter")
			r.Send(nk.from, tag+2, coll.VBlock(send, scounts, sdispls, nk.from))
		}
		c.destroyQuiet(r, ck)
		return
	}
	msg, _ := r.RecvOOB(root, tag)
	cm := c.cookieOf(msg)
	if opFallback(cm) {
		c.fb.Scatterv(r, send, scounts, sdispls, recv, root)
		return
	}
	if err := c.tryCopy(r, recv.SubView(0, cm.n), cm.cookie, cm.off, knem.DirRead); err != nil {
		r.SendOOB(root, tag+1, respMsg{ok: false})
		r.Recv(root, tag+2, recv.SubView(0, cm.n))
		return
	}
	r.SendOOB(root, tag+1, respMsg{ok: true})
}

// --- Gather --------------------------------------------------------------

// gatherKnemFault degrades a failed root registration to the delegate's
// Gatherv; a peer whose write fails NACKs and sends its block
// point-to-point for the root to place.
//
// Tags: tag cookie, tag+1 responses, tag+2 resent blocks.
func (c *Component) gatherKnemFault(r *mpi.Rank, send, recv memsim.View, rcounts, rdispls []int64, root int) {
	tag := r.CollTag()
	p := r.Size()
	if r.ID() == root {
		ck, ok := c.tryCreate(r, recv, knem.DirWrite)
		if !ok {
			c.noteFallback(r, "gather")
			for i := 0; i < p; i++ {
				if i != root {
					r.SendOOB(i, tag, c.ck(cookieMsg{}))
				}
			}
			c.fb.Gatherv(r, send, recv, rcounts, rdispls, root)
			return
		}
		for i := 0; i < p; i++ {
			if i != root {
				r.SendOOB(i, tag, c.ck(cookieMsg{cookie: ck, off: rdispls[i], n: rcounts[i]}))
			}
		}
		r.LocalCopy(coll.VBlock(recv, rcounts, rdispls, root), send.SubView(0, rcounts[root]))
		type nack struct{ from int }
		var nacks []nack
		for i := 0; i < p-1; i++ {
			m, from := r.RecvOOB(mpi.AnySource, tag+1)
			if !m.(respMsg).ok {
				nacks = append(nacks, nack{from: from})
			}
		}
		for _, nk := range nacks {
			c.noteResend(r, "gather")
			r.Recv(nk.from, tag+2, coll.VBlock(recv, rcounts, rdispls, nk.from))
		}
		c.destroyQuiet(r, ck)
		return
	}
	msg, _ := r.RecvOOB(root, tag)
	cm := c.cookieOf(msg)
	if opFallback(cm) {
		c.fb.Gatherv(r, send, recv, rcounts, rdispls, root)
		return
	}
	if err := c.tryCopy(r, send.SubView(0, cm.n), cm.cookie, cm.off, knem.DirWrite); err != nil {
		r.SendOOB(root, tag+1, respMsg{ok: false})
		r.Send(root, tag+2, send.SubView(0, cm.n))
		return
	}
	r.SendOOB(root, tag+1, respMsg{ok: true})
}

// --- Alltoall ------------------------------------------------------------

// alltoallKnemFault degrades per sender: a rank that cannot register its
// send buffer pushes its blocks point-to-point instead; a reader that
// loses a peer's region posts a receive, NACKs, and keeps walking the
// rotated schedule without ever blocking a loop an owner depends on.
// Owners collect one response per reader of their region before
// deregistering, resending lost blocks point-to-point.
//
// Tags: tag cookies, tag+3 block data (pushed or resent), tag+4 responses.
func (c *Component) alltoallKnemFault(r *mpi.Rank, send memsim.View, scounts, sdispls []int64, recv memsim.View, rcounts, rdispls []int64) {
	tag := r.CollTag()
	p := r.Size()
	me := r.ID()

	ck, ok := c.tryCreate(r, send, knem.DirRead)
	if !ok {
		ck = 0
		c.noteFallback(r, "alltoall")
	}
	for i := 0; i < p; i++ {
		if i != me {
			r.SendOOB(i, tag, a2aMsg{cookie: ck, sdispls: sdispls})
		}
	}
	var sends, recvs []*mpi.Request
	if ck == 0 {
		// Regionless: push every block point-to-point; peers post matching
		// receives when they see the zero cookie.
		for i := 0; i < p; i++ {
			if i != me {
				sends = append(sends, r.Isend(i, tag+3, coll.VBlock(send, scounts, sdispls, i)))
			}
		}
	}
	r.LocalCopy(coll.VBlock(recv, rcounts, rdispls, me), coll.VBlock(send, scounts, sdispls, me))

	peers := make(map[int]a2aMsg, p-1)
	for step := 1; step < p; step++ {
		peer := (me + step) % p
		pm, okPeer := peers[peer]
		for !okPeer {
			msg, from := r.RecvOOB(mpi.AnySource, tag)
			peers[from] = msg.(a2aMsg)
			pm, okPeer = peers[peer]
		}
		dst := coll.VBlock(recv, rcounts, rdispls, peer)
		if pm.cookie == 0 {
			// The peer pushes; no response is expected of us.
			recvs = append(recvs, r.Irecv(peer, tag+3, dst))
			continue
		}
		if err := c.copyBlockFault(r, dst, pm.cookie, pm.sdispls[me]); err != nil {
			recvs = append(recvs, r.Irecv(peer, tag+3, dst))
			r.SendOOB(peer, tag+4, respMsg{ok: false})
			continue
		}
		r.SendOOB(peer, tag+4, respMsg{ok: true})
	}

	if ck != 0 {
		// Every reader of our region responds exactly once; resend to the
		// NACKers, then the region is safe to drop.
		type nack struct{ from int }
		var nacks []nack
		for i := 0; i < p-1; i++ {
			m, from := r.RecvOOB(mpi.AnySource, tag+4)
			if !m.(respMsg).ok {
				nacks = append(nacks, nack{from: from})
			}
		}
		for _, nk := range nacks {
			c.noteResend(r, "alltoall")
			sends = append(sends, r.Isend(nk.from, tag+3, coll.VBlock(send, scounts, sdispls, nk.from)))
		}
	}
	r.Wait(append(sends, recvs...)...)
	if ck != 0 {
		c.destroyQuiet(r, ck)
	}
}

// --- Ring Allgather ------------------------------------------------------

// allgatherRingFault runs the ring with per-step recovery: a rank whose
// left neighbor's region is gone (or never existed) requests each block
// point-to-point, and every rank services its right neighbor's resend
// requests inside every wait — the ring stays deadlock-free because no
// rank ever blocks without polling for NACKs. The final dissemination
// barrier is replaced by a pairwise done handshake: only the right
// neighbor reads a rank's region, so its release needs only that one peer.
//
// Tags: tag cookies, tag+1 tokens, tag+4 NACKs, tag+5 resent blocks,
// tag+6 done handshake.
func (c *Component) allgatherRingFault(r *mpi.Rank, send, recv memsim.View, rcounts, rdispls []int64) {
	tag := r.CollTag()
	p := r.Size()
	me := r.ID()
	left := (me - 1 + p) % p
	right := (me + 1) % p

	r.LocalCopy(coll.VBlock(recv, rcounts, rdispls, me), send.SubView(0, rcounts[me]))
	ck, ok := c.tryCreate(r, recv, knem.DirRead)
	if !ok {
		ck = 0
		c.noteFallback(r, "allgather-ring")
	}
	r.SendOOB(right, tag, c.ck(cookieMsg{cookie: ck, n: recv.Len}))
	msg, _ := r.RecvOOB(left, tag)
	leftCk := c.cookieOf(msg).cookie
	leftDead := leftCk == 0

	// service answers one pending resend request from the right neighbor.
	service := func() {
		if m, _, got := r.TryRecvOOB(right, tag+4); got {
			nk := m.(ringNack)
			c.noteResend(r, "allgather-ring")
			r.Send(right, tag+5, coll.VBlock(recv, rcounts, rdispls, nk.rb))
		}
	}
	// recvServiced blocks for an out-of-band value while servicing NACKs.
	recvServiced := func(src, t int) any {
		for {
			if m, _, got := r.TryRecvOOB(src, t); got {
				return m
			}
			service()
			r.ProgressOOB()
		}
	}

	for step := 0; step < p-1; step++ {
		if step > 0 {
			tok := recvServiced(left, tag+1).(ringToken)
			if tok.step != step {
				panic("core: ring allgather token out of order")
			}
		}
		rb := (me - step - 1 + p) % p
		dst := coll.VBlock(recv, rcounts, rdispls, rb)
		done := false
		if !leftDead {
			if err := c.tryCopy(r, dst, leftCk, rdispls[rb], knem.DirRead); err == nil {
				done = true
			} else {
				leftDead = true
			}
		}
		if !done {
			q := r.Irecv(left, tag+5, dst)
			r.SendOOB(left, tag+4, ringNack{rb: rb})
			for !r.Testall(q) {
				service()
				r.ProgressOOB()
			}
		}
		// The token invariant is unchanged: block (me-step) is in place
		// before the right neighbor is released into step step+1.
		if step < p-2 {
			r.SendOOB(right, tag+1, ringToken{step: step + 1})
		}
	}
	r.SendOOB(left, tag+6, ackMsg{})
	recvServiced(right, tag+6)
	c.destroyQuiet(r, ck)
}

// --- Hierarchical Broadcast ----------------------------------------------

// bcastHierarchicalFault mirrors the two-level pipeline with degradation
// at every level: a root that cannot register falls the whole operation
// back (leaders propagate the verdict to their leaves); a leader that
// cannot register streams segments to its leaves point-to-point; any
// reader that loses its source region NACKs upward once and receives the
// remainder point-to-point, while still consuming the stale segment
// notifications its provider keeps sending.
//
// Tags: tag root cookie, tag+1 responses to root, tag+2 leader cookie,
// tag+3 segment notifications, tag+4 leaf responses to leader, tag+5 root
// resend data, tag+6 leader data (stream or resend).
func (c *Component) bcastHierarchicalFault(r *mpi.Rank, v memsim.View, root int) {
	tag := r.CollTag()
	me := r.ID()
	rootDom := c.domainOf[root]
	myDom := c.domainOf[me]
	seg := c.segSize(v.Len)

	leaderOf := func(d int) int {
		if d == rootDom {
			return root
		}
		return c.members[d][0]
	}

	switch {
	case me == root:
		var targets []int
		for _, m := range c.members[rootDom] {
			if m != root {
				targets = append(targets, m)
			}
		}
		for d := range c.members {
			if d != rootDom && len(c.members[d]) > 0 {
				targets = append(targets, leaderOf(d))
			}
		}
		ck, ok := c.tryCreate(r, v, knem.DirRead)
		if !ok {
			c.noteFallback(r, "bcast-hier")
			for _, t := range targets {
				r.SendOOB(t, tag, c.ck(cookieMsg{}))
			}
			c.fb.Bcast(r, v, root)
			return
		}
		for _, t := range targets {
			r.SendOOB(t, tag, c.ck(cookieMsg{cookie: ck, n: v.Len}))
		}
		c.collectAndResend(r, v, tag+1, tag+5, len(targets), "bcast-hier")
		c.destroyQuiet(r, ck)

	case myDom == rootDom:
		msg, _ := r.RecvOOB(root, tag)
		cm := c.cookieOf(msg)
		if opFallback(cm) {
			c.fb.Bcast(r, v, root)
			return
		}
		if err := c.tryCopy(r, v, cm.cookie, 0, knem.DirRead); err != nil {
			r.SendOOB(root, tag+1, respMsg{ok: false})
			r.Recv(root, tag+5, v)
			return
		}
		r.SendOOB(root, tag+1, respMsg{ok: true})

	case me == leaderOf(myDom):
		c.bcastLeaderFault(r, v, root, tag, seg)

	default:
		c.bcastLeafFault(r, v, root, leaderOf(myDom), tag, seg)
	}
}

func (c *Component) bcastLeaderFault(r *mpi.Rank, v memsim.View, root, tag int, seg int64) {
	me := r.ID()
	var leaves []int
	for _, m := range c.members[c.domainOf[me]] {
		if m != me {
			leaves = append(leaves, m)
		}
	}
	msg, _ := r.RecvOOB(root, tag)
	cm := c.cookieOf(msg)
	if opFallback(cm) {
		for _, l := range leaves {
			r.SendOOB(l, tag+2, c.ck(cookieMsg{}))
		}
		c.fb.Bcast(r, v, root)
		return
	}
	rootCk := cm.cookie

	if len(leaves) == 0 {
		if err := c.tryCopy(r, v, rootCk, 0, knem.DirRead); err != nil {
			r.SendOOB(root, tag+1, respMsg{ok: false})
			r.Recv(root, tag+5, v)
			return
		}
		r.SendOOB(root, tag+1, respMsg{ok: true})
		return
	}

	ownCk, haveRegion := c.tryCreate(r, v, knem.DirRead)
	if haveRegion {
		for _, l := range leaves {
			r.SendOOB(l, tag+2, c.ck(cookieMsg{cookie: ownCk, n: v.Len}))
		}
	} else {
		// No region for the leaves: announce streaming mode (zero cookie,
		// nonzero length) and push each segment point-to-point instead.
		c.noteFallback(r, "bcast-hier-leader")
		for _, l := range leaves {
			r.SendOOB(l, tag+2, c.ck(cookieMsg{n: v.Len}))
		}
	}

	rootOK := true
	responded := false
	var streamSends []*mpi.Request
	s := 0
	eachSegment(v.Len, seg, func(off, n int64) {
		if rootOK {
			if err := c.tryCopy(r, v.SubView(off, n), rootCk, off, knem.DirRead); err != nil {
				rootOK = false
				responded = true
				r.SendOOB(root, tag+1, respMsg{ok: false, off: off})
				r.Recv(root, tag+5, v.SubView(off, v.Len-off))
			}
		}
		if haveRegion {
			for _, l := range leaves {
				r.SendOOB(l, tag+3, c.sg(s))
			}
		} else {
			for _, l := range leaves {
				streamSends = append(streamSends, r.Isend(l, tag+6, v.SubView(off, n)))
			}
		}
		s++
	})
	r.Wait(streamSends...)
	if !responded {
		r.SendOOB(root, tag+1, respMsg{ok: true})
	}
	if haveRegion {
		c.collectAndResend(r, v, tag+4, tag+6, len(leaves), "bcast-hier-leader")
		c.destroyQuiet(r, ownCk)
	}
}

func (c *Component) bcastLeafFault(r *mpi.Rank, v memsim.View, root, leader, tag int, seg int64) {
	msg, _ := r.RecvOOB(leader, tag+2)
	cm := c.cookieOf(msg)
	if opFallback(cm) {
		c.fb.Bcast(r, v, root)
		return
	}
	if cm.cookie == 0 {
		// Regionless leader: segments arrive point-to-point, no response.
		eachSegment(v.Len, seg, func(off, n int64) {
			r.Recv(leader, tag+6, v.SubView(off, n))
		})
		return
	}
	alive := true
	responded := false
	s := 0
	eachSegment(v.Len, seg, func(off, n int64) {
		// Always consume the notification: the leader keeps sending them
		// even after this leaf lost the region.
		ready, _ := r.RecvOOB(leader, tag+3)
		if got := c.segOf(ready); got != s {
			panic("core: pipeline segment out of order")
		}
		if alive {
			if err := c.tryCopy(r, v.SubView(off, n), cm.cookie, off, knem.DirRead); err != nil {
				alive = false
				responded = true
				r.SendOOB(leader, tag+4, respMsg{ok: false, off: off})
				r.Recv(leader, tag+6, v.SubView(off, v.Len-off))
			}
		}
		s++
	})
	if !responded {
		r.SendOOB(leader, tag+4, respMsg{ok: true})
	}
}

// --- Multi-level Broadcast -----------------------------------------------

// bcastMultiLevelFault runs the generic tree relay with the same
// degradations as the two-level pipeline: whole-operation fallback when
// the root cannot register (relays propagate the verdict down), streaming
// relays when an interior registration fails, and NACK-plus-remainder
// recovery for lost regions, with stale notifications always consumed.
//
// Tags: tag cookies, tag+1 upward responses, tag+3 segment notifications,
// tag+5 parent data (stream or resend).
func (c *Component) bcastMultiLevelFault(r *mpi.Rank, v memsim.View, root int) {
	tag := r.CollTag()
	me := r.ID()
	seg := c.segSize(v.Len)
	rolesAll := c.multiLevelRoles(root)
	role := rolesAll[me]

	if role.parent == -1 && me != root {
		panic("core: multilevel rank outside tree")
	}

	if me == root {
		ck, ok := c.tryCreate(r, v, knem.DirRead)
		if !ok {
			c.noteFallback(r, "bcast-multilevel")
			for _, ch := range role.children {
				r.SendOOB(ch, tag, c.ck(cookieMsg{}))
			}
			c.fb.Bcast(r, v, root)
			return
		}
		for _, ch := range role.children {
			r.SendOOB(ch, tag, c.ck(cookieMsg{cookie: ck, n: v.Len}))
		}
		for _, ch := range role.children {
			if len(rolesAll[ch].children) == 0 {
				r.SendOOB(ch, tag+3, c.sg(wholeBuffer))
				continue
			}
			s := 0
			eachSegment(v.Len, seg, func(off, n int64) {
				r.SendOOB(ch, tag+3, c.sg(s))
				s++
			})
		}
		c.collectAndResend(r, v, tag+1, tag+5, len(role.children), "bcast-multilevel")
		c.destroyQuiet(r, ck)
		return
	}

	msg, _ := r.RecvOOB(role.parent, tag)
	cm := c.cookieOf(msg)
	if opFallback(cm) {
		for _, ch := range role.children {
			r.SendOOB(ch, tag, c.ck(cookieMsg{}))
		}
		c.fb.Bcast(r, v, root)
		return
	}
	parentCk := cm.cookie
	parentStreams := parentCk == 0

	if len(role.children) == 0 {
		c.mlLeafFault(r, v, role.parent, parentCk, parentStreams, tag, seg)
		return
	}

	ownCk, haveRegion := c.tryCreate(r, v, knem.DirRead)
	if haveRegion {
		for _, ch := range role.children {
			r.SendOOB(ch, tag, c.ck(cookieMsg{cookie: ownCk, n: v.Len}))
		}
	} else {
		c.noteFallback(r, "bcast-multilevel-relay")
		for _, ch := range role.children {
			r.SendOOB(ch, tag, c.ck(cookieMsg{n: v.Len}))
		}
	}

	parentOK := !parentStreams
	responded := false
	var streamSends []*mpi.Request
	s := 0
	eachSegment(v.Len, seg, func(off, n int64) {
		if parentStreams {
			r.Recv(role.parent, tag+5, v.SubView(off, n))
		} else {
			ready, _ := r.RecvOOB(role.parent, tag+3)
			if c.segOf(ready) != s {
				panic("core: multilevel segment out of order")
			}
			if parentOK {
				if err := c.tryCopy(r, v.SubView(off, n), parentCk, off, knem.DirRead); err != nil {
					parentOK = false
					responded = true
					r.SendOOB(role.parent, tag+1, respMsg{ok: false, off: off})
					r.Recv(role.parent, tag+5, v.SubView(off, v.Len-off))
				}
			}
		}
		if haveRegion {
			for _, ch := range role.children {
				r.SendOOB(ch, tag+3, c.sg(s))
			}
		} else {
			for _, ch := range role.children {
				streamSends = append(streamSends, r.Isend(ch, tag+5, v.SubView(off, n)))
			}
		}
		s++
	})
	r.Wait(streamSends...)
	if !parentStreams && !responded {
		r.SendOOB(role.parent, tag+1, respMsg{ok: true})
	}
	if haveRegion {
		c.collectAndResend(r, v, tag+1, tag+5, len(role.children), "bcast-multilevel-relay")
		c.destroyQuiet(r, ownCk)
	}
}

// mlLeafFault is the multi-level leaf: whole-buffer read under the root,
// per-segment otherwise, with NACK recovery and stale notifications
// consumed. A streaming parent sends segments point-to-point and collects
// no response.
func (c *Component) mlLeafFault(r *mpi.Rank, v memsim.View, parent int, parentCk knem.Cookie, parentStreams bool, tag int, seg int64) {
	if parentStreams {
		eachSegment(v.Len, seg, func(off, n int64) {
			r.Recv(parent, tag+5, v.SubView(off, n))
		})
		return
	}
	first, _ := r.RecvOOB(parent, tag+3)
	if c.segOf(first) == wholeBuffer {
		if err := c.tryCopy(r, v, parentCk, 0, knem.DirRead); err != nil {
			r.SendOOB(parent, tag+1, respMsg{ok: false})
			r.Recv(parent, tag+5, v)
			return
		}
		r.SendOOB(parent, tag+1, respMsg{ok: true})
		return
	}
	alive := true
	responded := false
	s := 0
	eachSegment(v.Len, seg, func(off, n int64) {
		if s > 0 {
			ready, _ := r.RecvOOB(parent, tag+3)
			if c.segOf(ready) != s {
				panic("core: multilevel segment out of order")
			}
		}
		if alive {
			if err := c.tryCopy(r, v.SubView(off, n), parentCk, off, knem.DirRead); err != nil {
				alive = false
				responded = true
				r.SendOOB(parent, tag+1, respMsg{ok: false, off: off})
				r.Recv(parent, tag+5, v.SubView(off, v.Len-off))
			}
		}
		s++
	})
	if !responded {
		r.SendOOB(parent, tag+1, respMsg{ok: true})
	}
}
