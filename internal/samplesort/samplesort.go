// Package samplesort implements parallel sample sort, a second
// collective-heavy application exercising the stack end to end: local
// sort, splitter selection through Allgather, a data-dependent Alltoallv
// redistribution (uneven counts — the operation the paper's Fig. 7
// studies), and a final verification Allreduce.
//
// Keys are little-endian uint32s carried in simulated buffers, so the
// whole pipeline — including the kernel-assisted exchanges — moves real
// data and the result is checkable against a sequential sort.
package samplesort

import (
	"encoding/binary"
	"math/rand"
	"sort"

	"repro/internal/mpi"
)

// Config parameterizes one sort.
type Config struct {
	// KeysPerRank is each rank's initial share.
	KeysPerRank int
	// Oversample is the number of samples each rank contributes to
	// splitter selection (default 8).
	Oversample int
	// Seed generates the input.
	Seed int64
}

// Result reports one rank's outcome.
type Result struct {
	// Keys is this rank's sorted output partition.
	Keys []uint32
	// Counts traces how many keys this rank sent to each peer.
	Counts []int64
	// Seconds is the total simulated time of the sort.
	Seconds float64
}

// Input deterministically generates rank's initial keys.
func Input(cfg Config, rank int) []uint32 {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(rank)*1009))
	keys := make([]uint32, cfg.KeysPerRank)
	for i := range keys {
		keys[i] = rng.Uint32()
	}
	return keys
}

// Run executes the sort as rank r's SPMD body.
func Run(r *mpi.Rank, cfg Config) Result {
	if cfg.Oversample == 0 {
		cfg.Oversample = 8
	}
	p := r.Size()
	me := r.ID()
	start := r.Now()

	// Phase 1: local sort (charged; the keys are sorted in Go directly).
	keys := Input(cfg, me)
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	r.Compute(float64(len(keys)) * 20) // ~n log n at paper-era rates

	// Phase 2: regular sampling -> Allgather -> splitters.
	s := cfg.Oversample
	mySamples := r.AllocData(int64(s) * 4)
	for i := 0; i < s; i++ {
		idx := (i + 1) * len(keys) / (s + 1)
		binary.LittleEndian.PutUint32(mySamples.Data[i*4:], keys[idx])
	}
	allSamples := r.AllocData(int64(p*s) * 4)
	r.Allgather(mySamples.Whole(), allSamples.Whole())
	samples := make([]uint32, p*s)
	for i := range samples {
		samples[i] = binary.LittleEndian.Uint32(allSamples.Data[i*4:])
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	splitters := make([]uint32, p-1)
	for i := range splitters {
		splitters[i] = samples[(i+1)*s]
	}

	// Phase 3: partition and exchange counts, then keys (Alltoallv with
	// data-dependent counts).
	scounts := make([]int64, p)
	sdispls := make([]int64, p)
	dest := 0
	for _, k := range keys {
		for dest < p-1 && k >= splitters[dest] {
			dest++
		}
		scounts[dest] += 4
	}
	var off int64
	for i := range scounts {
		sdispls[i] = off
		off += scounts[i]
	}
	sendBuf := r.AllocData(off)
	pos := append([]int64(nil), sdispls...)
	for _, k := range keys {
		d := sort.Search(len(splitters), func(i int) bool { return k < splitters[i] })
		binary.LittleEndian.PutUint32(sendBuf.Data[pos[d]:], k)
		pos[d] += 4
	}

	countsMsg := r.AllocData(int64(p) * 8)
	for i, c := range scounts {
		binary.LittleEndian.PutUint64(countsMsg.Data[i*8:], uint64(c))
	}
	countsAll := r.AllocData(int64(p*p) * 8)
	r.Allgather(countsMsg.Whole(), countsAll.Whole())
	rcounts := make([]int64, p)
	rdispls := make([]int64, p)
	var roff int64
	for i := 0; i < p; i++ {
		rcounts[i] = int64(binary.LittleEndian.Uint64(countsAll.Data[(i*p+me)*8:]))
		rdispls[i] = roff
		roff += rcounts[i]
	}
	recvBuf := r.AllocData(roff)
	r.Alltoallv(sendBuf.Whole(), scounts, sdispls, recvBuf.Whole(), rcounts, rdispls)

	// Phase 4: local merge of the received runs.
	got := make([]uint32, roff/4)
	for i := range got {
		got[i] = binary.LittleEndian.Uint32(recvBuf.Data[i*4:])
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	r.Compute(float64(len(got)) * 20)

	// Phase 5: sanity Allreduce — the global key count must be conserved.
	local := r.AllocData(4)
	binary.LittleEndian.PutUint32(local.Data, uint32(len(got)))
	total := r.AllocData(4)
	r.Allreduce(local.Whole(), total.Whole(), mpi.OpSumInt32)
	if int(binary.LittleEndian.Uint32(total.Data)) != p*cfg.KeysPerRank {
		panic("samplesort: keys lost or duplicated")
	}

	return Result{Keys: got, Counts: scounts, Seconds: r.Now() - start}
}

// Verify checks a distributed result against the sequentially sorted
// concatenation of all inputs. results must be indexed by rank.
func Verify(cfg Config, p int, results []Result) bool {
	var all []uint32
	for rank := 0; rank < p; rank++ {
		all = append(all, Input(cfg, rank)...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	var got []uint32
	for _, res := range results {
		got = append(got, res.Keys...)
	}
	if len(got) != len(all) {
		return false
	}
	for i := range got {
		if got[i] != all[i] {
			return false
		}
	}
	// Partitions must be globally ordered: rank i's max <= rank i+1's min.
	for i := 0; i+1 < p; i++ {
		a, b := results[i].Keys, results[i+1].Keys
		if len(a) > 0 && len(b) > 0 && a[len(a)-1] > b[0] {
			return false
		}
	}
	return true
}
