package samplesort

import (
	"testing"
	"testing/quick"

	"repro/internal/coll/tuned"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/topology"
)

func runSort(t *testing.T, mach *topology.Machine, np int, coll func(w *mpi.World) mpi.Coll, cfg Config) []Result {
	t.Helper()
	results := make([]Result, np)
	_, _, err := mpi.Run(mpi.Options{
		Machine: mach, NP: np, Coll: coll, WithData: true,
	}, func(r *mpi.Rank) {
		results[r.ID()] = Run(r, cfg)
	})
	if err != nil {
		t.Fatal(err)
	}
	return results
}

func TestSortCorrectAcrossComponents(t *testing.T) {
	cfg := Config{KeysPerRank: 3000, Seed: 5}
	cases := []struct {
		name string
		mach *topology.Machine
		np   int
		coll func(w *mpi.World) mpi.Coll
	}{
		{"tuned-dancer", topology.Dancer(), 8, tuned.New},
		{"knem-dancer", topology.Dancer(), 8, func(w *mpi.World) mpi.Coll {
			return core.NewWithConfig(w, core.Config{Threshold: 1})
		}},
		{"knem-ig", topology.IG(), 16, core.New},
		{"knem-np5", topology.Dancer(), 5, core.New},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			results := runSort(t, c.mach, c.np, c.coll, cfg)
			if !Verify(cfg, c.np, results) {
				t.Fatal("distributed sort does not match sequential sort")
			}
		})
	}
}

func TestSortProperty(t *testing.T) {
	f := func(seed int64, kk uint8) bool {
		cfg := Config{KeysPerRank: int(kk)%500 + 64, Seed: seed}
		results := make([]Result, 4)
		_, _, err := mpi.Run(mpi.Options{
			Machine: topology.Dancer(), NP: 4, Coll: core.New, WithData: true,
		}, func(r *mpi.Rank) {
			results[r.ID()] = Run(r, cfg)
		})
		return err == nil && Verify(cfg, 4, results)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestCountsConserved(t *testing.T) {
	cfg := Config{KeysPerRank: 2000, Seed: 9}
	results := runSort(t, topology.Dancer(), 8, tuned.New, cfg)
	var sentBytes int64
	var gotKeys int
	for _, res := range results {
		for _, c := range res.Counts {
			sentBytes += c
		}
		gotKeys += len(res.Keys)
	}
	if sentBytes != int64(8*cfg.KeysPerRank*4) {
		t.Fatalf("sent %d bytes, want %d", sentBytes, 8*cfg.KeysPerRank*4)
	}
	if gotKeys != 8*cfg.KeysPerRank {
		t.Fatalf("received %d keys, want %d", gotKeys, 8*cfg.KeysPerRank)
	}
}
