package knem

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/memsim"
	"repro/internal/sim"
	"repro/internal/topology"
)

func setup() (*sim.Engine, *memsim.Net, *Module, *topology.Machine) {
	m := topology.Dancer()
	e := sim.NewEngine()
	n := memsim.New(e, m, nil)
	return e, n, New(n), m
}

func run(t *testing.T, e *sim.Engine, body func(p *sim.Proc)) {
	t.Helper()
	e.Spawn("test", body)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCreateCopyDestroy(t *testing.T) {
	e, n, mod, m := setup()
	src := n.Alloc(m.Domains[0], 4096, true)
	dst := n.Alloc(m.Domains[1], 4096, true)
	for i := range src.Data {
		src.Data[i] = byte(i % 251)
	}
	run(t, e, func(p *sim.Proc) {
		c, err := mod.Create(p, 0, []memsim.View{src.Whole()}, DirRead)
		if err != nil {
			t.Fatal(err)
		}
		if err := mod.Copy(p, m.Cores[4], []memsim.View{dst.Whole()}, c, 0, DirRead); err != nil {
			t.Fatal(err)
		}
		if err := mod.Destroy(p, c); err != nil {
			t.Fatal(err)
		}
	})
	if !bytes.Equal(src.Data, dst.Data) {
		t.Fatal("data mismatch after KNEM read")
	}
	if n.Stats().Copies != 1 {
		t.Fatalf("copies = %d, want 1 (single-copy semantics)", n.Stats().Copies)
	}
	if n.Stats().Registrations != 1 || n.Stats().KernelTraps != 3 {
		t.Fatalf("regs=%d traps=%d, want 1/3", n.Stats().Registrations, n.Stats().KernelTraps)
	}
	if mod.ActiveRegions() != 0 {
		t.Fatal("region leaked")
	}
}

func TestTrapLatencyCharged(t *testing.T) {
	e, n, mod, m := setup()
	src := n.Alloc(m.Domains[0], 64, false)
	trap := n.Machine().Spec.KernelTrap
	run(t, e, func(p *sim.Proc) {
		t0 := p.Now()
		c, _ := mod.Create(p, 0, []memsim.View{src.Whole()}, DirRead)
		// One trap plus pinning a single page.
		want := trap + n.Machine().Spec.PinPerPage
		if p.Now()-t0 != want {
			t.Errorf("Create cost %g, want %g", p.Now()-t0, want)
		}
		mod.Destroy(p, c)
	})
}

func TestInvalidCookie(t *testing.T) {
	e, n, mod, m := setup()
	dst := n.Alloc(m.Domains[0], 64, false)
	run(t, e, func(p *sim.Proc) {
		err := mod.Copy(p, m.Cores[0], []memsim.View{dst.Whole()}, Cookie(999), 0, DirRead)
		if err != ErrInvalidCookie {
			t.Errorf("err = %v, want ErrInvalidCookie", err)
		}
		if err := mod.Destroy(p, Cookie(42)); err != ErrInvalidCookie {
			t.Errorf("destroy err = %v", err)
		}
	})
}

func TestCookieInvalidAfterDestroy(t *testing.T) {
	e, n, mod, m := setup()
	b := n.Alloc(m.Domains[0], 64, false)
	run(t, e, func(p *sim.Proc) {
		c, _ := mod.Create(p, 0, []memsim.View{b.Whole()}, DirRead)
		mod.Destroy(p, c)
		if err := mod.Copy(p, m.Cores[0], []memsim.View{b.Whole()}, c, 0, DirRead); err != ErrInvalidCookie {
			t.Errorf("err = %v, want ErrInvalidCookie", err)
		}
	})
}

func TestDirectionEnforced(t *testing.T) {
	e, n, mod, m := setup()
	buf := n.Alloc(m.Domains[0], 64, false)
	o := n.Alloc(m.Domains[0], 64, false)
	run(t, e, func(p *sim.Proc) {
		rd, _ := mod.Create(p, 0, []memsim.View{buf.Whole()}, DirRead)
		if err := mod.Copy(p, m.Cores[1], []memsim.View{o.Whole()}, rd, 0, DirWrite); err != ErrDirection {
			t.Errorf("write to read-only: err = %v", err)
		}
		wr, _ := mod.Create(p, 0, []memsim.View{buf.Whole()}, DirWrite)
		if err := mod.Copy(p, m.Cores[1], []memsim.View{o.Whole()}, wr, 0, DirRead); err != ErrDirection {
			t.Errorf("read from write-only: err = %v", err)
		}
		both, _ := mod.Create(p, 0, []memsim.View{buf.Whole()}, DirRead|DirWrite)
		if err := mod.Copy(p, m.Cores[1], []memsim.View{o.Whole()}, both, 0, DirRead); err != nil {
			t.Errorf("read from rw: %v", err)
		}
		if err := mod.Copy(p, m.Cores[1], []memsim.View{o.Whole()}, both, 0, DirWrite); err != nil {
			t.Errorf("write to rw: %v", err)
		}
	})
}

func TestRangeChecks(t *testing.T) {
	e, n, mod, m := setup()
	buf := n.Alloc(m.Domains[0], 100, false)
	o := n.Alloc(m.Domains[0], 60, false)
	run(t, e, func(p *sim.Proc) {
		c, _ := mod.Create(p, 0, []memsim.View{buf.Whole()}, DirRead)
		if err := mod.Copy(p, m.Cores[0], []memsim.View{o.Whole()}, c, 50, DirRead); err != ErrRange {
			t.Errorf("out-of-range err = %v", err)
		}
		if err := mod.Copy(p, m.Cores[0], []memsim.View{o.Whole()}, c, 40, DirRead); err != nil {
			t.Errorf("in-range err = %v", err)
		}
	})
}

func TestPartialCopyOffsets(t *testing.T) {
	e, n, mod, m := setup()
	src := n.Alloc(m.Domains[0], 1000, true)
	for i := range src.Data {
		src.Data[i] = byte(i)
	}
	dst := n.Alloc(m.Domains[1], 100, true)
	run(t, e, func(p *sim.Proc) {
		c, _ := mod.Create(p, 0, []memsim.View{src.Whole()}, DirRead)
		if err := mod.Copy(p, m.Cores[5], []memsim.View{dst.Whole()}, c, 300, DirRead); err != nil {
			t.Fatal(err)
		}
	})
	for i := 0; i < 100; i++ {
		if dst.Data[i] != byte(300+i) {
			t.Fatalf("offset copy wrong at %d", i)
		}
	}
}

func TestVectorRegion(t *testing.T) {
	e, n, mod, m := setup()
	a := n.Alloc(m.Domains[0], 100, true)
	b := n.Alloc(m.Domains[0], 100, true)
	for i := 0; i < 100; i++ {
		a.Data[i] = byte(i)
		b.Data[i] = byte(100 + i)
	}
	dst := n.Alloc(m.Domains[1], 120, true)
	run(t, e, func(p *sim.Proc) {
		// Region = a ++ b; read 120 bytes starting at logical offset 40.
		c, _ := mod.Create(p, 0, []memsim.View{a.Whole(), b.Whole()}, DirRead)
		if err := mod.Copy(p, m.Cores[4], []memsim.View{dst.Whole()}, c, 40, DirRead); err != nil {
			t.Fatal(err)
		}
	})
	for i := 0; i < 60; i++ {
		if dst.Data[i] != byte(40+i) {
			t.Fatalf("vector copy wrong in seg a at %d", i)
		}
	}
	for i := 60; i < 120; i++ {
		if dst.Data[i] != byte(100+i-60) {
			t.Fatalf("vector copy wrong in seg b at %d", i)
		}
	}
}

func TestWriteDirection(t *testing.T) {
	e, n, mod, m := setup()
	root := n.Alloc(m.Domains[0], 200, true)
	mine := n.Alloc(m.Domains[1], 100, true)
	for i := range mine.Data {
		mine.Data[i] = byte(i + 7)
	}
	run(t, e, func(p *sim.Proc) {
		c, _ := mod.Create(p, 0, []memsim.View{root.Whole()}, DirWrite)
		// Peer writes its block at offset 100 — Gather's sender-writes mode.
		if err := mod.Copy(p, m.Cores[6], []memsim.View{mine.Whole()}, c, 100, DirWrite); err != nil {
			t.Fatal(err)
		}
	})
	for i := 0; i < 100; i++ {
		if root.Data[100+i] != byte(i+7) {
			t.Fatalf("write-direction copy wrong at %d", i)
		}
	}
}

func TestConcurrentReadersShareRegion(t *testing.T) {
	e, n, mod, m := setup()
	src := n.Alloc(m.Domains[0], 1<<20, false)
	var cookie Cookie
	var ends []sim.Time
	e.Spawn("root", func(p *sim.Proc) {
		cookie, _ = mod.Create(p, 0, []memsim.View{src.Whole()}, DirRead)
	})
	for i := 1; i < 8; i++ {
		core := m.Cores[i]
		e.Spawn("reader", func(p *sim.Proc) {
			p.Wait(1e-4) // after the root finished registering
			dst := n.Alloc(core.Domain, 1<<20, false)
			if err := mod.Copy(p, core, []memsim.View{dst.Whole()}, cookie, 0, DirRead); err != nil {
				t.Error(err)
			}
			ends = append(ends, p.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(ends) != 7 {
		t.Fatalf("%d readers finished", len(ends))
	}
	if n.Stats().Registrations != 1 {
		t.Fatalf("regs = %d, want 1 — persistent region shared by all peers", n.Stats().Registrations)
	}
}

func TestDMARequiresEngine(t *testing.T) {
	e, n, mod, m := setup() // Dancer has no DMA engines
	b := n.Alloc(m.Domains[0], 64, false)
	run(t, e, func(p *sim.Proc) {
		c, _ := mod.Create(p, 0, []memsim.View{b.Whole()}, DirRead)
		if _, err := mod.CopyDMA(p, m.Cores[0], []memsim.View{b.Whole()}, c, 0, DirRead); err != ErrNoDMA {
			t.Errorf("err = %v, want ErrNoDMA", err)
		}
	})
}

func TestDMAAsync(t *testing.T) {
	mach := topology.Synthetic(topology.SyntheticSpec{
		Boards: 1, SocketsPerBoard: 1, CoresPerSocket: 2,
		BusBW: 16e9, LinkBW: 1e9, BoardLinkBW: 1,
		CacheSize: 8 << 20, CachePortBW: 30e9,
		Spec: topology.Spec{CoreCopyBW: 4.5e9, KernelTrap: 1e-7, CtrlLatency: 3e-7, Flops: 1e9, DMABw: 5e9},
	})
	e := sim.NewEngine()
	n := memsim.New(e, mach, nil)
	mod := New(n)
	src := n.Alloc(mach.Domains[0], 1<<20, true)
	dst := n.Alloc(mach.Domains[0], 1<<20, true)
	src.Data[12345] = 42
	run(t, e, func(p *sim.Proc) {
		c, _ := mod.Create(p, 0, []memsim.View{src.Whole()}, DirRead)
		op, err := mod.CopyDMA(p, mach.Cores[0], []memsim.View{dst.Whole()}, c, 0, DirRead)
		if err != nil {
			t.Fatal(err)
		}
		if op.Done() {
			t.Error("async op done immediately")
		}
		op.Wait(p)
		if !op.Done() {
			t.Error("op not done after Wait")
		}
	})
	if dst.Data[12345] != 42 {
		t.Fatal("DMA copy lost data")
	}
}

// Property: reading any [off, off+n) window of a registered region via a
// vectorial local buffer yields exactly the region bytes.
func TestWindowedReadProperty(t *testing.T) {
	f := func(off, ln uint16, split uint8) bool {
		e, n, mod, m := setup()
		const size = 4096
		o := int64(off) % size
		l := int64(ln) % (size - o)
		if l == 0 {
			l = 1
		}
		src := n.Alloc(m.Domains[0], size, true)
		for i := range src.Data {
			src.Data[i] = byte(i * 13)
		}
		d1 := n.Alloc(m.Domains[1], l, true)
		sp := int64(split) % l
		locals := []memsim.View{d1.View(0, sp), d1.View(sp, l-sp)}
		ok := true
		e.Spawn("t", func(p *sim.Proc) {
			c, _ := mod.Create(p, 0, []memsim.View{src.Whole()}, DirRead)
			if err := mod.Copy(p, m.Cores[4], locals, c, o, DirRead); err != nil {
				ok = false
				return
			}
		})
		if err := e.Run(); err != nil {
			return false
		}
		if !ok {
			return false
		}
		return bytes.Equal(d1.Data, src.Data[o:o+l])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
