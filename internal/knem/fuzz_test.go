package knem

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/memsim"
	"repro/internal/sim"
)

// FuzzVectorRegion registers a 1–3 segment vectorial region and throws
// arbitrary copy requests at it: random logical offsets and lengths
// (including offsets chosen to overflow off+length), split destination
// iovecs, and wrong-direction attempts. Invariants: wrong direction is
// ErrDirection, anything outside [0, total] is ErrRange, and every
// accepted read yields exactly the logical concatenation bytes.
func FuzzVectorRegion(f *testing.F) {
	f.Add(uint16(100), uint16(100), uint16(50), int64(40), uint16(120), false, uint8(60))
	f.Add(uint16(1), uint16(1), uint16(1), int64(0), uint16(3), false, uint8(1))
	f.Add(uint16(4096), uint16(0), uint16(0), int64(4095), uint16(1), false, uint8(0))
	f.Add(uint16(256), uint16(256), uint16(256), int64(-1), uint16(8), false, uint8(4))
	f.Add(uint16(256), uint16(256), uint16(256), int64(1000), uint16(8), true, uint8(4))
	f.Add(uint16(64), uint16(64), uint16(0), int64(math.MaxInt64-4), uint16(16), false, uint8(8))
	f.Add(uint16(512), uint16(512), uint16(512), int64(1536), uint16(1), false, uint8(0))

	f.Fuzz(func(t *testing.T, aLen, bLen, cLen uint16, off int64, n uint16, asWrite bool, split uint8) {
		e, net, mod, m := setup()

		segLens := []int64{int64(aLen)%1024 + 1, int64(bLen)%1024 + 1, int64(cLen)%1024 + 1}
		segLens = segLens[:1+int(cLen)%3]
		var segs []memsim.View
		var concat []byte
		total := int64(0)
		for k, sl := range segLens {
			buf := net.Alloc(m.Domains[k%len(m.Domains)], sl, true)
			for i := range buf.Data {
				buf.Data[i] = byte(k*37 + i*3 + 11)
			}
			segs = append(segs, buf.Whole())
			concat = append(concat, buf.Data...)
			total += sl
		}

		l := int64(n)%2048 + 1
		dst := net.Alloc(m.Domains[0], l, true)
		sp := int64(split) % (l + 1)
		locals := []memsim.View{dst.View(0, sp), dst.View(sp, l-sp)}

		dir := DirRead
		if asWrite {
			dir = DirWrite
		}

		var copyErr error
		e.Spawn("fuzz", func(p *sim.Proc) {
			ck, err := mod.Create(p, 0, segs, DirRead)
			if err != nil {
				t.Fatalf("Create: %v", err)
			}
			copyErr = mod.Copy(p, m.Cores[4], locals, ck, off, dir)
			if err := mod.Destroy(p, ck); err != nil {
				t.Fatalf("Destroy: %v", err)
			}
		})
		if err := e.Run(); err != nil {
			t.Fatalf("engine: %v", err)
		}

		switch {
		case asWrite:
			if copyErr != ErrDirection {
				t.Fatalf("write to read-only region: err = %v, want ErrDirection", copyErr)
			}
		case off < 0 || off > total || l > total-off:
			if copyErr != ErrRange {
				t.Fatalf("off=%d l=%d total=%d: err = %v, want ErrRange", off, l, total, copyErr)
			}
		default:
			if copyErr != nil {
				t.Fatalf("in-range copy off=%d l=%d total=%d failed: %v", off, l, total, copyErr)
			}
			if !bytes.Equal(dst.Data, concat[off:off+l]) {
				t.Fatalf("payload mismatch at off=%d l=%d (segments %v)", off, l, segLens)
			}
		}

		if mod.ActiveRegions() != 0 {
			t.Fatal("region leaked")
		}
	})
}
