// Package knem simulates the KNEM Linux kernel module (>= 0.7) that the
// paper's collective component drives directly: single-copy transfers
// between process address spaces, performed in kernel space by the calling
// core (or offloaded to an I/OAT DMA engine).
//
// The simulated API mirrors the real module's region model:
//
//   - Create declares a persistent memory region (possibly vectorial) and
//     returns a cookie; the region can then be accessed multiple times by
//     any number of peers until Destroy — the paper's fix for redundant
//     per-peer registrations (§III-B).
//
//   - A region carries direction permissions: DirRead lets peers read it
//     (receiver-reading: Broadcast, Scatter, Alltoall), DirWrite lets
//     peers write it (sender-writing: Gather). Direction control is the
//     second KNEM extension the paper introduces.
//
//   - Copy moves data between a local buffer and any sub-range of a remote
//     region (granularity control), so several peers can concurrently
//     stream different chunks of the same region.
//
// Every call that would be an ioctl charges the machine's kernel-trap
// latency — the ~100 ns overhead that makes KNEM unattractive below 16 KB
// (§V-A).
//
// Security model (§III): cookies act like System V IPC identifiers. A
// stale, forged, or destroyed cookie yields ErrInvalidCookie; an access
// not permitted by the region's direction yields ErrDirection; a range
// beyond the region yields ErrRange.
package knem

import (
	"errors"
	"fmt"

	"repro/internal/fault"
	"repro/internal/memsim"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Direction is a permission bitmask on regions and the access mode of a
// copy.
type Direction int

const (
	// DirRead permits peers to read the region.
	DirRead Direction = 1 << iota
	// DirWrite permits peers to write the region.
	DirWrite
)

// Cookie identifies a declared region.
type Cookie uint64

// Errors returned by the module, mirroring the real driver's EINVAL/EPERM
// surface.
var (
	ErrInvalidCookie = errors.New("knem: invalid cookie")
	ErrDirection     = errors.New("knem: direction not permitted by region")
	ErrRange         = errors.New("knem: copy range exceeds region")
	ErrNoDMA         = errors.New("knem: no DMA engine on this machine")
	// ErrNoMem is the simulated ENOMEM from get_user_pages: the
	// fault plan's pinned-page budget is exhausted (or an injected hard
	// registration failure). Not retryable; callers must degrade.
	ErrNoMem = errors.New("knem: cannot pin region (pinned-page budget exhausted)")
	// ErrAgain is a transient, retryable failure injected by a fault plan.
	ErrAgain = errors.New("knem: resource temporarily unavailable")
	// ErrDMA is an injected DMA engine failure; the caller should fall
	// back to a synchronous kernel copy.
	ErrDMA = errors.New("knem: dma engine fault")
)

// Region is a declared memory region.
type Region struct {
	cookie Cookie
	owner  int
	segs   []memsim.View
	dir    Direction
	total  int64
	pages  int64
}

// Len returns the total byte length of the region.
func (r *Region) Len() int64 { return r.total }

// table is the region state of one driver instance: the cookie map, the
// cookie counter, and the free list of destroyed Regions. It is a separate
// object so partitioned worlds can link several Modules — one per engine —
// over one table: regions registered through any linked module resolve
// through all of them, like processes of one node sharing one /dev/knem.
// Mutation (Create/Destroy) must stay on a single engine at a time; linked
// readers on other engines are ordered by the conservative window barrier
// that also orders the data they copy.
type table struct {
	regions    map[Cookie]*Region
	next       Cookie
	regionPool []*Region
}

// Module is one node's KNEM driver instance.
type Module struct {
	net   *memsim.Net
	stats *trace.Stats
	tab   *table
	inj   *fault.Injector

	// viewPool recycles the per-copy view scratch slices used by
	// slice/resolve. View slices are per-call (taken on entry, returned on
	// exit) because Copy parks mid-call and concurrent copies interleave; a
	// single shared scratch would be clobbered. The pool is per-module (not
	// per-table) so linked modules on different engines never contend.
	viewPool [][]memsim.View
}

// SetInjector attaches a fault injector; nil (the default) disables
// injection and leaves every path identical to the fault-free module.
func (m *Module) SetInjector(in *fault.Injector) { m.inj = in }

// Injector returns the attached fault injector, or nil.
func (m *Module) Injector() *fault.Injector { return m.inj }

// New attaches a module to a memory system. Modules are carved from the
// engine's arena: a warmed shard reuses the previous module slot with its
// region and view free lists intact, so re-attaching for a repeat cell
// allocates nothing.
func New(net *memsim.Net) *Module {
	m := sim.SlabFor[Module](net.Engine().Arena()).Get()
	m.net, m.stats = net, net.Stats()
	m.inj = nil
	if m.tab == nil {
		m.tab = &table{}
	}
	m.tab.next = 0
	if m.tab.regions == nil {
		m.tab.regions = make(map[Cookie]*Region)
	} else if len(m.tab.regions) > 0 {
		// Regions left live by the previous run (leaked cookies) feed the
		// free list; recycle order is map-random but Regions are
		// indistinguishable once zeroed, so determinism is unaffected.
		for c, r := range m.tab.regions {
			delete(m.tab.regions, c)
			m.freeRegion(r)
		}
	}
	return m
}

// NewLinked attaches a module to a memory partition, sharing base's region
// table: cookies created through either module resolve through both. Used
// by partitioned worlds, where each engine drives copies through its own
// module (own stats, own scratch) against node-shared regions. The caller
// must keep region mutation on one engine per window; see table.
func NewLinked(net *memsim.Net, base *Module) *Module {
	m := sim.SlabFor[Module](net.Engine().Arena()).Get()
	m.net, m.stats = net, net.Stats()
	m.inj = nil
	m.tab = base.tab
	return m
}

// newRegion takes a Region from the pool (segs capacity preserved) or
// allocates one.
func (m *Module) newRegion() *Region {
	if k := len(m.tab.regionPool); k > 0 {
		r := m.tab.regionPool[k-1]
		m.tab.regionPool[k-1] = nil
		m.tab.regionPool = m.tab.regionPool[:k-1]
		return r
	}
	return &Region{}
}

// freeRegion recycles a region no longer reachable from the cookie table.
func (m *Module) freeRegion(r *Region) {
	segs := r.segs[:0]
	for i := range r.segs {
		r.segs[i] = memsim.View{}
	}
	*r = Region{segs: segs}
	m.tab.regionPool = append(m.tab.regionPool, r)
}

// getViews takes a scratch view slice from the pool; putViews returns it.
func (m *Module) getViews() []memsim.View {
	if k := len(m.viewPool); k > 0 {
		vs := m.viewPool[k-1]
		m.viewPool[k-1] = nil
		m.viewPool = m.viewPool[:k-1]
		return vs[:0]
	}
	return nil
}

func (m *Module) putViews(vs []memsim.View) {
	for i := range vs {
		vs[i] = memsim.View{}
	}
	m.viewPool = append(m.viewPool, vs[:0])
}

// Net returns the underlying memory simulator.
func (m *Module) Net() *memsim.Net { return m.net }

// ActiveRegions returns the number of live regions (leak checks in tests).
func (m *Module) ActiveRegions() int { return len(m.tab.regions) }

func (m *Module) trap(p *sim.Proc) {
	m.stats.KernelTraps++
	p.Wait(m.net.Machine().Spec.KernelTrap)
}

// Create declares the (possibly vectorial) views as one region owned by
// rank owner with the given direction permissions, returning its cookie.
// Beyond the trap, it charges page pinning proportional to the region size
// (get_user_pages) — the cost that makes repeated registration of the same
// buffer wasteful (§III-A).
func (m *Module) Create(p *sim.Proc, owner int, views []memsim.View, dir Direction) (Cookie, error) {
	m.trap(p)
	if len(views) == 0 {
		return 0, fmt.Errorf("knem: empty region")
	}
	if dir&(DirRead|DirWrite) == 0 {
		return 0, fmt.Errorf("knem: region with no direction permission")
	}
	var total int64
	for _, v := range views {
		total += v.Len
	}
	pages := (total + 4095) / 4096
	if m.inj != nil {
		// get_user_pages fails before any pinning cost accrues.
		switch m.inj.Create(pages) {
		case fault.NoMem:
			return 0, ErrNoMem
		case fault.Transient:
			return 0, ErrAgain
		}
	}
	p.Wait(float64(pages) * m.net.Machine().Spec.PinPerPage)
	m.tab.next++
	r := m.newRegion()
	r.cookie, r.owner, r.dir, r.total, r.pages = m.tab.next, owner, dir, total, pages
	r.segs = append(r.segs, views...)
	m.tab.regions[r.cookie] = r
	m.stats.Registrations++
	return r.cookie, nil
}

// CreateView is Create for the common single-view region, avoiding the
// caller-side slice literal.
func (m *Module) CreateView(p *sim.Proc, owner int, v memsim.View, dir Direction) (Cookie, error) {
	vs := append(m.getViews(), v)
	c, err := m.Create(p, owner, vs, dir)
	m.putViews(vs)
	return c, err
}

// Destroy deregisters a region.
func (m *Module) Destroy(p *sim.Proc, c Cookie) error {
	m.trap(p)
	r, ok := m.tab.regions[c]
	if !ok {
		return ErrInvalidCookie
	}
	delete(m.tab.regions, c)
	if m.inj != nil {
		m.inj.Release(r.pages)
	}
	m.freeRegion(r)
	return nil
}

// invalidate tears a region down behind its users' backs (injected cookie
// invalidation); the next access observes ErrInvalidCookie.
func (m *Module) invalidate(c Cookie) {
	r, ok := m.tab.regions[c]
	if !ok {
		return
	}
	delete(m.tab.regions, c)
	m.inj.Release(r.pages)
	m.freeRegion(r)
	m.stats.Invalidations++
}

// slice resolves [off, off+length) of the region's logical extent into
// concrete views across its segments, appending to out (typically a pooled
// scratch slice owned by the caller).
func (r *Region) slice(off, length int64, out []memsim.View) ([]memsim.View, error) {
	// Compare without computing off+length: the sum can overflow int64 for
	// adversarial offsets and would let a huge off slip past the check.
	if off < 0 || length < 0 || off > r.total || length > r.total-off {
		return nil, ErrRange
	}
	pos := int64(0)
	for _, s := range r.segs {
		if length == 0 {
			break
		}
		segEnd := pos + s.Len
		if off < segEnd {
			start := off - pos
			n := segEnd - off
			if n > length {
				n = length
			}
			out = append(out, s.SubView(start, n))
			off += n
			length -= n
		}
		pos = segEnd
	}
	return out, nil
}

// pairChunks walks two iovec lists in lockstep, yielding aligned pieces.
func pairChunks(a, b []memsim.View, fn func(av, bv memsim.View)) {
	ai, bi := 0, 0
	var aOff, bOff int64
	for ai < len(a) && bi < len(b) {
		av, bv := a[ai], b[bi]
		n := av.Len - aOff
		if r := bv.Len - bOff; r < n {
			n = r
		}
		fn(av.SubView(aOff, n), bv.SubView(bOff, n))
		aOff += n
		bOff += n
		if aOff == av.Len {
			ai++
			aOff = 0
		}
		if bOff == bv.Len {
			bi++
			bOff = 0
		}
	}
}

// Copy performs an inline (synchronous) single-copy transfer between local
// views and the remote region identified by cookie, executed by core —
// the caller's core in kernel mode. dir selects the access: DirRead reads
// [remoteOff, remoteOff+len(local)) of the region into local; DirWrite
// writes local into that range. The region must permit the access.
func (m *Module) Copy(p *sim.Proc, core *topology.Core, local []memsim.View, c Cookie, remoteOff int64, dir Direction) error {
	m.trap(p)
	p.Wait(m.net.Machine().Spec.CopySetup)
	if m.inj != nil {
		switch m.inj.Copy() {
		case fault.Transient:
			return ErrAgain
		case fault.Invalidated:
			m.invalidate(c)
			return ErrInvalidCookie
		}
	}
	remote, n, err := m.resolve(local, c, remoteOff, dir, m.getViews())
	if err != nil {
		return err
	}
	_ = n
	if dir == DirRead {
		pairChunks(local, remote, func(lv, rv memsim.View) {
			m.net.Copy(p, core, lv, rv)
		})
	} else {
		pairChunks(remote, local, func(rv, lv memsim.View) {
			m.net.Copy(p, core, rv, lv)
		})
	}
	m.putViews(remote)
	return nil
}

// CopyView is Copy for the common single local view, avoiding the
// caller-side slice literal.
func (m *Module) CopyView(p *sim.Proc, core *topology.Core, v memsim.View, c Cookie, remoteOff int64, dir Direction) error {
	vs := append(m.getViews(), v)
	err := m.Copy(p, core, vs, c, remoteOff, dir)
	m.putViews(vs)
	return err
}

// Op is an in-flight asynchronous copy.
type Op struct {
	pendings []*memsim.Pending
}

// Wait blocks until the operation completes.
func (o *Op) Wait(p *sim.Proc) {
	for _, pe := range o.pendings {
		pe.Wait(p)
	}
}

// Done reports completion without blocking (the status-polling model of
// KNEM's asynchronous interface).
func (o *Op) Done() bool {
	for _, pe := range o.pendings {
		if !pe.Done() {
			return false
		}
	}
	return true
}

// CopyDMA starts an asynchronous copy offloaded to the domain DMA engine
// of core (Intel I/OAT offload, §III). The calling core is free while the
// transfer progresses. Returns ErrNoDMA on machines without engines.
func (m *Module) CopyDMA(p *sim.Proc, core *topology.Core, local []memsim.View, c Cookie, remoteOff int64, dir Direction) (*Op, error) {
	m.trap(p)
	p.Wait(m.net.Machine().Spec.CopySetup)
	if m.net.Machine().DMA[core.Domain.ID] == nil {
		return nil, ErrNoDMA
	}
	if m.inj != nil {
		stall, failed := m.inj.DMA()
		if stall > 0 {
			p.Wait(stall)
		}
		if failed {
			return nil, ErrDMA
		}
	}
	remote, _, err := m.resolve(local, c, remoteOff, dir, m.getViews())
	if err != nil {
		return nil, err
	}
	op := &Op{}
	if dir == DirRead {
		pairChunks(local, remote, func(lv, rv memsim.View) {
			op.pendings = append(op.pendings, m.net.CopyDMA(core, lv, rv))
		})
	} else {
		pairChunks(remote, local, func(rv, lv memsim.View) {
			op.pendings = append(op.pendings, m.net.CopyDMA(core, rv, lv))
		})
	}
	m.putViews(remote)
	return op, nil
}

// resolve validates a copy request and returns the remote views, appended
// to buf. On error, buf is returned to the pool here; on success, the
// caller owns the returned slice and must putViews it when done.
func (m *Module) resolve(local []memsim.View, c Cookie, remoteOff int64, dir Direction, buf []memsim.View) ([]memsim.View, int64, error) {
	var err error
	switch {
	case dir != DirRead && dir != DirWrite:
		err = fmt.Errorf("knem: copy must be exactly DirRead or DirWrite")
	default:
		r, ok := m.tab.regions[c]
		switch {
		case !ok:
			err = ErrInvalidCookie
		case r.dir&dir == 0:
			err = ErrDirection
		default:
			var n int64
			for _, v := range local {
				n += v.Len
			}
			var remote []memsim.View
			remote, err = r.slice(remoteOff, n, buf)
			if err == nil {
				return remote, n, nil
			}
		}
	}
	m.putViews(buf)
	return nil, 0, err
}
