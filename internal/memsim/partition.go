package memsim

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/trace"
)

// Intra-cell partitioning splits one compiled cluster's memory system into
// several Nets that simulate disjoint link slices on separate engines: one
// Net per node (guarded to that node's link range) plus one fabric Net
// (full range, for the leader flows that cross the switch). All partitions
// share the immutable topology state of the parent Net — machine, interned
// routes, coherence-island tables — and, crucially, the groupCache objects,
// so cache residency built by a node engine is visible to the fabric engine
// once the conservative window barrier orders them.
//
// Correctness rests on two pillars:
//
//  1. The max-min solver decomposes exactly over link-disjoint flow sets:
//     a link's fixed-load and weight accumulators only ever sum the flows
//     crossing that link, so solving each partition's flows against its own
//     link slice yields bitwise the rates of the joint solve — provided no
//     flow ever spans two partitions' slices. Node partitions are
//     hard-guarded (startCopy panics on a stray link), and the collective
//     envelope keeps fabric flows off a node's links while that node has
//     flows of its own.
//  2. Cache state crosses engines only through window barriers. The
//     post-run audit (AuditPartitions) proves pillar 1's temporal side: it
//     replays the recorded flow intervals and verifies every fabric flow
//     that touched a node's link slice is at least one lookahead away from
//     every flow of that node — i.e. they sat in different windows.

// FlowSpan is the simulated-time interval one flow occupied, recorded at
// completion for the partition soundness audit.
type FlowSpan struct {
	Start, End sim.Time
}

// NewPartition creates a Net that simulates a slice of the parent's
// machine on its own engine. [linkLo, linkHi) bounds the solver's link
// loops; a partition narrower than the whole machine is guarded — any flow
// crossing a link outside the slice panics, and every flow's interval is
// recorded for AuditPartitions. bufBase offsets buffer IDs so partitions
// allocate from disjoint ID spaces (IDs are only cache-map keys; their
// values never enter timing).
//
// Call after SetClusterIslands on the parent: the island tables are shared
// by slice header, so partitions see exactly the islands in force at
// creation. stats may be nil.
func (n *Net) NewPartition(eng *sim.Engine, stats *trace.Stats, linkLo, linkHi int, bufBase int64) *Net {
	if stats == nil {
		stats = &trace.Stats{}
	}
	nl := len(n.mach.Links)
	if linkLo < 0 || linkHi > nl || linkLo >= linkHi {
		panic(fmt.Sprintf("memsim: partition link range [%d,%d) out of [0,%d)", linkLo, linkHi, nl))
	}
	p := &Net{
		eng:        eng,
		mach:       n.mach,
		stats:      stats,
		caches:     n.caches,
		bwScale:    n.bwScale,
		routeDom:   n.routeDom,
		routeGroup: n.routeGroup,
		linkNames:  n.linkNames,
		islGroupLo: n.islGroupLo,
		islGroupHi: n.islGroupHi,
		islDomLo:   n.islDomLo,
		islDomHi:   n.islDomHi,
		linkLo:     linkLo,
		linkHi:     linkHi,
		linkGuard:  linkLo > 0 || linkHi < nl,
		bufBase:    bufBase,
	}
	p.bufSlab = sim.SlabFor[Buffer](eng.Arena())
	stats.SetLinkNames(p.linkNames)
	p.linkWeight = make([]float64, nl)
	p.wfFixed = make([]float64, nl)
	p.wfWeight = make([]float64, nl)
	p.wfSat = make([]bool, nl)
	p.useMark = make([]int64, nl)
	p.useMult = make([]float64, nl)
	p.onCompletionFn = p.onCompletion
	p.repriceFn = p.flushReprice
	p.recordSpans = p.linkGuard
	return p
}

// SetAuditRanges arms a fabric partition's side of the audit: for each
// foreign link range (a node's slice), the partition records the interval
// of every one of its flows that crosses into that range.
func (n *Net) SetAuditRanges(ranges [][2]int32) {
	n.foreignRanges = ranges
	n.foreignSpans = make([][]FlowSpan, len(ranges))
	n.recordSpans = n.recordSpans || len(ranges) > 0
}

// Spans returns the recorded flow intervals of a guarded partition.
func (n *Net) Spans() []FlowSpan { return n.spans }

// ForeignSpans returns the fabric partition's recorded intervals of flows
// that crossed into foreign range i (as passed to SetAuditRanges).
func (n *Net) ForeignSpans(i int) []FlowSpan { return n.foreignSpans[i] }

// recordSpan logs a finished flow's interval: a guarded (node) partition
// records every flow; a fabric partition records the flow once per foreign
// range it crossed into.
func (n *Net) recordSpan(f *flow) {
	if n.linkGuard {
		n.spans = append(n.spans, FlowSpan{Start: f.started, End: n.eng.Now()})
		return
	}
	for ri, r := range n.foreignRanges {
		for _, u := range f.uses {
			if u.idx >= int(r[0]) && u.idx < int(r[1]) {
				n.foreignSpans[ri] = append(n.foreignSpans[ri], FlowSpan{Start: f.started, End: n.eng.Now()})
				break
			}
		}
	}
}

// AuditPartitions verifies, after a windowed run, that the partitioned rate
// solve was exact: every fabric flow that crossed into node i's link slice
// must be separated from every flow of node partition i by at least the
// lookahead. Two flows at least one lookahead apart in simulated time can
// never have shared a window, so the window barrier ordered them and
// neither could have influenced the other's rate — the per-partition
// water-filling then equals the joint one bit for bit. A violation means
// the collective's envelope assumption broke; the caller should discard
// the parallel result and rerun serially.
func AuditPartitions(fabric *Net, nodes []*Net, lookahead float64) error {
	if len(fabric.foreignSpans) != len(nodes) {
		panic("memsim: AuditPartitions node count does not match fabric audit ranges")
	}
	for i, node := range nodes {
		if err := auditPair(fabric.foreignSpans[i], node.spans, lookahead); err != nil {
			return fmt.Errorf("partition audit: node %d: %w", i, err)
		}
	}
	return nil
}

// auditPair checks every (fabric, node) span pair for a gap < lookahead.
// Spans A and B conflict iff A.Start < B.End+L && B.Start < A.End+L. Node
// spans are sorted by start with a running prefix-max of ends, so each
// fabric span costs one binary search instead of a full scan.
func auditPair(fab, node []FlowSpan, lookahead float64) error {
	if len(fab) == 0 || len(node) == 0 {
		return nil
	}
	sort.Slice(node, func(i, j int) bool { return node[i].Start < node[j].Start })
	maxEnd := make([]sim.Time, len(node))
	for i, s := range node {
		maxEnd[i] = s.End
		if i > 0 && maxEnd[i-1] > maxEnd[i] {
			maxEnd[i] = maxEnd[i-1]
		}
	}
	for _, a := range fab {
		// Node spans with Start < a.End + L are the only conflict
		// candidates; among them the one with the largest End decides.
		k := sort.Search(len(node), func(i int) bool { return node[i].Start >= a.End+lookahead })
		if k == 0 {
			continue
		}
		if maxEnd[k-1]+lookahead > a.Start {
			return fmt.Errorf("fabric flow [%.9g, %.9g] within lookahead %g of a node flow",
				a.Start, a.End, lookahead)
		}
	}
	return nil
}
