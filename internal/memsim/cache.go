package memsim

import "repro/internal/topology"

// cacheEntry tracks how many bytes of a region are resident, counted from
// the start of the region. Counting from the start models streaming access
// (collectives read/write buffers front to back, segment by segment), so a
// pipelined consumer that follows a producer hits on exactly the prefix the
// producer has already touched.
type cacheEntry struct {
	region int64
	hot    int64
	// dirty marks data produced (written) by this group and not yet
	// written back. Other groups cannot stream it faster than DRAM
	// (modified-line intervention), so remote readers get no cache path;
	// readers inside the group hit their own L3 at full speed.
	dirty bool
	prev  *cacheEntry
	next  *cacheEntry
}

// entryPool is a free list of cacheEntry nodes shared by every group cache
// of one Net (the simulation is single-threaded, so no locking). Entries
// are recycled on every eviction, invalidation, and flush; steady-state
// cache churn therefore allocates nothing.
type entryPool struct {
	free []*cacheEntry
}

func (p *entryPool) get() *cacheEntry {
	if k := len(p.free); k > 0 {
		e := p.free[k-1]
		p.free[k-1] = nil
		p.free = p.free[:k-1]
		return e
	}
	return &cacheEntry{}
}

// put returns e to the free list. Every field is zeroed here — the free
// list invariant is that pooled entries are indistinguishable from fresh
// allocations, so get() never leaks a stale prefix, dirty bit, or list
// link into a new region.
func (p *entryPool) put(e *cacheEntry) {
	*e = cacheEntry{}
	p.free = append(p.free, e)
}

// groupCache is an LRU over regions for one cache group.
type groupCache struct {
	group   *topology.CacheGroup
	entries map[int64]*cacheEntry
	head    *cacheEntry // most recently used
	tail    *cacheEntry
	used    int64
	pool    *entryPool
}

func newGroupCache(g *topology.CacheGroup, pool *entryPool) *groupCache {
	return &groupCache{group: g, entries: make(map[int64]*cacheEntry), pool: pool}
}

func (c *groupCache) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *groupCache) pushFront(e *cacheEntry) {
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// touch records that bytes [off, off+n) of region passed through this
// cache. Residency is tracked as a prefix: the resident prefix extends only
// if the touch is contiguous with it. asDest marks the data dirty (written
// here); reading keeps an existing dirty mark (MOESI Owned).
func (c *groupCache) touch(region int64, off, n int64, asDest bool) {
	if n <= 0 || n > c.group.Size {
		// A single access larger than the cache streams through: nothing
		// of it stays resident, and everything else is evicted on the
		// way — the cache pollution of §I.
		if n > c.group.Size {
			c.flush()
		}
		return
	}
	e, ok := c.entries[region]
	if !ok {
		if off != 0 {
			return // a mid-region touch of an absent region leaves no usable prefix
		}
		e = c.pool.get()
		e.region = region
		c.entries[region] = e
	} else {
		c.unlink(e)
		if off > e.hot {
			// Discontiguous touch: restart prefix tracking only if it
			// begins at 0; otherwise keep the old prefix.
			if off == 0 && n > e.hot {
				c.used -= e.hot
				e.hot = 0
			}
		}
	}
	if off <= e.hot && off+n > e.hot {
		grow := off + n - e.hot
		if e.hot+grow > c.group.Size {
			grow = c.group.Size - e.hot
		}
		e.hot += grow
		c.used += grow
	}
	if asDest {
		e.dirty = true
	}
	c.pushFront(e)
	c.evict(e)
}

// evict removes least-recently-used entries (never the protected one) until
// usage fits the capacity.
func (c *groupCache) evict(protect *cacheEntry) {
	for c.used > c.group.Size {
		victim := c.tail
		if victim == nil {
			return
		}
		if victim == protect {
			if victim.prev == nil {
				// Only the protected entry remains; trim its prefix. The
				// overshoot is clamped to the prefix so hot/used can never
				// go negative, and a prefix trimmed all the way to zero is
				// removed outright — leaving it in the map with hot=0 (and
				// a stale dirty bit) would keep dirtyOwner claiming a
				// region that resident() no longer reports.
				over := c.used - c.group.Size
				if over >= victim.hot {
					c.used -= victim.hot
					c.unlink(victim)
					delete(c.entries, victim.region)
					c.pool.put(victim)
					return
				}
				victim.hot -= over
				c.used -= over
				return
			}
			victim = victim.prev
		}
		c.used -= victim.hot
		c.unlink(victim)
		delete(c.entries, victim.region)
		c.pool.put(victim)
	}
}

// resident reports whether bytes [off, off+n) of region are cached here.
func (c *groupCache) resident(region int64, off, n int64) bool {
	e, ok := c.entries[region]
	return ok && off+n <= e.hot
}

func (c *groupCache) flush() {
	for e := c.head; e != nil; {
		next := e.next
		c.pool.put(e)
		e = next
	}
	clear(c.entries) // keeps the buckets; repeated flush/refill allocates nothing
	c.head, c.tail = nil, nil
	c.used = 0
}

// FlushCaches empties every cache group; the IMB "off-cache" protocol calls
// this between iterations.
func (n *Net) FlushCaches() {
	for _, c := range n.caches {
		c.flush()
	}
}

// InvalidateRegion drops a region from every cache (e.g. after its buffer
// is reused for unrelated data).
func (n *Net) InvalidateRegion(b *Buffer) {
	for _, c := range n.caches {
		if e, ok := c.entries[b.ID]; ok {
			c.used -= e.hot
			c.unlink(e)
			delete(c.entries, b.ID)
			c.pool.put(e)
		}
	}
}

// Resident reports whether view v is fully resident in group g's cache;
// exposed for tests and for the benchmark harness's cache accounting.
func (n *Net) Resident(g *topology.CacheGroup, v View) bool {
	return n.caches[g.ID].resident(v.Buf.ID, v.Off, v.Len)
}

// Touch records a computational access to v by core (the memory footprint
// of application compute, which the communication layer cannot see):
// an access larger than the cache pollutes it; smaller accesses become
// resident, dirty if write is set. Applications call this (through
// mpi.Rank.TouchCache) after charged compute phases so the cache model
// sees their working sets.
func (n *Net) Touch(core *topology.Core, v View, write bool) {
	n.caches[core.Group.ID].touch(v.Buf.ID, v.Off, v.Len, write)
	if write {
		n.invalidateRange(v.Buf.ID, v.Off, v.Len, core.Group, v.Buf.Domain)
	}
}

// invalidateRange removes [off, off+n) of region from every cache that can
// hold it, except the writer's (MESI-style invalidation on write). With
// coherence islands the scan covers the buffer's home island plus the
// writer's own island: entries for a region exist only in groups whose
// cores accessed it, and a core outside the home island reaches foreign
// memory solely through the transport's pair slots, executed by the two
// endpoint cores — so the union covers every group that can hold the
// region, and the invalidation effect is identical to a full scan.
func (n *Net) invalidateRange(region int64, off, length int64, except *topology.CacheGroup, home *topology.MemDomain) {
	lo, hi := 0, len(n.caches)
	if home != nil {
		lo, hi = n.homeRange(home)
	}
	n.invalidateSpan(region, off, length, except, lo, hi)
	if except != nil {
		if elo, ehi := n.islandRange(except); elo != lo {
			n.invalidateSpan(region, off, length, except, elo, ehi)
		}
	}
}

// invalidateSpan is invalidateRange's worker over one groupCache range.
func (n *Net) invalidateSpan(region int64, off, length int64, except *topology.CacheGroup, lo, hi int) {
	for _, c := range n.caches[lo:hi] {
		if c.group == except || len(c.entries) == 0 {
			continue
		}
		e, ok := c.entries[region]
		if !ok || e.hot <= off {
			continue
		}
		c.used -= e.hot - off
		e.hot = off
		if e.hot == 0 {
			c.unlink(e)
			delete(c.entries, region)
			c.pool.put(e)
		}
	}
}

// islandRange returns the half-open groupCache index range a coherence
// actor in group g may snoop. Without islands (a single machine, one
// coherence domain) that is every group; on a compiled cluster each node
// is its own island — hardware coherence does not cross the fabric, so a
// reader can neither hit nor intervene in another node's caches.
func (n *Net) islandRange(g *topology.CacheGroup) (int, int) {
	if n.islGroupLo == nil {
		return 0, len(n.caches)
	}
	return int(n.islGroupLo[g.ID]), int(n.islGroupHi[g.ID])
}

// homeRange returns the island group range of a memory domain (the groups
// that snoop addresses homed there).
func (n *Net) homeRange(d *topology.MemDomain) (int, int) {
	if n.islDomLo == nil {
		return 0, len(n.caches)
	}
	return int(n.islDomLo[d.ID]), int(n.islDomHi[d.ID])
}

// findCached returns the best cache group holding view v readable at cache
// speed by reader (closest, ties to the lowest group ID), or nil if none.
// Dirty data only serves cache-speed reads inside the owning group; remote
// readers of dirty data pay an intervention (see dirtyOwner). The scan
// covers the reader's coherence island only.
func (n *Net) findCached(reader *topology.Core, v View) *topology.CacheGroup {
	var best *topology.CacheGroup
	bestHops := 0
	lo, hi := n.islandRange(reader.Group)
	for _, c := range n.caches[lo:hi] {
		if len(c.entries) == 0 {
			continue
		}
		e, ok := c.entries[v.Buf.ID]
		if !ok || v.Off+v.Len > e.hot {
			continue
		}
		if e.dirty && c.group != reader.Group {
			continue
		}
		h := n.mach.Hops(reader.Vertex, c.group.Vertex)
		if best == nil || h < bestHops {
			best, bestHops = c.group, h
		}
	}
	return best
}

// dirtyOwner returns the remote group holding view v dirty, if any. A read
// by another group is then a modified-line intervention: the data streams
// from the owner's cache across the interconnect and is written back to
// its home memory — no faster than DRAM, and it loads the path to the
// owner.
func (n *Net) dirtyOwner(reader *topology.Core, v View) *topology.CacheGroup {
	lo, hi := n.islandRange(reader.Group)
	for _, c := range n.caches[lo:hi] {
		if c.group == reader.Group || len(c.entries) == 0 {
			continue
		}
		if e := c.entries[v.Buf.ID]; e != nil && e.dirty && c.resident(v.Buf.ID, v.Off, v.Len) {
			return c.group
		}
	}
	return nil
}
