package memsim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/topology"
)

// referenceRates is the pre-optimization water-filling solver, kept as the
// executable specification: straightforward progressive filling over maps,
// independent of the incremental bookkeeping (linkWeight, fast paths,
// scratch arrays) the production solver relies on.
func referenceRates(n *Net) map[*flow]float64 {
	nl := len(n.mach.Links)
	fixedLoad := make([]float64, nl)
	weight := make([]float64, nl)
	unfixed := make(map[*flow]bool, len(n.flows))
	rates := make(map[*flow]float64, len(n.flows))
	for _, f := range n.flows {
		unfixed[f] = true
		for _, u := range f.uses {
			weight[u.link.Index] += u.mult
		}
	}
	for len(unfixed) > 0 {
		share := math.Inf(1)
		for i := 0; i < nl; i++ {
			if weight[i] <= 0 {
				continue
			}
			if s := (n.linkBW(i) - fixedLoad[i]) / weight[i]; s < share {
				share = s
			}
		}
		if share < 0 {
			share = 0
		}
		saturated := make([]bool, nl)
		for i := 0; i < nl; i++ {
			if weight[i] <= 0 {
				continue
			}
			if s := (n.linkBW(i) - fixedLoad[i]) / weight[i]; s <= share*(1+1e-12) {
				saturated[i] = true
			}
		}
		progress := false
		for _, f := range n.flows {
			if !unfixed[f] {
				continue
			}
			bottled := false
			for _, u := range f.uses {
				if saturated[u.link.Index] {
					bottled = true
					break
				}
			}
			if bottled {
				rates[f] = share
				delete(unfixed, f)
				progress = true
				for _, u := range f.uses {
					fixedLoad[u.link.Index] += share * u.mult
					weight[u.link.Index] -= u.mult
				}
			}
		}
		if !progress {
			panic("reference water-filling made no progress")
		}
	}
	return rates
}

// checkAgainstReference compares every active flow's rate with the
// brute-force reference and verifies no link is loaded past its capacity.
func checkAgainstReference(t *testing.T, n *Net, where string) {
	t.Helper()
	want := referenceRates(n)
	for _, f := range n.flows {
		w := want[f]
		if math.Abs(f.rate-w) > 1e-9*w {
			t.Fatalf("%s: flow %d rate %.12e, reference %.12e", where, f.seq, f.rate, w)
		}
	}
	load := make([]float64, len(n.mach.Links))
	for _, f := range n.flows {
		for _, u := range f.uses {
			load[u.idx] += f.rate * u.mult
		}
	}
	for i, l := range load {
		if bw := n.linkBW(i); l > bw*(1+1e-9) {
			t.Fatalf("%s: link %s overloaded: %.12e > %.12e", where, n.mach.Links[i].Name, l, bw)
		}
	}
}

// TestSolverMatchesBruteForce drives random copy schedules — random cores,
// domains, sizes, and start times, so adds and completions interleave and
// both the incremental fast paths and the full recompute trigger — and
// checks the production rates against the reference solver after every
// add. Rates settle at the end of the instant (reprices are burst-batched
// through the engine's Defer hook), so the check is deferred to run right
// after the Net's own flush.
func TestSolverMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	machines := []*topology.Machine{topology.Dancer(), topology.Saturn(), topology.IG()}
	for trial := 0; trial < 12; trial++ {
		m := machines[trial%len(machines)]
		e, n := setup(m)
		checks := 0
		for c := 0; c < 40; c++ {
			core := m.Cores[rng.Intn(m.NCores())]
			src := n.Alloc(m.Domains[rng.Intn(len(m.Domains))], 4*MB, false)
			dst := n.Alloc(m.Domains[rng.Intn(len(m.Domains))], 4*MB, false)
			size := int64(1 + rng.Intn(1<<20))
			at := rng.Float64() * 1e-3
			e.Schedule(at, func() {
				n.CopyAsync(core, dst.View(0, size), src.View(0, size))
				e.Defer(func() {
					checkAgainstReference(t, n, "after add")
					checks++
				})
			})
		}
		if err := e.Run(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if checks != 40 {
			t.Fatalf("trial %d: ran %d checks, want 40", trial, checks)
		}
		if n.Busy() != 0 {
			t.Fatalf("trial %d: %d flows leaked", trial, n.Busy())
		}
	}
}

// TestBurstRepriceCoalesced pins the batching: a burst of k contending
// copies starting at one instant costs exactly one water-filling solve,
// and the rates standing at the end of the instant match the brute-force
// reference over the final flow set.
func TestBurstRepriceCoalesced(t *testing.T) {
	m := topology.Saturn()
	e, n := setup(m)
	const k = 12
	var views [k]struct{ dst, src View }
	for i := 0; i < k; i++ {
		src := n.Alloc(m.Domains[i%2], MB, false)
		dst := n.Alloc(m.Domains[(i+1)%2], MB, false)
		views[i].dst, views[i].src = dst.Whole(), src.Whole()
	}
	e.Schedule(1e-6, func() {
		before := n.rateSolves
		for i := 0; i < k; i++ {
			n.CopyAsync(m.Cores[i], views[i].dst, views[i].src)
		}
		if got := n.rateSolves - before; got != 0 {
			t.Errorf("burst of %d adds solved %d times mid-instant, want 0 (deferred)", k, got)
		}
		e.Defer(func() {
			if got := n.rateSolves - before; got != 1 {
				t.Errorf("burst of %d adds cost %d solves, want 1", k, got)
			}
			checkAgainstReference(t, n, "after burst")
		})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Busy() != 0 {
		t.Fatalf("%d flows leaked", n.Busy())
	}
}

// TestRescheduleAllocationFree pins the tentpole property: after warm-up,
// a full reschedule — cancel the completion event, rerun water-filling over
// every flow, schedule the next completion — performs zero allocations.
func TestRescheduleAllocationFree(t *testing.T) {
	for _, nFlows := range []int{4, 48} {
		n := contended(nFlows)
		n.reschedule() // warm the event pool and scratch
		if avg := testing.AllocsPerRun(100, func() { n.reschedule() }); avg != 0 {
			t.Errorf("reschedule with %d flows: %.2f allocs/run, want 0", nFlows, avg)
		}
	}
}

// TestDisjointFastPathExact verifies the incremental fast path bit-for-bit:
// a flow sharing no link with the active set must get exactly the rate the
// full solver would assign, with every other rate left untouched.
func TestDisjointFastPathExact(t *testing.T) {
	m := topology.Dancer()
	e, n := setup(m)
	d0, d1 := m.Domains[0], m.Domains[1]
	// Two flows contending on domain 0's bus.
	for i := 0; i < 2; i++ {
		src := n.Alloc(d0, MB, false)
		dst := n.Alloc(d0, MB, false)
		n.CopyAsync(d0.Cores[i], dst.Whole(), src.Whole())
	}
	before := []float64{n.flows[0].rate, n.flows[1].rate}
	// A third flow entirely inside domain 1: no shared link.
	src := n.Alloc(d1, MB, false)
	dst := n.Alloc(d1, MB, false)
	n.CopyAsync(d1.Cores[0], dst.Whole(), src.Whole())
	if n.flows[0].rate != before[0] || n.flows[1].rate != before[1] {
		t.Fatal("disjoint add changed unrelated rates")
	}
	want := referenceRates(n)
	for _, f := range n.flows {
		if f.rate != want[f] {
			t.Fatalf("flow %d rate %.17g != full solve %.17g", f.seq, f.rate, want[f])
		}
	}
	_ = e
}

// TestCompletionWithUnpricedSurvivor pins the regression where a copy is
// added at the exact instant the only rated flow completes. The add fires
// first (earlier seq), zeroes the finishing flow's remaining via advance,
// and reschedules the completion at the current instant; the completion
// then fires before the end-of-instant flush has priced the newcomer. At
// that point every surviving flow still has rate 0, and the provisional
// completion target must land strictly in the future — scheduling it at
// the current instant loops onCompletion/scheduleProvisional forever and
// starves the flush that would assign the rate.
func TestCompletionWithUnpricedSurvivor(t *testing.T) {
	m := topology.Dancer()
	d := m.Domains[0]

	// Pass 1: one copy alone, to learn its exact completion instant.
	e1, n1 := setup(m)
	src1 := n1.Alloc(d, MB, false)
	dst1 := n1.Alloc(d, MB, false)
	e1.Schedule(1e-6, func() {
		n1.CopyAsync(d.Cores[0], dst1.Whole(), src1.Whole())
	})
	if err := e1.Run(); err != nil {
		t.Fatal(err)
	}
	done := e1.Now()

	// Pass 2: same copy, plus a contending copy starting at exactly the
	// completion instant. The watchdog turns the historical same-instant
	// livelock into a test failure instead of a hang.
	e2, n2 := setup(m)
	e2.SetMaxEvents(10_000)
	src2 := n2.Alloc(d, MB, false)
	dst2 := n2.Alloc(d, MB, false)
	src3 := n2.Alloc(d, MB, false)
	dst3 := n2.Alloc(d, MB, false)
	e2.Schedule(1e-6, func() {
		n2.CopyAsync(d.Cores[0], dst2.Whole(), src2.Whole())
	})
	e2.Schedule(done, func() {
		n2.CopyAsync(d.Cores[1], dst3.Whole(), src3.Whole())
		e2.Defer(func() {
			checkAgainstReference(t, n2, "after same-instant add")
		})
	})
	if err := e2.Run(); err != nil {
		t.Fatalf("same-instant add livelocked: %v", err)
	}
	if n2.Busy() != 0 {
		t.Fatalf("%d flows leaked", n2.Busy())
	}
}
