package memsim

import (
	"runtime"
	"runtime/debug"
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

// checkCacheAccounting verifies the groupCache invariant that used is
// exactly the sum of the resident prefixes.
func checkCacheAccounting(t *testing.T, c *groupCache) {
	t.Helper()
	var sum int64
	for _, e := range c.entries {
		sum += e.hot
	}
	if sum != c.used {
		t.Fatalf("group %d: used=%d but entries sum to %d", c.group.ID, c.used, sum)
	}
}

// coreIn returns a core belonging to cache group g.
func coreIn(t *testing.T, m *topology.Machine, g int) *topology.Core {
	t.Helper()
	for _, c := range m.Cores {
		if c.Group.ID == g {
			return c
		}
	}
	t.Fatalf("no core in group %d", g)
	return nil
}

// TestEvictTrimsProtectedDirtyEntry is the regression test for the
// protected-entry branch of evict: when capacity pressure reaches the one
// entry evict must not remove, the overshoot is clamped to the entry's
// prefix, and a prefix trimmed all the way to zero removes the entry
// outright. The old code could leave a hot=0 entry in the map with a stale
// dirty bit, so dirtyOwner kept claiming a region resident() no longer
// reported.
func TestEvictTrimsProtectedDirtyEntry(t *testing.T) {
	m := topology.Dancer()
	e, n := setup(m)
	d0 := m.Domains[0]
	src := n.Alloc(d0, 128<<10, false)
	dst := n.Alloc(d0, 128<<10, false)
	run1(t, e, func(p *sim.Proc) {
		n.Copy(p, m.Cores[0], dst.Whole(), src.Whole()) // dst dirty, src clean in group 0
	})
	c := n.caches[0]
	entry := c.entries[dst.ID]
	if entry == nil || !entry.dirty {
		t.Fatal("copy did not leave dst dirty in group 0")
	}
	remote := m.Domains[1].Cores[0]
	if n.dirtyOwner(remote, dst.Whole()) != m.Groups[0] {
		t.Fatal("group 0 does not own dst dirty before the trim")
	}

	// Partial trim: shrink capacity to half the dirty entry. The clean src
	// entry goes first; the protected dirty entry is then clamped, not
	// removed.
	m.Groups[0].Size = 64 << 10
	c.evict(entry)
	if c.entries[dst.ID] != entry || entry.hot != 64<<10 || !entry.dirty {
		t.Fatalf("partial trim: entry=%v hot=%d dirty=%v, want the same entry at hot=%d dirty",
			c.entries[dst.ID], entry.hot, entry.dirty, 64<<10)
	}
	checkCacheAccounting(t, c)
	if !n.Resident(m.Groups[0], dst.View(0, 64<<10)) {
		t.Fatal("partial trim dropped the surviving prefix")
	}
	if n.Resident(m.Groups[0], dst.Whole()) {
		t.Fatal("partial trim left the full region resident")
	}

	// Full trim: with zero capacity the protected entry's prefix goes to
	// zero and the entry must leave the map entirely — resident and
	// dirtyOwner have to agree that nothing is cached.
	m.Groups[0].Size = 0
	c.evict(entry)
	if len(c.entries) != 0 || c.used != 0 || c.head != nil || c.tail != nil {
		t.Fatalf("full trim left residue: %d entries, used=%d, head=%p, tail=%p",
			len(c.entries), c.used, c.head, c.tail)
	}
	if n.Resident(m.Groups[0], dst.View(0, 1)) {
		t.Fatal("resident still reports a trimmed-to-zero entry")
	}
	if g := n.dirtyOwner(remote, dst.Whole()); g != nil {
		t.Fatalf("dirtyOwner still claims group %d for a region resident() no longer reports", g.ID)
	}
}

// TestInvalidateRegionWithInFlightCopy invalidates a source region while a
// copy reading it is in flight. The copy was priced at start time (cache
// hit) and its completion re-touches both views, so the cache must come
// back consistent even though the invalidation recycled the entry into the
// pool mid-flight.
func TestInvalidateRegionWithInFlightCopy(t *testing.T) {
	m := topology.Dancer()
	e, n := setup(m)
	d0 := m.Domains[0]
	a := n.Alloc(d0, 64<<10, false)
	t0 := n.Alloc(d0, 64<<10, false)
	t1 := n.Alloc(d0, 64<<10, false)
	run1(t, e, func(p *sim.Proc) {
		n.Copy(p, m.Cores[0], t0.Whole(), a.Whole()) // a now clean in group 0
		hits := n.Stats().CacheHits
		pe := n.CopyAsync(m.Cores[1], t1.Whole(), a.Whole())
		if n.Stats().CacheHits != hits+1 {
			t.Fatal("in-flight read of the cached source was not priced as a hit")
		}
		n.InvalidateRegion(a)
		if n.Resident(m.Groups[0], a.Whole()) {
			t.Fatal("InvalidateRegion left the source resident with a copy in flight")
		}
		pe.Wait(p)
		// Completion re-touches: a returns clean, t1 dirty in group 0.
		if !n.Resident(m.Groups[0], a.Whole()) {
			t.Fatal("finished copy did not re-establish its source")
		}
		if !n.Resident(m.Groups[0], t1.Whole()) {
			t.Fatal("finished copy did not leave its destination resident")
		}
		if n.dirtyOwner(m.Domains[1].Cores[0], t1.Whole()) != m.Groups[0] {
			t.Fatal("destination of the finished copy is not dirty in group 0")
		}
	})
	checkCacheAccounting(t, n.caches[0])
}

// TestFindCachedTieBreaksToLowestGroupID pins the documented tie-break:
// among caches holding the view at equal hop distance, findCached serves
// from the lowest group ID. Zoot's per-pair L2 groups give two groups on
// the same remote socket, trivially equidistant from a socket-0 reader.
func TestFindCachedTieBreaksToLowestGroupID(t *testing.T) {
	m := topology.Zoot()
	e, n := setup(m)
	a := n.Alloc(m.Domains[0], 64<<10, false)
	t4 := n.Alloc(m.Domains[0], 64<<10, false)
	t2 := n.Alloc(m.Domains[0], 64<<10, false)
	run1(t, e, func(p *sim.Proc) {
		// Warm a (clean) into groups 4 then 2; warm the higher ID first so
		// recency cannot masquerade as the tie-break.
		n.Copy(p, coreIn(t, m, 4), t4.Whole(), a.Whole())
		n.Copy(p, coreIn(t, m, 2), t2.Whole(), a.Whole())
	})
	reader := coreIn(t, m, 0)
	if !n.Resident(m.Groups[2], a.Whole()) || !n.Resident(m.Groups[4], a.Whole()) {
		t.Fatal("warm-up did not leave a clean in groups 2 and 4")
	}
	h2 := m.Hops(reader.Vertex, m.Groups[2].Vertex)
	h4 := m.Hops(reader.Vertex, m.Groups[4].Vertex)
	if h2 != h4 {
		t.Fatalf("test premise broken: hops to group 2 (%d) != hops to group 4 (%d)", h2, h4)
	}
	if got := n.findCached(reader, a.Whole()); got != m.Groups[2] {
		t.Errorf("findCached picked group %d, want 2 (lowest ID at equal hops)", got.ID)
	}
}

// TestCopyHotPathAllocationFree pins the tentpole claim directly in the
// test suite: after a short warm-up, the blocking Copy lifecycle
// (startCopy, rate updates, completion dispatch, cache touches) allocates
// nothing. GC is disabled during the measured window so the malloc counter
// only sees the copy path itself.
func TestCopyHotPathAllocationFree(t *testing.T) {
	m := topology.IG()
	e := sim.NewEngine()
	n := New(e, m, nil)
	src := n.Alloc(m.Domains[0], MB, false)
	dst := n.Alloc(m.Domains[1], MB, false)
	var got uint64
	e.Spawn("t", func(p *sim.Proc) {
		for i := 0; i < 64; i++ { // warm pools, FIFO rings, stats counters
			n.Copy(p, m.Cores[0], dst.View(0, 64<<10), src.View(0, 64<<10))
		}
		defer debug.SetGCPercent(debug.SetGCPercent(-1))
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		for i := 0; i < 512; i++ {
			n.Copy(p, m.Cores[0], dst.View(0, 64<<10), src.View(0, 64<<10))
		}
		runtime.ReadMemStats(&after)
		got = after.Mallocs - before.Mallocs
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("512 warm copies allocated %d objects, want 0", got)
	}
}
