package memsim

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

// The completion instant of every flow is computed in floating point, so a
// flow may be fractionally below zero bytes when it is depleted. depleteTo
// clamps drift up to finishEps and panics beyond it — a flow finishing
// with meaningfully negative remaining bytes means the scheduler lost
// track of it (e.g. a missed reschedule after a rate change), which must
// never be absorbed silently.

func driftFlow(remaining, rate float64, since sim.Time) *flow {
	return &flow{remaining: remaining, rate: rate, seq: 999, last: since}
}

func TestDepleteClampsSubEpsDrift(t *testing.T) {
	// Depletes 2e-4 bytes against 1e-4 remaining: 1e-4 bytes of overshoot,
	// inside the finishEps tolerance — clamped to exactly zero.
	f := driftFlow(1e-4, 1, -2e-4)
	f.depleteTo(0)
	if f.remaining != 0 {
		t.Fatalf("remaining = %g, want clamp to 0", f.remaining)
	}
	if f.last != 0 {
		t.Fatalf("last = %g, want 0", f.last)
	}
}

func TestDepleteOvershootBeyondEpsPanics(t *testing.T) {
	// A full simulated second at 1 B/s against 1e-4 remaining bytes: ~1
	// byte of overshoot, far past finishEps — the drift guard must fire.
	f := driftFlow(1e-4, 1, -1)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("depleteTo absorbed a >finishEps overshoot silently")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "overshot completion") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	f.depleteTo(0)
}

// TestManyTinyFlowsNoDriftAccumulation is the end-to-end regression: long
// chains of sub-fragment copies (1..16 bytes) from concurrent producers
// never trip the overshoot guard, leak a flow, or stall.
func TestManyTinyFlowsNoDriftAccumulation(t *testing.T) {
	m := topology.Dancer()
	e, n := setup(m)
	const perProc = 4000
	for pi := 0; pi < 3; pi++ {
		core := m.Cores[pi]
		src := n.Alloc(m.Domains[0], 64, false)
		dst := n.Alloc(m.Domains[pi%len(m.Domains)], 64, false)
		e.Spawn("tiny", func(p *sim.Proc) {
			for i := 0; i < perProc; i++ {
				sz := int64(1 + i%16)
				n.Copy(p, core, dst.View(0, sz), src.View(0, sz))
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Busy() != 0 {
		t.Fatalf("%d flows leaked", n.Busy())
	}
	if got := n.Stats().Copies; got != 3*perProc {
		t.Fatalf("completed %d copies, want %d", got, 3*perProc)
	}
}
