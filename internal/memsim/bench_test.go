package memsim

import (
	"fmt"
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

// contended installs nFlows concurrent copies on IG, all crossing shared
// memory buses and interconnects, without running the engine — the state
// recomputeRates/reschedule see on every flow event of a dense collective.
func contended(nFlows int) *Net {
	m := topology.IG()
	e := sim.NewEngine()
	n := New(e, m, nil)
	for i := 0; i < nFlows; i++ {
		core := m.Cores[i%m.NCores()]
		src := n.Alloc(m.Domains[i%len(m.Domains)], MB, false)
		dst := n.Alloc(m.Domains[(i+1)%len(m.Domains)], MB, false)
		n.CopyAsync(core, dst.Whole(), src.Whole())
	}
	return n
}

// BenchmarkRecomputeRates is the water-filling solver alone: one full
// max-min fair rate computation over nFlows contending flows.
func BenchmarkRecomputeRates(b *testing.B) {
	for _, nFlows := range []int{4, 16, 48, 96} {
		b.Run(fmt.Sprintf("flows%d", nFlows), func(b *testing.B) {
			n := contended(nFlows)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n.recomputeRates()
			}
		})
	}
}

// BenchmarkReschedule is the full per-flow-event path: cancel the pending
// completion, recompute rates, find the next completion, schedule it.
func BenchmarkReschedule(b *testing.B) {
	for _, nFlows := range []int{4, 48} {
		b.Run(fmt.Sprintf("flows%d", nFlows), func(b *testing.B) {
			n := contended(nFlows)
			n.reschedule() // warm the event pool and scratch arrays
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n.reschedule()
			}
		})
	}
}

// BenchmarkCopyChurn is the end-to-end flow lifecycle: each op is one
// 64 KiB copy (startCopy, two rate updates, completion dispatch) with
// steady background contention from a second in-flight copy stream.
func BenchmarkCopyChurn(b *testing.B) {
	m := topology.IG()
	e := sim.NewEngine()
	n := New(e, m, nil)
	src := n.Alloc(m.Domains[0], MB, false)
	dst := n.Alloc(m.Domains[1], MB, false)
	src2 := n.Alloc(m.Domains[2], MB, false)
	dst2 := n.Alloc(m.Domains[3], MB, false)
	b.ReportAllocs()
	b.ResetTimer()
	e.Spawn("bg", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			n.Copy(p, m.Cores[12], dst2.View(0, 64<<10), src2.View(0, 64<<10))
		}
	})
	e.Spawn("fg", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			n.Copy(p, m.Cores[0], dst.View(0, 64<<10), src.View(0, 64<<10))
		}
	})
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
