// Package memsim simulates the memory system of a multi-socket machine at
// flow level: concurrent copies contend for link bandwidth under max-min
// fair sharing, last-level caches short-circuit reads of recently touched
// regions, and every transfer is executed by a specific core (or DMA
// engine) whose own copy bandwidth bounds it.
//
// This is the substrate substituting for the paper's physical testbed. The
// three effects the paper's collectives exploit all emerge from it:
//
//   - a single core cannot saturate a memory bus, so spreading copies over
//     the receiving cores (KNEM direction control) raises throughput;
//   - copy-in/copy-out doubles bus traffic and evicts useful cache lines;
//   - topology-oblivious schedules push traffic across slow inter-socket
//     and inter-board links that locality-aware schedules avoid.
//
// Buffers optionally carry real bytes so the full MPI stack above can be
// validated end-to-end for correctness, or can be "phantom" (metadata only)
// for large benchmark sweeps.
package memsim

import (
	"fmt"

	"repro/internal/topology"
)

// Buffer is a contiguous allocation homed on a memory domain. Buffers are
// identified by ID for cache tracking; Views share the ID of their parent.
type Buffer struct {
	ID     int64
	Domain *topology.MemDomain
	Size   int64
	// Data backs the buffer with real bytes when allocated with data;
	// nil for phantom buffers used in timing-only experiments.
	Data []byte
}

// View selects [Off, Off+Len) of a buffer.
type View struct {
	Buf *Buffer
	Off int64
	Len int64
}

// Alloc creates a buffer of size bytes homed on domain d. withData selects
// a real backing array. Buffers live in the engine's arena and are valid
// until the engine's next Reset; a warmed shard hands out recycled slots
// (with their backing arrays, zeroed) instead of heap allocations.
func (n *Net) Alloc(d *topology.MemDomain, size int64, withData bool) *Buffer {
	if size < 0 {
		panic("memsim: negative allocation")
	}
	n.nextBuf++
	b := n.bufSlab.Get()
	// bufBase keeps partition ID spaces disjoint; zero outside partitions.
	b.ID, b.Domain, b.Size = n.bufBase+n.nextBuf, d, size
	if !withData {
		b.Data = nil
	} else if int64(cap(b.Data)) >= size {
		b.Data = b.Data[:size]
		clear(b.Data)
	} else {
		b.Data = make([]byte, size)
	}
	return b
}

// Whole returns a view of the entire buffer.
func (b *Buffer) Whole() View { return View{Buf: b, Off: 0, Len: b.Size} }

// View selects a sub-range; it panics if the range is out of bounds.
func (b *Buffer) View(off, length int64) View {
	if off < 0 || length < 0 || off+length > b.Size {
		panic(fmt.Sprintf("memsim: view [%d,%d) out of buffer size %d", off, off+length, b.Size))
	}
	return View{Buf: b, Off: off, Len: length}
}

// Bytes returns the backing bytes of the view (nil for phantom buffers).
func (v View) Bytes() []byte {
	if v.Buf.Data == nil {
		return nil
	}
	return v.Buf.Data[v.Off : v.Off+v.Len]
}

// SubView narrows the view; offsets are relative to the view.
func (v View) SubView(off, length int64) View {
	if off < 0 || length < 0 || off+length > v.Len {
		panic(fmt.Sprintf("memsim: subview [%d,%d) out of view len %d", off, off+length, v.Len))
	}
	return View{Buf: v.Buf, Off: v.Off + off, Len: length}
}
