package memsim

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
)

// driveResetSchedule runs a fixed randomized copy schedule — contending
// and disjoint flows, cache reuse across copies, staggered starts — and
// returns every completion time (exact bits) plus the final stats.
func driveResetSchedule(e *sim.Engine, n *Net, m *topology.Machine) ([]uint64, trace.Stats) {
	rng := rand.New(rand.NewSource(99))
	var ends []uint64
	for c := 0; c < 24; c++ {
		core := m.Cores[rng.Intn(m.NCores())]
		src := n.Alloc(m.Domains[rng.Intn(len(m.Domains))], 2*MB, false)
		dst := n.Alloc(m.Domains[rng.Intn(len(m.Domains))], 2*MB, false)
		size := int64(1 + rng.Intn(MB))
		at := rng.Float64() * 1e-4
		e.Schedule(at, func() {
			e.Spawn("copier", func(p *sim.Proc) {
				n.Copy(p, core, dst.View(0, size), src.View(0, size))
				ends = append(ends, math.Float64bits(p.Now()))
			})
		})
	}
	if err := e.Run(); err != nil {
		panic(err)
	}
	return ends, n.Stats().Snapshot()
}

// TestNetResetBitIdentical pins the reuse contract behind the sharded
// sweep runner: a Reset engine/net pair replays a schedule with exactly
// the completion times and counters of freshly constructed ones.
func TestNetResetBitIdentical(t *testing.T) {
	m := topology.Saturn()
	fe, fn := setup(m)
	wantEnds, wantStats := driveResetSchedule(fe, fn, m)

	e, n := setup(m)
	driveResetSchedule(e, n, m) // dirty both
	for round := 0; round < 3; round++ {
		e.Reset()
		n.Reset(nil)
		if n.Busy() != 0 || n.nextBuf != 0 || n.flowSeq != 0 {
			t.Fatalf("round %d: reset net not clean: busy=%d nextBuf=%d flowSeq=%d",
				round, n.Busy(), n.nextBuf, n.flowSeq)
		}
		gotEnds, gotStats := driveResetSchedule(e, n, m)
		if len(gotEnds) != len(wantEnds) {
			t.Fatalf("round %d: %d completions, fresh %d", round, len(gotEnds), len(wantEnds))
		}
		for i := range gotEnds {
			if gotEnds[i] != wantEnds[i] {
				t.Fatalf("round %d: completion %d time bits %016x, fresh %016x",
					round, i, gotEnds[i], wantEnds[i])
			}
		}
		if !reflect.DeepEqual(gotStats, wantStats) {
			t.Fatalf("round %d: stats diverged:\ngot   %v\nfresh %v", round, gotStats.String(), wantStats.String())
		}
	}
}
