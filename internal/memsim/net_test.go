package memsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/topology"
)

const MB = 1 << 20

func setup(m *topology.Machine) (*sim.Engine, *Net) {
	e := sim.NewEngine()
	return e, New(e, m, nil)
}

func approx(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol*want {
		t.Fatalf("%s = %.6g, want %.6g (tol %g)", what, got, want, tol)
	}
}

func TestSingleLocalCopyEngineBound(t *testing.T) {
	m := topology.Dancer()
	e, n := setup(m)
	d0 := m.Domains[0]
	src := n.Alloc(d0, MB, false)
	dst := n.Alloc(d0, MB, false)
	var end sim.Time
	e.Spawn("p", func(p *sim.Proc) {
		n.Copy(p, m.Cores[0], dst.Whole(), src.Whole())
		end = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Engine 4.5 GB/s binds (bus would allow 16/2 = 8 GB/s).
	approx(t, end, float64(MB)/4.5e9, 1e-6, "copy time")
}

func TestBusSaturationManyCores(t *testing.T) {
	m := topology.Dancer()
	e, n := setup(m)
	d0 := m.Domains[0]
	var end sim.Time
	for i := 0; i < 4; i++ {
		c := d0.Cores[i]
		src := n.Alloc(d0, MB, false)
		dst := n.Alloc(d0, MB, false)
		e.Spawn("p", func(p *sim.Proc) {
			n.Copy(p, c, dst.Whole(), src.Whole())
			if p.Now() > end {
				end = p.Now()
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// 4 flows × weight 2 on the 16 GB/s bus → 2 GB/s each (engines allow 4.5).
	approx(t, end, float64(MB)/2e9, 1e-6, "saturated time")
}

func TestCrossDomainUsesQPI(t *testing.T) {
	m := topology.Dancer()
	e, n := setup(m)
	src := n.Alloc(m.Domains[1], MB, false)
	dst := n.Alloc(m.Domains[0], MB, false)
	e.Spawn("p", func(p *sim.Proc) {
		n.Copy(p, m.Cores[0], dst.Whole(), src.Whole())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Stats().LinkBytes["qpi"] != MB {
		t.Fatalf("qpi bytes = %d, want %d", n.Stats().LinkBytes["qpi"], MB)
	}
	if n.Stats().LinkBytes["mem0"] != MB || n.Stats().LinkBytes["mem1"] != MB {
		t.Fatalf("bus bytes = %v", n.Stats().LinkBytes)
	}
}

func TestDataActuallyCopied(t *testing.T) {
	m := topology.Zoot()
	e, n := setup(m)
	src := n.Alloc(m.Domains[0], 1024, true)
	dst := n.Alloc(m.Domains[0], 1024, true)
	for i := range src.Data {
		src.Data[i] = byte(i * 7)
	}
	e.Spawn("p", func(p *sim.Proc) {
		n.Copy(p, m.Cores[0], dst.View(0, 512), src.View(512, 512))
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 512; i++ {
		if dst.Data[i] != src.Data[512+i] {
			t.Fatalf("byte %d: got %d want %d", i, dst.Data[i], src.Data[512+i])
		}
	}
	for i := 512; i < 1024; i++ {
		if dst.Data[i] != 0 {
			t.Fatalf("byte %d overwritten", i)
		}
	}
}

func TestZeroLengthCopyInstant(t *testing.T) {
	m := topology.Zoot()
	e, n := setup(m)
	b := n.Alloc(m.Domains[0], 16, false)
	e.Spawn("p", func(p *sim.Proc) {
		n.Copy(p, m.Cores[0], b.View(0, 0), b.View(0, 0))
		if p.Now() != 0 {
			t.Errorf("zero copy took time %g", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Stats().Copies != 0 {
		t.Errorf("zero copy counted")
	}
}

// The root-serialization effect (§III-A): one core pushing to 4 peers is
// slower than 4 peers each pulling their own copy.
func TestParallelPullBeatsSerialPush(t *testing.T) {
	m := topology.Dancer()
	run := func(parallel bool) sim.Time {
		e, n := setup(m)
		d0, d1 := m.Domains[0], m.Domains[1]
		src := n.Alloc(d0, 4*MB, false)
		dsts := make([]*Buffer, 4)
		for i := range dsts {
			dsts[i] = n.Alloc(d1, 4*MB, false)
		}
		var end sim.Time
		if parallel {
			for i := range dsts {
				i := i
				e.Spawn("r", func(p *sim.Proc) {
					n.Copy(p, d1.Cores[i], dsts[i].Whole(), src.Whole())
					if p.Now() > end {
						end = p.Now()
					}
				})
			}
		} else {
			e.Spawn("root", func(p *sim.Proc) {
				for i := range dsts {
					n.Copy(p, d0.Cores[0], dsts[i].Whole(), src.Whole())
				}
				end = p.Now()
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return end
	}
	serial, par := run(false), run(true)
	if par >= serial {
		t.Fatalf("parallel pull (%g) not faster than serial push (%g)", par, serial)
	}
	// 4 pulls: QPI 11 GB/s shared by 4 → 2.75 each; serial: 4×4MB at 3? engine 4.5 vs qpi 11: 4.5 binds per copy.
	approx(t, serial, 16*float64(MB)/4.5e9, 1e-6, "serial")
	approx(t, par, 16*float64(MB)/11e9, 1e-6, "parallel")
}

func TestCacheHitAfterTouch(t *testing.T) {
	m := topology.Dancer()
	e, n := setup(m)
	d0 := m.Domains[0]
	a := n.Alloc(d0, MB, false)
	b := n.Alloc(d0, MB, false)
	c := n.Alloc(d0, MB, false)
	e.Spawn("p", func(p *sim.Proc) {
		n.Copy(p, m.Cores[0], b.Whole(), a.Whole()) // warms a and b in group 0
		n.Copy(p, m.Cores[1], c.Whole(), b.Whole()) // same group: hit on b
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Stats().CacheHits != 1 || n.Stats().CacheMisses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", n.Stats().CacheHits, n.Stats().CacheMisses)
	}
}

func TestCacheFlush(t *testing.T) {
	m := topology.Dancer()
	e, n := setup(m)
	d0 := m.Domains[0]
	a := n.Alloc(d0, MB, false)
	b := n.Alloc(d0, MB, false)
	e.Spawn("p", func(p *sim.Proc) {
		n.Copy(p, m.Cores[0], b.Whole(), a.Whole())
		n.FlushCaches()
		n.Copy(p, m.Cores[0], b.Whole(), a.Whole())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Stats().CacheHits != 0 {
		t.Fatalf("hits=%d after flush, want 0", n.Stats().CacheHits)
	}
}

func TestRemoteCacheHitSkipsDRAM(t *testing.T) {
	m := topology.Dancer()
	e, n := setup(m)
	d0, d1 := m.Domains[0], m.Domains[1]
	a := n.Alloc(d0, MB, false)
	b := n.Alloc(d0, MB, false)
	c := n.Alloc(d1, MB, false)
	e.Spawn("p", func(p *sim.Proc) {
		n.Copy(p, m.Cores[0], b.Whole(), a.Whole()) // a hot in group 0
		before := n.Stats().LinkBytes["mem0"]
		n.Copy(p, d1.Cores[0], c.Whole(), a.Whole()) // remote reader: cache-to-cache
		after := n.Stats().LinkBytes["mem0"]
		if after != before {
			t.Errorf("remote cache hit still read DRAM: mem0 %d -> %d", before, after)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Stats().CacheHits != 1 {
		t.Fatalf("cache hits = %d, want 1", n.Stats().CacheHits)
	}
	if n.Stats().LinkBytes["cache0"] == 0 || n.Stats().LinkBytes["qpi"] != MB {
		t.Fatalf("links = %v", n.Stats().LinkBytes)
	}
}

func TestHugeRegionNeverCaches(t *testing.T) {
	m := topology.Dancer() // 8 MB L3
	e, n := setup(m)
	d0 := m.Domains[0]
	a := n.Alloc(d0, 16*MB, false)
	b := n.Alloc(d0, 16*MB, false)
	e.Spawn("p", func(p *sim.Proc) {
		n.Copy(p, m.Cores[0], b.Whole(), a.Whole())
		n.Copy(p, m.Cores[0], b.Whole(), a.Whole())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Stats().CacheHits != 0 {
		t.Fatalf("hits = %d for cache-exceeding region", n.Stats().CacheHits)
	}
}

func TestPrefixResidencySegments(t *testing.T) {
	m := topology.Dancer()
	e, n := setup(m)
	d0 := m.Domains[0]
	a := n.Alloc(d0, MB, false)
	tmp := n.Alloc(d0, MB, false)
	g0 := m.Groups[0]
	e.Spawn("p", func(p *sim.Proc) {
		seg := int64(256 * 1024)
		for s := int64(0); s < 4; s++ {
			n.Copy(p, m.Cores[0], tmp.View(s*seg, seg), a.View(s*seg, seg))
			if !n.Resident(g0, a.View(0, (s+1)*seg)) {
				t.Errorf("prefix %d not resident after segment %d", (s+1)*seg, s)
			}
			if s < 3 && n.Resident(g0, a.Whole()) {
				t.Errorf("whole region resident too early at segment %d", s)
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestLRUEviction(t *testing.T) {
	m := topology.Dancer() // 8 MB per group
	e, n := setup(m)
	d0 := m.Domains[0]
	g0 := m.Groups[0]
	bufs := make([]*Buffer, 5)
	tmp := n.Alloc(d0, 2*MB, false)
	for i := range bufs {
		bufs[i] = n.Alloc(d0, 2*MB, false)
	}
	e.Spawn("p", func(p *sim.Proc) {
		for _, b := range bufs {
			n.Copy(p, m.Cores[0], tmp.Whole(), b.Whole())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// 5 sources (2 MB) + tmp repeatedly touched; capacity 8 MB → oldest sources evicted.
	if n.Resident(g0, bufs[0].Whole()) {
		t.Error("oldest buffer still resident")
	}
	if !n.Resident(g0, bufs[4].Whole()) {
		t.Error("newest buffer not resident")
	}
	if !n.Resident(g0, tmp.Whole()) {
		t.Error("hot tmp evicted")
	}
}

func TestDMACopyFreesCore(t *testing.T) {
	m := topology.Synthetic(topology.SyntheticSpec{
		Boards: 1, SocketsPerBoard: 2, CoresPerSocket: 2,
		BusBW: 16e9, LinkBW: 11e9, BoardLinkBW: 1,
		CacheSize: 8 * MB, CachePortBW: 30e9,
		Spec: topology.Spec{CoreCopyBW: 4.5e9, KernelTrap: 1e-7, CtrlLatency: 3e-7, Flops: 1e9, DMABw: 6e9},
	})
	e, n := setup(m)
	d0 := m.Domains[0]
	src := n.Alloc(d0, MB, false)
	dst := n.Alloc(d0, MB, false)
	e.Spawn("p", func(p *sim.Proc) {
		pe := n.CopyDMA(m.Cores[0], dst.Whole(), src.Whole())
		if pe.Done() {
			t.Error("DMA completed instantly")
		}
		pe.Wait(p)
		approx(t, p.Now(), float64(MB)/6e9, 1e-6, "dma time")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// DMA bypasses caches.
	if n.Stats().CacheHits+n.Stats().CacheMisses != 1 || n.Resident(m.Groups[0], src.Whole()) {
		t.Error("DMA copy affected cache state")
	}
}

// Property: max-min allocation is feasible (no link over capacity) and
// work-conserving (every flow is bottlenecked somewhere).
func TestMaxMinFairnessProperty(t *testing.T) {
	m := topology.IG()
	f := func(seed int64, nf uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := sim.NewEngine()
		n := New(e, m, nil)
		count := int(nf%20) + 1
		for i := 0; i < count; i++ {
			core := m.Cores[rng.Intn(len(m.Cores))]
			src := n.Alloc(m.Domains[rng.Intn(len(m.Domains))], MB, false)
			dst := n.Alloc(m.Domains[rng.Intn(len(m.Domains))], MB, false)
			n.startCopy(core.Engine, core, dst.Whole(), src.Whole())
		}
		load := make([]float64, len(m.Links))
		for _, fl := range n.flows {
			if fl.rate <= 0 {
				return false
			}
			for _, u := range fl.uses {
				load[u.link.Index] += fl.rate * u.mult
			}
		}
		for i, l := range m.Links {
			if load[i] > l.BW*(1+1e-9) {
				return false
			}
		}
		// Every flow bottlenecked: crosses a saturated link where no other
		// flow has a higher rate.
		for _, fl := range n.flows {
			ok := false
			for _, u := range fl.uses {
				i := u.link.Index
				if load[i] < m.Links[i].BW*(1-1e-9) {
					continue
				}
				maxRate := 0.0
				for _, other := range n.flows {
					for _, ou := range other.uses {
						if ou.link.Index == i && other.rate > maxRate {
							maxRate = other.rate
						}
					}
				}
				if fl.rate >= maxRate*(1-1e-9) {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: bytes are conserved — identical flows on a shared bottleneck
// finish together at exactly total/capacity.
func TestConservationProperty(t *testing.T) {
	m := topology.Dancer()
	f := func(nf uint8, sz uint16) bool {
		count := int(nf%4) + 1
		size := int64(sz)*1024 + 4096
		e := sim.NewEngine()
		n := New(e, m, nil)
		d0 := m.Domains[0]
		var ends []sim.Time
		for i := 0; i < count; i++ {
			c := d0.Cores[i]
			src := n.Alloc(d0, size, false)
			dst := n.Alloc(d0, size, false)
			e.Spawn("p", func(p *sim.Proc) {
				n.Copy(p, c, dst.Whole(), src.Whole())
				ends = append(ends, p.Now())
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		perFlow := math.Min(4.5e9, 16e9/float64(2*count))
		want := float64(size) / perFlow
		for _, end := range ends {
			if math.Abs(end-want) > 1e-6*want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestViewBounds(t *testing.T) {
	m := topology.Zoot()
	_, n := setup(m)
	b := n.Alloc(m.Domains[0], 100, false)
	for _, bad := range [][2]int64{{-1, 10}, {0, 101}, {90, 20}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("View(%d,%d) did not panic", bad[0], bad[1])
				}
			}()
			b.View(bad[0], bad[1])
		}()
	}
	v := b.View(10, 50)
	sv := v.SubView(5, 10)
	if sv.Off != 15 || sv.Len != 10 {
		t.Fatalf("subview = %+v", sv)
	}
}

func TestMismatchedLengthPanics(t *testing.T) {
	m := topology.Zoot()
	_, n := setup(m)
	b := n.Alloc(m.Domains[0], 100, false)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	n.startCopy(m.Cores[0].Engine, m.Cores[0], b.View(0, 10), b.View(10, 20))
}
