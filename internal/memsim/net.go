package memsim

import (
	"fmt"
	"math"

	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Net is the flow-level memory system simulator for one machine. All
// concurrent copies share link bandwidth max-min fairly; rates are
// recomputed whenever a flow starts or finishes.
type Net struct {
	eng     *sim.Engine
	mach    *topology.Machine
	stats   *trace.Stats
	tl      *trace.Timeline
	caches  []*groupCache
	bwScale []float64 // per-link bandwidth multipliers (nil = none)

	flows      []*flow
	completion *sim.Event
	nextBuf    int64
	flowSeq    int64

	// onCompletionFn is the completion callback built once so reschedule
	// allocates no closure.
	onCompletionFn func()

	// Burst-batched repricing: flow adds and removals landing at one
	// simulated instant coalesce into a single end-of-instant rate solve
	// (engine Defer hook) instead of one water-filling per event.
	// repriceFn is the flush callback, built once; repricePending marks
	// that it is registered for the current instant; needSolve records
	// whether the burst requires a full recompute (any non-disjoint
	// change) or just the completion event rescheduled. rateSolves counts
	// water-filling runs (test instrumentation for the batching).
	repriceFn      func()
	repricePending bool
	needSolve      bool
	rateSolves     int64

	// linkWeight[i] is the total multiplicity of the active flows crossing
	// link i, maintained incrementally on every add/remove. It lets the
	// solver skip the full water-filling when a flow joins or leaves
	// without sharing any link with the rest (see addFlow/onCompletion)
	// and seeds the working weights without a per-flow pass.
	linkWeight []float64

	// Persistent water-filling scratch (wf*) and startCopy scratch (use*):
	// sized to len(mach.Links) once, reused on every call so the hot paths
	// allocate nothing.
	wfFixed  []float64
	wfWeight []float64
	wfSat    []bool
	useEpoch int64
	useMark  []int64
	useMult  []float64
	useOrder []int

	flowPool []*flow           // recycled flow objects, uses-capacity preserved
	finished []*flow           // onCompletion scratch
	pendPool []*Pending        // recycled copy handles (blocking Copy only)
	bufSlab  *sim.Slab[Buffer] // arena-backed Alloc; survives Reset

	// Interned routes: routeDom[vertex][domainID] and
	// routeGroup[vertex][groupID] hold the PathToDomain/PathToGroup results
	// for every core vertex, computed once in New so startCopy never
	// rebuilds a link path. The slices are shared and must never be
	// mutated.
	routeDom   [][][]*topology.Link
	routeGroup [][][]*topology.Link

	// linkNames is the dense link-name table handed to every stats sink
	// (SetLinkNames), built once in New and reused by Reset.
	linkNames []string

	// Coherence islands (SetClusterIslands): per-group and per-domain
	// half-open ranges into caches bounding what a reader may snoop and
	// what a write invalidates. Nil means one island spanning the machine.
	islGroupLo, islGroupHi []int32
	islDomLo, islDomHi     []int32

	// Intra-cell partition state (NewPartition). linkLo/linkHi bound the
	// solver's link loops; a guarded partition additionally panics if a
	// flow strays outside its slice, and records every flow's simulated
	// interval for the post-run soundness audit. bufBase keeps partition
	// buffer IDs disjoint. foreignRanges/foreignSpans are the fabric-side
	// audit state: intervals of fabric flows that crossed into a node's
	// link slice, per node.
	linkLo, linkHi int
	linkGuard      bool
	recordSpans    bool
	bufBase        int64
	spans          []FlowSpan
	foreignRanges  [][2]int32
	foreignSpans   [][]FlowSpan
}

// linkUse is one link crossed by a flow; mult > 1 when the flow crosses the
// link more than once (e.g. read and write through the same memory bus).
// idx caches link.Index so the solver's inner loops stay pointer-free.
type linkUse struct {
	link *topology.Link
	idx  int
	mult float64
}

type flow struct {
	seq       int64
	uses      []linkUse
	remaining float64
	rate      float64
	fixed     bool // water-filling working state
	started   sim.Time
	// last is the instant of the flow's most recent depletion: its start,
	// or the last time its rate changed. Depletion is lazy per flow (see
	// depleteTo), so remaining is the bytes left as of last, not as of the
	// engine's current time.
	last    sim.Time
	pending *Pending
	// Completion state, consumed by finishFlow. Kept as plain fields (not
	// a closure) so starting a copy allocates nothing.
	engine   *topology.Link
	core     *topology.Core // nil for DMA copies
	src, dst View
}

// Pending is a handle to an in-flight copy.
type Pending struct {
	done   bool
	waiter *sim.Proc
}

// Done reports whether the copy has completed.
func (pe *Pending) Done() bool { return pe.done }

// Wait blocks p until the copy completes.
func (pe *Pending) Wait(p *sim.Proc) {
	if pe.done {
		return
	}
	if pe.waiter != nil {
		panic("memsim: multiple waiters on one Pending")
	}
	pe.waiter = p
	p.Park("memsim copy")
}

// New creates a memory system for machine m. stats may be nil.
func New(eng *sim.Engine, m *topology.Machine, stats *trace.Stats) *Net {
	if stats == nil {
		stats = &trace.Stats{}
	}
	n := &Net{eng: eng, mach: m, stats: stats}
	n.bufSlab = sim.SlabFor[Buffer](eng.Arena())
	names := make([]string, len(m.Links))
	for i, l := range m.Links {
		names[i] = l.Name
	}
	n.linkNames = names
	stats.SetLinkNames(names)
	for _, g := range m.Groups {
		// One entry pool per group (not per Net): partitions of one cell
		// share the groupCache objects, so a shared pool would couple
		// engines through its free list.
		n.caches = append(n.caches, newGroupCache(g, &entryPool{}))
	}
	nv := 0
	for _, c := range m.Cores {
		if c.Vertex+1 > nv {
			nv = c.Vertex + 1
		}
	}
	n.routeDom = make([][][]*topology.Link, nv)
	n.routeGroup = make([][][]*topology.Link, nv)
	for _, c := range m.Cores {
		if n.routeDom[c.Vertex] != nil {
			continue
		}
		rd := make([][]*topology.Link, len(m.Domains))
		for _, d := range m.Domains {
			rd[d.ID] = m.PathToDomain(c, d)
		}
		rg := make([][]*topology.Link, len(m.Groups))
		for _, g := range m.Groups {
			rg[g.ID] = m.PathToGroup(c, g)
		}
		n.routeDom[c.Vertex] = rd
		n.routeGroup[c.Vertex] = rg
	}
	nl := len(m.Links)
	n.linkWeight = make([]float64, nl)
	n.wfFixed = make([]float64, nl)
	n.wfWeight = make([]float64, nl)
	n.wfSat = make([]bool, nl)
	n.useMark = make([]int64, nl)
	n.useMult = make([]float64, nl)
	n.onCompletionFn = n.onCompletion
	n.repriceFn = n.flushReprice
	n.linkLo, n.linkHi = 0, nl
	return n
}

// Reset returns the memory system to its initial state — no flows, cold
// caches, buffer and flow numbering restarted, full link bandwidth, no
// timeline, a new stats sink — while keeping everything New computed or
// the last run warmed: the interned routes, the solver scratch, and the
// flow / pending / cache-entry pools. The engine binding is permanent;
// callers must Reset (or freshly construct) that engine too, which drops
// any still-pending completion event. A reset Net on a reset Engine is
// observably identical to memsim.New on a fresh engine — same timestamps,
// same rates, bit-identical runs — but simulates with far fewer
// allocations, which is what the sharded sweep runner in internal/bench
// reuses between cells. stats may be nil.
func (n *Net) Reset(stats *trace.Stats) {
	if stats == nil {
		stats = &trace.Stats{}
	}
	n.stats = stats
	stats.SetLinkNames(n.linkNames)
	n.tl = nil
	n.bwScale = nil
	n.islGroupLo, n.islGroupHi = nil, nil
	n.islDomLo, n.islDomHi = nil, nil
	for _, c := range n.caches {
		c.flush()
	}
	// A completed run leaves no flows; recycle defensively after an
	// aborted one.
	for i, f := range n.flows {
		n.freeFlow(f)
		n.flows[i] = nil
	}
	n.flows = n.flows[:0]
	n.completion = nil
	n.nextBuf, n.flowSeq = 0, 0
	n.repricePending, n.needSolve = false, false
	n.rateSolves = 0
	n.spans = n.spans[:0]
	for i := range n.foreignSpans {
		n.foreignSpans[i] = n.foreignSpans[i][:0]
	}
	for i := range n.linkWeight {
		n.linkWeight[i] = 0
	}
	// useEpoch stays monotone: useMark entries still carry old stamps, and
	// a rewound epoch could collide with them.
}

// SetClusterIslands scopes hardware cache coherence to the nodes of a
// compiled cluster: each node's cache groups form one coherence island,
// so cross-node cache hits and modified-line interventions — which no
// real fabric provides — cannot occur. Reads of remote memory stream from
// the home node's DRAM instead. Single machines (and a nil cluster) keep
// the default whole-machine island. The cluster must be the one this
// Net's machine was compiled from.
func (n *Net) SetClusterIslands(cl *topology.Cluster) {
	if cl == nil {
		n.islGroupLo, n.islGroupHi = nil, nil
		n.islDomLo, n.islDomHi = nil, nil
		return
	}
	if cl.Global != n.mach {
		panic("memsim: SetClusterIslands cluster does not match the Net's machine")
	}
	ng, nd := len(n.mach.Groups), len(n.mach.Domains)
	if len(n.islGroupLo) != ng {
		n.islGroupLo = make([]int32, ng)
		n.islGroupHi = make([]int32, ng)
		n.islDomLo = make([]int32, nd)
		n.islDomHi = make([]int32, nd)
	}
	for _, node := range cl.Nodes {
		lo, hi := int32(node.FirstGroup), int32(node.FirstGroup+node.NGroups)
		for g := lo; g < hi; g++ {
			n.islGroupLo[g], n.islGroupHi[g] = lo, hi
		}
		for d := node.FirstDomain; d < node.FirstDomain+node.NDomains; d++ {
			n.islDomLo[d], n.islDomHi[d] = lo, hi
		}
	}
}

// Machine returns the underlying hardware model.
func (n *Net) Machine() *topology.Machine { return n.mach }

// Engine returns the simulation engine.
func (n *Net) Engine() *sim.Engine { return n.eng }

// Stats returns the counter sink, with link-byte accounting folded in.
func (n *Net) Stats() *trace.Stats {
	n.stats.FlushLinks()
	return n.stats
}

// SetTimeline attaches a span recorder; every copy becomes a span on its
// executing engine's lane. Pass nil to disable (the default).
func (n *Net) SetTimeline(tl *trace.Timeline) { n.tl = tl }

// Timeline returns the attached span recorder (nil when disabled).
func (n *Net) Timeline() *trace.Timeline { return n.tl }

// LinkScaler supplies per-link bandwidth multipliers in (0, 1] — the
// fault-injection hook for degraded interconnects and slow cores (core
// copy engines are links too). Implemented by fault.Injector.
type LinkScaler interface {
	LinkScale(name string) float64
}

// SetLinkScaler snapshots the scaler's multiplier for every machine link.
// Pass nil to restore full bandwidth. Values outside (0, 1] are clamped
// to 1 so a misconfigured plan cannot stall the water-filling solver.
func (n *Net) SetLinkScaler(s LinkScaler) {
	if s == nil {
		n.bwScale = nil
		return
	}
	n.bwScale = make([]float64, len(n.mach.Links))
	for i, l := range n.mach.Links {
		f := s.LinkScale(l.Name)
		if f <= 0 || f > 1 {
			f = 1
		}
		n.bwScale[i] = f
	}
}

// linkBW returns link i's effective bandwidth under any active scaling.
func (n *Net) linkBW(i int) float64 {
	bw := n.mach.Links[i].BW
	if n.bwScale != nil {
		bw *= n.bwScale[i]
	}
	return bw
}

// Busy returns the number of in-flight flows (for tests).
func (n *Net) Busy() int { return len(n.flows) }

// Copy moves src to dst executed by core, blocking p until completion.
// Lengths must match. The executing core's copy engine, the read path
// (cache or DRAM), and the write path all contend with concurrent flows.
// The copy handle is recycled internally, so a blocking Copy allocates
// nothing in steady state.
func (n *Net) Copy(p *sim.Proc, core *topology.Core, dst, src View) {
	pe := n.CopyAsync(core, dst, src)
	pe.Wait(p)
	n.freePending(pe)
}

// newPending takes a handle from the pool or allocates one.
func (n *Net) newPending() *Pending {
	if k := len(n.pendPool); k > 0 {
		pe := n.pendPool[k-1]
		n.pendPool[k-1] = nil
		n.pendPool = n.pendPool[:k-1]
		return pe
	}
	return &Pending{}
}

// freePending recycles a completed handle. Only the blocking Copy path
// recycles: handles returned by CopyAsync/CopyDMA stay with the caller,
// which may hold them arbitrarily long.
func (n *Net) freePending(pe *Pending) {
	pe.done, pe.waiter = false, nil
	n.pendPool = append(n.pendPool, pe)
}

// CopyAsync starts a copy executed by core and returns immediately.
func (n *Net) CopyAsync(core *topology.Core, dst, src View) *Pending {
	return n.startCopy(core.Engine, core, dst, src)
}

// CopyDMA starts a copy offloaded to the DMA engine of the executing
// core's domain (Intel I/OAT style): the core's copy engine is not
// consumed, so the core is free to compute or issue further copies. It
// panics if the machine has no DMA engines.
func (n *Net) CopyDMA(core *topology.Core, dst, src View) *Pending {
	dma := n.mach.DMA[core.Domain.ID]
	if dma == nil {
		panic("memsim: CopyDMA on a machine without DMA engines")
	}
	return n.startCopy(dma, nil, dst, src)
}

// startCopy builds the flow. engine is the copy engine link (a core's or a
// DMA engine's); core is the executing core for cache purposes (nil for
// DMA, which bypasses caches).
func (n *Net) startCopy(engine *topology.Link, core *topology.Core, dst, src View) *Pending {
	if dst.Len != src.Len {
		panic(fmt.Sprintf("memsim: copy length mismatch dst=%d src=%d", dst.Len, src.Len))
	}
	pe := n.newPending()
	if src.Len == 0 {
		pe.done = true
		return pe
	}
	reader := core
	if reader == nil {
		// DMA engines sit at the domain vertex; route from there.
		reader = n.mach.Domains[dmaDomain(n, engine)].Cores[0]
	}

	// Accumulate link multiplicities in first-use order through the
	// persistent epoch-stamped scratch (no per-copy map or slice).
	n.useEpoch++
	n.useLink(engine)

	// Read side: from the nearest cache holding the source range clean
	// (or dirty in the reader's own group); a remote dirty copy is a
	// modified-line intervention (owner's cache + interconnect + home
	// write-back); otherwise DRAM.
	cacheHit := false
	if core != nil {
		if g := n.findCached(core, src); g != nil {
			cacheHit = true
			for _, l := range n.routeGroup[core.Vertex][g.ID] {
				n.useLink(l)
			}
		} else if g := n.dirtyOwner(core, src); g != nil {
			for _, l := range n.routeGroup[core.Vertex][g.ID] {
				n.useLink(l)
			}
			n.useLink(src.Buf.Domain.Bus) // write-back to home memory
		} else {
			for _, l := range n.routeDom[reader.Vertex][src.Buf.Domain.ID] {
				n.useLink(l)
			}
		}
	} else {
		for _, l := range n.routeDom[reader.Vertex][src.Buf.Domain.ID] {
			n.useLink(l)
		}
	}
	// Write side: a destination already resident in the executing core's
	// cache absorbs the write at port speed (write hit; it turns dirty
	// and is charged to DRAM again once evicted and re-missed). Anything
	// else goes to the destination DRAM.
	writeHit := false
	if core != nil && n.caches[core.Group.ID].resident(dst.Buf.ID, dst.Off, dst.Len) {
		writeHit = true
		n.useLink(core.Group.Port)
	}
	if !writeHit {
		for _, l := range n.routeDom[reader.Vertex][dst.Buf.Domain.ID] {
			n.useLink(l)
		}
	}

	f := n.newFlow()
	f.remaining, f.pending, f.started = float64(src.Len), pe, n.eng.Now()
	f.last = f.started
	n.flowSeq++
	f.seq = n.flowSeq
	for _, i := range n.useOrder {
		f.uses = append(f.uses, linkUse{link: n.mach.Links[i], idx: i, mult: n.useMult[i]})
	}
	n.useOrder = n.useOrder[:0]
	if n.linkGuard {
		for _, u := range f.uses {
			if u.idx < n.linkLo || u.idx >= n.linkHi {
				panic(fmt.Sprintf("memsim: partition flow crosses out-of-slice link %s", u.link.Name))
			}
		}
	}

	n.stats.Copies++
	n.stats.BytesCopied += src.Len
	if cacheHit {
		n.stats.CacheHits++
	} else {
		n.stats.CacheMisses++
	}
	for _, u := range f.uses {
		n.stats.AddLinkBytesIdx(u.idx, int64(u.mult*float64(src.Len)))
	}

	f.engine, f.core, f.src, f.dst = engine, core, src, dst
	n.addFlow(f)
	return pe
}

// finishFlow runs a completed flow's side effects: the data copy, cache
// touches, invalidations, and waking the waiter. It reads the flow's
// completion fields instead of a captured closure so startCopy stays
// allocation-free.
func (n *Net) finishFlow(f *flow) {
	src, dst := f.src, f.dst
	if n.tl != nil {
		n.tl.Add(f.engine.Name, "copy", f.started, n.eng.Now(),
			fmt.Sprintf("%dB dom%d->dom%d", src.Len, src.Buf.Domain.ID, dst.Buf.Domain.ID))
	}
	if src.Buf.Data != nil && dst.Buf.Data != nil {
		copy(dst.Bytes(), src.Bytes())
	}
	if f.core != nil {
		c := n.caches[f.core.Group.ID]
		c.touch(src.Buf.ID, src.Off, src.Len, false)
		c.touch(dst.Buf.ID, dst.Off, dst.Len, true)
		n.invalidateRange(dst.Buf.ID, dst.Off, dst.Len, f.core.Group, dst.Buf.Domain)
	} else {
		// DMA writes go to memory and invalidate the home island's caches.
		n.invalidateRange(dst.Buf.ID, dst.Off, dst.Len, nil, dst.Buf.Domain)
	}
	pe := f.pending
	pe.done = true
	if pe.waiter != nil {
		pe.waiter.Wake()
	}
}

// useLink accumulates one crossing of l into the epoch-stamped scratch,
// recording first use order. Small enough to inline into startCopy.
func (n *Net) useLink(l *topology.Link) {
	i := l.Index
	if n.useMark[i] != n.useEpoch {
		n.useMark[i] = n.useEpoch
		n.useMult[i] = 0
		n.useOrder = append(n.useOrder, i)
	}
	n.useMult[i]++
}

// dmaDomain finds which domain a DMA link belongs to.
func dmaDomain(n *Net, l *topology.Link) int {
	for i, d := range n.mach.DMA {
		if d == l {
			return i
		}
	}
	panic("memsim: unknown DMA link")
}

// newFlow takes a flow from the pool (uses capacity preserved) or
// allocates one.
func (n *Net) newFlow() *flow {
	if k := len(n.flowPool); k > 0 {
		f := n.flowPool[k-1]
		n.flowPool[k-1] = nil
		n.flowPool = n.flowPool[:k-1]
		return f
	}
	return &flow{}
}

// freeFlow recycles a completed flow.
func (n *Net) freeFlow(f *flow) {
	uses := f.uses[:0]
	*f = flow{uses: uses}
	n.flowPool = append(n.flowPool, f)
}

func (n *Net) addFlow(f *flow) {
	n.flows = append(n.flows, f)
	// Fast path: a flow sharing no link with any active flow cannot change
	// the bottleneck set. Its own rate is the min residual share over its
	// links (exactly what the full water-filling would assign it, since
	// every one of its links carries zero fixed load and only its own
	// weight), and every other rate is untouched.
	disjoint := true
	for _, u := range f.uses {
		if n.linkWeight[u.idx] != 0 {
			disjoint = false
			break
		}
	}
	for _, u := range f.uses {
		n.linkWeight[u.idx] += u.mult
	}
	if disjoint {
		rate := math.Inf(1)
		for _, u := range f.uses {
			if s := n.linkBW(u.idx) / u.mult; s < rate {
				rate = s
			}
		}
		f.rate = rate
		n.requestReprice(false)
		return
	}
	n.requestReprice(true)
}

// requestReprice is called on every flow change. Under a running engine
// the expensive water-filling is burst-batched: the change only marks
// needSolve, reschedules a provisional completion event (mirroring the
// historical per-change cancel/schedule churn so the event's sequence
// stream stays bit-identical), and defers flushReprice to the end of the
// instant, where the whole burst costs one solve and the provisional
// target is corrected in place with Engine.Retime — preserving the
// completion event's same-instant tie-break position exactly. The stale
// mid-burst rates are safe: no simulated time passes within an instant
// (advance sees dt = 0), and the final solve depends only on the final
// flow set — the same rates, bit for bit, that the solve-per-event code
// converged to (the disjoint fast path is exact, see
// TestDisjointFastPathExact). Outside Run (tests and tools driving the
// Net directly) the change is priced synchronously, the historical
// behaviour.
func (n *Net) requestReprice(solve bool) {
	if !n.eng.Running() {
		if solve {
			n.reschedule()
		} else {
			n.scheduleNext()
		}
		return
	}
	if solve {
		n.needSolve = true
	}
	n.scheduleProvisional()
	if !n.repricePending {
		n.repricePending = true
		n.eng.Defer(n.repriceFn)
	}
}

// provisionalFar is the placeholder delay used when no flow has been
// priced yet mid-burst. Any strictly positive value works: the deferred
// flushReprice retimes the event before the instant ends, so this delay
// can never become a simulated timestamp. It must NOT be zero — a
// zero-delay completion fires at the current instant, before the flush
// had a chance to price the burst, and onCompletion would reschedule it
// at zero forever (a same-instant livelock starving the flush).
const provisionalFar = 1.0

// scheduleProvisional mirrors scheduleNext's cancel/schedule pair but
// tolerates flows the deferred solve has not priced yet (rate 0): their
// completion target is unknown mid-burst, so the event's time is only
// provisional. flushReprice retimes it once the final rates stand.
func (n *Net) scheduleProvisional() {
	if n.completion != nil {
		n.completion.Cancel()
		n.completion = nil
	}
	if len(n.flows) == 0 {
		return
	}
	now := n.eng.Now()
	at := math.Inf(1)
	for _, f := range n.flows {
		if f.rate <= 0 {
			continue
		}
		if t := f.last + f.remaining/f.rate; t < at {
			at = t
		}
	}
	if math.IsInf(at, 1) {
		// Every flow is still unpriced (e.g. the only rated flow just
		// finished at this instant while a new burst is pending): park
		// the event strictly in the future and let the flush settle it.
		at = now + provisionalFar
	} else if at < now {
		at = now
	}
	n.completion = n.eng.ScheduleOwnedAt(at, n.onCompletionFn)
}

// flushReprice ends the instant's burst: one water-filling over the final
// flow set (if any change needed it), then the completion event's
// provisional target is corrected in place. Retime preserves the event's
// sequence number, so ties against other events at the same future
// instant resolve exactly as they always did.
func (n *Net) flushReprice() {
	n.repricePending = false
	if n.needSolve {
		n.needSolve = false
		if len(n.flows) > 0 {
			n.recomputeRates()
		}
	}
	if n.completion == nil {
		return
	}
	now := n.eng.Now()
	at := math.Inf(1)
	for _, f := range n.flows {
		if f.rate <= 0 {
			panic("memsim: flow with zero rate")
		}
		if t := f.last + f.remaining/f.rate; t < at {
			at = t
		}
	}
	if at < now {
		at = now
	}
	if at != n.completion.Time() {
		n.eng.Retime(n.completion, at)
	}
}

// depleteTo charges f for the bandwidth it enjoyed since its last
// depletion. It is called only when f's rate is about to change (and on
// f's own completion), never because some unrelated flow started or
// finished — so a flow's floating-point accumulation is chopped exactly
// at its own rate-change instants. Rate changes only propagate over
// shared links, which makes those instants identical whether the Net
// spans the whole machine or one partition of it: the property that keeps
// intra-cell parallel runs bit-identical to single-engine runs. A flow
// may land fractionally below zero because its completion instant was
// computed in floating point; anything beyond finishEps of overshoot
// means the scheduler lost track of it and is a bug, not drift, so it
// panics instead of silently clamping.
func (f *flow) depleteTo(now sim.Time) {
	if dt := now - f.last; dt > 0 {
		f.remaining -= f.rate * dt
		if f.remaining < 0 {
			if f.remaining < -finishEps {
				panic(fmt.Sprintf("memsim: flow %d overshot completion by %g bytes", f.seq, -f.remaining))
			}
			f.remaining = 0
		}
	}
	f.last = now
}

const finishEps = 1e-3 // bytes; far below any modelled transfer granularity

// reschedule recomputes max-min fair rates and schedules the next
// completion event.
func (n *Net) reschedule() {
	if len(n.flows) > 0 {
		n.recomputeRates()
	}
	n.scheduleNext()
}

// scheduleNext (re)schedules the completion event for the earliest-
// finishing flow under the current rates.
func (n *Net) scheduleNext() {
	if n.completion != nil {
		n.completion.Cancel()
		n.completion = nil
	}
	if len(n.flows) == 0 {
		return
	}
	now := n.eng.Now()
	at := math.Inf(1)
	for _, f := range n.flows {
		if f.rate <= 0 {
			panic("memsim: flow with zero rate")
		}
		if t := f.last + f.remaining/f.rate; t < at {
			at = t
		}
	}
	if at < now {
		at = now
	}
	n.completion = n.eng.ScheduleOwnedAt(at, n.onCompletionFn)
}

func (n *Net) onCompletion() {
	n.completion = nil
	now := n.eng.Now()
	remaining := n.flows[:0]
	finished := n.finished[:0]
	for _, f := range n.flows {
		// Survivors are judged without mutation: depleting them here would
		// chop their accumulation at another flow's completion instant.
		if rem := f.remaining - f.rate*(now-f.last); rem <= finishEps {
			if rem < -finishEps {
				panic(fmt.Sprintf("memsim: flow %d overshot completion by %g bytes", f.seq, -rem))
			}
			f.remaining, f.last = 0, now
			finished = append(finished, f)
		} else {
			remaining = append(remaining, f)
		}
	}
	n.flows = remaining
	// Withdraw the finished flows, then check whether the survivors shared
	// any link with them; if not, the max-min allocation of the survivors
	// is unchanged and the full water-filling can be skipped.
	for _, f := range finished {
		for _, u := range f.uses {
			n.linkWeight[u.idx] -= u.mult
		}
	}
	disjoint := true
	for _, f := range finished {
		for _, u := range f.uses {
			if n.linkWeight[u.idx] != 0 {
				disjoint = false
				break
			}
		}
		if !disjoint {
			break
		}
	}
	for _, f := range finished {
		if n.recordSpans {
			n.recordSpan(f)
		}
		n.finishFlow(f)
	}
	for i, f := range finished {
		n.freeFlow(f)
		finished[i] = nil
	}
	n.finished = finished[:0]
	n.requestReprice(!disjoint)
}

// recomputeRates runs progressive filling (water-filling) with per-link
// multiplicities: raise all unfixed flow rates uniformly until a link
// saturates, fix the flows crossing it, repeat. All working state lives in
// persistent scratch arrays on Net, so the solver allocates nothing.
func (n *Net) recomputeRates() {
	n.rateSolves++
	// A partition's flows only cross links in [linkLo, linkHi) (zero weight
	// everywhere else), so the link loops scan just that slice; the whole
	// machine for an unpartitioned Net. Restricting the scan changes no
	// arithmetic — skipped links contribute nothing either way.
	lo, nl := n.linkLo, n.linkHi
	now := n.eng.Now()
	fixedLoad, weight, saturated := n.wfFixed, n.wfWeight, n.wfSat
	for i := lo; i < nl; i++ {
		fixedLoad[i] = 0
	}
	// The working weights start from the incrementally maintained totals;
	// multiplicities are small integers, so the running sum is exact and
	// bit-identical to re-accumulating over the flows.
	copy(weight[lo:nl], n.linkWeight[lo:nl])
	unfixed := len(n.flows)
	for _, f := range n.flows {
		f.fixed = false
	}
	for unfixed > 0 {
		// Find the bottleneck share.
		share := math.Inf(1)
		for i := lo; i < nl; i++ {
			if weight[i] <= 0 {
				continue
			}
			s := (n.linkBW(i) - fixedLoad[i]) / weight[i]
			if s < share {
				share = s
			}
		}
		if math.IsInf(share, 1) {
			panic("memsim: unfixed flows cross no links")
		}
		if share < 0 {
			share = 0
		}
		// Identify the links saturated at this share, then fix every
		// unfixed flow crossing one of them.
		for i := lo; i < nl; i++ {
			if weight[i] <= 0 {
				saturated[i] = false
				continue
			}
			s := (n.linkBW(i) - fixedLoad[i]) / weight[i]
			saturated[i] = s <= share*(1+1e-12)
		}
		progress := false
		for _, f := range n.flows {
			if f.fixed {
				continue
			}
			bottled := false
			for _, u := range f.uses {
				if saturated[u.idx] {
					bottled = true
					break
				}
			}
			if bottled {
				if share != f.rate {
					f.depleteTo(now)
					f.rate = share
				}
				f.fixed = true
				unfixed--
				progress = true
				for _, u := range f.uses {
					fixedLoad[u.idx] += share * u.mult
					weight[u.idx] -= u.mult
				}
			}
		}
		if !progress {
			panic("memsim: water-filling made no progress")
		}
	}
}
