package memsim

import (
	"fmt"
	"math"

	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Net is the flow-level memory system simulator for one machine. All
// concurrent copies share link bandwidth max-min fairly; rates are
// recomputed whenever a flow starts or finishes.
type Net struct {
	eng     *sim.Engine
	mach    *topology.Machine
	stats   *trace.Stats
	tl      *trace.Timeline
	caches  []*groupCache
	bwScale []float64 // per-link bandwidth multipliers (nil = none)

	flows      []*flow
	lastUpdate sim.Time
	completion *sim.Event
	nextBuf    int64
	flowSeq    int64
}

// linkUse is one link crossed by a flow; mult > 1 when the flow crosses the
// link more than once (e.g. read and write through the same memory bus).
type linkUse struct {
	link *topology.Link
	mult float64
}

type flow struct {
	seq       int64
	uses      []linkUse
	remaining float64
	rate      float64
	started   sim.Time
	pending   *Pending
	finish    func()
}

// Pending is a handle to an in-flight copy.
type Pending struct {
	done   bool
	waiter *sim.Proc
}

// Done reports whether the copy has completed.
func (pe *Pending) Done() bool { return pe.done }

// Wait blocks p until the copy completes.
func (pe *Pending) Wait(p *sim.Proc) {
	if pe.done {
		return
	}
	if pe.waiter != nil {
		panic("memsim: multiple waiters on one Pending")
	}
	pe.waiter = p
	p.Park("memsim copy")
}

// New creates a memory system for machine m. stats may be nil.
func New(eng *sim.Engine, m *topology.Machine, stats *trace.Stats) *Net {
	if stats == nil {
		stats = &trace.Stats{}
	}
	n := &Net{eng: eng, mach: m, stats: stats}
	for _, g := range m.Groups {
		n.caches = append(n.caches, newGroupCache(g))
	}
	return n
}

// Machine returns the underlying hardware model.
func (n *Net) Machine() *topology.Machine { return n.mach }

// Engine returns the simulation engine.
func (n *Net) Engine() *sim.Engine { return n.eng }

// Stats returns the counter sink.
func (n *Net) Stats() *trace.Stats { return n.stats }

// SetTimeline attaches a span recorder; every copy becomes a span on its
// executing engine's lane. Pass nil to disable (the default).
func (n *Net) SetTimeline(tl *trace.Timeline) { n.tl = tl }

// Timeline returns the attached span recorder (nil when disabled).
func (n *Net) Timeline() *trace.Timeline { return n.tl }

// LinkScaler supplies per-link bandwidth multipliers in (0, 1] — the
// fault-injection hook for degraded interconnects and slow cores (core
// copy engines are links too). Implemented by fault.Injector.
type LinkScaler interface {
	LinkScale(name string) float64
}

// SetLinkScaler snapshots the scaler's multiplier for every machine link.
// Pass nil to restore full bandwidth. Values outside (0, 1] are clamped
// to 1 so a misconfigured plan cannot stall the water-filling solver.
func (n *Net) SetLinkScaler(s LinkScaler) {
	if s == nil {
		n.bwScale = nil
		return
	}
	n.bwScale = make([]float64, len(n.mach.Links))
	for i, l := range n.mach.Links {
		f := s.LinkScale(l.Name)
		if f <= 0 || f > 1 {
			f = 1
		}
		n.bwScale[i] = f
	}
}

// linkBW returns link i's effective bandwidth under any active scaling.
func (n *Net) linkBW(i int) float64 {
	bw := n.mach.Links[i].BW
	if n.bwScale != nil {
		bw *= n.bwScale[i]
	}
	return bw
}

// Busy returns the number of in-flight flows (for tests).
func (n *Net) Busy() int { return len(n.flows) }

// Copy moves src to dst executed by core, blocking p until completion.
// Lengths must match. The executing core's copy engine, the read path
// (cache or DRAM), and the write path all contend with concurrent flows.
func (n *Net) Copy(p *sim.Proc, core *topology.Core, dst, src View) {
	n.CopyAsync(core, dst, src).Wait(p)
}

// CopyAsync starts a copy executed by core and returns immediately.
func (n *Net) CopyAsync(core *topology.Core, dst, src View) *Pending {
	return n.startCopy(core.Engine, core, dst, src)
}

// CopyDMA starts a copy offloaded to the DMA engine of the executing
// core's domain (Intel I/OAT style): the core's copy engine is not
// consumed, so the core is free to compute or issue further copies. It
// panics if the machine has no DMA engines.
func (n *Net) CopyDMA(core *topology.Core, dst, src View) *Pending {
	dma := n.mach.DMA[core.Domain.ID]
	if dma == nil {
		panic("memsim: CopyDMA on a machine without DMA engines")
	}
	return n.startCopy(dma, nil, dst, src)
}

// startCopy builds the flow. engine is the copy engine link (a core's or a
// DMA engine's); core is the executing core for cache purposes (nil for
// DMA, which bypasses caches).
func (n *Net) startCopy(engine *topology.Link, core *topology.Core, dst, src View) *Pending {
	if dst.Len != src.Len {
		panic(fmt.Sprintf("memsim: copy length mismatch dst=%d src=%d", dst.Len, src.Len))
	}
	pe := &Pending{}
	if src.Len == 0 {
		pe.done = true
		return pe
	}
	reader := core
	if reader == nil {
		// DMA engines sit at the domain vertex; route from there.
		reader = n.mach.Domains[dmaDomain(n, engine)].Cores[0]
	}

	uses := map[*topology.Link]float64{engine: 1}
	ordered := []*topology.Link{engine}
	add := func(l *topology.Link) {
		if _, ok := uses[l]; !ok {
			ordered = append(ordered, l)
		}
		uses[l]++
	}

	// Read side: from the nearest cache holding the source range clean
	// (or dirty in the reader's own group); a remote dirty copy is a
	// modified-line intervention (owner's cache + interconnect + home
	// write-back); otherwise DRAM.
	cacheHit := false
	if core != nil {
		if g := n.findCached(core, src); g != nil {
			cacheHit = true
			for _, l := range n.mach.PathToGroup(core, g) {
				add(l)
			}
		} else if g := n.dirtyOwner(core, src); g != nil {
			for _, l := range n.mach.PathToGroup(core, g) {
				add(l)
			}
			add(src.Buf.Domain.Bus) // write-back to home memory
		} else {
			for _, l := range n.mach.PathToDomain(reader, src.Buf.Domain) {
				add(l)
			}
		}
	} else {
		for _, l := range n.mach.PathToDomain(reader, src.Buf.Domain) {
			add(l)
		}
	}
	// Write side: a destination already resident in the executing core's
	// cache absorbs the write at port speed (write hit; it turns dirty
	// and is charged to DRAM again once evicted and re-missed). Anything
	// else goes to the destination DRAM.
	writeHit := false
	if core != nil && n.caches[core.Group.ID].resident(dst.Buf.ID, dst.Off, dst.Len) {
		writeHit = true
		add(core.Group.Port)
	}
	if !writeHit {
		for _, l := range n.mach.PathToDomain(reader, dst.Buf.Domain) {
			add(l)
		}
	}

	f := &flow{remaining: float64(src.Len), pending: pe, started: n.eng.Now()}
	n.flowSeq++
	f.seq = n.flowSeq
	for _, l := range ordered {
		f.uses = append(f.uses, linkUse{link: l, mult: uses[l]})
	}

	n.stats.Copies++
	n.stats.BytesCopied += src.Len
	if cacheHit {
		n.stats.CacheHits++
	} else {
		n.stats.CacheMisses++
	}
	for _, u := range f.uses {
		n.stats.AddLinkBytes(u.link.Name, int64(u.mult*float64(src.Len)))
	}

	f.finish = func() {
		n.tl.Add(engine.Name, "copy", f.started, n.eng.Now(),
			fmt.Sprintf("%dB dom%d->dom%d", src.Len, src.Buf.Domain.ID, dst.Buf.Domain.ID))
		if src.Buf.Data != nil && dst.Buf.Data != nil {
			copy(dst.Bytes(), src.Bytes())
		}
		if core != nil {
			c := n.caches[core.Group.ID]
			c.touch(src.Buf.ID, src.Off, src.Len, false)
			c.touch(dst.Buf.ID, dst.Off, dst.Len, true)
			n.invalidateRange(dst.Buf.ID, dst.Off, dst.Len, core.Group)
		} else {
			// DMA writes go to memory and invalidate every cache.
			n.invalidateRange(dst.Buf.ID, dst.Off, dst.Len, nil)
		}
		pe.done = true
		if pe.waiter != nil {
			pe.waiter.Wake()
		}
	}
	n.addFlow(f)
	return pe
}

// dmaDomain finds which domain a DMA link belongs to.
func dmaDomain(n *Net, l *topology.Link) int {
	for i, d := range n.mach.DMA {
		if d == l {
			return i
		}
	}
	panic("memsim: unknown DMA link")
}

func (n *Net) addFlow(f *flow) {
	n.advance()
	n.flows = append(n.flows, f)
	n.reschedule()
}

// advance depletes every flow by the bandwidth it enjoyed since the last
// update.
func (n *Net) advance() {
	now := n.eng.Now()
	dt := now - n.lastUpdate
	if dt > 0 {
		for _, f := range n.flows {
			f.remaining -= f.rate * dt
			if f.remaining < 0 {
				f.remaining = 0
			}
		}
	}
	n.lastUpdate = now
}

const finishEps = 1e-3 // bytes; far below any modelled transfer granularity

// reschedule recomputes max-min fair rates and schedules the next
// completion event.
func (n *Net) reschedule() {
	if n.completion != nil {
		n.completion.Cancel()
		n.completion = nil
	}
	if len(n.flows) == 0 {
		return
	}
	n.recomputeRates()
	next := math.Inf(1)
	for _, f := range n.flows {
		if f.rate <= 0 {
			panic("memsim: flow with zero rate")
		}
		t := f.remaining / f.rate
		if t < next {
			next = t
		}
	}
	if next < 0 {
		next = 0
	}
	n.completion = n.eng.Schedule(next, n.onCompletion)
}

func (n *Net) onCompletion() {
	n.completion = nil
	n.advance()
	remaining := n.flows[:0]
	var finished []*flow
	for _, f := range n.flows {
		if f.remaining <= finishEps {
			finished = append(finished, f)
		} else {
			remaining = append(remaining, f)
		}
	}
	n.flows = remaining
	for _, f := range finished {
		f.finish()
	}
	n.reschedule()
}

// recomputeRates runs progressive filling (water-filling) with per-link
// multiplicities: raise all unfixed flow rates uniformly until a link
// saturates, fix the flows crossing it, repeat.
func (n *Net) recomputeRates() {
	nl := len(n.mach.Links)
	fixedLoad := make([]float64, nl)
	weight := make([]float64, nl)
	unfixed := make(map[*flow]bool, len(n.flows))
	for _, f := range n.flows {
		unfixed[f] = true
		for _, u := range f.uses {
			weight[u.link.Index] += u.mult
		}
	}
	for len(unfixed) > 0 {
		// Find the bottleneck share.
		share := math.Inf(1)
		for i := 0; i < nl; i++ {
			if weight[i] <= 0 {
				continue
			}
			s := (n.linkBW(i) - fixedLoad[i]) / weight[i]
			if s < share {
				share = s
			}
		}
		if math.IsInf(share, 1) {
			panic("memsim: unfixed flows cross no links")
		}
		if share < 0 {
			share = 0
		}
		// Identify the links saturated at this share, then fix every
		// unfixed flow crossing one of them.
		saturated := make([]bool, nl)
		for i := 0; i < nl; i++ {
			if weight[i] <= 0 {
				continue
			}
			s := (n.linkBW(i) - fixedLoad[i]) / weight[i]
			if s <= share*(1+1e-12) {
				saturated[i] = true
			}
		}
		progress := false
		for _, f := range n.flows {
			if !unfixed[f] {
				continue
			}
			bottled := false
			for _, u := range f.uses {
				if saturated[u.link.Index] {
					bottled = true
					break
				}
			}
			if bottled {
				f.rate = share
				delete(unfixed, f)
				progress = true
				for _, u := range f.uses {
					fixedLoad[u.link.Index] += share * u.mult
					weight[u.link.Index] -= u.mult
				}
			}
		}
		if !progress {
			panic("memsim: water-filling made no progress")
		}
	}
}
