package memsim

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

// run executes body as a single simulated process and drives to completion.
func run1(t *testing.T, e *sim.Engine, body func(p *sim.Proc)) {
	t.Helper()
	e.Spawn("t", body)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteHitUsesPortNotDRAM(t *testing.T) {
	m := topology.Dancer()
	e, n := setup(m)
	d0 := m.Domains[0]
	a := n.Alloc(d0, 256<<10, false)
	b := n.Alloc(d0, 256<<10, false)
	run1(t, e, func(p *sim.Proc) {
		n.Copy(p, m.Cores[0], b.Whole(), a.Whole()) // b now resident+dirty in group 0
		before := n.Stats().LinkBytes["mem0"]
		n.Copy(p, m.Cores[0], b.Whole(), a.Whole()) // rewrite b: write hit
		wrote := n.Stats().LinkBytes["mem0"] - before
		// Only the read side (a is resident too — it was touched as source,
		// so even the read hits). Expect zero new DRAM traffic.
		if wrote != 0 {
			t.Errorf("rewrite of cached dst cost %d DRAM bytes, want 0", wrote)
		}
		if n.Stats().LinkBytes["cache0"] == 0 {
			t.Error("no port traffic recorded")
		}
	})
}

func TestWriteInvalidatesOtherCaches(t *testing.T) {
	m := topology.Dancer()
	e, n := setup(m)
	d0 := m.Domains[0]
	a := n.Alloc(d0, 128<<10, false)
	tmp0 := n.Alloc(d0, 128<<10, false)
	tmp1 := n.Alloc(m.Domains[1], 128<<10, false)
	run1(t, e, func(p *sim.Proc) {
		// Reader on socket 1 caches a (clean).
		n.Copy(p, m.Domains[1].Cores[0], tmp1.Whole(), a.Whole())
		if !n.Resident(m.Groups[1], a.Whole()) {
			t.Fatal("a not resident in group 1 after read")
		}
		// Writer on socket 0 overwrites a.
		n.Copy(p, m.Cores[0], a.Whole(), tmp0.Whole())
		if n.Resident(m.Groups[1], a.Whole()) {
			t.Fatal("stale copy of a still resident in group 1 after remote write")
		}
		if !n.Resident(m.Groups[0], a.Whole()) {
			t.Fatal("writer's own cache lost the line")
		}
	})
}

func TestDirtyInterventionPricedAsDRAMPlusPath(t *testing.T) {
	m := topology.Dancer()
	e, n := setup(m)
	d0, d1 := m.Domains[0], m.Domains[1]
	src := n.Alloc(d0, 128<<10, false)
	a := n.Alloc(d0, 128<<10, false) // will become dirty in group 0
	dst := n.Alloc(d1, 128<<10, false)
	run1(t, e, func(p *sim.Proc) {
		n.Copy(p, m.Cores[0], a.Whole(), src.Whole()) // a dirty in group 0
		qpi0 := n.Stats().LinkBytes["qpi"]
		mem0 := n.Stats().LinkBytes["mem0"]
		port0 := n.Stats().LinkBytes["cache0"]
		hits0 := n.Stats().CacheHits
		n.Copy(p, d1.Cores[0], dst.Whole(), a.Whole()) // remote read of dirty a
		// Intervention: crosses QPI, loads the owner's port, and writes
		// back to a's home bus (mem0) — no free cache-to-cache ride.
		if got := n.Stats().LinkBytes["qpi"] - qpi0; got != 128<<10 {
			t.Errorf("qpi bytes = %d, want %d", got, 128<<10)
		}
		if got := n.Stats().LinkBytes["mem0"] - mem0; got != 128<<10 {
			t.Errorf("write-back to home = %d bytes, want %d", got, 128<<10)
		}
		if got := n.Stats().LinkBytes["cache0"] - port0; got != 128<<10 {
			t.Errorf("owner port bytes = %d, want %d", got, 128<<10)
		}
		if n.Stats().CacheHits != hits0 {
			t.Error("intervention wrongly counted as a cache hit")
		}
	})
}

func TestSameGroupDirtyReadHits(t *testing.T) {
	m := topology.Dancer()
	e, n := setup(m)
	d0 := m.Domains[0]
	a := n.Alloc(d0, 128<<10, false)
	b := n.Alloc(d0, 128<<10, false)
	c := n.Alloc(d0, 128<<10, false)
	run1(t, e, func(p *sim.Proc) {
		n.Copy(p, m.Cores[0], b.Whole(), a.Whole()) // b dirty in group 0
		base := n.Stats().CacheHits
		n.Copy(p, m.Cores[1], c.Whole(), b.Whole()) // same-group read of dirty b
		if n.Stats().CacheHits != base+1 {
			t.Error("same-group dirty read did not hit the shared cache")
		}
	})
}

func TestOversizedAccessPollutes(t *testing.T) {
	m := topology.Dancer() // 8 MiB groups
	e, n := setup(m)
	d0 := m.Domains[0]
	small := n.Alloc(d0, 64<<10, false)
	tmp := n.Alloc(d0, 64<<10, false)
	huge := n.Alloc(d0, 16<<20, false)
	run1(t, e, func(p *sim.Proc) {
		n.Copy(p, m.Cores[0], tmp.Whole(), small.Whole())
		if !n.Resident(m.Groups[0], small.Whole()) {
			t.Fatal("small region not resident")
		}
		// A single access bigger than the cache streams through,
		// flushing everything (Touch models a compute phase).
		n.Touch(m.Cores[0], huge.Whole(), true)
		if n.Resident(m.Groups[0], small.Whole()) {
			t.Fatal("streaming access did not pollute the cache")
		}
		if n.Resident(m.Groups[0], huge.View(0, 64<<10)) {
			t.Fatal("oversized region left residue")
		}
	})
}

func TestTouchKeepsHotBufferResident(t *testing.T) {
	m := topology.Dancer()
	e, n := setup(m)
	d0 := m.Domains[0]
	rowBuf := n.Alloc(d0, 64<<10, false)
	block := n.Alloc(d0, 32<<20, false)
	src := n.Alloc(d0, 64<<10, false)
	run1(t, e, func(p *sim.Proc) {
		n.Copy(p, m.Cores[0], rowBuf.Whole(), src.Whole())
		// The ASP pattern: stream the big block (pollutes), then re-touch
		// the row buffer the inner loop keeps reading.
		n.Touch(m.Cores[0], block.Whole(), true)
		n.Touch(m.Cores[0], rowBuf.Whole(), false)
		if !n.Resident(m.Groups[0], rowBuf.Whole()) {
			t.Fatal("re-touched row buffer not resident")
		}
		// The next write to the resident row buffer is absorbed by the
		// cache; only the (evicted) source's read touches DRAM.
		base := n.Stats().LinkBytes["mem0"]
		n.Copy(p, m.Cores[1], rowBuf.Whole(), src.Whole())
		if got := n.Stats().LinkBytes["mem0"] - base; got != 64<<10 {
			t.Errorf("DRAM traffic = %d, want %d (source read only)", got, 64<<10)
		}
	})
}

func TestInvalidateRegionDropsEverywhere(t *testing.T) {
	m := topology.Dancer()
	e, n := setup(m)
	a := n.Alloc(m.Domains[0], 64<<10, false)
	t0 := n.Alloc(m.Domains[0], 64<<10, false)
	t1 := n.Alloc(m.Domains[1], 64<<10, false)
	run1(t, e, func(p *sim.Proc) {
		n.Copy(p, m.Cores[0], t0.Whole(), a.Whole())
		n.Copy(p, m.Domains[1].Cores[0], t1.Whole(), a.Whole())
		n.InvalidateRegion(a)
		if n.Resident(m.Groups[0], a.Whole()) || n.Resident(m.Groups[1], a.Whole()) {
			t.Fatal("InvalidateRegion left residue")
		}
	})
}
