package tune

import (
	"math"
	"sort"

	"repro/internal/topology"
)

// Decider answers runtime "which configuration should this collective
// use?" queries from a loaded decision table. Lookups interpolate to the
// nearest tuned cell in (log2 size, nranks) space, so sizes between grid
// points — or below the smallest / above the largest tuned cell — resolve
// deterministically to the closest measurement instead of falling off the
// table. Operations the table never tuned return ok=false, and the caller
// keeps its hardcoded rules.
//
// A Decider is immutable after construction and safe for concurrent use by
// every rank of a world.
type Decider struct {
	table *Table
	// byOp indexes cells per operation, sorted by (np, size); lookups
	// only ever scan one op's cells.
	byOp map[string][]Cell
}

// NewDecider builds a Decider over a validated table.
func NewDecider(t *Table) *Decider {
	d := &Decider{table: t, byOp: make(map[string][]Cell)}
	for _, c := range t.Cells {
		d.byOp[c.Op] = append(d.byOp[c.Op], c)
	}
	for op := range d.byOp {
		cells := d.byOp[op]
		sort.Slice(cells, func(i, j int) bool {
			if cells[i].NP != cells[j].NP {
				return cells[i].NP < cells[j].NP
			}
			return cells[i].Size < cells[j].Size
		})
	}
	return d
}

// Table returns the decision table the Decider serves.
func (d *Decider) Table() *Table { return d.table }

// maxExtrapolation bounds how far beyond the tuned grid a decision still
// applies: one octave in log2(size). Queries further out (for example the
// P-times-larger inner Broadcast of a composed Allgather) return ok=false
// and the caller keeps its hardcoded rules — a measurement taken at 8 MiB
// says nothing trustworthy about 384 MiB.
const maxExtrapolation = 1.0

// Lookup returns the tuned cell nearest to (op, np, size). Nearest means:
// first the closest tuned nranks (a 48-rank decision should not leak onto
// an 8-rank run just because the sizes align), then the closest size in
// log2 space, with ties broken toward the smaller cell size — so a query
// exactly between two grid points always resolves the same way. Sizes
// between grid points, and up to one octave below the smallest or above
// the largest tuned cell, clamp to the nearest cell; beyond that, and for
// operations the table never tuned, ok is false.
func (d *Decider) Lookup(op string, np int, size int64) (Cell, bool) {
	cells := d.byOp[op]
	if len(cells) == 0 {
		return Cell{}, false
	}
	bestNP := cells[0].NP
	for _, c := range cells[1:] {
		if npDist(c.NP, np) < npDist(bestNP, np) {
			bestNP = c.NP
		}
	}
	lq := log2(size)
	best := -1
	var bestD float64
	for i, c := range cells {
		if c.NP != bestNP {
			continue
		}
		dist := math.Abs(log2(c.Size) - lq)
		if best < 0 || dist < bestD-1e-12 {
			best, bestD = i, dist
		}
	}
	if bestD > maxExtrapolation+1e-12 {
		return Cell{}, false
	}
	return cells[best], true
}

func npDist(cell, query int) int {
	d := cell - query
	if d < 0 {
		d = -d
	}
	return d
}

func log2(n int64) float64 {
	if n < 1 {
		n = 1
	}
	return math.Log2(float64(n))
}

// Set is a collection of Deciders keyed by machine fingerprint. Multi-
// machine sweeps (the Fig. 5-8 builders) look their machine up here; a
// table built for a different machine simply never matches, so decisions
// can only ever steer the hardware they were tuned on.
type Set struct {
	byFP map[string]*Decider
}

// NewSet builds an empty decision set.
func NewSet() *Set { return &Set{byFP: make(map[string]*Decider)} }

// Add registers a table's Decider under its fingerprint. The last table
// added for a fingerprint wins.
func (s *Set) Add(t *Table) {
	s.byFP[t.Fingerprint] = NewDecider(t)
}

// For returns the Decider tuned for exactly this machine, or nil.
func (s *Set) For(m *topology.Machine) *Decider {
	if s == nil || m == nil {
		return nil
	}
	return s.byFP[Fingerprint(m)]
}

// Len reports how many machines the set covers.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return len(s.byFP)
}
