package tune

import (
	"testing"

	"repro/internal/topology"
)

// grid builds a table with bcast cells at the given (np, size) points, each
// tagged with a distinguishable segment size so tests can tell which cell a
// lookup resolved to.
func gridTable(m *topology.Machine, points [][2]int64) *Table {
	t := &Table{Version: TableVersion, Machine: m.Name, Fingerprint: Fingerprint(m)}
	for _, p := range points {
		t.Cells = append(t.Cells, Cell{
			Op: OpBcast, NP: int(p[0]), Size: p[1],
			Choice:  Choice{Comp: "KNEM-Coll", Seg: p[1]}, // marker: Seg == cell size
			Seconds: 1e-4,
		})
	}
	t.Sort()
	return t
}

func TestLookupExactAndBetween(t *testing.T) {
	m := topology.ByName("IG")
	d := NewDecider(gridTable(m, [][2]int64{{48, 64 << 10}, {48, 256 << 10}, {48, 1 << 20}}))

	cases := []struct {
		size     int64
		wantCell int64
		ok       bool
	}{
		{64 << 10, 64 << 10, true},   // exact grid point
		{256 << 10, 256 << 10, true}, // exact grid point
		{96 << 10, 64 << 10, true},   // log2(96K) is 0.58 above 64K, 1.42 below 256K
		{180 << 10, 256 << 10, true}, // closer to 256K in log2
		{128 << 10, 64 << 10, true},  // exactly between: tie resolves to the smaller cell
		{512 << 10, 256 << 10, true}, // exactly between 256K and 1M: smaller again
		{32 << 10, 64 << 10, true},   // one octave below the grid: clamps
		{2 << 20, 1 << 20, true},     // one octave above: clamps
		{16 << 10, 0, false},         // two octaves below: out of range
		{8 << 20, 0, false},          // three octaves above: out of range
		{48 << 20, 0, false},         // composed-op blowup (P x 1M): must not steer
	}
	for _, tc := range cases {
		c, ok := d.Lookup(OpBcast, 48, tc.size)
		if ok != tc.ok {
			t.Errorf("Lookup(size=%d): ok=%v, want %v", tc.size, ok, tc.ok)
			continue
		}
		if ok && c.Choice.Seg != tc.wantCell {
			t.Errorf("Lookup(size=%d) resolved to cell %d, want %d", tc.size, c.Choice.Seg, tc.wantCell)
		}
	}
}

func TestLookupNearestNP(t *testing.T) {
	m := topology.ByName("IG")
	d := NewDecider(gridTable(m, [][2]int64{{8, 64 << 10}, {48, 1 << 20}}))

	// np=8 exists: its cell wins.
	if c, ok := d.Lookup(OpBcast, 8, 64<<10); !ok || c.NP != 8 {
		t.Fatalf("np=8 lookup: got np=%d ok=%v, want the np=8 cell", c.NP, ok)
	}
	// np=12 is nearer 8 than 48.
	if c, ok := d.Lookup(OpBcast, 12, 64<<10); !ok || c.NP != 8 {
		t.Fatalf("np=12 lookup: got np=%d ok=%v, want the np=8 cell", c.NP, ok)
	}
	// np=40 is nearer 48.
	if c, ok := d.Lookup(OpBcast, 40, 1<<20); !ok || c.NP != 48 {
		t.Fatalf("np=40 lookup: got np=%d ok=%v, want the np=48 cell", c.NP, ok)
	}
	// Once the np is chosen, the size window applies within that np's
	// cells only: np=40 resolves to np=48 whose single size is 1M, so a
	// 64K query is out of the one-octave window even though an np=8 cell
	// sits at exactly 64K.
	if _, ok := d.Lookup(OpBcast, 40, 64<<10); ok {
		t.Fatalf("np=40 size=64K: steered by a cell 4 octaves away")
	}
}

func TestLookupSingleCell(t *testing.T) {
	m := topology.ByName("Zoot")
	d := NewDecider(gridTable(m, [][2]int64{{16, 1 << 20}}))

	for _, tc := range []struct {
		np   int
		size int64
		ok   bool
	}{
		{16, 1 << 20, true},
		{16, 512 << 10, true}, // one octave below
		{16, 2 << 20, true},   // one octave above
		{16, 256 << 10, false},
		{16, 4 << 20, false},
		{2, 1 << 20, true}, // any np resolves to the only tuned np
		{1000, 1 << 20, true},
	} {
		if _, ok := d.Lookup(OpBcast, tc.np, tc.size); ok != tc.ok {
			t.Errorf("single-cell Lookup(np=%d size=%d): ok=%v, want %v", tc.np, tc.size, ok, tc.ok)
		}
	}
}

func TestLookupDegenerateInputs(t *testing.T) {
	m := topology.ByName("Zoot")
	d := NewDecider(gridTable(m, [][2]int64{{16, 1}}))

	// Sub-byte and zero sizes must not panic; log2 clamps at 1.
	if _, ok := d.Lookup(OpBcast, 16, 0); !ok {
		t.Fatalf("size=0 did not clamp to the size-1 cell")
	}
	if _, ok := d.Lookup(OpBcast, 16, -5); !ok {
		t.Fatalf("negative size did not clamp")
	}
	// Unknown op: deterministic miss.
	if _, ok := d.Lookup("reduce", 16, 1); ok {
		t.Fatalf("untuned op returned a cell")
	}
	// Empty table decider.
	empty := NewDecider(&Table{Version: TableVersion, Machine: m.Name, Fingerprint: Fingerprint(m)})
	if _, ok := empty.Lookup(OpBcast, 16, 1<<20); ok {
		t.Fatalf("empty decider returned a cell")
	}
}

func TestLookupDeterministicTieBreak(t *testing.T) {
	m := topology.ByName("IG")
	d := NewDecider(gridTable(m, [][2]int64{{48, 64 << 10}, {48, 256 << 10}}))
	first, ok := d.Lookup(OpBcast, 48, 128<<10)
	if !ok {
		t.Fatal("tie lookup missed")
	}
	for i := 0; i < 100; i++ {
		c, ok := d.Lookup(OpBcast, 48, 128<<10)
		if !ok || c.Choice.Seg != first.Choice.Seg {
			t.Fatalf("tie break not deterministic: run %d got %d, first %d", i, c.Choice.Seg, first.Choice.Seg)
		}
	}
	if first.Choice.Seg != 64<<10 {
		t.Fatalf("tie resolved to %d, want the smaller cell 64K", first.Choice.Seg)
	}
}

func TestSet(t *testing.T) {
	zoot, ig := topology.ByName("Zoot"), topology.ByName("IG")
	s := NewSet()
	if s.Len() != 0 || s.For(zoot) != nil {
		t.Fatal("empty set not empty")
	}
	s.Add(gridTable(ig, [][2]int64{{48, 1 << 20}}))
	if s.Len() != 1 {
		t.Fatalf("Len=%d after one Add", s.Len())
	}
	if s.For(ig) == nil {
		t.Fatal("IG table not found for IG")
	}
	if s.For(zoot) != nil {
		t.Fatal("IG table steered Zoot")
	}
	var nilSet *Set
	if nilSet.For(ig) != nil || nilSet.Len() != 0 {
		t.Fatal("nil set not inert")
	}
}
