package tune

import (
	"bytes"
	"testing"

	"repro/internal/topology"
)

// FuzzDecisionTable asserts the decision-table loader never panics and
// never accepts a table that breaks the Decider: any bytes Parse accepts
// must validate, re-encode canonically, and serve arbitrary lookups
// without panicking.
func FuzzDecisionTable(f *testing.F) {
	var valid bytes.Buffer
	if err := sampleTable(topology.ByName("IG")).Write(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"machine":"IG","fingerprint":"x","grid":{},"cells":[]}`))
	f.Add([]byte(`{"version":1,"machine":"IG","fingerprint":"x","grid":{},"cells":[{"op":"bcast","np":48,"size":1,"choice":{"comp":"KNEM-Coll"},"seconds":1e-300}]}`))
	f.Add([]byte(`{"version":1,"cells":[{"op":"bcast","np":-1,"size":-9223372036854775808,"seconds":1e309}]}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte("null"))
	f.Add([]byte("\x00\xff{"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tb, err := Parse(data)
		if err != nil {
			return
		}
		// Whatever Parse accepts must satisfy the structural invariants...
		if err := tb.Validate(); err != nil {
			t.Fatalf("Parse accepted a table Validate rejects: %v", err)
		}
		// ...re-encode canonically (Write must not fail on parsed input)...
		var buf bytes.Buffer
		if err := tb.Write(&buf); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if _, err := Parse(buf.Bytes()); err != nil {
			t.Fatalf("canonical re-encode does not re-parse: %v", err)
		}
		// ...and drive a Decider through hostile lookups without panicking.
		d := NewDecider(tb)
		for _, op := range append(Ops(), "reduce", "") {
			for _, np := range []int{-1, 0, 1, 2, 48, 1 << 20} {
				for _, size := range []int64{-1, 0, 1, 16 << 10, 1 << 20, 1 << 40} {
					if c, ok := d.Lookup(op, np, size); ok && c.Op != op {
						t.Fatalf("Lookup(%q) returned a cell for op %q", op, c.Op)
					}
				}
			}
		}
	})
}
