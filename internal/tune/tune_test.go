package tune

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/topology"
)

// sampleTable builds a minimal valid table for machine m.
func sampleTable(m *topology.Machine) *Table {
	return &Table{
		Version:     TableVersion,
		Machine:     m.Name,
		Fingerprint: Fingerprint(m),
		Grid: Grid{
			Ops: []string{OpBcast}, NPs: []int{m.NCores()},
			Sizes: []int64{64 << 10, 1 << 20}, Iters: 1, KeepFactor: 1.5,
		},
		Cells: []Cell{
			{
				Op: OpBcast, NP: m.NCores(), Size: 64 << 10,
				Choice: Choice{Comp: "KNEM-Coll", Mode: "hierarchical", Seg: 16 << 10}, Seconds: 1e-4,
				Alts: Alts{Knem: &Alt{Choice: Choice{Comp: "KNEM-Coll"}, Seconds: 1e-4, DefaultSeconds: 1.2e-4}},
			},
			{
				Op: OpBcast, NP: m.NCores(), Size: 1 << 20,
				Choice: Choice{Comp: "Tuned-SM", Fanout: 1}, Seconds: 2e-3,
				RunnerUp: "KNEM-Coll", RunnerUpSeconds: 2.5e-3,
			},
		},
	}
}

func TestTableRoundTrip(t *testing.T) {
	m := topology.ByName("Zoot")
	tb := sampleTable(m)
	if err := tb.Validate(); err != nil {
		t.Fatalf("sample table invalid: %v", err)
	}
	var buf bytes.Buffer
	if err := tb.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatalf("Parse round trip: %v", err)
	}
	if got.Machine != tb.Machine || got.Fingerprint != tb.Fingerprint || len(got.Cells) != len(tb.Cells) {
		t.Fatalf("round trip mutated table: %+v", got)
	}
	if got.Cells[1].Margin() == 0 {
		t.Fatalf("runner-up margin lost in round trip")
	}
	// Canonical encoding: writing the parsed table reproduces the bytes.
	var buf2 bytes.Buffer
	if err := got.Write(&buf2); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatalf("canonical encoding is not stable")
	}
}

func TestParseRejects(t *testing.T) {
	m := topology.ByName("Zoot")
	encode := func(mutate func(*Table)) []byte {
		tb := sampleTable(m)
		mutate(tb)
		var buf bytes.Buffer
		if err := tb.Write(&buf); err != nil {
			t.Fatalf("encode: %v", err)
		}
		return buf.Bytes()
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"bad version", encode(func(tb *Table) { tb.Version = 99 }), "version"},
		{"no machine", encode(func(tb *Table) { tb.Machine = "" }), "machine"},
		{"no fingerprint", encode(func(tb *Table) { tb.Fingerprint = "" }), "fingerprint"},
		{"no cells", encode(func(tb *Table) { tb.Cells = nil }), "no cells"},
		{"unknown op", encode(func(tb *Table) { tb.Cells[0].Op = "reduce" }), "unknown op"},
		{"unknown comp", encode(func(tb *Table) { tb.Cells[0].Choice.Comp = "OpenMPI" }), "unknown component"},
		{"unknown mode", encode(func(tb *Table) { tb.Cells[0].Choice.Mode = "spiral" }), "unknown mode"},
		{"bad fanout", encode(func(tb *Table) { tb.Cells[1].Choice.Fanout = 7 }), "out-of-range"},
		{"negative time", encode(func(tb *Table) { tb.Cells[0].Seconds = -1 }), "bad time"},
		{"bad alt time", encode(func(tb *Table) { tb.Cells[0].Alts.Knem.DefaultSeconds = 0 }), "bad time"},
		{"bad np", encode(func(tb *Table) { tb.Cells[0].NP = 0 }), "bad np"},
		{"bad size", encode(func(tb *Table) { tb.Cells[0].Size = 0 }), "bad size"},
		{"duplicate cell", encode(func(tb *Table) { tb.Cells[1] = tb.Cells[0] }), "duplicate"},
		{"unknown field", []byte(`{"version":1,"surprise":true}`), "unknown field"},
		{"trailing data", nil, "trailing"},
		{"not json", []byte("machine: Zoot"), "bad decision table"},
	}
	valid := encode(func(*Table) {})
	for i := range cases {
		if cases[i].name == "trailing data" {
			cases[i].data = append(append([]byte{}, valid...), []byte("{}")...)
		}
	}
	for _, tc := range cases {
		_, err := Parse(tc.data)
		if err == nil {
			t.Errorf("%s: accepted, want error", tc.name)
			continue
		}
		if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestValidateRejectsNonFiniteTimes covers what JSON cannot encode but a
// direct Validate caller could pass: NaN and infinite times.
func TestValidateRejectsNonFiniteTimes(t *testing.T) {
	m := topology.ByName("Zoot")
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0} {
		tb := sampleTable(m)
		tb.Cells[0].Seconds = bad
		if err := tb.Validate(); err == nil {
			t.Errorf("Seconds=%v accepted", bad)
		}
	}
}

func TestUnsortedCellsRejected(t *testing.T) {
	m := topology.ByName("Zoot")
	tb := sampleTable(m)
	tb.Cells[0], tb.Cells[1] = tb.Cells[1], tb.Cells[0]
	if err := tb.Validate(); err == nil || !strings.Contains(err.Error(), "sorted") {
		t.Fatalf("unsorted cells: got %v, want sort error", err)
	}
	tb.Sort()
	if err := tb.Validate(); err != nil {
		t.Fatalf("Sort did not restore canonical order: %v", err)
	}
}

func TestCheckMachine(t *testing.T) {
	zoot, ig := topology.ByName("Zoot"), topology.ByName("IG")
	tb := sampleTable(zoot)
	if err := tb.CheckMachine(zoot); err != nil {
		t.Fatalf("matching machine rejected: %v", err)
	}
	if err := tb.CheckMachine(ig); err == nil {
		t.Fatalf("table for Zoot accepted on IG")
	}
	// Same name, different structure: the fingerprint must catch it.
	tb2 := sampleTable(zoot)
	tb2.Fingerprint = "0123456789abcdef"
	err := tb2.CheckMachine(zoot)
	if err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("stale fingerprint: got %v, want fingerprint mismatch", err)
	}
}

func TestFingerprintDistinguishesMachines(t *testing.T) {
	seen := map[string]string{}
	for _, name := range []string{"Zoot", "Dancer", "Saturn", "IG"} {
		fp := Fingerprint(topology.ByName(name))
		if len(fp) != 16 {
			t.Fatalf("%s: fingerprint %q is not 16 hex chars", name, fp)
		}
		if prev, dup := seen[fp]; dup {
			t.Fatalf("machines %s and %s share fingerprint %s", prev, name, fp)
		}
		seen[fp] = name
		// Deterministic across calls.
		if Fingerprint(topology.ByName(name)) != fp {
			t.Fatalf("%s: fingerprint not deterministic", name)
		}
	}
}

func TestChoiceString(t *testing.T) {
	ch := Choice{Comp: "KNEM-Coll", Mode: "hierarchical", Seg: 16 << 10, Threshold: 4 << 10, Fanout: 2}
	got := ch.String()
	for _, want := range []string{"KNEM-Coll", "hierarchical", "seg=16K", "thr=4K", "fanout=2"} {
		if !strings.Contains(got, want) {
			t.Errorf("Choice.String() = %q, missing %q", got, want)
		}
	}
	if got := (Choice{Comp: "Tuned-SM"}).String(); got != "Tuned-SM" {
		t.Errorf("default choice renders as %q", got)
	}
}
