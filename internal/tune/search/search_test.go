package search

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/topology"
	"repro/internal/tune"
)

// TestSearchDeterministicAcrossParallel pins the tuner's reproducibility
// contract: the same machine, grid, and seed emit a byte-identical table at
// any parallelism level.
func TestSearchDeterministicAcrossParallel(t *testing.T) {
	o := Options{
		Machine: topology.ByName("Zoot"),
		Ops:     []string{tune.OpBcast},
		Sizes:   []int64{64 << 10, 1 << 20},
	}
	encode := func(parallel int) []byte {
		bench.SetParallel(parallel)
		defer bench.SetParallel(1)
		tb, err := Run(o)
		if err != nil {
			t.Fatalf("search at parallel=%d: %v", parallel, err)
		}
		var buf bytes.Buffer
		if err := tb.Write(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	seq := encode(1)
	par := encode(4)
	if !bytes.Equal(seq, par) {
		t.Fatalf("table differs between parallel=1 and parallel=4:\n--- seq ---\n%s\n--- par ---\n%s", seq, par)
	}
}

// TestTunedAtLeastAsFastAsDefaults is the acceptance guarantee: on every
// tuned cell, running with the decision table is at least as fast as the
// hardcoded default rules — first by construction in the recorded
// alternatives (defaults are never pruned), then end-to-end through the
// runtime Decider.
func TestTunedAtLeastAsFastAsDefaults(t *testing.T) {
	m := topology.ByName("Zoot")
	tb, err := Run(Options{
		Machine: m,
		Sizes:   []int64{64 << 10, 1 << 20},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Construction invariant: each family's tuned best never loses to the
	// family default measured on the same cell.
	for _, c := range tb.Cells {
		for name, a := range map[string]*tune.Alt{
			"knem": c.Alts.Knem, "tuned_sm": c.Alts.TunedSM, "tuned_knem": c.Alts.TunedKNEM,
		} {
			if a == nil {
				continue
			}
			if a.Seconds > a.DefaultSeconds {
				t.Errorf("%s np=%d size=%d: %s tuned best %.3gs slower than its default %.3gs",
					c.Op, c.NP, c.Size, name, a.Seconds, a.DefaultSeconds)
			}
		}
	}

	// End-to-end: measure the default components with and without the
	// Decider on every cell. The comparison is emitted as a table (the
	// same shape `tune diff -defaults` renders) and asserted per cell.
	dec := tune.NewDecider(tb)
	t.Logf("%-10s %6s  %12s %12s", "op", "size", "decided", "default")
	for _, c := range tb.Cells {
		for _, comp := range []bench.Comp{bench.KNEMColl(), bench.TunedSM()} {
			cfg := bench.Config{
				Machine: m, NP: c.NP, Comp: comp, Op: bench.Op(c.Op),
				Size: c.Size, Iters: 1, OffCache: true,
			}
			def := bench.MustMeasure(cfg)
			cfg.Decider = dec
			got := bench.MustMeasure(cfg)
			t.Logf("%-10s %6d  %10.1fus %10.1fus  %s", c.Op, c.Size,
				got.Seconds*1e6, def.Seconds*1e6, comp.Name)
			if got.Seconds > def.Seconds*(1+1e-9) {
				t.Errorf("%s %s np=%d size=%d: decided %.4gs slower than default %.4gs",
					comp.Name, c.Op, c.NP, c.Size, got.Seconds, def.Seconds)
			}
		}
	}
}

// TestFig4SegmentOptimaIG reproduces the paper's Fig. 4 tuning result on
// the simulated IG: among the swept pipeline segments, 16 KiB is the
// optimum for the hierarchical Broadcast below 2 MiB (strictly beating the
// 512 KiB the paper selects for large messages), and at 2 MiB and above the
// paper's 512 KiB stays within a bounded margin of the simulated best (the
// simulator's contention model keeps rewarding small segments at sizes
// where the real IG's cache hierarchy favoured 512 KiB; EXPERIMENTS.md
// records the deviation).
func TestFig4SegmentOptimaIG(t *testing.T) {
	m := topology.ByName("IG")
	segs := SegCandidates()
	sizes := bench.Fig4Sizes()
	var cfgs []bench.Config
	for _, seg := range segs {
		comp := bench.KNEMCollCfg(fmt.Sprintf("seg=%d", seg),
			core.Config{Mode: core.ModeHierarchical, FixedSeg: seg})
		for _, sz := range sizes {
			cfgs = append(cfgs, bench.Config{
				Machine: m, Comp: comp, Op: bench.OpBcast,
				Size: sz, Iters: 1, OffCache: true,
			})
		}
	}
	res := bench.MeasureAll(cfgs)
	timeOf := func(si, zi int) float64 { return res[si*len(sizes)+zi].Seconds }
	segIdx := func(want int64) int {
		for i, s := range segs {
			if s == want {
				return i
			}
		}
		t.Fatalf("segment %d not in SegCandidates", want)
		return -1
	}
	i16, i512 := segIdx(16<<10), segIdx(512<<10)
	for zi, sz := range sizes {
		best := 0
		for si := range segs {
			if timeOf(si, zi) < timeOf(best, zi) {
				best = si
			}
		}
		t.Logf("size=%-8d best seg=%-7d 16K=%.1fus 512K=%.1fus", sz, segs[best],
			timeOf(i16, zi)*1e6, timeOf(i512, zi)*1e6)
		if sz < 2<<20 {
			if segs[best] != 16<<10 {
				t.Errorf("size=%d: best segment %d, paper tunes 16K below 2M", sz, segs[best])
			}
			if timeOf(i16, zi) >= timeOf(i512, zi) {
				t.Errorf("size=%d: 16K segments (%.4gs) do not beat 512K (%.4gs)",
					sz, timeOf(i16, zi), timeOf(i512, zi))
			}
		} else if timeOf(i512, zi) > timeOf(best, zi)*1.10 {
			t.Errorf("size=%d: paper's 512K segment %.4gs more than 10%% off the best %.4gs",
				sz, timeOf(i512, zi), timeOf(best, zi))
		}
	}
}

// TestSearchRejectsBadGrids covers option validation.
func TestSearchRejectsBadGrids(t *testing.T) {
	m := topology.ByName("Zoot")
	for _, o := range []Options{
		{},
		{Machine: m, Ops: []string{"reduce"}},
		{Machine: m, Ops: []string{"alltoallv"}},
		{Machine: m, NPs: []int{0}},
		{Machine: m, NPs: []int{m.NCores() + 1}},
		{Machine: m, Sizes: []int64{0}},
	} {
		if _, err := Run(o); err == nil {
			t.Errorf("Run(%+v) accepted, want error", o)
		}
	}
}
