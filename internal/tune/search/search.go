// Package search is the autotuner's measurement-driven search driver: it
// sweeps candidate configurations — component choice, KNEM-Coll Broadcast
// mode, pipeline segment size, KNEM activation threshold, Tuned tree
// fanout — over a grid of (op, nranks, msgsize) cells on one machine, and
// emits a tune.Table recording each cell's winner.
//
// The sweep runs on internal/bench's deterministic parallel cell runner,
// so a search is reproducible bit-for-bit at any -parallel level: every
// cell simulates in its own engine, results are assembled in candidate
// order, and ties break toward the earlier candidate.
//
// Cost control is successive halving: every candidate is measured at a few
// probe sizes (smallest, middle, largest of the grid) first, and only
// candidates within KeepFactor of the probe best anywhere survive to the
// full grid. The all-default configuration of each component family is
// never pruned, which keeps two invariants: each cell can always record
// the family's default time next to its tuned best, and the tuned best is
// at least as fast as the default by construction.
package search

import (
	"fmt"
	"sort"

	"repro/internal/bench"
	"repro/internal/coll/hier"
	"repro/internal/coll/tuned"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/topology"
	"repro/internal/tune"
)

// DefaultKeepFactor is the successive-halving pruning rule: a non-default
// candidate survives the probe round only if, at some probe size, it was
// within this factor of that probe's best time.
const DefaultKeepFactor = 1.5

// Options configures one search.
type Options struct {
	Machine *topology.Machine
	// Cluster, when non-nil, runs a cluster search: Machine defaults to
	// the cluster's composite machine (and must equal it when both are
	// set), and the hierarchical node-leader family joins the candidate
	// grid for the operations it decomposes.
	Cluster *topology.Cluster
	// Ops to tune; default tune.Ops() minus the vector variants (their
	// per-rank counts admit no globally consistent size switch, so the
	// runtime cannot apply per-size decisions to them).
	Ops []string
	// NPs are the communicator sizes to tune; default the full machine.
	NPs []int
	// Sizes are the message/block sizes of the grid; default the paper's
	// Fig. 5-8 x-axis (32 KiB .. 8 MiB).
	Sizes []int64
	// Iters is the measured iterations per cell (default 1).
	Iters int
	// Seed is recorded in the table; the search itself draws no
	// randomness, so equal inputs always emit byte-identical tables.
	Seed int64
	// KeepFactor overrides DefaultKeepFactor.
	KeepFactor float64
	// Log, when non-nil, receives progress lines (pruning decisions,
	// per-op cell counts).
	Log func(format string, args ...any)
}

func (o *Options) fill() error {
	if o.Cluster != nil {
		if o.Machine == nil {
			o.Machine = o.Cluster.Global
		} else if o.Machine != o.Cluster.Global {
			return fmt.Errorf("search: Machine differs from Cluster.Global")
		}
	}
	if o.Machine == nil {
		return fmt.Errorf("search: no machine")
	}
	if len(o.Ops) == 0 {
		o.Ops = []string{tune.OpBcast, tune.OpGather, tune.OpScatter, tune.OpAllgather, tune.OpAlltoall}
	}
	if len(o.NPs) == 0 {
		o.NPs = []int{o.Machine.NCores()}
	}
	if len(o.Sizes) == 0 {
		o.Sizes = bench.PaperSizes()
	}
	if o.Iters == 0 {
		o.Iters = 1
	}
	if o.KeepFactor == 0 {
		o.KeepFactor = DefaultKeepFactor
	}
	if o.Log == nil {
		o.Log = func(string, ...any) {}
	}
	for _, op := range o.Ops {
		if !validOp(op) {
			return fmt.Errorf("search: cannot tune op %q (valid: %v)", op, tunableOps())
		}
	}
	for _, np := range o.NPs {
		if np < 1 || np > o.Machine.NCores() {
			return fmt.Errorf("search: np=%d out of range for %d cores", np, o.Machine.NCores())
		}
	}
	for _, sz := range o.Sizes {
		if sz < 1 {
			return fmt.Errorf("search: bad size %d", sz)
		}
	}
	return nil
}

func tunableOps() []string {
	return []string{tune.OpBcast, tune.OpGather, tune.OpScatter, tune.OpAllgather, tune.OpAlltoall}
}

func validOp(op string) bool {
	for _, o := range tunableOps() {
		if o == op {
			return true
		}
	}
	return false
}

// family groups candidates whose best the runtime can actually apply to
// one component; "other" components (MPICH2, SM-Coll) compete for the
// overall winner only.
type family int

const (
	famOther family = iota
	famKnem
	famTunedSM
	famTunedKNEM
)

type candidate struct {
	choice tune.Choice
	comp   bench.Comp
	fam    family
	// def marks the family's all-default configuration: never pruned, and
	// the baseline the family's tuned best is compared against.
	def bool
}

// SegCandidates is the pipeline-segment grid the tuner sweeps for the
// hierarchical Broadcast: the paper's tuned values (16 KiB, 512 KiB) plus
// the octaves between them.
func SegCandidates() []int64 {
	return []int64{16 << 10, 64 << 10, 256 << 10, 512 << 10}
}

// thresholdCandidates are alternative KNEM activation thresholds; the
// default 16 KiB is covered by the family default.
func thresholdCandidates() []int64 {
	return []int64{4 << 10, 64 << 10}
}

// candidates returns the deterministic candidate list for one op on one
// machine (plus the hierarchical family when a cluster is being searched).
// Order matters: winners tie-break toward earlier entries.
func candidates(m *topology.Machine, cl *topology.Cluster, op string) []candidate {
	var cands []candidate
	add := func(ch tune.Choice, fam family, def bool) {
		cands = append(cands, candidate{choice: ch, comp: compFor(ch, cl), fam: fam, def: def})
	}
	// Family defaults first: they are every cell's baseline.
	add(tune.Choice{Comp: "KNEM-Coll"}, famKnem, true)
	add(tune.Choice{Comp: "Tuned-SM"}, famTunedSM, true)
	add(tune.Choice{Comp: "Tuned-KNEM"}, famTunedKNEM, true)
	add(tune.Choice{Comp: "MPICH2-SM"}, famOther, true)
	add(tune.Choice{Comp: "MPICH2-KNEM"}, famOther, true)
	add(tune.Choice{Comp: "SM-Coll"}, famOther, true)
	for _, thr := range thresholdCandidates() {
		add(tune.Choice{Comp: "KNEM-Coll", Threshold: thr}, famKnem, false)
	}
	switch op {
	case tune.OpBcast:
		add(tune.Choice{Comp: "KNEM-Coll", Mode: "linear"}, famKnem, false)
		for _, seg := range SegCandidates() {
			add(tune.Choice{Comp: "KNEM-Coll", Mode: "hierarchical", Seg: seg}, famKnem, false)
		}
		if m.Boards() > 1 {
			add(tune.Choice{Comp: "KNEM-Coll", Mode: "multilevel"}, famKnem, false)
		}
		for _, fan := range []int{1, 2} {
			add(tune.Choice{Comp: "Tuned-SM", Fanout: fan}, famTunedSM, false)
			add(tune.Choice{Comp: "Tuned-KNEM", Fanout: fan}, famTunedKNEM, false)
		}
	case tune.OpAllgather:
		add(tune.Choice{Comp: "KNEM-Coll", Mode: "ring"}, famKnem, false)
	}
	// On cluster searches the hierarchical family competes for every op it
	// actually decomposes (the rest delegate to Tuned-SM and would only
	// duplicate its times). Defaults so the probe round never prunes them:
	// fabric-dominated cells can look hopeless at probe sizes yet win the
	// full grid.
	if cl != nil {
		switch op {
		case tune.OpBcast, tune.OpGather, tune.OpScatter, tune.OpAllgather:
			add(tune.Choice{Comp: "Hier-Tree"}, famOther, true)
			add(tune.Choice{Comp: "Hier-Ring"}, famOther, true)
		}
	}
	return cands
}

// compFor maps a search-space point to a measurable bench component. The
// explicit core/tuned Configs here mirror exactly what the runtime Decider
// application reconstructs from the persisted Choice, so a decided run
// reproduces the searched time.
func compFor(ch tune.Choice, cl *topology.Cluster) bench.Comp {
	name := ch.String()
	switch ch.Comp {
	case "Hier-Tree":
		return bench.Hier(cl)
	case "Hier-Ring":
		return bench.HierCfg(cl, hier.Config{Inter: "ring"})
	case "KNEM-Coll":
		cfg := core.Config{Threshold: ch.Threshold, FixedSeg: ch.Seg}
		switch ch.Mode {
		case "linear":
			cfg.Mode = core.ModeLinear
		case "hierarchical":
			cfg.Mode = core.ModeHierarchical
		case "multilevel":
			cfg.Mode = core.ModeMultiLevel
		case "ring":
			cfg.RingAllgather = true
		}
		return bench.KNEMCollCfg(name, cfg)
	case "Tuned-SM", "Tuned-KNEM":
		cfg := tuned.Config{Fanout: ch.Fanout, Seg: ch.Seg}
		btl := mpi.BTLSM
		if ch.Comp == "Tuned-KNEM" {
			btl = mpi.BTLKNEM
		}
		return bench.TunedCfg(name, btl, cfg)
	case "MPICH2-SM":
		return bench.MPICH2SM()
	case "MPICH2-KNEM":
		return bench.MPICH2KNEM()
	case "SM-Coll":
		return bench.SMColl()
	}
	panic("search: unknown component " + ch.Comp)
}

// Run executes the search and returns the validated decision table.
func Run(o Options) (*tune.Table, error) {
	if err := o.fill(); err != nil {
		return nil, err
	}
	sizes := append([]int64(nil), o.Sizes...)
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
	t := &tune.Table{
		Version:     tune.TableVersion,
		Machine:     o.Machine.Name,
		Fingerprint: tune.Fingerprint(o.Machine),
		Seed:        o.Seed,
		Grid: tune.Grid{
			Ops: append([]string(nil), o.Ops...), NPs: append([]int(nil), o.NPs...),
			Sizes: sizes, Iters: o.Iters, KeepFactor: o.KeepFactor,
		},
	}
	for _, op := range o.Ops {
		for _, np := range o.NPs {
			cells, err := searchOpNP(o, op, np, sizes)
			if err != nil {
				return nil, err
			}
			t.Cells = append(t.Cells, cells...)
		}
	}
	t.Sort()
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("search: emitted an invalid table: %w", err)
	}
	return t, nil
}

// searchOpNP runs the two successive-halving rounds for one (op, np) pair
// and builds its cells.
func searchOpNP(o Options, op string, np int, sizes []int64) ([]tune.Cell, error) {
	cands := candidates(o.Machine, o.Cluster, op)
	probes := probeSizes(sizes)

	measure := func(cs []candidate, szs []int64) [][]float64 {
		cfgs := make([]bench.Config, 0, len(cs)*len(szs))
		for _, c := range cs {
			for _, sz := range szs {
				cfgs = append(cfgs, bench.Config{
					Machine: o.Machine, NP: np, Comp: c.comp, Op: bench.Op(op),
					Size: sz, Iters: o.Iters, OffCache: true,
				})
			}
		}
		res := bench.MeasureAll(cfgs)
		out := make([][]float64, len(cs))
		for i := range cs {
			out[i] = make([]float64, len(szs))
			for j := range szs {
				out[i][j] = res[i*len(szs)+j].Seconds
			}
		}
		return out
	}

	probeT := measure(cands, probes)
	bestProbe := make([]float64, len(probes))
	for j := range probes {
		bestProbe[j] = probeT[0][j]
		for i := range cands {
			if probeT[i][j] < bestProbe[j] {
				bestProbe[j] = probeT[i][j]
			}
		}
	}
	var survivors []candidate
	survived := make([]bool, len(cands))
	for i, c := range cands {
		keep := c.def
		for j := range probes {
			if probeT[i][j] <= bestProbe[j]*o.KeepFactor {
				keep = true
			}
		}
		survived[i] = keep
		if keep {
			survivors = append(survivors, c)
		}
	}
	o.Log("%s np=%d: %d/%d candidates survive the %d-size probe (keep %.2fx)",
		op, np, len(survivors), len(cands), len(probes), o.KeepFactor)

	rest := restSizes(sizes, probes)
	restT := measure(survivors, rest)

	// timeAt returns candidate i's time at size sz, and whether it was
	// measured there (probe sizes: everyone; remaining sizes: survivors).
	timeAt := func(i int, sz int64) (float64, bool) {
		for j, p := range probes {
			if p == sz {
				return probeT[i][j], true
			}
		}
		if !survived[i] {
			return 0, false
		}
		si := 0
		for k := 0; k < i; k++ {
			if survived[k] {
				si++
			}
		}
		for j, rsz := range rest {
			if rsz == sz {
				return restT[si][j], true
			}
		}
		return 0, false
	}

	cells := make([]tune.Cell, 0, len(sizes))
	for _, sz := range sizes {
		cell := tune.Cell{Op: op, NP: np, Size: sz}
		winner, runner := -1, -1
		famBest := map[family]int{}
		famDefault := map[family]float64{}
		for i, c := range cands {
			ti, ok := timeAt(i, sz)
			if !ok {
				continue
			}
			if winner < 0 || ti < mustTime(timeAt(winner, sz)) {
				runner = winner
				winner = i
			} else if runner < 0 || ti < mustTime(timeAt(runner, sz)) {
				runner = i
			}
			if c.fam != famOther {
				if b, ok := famBest[c.fam]; !ok || ti < mustTime(timeAt(b, sz)) {
					famBest[c.fam] = i
				}
				if c.def {
					famDefault[c.fam] = ti
				}
			}
		}
		cell.Choice = cands[winner].choice
		cell.Seconds = mustTime(timeAt(winner, sz))
		if runner >= 0 {
			cell.RunnerUp = cands[runner].choice.String()
			cell.RunnerUpSeconds = mustTime(timeAt(runner, sz))
		}
		alt := func(f family) *tune.Alt {
			i, ok := famBest[f]
			if !ok {
				return nil
			}
			return &tune.Alt{
				Choice:         cands[i].choice,
				Seconds:        mustTime(timeAt(i, sz)),
				DefaultSeconds: famDefault[f],
			}
		}
		cell.Alts = tune.Alts{Knem: alt(famKnem), TunedSM: alt(famTunedSM), TunedKNEM: alt(famTunedKNEM)}
		cells = append(cells, cell)
	}
	return cells, nil
}

func mustTime(t float64, ok bool) float64 {
	if !ok {
		panic("search: time queried for an unmeasured candidate")
	}
	return t
}

// probeSizes picks the coarse successive-halving probes: the grid's
// smallest, middle, and largest sizes (the whole grid when it has three or
// fewer points).
func probeSizes(sizes []int64) []int64 {
	if len(sizes) <= 3 {
		return sizes
	}
	return []int64{sizes[0], sizes[len(sizes)/2], sizes[len(sizes)-1]}
}

func restSizes(sizes, probes []int64) []int64 {
	isProbe := map[int64]bool{}
	for _, p := range probes {
		isProbe[p] = true
	}
	var rest []int64
	for _, sz := range sizes {
		if !isProbe[sz] {
			rest = append(rest, sz)
		}
	}
	return rest
}
