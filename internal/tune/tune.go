// Package tune holds the empirical autotuner's persisted artifacts: the
// versioned decision-table format produced by the search driver
// (internal/tune/search, cmd/tune) and the runtime Decider that the
// collective components consult instead of their hardcoded switch points.
//
// The paper hand-tunes its one free parameter (Fig. 4: 16 KiB pipeline
// segments below 2 MiB, 512 KiB at or above) and hardcodes every switch
// point (the 16 KiB KNEM profitability threshold, the Tuned and MPICH2
// decision rules). Both are per-machine, per-size, per-nranks functions
// best discovered empirically. Because the simulator is deterministic, an
// exhaustive offline sweep is reproducible: the same machine, grid, and
// seed always emit a byte-identical table, at any parallelism level.
//
// A table is bound to one machine by a structural fingerprint (topology +
// calibration constants); loading it against a different machine is
// rejected, so a table tuned on IG can never silently steer Zoot.
//
// This package is a leaf: it depends only on internal/topology, so the
// runtime consumers (internal/mpi, internal/core, internal/coll/tuned) can
// import it without cycles. The measurement-driven search lives in
// internal/tune/search.
package tune

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"

	"repro/internal/topology"
)

// TableVersion is the current decision-table schema version. Tables with a
// different version are rejected by Validate.
const TableVersion = 1

// Operation names used in decision-table cells. They match the string
// values of bench.Op for the operations the tuner covers.
const (
	OpBcast     = "bcast"
	OpGather    = "gather"
	OpScatter   = "scatter"
	OpAllgather = "allgather"
	OpAlltoall  = "alltoall"
	OpAlltoallv = "alltoallv"
)

// Ops lists every operation the tuner knows, in canonical order.
func Ops() []string {
	return []string{OpBcast, OpGather, OpScatter, OpAllgather, OpAlltoall, OpAlltoallv}
}

// Choice is one point of the search space: a collective component plus the
// knobs the tuner may turn on it. Zero values mean "the component's
// default".
type Choice struct {
	// Comp names the winning component configuration: "KNEM-Coll",
	// "Tuned-SM", "Tuned-KNEM", "MPICH2-SM", "MPICH2-KNEM", "SM-Coll",
	// or — on cluster searches — "Hier-Tree" / "Hier-Ring".
	Comp string `json:"comp"`
	// Mode is the KNEM-Coll Broadcast topology ("linear", "hierarchical",
	// "multilevel") or "ring" for the KNEM-Coll ring Allgather; empty
	// keeps the component's automatic per-platform choice.
	Mode string `json:"mode,omitempty"`
	// Seg is the pipeline segment size in bytes (KNEM-Coll hierarchical
	// Broadcast, or the Tuned tree/chain pipelines); 0 keeps the default.
	Seg int64 `json:"seg,omitempty"`
	// Threshold is the KNEM activation threshold in bytes below which
	// KNEM-Coll delegates to its fallback; 0 keeps the default 16 KiB.
	Threshold int64 `json:"threshold,omitempty"`
	// Fanout selects the Tuned Broadcast tree fanout: 1 forces the
	// pipelined chain, 2 the pipelined binary tree; 0 keeps the
	// size-based rule.
	Fanout int `json:"fanout,omitempty"`
}

// String renders the choice compactly for tables and diffs.
func (ch Choice) String() string {
	s := ch.Comp
	if ch.Mode != "" {
		s += " " + ch.Mode
	}
	if ch.Seg > 0 {
		s += fmt.Sprintf(" seg=%s", sizeLabel(ch.Seg))
	}
	if ch.Threshold > 0 {
		s += fmt.Sprintf(" thr=%s", sizeLabel(ch.Threshold))
	}
	if ch.Fanout > 0 {
		s += fmt.Sprintf(" fanout=%d", ch.Fanout)
	}
	return s
}

// Alt records the best variant of one component family for a cell, so the
// runtime can steer that family even when the overall winner is a
// different component: KNEM-Coll needs its own best knobs (and the
// fallback's time, to know when delegating wins), and each Tuned flavour
// needs its best segment/fanout.
type Alt struct {
	Choice  Choice  `json:"choice"`
	Seconds float64 `json:"seconds"`
	// DefaultSeconds is the family's all-default configuration measured
	// on the same cell; the search never prunes the default candidates,
	// so Seconds <= DefaultSeconds always holds and tuned decisions are
	// at least as fast as the hardcoded rules on every tuned cell.
	DefaultSeconds float64 `json:"default_seconds"`
}

// Alts carries the per-family bests of one cell. A nil entry means the
// family was not part of the search space for this operation.
type Alts struct {
	// Knem is the best KNEM-Coll-internal configuration.
	Knem *Alt `json:"knem,omitempty"`
	// TunedSM is the best Tuned-over-SM configuration — also what the
	// KNEM-Coll fallback runs, so core compares Knem against it when
	// deciding whether to delegate.
	TunedSM *Alt `json:"tuned_sm,omitempty"`
	// TunedKNEM is the best Tuned-over-KNEM-BTL configuration.
	TunedKNEM *Alt `json:"tuned_knem,omitempty"`
}

// Cell is one tuned grid point: the winning configuration for (op, np,
// size) on the table's machine, with enough context to audit the decision.
type Cell struct {
	Op   string `json:"op"`
	NP   int    `json:"np"`
	Size int64  `json:"size"`
	// Choice is the overall winner and Seconds its simulated time.
	Choice  Choice  `json:"choice"`
	Seconds float64 `json:"seconds"`
	// RunnerUp is the best non-winning candidate and its time; the margin
	// (RunnerUpSeconds/Seconds - 1) says how contested the cell was.
	RunnerUp        string  `json:"runner_up,omitempty"`
	RunnerUpSeconds float64 `json:"runner_up_seconds,omitempty"`
	// Alts are the per-family bests the runtime components consult.
	Alts Alts `json:"alts"`
}

// Margin is the runner-up's slowdown relative to the winner (0 when no
// runner-up was recorded).
func (c Cell) Margin() float64 {
	if c.RunnerUpSeconds <= 0 || c.Seconds <= 0 {
		return 0
	}
	return c.RunnerUpSeconds/c.Seconds - 1
}

// Grid records the search inputs, so a table documents how it was made and
// a re-run can reproduce it bit-for-bit.
type Grid struct {
	Ops   []string `json:"ops"`
	NPs   []int    `json:"nps"`
	Sizes []int64  `json:"sizes"`
	Iters int      `json:"iters"`
	// KeepFactor is the successive-halving pruning rule: after the probe
	// sizes, a candidate survives only if at some probe it was within
	// KeepFactor x the probe's best (defaults never pruned).
	KeepFactor float64 `json:"keep_factor"`
}

// Table is a persisted decision table for one machine.
type Table struct {
	Version     int    `json:"version"`
	Machine     string `json:"machine"`
	Fingerprint string `json:"fingerprint"`
	Seed        int64  `json:"seed"`
	Grid        Grid   `json:"grid"`
	Cells       []Cell `json:"cells"`
}

// knownComps are the component names a valid cell may reference.
var knownComps = map[string]bool{
	"KNEM-Coll": true, "Tuned-SM": true, "Tuned-KNEM": true,
	"MPICH2-SM": true, "MPICH2-KNEM": true, "SM-Coll": true, "Basic-SM": true,
	"Hier-Tree": true, "Hier-Ring": true,
}

func validChoice(ch Choice, where string) error {
	if !knownComps[ch.Comp] {
		return fmt.Errorf("tune: %s: unknown component %q", where, ch.Comp)
	}
	switch ch.Mode {
	case "", "linear", "hierarchical", "multilevel", "ring":
	default:
		return fmt.Errorf("tune: %s: unknown mode %q", where, ch.Mode)
	}
	if ch.Seg < 0 || ch.Threshold < 0 || ch.Fanout < 0 || ch.Fanout > 2 {
		return fmt.Errorf("tune: %s: negative or out-of-range knob (seg=%d thr=%d fanout=%d)",
			where, ch.Seg, ch.Threshold, ch.Fanout)
	}
	return nil
}

func validSeconds(s float64, where string) error {
	if math.IsNaN(s) || math.IsInf(s, 0) || s <= 0 {
		return fmt.Errorf("tune: %s: bad time %v (want finite > 0)", where, s)
	}
	return nil
}

func validAlt(a *Alt, where string) error {
	if a == nil {
		return nil
	}
	if err := validChoice(a.Choice, where); err != nil {
		return err
	}
	if err := validSeconds(a.Seconds, where); err != nil {
		return err
	}
	return validSeconds(a.DefaultSeconds, where+" default")
}

// Validate checks the table's structural invariants: schema version,
// non-empty machine and fingerprint, known operations and components,
// finite positive times, and cells unique and sorted by (op, np, size).
func (t *Table) Validate() error {
	if t.Version != TableVersion {
		return fmt.Errorf("tune: table version %d, this build reads version %d", t.Version, TableVersion)
	}
	if t.Machine == "" {
		return fmt.Errorf("tune: table has no machine name")
	}
	if t.Fingerprint == "" {
		return fmt.Errorf("tune: table has no machine fingerprint")
	}
	if len(t.Cells) == 0 {
		return fmt.Errorf("tune: table has no cells")
	}
	ops := map[string]bool{}
	for _, op := range Ops() {
		ops[op] = true
	}
	for i, c := range t.Cells {
		where := fmt.Sprintf("cell %d (%s np=%d size=%d)", i, c.Op, c.NP, c.Size)
		if !ops[c.Op] {
			return fmt.Errorf("tune: %s: unknown op %q", where, c.Op)
		}
		if c.NP < 1 {
			return fmt.Errorf("tune: %s: bad np", where)
		}
		if c.Size < 1 {
			return fmt.Errorf("tune: %s: bad size", where)
		}
		if err := validChoice(c.Choice, where); err != nil {
			return err
		}
		if err := validSeconds(c.Seconds, where); err != nil {
			return err
		}
		if c.RunnerUpSeconds != 0 {
			if err := validSeconds(c.RunnerUpSeconds, where+" runner-up"); err != nil {
				return err
			}
		}
		if err := validAlt(c.Alts.Knem, where+" alts.knem"); err != nil {
			return err
		}
		if err := validAlt(c.Alts.TunedSM, where+" alts.tuned_sm"); err != nil {
			return err
		}
		if err := validAlt(c.Alts.TunedKNEM, where+" alts.tuned_knem"); err != nil {
			return err
		}
		if i > 0 && !cellLess(t.Cells[i-1], c) {
			if t.Cells[i-1].Op == c.Op && t.Cells[i-1].NP == c.NP && t.Cells[i-1].Size == c.Size {
				return fmt.Errorf("tune: %s: duplicate cell", where)
			}
			return fmt.Errorf("tune: %s: cells not sorted by (op, np, size)", where)
		}
	}
	return nil
}

func cellLess(a, b Cell) bool {
	if a.Op != b.Op {
		return a.Op < b.Op
	}
	if a.NP != b.NP {
		return a.NP < b.NP
	}
	return a.Size < b.Size
}

// Sort orders cells canonically by (op, np, size); Write calls it so the
// emitted bytes never depend on search scheduling.
func (t *Table) Sort() {
	sort.Slice(t.Cells, func(i, j int) bool { return cellLess(t.Cells[i], t.Cells[j]) })
}

// Parse decodes and validates a table from raw JSON. Unknown fields are
// rejected so a future-version table cannot be silently misread.
func Parse(data []byte) (*Table, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var t Table
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("tune: bad decision table: %w", err)
	}
	// Trailing garbage after the JSON value is an error too.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, fmt.Errorf("tune: trailing data after decision table")
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// Load reads a decision table from path. When m is non-nil the table must
// have been built for that exact machine: the name and the structural
// fingerprint both have to match, so stale or foreign tables are rejected
// instead of silently steering the wrong hardware.
func Load(path string, m *topology.Machine) (*Table, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tune: %w", err)
	}
	t, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("tune: %s: %w", path, err)
	}
	if m != nil {
		if err := t.CheckMachine(m); err != nil {
			return nil, fmt.Errorf("tune: %s: %w", path, err)
		}
	}
	return t, nil
}

// CheckMachine verifies the table was built for machine m.
func (t *Table) CheckMachine(m *topology.Machine) error {
	if t.Machine != m.Name {
		return fmt.Errorf("table is for machine %q, not %q", t.Machine, m.Name)
	}
	if fp := Fingerprint(m); t.Fingerprint != fp {
		return fmt.Errorf("machine fingerprint mismatch: table %s, machine %s (the machine model changed since the table was tuned; re-run `tune search`)", t.Fingerprint, fp)
	}
	return nil
}

// Write emits the table as canonical JSON: cells sorted, two-space
// indentation, a trailing newline. Identical tables encode to identical
// bytes, which the CI determinism guard relies on.
func (t *Table) Write(w io.Writer) error {
	t.Sort()
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return fmt.Errorf("tune: encode table: %w", err)
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// WriteFile writes the canonical encoding to path.
func (t *Table) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("tune: %w", err)
	}
	if err := t.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Fingerprint returns a short stable hash of everything that shapes a
// machine's simulated timing: the calibration constants and the full
// topology (links with bandwidths, domains, boards, cache groups, core
// placement). Two machines with equal fingerprints time every collective
// identically, so a decision table transfers exactly between them and to
// nothing else.
func Fingerprint(m *topology.Machine) string {
	var b strings.Builder
	s := m.Spec
	fmt.Fprintf(&b, "%s|spec %g %g %g %g %g %g %g", m.Name,
		s.CoreCopyBW, s.KernelTrap, s.CopySetup, s.PinPerPage, s.CtrlLatency, s.Flops, s.DMABw)
	for _, l := range m.Links {
		fmt.Fprintf(&b, "|link %d %s %g", l.Index, l.Name, l.BW)
		if l.Lat != 0 {
			// Emitted only when set so latency-free machines (every
			// single-node model) keep their pre-cluster fingerprints and
			// committed decision tables stay valid.
			fmt.Fprintf(&b, " lat%g", l.Lat)
		}
	}
	for _, d := range m.Domains {
		fmt.Fprintf(&b, "|dom %d v%d b%d", d.ID, d.Vertex, d.Board)
		for _, c := range d.Cores {
			fmt.Fprintf(&b, " c%d", c.ID)
		}
	}
	for _, c := range m.Cores {
		g := -1
		if c.Group != nil {
			g = c.Group.ID
		}
		fmt.Fprintf(&b, "|core %d v%d g%d", c.ID, c.Vertex, g)
	}
	for _, g := range m.Groups {
		fmt.Fprintf(&b, "|grp %d v%d sz%d", g.ID, g.Vertex, g.Size)
	}
	sum := sha256.Sum256([]byte(b.String()))
	return fmt.Sprintf("%x", sum[:8])
}

// ContentHash returns a short stable hash of the table's canonical
// encoding (Write's bytes). The benchmark memoization layer folds it into
// its cache keys: runs steered by byte-identical tables share cached
// cells, and any decision drift invalidates them.
func (t *Table) ContentHash() string {
	var b strings.Builder
	if err := t.Write(&b); err != nil {
		// A validated in-memory table always encodes; refuse to guess.
		panic(fmt.Sprintf("tune: encoding table for hash: %v", err))
	}
	sum := sha256.Sum256([]byte(b.String()))
	return fmt.Sprintf("%x", sum[:8])
}

func sizeLabel(n int64) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dK", n>>10)
	}
	return fmt.Sprintf("%d", n)
}
