package bench

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/topology"
	"repro/internal/tune"
)

// decisions holds the process-wide tuned decision set (imb -decisions):
// every Measure cell whose machine matches one of its tables runs under
// tuned decisions, so all figure builders can be rerun tuned without
// threading a parameter through every builder. Nil-safe: the zero value
// applies no decisions.
var decisions atomic.Pointer[decisionSet]

type decisionSet struct{ set *tune.Set }

func (d *decisionSet) For(m *topology.Machine) *tune.Decider {
	if d == nil {
		return nil
	}
	return d.set.For(m)
}

// SetDecisions installs the global tuned decision set consulted by Measure
// for configs without an explicit Decider; nil clears it.
func SetDecisions(s *tune.Set) {
	decisions.Store(&decisionSet{set: s})
}

// The sweep layer is embarrassingly parallel: every Measure cell owns a
// private sim.Engine, memsim.Net, and trace.Stats, and only reads the
// shared *topology.Machine (immutable after Build). Cells therefore run
// concurrently on a worker pool, while results are always assembled in
// cell-index order — so every rendered table is byte-identical to the
// sequential run regardless of the parallelism level.

// parallelism is the worker count used by runCells; 1 means sequential.
var parallelism atomic.Int32

// SetParallel sets the number of measurement cells run concurrently by the
// sweep builders (figures, scalability, ablations, Table 1). n < 1 is
// treated as 1 (sequential, the default).
func SetParallel(n int) {
	if n < 1 {
		n = 1
	}
	parallelism.Store(int32(n))
}

// Parallel returns the current sweep parallelism level.
func Parallel() int {
	if p := parallelism.Load(); p > 1 {
		return int(p)
	}
	return 1
}

// runCells executes fn(0..n-1), each call measuring one independent cell
// that writes only to its own result slot. With parallelism 1 the cells run
// in index order on the calling goroutine, exactly like the historical
// sequential sweeps; otherwise a worker pool drains the index space. A
// panic in any cell (MustMeasure on a deadlocked simulation) is re-raised
// on the caller after all workers stop.
func runCells(n int, fn func(i int)) {
	workers := Parallel()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		panicMu sync.Mutex
		panicV  any
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicV == nil {
						panicV = r
					}
					panicMu.Unlock()
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicV != nil {
		panic(fmt.Sprintf("bench: parallel cell failed: %v", panicV))
	}
}

// MeasureAll runs every config as one cell on the worker pool and returns
// the results in input order; it panics if any cell's simulation fails.
func MeasureAll(cfgs []Config) []Result {
	out := make([]Result, len(cfgs))
	runCells(len(cfgs), func(i int) {
		out[i] = MustMeasure(cfgs[i])
	})
	return out
}

// MeasureAllCtx is MeasureAll under a context, returning errors instead of
// panicking: cancelling ctx stops the sweep — workers take no new cells,
// and in-flight cells abort through the engine interrupt poll — with every
// leased engine shard released back to the pool. When multiple cells fail,
// the error of the lowest-indexed failing cell is returned, so the
// reported error does not depend on worker interleaving. On any error the
// partial results are discarded.
func MeasureAllCtx(ctx context.Context, cfgs []Config) ([]Result, error) {
	out := make([]Result, len(cfgs))
	if err := runCellsCtx(ctx, len(cfgs), func(i int) error {
		var err error
		out[i], err = MeasureCtx(ctx, cfgs[i])
		return err
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// runCellsCtx is runCells with cooperative cancellation and error
// propagation: fn(i) runs for each index on the worker pool until every
// index completes, an fn returns an error, or ctx is cancelled. The first
// error by cell index wins (deterministic across interleavings); a
// cancelled ctx surfaces as its own error when no cell failed first.
func runCellsCtx(ctx context.Context, n int, fn func(i int) error) error {
	workers := Parallel()
	if workers > n {
		workers = n
	}
	var (
		next   atomic.Int64
		wg     sync.WaitGroup
		mu     sync.Mutex
		errAt  = -1
		errVal error
	)
	fail := func(i int, err error) {
		mu.Lock()
		if errAt < 0 || i < errAt {
			errAt, errVal = i, err
		}
		mu.Unlock()
	}
	stopped := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return errAt >= 0
	}
	body := func() {
		for {
			if err := ctx.Err(); err != nil {
				fail(n, err) // rank context errors after any real cell error
				return
			}
			if stopped() {
				return
			}
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			if err := fn(i); err != nil {
				fail(i, err)
				return
			}
		}
	}
	if workers <= 1 {
		body()
		return errVal
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body()
		}()
	}
	wg.Wait()
	return errVal
}
