package bench

import (
	"context"
	"encoding/json"
	"reflect"
	"sync"
	"testing"

	"repro/internal/topology"
)

// TestConcurrentMemoSingleflight hammers one sharded cache directory from
// many goroutines issuing a mix of hits, misses, and populates over a
// small set of distinct cells. The singleflight layer must collapse every
// concurrent duplicate — the miss counter equals the number of distinct
// cells, i.e. no cell is ever simulated twice — and every returned result
// must be byte-identical to the uncached sequential measurement.
func TestConcurrentMemoSingleflight(t *testing.T) {
	m := topology.Dancer()
	sizes := []int64{32 * KiB, 64 * KiB, 128 * KiB, 256 * KiB}
	DisableCache()
	want := make([]Result, len(sizes))
	for i, sz := range sizes {
		want[i] = MustMeasure(memoTestConfig(m, sz))
	}

	dir := t.TempDir()
	if err := EnableCache(dir); err != nil {
		t.Fatal(err)
	}
	defer DisableCache()

	const goroutines = 24
	got := make([][]Result, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got[g] = make([]Result, len(sizes))
			for i := range sizes {
				// Stagger the order per goroutine so hit/miss/populate and
				// in-flight waits interleave differently on every run.
				j := (i + g) % len(sizes)
				r, err := MeasureCtx(context.Background(), memoTestConfig(m, sizes[j]))
				if err != nil {
					t.Error(err)
					return
				}
				got[g][j] = r
			}
		}(g)
	}
	wg.Wait()

	for g := range got {
		for i := range sizes {
			if got[g][i].Seconds != want[i].Seconds || !reflect.DeepEqual(got[g][i].Stats, want[i].Stats) {
				t.Fatalf("goroutine %d cell %d diverges: %v vs %v", g, i, got[g][i].Seconds, want[i].Seconds)
			}
		}
	}
	hits, misses := CacheCounts()
	if misses != int64(len(sizes)) {
		t.Fatalf("%d misses for %d distinct cells: a concurrent duplicate was simulated", misses, len(sizes))
	}
	if total := int64(goroutines * len(sizes)); hits != total-misses {
		t.Fatalf("counts don't balance: %d hits + %d misses != %d calls", hits, misses, total)
	}

	// Byte-identical read-back through the persistent layer: a fresh cache
	// over the same directory must serve every cell from disk, and the
	// JSON-serialized results must match the sequential ones exactly.
	DisableCache()
	if err := EnableCache(dir); err != nil {
		t.Fatal(err)
	}
	for i, sz := range sizes {
		r := MustMeasure(memoTestConfig(m, sz))
		a, _ := json.Marshal(Result{Seconds: r.Seconds, Stats: r.Stats})
		b, _ := json.Marshal(Result{Seconds: want[i].Seconds, Stats: want[i].Stats})
		if string(a) != string(b) {
			t.Fatalf("disk read-back not byte-identical for size %d:\n%s\n%s", sz, a, b)
		}
	}
	if hits, misses := CacheCounts(); misses != 0 || hits != int64(len(sizes)) {
		t.Fatalf("read-back counts = %d hits, %d misses; want %d, 0", hits, misses, len(sizes))
	}
	if DedupedCount() != 0 {
		t.Fatalf("sequential read-back recorded %d deduped calls", DedupedCount())
	}
}
