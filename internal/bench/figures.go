package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/topology"
)

// Series is one line of a figure: a component measured across sizes.
type Series struct {
	Label   string
	Seconds map[int64]float64 // size -> seconds
}

// Panel is one subplot: several components on one machine, normalized to
// Baseline when rendered (the paper normalizes runtimes so lower = better,
// with the reference at 1.0).
type Panel struct {
	Title    string
	Machine  string
	Baseline string
	Sizes    []int64
	Series   []Series
}

// Figure is a set of panels plus identification of the paper artifact it
// regenerates.
type Figure struct {
	ID     string
	Title  string
	Panels []Panel
}

// sweep measures comps × sizes on one machine for one op. Cells run on the
// shared worker pool (SetParallel) and are assembled comp-major in index
// order, so the output is independent of the parallelism level.
func sweep(m *topology.Machine, np int, op Op, comps []Comp, sizes []int64, iters int, offCache bool) []Series {
	cfgs := make([]Config, 0, len(comps)*len(sizes))
	for _, c := range comps {
		for _, sz := range sizes {
			cfgs = append(cfgs, Config{
				Machine: m, NP: np, Comp: c, Op: op, Size: sz,
				Iters: iters, OffCache: offCache,
			})
		}
	}
	results := MeasureAll(cfgs)
	out := make([]Series, len(comps))
	for i, c := range comps {
		out[i] = Series{Label: c.Name, Seconds: make(map[int64]float64)}
		for j, sz := range sizes {
			out[i].Seconds[sz] = results[i*len(sizes)+j].Seconds
		}
	}
	return out
}

// opFigure builds one of the Fig 5-8 style figures: the op measured on all
// four platforms with the five paper configurations, normalized to
// KNEM-Coll.
func opFigure(id, title string, op Op, sizes []int64, iters int) Figure {
	fig := Figure{ID: id, Title: title}
	for _, m := range []*topology.Machine{topology.Zoot(), topology.Dancer(), topology.Saturn(), topology.IG()} {
		fig.Panels = append(fig.Panels, Panel{
			Title:    fmt.Sprintf("%s on %s", title, m.Name),
			Machine:  m.Name,
			Baseline: "KNEM-Coll",
			Sizes:    sizes,
			Series:   sweep(m, m.NCores(), op, PaperComponents(), sizes, iters, true),
		})
	}
	return fig
}

// Fig5 regenerates Figure 5: Broadcast comparison on all platforms.
func Fig5(iters int) Figure {
	return opFigure("fig5", "Broadcast", OpBcast, PaperSizes(), iters)
}

// Fig6 regenerates Figure 6: Gather comparison.
func Fig6(iters int) Figure {
	return opFigure("fig6", "Gather", OpGather, PaperSizes(), iters)
}

// ScatterFigure regenerates the §VI-C Scatter discussion (no paper figure;
// the text reports maximum speedups of ~3x/2x/4x/4x).
func ScatterFigure(iters int) Figure {
	return opFigure("scatter", "Scatter", OpScatter, PaperSizes(), iters)
}

// Fig7 regenerates Figure 7: Alltoallv comparison.
func Fig7(iters int) Figure {
	return opFigure("fig7", "Alltoallv", OpAlltoallv, PaperSizes(), iters)
}

// Fig8 regenerates Figure 8: Allgather comparison.
func Fig8(iters int) Figure {
	return opFigure("fig8", "Allgather", OpAllgather, PaperSizes(), iters)
}

// Fig4 regenerates Figure 4: pipeline-size tuning of the hierarchical
// pipelined Broadcast on IG. Series: the linear algorithm, and the
// hierarchical algorithm with pipeline segments from 4 KiB to 2 MiB;
// normalized against hierarchical-without-pipeline.
func Fig4(iters int) Figure {
	m := topology.IG()
	comps := []Comp{
		KNEMCollCfg("no-pipeline", core.Config{Mode: core.ModeHierarchical, NoPipeline: true}),
		KNEMCollCfg("linear", core.Config{Mode: core.ModeLinear}),
	}
	for _, seg := range []int64{4 * KiB, 8 * KiB, 16 * KiB, 32 * KiB, 64 * KiB, 128 * KiB, 256 * KiB, 512 * KiB, 1 * MiB, 2 * MiB} {
		comps = append(comps, KNEMCollCfg(
			segLabel(seg),
			core.Config{Mode: core.ModeHierarchical, FixedSeg: seg},
		))
	}
	return Figure{
		ID:    "fig4",
		Title: "Hierarchical pipelined Broadcast tuning on IG",
		Panels: []Panel{{
			Title:    "Pipeline size tuning (IG, 48 ranks)",
			Machine:  m.Name,
			Baseline: "no-pipeline",
			Sizes:    Fig4Sizes(),
			Series:   sweep(m, m.NCores(), OpBcast, comps, Fig4Sizes(), iters, true),
		}},
	}
}

func segLabel(seg int64) string {
	if seg >= MiB {
		return fmt.Sprintf("%dMB", seg/MiB)
	}
	return fmt.Sprintf("%dKB", seg/KiB)
}

// Normalized returns series values divided by the baseline series at each
// size (the paper's y-axis).
func (p Panel) Normalized() []Series {
	var base Series
	for _, s := range p.Series {
		if s.Label == p.Baseline {
			base = s
		}
	}
	if base.Seconds == nil {
		panic("bench: baseline series " + p.Baseline + " missing")
	}
	out := make([]Series, len(p.Series))
	for i, s := range p.Series {
		out[i] = Series{Label: s.Label, Seconds: make(map[int64]float64, len(s.Seconds))}
		for sz, v := range s.Seconds {
			out[i].Seconds[sz] = v / base.Seconds[sz]
		}
	}
	return out
}

// Get returns the series with the given label.
func (p Panel) Get(label string) Series {
	for _, s := range p.Series {
		if s.Label == label {
			return s
		}
	}
	panic("bench: no series " + label)
}

// Render prints the panel as an aligned table: absolute microseconds and
// the normalized value per cell.
func (p Panel) Render(w io.Writer) {
	fmt.Fprintf(w, "## %s (normalized to %s; lower is better)\n", p.Title, p.Baseline)
	norm := p.Normalized()
	fmt.Fprintf(w, "%12s", "size")
	for _, s := range p.Series {
		fmt.Fprintf(w, " %18s", s.Label)
	}
	fmt.Fprintln(w)
	sizes := append([]int64(nil), p.Sizes...)
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
	for _, sz := range sizes {
		fmt.Fprintf(w, "%12s", sizeLabel(sz))
		for i, s := range p.Series {
			fmt.Fprintf(w, " %10.1fus %5.2fx", s.Seconds[sz]*1e6, norm[i].Seconds[sz])
		}
		fmt.Fprintln(w)
	}
}

// Render prints every panel of the figure.
func (f Figure) Render(w io.Writer) {
	fmt.Fprintf(w, "# %s: %s\n", f.ID, f.Title)
	for _, p := range f.Panels {
		p.Render(w)
		fmt.Fprintln(w)
	}
}

func sizeLabel(sz int64) string {
	switch {
	case sz >= MiB:
		return fmt.Sprintf("%dM", sz/MiB)
	default:
		return fmt.Sprintf("%dK", sz/KiB)
	}
}

// figureJSON mirrors Figure with JSON-friendly series (maps keyed by int64
// are awkward in JSON, so points become sorted arrays).
type figureJSON struct {
	ID     string      `json:"id"`
	Title  string      `json:"title"`
	Panels []panelJSON `json:"panels"`
}

type panelJSON struct {
	Title    string       `json:"title"`
	Machine  string       `json:"machine"`
	Baseline string       `json:"baseline"`
	Series   []seriesJSON `json:"series"`
}

type seriesJSON struct {
	Label  string      `json:"label"`
	Points []pointJSON `json:"points"`
}

type pointJSON struct {
	Size       int64   `json:"size"`
	Seconds    float64 `json:"seconds"`
	Normalized float64 `json:"normalized"`
}

// WriteJSON emits the figure as JSON, including per-point normalized
// values, for downstream plotting.
func (f Figure) WriteJSON(w io.Writer) error {
	out := figureJSON{ID: f.ID, Title: f.Title}
	for _, p := range f.Panels {
		pj := panelJSON{Title: p.Title, Machine: p.Machine, Baseline: p.Baseline}
		norm := p.Normalized()
		sizes := append([]int64(nil), p.Sizes...)
		sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
		for i, s := range p.Series {
			sj := seriesJSON{Label: s.Label}
			for _, sz := range sizes {
				sj.Points = append(sj.Points, pointJSON{
					Size: sz, Seconds: s.Seconds[sz], Normalized: norm[i].Seconds[sz],
				})
			}
			pj.Series = append(pj.Series, sj)
		}
		out.Panels = append(out.Panels, pj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
