package bench

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/topology"
)

// Ablations quantify the design choices DESIGN.md calls out, each as an
// A/B measurement on the platform where it matters.

// AblationRow is one A/B comparison.
type AblationRow struct {
	Name    string
	A, B    string
	SecsA   float64
	SecsB   float64
	Speedup float64 // A/B: how much the design choice (B) wins
}

// RunAblations measures every documented design choice.
func RunAblations(iters int) []AblationRow {
	ig := topology.IG()
	rows := []AblationRow{}
	add := func(name, a, b string, sa, sb float64) {
		rows = append(rows, AblationRow{Name: name, A: a, B: b, SecsA: sa, SecsB: sb, Speedup: sa / sb})
	}

	// 1. Broadcast topology (§IV): linear vs hierarchical vs pipelined.
	lin := MustMeasure(Config{Machine: ig, Comp: KNEMCollCfg("lin", core.Config{Mode: core.ModeLinear}), Op: OpBcast, Size: 2 * MiB, Iters: iters, OffCache: true})
	hier := MustMeasure(Config{Machine: ig, Comp: KNEMCollCfg("hier", core.Config{Mode: core.ModeHierarchical, NoPipeline: true}), Op: OpBcast, Size: 2 * MiB, Iters: iters, OffCache: true})
	pipe := MustMeasure(Config{Machine: ig, Comp: KNEMCollCfg("pipe", core.Config{Mode: core.ModeHierarchical}), Op: OpBcast, Size: 2 * MiB, Iters: iters, OffCache: true})
	add("bcast topology (IG, 2MiB)", "linear", "hierarchical", lin.Seconds, hier.Seconds)
	add("bcast pipelining (IG, 2MiB)", "no pipeline", "pipelined", hier.Seconds, pipe.Seconds)

	// 1b. Multi-level tree (the paper's future work): boards, then NUMA
	// domains, then cores.
	multi := MustMeasure(Config{Machine: ig, Comp: KNEMCollCfg("multi", core.Config{Mode: core.ModeMultiLevel}), Op: OpBcast, Size: 8 * MiB, Iters: iters, OffCache: true})
	pipe8 := MustMeasure(Config{Machine: ig, Comp: KNEMCollCfg("pipe8", core.Config{Mode: core.ModeHierarchical}), Op: OpBcast, Size: 8 * MiB, Iters: iters, OffCache: true})
	add("bcast tree depth (IG, 8MiB)", "2-level (paper)", "3-level (future work)", pipe8.Seconds, multi.Seconds)

	// 2. Allgather composition vs ring (§VI-D).
	comp := MustMeasure(Config{Machine: ig, Comp: KNEMCollCfg("g+b", core.Config{}), Op: OpAllgather, Size: 256 * KiB, Iters: iters, OffCache: true})
	ring := MustMeasure(Config{Machine: ig, Comp: KNEMCollCfg("ring", core.Config{RingAllgather: true}), Op: OpAllgather, Size: 256 * KiB, Iters: iters, OffCache: true})
	add("allgather (IG, 256KiB blocks)", "gather+bcast", "ring", comp.Seconds, ring.Seconds)

	// 3. Direction control (§III-B): gather with sender-writes vs the same
	// pattern forced through receiver-side point-to-point (Tuned-KNEM).
	dirOn := MustMeasure(Config{Machine: ig, Comp: KNEMColl(), Op: OpGather, Size: 256 * KiB, Iters: iters, OffCache: true})
	dirOff := MustMeasure(Config{Machine: ig, Comp: TunedKNEM(), Op: OpGather, Size: 256 * KiB, Iters: iters, OffCache: true})
	add("gather direction control (IG)", "p2p (root copies)", "sender-writes", dirOff.Seconds, dirOn.Seconds)

	// 4. Related work (§II): the Graham et al. fan-in/fan-out SM tree —
	// topology-oblivious and double-copying — against KNEM-Coll.
	smc := MustMeasure(Config{Machine: ig, Comp: SMColl(), Op: OpBcast, Size: 1 * MiB, Iters: iters, OffCache: true})
	knm := MustMeasure(Config{Machine: ig, Comp: KNEMColl(), Op: OpBcast, Size: 1 * MiB, Iters: iters, OffCache: true})
	add("vs Graham SM tree (IG bcast 1MiB)", "SM fan-out", "KNEM hierarchy", smc.Seconds, knm.Seconds)

	// 5. Lazy root synchronization under skew: a straggling receiver
	// arrives 1 ms late; the strict root absorbs it, the lazy one does not.
	rows = append(rows, lazySyncAblation())
	return rows
}

func lazySyncAblation() AblationRow {
	m := topology.Dancer()
	measure := func(lazy bool) float64 {
		var rootTime float64
		_, _, err := mpi.Run(mpi.Options{
			Machine: m,
			Coll: func(w *mpi.World) mpi.Coll {
				return core.NewWithConfig(w, core.Config{Mode: core.ModeLinear, LazySync: lazy})
			},
		}, func(r *mpi.Rank) {
			b := r.Alloc(1 << 20)
			if r.ID() == 7 {
				r.Sleep(1e-3)
			}
			t0 := r.Now()
			r.Bcast(b.Whole(), 0)
			if r.ID() == 0 {
				rootTime = r.Now() - t0
			}
			r.Barrier()
		})
		if err != nil {
			panic(err)
		}
		return rootTime
	}
	a, b := measure(false), measure(true)
	return AblationRow{
		Name: "root sync under 1ms straggler", A: "strict (§V-B)", B: "lazy (§III-B)",
		SecsA: a, SecsB: b, Speedup: a / b,
	}
}

// RenderAblations prints the table.
func RenderAblations(w io.Writer, rows []AblationRow) {
	fmt.Fprintln(w, "## Design-choice ablations")
	for _, r := range rows {
		fmt.Fprintf(w, "%-36s %-18s %9.1fus   %-18s %9.1fus   %6.2fx\n",
			r.Name, r.A, r.SecsA*1e6, r.B, r.SecsB*1e6, r.Speedup)
	}
}
