package bench

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/topology"
)

// Ablations quantify the design choices DESIGN.md calls out, each as an
// A/B measurement on the platform where it matters.

// AblationRow is one A/B comparison.
type AblationRow struct {
	Name    string
	A, B    string
	SecsA   float64
	SecsB   float64
	Speedup float64 // A/B: how much the design choice (B) wins
}

// RunAblations measures every documented design choice. The independent
// measurements all run as cells on the shared worker pool (SetParallel);
// the rows are assembled in their historical order afterwards.
func RunAblations(iters int) []AblationRow {
	ig := topology.IG()
	cfgs := []Config{
		// 1. Broadcast topology (§IV): linear vs hierarchical vs pipelined.
		{Machine: ig, Comp: KNEMCollCfg("lin", core.Config{Mode: core.ModeLinear}), Op: OpBcast, Size: 2 * MiB, Iters: iters, OffCache: true},
		{Machine: ig, Comp: KNEMCollCfg("hier", core.Config{Mode: core.ModeHierarchical, NoPipeline: true}), Op: OpBcast, Size: 2 * MiB, Iters: iters, OffCache: true},
		{Machine: ig, Comp: KNEMCollCfg("pipe", core.Config{Mode: core.ModeHierarchical}), Op: OpBcast, Size: 2 * MiB, Iters: iters, OffCache: true},
		// 1b. Multi-level tree (the paper's future work): boards, then NUMA
		// domains, then cores.
		{Machine: ig, Comp: KNEMCollCfg("multi", core.Config{Mode: core.ModeMultiLevel}), Op: OpBcast, Size: 8 * MiB, Iters: iters, OffCache: true},
		{Machine: ig, Comp: KNEMCollCfg("pipe8", core.Config{Mode: core.ModeHierarchical}), Op: OpBcast, Size: 8 * MiB, Iters: iters, OffCache: true},
		// 2. Allgather composition vs ring (§VI-D).
		{Machine: ig, Comp: KNEMCollCfg("g+b", core.Config{}), Op: OpAllgather, Size: 256 * KiB, Iters: iters, OffCache: true},
		{Machine: ig, Comp: KNEMCollCfg("ring", core.Config{RingAllgather: true}), Op: OpAllgather, Size: 256 * KiB, Iters: iters, OffCache: true},
		// 3. Direction control (§III-B): gather with sender-writes vs the
		// same pattern forced through receiver-side p2p (Tuned-KNEM).
		{Machine: ig, Comp: KNEMColl(), Op: OpGather, Size: 256 * KiB, Iters: iters, OffCache: true},
		{Machine: ig, Comp: TunedKNEM(), Op: OpGather, Size: 256 * KiB, Iters: iters, OffCache: true},
		// 4. Related work (§II): the Graham et al. fan-in/fan-out SM tree —
		// topology-oblivious and double-copying — against KNEM-Coll.
		{Machine: ig, Comp: SMColl(), Op: OpBcast, Size: 1 * MiB, Iters: iters, OffCache: true},
		{Machine: ig, Comp: KNEMColl(), Op: OpBcast, Size: 1 * MiB, Iters: iters, OffCache: true},
	}
	// 5. Lazy root synchronization under skew: a straggling receiver
	// arrives 1 ms late; the strict root absorbs it, the lazy one does not.
	secs := make([]float64, len(cfgs)+2)
	runCells(len(cfgs)+2, func(i int) {
		if i < len(cfgs) {
			secs[i] = MustMeasure(cfgs[i]).Seconds
			return
		}
		secs[i] = lazySyncMeasure(i == len(cfgs)+1)
	})

	lin, hier, pipe, multi, pipe8 := secs[0], secs[1], secs[2], secs[3], secs[4]
	comp, ring, dirOn, dirOff, smc, knm := secs[5], secs[6], secs[7], secs[8], secs[9], secs[10]
	strict, lazy := secs[len(cfgs)], secs[len(cfgs)+1]
	rows := []AblationRow{}
	add := func(name, a, b string, sa, sb float64) {
		rows = append(rows, AblationRow{Name: name, A: a, B: b, SecsA: sa, SecsB: sb, Speedup: sa / sb})
	}
	add("bcast topology (IG, 2MiB)", "linear", "hierarchical", lin, hier)
	add("bcast pipelining (IG, 2MiB)", "no pipeline", "pipelined", hier, pipe)
	add("bcast tree depth (IG, 8MiB)", "2-level (paper)", "3-level (future work)", pipe8, multi)
	add("allgather (IG, 256KiB blocks)", "gather+bcast", "ring", comp, ring)
	add("gather direction control (IG)", "p2p (root copies)", "sender-writes", dirOff, dirOn)
	add("vs Graham SM tree (IG bcast 1MiB)", "SM fan-out", "KNEM hierarchy", smc, knm)
	add("root sync under 1ms straggler", "strict (§V-B)", "lazy (§III-B)", strict, lazy)
	return rows
}

// lazySyncMeasure times the root's Bcast exposure to a 1 ms straggler under
// strict or lazy root synchronization.
func lazySyncMeasure(lazy bool) float64 {
	m := topology.Dancer()
	var rootTime float64
	_, _, err := mpi.Run(mpi.Options{
		Machine: m,
		Coll: func(w *mpi.World) mpi.Coll {
			return core.NewWithConfig(w, core.Config{Mode: core.ModeLinear, LazySync: lazy})
		},
	}, func(r *mpi.Rank) {
		b := r.Alloc(1 << 20)
		if r.ID() == 7 {
			r.Sleep(1e-3)
		}
		t0 := r.Now()
		r.Bcast(b.Whole(), 0)
		if r.ID() == 0 {
			rootTime = r.Now() - t0
		}
		r.Barrier()
	})
	if err != nil {
		panic(err)
	}
	return rootTime
}

// RenderAblations prints the table.
func RenderAblations(w io.Writer, rows []AblationRow) {
	fmt.Fprintln(w, "## Design-choice ablations")
	for _, r := range rows {
		fmt.Fprintf(w, "%-36s %-18s %9.1fus   %-18s %9.1fus   %6.2fx\n",
			r.Name, r.A, r.SecsA*1e6, r.B, r.SecsB*1e6, r.Speedup)
	}
}
