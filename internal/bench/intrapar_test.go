package bench

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/coll/hier"
	"repro/internal/fault"
	"repro/internal/topology"
	"repro/internal/tune"
)

// testCluster compiles a cluster of `nodes` synthetic 8-core machines
// behind one switch, small enough that a serial/parallel pair of runs
// stays in test budget.
func testCluster(t testing.TB, nodes int) *topology.Cluster {
	t.Helper()
	box := topology.Synthetic(topology.SyntheticSpec{
		Boards: 1, SocketsPerBoard: 2, CoresPerSocket: 4,
		BusBW: 16e9, LinkBW: 11e9,
		CacheSize: 8 << 20, CachePortBW: 30e9,
		Spec: topology.Dancer().Spec,
	})
	cfg := topology.ClusterConfig{
		Name:   "bpar",
		Switch: &topology.SwitchSpec{Name: "tor", BW: 1.25e9, Lat: 2e-6},
	}
	for i := 0; i < nodes; i++ {
		cfg.Nodes = append(cfg.Nodes, topology.NodeSpec{Name: string(rune('a' + i)), Machine: "box"})
	}
	cl, err := topology.CompileCluster(cfg, func(string) (*topology.Machine, error) { return box, nil })
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func clusterCell(cl *topology.Cluster, op Op, size int64) Config {
	return Config{
		Machine: cl.Global, Comp: Hier(cl), Op: op, Size: size,
		Iters: 2, OffCache: true,
	}
}

// TestIntraParallelBitIdentical pins the tentpole contract: an eligible
// cluster cell run across the partitioned engine group is byte-identical
// to the single-engine run — same Seconds, same counters — on a fresh
// engine group and again on a reused one, and under concurrent cells
// (subtests run parallel, so groups from the shard pool interleave; the
// race detector covers the cross-engine plumbing in -race CI runs).
func TestIntraParallelBitIdentical(t *testing.T) {
	DisableCache()
	cl := testCluster(t, 3)
	cells := []struct {
		name string
		op   Op
		size int64
	}{
		{"barrier", OpBarrier, 0},
		{"bcast16k", OpBcast, 16 * KiB},
		{"bcast64k", OpBcast, 64 * KiB},
	}
	for _, c := range cells {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			cfg := clusterCell(cl, c.op, c.size)
			serial, err := MeasureForced(context.Background(), cfg, false)
			if err != nil {
				t.Fatal(err)
			}
			for _, pass := range []string{"fresh group", "reused group"} {
				par, err := MeasureForced(context.Background(), cfg, true)
				if err != nil {
					t.Fatalf("%s: %v", pass, err)
				}
				if par.Seconds != serial.Seconds {
					t.Errorf("%s: parallel Seconds = %.12g, serial %.12g", pass, par.Seconds, serial.Seconds)
				}
				if !reflect.DeepEqual(par.Stats, serial.Stats) {
					t.Errorf("%s: stats diverge:\nparallel: %s\nserial:   %s", pass, par.Stats.String(), serial.Stats.String())
				}
			}
		})
	}
}

// TestIntraParallelDispatch checks that the default Measure path takes the
// parallel route for an eligible cell (visible through the engine-group
// lease counter) and that the result still matches the serial run.
func TestIntraParallelDispatch(t *testing.T) {
	DisableCache()
	cl := testCluster(t, 2)
	cfg := clusterCell(cl, OpBcast, 32*KiB)
	serial, err := MeasureForced(context.Background(), cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	before := EngineGroups()
	res, err := Measure(cfg)
	if err != nil {
		t.Fatal(err)
	}
	after := EngineGroups()
	if after.Leases <= before.Leases {
		t.Errorf("Measure did not lease an engine group (leases %d -> %d)", before.Leases, after.Leases)
	}
	if after.Windows <= before.Windows {
		t.Errorf("no conservative windows recorded (windows %d -> %d)", before.Windows, after.Windows)
	}
	if res.Seconds != serial.Seconds || !reflect.DeepEqual(res.Stats, serial.Stats) {
		t.Errorf("dispatched parallel run diverges from serial:\nparallel: %.12g %s\nserial:   %.12g %s",
			res.Seconds, res.Stats.String(), serial.Seconds, serial.Stats.String())
	}
	if after.AuditFallbacks != before.AuditFallbacks {
		t.Errorf("audit fallbacks recorded on an eligible cell: %d -> %d", before.AuditFallbacks, after.AuditFallbacks)
	}
}

// TestParallelEligibility tables the envelope edges: everything outside it
// must run serially, and a zero-lookahead cluster must be rejected with
// the topology package's one-line error.
func TestParallelEligibility(t *testing.T) {
	cl := testCluster(t, 2)
	base := clusterCell(cl, OpBcast, 32*KiB)
	base.NP = cl.Global.NCores()
	tests := []struct {
		name string
		cfg  func() Config
		dec  *tune.Decider
		want bool
	}{
		{"eligible bcast", func() Config { return base }, nil, true},
		{"eligible barrier", func() Config { return clusterCellNP(cl, OpBarrier, 0) }, nil, true},
		{"single machine", func() Config {
			c := base
			c.Comp = KNEMColl()
			c.Machine = topology.IG()
			c.NP = c.Machine.NCores()
			return c
		}, nil, false},
		{"bcast too small", func() Config { c := base; c.Size = 8 * KiB; return c }, nil, false},
		{"bcast too large", func() Config { c := base; c.Size = 128 * KiB; return c }, nil, false},
		{"nonzero root", func() Config { c := base; c.Root = 1; return c }, nil, false},
		{"partial occupancy", func() Config { c := base; c.NP = c.NP - 1; return c }, nil, false},
		{"fault plan", func() Config {
			c := base
			c.Fault = &fault.Plan{Seed: 1}
			return c
		}, nil, false},
		{"decision source", func() Config { return base }, &tune.Decider{}, false},
		{"non-default hier", func() Config {
			c := base
			c.Comp = HierCfg(cl, hier.Config{Inter: "ring"})
			return c
		}, nil, false},
		{"unsupported op", func() Config { return clusterCellNP(cl, OpAllgather, 4*KiB) }, nil, false},
	}
	for _, tc := range tests {
		if got := parallelEligible(tc.cfg(), tc.dec); got != tc.want {
			t.Errorf("%s: parallelEligible = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func clusterCellNP(cl *topology.Cluster, op Op, size int64) Config {
	c := clusterCell(cl, op, size)
	c.NP = cl.Global.NCores()
	return c
}

// TestSingleNodeFallsBackSerial pins the degenerate shapes: a single-node
// cluster has no fabric to overlap with, so it is ineligible and Measure
// serves it serially; forcing parallel on it is an explicit error.
func TestSingleNodeFallsBackSerial(t *testing.T) {
	DisableCache()
	cl := testCluster(t, 1)
	cfg := clusterCellNP(cl, OpBcast, 32*KiB)
	if parallelEligible(cfg, nil) {
		t.Fatal("single-node cluster reported eligible for intra-cell parallelism")
	}
	if _, err := Measure(cfg); err != nil {
		t.Fatalf("serial fallback failed: %v", err)
	}
	if _, err := MeasureForced(context.Background(), cfg, true); err == nil ||
		!strings.Contains(err.Error(), "outside the intra-cell parallel envelope") {
		t.Fatalf("forced parallel on ineligible cell: err = %v, want envelope error", err)
	}
}

// TestZeroLookaheadRejected pins the other edge: a cluster whose machines
// model zero control latency admits no conservative window, and
// Cluster.Lookahead says so in one line.
func TestZeroLookaheadRejected(t *testing.T) {
	spec := topology.Dancer().Spec
	spec.CtrlLatency = 0
	box := topology.Synthetic(topology.SyntheticSpec{
		Boards: 1, SocketsPerBoard: 1, CoresPerSocket: 2,
		BusBW: 16e9, LinkBW: 11e9,
		CacheSize: 8 << 20, CachePortBW: 30e9,
		Spec: spec,
	})
	cl, err := topology.CompileCluster(topology.ClusterConfig{
		Name:   "zero",
		Nodes:  []topology.NodeSpec{{Name: "a", Machine: "box"}, {Name: "b", Machine: "box"}},
		Switch: &topology.SwitchSpec{Name: "tor", BW: 1e9, Lat: 1e-6},
	}, func(string) (*topology.Machine, error) { return box, nil })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Lookahead(); err == nil || !strings.Contains(err.Error(), "zero ctrl latency") {
		t.Fatalf("Lookahead error = %v, want zero-ctrl-latency rejection", err)
	}
	if parallelEligible(clusterCellNP(cl, OpBarrier, 0), nil) {
		t.Fatal("zero-lookahead cluster reported eligible")
	}
}
