// Package bench is the measurement harness reproducing the paper's
// evaluation (§VI): an IMB-3.2-style protocol (barrier, timed operation,
// off-cache flushing between iterations, max-over-ranks timing), the five
// compared configurations (Tuned-SM, Tuned-KNEM, MPICH2-SM, MPICH2-KNEM,
// KNEM-Coll), and series builders for every figure and table.
package bench

import (
	"context"
	"fmt"

	"repro/internal/coll/basic"
	"repro/internal/coll/hier"
	"repro/internal/coll/mpich2"
	"repro/internal/coll/smcoll"
	"repro/internal/coll/tuned"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/memsim"
	"repro/internal/mpi"
	"repro/internal/shm"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/tune"
)

// Op identifies a collective operation under measurement.
type Op string

// Operations covered by the paper's evaluation.
const (
	OpBcast     Op = "bcast"
	OpGather    Op = "gather"
	OpScatter   Op = "scatter"
	OpAllgather Op = "allgather"
	OpAlltoall  Op = "alltoall"
	OpAlltoallv Op = "alltoallv"
	OpBarrier   Op = "barrier"
	// OpPingPong is the classic two-rank latency/bandwidth probe (rank 0
	// and the last rank exchange one message each way; reported time is
	// the half round trip). Other ranks idle.
	OpPingPong Op = "pingpong"
)

// Comp names one measured configuration: a collective component teamed
// with a point-to-point BTL.
type Comp struct {
	Name string
	BTL  mpi.BTLKind
	// KnemMin is the BTL's KNEM activation threshold (MPICH2's LMT uses
	// 64 KiB; Open MPI uses KNEM for every rendezvous message).
	KnemMin int64
	New     func(w *mpi.World) mpi.Coll
	// Key is the canonical encoding of the component's configuration for
	// run memoization (see memo.go): two Comps with equal Keys must build
	// behaviorally identical components. The constructors in this package
	// fill it; a Comp assembled by hand may leave it empty, which opts
	// its cells out of the cache.
	Key string
	// Cluster is set by Hier/HierCfg: the compiled cluster the component
	// runs over. The harness uses it to scope cache coherence to nodes
	// (memsim coherence islands) and to partition the cell for intra-cell
	// parallel execution. Nil for single-machine components.
	Cluster *topology.Cluster
}

// PaperComponents returns the five configurations of Figures 5-8, in the
// paper's legend order.
func PaperComponents() []Comp {
	return []Comp{
		TunedSM(), TunedKNEM(), MPICH2SM(), MPICH2KNEM(), KNEMColl(),
	}
}

// TunedSM is Open MPI's default: Tuned collectives over copy-in/copy-out.
func TunedSM() Comp {
	return Comp{Name: "Tuned-SM", BTL: mpi.BTLSM, New: tuned.New, Key: tunedCfgKey("Tuned-SM", tuned.Config{})}
}

// TunedKNEM is Tuned over KNEM point-to-point rendezvous.
func TunedKNEM() Comp {
	return Comp{Name: "Tuned-KNEM", BTL: mpi.BTLKNEM, New: tuned.New, Key: tunedCfgKey("Tuned-KNEM", tuned.Config{})}
}

// MPICH2SM is MPICH2 collectives over Nemesis shared memory.
func MPICH2SM() Comp {
	return Comp{Name: "MPICH2-SM", BTL: mpi.BTLSM, New: mpich2.New, Key: "MPICH2-SM"}
}

// MPICH2KNEM is MPICH2 over the KNEM LMT.
func MPICH2KNEM() Comp {
	return Comp{Name: "MPICH2-KNEM", BTL: mpi.BTLKNEM, KnemMin: 64 << 10, New: mpich2.New, Key: "MPICH2-KNEM"}
}

// KNEMColl is the paper's component (§V) with default configuration.
func KNEMColl() Comp {
	return Comp{Name: "KNEM-Coll", BTL: mpi.BTLSM, New: core.New, Key: coreCfgKey(core.Config{})}
}

// KNEMCollCfg is the paper's component with explicit configuration.
func KNEMCollCfg(name string, cfg core.Config) Comp {
	return Comp{
		Name: name, BTL: mpi.BTLSM,
		New: func(w *mpi.World) mpi.Coll { return core.NewWithConfig(w, cfg) },
		Key: coreCfgKey(cfg),
	}
}

// TunedCfg is the Tuned component with explicit configuration, over SM or
// the KNEM BTL (the autotuner's Tuned search-space points).
func TunedCfg(name string, btl mpi.BTLKind, cfg tuned.Config) Comp {
	comp := "Tuned-SM"
	if btl == mpi.BTLKNEM {
		comp = "Tuned-KNEM"
	}
	return Comp{
		Name: name, BTL: btl,
		New: func(w *mpi.World) mpi.Coll { return tuned.NewWithConfig(w, cfg) },
		Key: tunedCfgKey(comp, cfg),
	}
}

// BasicSM is the linear reference component (ablation).
func BasicSM() Comp { return Comp{Name: "Basic-SM", BTL: mpi.BTLSM, New: basic.New, Key: "Basic-SM"} }

// SMColl is the Graham et al. fan-in/fan-out component (related work).
func SMColl() Comp { return Comp{Name: "SM-Coll", BTL: mpi.BTLSM, New: smcoll.New, Key: "SM-Coll"} }

// Hier is the cluster-level hierarchical family with a binomial/pipelined
// tree among the node leaders, over the cluster's composite machine
// (Config.Machine must be cl.Global for the cells to make sense; the memo
// key distinguishes clusters through the machine fingerprint).
func Hier(cl *topology.Cluster) Comp { return HierCfg(cl, hier.Config{}) }

// HierCfg is the hierarchical family with explicit configuration.
func HierCfg(cl *topology.Cluster, cfg hier.Config) Comp {
	inter := cfg.Inter
	if inter == "" {
		inter = "tree"
	}
	name := "Hier-Tree"
	if inter == "ring" {
		name = "Hier-Ring"
	}
	return Comp{
		Name: name, BTL: mpi.BTLSM,
		New:     hier.NewWithConfig(cl, cfg),
		Key:     hierCfgKey(cfg),
		Cluster: cl,
	}
}

// hierCfgKey canonically encodes a hier.Config; same contract as
// coreCfgKey. The cluster shape itself is covered by the cell's machine
// fingerprint (the composite machine embeds nodes and fabric).
func hierCfgKey(cfg hier.Config) string {
	if cfg.Fallback != nil {
		return ""
	}
	inter := cfg.Inter
	if inter == "" {
		inter = "tree"
	}
	knemMin := cfg.KnemMin
	if knemMin == 0 {
		knemMin = 16 << 10
	}
	interSeg := cfg.InterSeg
	if interSeg == 0 {
		interSeg = 128 << 10
	}
	return fmt.Sprintf("Hier|inter=%s|knemmin=%d|interseg=%d", inter, knemMin, interSeg)
}

// coreCfgKey canonically encodes a core.Config for memoization. Every
// field of core.Config must appear here (or make the key empty): a field
// missed by the encoding would alias distinct configurations in the cache.
func coreCfgKey(cfg core.Config) string {
	if cfg.Decider != nil || cfg.Fallback != nil {
		return "" // not canonically encodable: opt out of the cache
	}
	return fmt.Sprintf("KNEM-Coll|thr=%d|mode=%d|segi=%d|segl=%d|lmin=%d|fseg=%d|nopipe=%t|dma=%d|ring=%t|lazy=%t",
		cfg.Threshold, cfg.Mode, cfg.SegIntermediate, cfg.SegLarge, cfg.LargeMin,
		cfg.FixedSeg, cfg.NoPipeline, cfg.DMADepth, cfg.RingAllgather, cfg.LazySync)
}

// tunedCfgKey canonically encodes a tuned.Config; same contract as
// coreCfgKey.
func tunedCfgKey(comp string, cfg tuned.Config) string {
	if cfg.Decider != nil {
		return ""
	}
	return fmt.Sprintf("%s|bbin=%d|btree=%d|tseg=%d|cseg=%d|gbin=%d|agrd=%d|a2alin=%d|fan=%d|seg=%d",
		comp, cfg.BcastBinomialMax, cfg.BcastTreeMax, cfg.BcastTreeSeg, cfg.BcastChainSeg,
		cfg.GatherBinMax, cfg.AllgatherRDMax, cfg.AlltoallLinMax, cfg.Fanout, cfg.Seg)
}

// Config describes one measurement.
type Config struct {
	Machine *topology.Machine
	// NP defaults to the machine's core count (the paper fills nodes).
	NP   int
	Comp Comp
	Op   Op
	// Size follows IMB conventions: Bcast — the broadcast length;
	// Gather/Scatter/Allgather — the per-rank block; Alltoall(v) — the
	// per-pair block.
	Size int64
	// Iters measured iterations after one warm-up (default 3).
	Iters int
	// OffCache flushes all caches before every iteration (IMB's
	// -off_cache), isolating memory-system behaviour from cache reuse.
	OffCache bool
	// Root for rooted operations (default 0).
	Root int
	// Fault optionally injects a deterministic fault schedule into the
	// run (see internal/fault); counters land in Result.Stats.
	Fault *fault.Plan
	// Decider optionally attaches a tuned decision source to the world
	// (internal/tune). When nil, the global decision set installed with
	// SetDecisions is consulted for a table matching the machine; when
	// neither applies, every component keeps its hardcoded rules.
	Decider *tune.Decider
}

// shmConfig uses 128 KiB fragments for throughput benchmarks: large
// messages are bandwidth-bound, and coarser fragments keep event counts
// tractable on 48-core sweeps without changing contention behaviour.
func shmConfig() shm.Config { return shm.Config{FragSize: 128 << 10} }

// Result carries one measured point.
type Result struct {
	Config
	// Seconds is the max-over-ranks mean time per operation.
	Seconds float64
	// Stats are the counters accumulated over the measured iterations.
	Stats trace.Stats
}

// Measure runs one configuration and returns its timing. With run
// memoization enabled (EnableCache), a cell whose full key — machine,
// component configuration, op, size, nranks, iterations, decisions — was
// measured before replays the recorded result instead of re-simulating.
func Measure(cfg Config) (Result, error) {
	return MeasureCtx(context.Background(), cfg)
}

// MeasureCtx is Measure under a context: a cancelled ctx aborts the cell —
// before it starts, while it waits on an identical in-flight cell, or
// mid-simulation via the engine's interrupt poll — and returns ctx's
// error. Abort is clean: the leased engine shard is always released back
// to the pool (Reset on its next lease restores observably-fresh state),
// so a server dropping a request mid-sweep leaks nothing. Concurrent
// MeasureCtx calls for the same cache key are deduplicated: one simulates,
// the others wait and replay its memoized entry (see flight.go).
func MeasureCtx(ctx context.Context, cfg Config) (Result, error) {
	if cfg.NP == 0 {
		cfg.NP = cfg.Machine.NCores()
	}
	if cfg.Iters == 0 {
		cfg.Iters = 3
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	dec := cfg.Decider
	if dec == nil {
		dec = decisions.Load().For(cfg.Machine)
	}
	var key string
	var fl *flight
	if memo.enabled.Load() {
		if k, ok := memoKey(cfg, dec); ok {
			key = k
			for {
				if ent, ok := memoPeek(key); ok {
					memo.hits.Add(1)
					return Result{Config: cfg, Seconds: ent.Seconds, Stats: ent.Stats}, nil
				}
				var leader bool
				fl, leader = flightJoin(key)
				if leader {
					break
				}
				memo.deduped.Add(1)
				select {
				case <-fl.done:
				case <-ctx.Done():
					return Result{}, ctx.Err()
				}
				// Leader succeeded: loop back to the peek, which now hits.
				// Leader failed: loop back and race to become the new leader.
			}
			memo.misses.Add(1)
		}
	}
	res, err := simulate(ctx, cfg, dec)
	if fl != nil {
		if err == nil {
			memoStore(key, memoEntry{Seconds: res.Seconds, Stats: res.Stats})
		}
		flightDone(key, fl, err == nil)
	}
	return res, err
}

// simulate runs cfg's cell for real on a pooled engine shard, choosing
// intra-cell parallel execution when the cell is inside the proven
// envelope (parallelEligible) and the package toggle allows it. The two
// modes produce byte-identical results — same Seconds, same Stats — so
// the choice is invisible to the memo cache. cfg must already have NP and
// Iters defaulted and dec resolved.
func simulate(ctx context.Context, cfg Config, dec *tune.Decider) (Result, error) {
	if ParallelIntra() && parallelEligible(cfg, dec) {
		res, ok, err := simulateParallel(ctx, cfg, dec)
		if err != nil || ok {
			return res, err
		}
		// The post-run audit rejected the partitioning: the parallel
		// result was discarded, re-run serially (the result stays exact).
	}
	return simulateSerial(ctx, cfg, dec)
}

// simulateSerial runs cfg's cell on a single leased engine.
func simulateSerial(ctx context.Context, cfg Config, dec *tune.Decider) (Result, error) {
	stats := &trace.Stats{}
	sh := acquireShard()
	defer releaseShard(sh)
	eng, net := sh.lease(cfg.Machine, stats)
	// Cluster cells scope hardware coherence to nodes: no real fabric
	// snoops across machines, and the same islands make the intra-cell
	// partitioning of parallel runs sound (serial and parallel runs both
	// use them, so the mode cannot change a timestamp).
	net.SetClusterIslands(cfg.Comp.Cluster)
	// Carved after the lease so a warmed shard serves it from its arena.
	perRank := sim.SlicesFor[float64](eng.Arena()).Make(cfg.NP)
	if ctx.Done() != nil {
		eng.SetInterrupt(ctx.Err)
		defer eng.SetInterrupt(nil)
	}
	_, _, err := mpi.Run(mpi.Options{
		Machine: cfg.Machine,
		NP:      cfg.NP,
		BTL:     cfg.Comp.BTL,
		KnemMin: cfg.Comp.KnemMin,
		SHM:     shmConfig(),
		Coll:    cfg.Comp.New,
		Stats:   stats,
		Fault:   cfg.Fault,
		Decider: dec,
		Engine:  eng,
		Net:     net,
	}, benchBody(cfg, stats, perRank))
	if err != nil {
		return Result{}, fmt.Errorf("bench: %s/%s/%s/%d: %w", cfg.Machine.Name, cfg.Comp.Name, cfg.Op, cfg.Size, err)
	}
	res := Result{Config: cfg, Seconds: 0, Stats: stats.Snapshot()}
	for _, v := range perRank {
		if v > res.Seconds {
			res.Seconds = v
		}
	}
	return res, nil
}

// benchBody builds the per-rank SPMD body of one measurement cell: the
// IMB protocol of barrier / optional off-cache flush / timed operation,
// one warm-up iteration, max-over-ranks timing into perRank. stats is the
// serial run's shared sink; cluster cells never touch it (see below), so
// parallel runs pass nil.
func benchBody(cfg Config, stats *trace.Stats, perRank []float64) func(r *mpi.Rank) {
	return func(r *mpi.Rank) {
		bufs := prepare(r, cfg)
		var total float64
		for it := -1; it < cfg.Iters; it++ { // it==-1 is the warm-up
			r.Barrier()
			if cfg.OffCache {
				if r.ID() == 0 {
					r.World().Net().FlushCaches()
				}
				r.Barrier()
			}
			// Measured counters exclude the warm-up on single machines:
			// each rank re-zeroes the shared sink as it starts iteration 0
			// and the last reset wins. Cluster cells keep the warm-up's
			// counters instead: those resets fall at rank-staggered
			// instants, so which increments survive the last one depends
			// on a global interleaving that per-partition sinks cannot
			// reproduce — with purely additive counters and no mid-run
			// wipe, a parallel run's merged sinks equal the serial totals
			// exactly. Timestamps are unaffected either way.
			if it == 0 && cfg.Comp.Cluster == nil {
				stats.Reset()
			}
			t0 := r.Now()
			runOp(r, cfg, bufs)
			if it >= 0 {
				total += r.Now() - t0
			}
		}
		perRank[r.ID()] = total / float64(cfg.Iters)
	}
}

// CellKey returns the content-addressed cache key Measure uses for cfg —
// after applying the NP/Iters defaults and resolving the effective
// decision table — and ok=false for cells that are never cached (fault
// plans, components without a canonical configuration encoding). The
// serving layer keys its bounded in-memory store by it, so a served cell
// and a memoized cell can never alias under different identities.
func CellKey(cfg Config) (string, bool) {
	if cfg.Machine == nil {
		return "", false
	}
	if cfg.NP == 0 {
		cfg.NP = cfg.Machine.NCores()
	}
	if cfg.Iters == 0 {
		cfg.Iters = 3
	}
	dec := cfg.Decider
	if dec == nil {
		dec = decisions.Load().For(cfg.Machine)
	}
	return memoKey(cfg, dec)
}

// MustMeasure is Measure, panicking on simulation failure (used by the
// figure builders, where any deadlock is a bug).
func MustMeasure(cfg Config) Result {
	r, err := Measure(cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// opBufs holds the per-rank buffers for one op.
type opBufs struct {
	send, recv     memsim.View
	counts, displs []int64
}

func prepare(r *mpi.Rank, cfg Config) opBufs {
	p := int64(r.Size())
	var b opBufs
	switch cfg.Op {
	case OpBcast:
		b.send = r.Alloc(cfg.Size).Whole()
	case OpGather:
		b.send = r.Alloc(cfg.Size).Whole()
		if r.ID() == cfg.Root {
			b.recv = r.Alloc(p * cfg.Size).Whole()
		}
	case OpScatter:
		if r.ID() == cfg.Root {
			b.send = r.Alloc(p * cfg.Size).Whole()
		}
		b.recv = r.Alloc(cfg.Size).Whole()
	case OpAllgather:
		b.send = r.Alloc(cfg.Size).Whole()
		b.recv = r.Alloc(p * cfg.Size).Whole()
	case OpAlltoall, OpAlltoallv:
		b.send = r.Alloc(p * cfg.Size).Whole()
		b.recv = r.Alloc(p * cfg.Size).Whole()
		i64 := sim.SlicesFor[int64](r.World().Engine().Arena())
		b.counts = i64.Stale(int(p))
		b.displs = i64.Stale(int(p))
		for i := range b.counts {
			b.counts[i] = cfg.Size
			b.displs[i] = int64(i) * cfg.Size
		}
	case OpBarrier:
	case OpPingPong:
		b.send = r.Alloc(cfg.Size).Whole()
		b.recv = r.Alloc(cfg.Size).Whole()
	default:
		panic("bench: unknown op " + string(cfg.Op))
	}
	return b
}

func runOp(r *mpi.Rank, cfg Config, b opBufs) {
	switch cfg.Op {
	case OpBcast:
		r.Bcast(b.send, cfg.Root)
	case OpGather:
		r.Gather(b.send, b.recv, cfg.Root)
	case OpScatter:
		r.Scatter(b.send, b.recv, cfg.Root)
	case OpAllgather:
		r.Allgather(b.send, b.recv)
	case OpAlltoall:
		r.Alltoall(b.send, b.recv)
	case OpAlltoallv:
		r.Alltoallv(b.send, b.counts, b.displs, b.recv, b.counts, b.displs)
	case OpBarrier:
		r.Barrier()
	case OpPingPong:
		peer := r.Size() - 1
		switch r.ID() {
		case 0:
			r.Send(peer, 1, b.send)
			r.Recv(peer, 2, b.recv)
		case peer:
			r.Recv(0, 1, b.recv)
			r.Send(0, 2, b.send)
		}
	}
}

// KiB/MiB helpers for size tables.
const (
	KiB = int64(1) << 10
	MiB = int64(1) << 20
)

// PaperSizes is the x-axis of Figures 5-8: 32 KiB to 8 MiB.
func PaperSizes() []int64 {
	return []int64{32 * KiB, 64 * KiB, 128 * KiB, 256 * KiB, 512 * KiB, 1 * MiB, 2 * MiB, 4 * MiB, 8 * MiB}
}

// Fig4Sizes is the x-axis of Figure 4: 512 KiB to 8 MiB.
func Fig4Sizes() []int64 {
	return []int64{512 * KiB, 1 * MiB, 2 * MiB, 4 * MiB, 8 * MiB}
}
