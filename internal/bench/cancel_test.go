package bench

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/topology"
)

// TestMeasureCtxCancelled pins the cheap paths: an already-cancelled
// context aborts before any simulation, and MeasureAllCtx surfaces the
// cancellation instead of partial results.
func TestMeasureCtxCancelled(t *testing.T) {
	DisableCache()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := memoTestConfig(topology.Dancer(), 64*KiB)
	if _, err := MeasureCtx(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("MeasureCtx on a cancelled ctx: %v, want context.Canceled", err)
	}
	if _, err := MeasureAllCtx(ctx, []Config{cfg, cfg}); !errors.Is(err, context.Canceled) {
		t.Fatalf("MeasureAllCtx on a cancelled ctx: %v, want context.Canceled", err)
	}
}

// TestMeasureAllCtxCancelMidSweep cancels a multi-cell sweep while cells
// are simulating, under the race detector and at -parallel 4: the sweep
// must abort with context.Canceled, and — the shard-leak check — the very
// next Measure on the same pool must still replay bit-identically to a
// fresh-process run, proving the aborted cells released their engine
// shards in a Reset-able state.
func TestMeasureAllCtxCancelMidSweep(t *testing.T) {
	DisableCache()
	m := topology.IG()
	reference := MustMeasure(memoTestConfig(m, 64*KiB))

	var cfgs []Config
	for i := 0; i < 8; i++ {
		for _, sz := range []int64{1 * MiB, 2 * MiB} {
			cfgs = append(cfgs, memoTestConfig(m, sz))
		}
	}
	SetParallel(4)
	defer SetParallel(1)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond) // let some cells reach mid-simulation
		cancel()
	}()
	res, err := MeasureAllCtx(ctx, cfgs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep returned err=%v (results=%v), want context.Canceled", err, res != nil)
	}

	// The pool now holds shards whose last cell was interrupted; reusing
	// them must be indistinguishable from fresh engines.
	after := MustMeasure(memoTestConfig(m, 64*KiB))
	if after.Seconds != reference.Seconds || !reflect.DeepEqual(after.Stats, reference.Stats) {
		t.Fatalf("post-cancel measurement diverges: %v vs %v", after.Seconds, reference.Seconds)
	}
}

// TestMeasureCtxCancelReleasesFlight pins the singleflight/cancel
// interaction: a leader cancelled mid-simulation fails its flight, and a
// waiter with a live context retries and completes with the correct
// result rather than hanging or inheriting the leader's cancellation.
func TestMeasureCtxCancelReleasesFlight(t *testing.T) {
	if err := EnableCache(""); err != nil {
		t.Fatal(err)
	}
	defer DisableCache()
	m := topology.IG()
	cfg := memoTestConfig(m, 2*MiB)

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, err := MeasureCtx(leaderCtx, cfg)
		leaderErr <- err
	}()
	time.Sleep(2 * time.Millisecond)
	cancelLeader()
	err := <-leaderErr
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("leader returned %v, want nil (finished first) or context.Canceled", err)
	}

	got, gerr := MeasureCtx(context.Background(), cfg)
	if gerr != nil {
		t.Fatalf("follow-up measure after cancelled leader: %v", gerr)
	}
	DisableCache()
	want := MustMeasure(cfg)
	if got.Seconds != want.Seconds || !reflect.DeepEqual(got.Stats, want.Stats) {
		t.Fatalf("post-cancel flight result diverges: %v vs %v", got.Seconds, want.Seconds)
	}
}
