package bench

import (
	"fmt"
	"io"

	"repro/internal/asp"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/topology"
	"repro/internal/tune"
)

// Table1Row is one line of the paper's Table I: the time a rank spends in
// MPI_Bcast and the total application time, for one MPI configuration.
type Table1Row struct {
	Comp  string
	Bcast float64
	Total float64
}

// Table1Result is one machine column pair of Table I plus the derived
// improvement percentages the paper reports (relative to the best
// competing library).
type Table1Result struct {
	Machine          string
	N                int
	NP               int
	Rows             []Table1Row
	BcastImprovement float64 // percent vs best non-KNEM row
	TotalImprovement float64
}

// table1Comps returns the three configurations of Table I. The KNEM
// component runs with deferred root synchronization (§III-B's persistent
// region rationale); its Broadcast mode resolves per machine: linear on
// Zoot, hierarchical pipelined on IG (§VI-E).
func table1Comps() []Comp {
	openMPI := TunedSM() // keeps the canonical Key so the cell memoizes
	openMPI.Name = "Open MPI"
	return []Comp{
		openMPI,
		MPICH2SM(),
		KNEMCollCfg("KNEM Coll", core.Config{LazySync: true}),
	}
}

// table1Cell is the memoized payload of one ASP application run: the two
// float64 columns round-trip exactly through encoding/json, so a cache hit
// renders bit-for-bit identically to the simulation it replaces.
type table1Cell struct {
	Bcast float64 `json:"bcast_seconds"`
	Total float64 `json:"total_seconds"`
}

// RunTable1 reproduces one machine of Table I: ASP at matrix dimension n
// (paper: 16384 on Zoot, 32768 on IG), with sample iterations simulated
// and scaled (sample <= 0 simulates every iteration). Cells go through the
// same run memoization as Measure (see memo.go): the application runs are
// deterministic, so a repeated `asp` invocation is served from the cache.
func RunTable1(m *topology.Machine, n, sample int) Table1Result {
	res := Table1Result{Machine: m.Name, N: n, NP: m.NCores()}
	comps := table1Comps()
	res.Rows = make([]Table1Row, len(comps))
	runCells(len(comps), func(i int) {
		c := comps[i]
		var key string
		if c.Key != "" {
			key = fmt.Sprintf("%s|%s|table1|m=%s|comp=%s|btl=%d|knemmin=%d|n=%d|sample=%d|seed=11",
				cacheSchema, simFingerprint, tune.Fingerprint(m), c.Key, c.BTL, c.KnemMin, n, sample)
			var cell table1Cell
			if memoLookupJSON(key, &cell) {
				res.Rows[i] = Table1Row{Comp: c.Name, Bcast: cell.Bcast, Total: cell.Total}
				return
			}
		}
		var bcast, total float64
		_, _, err := mpi.Run(mpi.Options{
			Machine: m,
			BTL:     c.BTL,
			KnemMin: c.KnemMin,
			Coll:    c.New,
		}, func(r *mpi.Rank) {
			out := asp.Run(r, asp.Config{N: n, Virtual: true, SampleIters: sample, Seed: 11}, nil)
			if out.BcastSeconds > bcast {
				bcast = out.BcastSeconds
			}
			if out.TotalSeconds > total {
				total = out.TotalSeconds
			}
		})
		if err != nil {
			panic(fmt.Sprintf("bench: table1 %s/%s: %v", m.Name, c.Name, err))
		}
		if key != "" {
			memoStoreJSON(key, table1Cell{Bcast: bcast, Total: total})
		}
		res.Rows[i] = Table1Row{Comp: c.Name, Bcast: bcast, Total: total}
	})
	bestBcast, bestTotal := res.Rows[0].Bcast, res.Rows[0].Total
	for _, row := range res.Rows[:len(res.Rows)-1] {
		if row.Bcast < bestBcast {
			bestBcast = row.Bcast
		}
		if row.Total < bestTotal {
			bestTotal = row.Total
		}
	}
	knem := res.Rows[len(res.Rows)-1]
	res.BcastImprovement = 100 * (bestBcast - knem.Bcast) / bestBcast
	res.TotalImprovement = 100 * (bestTotal - knem.Total) / bestTotal
	return res
}

// Render prints the Table I column pair for this machine.
func (t Table1Result) Render(w io.Writer) {
	fmt.Fprintf(w, "## Table I — ASP on %s (matrix %d^2, %d ranks)\n", t.Machine, t.N, t.NP)
	fmt.Fprintf(w, "%-12s %12s %12s\n", "", "Bcast", "Total")
	for _, row := range t.Rows {
		fmt.Fprintf(w, "%-12s %11.1fs %11.1fs\n", row.Comp, row.Bcast, row.Total)
	}
	fmt.Fprintf(w, "%-12s %11.1f%% %11.1f%%\n", "Improvement", t.BcastImprovement, t.TotalImprovement)
}
