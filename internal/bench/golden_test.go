package bench

import (
	"math"
	"testing"

	"repro/internal/topology"
)

// The simulator is bit-for-bit deterministic, so a handful of exact pinned
// values catch unintended model drift (an accidental change to a bandwidth
// constant, a protocol cost, routing, or the cache model shows up here
// immediately). When a change is intentional, regenerate the values:
//
//	go test ./internal/bench -run TestGolden -v   # prints got values on failure
func TestGoldenValues(t *testing.T) {
	golden := []struct {
		machine string
		comp    string
		op      Op
		size    int64
		want    float64
	}{
		{"Zoot", "Tuned-SM", OpBcast, 1048576, 7.806022928e-03},
		{"Zoot", "KNEM-Coll", OpBcast, 1048576, 4.927240000e-03},
		{"Dancer", "MPICH2-KNEM", OpGather, 262144, 4.991823333e-04},
		{"Saturn", "Tuned-KNEM", OpAllgather, 65536, 1.132385067e-03},
		{"IG", "KNEM-Coll", OpAlltoallv, 131072, 1.036342914e-02},
		{"IG", "MPICH2-SM", OpScatter, 524288, 1.045690320e-02},
	}
	comps := map[string]Comp{
		"Tuned-SM":    TunedSM(),
		"Tuned-KNEM":  TunedKNEM(),
		"MPICH2-SM":   MPICH2SM(),
		"MPICH2-KNEM": MPICH2KNEM(),
		"KNEM-Coll":   KNEMColl(),
	}
	for _, g := range golden {
		res := MustMeasure(Config{
			Machine: topology.ByName(g.machine), Comp: comps[g.comp],
			Op: g.op, Size: g.size, Iters: 1, OffCache: true,
		})
		if math.Abs(res.Seconds-g.want) > 1e-9*g.want {
			t.Errorf("%s/%s/%s/%d = %.9e, golden %.9e — model drift (regenerate if intentional)",
				g.machine, g.comp, g.op, g.size, res.Seconds, g.want)
		}
	}
}

// Determinism: the same configuration measured twice gives the identical
// simulated time.
func TestMeasurementDeterminism(t *testing.T) {
	cfg := Config{
		Machine: topology.IG(), Comp: KNEMColl(), Op: OpBcast,
		Size: 1 << 20, Iters: 2, OffCache: true,
	}
	a := MustMeasure(cfg)
	b := MustMeasure(cfg)
	if a.Seconds != b.Seconds {
		t.Fatalf("nondeterministic: %.12e vs %.12e", a.Seconds, b.Seconds)
	}
}
