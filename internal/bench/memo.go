package bench

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/trace"
	"repro/internal/tune"
)

// Run memoization: the simulator is deterministic, so a measurement cell is
// a pure function of its inputs. Measure therefore keys each cell by
// everything that shapes its result — simulator generation, machine
// fingerprint, canonical component configuration, operation, message size,
// nranks, iteration count, off-cache flag, root, and the content hash of
// any tuned decision table steering the run — and replays the recorded
// (seconds, stats) pair instead of re-simulating when the key was seen
// before. Successive-halving tuner rounds, repeated figure regenerations,
// and back-to-back `tune search` / `imb` invocations hit the cache instead
// of re-running identical simulations.
//
// The cache is content-addressed: the in-memory layer maps the full key
// string, and the optional disk layer stores one JSON entry per key under
// sha256(key), with the key recorded inside the entry so a hash collision
// or truncated file is detected and treated as a miss. Entries are written
// via create-temp + rename, so concurrent cells — and concurrent
// processes sharing a cache directory — never observe partial writes.
// Faulty runs (Config.Fault != nil) and components without a canonical
// configuration encoding (Comp.Key == "") are never cached.

// simFingerprint names the current simulated-behavior generation and is
// part of every cache key. Bump it whenever a change to the simulator or
// the protocol stack (internal/sim, internal/memsim, internal/mpi,
// internal/knem, internal/core, internal/coll/...) alters any simulated
// timestamp or counter, so stale entries can never leak into new results.
const simFingerprint = "sim/g2-coro"

// cacheSchema versions the on-disk entry format.
const cacheSchema = "simcache/v1"

var memo struct {
	enabled atomic.Bool
	mu      sync.Mutex // guards dir
	dir     string
	mem     sync.Map // key string -> memoEntry
	hits    atomic.Int64
	misses  atomic.Int64
}

// memoEntry is one cached cell, also the on-disk JSON document. Seconds
// and the Stats counters round-trip exactly through encoding/json
// (shortest-representation floats, integer counters), so a cache hit is
// bit-for-bit identical to the simulation it replaces.
type memoEntry struct {
	Schema  string      `json:"schema"`
	Key     string      `json:"key"`
	Seconds float64     `json:"seconds"`
	Stats   trace.Stats `json:"stats"`
}

// EnableCache turns on run memoization. dir is the persistent cache
// directory shared across processes; "" keeps the cache in-memory only
// (per process). Enabling resets the hit/miss counters.
func EnableCache(dir string) error {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("bench: cache dir: %w", err)
		}
	}
	memo.mu.Lock()
	memo.dir = dir
	memo.mu.Unlock()
	memo.hits.Store(0)
	memo.misses.Store(0)
	memo.enabled.Store(true)
	return nil
}

// DisableCache turns run memoization off (the default). The in-memory
// entries are dropped; disk entries are kept for future runs.
func DisableCache() {
	memo.enabled.Store(false)
	memo.mem.Clear()
}

// CacheCounts returns how many Measure calls were served from the cache
// and how many had to simulate since the cache was last enabled.
func CacheCounts() (hits, misses int64) {
	return memo.hits.Load(), memo.misses.Load()
}

// memoKey builds cfg's cache key. ok is false when the cell must not be
// cached: a fault plan is active, or the component carries no canonical
// configuration encoding. cfg must already have NP and Iters defaulted,
// and dec must be the effective decider (explicit or global).
func memoKey(cfg Config, dec *tune.Decider) (string, bool) {
	if cfg.Fault != nil || cfg.Comp.Key == "" {
		return "", false
	}
	decKey := "none"
	if dec != nil {
		decKey = dec.Table().ContentHash()
	}
	return fmt.Sprintf("%s|%s|m=%s|comp=%s|btl=%d|knemmin=%d|op=%s|size=%d|np=%d|iters=%d|oc=%t|root=%d|dec=%s",
		cacheSchema, simFingerprint, tune.Fingerprint(cfg.Machine), cfg.Comp.Key,
		cfg.Comp.BTL, cfg.Comp.KnemMin, cfg.Op, cfg.Size, cfg.NP, cfg.Iters,
		cfg.OffCache, cfg.Root, decKey), true
}

// entryPath shards entries by the first hash byte to keep directories flat.
func entryPath(dir, key string) string {
	sum := sha256.Sum256([]byte(key))
	h := fmt.Sprintf("%x", sum)
	return filepath.Join(dir, h[:2], h+".json")
}

// memoLookup consults the in-memory layer, then disk. Disk hits are
// promoted to memory. Any read, decode, or key mismatch problem is a miss.
func memoLookup(key string) (memoEntry, bool) {
	if v, ok := memo.mem.Load(key); ok {
		memo.hits.Add(1)
		return v.(memoEntry), true
	}
	memo.mu.Lock()
	dir := memo.dir
	memo.mu.Unlock()
	if dir != "" {
		data, err := os.ReadFile(entryPath(dir, key))
		if err == nil {
			var ent memoEntry
			if json.Unmarshal(data, &ent) == nil && ent.Schema == cacheSchema && ent.Key == key {
				memo.mem.Store(key, ent)
				memo.hits.Add(1)
				return ent, true
			}
		}
	}
	memo.misses.Add(1)
	return memoEntry{}, false
}

// memoStore records a freshly simulated cell. Disk persistence is
// best-effort: a full or read-only cache directory costs future speed, not
// correctness, so write errors are ignored.
func memoStore(key string, ent memoEntry) {
	ent.Schema, ent.Key = cacheSchema, key
	memo.mem.Store(key, ent)
	memo.mu.Lock()
	dir := memo.dir
	memo.mu.Unlock()
	if dir == "" {
		return
	}
	path := entryPath(dir, key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return
	}
	data, err := json.Marshal(&ent)
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(append(data, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
	}
}
