package bench

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/trace"
	"repro/internal/tune"
)

// Run memoization: the simulator is deterministic, so a measurement cell is
// a pure function of its inputs. Measure therefore keys each cell by
// everything that shapes its result — simulator generation, machine
// fingerprint, canonical component configuration, operation, message size,
// nranks, iteration count, off-cache flag, root, and the content hash of
// any tuned decision table steering the run — and replays the recorded
// (seconds, stats) pair instead of re-simulating when the key was seen
// before. Successive-halving tuner rounds, repeated figure regenerations,
// and back-to-back `tune search` / `imb` invocations hit the cache instead
// of re-running identical simulations.
//
// The cache is content-addressed: the in-memory layer maps the full key
// string, and the optional disk layer stores one JSON entry per key under
// sha256(key), with the key recorded inside the entry so a hash collision
// or truncated file is detected and treated as a miss. Entries are written
// via create-temp + rename, so concurrent cells — and concurrent
// processes sharing a cache directory — never observe partial writes.
// Faulty runs (Config.Fault != nil) and components without a canonical
// configuration encoding (Comp.Key == "") are never cached.

// simFingerprint names the current simulated-behavior generation and is
// part of every cache key. Bump it whenever a change to the simulator or
// the protocol stack (internal/sim, internal/memsim, internal/mpi,
// internal/knem, internal/core, internal/coll/...) alters any simulated
// timestamp or counter, so stale entries can never leak into new results.
const simFingerprint = "sim/g3-partition"

// cacheSchema versions the on-disk entry format.
const cacheSchema = "simcache/v1"

var memo struct {
	enabled atomic.Bool
	mu      sync.Mutex // guards dir
	dir     string
	mem     sync.Map // key string -> memoEntry
	hits    atomic.Int64
	misses  atomic.Int64
	deduped atomic.Int64
}

// memoEntry is one cached cell, also the on-disk JSON document. Seconds
// and the Stats counters round-trip exactly through encoding/json
// (shortest-representation floats, integer counters), so a cache hit is
// bit-for-bit identical to the simulation it replaces.
type memoEntry struct {
	Schema  string      `json:"schema"`
	Key     string      `json:"key"`
	Seconds float64     `json:"seconds"`
	Stats   trace.Stats `json:"stats"`
}

// EnableCache turns on run memoization. dir is the persistent cache
// directory shared across processes; "" keeps the cache in-memory only
// (per process). Missing parents are created, and writability is probed up
// front: per-entry writes are deliberately best-effort and silent (they
// cost speed, not results), so a directory that can never accept a write
// must be rejected here, once, with one clear error — not discovered late
// as a per-shard no-op. Enabling resets the hit/miss/dedup counters.
func EnableCache(dir string) error {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("bench: cache dir %s: %v", dir, err)
		}
		probe, err := os.CreateTemp(dir, ".probe-*")
		if err != nil {
			return fmt.Errorf("bench: cache dir %s is not writable: %v", dir, err)
		}
		probe.Close()
		os.Remove(probe.Name())
	}
	memo.mu.Lock()
	memo.dir = dir
	memo.mu.Unlock()
	memo.hits.Store(0)
	memo.misses.Store(0)
	memo.deduped.Store(0)
	memo.enabled.Store(true)
	return nil
}

// DisableCache turns run memoization off (the default). The in-memory
// entries are dropped; disk entries are kept for future runs.
func DisableCache() {
	memo.enabled.Store(false)
	memo.mem.Clear()
}

// EnableDefaultCache turns on run memoization (unless noCache), using dir
// or a per-user default directory; it reports whether the cache is on.
// An explicitly requested directory that cannot be created or written is
// an error the caller must fail fast on — the user asked for exactly that
// path, so silently degrading would hide a misconfiguration. Only the
// implicit per-user default degrades to an in-process cache with a
// warning: there the cache trades speed, never results. This is the
// shared flag plumbing behind the -no-cache/-cache-dir flags of imb,
// tune, asp, and simd.
func EnableDefaultCache(prog string, noCache bool, dir string) (bool, error) {
	if noCache {
		return false, nil
	}
	if dir != "" {
		if err := EnableCache(dir); err != nil {
			return false, err
		}
		return true, nil
	}
	if base, err := os.UserCacheDir(); err == nil {
		dir = filepath.Join(base, "repro-sim")
	}
	if err := EnableCache(dir); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v (continuing with an in-memory cache)\n", prog, err)
		EnableCache("")
	}
	return true, nil
}

// ReportCacheCounts prints the hit/miss summary the cache-enabled commands
// emit on exit.
func ReportCacheCounts(prog string) {
	hits, misses := CacheCounts()
	fmt.Fprintf(os.Stderr, "%s: sim cache: %d hits, %d misses\n", prog, hits, misses)
}

// CacheCounts returns how many Measure calls were served from the cache
// and how many had to simulate since the cache was last enabled. Calls
// that waited on an identical in-flight cell (singleflight) count as hits:
// they were served without a simulation of their own.
func CacheCounts() (hits, misses int64) {
	return memo.hits.Load(), memo.misses.Load()
}

// DedupedCount returns how many Measure calls were deduplicated against an
// identical in-flight cell since the cache was last enabled — each one a
// simulation the singleflight layer avoided without touching disk.
func DedupedCount() int64 { return memo.deduped.Load() }

// memoKey builds cfg's cache key. ok is false when the cell must not be
// cached: a fault plan is active, or the component carries no canonical
// configuration encoding. cfg must already have NP and Iters defaulted,
// and dec must be the effective decider (explicit or global).
func memoKey(cfg Config, dec *tune.Decider) (string, bool) {
	if cfg.Fault != nil || cfg.Comp.Key == "" {
		return "", false
	}
	decKey := "none"
	if dec != nil {
		decKey = dec.Table().ContentHash()
	}
	return fmt.Sprintf("%s|%s|m=%s|comp=%s|btl=%d|knemmin=%d|op=%s|size=%d|np=%d|iters=%d|oc=%t|root=%d|dec=%s",
		cacheSchema, simFingerprint, tune.Fingerprint(cfg.Machine), cfg.Comp.Key,
		cfg.Comp.BTL, cfg.Comp.KnemMin, cfg.Op, cfg.Size, cfg.NP, cfg.Iters,
		cfg.OffCache, cfg.Root, decKey), true
}

// entryPath shards entries by the first hash byte to keep directories flat.
func entryPath(dir, key string) string {
	sum := sha256.Sum256([]byte(key))
	h := fmt.Sprintf("%x", sum)
	return filepath.Join(dir, h[:2], h+".json")
}

// memoPeek consults the in-memory layer, then disk, without touching the
// hit/miss counters — Measure accounts each of its calls exactly once
// after the singleflight layer has resolved who simulates. Disk hits are
// promoted to memory. Any read, decode, or key mismatch problem is a miss.
func memoPeek(key string) (memoEntry, bool) {
	if v, ok := memo.mem.Load(key); ok {
		return v.(memoEntry), true
	}
	memo.mu.Lock()
	dir := memo.dir
	memo.mu.Unlock()
	if dir != "" {
		data, err := os.ReadFile(entryPath(dir, key))
		if err == nil {
			var ent memoEntry
			if json.Unmarshal(data, &ent) == nil && ent.Schema == cacheSchema && ent.Key == key {
				memo.mem.Store(key, ent)
				return ent, true
			}
		}
	}
	return memoEntry{}, false
}

// memoStore records a freshly simulated cell. Disk persistence is
// best-effort: a full or read-only cache directory costs future speed, not
// correctness, so write errors are ignored.
func memoStore(key string, ent memoEntry) {
	ent.Schema, ent.Key = cacheSchema, key
	memo.mem.Store(key, ent)
	if data, err := json.Marshal(&ent); err == nil {
		writeEntryFile(key, data)
	}
}

// writeEntryFile persists one encoded entry under the disk layer's path for
// key, via create-temp + rename so concurrent writers never leave partial
// files. No-op without a disk directory; errors cost speed, not results.
func writeEntryFile(key string, data []byte) {
	memo.mu.Lock()
	dir := memo.dir
	memo.mu.Unlock()
	if dir == "" {
		return
	}
	path := entryPath(dir, key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(append(data, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
	}
}

// rawMemoEntry carries a memoized cell whose payload is not a Measure
// (seconds, stats) pair — e.g. the ASP application cells of Table I. Same
// key discipline, disk layout, and atomicity as memoEntry.
type rawMemoEntry struct {
	Schema string          `json:"schema"`
	Key    string          `json:"key"`
	Value  json.RawMessage `json:"value"`
}

// memoLookupJSON consults the cache for key, decoding the payload into
// out; it reports whether the cell was served from the cache.
func memoLookupJSON(key string, out any) bool {
	if !memo.enabled.Load() {
		return false
	}
	if v, ok := memo.mem.Load(key); ok {
		if ent, ok := v.(rawMemoEntry); ok && json.Unmarshal(ent.Value, out) == nil {
			memo.hits.Add(1)
			return true
		}
	}
	memo.mu.Lock()
	dir := memo.dir
	memo.mu.Unlock()
	if dir != "" {
		data, err := os.ReadFile(entryPath(dir, key))
		if err == nil {
			var ent rawMemoEntry
			if json.Unmarshal(data, &ent) == nil && ent.Schema == cacheSchema && ent.Key == key &&
				json.Unmarshal(ent.Value, out) == nil {
				memo.mem.Store(key, ent)
				memo.hits.Add(1)
				return true
			}
		}
	}
	memo.misses.Add(1)
	return false
}

// memoStoreJSON records a freshly computed non-Measure cell.
func memoStoreJSON(key string, v any) {
	if !memo.enabled.Load() {
		return
	}
	value, err := json.Marshal(v)
	if err != nil {
		return
	}
	ent := rawMemoEntry{Schema: cacheSchema, Key: key, Value: value}
	memo.mem.Store(key, ent)
	if data, err := json.Marshal(&ent); err == nil {
		writeEntryFile(key, data)
	}
}
