package bench

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/coll/hier"
	"repro/internal/memsim"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tune"
)

// Intra-cell parallelism: one eligible cluster cell is partitioned into a
// fabric domain (every node-leader rank plus all fabric traffic, on the
// shard's own engine) and one sub-simulation per node (that node's member
// ranks, on a pooled engine), synchronized with conservative time windows
// of width equal to the cluster's control-latency lookahead (sim.Group).
// The partitioning is exact, not approximate: all cross-partition traffic
// in the eligible envelope is out-of-band control messages carrying at
// least the control latency, so no event inside a window can affect
// another partition within that window, and the parallel run reproduces
// the single-engine run bit for bit — every timestamp, every counter,
// every memoized value. parallelEligible defines the envelope; a post-run
// audit (memsim.AuditPartitions) independently verifies the no-foreign-
// traffic invariant and demotes the cell to a serial re-run if it ever
// failed.

// parallelOff gates intra-cell parallel execution; the zero value means
// enabled. The toggle is deliberately NOT part of the memo key: parallel
// and serial runs are byte-identical, so the mode cannot change any
// cached value.
var parallelOff atomic.Bool

// SetParallelIntra enables or disables intra-cell parallel execution of
// eligible cluster cells (enabled by default).
func SetParallelIntra(on bool) { parallelOff.Store(!on) }

// ParallelIntra reports whether intra-cell parallel execution is enabled.
func ParallelIntra() bool { return !parallelOff.Load() }

// parallelEligible reports whether cfg's cell is inside the proven
// envelope for intra-cell parallel execution: a multi-node cluster cell
// on the default hierarchical component, no fault plan, no decision
// source, full machine occupancy, and an operation whose cross-partition
// traffic is exclusively out-of-band control messages. The envelope is
// conservative by construction — anything outside it runs serially, which
// is always correct.
func parallelEligible(cfg Config, dec *tune.Decider) bool {
	cl := cfg.Comp.Cluster
	if cl == nil || cl.NNodes() < 2 {
		return false
	}
	// Full occupancy in rank order so every node has its leader as its
	// first core and its members resident (the partition map is computed
	// from the cluster shape alone).
	if cfg.Machine != cl.Global || cfg.NP != cfg.Machine.NCores() {
		return false
	}
	// Fault plans can invalidate regions mid-copy and force NACK resends,
	// whose p2p retransmissions would cross partitions; decision sources
	// can reroute algorithms out of the envelope.
	if cfg.Fault != nil || dec != nil || cfg.Comp.BTL != mpi.BTLSM {
		return false
	}
	// Default Hier-Tree only: its phase structure is what the envelope
	// arguments (and the audit ranges) are proven against.
	if cfg.Comp.Key != hierCfgKey(hier.Config{}) {
		return false
	}
	if _, err := cl.Lookahead(); err != nil {
		return false
	}
	switch cfg.Op {
	case OpBarrier:
		// Dissemination among leaders is zero-length eager p2p inside the
		// fabric partition; members synchronize with their leader over OOB.
		return true
	case OpBcast:
		// KNEM intra-node phase (members single-copy from the leader's
		// region — node-local flows plus OOB responses, never member↔leader
		// FIFO traffic) and non-pipelined binomial inter phase (leader
		// FIFOs stay inside the fabric partition). Root 0 is node 0's
		// leader, so there is no root→leader staging send.
		return cfg.Root == 0 && cfg.Size >= 16<<10 && cfg.Size <= 64<<10
	}
	return false
}

// simulateParallel runs an eligible cluster cell across a leased engine
// group. ok=false with a nil error means the post-run audit rejected the
// partitioning: the result was discarded and the caller must re-run
// serially. cfg must already have NP and Iters defaulted and dec resolved
// (dec is necessarily nil inside the envelope).
func simulateParallel(ctx context.Context, cfg Config, dec *tune.Decider) (Result, bool, error) {
	cl := cfg.Comp.Cluster
	lookahead, err := cl.Lookahead()
	if err != nil {
		return Result{}, false, err
	}
	sh := acquireShard()
	defer releaseShard(sh)
	g := sh.leaseGroup(cl)
	grp, err := sim.NewGroup(g.engines, lookahead)
	if err != nil {
		return Result{}, false, err
	}
	// Carved after the lease so a warmed shard serves it from its arena.
	perRank := sim.SlicesFor[float64](g.engines[0].Arena()).Make(cfg.NP)
	if ctx.Done() != nil {
		for _, eng := range g.engines {
			eng.SetInterrupt(ctx.Err)
		}
		defer func() {
			for _, eng := range g.engines {
				eng.SetInterrupt(nil)
			}
		}()
	}
	_, _, err = mpi.Run(mpi.Options{
		Machine: cfg.Machine,
		NP:      cfg.NP,
		BTL:     cfg.Comp.BTL,
		KnemMin: cfg.Comp.KnemMin,
		SHM:     shmConfig(),
		Coll:    cfg.Comp.New,
		Decider: dec,
		Part: &mpi.PartitionSpec{
			Of:      g.of,
			Engines: g.engines,
			Nets:    g.nets,
			Group:   grp,
		},
	}, benchBody(cfg, nil, perRank))
	var auditErr error
	if err == nil {
		auditErr = memsim.AuditPartitions(g.nets[0], g.nets[1:], lookahead)
	}
	noteGroupRun(len(g.engines), grp.Windows(), grp.MaxStaged(), auditErr != nil)
	if err != nil {
		return Result{}, false, fmt.Errorf("bench: %s/%s/%s/%d (parallel): %w",
			cfg.Machine.Name, cfg.Comp.Name, cfg.Op, cfg.Size, err)
	}
	if auditErr != nil {
		return Result{}, false, nil
	}
	// Counters are purely additive and every increment lands in exactly
	// one partition sink, so a partition-order merge equals the serial
	// run's single shared sink (cluster cells never reset mid-run; see
	// benchBody).
	var merged trace.Stats
	for _, sp := range g.statsP {
		merged.Merge(sp)
	}
	res := Result{Config: cfg, Stats: merged.Snapshot()}
	for _, v := range perRank {
		if v > res.Seconds {
			res.Seconds = v
		}
	}
	return res, true, nil
}

// MeasureForced measures cfg without consulting the memo cache, forcing
// intra-cell parallel execution on or off regardless of the package
// toggle. The parallel-vs-serial identity checks (simbench's
// cluster_10k_intra cell, make scale-smoke) use it to obtain both runs of
// one cell in a single process. Forcing parallel on a cell outside the
// envelope is an error, as is an audit fallback — the caller asked for
// the parallel run specifically.
func MeasureForced(ctx context.Context, cfg Config, parallel bool) (Result, error) {
	if cfg.NP == 0 {
		cfg.NP = cfg.Machine.NCores()
	}
	if cfg.Iters == 0 {
		cfg.Iters = 3
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	dec := cfg.Decider
	if dec == nil {
		dec = decisions.Load().For(cfg.Machine)
	}
	if !parallel {
		return simulateSerial(ctx, cfg, dec)
	}
	if !parallelEligible(cfg, dec) {
		return Result{}, fmt.Errorf("bench: %s/%s/%s/%d is outside the intra-cell parallel envelope",
			cfg.Machine.Name, cfg.Comp.Name, cfg.Op, cfg.Size)
	}
	res, ok, err := simulateParallel(ctx, cfg, dec)
	if err != nil {
		return res, err
	}
	if !ok {
		return Result{}, fmt.Errorf("bench: %s/%s/%s/%d: partition audit rejected the forced parallel run",
			cfg.Machine.Name, cfg.Comp.Name, cfg.Op, cfg.Size)
	}
	return res, nil
}
