package bench

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/topology"
)

// A tiny one-panel figure keeps the JSON/render paths tested without the
// full four-machine sweep.
func tinyFigure(t *testing.T) Figure {
	t.Helper()
	m := topology.Dancer()
	return Figure{
		ID:    "tiny",
		Title: "tiny",
		Panels: []Panel{{
			Title:    "tiny on Dancer",
			Machine:  m.Name,
			Baseline: "KNEM-Coll",
			Sizes:    []int64{64 * KiB},
			Series:   sweep(m, m.NCores(), OpBcast, []Comp{TunedSM(), KNEMColl()}, []int64{64 * KiB}, 1, true),
		}},
	}
}

func TestFigureRenderAndJSON(t *testing.T) {
	fig := tinyFigure(t)
	var txt strings.Builder
	fig.Render(&txt)
	if !strings.Contains(txt.String(), "Tuned-SM") || !strings.Contains(txt.String(), "64K") {
		t.Fatalf("render:\n%s", txt.String())
	}
	var js strings.Builder
	if err := fig.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(js.String()), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	panels := decoded["panels"].([]any)
	if len(panels) != 1 {
		t.Fatalf("panels = %d", len(panels))
	}
	series := panels[0].(map[string]any)["series"].([]any)
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	// The baseline's normalized value is exactly 1.
	for _, sAny := range series {
		sm := sAny.(map[string]any)
		if sm["label"] == "KNEM-Coll" {
			pt := sm["points"].([]any)[0].(map[string]any)
			if pt["normalized"].(float64) != 1.0 {
				t.Fatalf("baseline normalized = %v", pt["normalized"])
			}
		}
	}
}

func TestScalabilityRender(t *testing.T) {
	m := topology.Dancer()
	s := RunScalability(m, OpBcast, 256*KiB, []int{2, 8}, []Comp{TunedSM(), KNEMColl()}, 1)
	var sb strings.Builder
	s.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "growth") || !strings.Contains(out, "KNEM-Coll") {
		t.Fatalf("render:\n%s", out)
	}
	if g := s.Growth("Tuned-SM"); g <= 1 {
		t.Fatalf("Tuned-SM growth = %g, want > 1", g)
	}
}

func TestTable1Render(t *testing.T) {
	res := RunTable1(topology.Dancer(), 2048, 32)
	var sb strings.Builder
	res.Render(&sb)
	if !strings.Contains(sb.String(), "Improvement") || !strings.Contains(sb.String(), "KNEM Coll") {
		t.Fatalf("render:\n%s", sb.String())
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestPingPongOp(t *testing.T) {
	m := topology.Dancer()
	small := MustMeasure(Config{Machine: m, Comp: TunedSM(), Op: OpPingPong, Size: 1 * KiB, Iters: 2})
	big := MustMeasure(Config{Machine: m, Comp: TunedSM(), Op: OpPingPong, Size: 1 * MiB, Iters: 2})
	if small.Seconds <= 0 || big.Seconds <= small.Seconds {
		t.Fatalf("pingpong: small=%g big=%g", small.Seconds, big.Seconds)
	}
}

func TestAblationRows(t *testing.T) {
	strict, lazy := lazySyncMeasure(false), lazySyncMeasure(true)
	row := AblationRow{
		Name: "root sync under 1ms straggler", A: "strict", B: "lazy",
		SecsA: strict, SecsB: lazy, Speedup: strict / lazy,
	}
	if row.Speedup <= 1 {
		t.Fatalf("lazy sync ablation speedup = %g, want > 1", row.Speedup)
	}
	var sb strings.Builder
	RenderAblations(&sb, []AblationRow{row})
	if !strings.Contains(sb.String(), "straggler") {
		t.Fatal("ablation render missing row")
	}
}
