package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestEnableCacheDirFailFast pins the -cache-dir contract: missing parents
// are created when possible, and a path that can never accept writes is
// rejected immediately with one clear error — not discovered later as
// silent per-shard write failures.
func TestEnableCacheDirFailFast(t *testing.T) {
	tmp := t.TempDir()
	blocker := filepath.Join(tmp, "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	roParent := filepath.Join(tmp, "ro")
	if err := os.Mkdir(roParent, 0o555); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		dir     string
		wantErr string // substring of the one-line error; "" means success
		skip    bool
	}{
		{name: "existing directory", dir: tmp},
		{name: "missing parents are created", dir: filepath.Join(tmp, "a", "b", "c")},
		{name: "in-memory only", dir: ""},
		{name: "path is an existing file", dir: blocker, wantErr: "cache dir"},
		{name: "parent is a file", dir: filepath.Join(blocker, "sub"), wantErr: "cache dir"},
		{
			name: "read-only parent", dir: filepath.Join(roParent, "sub"),
			wantErr: "cache dir",
			// root ignores mode bits, so the permission probe cannot fail.
			skip: os.Geteuid() == 0,
		},
	}
	defer DisableCache()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.skip {
				t.Skip("not enforceable for this user")
			}
			err := EnableCache(tc.dir)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("EnableCache(%q) = %v, want success", tc.dir, err)
				}
				if tc.dir != "" {
					if fi, serr := os.Stat(tc.dir); serr != nil || !fi.IsDir() {
						t.Fatalf("EnableCache(%q) did not leave a directory behind: %v", tc.dir, serr)
					}
				}
				return
			}
			if err == nil {
				t.Fatalf("EnableCache(%q) succeeded, want error mentioning %q", tc.dir, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) || !strings.Contains(err.Error(), tc.dir) {
				t.Fatalf("EnableCache(%q) error %q does not name the problem and the path", tc.dir, err)
			}
			if strings.ContainsRune(err.Error(), '\n') {
				t.Fatalf("EnableCache(%q) error is not one line: %q", tc.dir, err)
			}
		})
	}
}

// TestEnableDefaultCacheExplicitDirFails pins the flag-level behavior: an
// explicitly requested -cache-dir that cannot be used is an error (the
// caller exits), while noCache simply reports the cache off.
func TestEnableDefaultCacheExplicitDirFails(t *testing.T) {
	defer DisableCache()
	bad := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(bad, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if on, err := EnableDefaultCache("prog", false, bad); err == nil || on {
		t.Fatalf("explicit unusable -cache-dir: got on=%v err=%v, want fail-fast error", on, err)
	}
	if on, err := EnableDefaultCache("prog", true, bad); err != nil || on {
		t.Fatalf("-no-cache: got on=%v err=%v, want off with no error", on, err)
	}
	if on, err := EnableDefaultCache("prog", false, filepath.Join(t.TempDir(), "fresh")); err != nil || !on {
		t.Fatalf("usable explicit dir: got on=%v err=%v, want enabled", on, err)
	}
}
