package bench

import (
	"reflect"
	"testing"

	"repro/internal/topology"
)

// TestShardReuseBitIdentical pins the sharded runner's contract: repeated
// Measure calls — the later ones running on recycled engine/net shards —
// return bit-identical timings and counters, sequentially and under a
// parallel sweep. The cache is kept off so every cell truly simulates.
func TestShardReuseBitIdentical(t *testing.T) {
	DisableCache()
	cfg := Config{
		Machine: topology.IG(),
		Comp:    KNEMColl(),
		Op:      OpBcast,
		Size:    256 * KiB,
		Iters:   1,
	}
	want := MustMeasure(cfg)
	for i := 0; i < 3; i++ {
		got := MustMeasure(cfg)
		if got.Seconds != want.Seconds {
			t.Fatalf("rerun %d: %.17g s, first run %.17g s", i, got.Seconds, want.Seconds)
		}
		if !reflect.DeepEqual(got.Stats, want.Stats) {
			t.Fatalf("rerun %d: stats diverged:\ngot   %v\nfirst %v", i, got.Stats.String(), want.Stats.String())
		}
	}

	// A parallel sweep mixing machines must agree cell-for-cell with the
	// sequential run (shards are per-worker, never shared between live
	// cells, and reused across machines within a worker).
	cfgs := []Config{
		cfg,
		{Machine: topology.Dancer(), Comp: TunedSM(), Op: OpAllgather, Size: 64 * KiB, Iters: 1},
		{Machine: topology.IG(), Comp: MPICH2KNEM(), Op: OpScatter, Size: 128 * KiB, Iters: 1},
		cfg,
	}
	seq := MeasureAll(cfgs)
	old := Parallel()
	SetParallel(4)
	par := MeasureAll(cfgs)
	SetParallel(old)
	for i := range seq {
		if seq[i].Seconds != par[i].Seconds || !reflect.DeepEqual(seq[i].Stats, par[i].Stats) {
			t.Fatalf("cell %d: parallel run diverged from sequential: %.17g vs %.17g",
				i, par[i].Seconds, seq[i].Seconds)
		}
	}
	if seq[0].Seconds != want.Seconds {
		t.Fatalf("sweep cell 0 %.17g s != direct measure %.17g s", seq[0].Seconds, want.Seconds)
	}
}
