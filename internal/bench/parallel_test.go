package bench

import (
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/topology"
)

// TestParallelSweepByteIdentical runs a small Fig5-style sweep (Broadcast,
// three components, two sizes) sequentially and at -parallel 4, and
// asserts the rendered panels are byte-identical. Under `go test -race`
// (make test-race) this also proves the worker pool shares nothing mutable
// between cells beyond the immutable machine model.
func TestParallelSweepByteIdentical(t *testing.T) {
	render := func(par int) string {
		SetParallel(par)
		defer SetParallel(1)
		m := topology.Dancer()
		sizes := []int64{64 * KiB, 256 * KiB}
		p := Panel{
			Title:    "Broadcast on Dancer",
			Machine:  m.Name,
			Baseline: "KNEM-Coll",
			Sizes:    sizes,
			Series:   sweep(m, m.NCores(), OpBcast, []Comp{TunedSM(), MPICH2SM(), KNEMColl()}, sizes, 1, true),
		}
		var sb strings.Builder
		p.Render(&sb)
		return sb.String()
	}
	seq := render(1)
	par := render(4)
	if seq != par {
		t.Fatalf("parallel sweep output differs from sequential:\n--- parallel=1\n%s\n--- parallel=4\n%s", seq, par)
	}
	if !strings.Contains(seq, "KNEM-Coll") {
		t.Fatal("sweep output missing series")
	}
}

// TestRunCellsCoversAllIndices checks the pool visits every cell exactly
// once and honors the clamped parallelism level.
func TestRunCellsCoversAllIndices(t *testing.T) {
	SetParallel(3)
	defer SetParallel(1)
	if Parallel() != 3 {
		t.Fatalf("Parallel() = %d, want 3", Parallel())
	}
	var hits [100]atomic.Int32
	runCells(len(hits), func(i int) { hits[i].Add(1) })
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("cell %d ran %d times", i, got)
		}
	}
	SetParallel(0) // clamps to sequential
	if Parallel() != 1 {
		t.Fatalf("Parallel() after SetParallel(0) = %d, want 1", Parallel())
	}
}

// TestRunCellsPropagatesPanic: a failed cell must fail the sweep, not be
// swallowed by a worker goroutine.
func TestRunCellsPropagatesPanic(t *testing.T) {
	SetParallel(4)
	defer SetParallel(1)
	defer func() {
		if recover() == nil {
			t.Fatal("panic in a cell was swallowed")
		}
	}()
	runCells(8, func(i int) {
		if i == 5 {
			panic("cell exploded")
		}
	})
}
