package bench

import "sync"

// Singleflight for measurement cells: when several goroutines — the
// parallel sweep runner's workers, or concurrent server requests — need
// the same cell key at the same moment, exactly one of them simulates and
// the rest wait for its memoized entry. Without this layer the cache only
// deduplicates across time (a cell must finish before the next identical
// one can hit); with it, identical in-flight cells collapse too, so a
// burst of identical batch requests costs one simulation, not one per
// request.
//
// The protocol is deliberately loose on failure: a leader that errors
// (simulation failure, cancelled context) marks the flight failed and the
// waiters retry from the top — re-checking the cache, then electing a new
// leader among themselves. A cancelled waiter abandons the flight without
// affecting it.

// flight is one in-progress computation of a cell key. ok is written by
// the leader before close(done) and read by waiters after <-done, so the
// close is the happens-before edge and no lock is needed on ok.
type flight struct {
	done chan struct{}
	ok   bool
}

var flights = struct {
	mu sync.Mutex
	m  map[string]*flight
}{m: map[string]*flight{}}

// flightJoin returns the in-progress flight for key, creating one if none
// exists; leader reports whether this caller created it (and therefore
// must simulate and complete the flight).
func flightJoin(key string) (c *flight, leader bool) {
	flights.mu.Lock()
	defer flights.mu.Unlock()
	if c, ok := flights.m[key]; ok {
		return c, false
	}
	c = &flight{done: make(chan struct{})}
	flights.m[key] = c
	return c, true
}

// flightDone completes a flight: the leader calls it exactly once, with ok
// true only after the entry has been stored in the memo layer (so woken
// waiters are guaranteed to find it there).
func flightDone(key string, c *flight, ok bool) {
	flights.mu.Lock()
	delete(flights.m, key)
	flights.mu.Unlock()
	c.ok = ok
	close(c.done)
}
