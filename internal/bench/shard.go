package bench

import (
	"sync"

	"repro/internal/memsim"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Sweep sharding: every Measure cell used to build a fresh sim.Engine and
// memsim.Net, so a 200-cell figure sweep paid 200 times for event slabs,
// coroutine objects, interned routes, water-filling scratch, and
// cache-entry pools. A shard is one worker's warmed copy of that state —
// a private engine plus one memory system per machine it has measured —
// leased for the duration of a cell and reset between cells. Engine.Reset
// and Net.Reset restore observably-fresh state (same timestamps, same
// sequence numbers, bit-identical runs) while keeping every pool, so the
// arenas are sized in the worker's first cell and reused for the rest of
// the sweep. Shards are taken from a pool sized by demand: concurrent
// cells never share one, so results are byte-identical at every
// -parallel level.

type shard struct {
	eng  *sim.Engine
	nets map[*topology.Machine]*memsim.Net
}

var shardPool = sync.Pool{New: func() any {
	return &shard{eng: sim.NewEngine(), nets: map[*topology.Machine]*memsim.Net{}}
}}

// acquireShard leases a warmed shard (or builds the pool's next one).
func acquireShard() *shard { return shardPool.Get().(*shard) }

// releaseShard returns a shard after its cell completes. The state left
// behind is dirty; lease resets it on next use.
func releaseShard(s *shard) { shardPool.Put(s) }

// lease readies the shard for one cell on machine m: the engine is reset,
// and m's memory system is reset onto the cell's stats sink (or built on
// first use of m by this shard).
func (s *shard) lease(m *topology.Machine, stats *trace.Stats) (*sim.Engine, *memsim.Net) {
	s.eng.Reset()
	n := s.nets[m]
	if n == nil {
		n = memsim.New(s.eng, m, stats)
		s.nets[m] = n
	} else {
		n.Reset(stats)
	}
	return s.eng, n
}
