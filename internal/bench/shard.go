package bench

import (
	"sync"

	"repro/internal/memsim"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Sweep sharding: every Measure cell used to build a fresh sim.Engine and
// memsim.Net, so a 200-cell figure sweep paid 200 times for event slabs,
// coroutine objects, interned routes, water-filling scratch, and
// cache-entry pools. A shard is one worker's warmed copy of that state —
// a private engine plus one memory system per machine it has measured —
// leased for the duration of a cell and reset between cells. Engine.Reset
// and Net.Reset restore observably-fresh state (same timestamps, same
// sequence numbers, bit-identical runs) while keeping every pool, so the
// arenas are sized in the worker's first cell and reused for the rest of
// the sweep. Shards are taken from a pool sized by demand: concurrent
// cells never share one, so results are byte-identical at every
// -parallel level.

type shard struct {
	eng  *sim.Engine
	nets map[*topology.Machine]*memsim.Net
	// groups holds the shard's warmed engine groups for intra-cell parallel
	// execution, one per cluster it has run in parallel (see engineGroup).
	groups map[*topology.Cluster]*engineGroup
}

var shardPool = sync.Pool{New: func() any {
	return &shard{eng: sim.NewEngine(), nets: map[*topology.Machine]*memsim.Net{}}
}}

// engineGroup is a shard's multi-engine complement for one cluster: the
// per-node engines, the memsim partition views carved from the shard's
// composite net, per-partition stats sinks, and the rank→partition map.
// Like the shard itself it is built once and re-leased: engines keep their
// event slabs and arenas, partition nets keep their solver scratch and
// buffer slabs, so a repeat parallel cell allocates next to nothing new.
//
// Partition layout: index 0 is the fabric domain — the shard's own engine
// runs every node-leader rank plus all fabric traffic over the full link
// range — and index d+1 runs node d's member ranks, hard-guarded to the
// node's contiguous link slice. Rank→partition: each node's first core is
// its leader (hier elects ms[0] without a fault plan, and the envelope
// excludes fault plans), so that rank goes to the fabric partition and the
// rest of the node's cores to the node partition.
type engineGroup struct {
	engines []*sim.Engine  // [0] == the shard's own engine
	nets    []*memsim.Net  // partition views, index-aligned with engines
	statsP  []*trace.Stats // per-partition sinks, zeroed per lease
	of      []int32        // rank -> partition, for NP == NCores(Global)
}

// leaseGroup readies the shard's engine group for one parallel cell on
// cluster cl, building it on first use. Every engine is reset, every
// partition net is reset onto its zeroed per-partition sink and re-scoped
// to the cluster's coherence islands (Net.Reset clears islands).
func (s *shard) leaseGroup(cl *topology.Cluster) *engineGroup {
	parent := s.nets[cl.Global]
	if parent == nil {
		parent = memsim.New(s.eng, cl.Global, nil)
		s.nets[cl.Global] = parent
	}
	if s.groups == nil {
		s.groups = map[*topology.Cluster]*engineGroup{}
	}
	g := s.groups[cl]
	if g == nil {
		g = buildGroup(s.eng, parent, cl)
		s.groups[cl] = g
	}
	for i, eng := range g.engines {
		eng.Reset()
		g.statsP[i].Reset()
		g.nets[i].Reset(g.statsP[i])
		g.nets[i].SetClusterIslands(cl)
	}
	return g
}

// buildGroup compiles cl's partitioning once for a shard: fresh engines
// for the nodes, partition nets carved from parent, audit ranges on the
// fabric partition, and the rank→partition map.
func buildGroup(eng0 *sim.Engine, parent *memsim.Net, cl *topology.Cluster) *engineGroup {
	nn := cl.NNodes()
	g := &engineGroup{
		engines: make([]*sim.Engine, nn+1),
		nets:    make([]*memsim.Net, nn+1),
		statsP:  make([]*trace.Stats, nn+1),
	}
	for i := range g.statsP {
		g.statsP[i] = &trace.Stats{}
	}
	g.engines[0] = eng0
	for i := 1; i <= nn; i++ {
		g.engines[i] = sim.NewEngine()
	}
	// NewPartition snapshots the parent's island tables.
	parent.SetClusterIslands(cl)
	nl := len(cl.Global.Links)
	g.nets[0] = parent.NewPartition(eng0, g.statsP[0], 0, nl, 0)
	ranges := make([][2]int32, nn)
	for d, node := range cl.Nodes {
		g.nets[d+1] = parent.NewPartition(g.engines[d+1], g.statsP[d+1],
			node.FirstLink, node.FirstLink+node.NLinks, int64(d+1)<<32)
		ranges[d] = [2]int32{int32(node.FirstLink), int32(node.FirstLink + node.NLinks)}
	}
	g.nets[0].SetAuditRanges(ranges)
	np := cl.Global.NCores()
	g.of = make([]int32, np)
	for r := 0; r < np; r++ {
		d := cl.NodeOfCore(r)
		if r == cl.Nodes[d].FirstCore {
			g.of[r] = 0 // node leader: runs on the fabric engine
		} else {
			g.of[r] = int32(d + 1)
		}
	}
	return g
}

// EngineGroupStats is the pool-wide high-water footprint and activity of
// the intra-cell parallel engine groups, surfaced in GET /v1/stats next to
// the shard stats.
type EngineGroupStats struct {
	// Leases counts parallel cells served by pooled engine groups.
	Leases int64 `json:"leases"`
	// EnginesHighWater is the largest engine count any group has held
	// (nodes + 1 fabric).
	EnginesHighWater int `json:"engines_high_water"`
	// Windows is the total number of conservative time windows executed.
	Windows int64 `json:"windows_executed"`
	// ExportQueueHighWater is the largest number of cross-partition
	// control messages staged in any single window.
	ExportQueueHighWater int `json:"export_queue_high_water"`
	// AuditFallbacks counts parallel runs discarded because the post-run
	// partition audit found a lookahead violation (the cell was re-run
	// serially; the result is still exact).
	AuditFallbacks int64 `json:"audit_fallbacks"`
}

var (
	groupStatsMu sync.Mutex
	groupStats   EngineGroupStats
)

// EngineGroups returns the aggregated engine-group statistics.
func EngineGroups() EngineGroupStats {
	groupStatsMu.Lock()
	defer groupStatsMu.Unlock()
	return groupStats
}

// noteGroupRun folds one parallel run into the pool-wide group stats.
func noteGroupRun(engines int, windows int64, maxStaged int, auditFailed bool) {
	groupStatsMu.Lock()
	groupStats.Leases++
	if engines > groupStats.EnginesHighWater {
		groupStats.EnginesHighWater = engines
	}
	groupStats.Windows += windows
	if maxStaged > groupStats.ExportQueueHighWater {
		groupStats.ExportQueueHighWater = maxStaged
	}
	if auditFailed {
		groupStats.AuditFallbacks++
	}
	groupStatsMu.Unlock()
}

// ShardStats is the high-water resident footprint of the measurement
// shards, aggregated at release time: how many cells pooled shards have
// served and the largest arena any shard has grown — the daemon's
// per-shard resident cost, surfaced in GET /v1/stats.
type ShardStats struct {
	Leases       int64 `json:"leases"`
	ArenaBytes   int64 `json:"arena_bytes_high_water"`
	ArenaPools   int   `json:"arena_slab_pools_high_water"`
	ArenaObjects int64 `json:"arena_slab_objects_high_water"`
}

var (
	shardStatsMu sync.Mutex
	shardStats   ShardStats
)

// Shards returns the pool's aggregated high-water statistics.
func Shards() ShardStats {
	shardStatsMu.Lock()
	defer shardStatsMu.Unlock()
	return shardStats
}

// acquireShard leases a warmed shard (or builds the pool's next one).
func acquireShard() *shard { return shardPool.Get().(*shard) }

// releaseShard returns a shard after its cell completes. The state left
// behind is dirty; lease resets it on next use. The shard's arena
// footprint — at its post-cell peak, before any rewind — folds into the
// pool-wide high-water stats here.
func releaseShard(s *shard) {
	a := s.eng.Arena().Stats()
	shardStatsMu.Lock()
	shardStats.Leases++
	if a.Bytes > shardStats.ArenaBytes {
		shardStats.ArenaBytes = a.Bytes
	}
	if a.Pools > shardStats.ArenaPools {
		shardStats.ArenaPools = a.Pools
	}
	if a.Objects > shardStats.ArenaObjects {
		shardStats.ArenaObjects = a.Objects
	}
	shardStatsMu.Unlock()
	shardPool.Put(s)
}

// lease readies the shard for one cell on machine m: the engine is reset,
// and m's memory system is reset onto the cell's stats sink (or built on
// first use of m by this shard).
func (s *shard) lease(m *topology.Machine, stats *trace.Stats) (*sim.Engine, *memsim.Net) {
	s.eng.Reset()
	n := s.nets[m]
	if n == nil {
		n = memsim.New(s.eng, m, stats)
		s.nets[m] = n
	} else {
		n.Reset(stats)
	}
	return s.eng, n
}
