package bench

import (
	"sync"

	"repro/internal/memsim"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Sweep sharding: every Measure cell used to build a fresh sim.Engine and
// memsim.Net, so a 200-cell figure sweep paid 200 times for event slabs,
// coroutine objects, interned routes, water-filling scratch, and
// cache-entry pools. A shard is one worker's warmed copy of that state —
// a private engine plus one memory system per machine it has measured —
// leased for the duration of a cell and reset between cells. Engine.Reset
// and Net.Reset restore observably-fresh state (same timestamps, same
// sequence numbers, bit-identical runs) while keeping every pool, so the
// arenas are sized in the worker's first cell and reused for the rest of
// the sweep. Shards are taken from a pool sized by demand: concurrent
// cells never share one, so results are byte-identical at every
// -parallel level.

type shard struct {
	eng  *sim.Engine
	nets map[*topology.Machine]*memsim.Net
}

var shardPool = sync.Pool{New: func() any {
	return &shard{eng: sim.NewEngine(), nets: map[*topology.Machine]*memsim.Net{}}
}}

// ShardStats is the high-water resident footprint of the measurement
// shards, aggregated at release time: how many cells pooled shards have
// served and the largest arena any shard has grown — the daemon's
// per-shard resident cost, surfaced in GET /v1/stats.
type ShardStats struct {
	Leases       int64 `json:"leases"`
	ArenaBytes   int64 `json:"arena_bytes_high_water"`
	ArenaPools   int   `json:"arena_slab_pools_high_water"`
	ArenaObjects int64 `json:"arena_slab_objects_high_water"`
}

var (
	shardStatsMu sync.Mutex
	shardStats   ShardStats
)

// Shards returns the pool's aggregated high-water statistics.
func Shards() ShardStats {
	shardStatsMu.Lock()
	defer shardStatsMu.Unlock()
	return shardStats
}

// acquireShard leases a warmed shard (or builds the pool's next one).
func acquireShard() *shard { return shardPool.Get().(*shard) }

// releaseShard returns a shard after its cell completes. The state left
// behind is dirty; lease resets it on next use. The shard's arena
// footprint — at its post-cell peak, before any rewind — folds into the
// pool-wide high-water stats here.
func releaseShard(s *shard) {
	a := s.eng.Arena().Stats()
	shardStatsMu.Lock()
	shardStats.Leases++
	if a.Bytes > shardStats.ArenaBytes {
		shardStats.ArenaBytes = a.Bytes
	}
	if a.Pools > shardStats.ArenaPools {
		shardStats.ArenaPools = a.Pools
	}
	if a.Objects > shardStats.ArenaObjects {
		shardStats.ArenaObjects = a.Objects
	}
	shardStatsMu.Unlock()
	shardPool.Put(s)
}

// lease readies the shard for one cell on machine m: the engine is reset,
// and m's memory system is reset onto the cell's stats sink (or built on
// first use of m by this shard).
func (s *shard) lease(m *topology.Machine, stats *trace.Stats) (*sim.Engine, *memsim.Net) {
	s.eng.Reset()
	n := s.nets[m]
	if n == nil {
		n = memsim.New(s.eng, m, stats)
		s.nets[m] = n
	} else {
		n.Reset(stats)
	}
	return s.eng, n
}
