package bench

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles is the shared plumbing behind the -cpuprofile/-memprofile
// flags of the command-line tools: it starts a CPU profile at cpuPath
// and/or arranges an allocation profile at memPath (either may be empty).
// The returned stop function flushes both; call it before the process
// exits, including on failure exits (os.Exit skips defers).
func StartProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "profile:", err)
				return
			}
			defer f.Close()
			// The "allocs" profile records every allocation since process
			// start (sample indexes alloc_space/alloc_objects), which is
			// what a zero-allocation hot path investigation needs; a GC
			// first also makes the inuse indexes meaningful.
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "profile:", err)
			}
		}
	}, nil
}
