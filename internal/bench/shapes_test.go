package bench

// Shape tests: each encodes a claim from the paper's evaluation (§VI) as
// an executable assertion against the simulator. Absolute times are not
// asserted — only who wins and by roughly what factor (see EXPERIMENTS.md
// for the recorded values and the known deviations).

import (
	"testing"

	"repro/internal/core"
	"repro/internal/topology"
)

func measure(t *testing.T, m *topology.Machine, c Comp, op Op, size int64) float64 {
	t.Helper()
	r, err := Measure(Config{Machine: m, Comp: c, Op: op, Size: size, Iters: 1, OffCache: true})
	if err != nil {
		t.Fatal(err)
	}
	return r.Seconds
}

func wantFaster(t *testing.T, what string, slow, fast, factor float64) {
	t.Helper()
	if slow < fast*factor {
		t.Errorf("%s: %.1fus vs %.1fus — expected at least %.2fx", what, slow*1e6, fast*1e6, factor)
	}
}

// Fig. 4: on IG, the hierarchical Broadcast beats the linear one by ~2x,
// pipelining adds a further >= 1.15x, and oversized segments degrade to
// the unpipelined case.
func TestFig4Shape(t *testing.T) {
	m := topology.IG()
	linear := KNEMCollCfg("linear", core.Config{Mode: core.ModeLinear})
	nopipe := KNEMCollCfg("nopipe", core.Config{Mode: core.ModeHierarchical, NoPipeline: true})
	pipe16K := KNEMCollCfg("16K", core.Config{Mode: core.ModeHierarchical, FixedSeg: 16 * KiB})
	pipe2M := KNEMCollCfg("2M", core.Config{Mode: core.ModeHierarchical, FixedSeg: 2 * MiB})

	const sz = 2 * MiB
	tLin := measure(t, m, linear, OpBcast, sz)
	tNoP := measure(t, m, nopipe, OpBcast, sz)
	t16K := measure(t, m, pipe16K, OpBcast, sz)
	wantFaster(t, "hierarchy over linear", tLin, tNoP, 1.8)
	wantFaster(t, "pipelining over no-pipeline", tNoP, t16K, 1.15)

	// A segment as large as the message degenerates to no pipeline.
	t2M512 := measure(t, m, pipe2M, OpBcast, 512*KiB)
	tNoP512 := measure(t, m, nopipe, OpBcast, 512*KiB)
	if ratio := t2M512 / tNoP512; ratio < 0.99 || ratio > 1.01 {
		t.Errorf("2MB segment at 512K = %.3fx of no-pipeline, want 1.0", ratio)
	}
}

// Fig. 5: the KNEM Broadcast beats the copy-in/copy-out baselines on every
// platform.
func TestFig5Shape(t *testing.T) {
	for _, m := range []*topology.Machine{topology.Zoot(), topology.Dancer(), topology.Saturn(), topology.IG()} {
		for _, sz := range []int64{64 * KiB, 1 * MiB} {
			knem := measure(t, m, KNEMColl(), OpBcast, sz)
			wantFaster(t, m.Name+" bcast vs Tuned-SM", measure(t, m, TunedSM(), OpBcast, sz), knem, 1.3)
			wantFaster(t, m.Name+" bcast vs MPICH2-SM", measure(t, m, MPICH2SM(), OpBcast, sz), knem, 1.3)
			// Against Tuned-KNEM the gain is smaller (and on some
			// machine/size points the simulated chain ties — see
			// EXPERIMENTS.md deviations); assert competitiveness.
			wantFaster(t, m.Name+" bcast vs Tuned-KNEM", measure(t, m, TunedKNEM(), OpBcast, sz), knem, 0.85)
		}
	}
}

// Fig. 6: the KNEM Gather "tremendously outperforms all other components
// in all cases" thanks to sender-writes direction control.
func TestFig6Shape(t *testing.T) {
	for _, m := range []*topology.Machine{topology.Zoot(), topology.Dancer(), topology.Saturn(), topology.IG()} {
		knem := measure(t, m, KNEMColl(), OpGather, 256*KiB)
		for _, c := range []Comp{TunedSM(), TunedKNEM(), MPICH2SM(), MPICH2KNEM()} {
			wantFaster(t, m.Name+" gather vs "+c.Name, measure(t, m, c, OpGather, 256*KiB), knem, 1.8)
		}
	}
}

// §VI-C: KNEM Scatter beats the copy-in/copy-out scatters severalfold
// (receiver-reads at offsets); against Tuned-KNEM, whose linear scatter
// already reads in parallel, it stays competitive.
func TestScatterShape(t *testing.T) {
	for _, m := range []*topology.Machine{topology.Zoot(), topology.IG()} {
		knem := measure(t, m, KNEMColl(), OpScatter, 256*KiB)
		wantFaster(t, m.Name+" scatter vs Tuned-SM", measure(t, m, TunedSM(), OpScatter, 256*KiB), knem, 1.8)
		wantFaster(t, m.Name+" scatter vs MPICH2-SM", measure(t, m, MPICH2SM(), OpScatter, 256*KiB), knem, 1.8)
		wantFaster(t, m.Name+" scatter vs Tuned-KNEM", measure(t, m, TunedKNEM(), OpScatter, 256*KiB), knem, 0.9)
	}
}

// Fig. 7: Alltoallv gains are significant against the shared-memory
// baselines but modest against Tuned-KNEM (§VI-D).
func TestFig7Shape(t *testing.T) {
	for _, m := range []*topology.Machine{topology.Dancer(), topology.IG()} {
		knem := measure(t, m, KNEMColl(), OpAlltoallv, 256*KiB)
		wantFaster(t, m.Name+" alltoallv vs Tuned-SM", measure(t, m, TunedSM(), OpAlltoallv, 256*KiB), knem, 1.3)
		tk := measure(t, m, TunedKNEM(), OpAlltoallv, 256*KiB)
		if ratio := tk / knem; ratio < 0.85 || ratio > 1.5 {
			t.Errorf("%s alltoallv vs Tuned-KNEM = %.2fx, want modest (0.85..1.5)", m.Name, ratio)
		}
	}
}

// Fig. 8: the Gather+Bcast Allgather wins on the small NUMA machines but
// loses to Tuned-KNEM's ring on IG (the paper's §VI-D analysis of the
// root-NUMA bottleneck).
func TestFig8Shape(t *testing.T) {
	const sz = 256 * KiB
	dancer := topology.Dancer()
	knem := measure(t, dancer, KNEMColl(), OpAllgather, sz)
	wantFaster(t, "Dancer allgather vs Tuned-SM", measure(t, dancer, TunedSM(), OpAllgather, sz), knem, 1.2)

	ig := topology.IG()
	knemIG := measure(t, ig, KNEMColl(), OpAllgather, sz)
	tkIG := measure(t, ig, TunedKNEM(), OpAllgather, sz)
	if tkIG >= knemIG {
		t.Errorf("IG allgather: Tuned-KNEM (%.0fus) should beat the Gather+Bcast composition (%.0fus)", tkIG*1e6, knemIG*1e6)
	}
	// But KNEM Allgather must stay at least close to the SM baselines.
	smIG := measure(t, ig, TunedSM(), OpAllgather, sz)
	if knemIG > smIG*1.15 {
		t.Errorf("IG allgather: KNEM (%.0fus) much worse than Tuned-SM (%.0fus)", knemIG*1e6, smIG*1e6)
	}
}

// Table I: the KNEM component spends far less time in Bcast than both
// baselines, and the total improvement is a modest single-digit-to-low
// fraction of runtime (compute dominates).
func TestTable1Shape(t *testing.T) {
	for _, job := range []struct {
		m *topology.Machine
		n int
	}{{topology.Zoot(), 16384}, {topology.IG(), 32768}} {
		res := RunTable1(job.m, job.n, 64)
		knem := res.Rows[len(res.Rows)-1]
		for _, row := range res.Rows[:len(res.Rows)-1] {
			wantFaster(t, res.Machine+" ASP bcast vs "+row.Comp, row.Bcast, knem.Bcast, 1.8)
			if knem.Total >= row.Total {
				t.Errorf("%s: KNEM total %.0fs not best (vs %s %.0fs)", res.Machine, knem.Total, row.Comp, row.Total)
			}
		}
		if res.BcastImprovement < 30 {
			t.Errorf("%s: bcast improvement %.1f%%, want >= 30%%", res.Machine, res.BcastImprovement)
		}
		if res.TotalImprovement <= 0 || res.TotalImprovement > 35 {
			t.Errorf("%s: total improvement %.1f%%, want small positive", res.Machine, res.TotalImprovement)
		}
	}
}

// The benchmark harness itself: off-cache must not be slower than warm
// cache, max-over-ranks must dominate, and stats must accumulate.
func TestMeasureProtocol(t *testing.T) {
	m := topology.Dancer()
	warm, err := Measure(Config{Machine: m, Comp: KNEMColl(), Op: OpBcast, Size: 1 * MiB, Iters: 2})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Measure(Config{Machine: m, Comp: KNEMColl(), Op: OpBcast, Size: 1 * MiB, Iters: 2, OffCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Seconds > cold.Seconds*1.001 {
		t.Errorf("warm (%g) slower than off-cache (%g)", warm.Seconds, cold.Seconds)
	}
	if cold.Stats.Copies == 0 || cold.Stats.Registrations == 0 {
		t.Errorf("stats not accumulated: %+v", cold.Stats)
	}
}

func TestPanelNormalization(t *testing.T) {
	p := Panel{
		Baseline: "b",
		Sizes:    []int64{1},
		Series: []Series{
			{Label: "a", Seconds: map[int64]float64{1: 2.0}},
			{Label: "b", Seconds: map[int64]float64{1: 4.0}},
		},
	}
	norm := p.Normalized()
	if norm[0].Seconds[1] != 0.5 || norm[1].Seconds[1] != 1.0 {
		t.Fatalf("normalized = %v", norm)
	}
	if p.Get("a").Seconds[1] != 2.0 {
		t.Fatal("Get failed")
	}
}

func TestAllOpsRunOnAllComponents(t *testing.T) {
	m := topology.Dancer()
	for _, c := range append(PaperComponents(), BasicSM(), SMColl()) {
		for _, op := range []Op{OpBcast, OpGather, OpScatter, OpAllgather, OpAlltoall, OpAlltoallv, OpBarrier} {
			if _, err := Measure(Config{Machine: m, Comp: c, Op: op, Size: 64 * KiB, Iters: 1}); err != nil {
				t.Errorf("%s/%s: %v", c.Name, op, err)
			}
		}
	}
}

// §I / conclusion: the KNEM component scales better with core count than
// the copy-in/copy-out default — its cost from 2 to 48 ranks on IG grows
// by a much smaller factor.
func TestScalabilityShape(t *testing.T) {
	m := topology.IG()
	s := RunScalability(m, OpBcast, 1*MiB, []int{2, 8, 48},
		[]Comp{TunedSM(), KNEMColl()}, 1)
	gTuned := s.Growth("Tuned-SM")
	gKnem := s.Growth("KNEM-Coll")
	if gKnem*2 > gTuned {
		t.Errorf("growth 2->48 ranks: KNEM-Coll %.1fx vs Tuned-SM %.1fx — expected at least 2x better scaling", gKnem, gTuned)
	}
	// And the component never loses at full occupancy.
	if s.Seconds["KNEM-Coll"][48] >= s.Seconds["Tuned-SM"][48] {
		t.Error("KNEM-Coll slower at 48 ranks")
	}
}
