package bench

import (
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/topology"
	"repro/internal/tune"
)

func memoTestConfig(m *topology.Machine, size int64) Config {
	return Config{
		Machine: m, Comp: KNEMColl(), Op: OpBcast, Size: size,
		Iters: 1, OffCache: true,
	}
}

// TestCacheHitByteIdentical is the core memoization contract: a cached
// replay is bit-for-bit the result the simulation would have produced —
// same Seconds, same Stats counters — and the hit/miss counters account
// for every Measure call.
func TestCacheHitByteIdentical(t *testing.T) {
	m := topology.Dancer()
	cfg := memoTestConfig(m, 64*KiB)

	DisableCache()
	fresh := MustMeasure(cfg)

	if err := EnableCache(""); err != nil {
		t.Fatal(err)
	}
	defer DisableCache()
	first := MustMeasure(cfg)
	second := MustMeasure(cfg)
	if hits, misses := CacheCounts(); hits != 1 || misses != 1 {
		t.Fatalf("counts = %d hits, %d misses; want 1, 1", hits, misses)
	}
	for _, r := range []Result{first, second} {
		if r.Seconds != fresh.Seconds || !reflect.DeepEqual(r.Stats, fresh.Stats) {
			t.Fatalf("cached result diverges from uncached:\nfresh  %v %+v\ncached %v %+v",
				fresh.Seconds, fresh.Stats, r.Seconds, r.Stats)
		}
	}
}

// TestCacheDiskRoundTrip drops the in-memory layer between two runs so the
// second is served from the persistent entry, as a separate process would
// be, and must replay identically.
func TestCacheDiskRoundTrip(t *testing.T) {
	m := topology.Dancer()
	cfg := memoTestConfig(m, 64*KiB)
	dir := t.TempDir()

	if err := EnableCache(dir); err != nil {
		t.Fatal(err)
	}
	fresh := MustMeasure(cfg)
	DisableCache() // clears the in-memory layer, keeps disk

	if err := EnableCache(dir); err != nil {
		t.Fatal(err)
	}
	defer DisableCache()
	replay := MustMeasure(cfg)
	if hits, misses := CacheCounts(); hits != 1 || misses != 0 {
		t.Fatalf("counts = %d hits, %d misses; want disk hit with no miss", hits, misses)
	}
	if replay.Seconds != fresh.Seconds || !reflect.DeepEqual(replay.Stats, fresh.Stats) {
		t.Fatalf("disk replay diverges: %v vs %v", replay.Seconds, fresh.Seconds)
	}
}

// TestCacheKeyExclusions pins what must never be cached or conflated:
// fault-injected runs, components without a canonical configuration
// encoding, and cells differing in size, iterations, or decision table.
func TestCacheKeyExclusions(t *testing.T) {
	m := topology.Dancer()
	cfg := memoTestConfig(m, 64*KiB)
	cfg.NP = m.NCores()

	if _, ok := memoKey(cfg, nil); !ok {
		t.Fatal("plain cell refused a key")
	}

	faulty := cfg
	faulty.Fault = &fault.Plan{}
	if _, ok := memoKey(faulty, nil); ok {
		t.Fatal("fault-injected cell got a cache key")
	}

	anon := cfg
	anon.Comp.Key = ""
	if _, ok := memoKey(anon, nil); ok {
		t.Fatal("component without canonical encoding got a cache key")
	}

	base, _ := memoKey(cfg, nil)
	bigger := cfg
	bigger.Size = 128 * KiB
	if k, _ := memoKey(bigger, nil); k == base {
		t.Fatal("size not in the key")
	}
	moreIters := cfg
	moreIters.Iters = 2
	if k, _ := memoKey(moreIters, nil); k == base {
		t.Fatal("iters not in the key")
	}
	dec := tune.NewDecider(&tune.Table{
		Version: tune.TableVersion, Machine: m.Name, Fingerprint: tune.Fingerprint(m),
		Cells: []tune.Cell{{
			Op: tune.OpBcast, NP: m.NCores(), Size: 64 * KiB,
			Choice: tune.Choice{Comp: "KNEM-Coll"}, Seconds: 1e-4,
		}},
	})
	if k, _ := memoKey(cfg, dec); k == base {
		t.Fatal("decision table not in the key")
	}
}

// TestCacheParallelSweep runs a sweep with duplicated cells through the
// parallel runner with memoization on: under `go test -race` this proves
// concurrent lookups and stores are race-free, and every returned result
// must still equal the sequential uncached measurement.
func TestCacheParallelSweep(t *testing.T) {
	m := topology.Dancer()
	var cfgs []Config
	for i := 0; i < 3; i++ { // duplicates force hit/store interleaving
		for _, sz := range []int64{64 * KiB, 256 * KiB} {
			cfgs = append(cfgs, memoTestConfig(m, sz))
		}
	}

	DisableCache()
	want := MeasureAll(cfgs)

	if err := EnableCache(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	defer DisableCache()
	SetParallel(4)
	defer SetParallel(1)
	got := MeasureAll(cfgs)
	for i := range want {
		if got[i].Seconds != want[i].Seconds || !reflect.DeepEqual(got[i].Stats, want[i].Stats) {
			t.Fatalf("cell %d diverges under parallel cached sweep: %v vs %v",
				i, got[i].Seconds, want[i].Seconds)
		}
	}
	hits, misses := CacheCounts()
	if hits+misses != int64(len(cfgs)) || misses < 2 {
		t.Fatalf("counts = %d hits, %d misses over %d cells", hits, misses, len(cfgs))
	}
}
