package bench

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/topology"
)

// Scalability measures how a collective's cost grows with the number of
// cores — the §I motivation ("current shared memory techniques do not
// scale with increasing numbers of cores") and the conclusion's claim that
// the KNEM component exhibits better scalability on many-core hardware.
type Scalability struct {
	Machine string
	Op      Op
	Size    int64
	Ranks   []int
	// Seconds[comp][np] is the measured time.
	Seconds map[string]map[int]float64
	order   []string
}

// RunScalability sweeps rank counts on machine m for one operation. The
// comps × ranks cells run on the shared worker pool (SetParallel) and are
// assembled in deterministic order.
func RunScalability(m *topology.Machine, op Op, size int64, ranks []int, comps []Comp, iters int) Scalability {
	s := Scalability{
		Machine: m.Name, Op: op, Size: size, Ranks: ranks,
		Seconds: make(map[string]map[int]float64),
	}
	cfgs := make([]Config, 0, len(comps)*len(ranks))
	for _, c := range comps {
		for _, np := range ranks {
			cfgs = append(cfgs, Config{
				Machine: m, NP: np, Comp: c, Op: op, Size: size,
				Iters: iters, OffCache: true,
			})
		}
	}
	results := MeasureAll(cfgs)
	for i, c := range comps {
		s.order = append(s.order, c.Name)
		s.Seconds[c.Name] = make(map[int]float64)
		for j, np := range ranks {
			s.Seconds[c.Name][np] = results[i*len(ranks)+j].Seconds
		}
	}
	return s
}

// Growth returns time(maxNP)/time(minNP) for a component — the scaling
// penalty over the sweep (lower grows better).
func (s Scalability) Growth(comp string) float64 {
	ranks := append([]int(nil), s.Ranks...)
	sort.Ints(ranks)
	return s.Seconds[comp][ranks[len(ranks)-1]] / s.Seconds[comp][ranks[0]]
}

// Render prints the sweep with per-component growth factors.
func (s Scalability) Render(w io.Writer) {
	fmt.Fprintf(w, "## %s of %s on %s while filling cores (lower is better)\n", s.Op, sizeLabel(s.Size), s.Machine)
	fmt.Fprintf(w, "%8s", "ranks")
	for _, c := range s.order {
		fmt.Fprintf(w, " %14s", c)
	}
	fmt.Fprintln(w)
	for _, np := range s.Ranks {
		fmt.Fprintf(w, "%8d", np)
		for _, c := range s.order {
			fmt.Fprintf(w, " %12.1fus", s.Seconds[c][np]*1e6)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%8s", "growth")
	for _, c := range s.order {
		fmt.Fprintf(w, " %13.2fx", s.Growth(c))
	}
	fmt.Fprintln(w)
}
