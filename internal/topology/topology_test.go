package topology

import (
	"testing"
	"testing/quick"
)

func TestMachineShapes(t *testing.T) {
	cases := []struct {
		m       *Machine
		cores   int
		domains int
		groups  int
	}{
		{Zoot(), 16, 1, 8},
		{Dancer(), 8, 2, 2},
		{Saturn(), 16, 2, 2},
		{IG(), 48, 8, 8},
	}
	for _, c := range cases {
		if got := c.m.NCores(); got != c.cores {
			t.Errorf("%s: cores = %d, want %d", c.m.Name, got, c.cores)
		}
		if got := len(c.m.Domains); got != c.domains {
			t.Errorf("%s: domains = %d, want %d", c.m.Name, got, c.domains)
		}
		if got := len(c.m.Groups); got != c.groups {
			t.Errorf("%s: groups = %d, want %d", c.m.Name, got, c.groups)
		}
	}
}

func TestEveryCoreHasEngineDomainGroup(t *testing.T) {
	for name, m := range Machines() {
		for _, c := range m.Cores {
			if c.Engine == nil || c.Engine.BW != m.Spec.CoreCopyBW {
				t.Errorf("%s core %d: bad engine", name, c.ID)
			}
			if c.Domain == nil || c.Group == nil {
				t.Errorf("%s core %d: nil domain/group", name, c.ID)
			}
		}
	}
}

func TestLinkIndicesDense(t *testing.T) {
	for name, m := range Machines() {
		for i, l := range m.Links {
			if l.Index != i {
				t.Errorf("%s: link %d has index %d", name, i, l.Index)
			}
			if l.BW <= 0 {
				t.Errorf("%s: link %s has bw %g", name, l.Name, l.BW)
			}
		}
	}
}

func TestDistanceSymmetryAndTriangle(t *testing.T) {
	for name, m := range Machines() {
		for _, a := range m.Domains {
			if m.DomainDistance(a, a) != 0 {
				t.Errorf("%s: self distance nonzero", name)
			}
			for _, b := range m.Domains {
				if m.DomainDistance(a, b) != m.DomainDistance(b, a) {
					t.Errorf("%s: asymmetric distance %d<->%d", name, a.ID, b.ID)
				}
				for _, c := range m.Domains {
					if m.DomainDistance(a, c) > m.DomainDistance(a, b)+m.DomainDistance(b, c) {
						t.Errorf("%s: triangle inequality violated", name)
					}
				}
			}
		}
	}
}

func TestPathEndsAtBus(t *testing.T) {
	for name, m := range Machines() {
		for _, c := range m.Cores {
			for _, d := range m.Domains {
				p := m.PathToDomain(c, d)
				if len(p) == 0 || p[len(p)-1] != d.Bus {
					t.Fatalf("%s: path core %d -> dom %d does not end at bus", name, c.ID, d.ID)
				}
				// Local access goes straight to the bus on NUMA machines.
				if c.Domain == d && c.Vertex == d.Vertex && len(p) != 1 {
					t.Errorf("%s: local path has %d links", name, len(p))
				}
			}
		}
	}
}

func TestIGHierarchy(t *testing.T) {
	m := IG()
	// Same board: 1 hop. Cross board: >= 2 hops except the bridge pair.
	if d := m.DomainDistance(m.Domains[1], m.Domains[2]); d != 1 {
		t.Errorf("intra-board distance = %d, want 1", d)
	}
	if d := m.DomainDistance(m.Domains[0], m.Domains[4]); d != 1 {
		t.Errorf("bridge distance = %d, want 1", d)
	}
	if d := m.DomainDistance(m.Domains[1], m.Domains[5]); d != 1 {
		t.Errorf("bridge-pair distance = %d, want 1", d)
	}
	if d := m.DomainDistance(m.Domains[1], m.Domains[7]); d != 2 {
		t.Errorf("cross-board non-bridge distance = %d, want 2", d)
	}
	if m.MaxDomainDistance() != 2 {
		t.Errorf("max domain distance = %d, want 2", m.MaxDomainDistance())
	}
	// Cross-board paths traverse the interboard link.
	p := m.PathToDomain(m.Domains[7].Cores[0], m.Domains[2])
	found := false
	for _, l := range p {
		if l.Name == "interboard" {
			found = true
		}
	}
	if !found {
		t.Error("cross-board path does not use interboard link")
	}
}

func TestFlatMachinesHaveNoHierarchy(t *testing.T) {
	for _, m := range []*Machine{Zoot(), Dancer(), Saturn()} {
		if m.MaxDomainDistance() > 1 {
			t.Errorf("%s: max domain distance %d", m.Name, m.MaxDomainDistance())
		}
	}
}

func TestZootSingleBus(t *testing.T) {
	m := Zoot()
	bus := m.Domains[0].Bus
	for _, c := range m.Cores {
		p := m.PathToDomain(c, m.Domains[0])
		if p[len(p)-1] != bus {
			t.Fatal("not ending at the shared bus")
		}
		if len(p) != 2 {
			t.Fatalf("Zoot path length = %d, want 2 (fsb+bus)", len(p))
		}
	}
}

func TestSyntheticProperty(t *testing.T) {
	f := func(bs, ss, cs uint8) bool {
		boards := int(bs%3) + 1
		socks := int(ss%4) + 1
		cores := int(cs%6) + 1
		m := Synthetic(SyntheticSpec{
			Boards: boards, SocketsPerBoard: socks, CoresPerSocket: cores,
			BusBW: 1e9, LinkBW: 1e9, BoardLinkBW: 1e9,
			CacheSize: 1 << 20, CachePortBW: 1e9,
			Spec: Spec{CoreCopyBW: 1e9, KernelTrap: 1e-7, CtrlLatency: 1e-7, Flops: 1e9},
		})
		if m.NCores() != boards*socks*cores {
			return false
		}
		if len(m.Domains) != boards*socks {
			return false
		}
		// All domains mutually reachable with symmetric distances.
		for _, a := range m.Domains {
			for _, b := range m.Domains {
				if m.DomainDistance(a, b) != m.DomainDistance(b, a) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestByName(t *testing.T) {
	for _, n := range []string{"Zoot", "Dancer", "Saturn", "IG", "ig", "zoot"} {
		if ByName(n) == nil {
			t.Errorf("ByName(%q) = nil", n)
		}
	}
	if ByName("nope") != nil {
		t.Error("ByName(nope) != nil")
	}
}

func TestMinBW(t *testing.T) {
	m := IG()
	p := m.PathToDomain(m.Domains[7].Cores[0], m.Domains[2])
	if MinBW(p) != 5.0*1e9 {
		t.Errorf("MinBW = %g, want 5e9", MinBW(p))
	}
}

func TestMappings(t *testing.T) {
	m := IG()
	packed := m.PackedMapping(12)
	for i, c := range packed {
		if c != i {
			t.Fatalf("packed[%d] = %d", i, c)
		}
	}
	sc := m.ScatterMapping(12)
	seen := map[int]bool{}
	domCount := map[int]int{}
	for _, c := range sc {
		if seen[c] {
			t.Fatalf("scatter mapping reuses core %d", c)
		}
		seen[c] = true
		domCount[m.Cores[c].Domain.ID]++
	}
	for d := 0; d < 8; d++ {
		if domCount[d] == 0 {
			t.Fatalf("scatter mapping leaves domain %d empty", d)
		}
	}
	// Oversubscribed scatter falls back without duplicates.
	all := m.ScatterMapping(48)
	seen = map[int]bool{}
	for _, c := range all {
		if seen[c] {
			t.Fatalf("full scatter mapping reuses core %d", c)
		}
		seen[c] = true
	}
	if len(all) != 48 {
		t.Fatalf("full mapping has %d cores", len(all))
	}
}
