package topology

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

const sampleCluster = `
# four Dancer nodes behind one switch
cluster quad
node n0 machine=Dancer
node n1 machine=Dancer
node n2 machine=Dancer
node n3 machine=Dancer
switch sw0 bw=1.25G lat=2u
`

// builtinResolver resolves only the built-in machine names, with a
// deterministic error for anything else, so dangling-reference cases can
// assert exact error strings.
func builtinResolver(ref string) (*Machine, error) {
	if m := ByName(ref); m != nil {
		return m, nil
	}
	return nil, fmt.Errorf("unknown machine %q", ref)
}

// TestCompileCluster is the table-driven compile suite: valid clusters are
// checked against their full compiled node structs plus global-machine
// shape, and invalid clusters against exact one-line error strings.
func TestCompileCluster(t *testing.T) {
	nodes := func(specs ...string) []NodeSpec {
		ns := make([]NodeSpec, len(specs))
		for i, s := range specs {
			ns[i] = NodeSpec{Name: fmt.Sprintf("n%d", i), Machine: s}
		}
		return ns
	}
	manyNodes := func(n int, machine string) []NodeSpec {
		specs := make([]string, n)
		for i := range specs {
			specs[i] = machine
		}
		return nodes(specs...)
	}

	cases := []struct {
		name string
		cfg  ClusterConfig
		// want is the full expected compiled node slice; checked with
		// DeepEqual when set.
		want []*ClusterNode
		// global-shape expectations, checked when want is set
		wantCores    int
		wantDomains  int
		wantBoards   int
		wantSwitchAt int // -1 for none
		wantErr      string
	}{
		{
			name: "two saturn nodes, one explicit link",
			cfg: ClusterConfig{
				Name:  "pair",
				Nodes: nodes("Saturn", "Saturn"),
				Links: []LinkSpec{{A: "n0", B: "n1", Name: "ib0", BW: 3e9, Lat: 50e-6}},
			},
			want: []*ClusterNode{
				{Name: "n0", Index: 0, MachineName: "Saturn", FirstCore: 0, NCores: 16, FirstDomain: 0, NDomains: 2, FirstLink: 0, NLinks: 21, FirstGroup: 0, NGroups: 2, Gateway: 0},
				{Name: "n1", Index: 1, MachineName: "Saturn", FirstCore: 16, NCores: 16, FirstDomain: 2, NDomains: 2, FirstLink: 21, NLinks: 21, FirstGroup: 2, NGroups: 2, Gateway: 2},
			},
			wantCores:    32,
			wantDomains:  4,
			wantBoards:   2,
			wantSwitchAt: -1,
		},
		{
			name: "four dancer nodes behind a switch",
			cfg: ClusterConfig{
				Name:   "quad",
				Nodes:  nodes("Dancer", "Dancer", "Dancer", "Dancer"),
				Switch: &SwitchSpec{Name: "sw0", BW: 1.25e9, Lat: 2e-6},
			},
			want: []*ClusterNode{
				{Name: "n0", Index: 0, MachineName: "Dancer", FirstCore: 0, NCores: 8, FirstDomain: 0, NDomains: 2, FirstLink: 0, NLinks: 13, FirstGroup: 0, NGroups: 2, Gateway: 0},
				{Name: "n1", Index: 1, MachineName: "Dancer", FirstCore: 8, NCores: 8, FirstDomain: 2, NDomains: 2, FirstLink: 13, NLinks: 13, FirstGroup: 2, NGroups: 2, Gateway: 2},
				{Name: "n2", Index: 2, MachineName: "Dancer", FirstCore: 16, NCores: 8, FirstDomain: 4, NDomains: 2, FirstLink: 26, NLinks: 13, FirstGroup: 4, NGroups: 2, Gateway: 4},
				{Name: "n3", Index: 3, MachineName: "Dancer", FirstCore: 24, NCores: 8, FirstDomain: 6, NDomains: 2, FirstLink: 39, NLinks: 13, FirstGroup: 6, NGroups: 2, Gateway: 6},
			},
			wantCores:    32,
			wantDomains:  8,
			wantBoards:   4,
			wantSwitchAt: 8,
		},
		{
			name: "thirty-two zoot nodes behind a switch",
			cfg: ClusterConfig{
				Name:   "rack",
				Nodes:  manyNodes(32, "Zoot"),
				Switch: &SwitchSpec{Name: "tor", BW: 12e9, Lat: 1e-6},
			},
			want: func() []*ClusterNode {
				// Zoot: 5 vertices (northbridge first), 16 cores, 1 domain.
				ns := make([]*ClusterNode, 32)
				for i := range ns {
					ns[i] = &ClusterNode{
						Name: fmt.Sprintf("n%d", i), Index: i, MachineName: "Zoot",
						FirstCore: 16 * i, NCores: 16, FirstDomain: i, NDomains: 1,
						FirstLink: 29 * i, NLinks: 29, FirstGroup: 8 * i, NGroups: 8,
						Gateway: 5 * i,
					}
				}
				return ns
			}(),
			wantCores:    512,
			wantDomains:  32,
			wantBoards:   32,
			wantSwitchAt: 160,
		},
		{
			name: "single node needs no fabric",
			cfg:  ClusterConfig{Name: "solo", Nodes: nodes("Dancer")},
			want: []*ClusterNode{
				{Name: "n0", Index: 0, MachineName: "Dancer", FirstCore: 0, NCores: 8, FirstDomain: 0, NDomains: 2, FirstLink: 0, NLinks: 13, FirstGroup: 0, NGroups: 2, Gateway: 0},
			},
			wantCores:    8,
			wantDomains:  2,
			wantBoards:   1,
			wantSwitchAt: -1,
		},
		{
			name: "four nodes in an explicit ring",
			cfg: ClusterConfig{
				Name:  "ring",
				Nodes: nodes("Dancer", "Dancer", "Dancer", "Dancer"),
				Links: []LinkSpec{
					{A: "n0", B: "n1", Name: "e0", BW: 1.25e9, Lat: 10e-6},
					{A: "n1", B: "n2", Name: "e1", BW: 1.25e9, Lat: 10e-6},
					{A: "n2", B: "n3", Name: "e2", BW: 1.25e9, Lat: 10e-6},
					{A: "n3", B: "n0", Name: "e3", BW: 1.25e9, Lat: 10e-6},
				},
			},
			want: []*ClusterNode{
				{Name: "n0", Index: 0, MachineName: "Dancer", FirstCore: 0, NCores: 8, FirstDomain: 0, NDomains: 2, FirstLink: 0, NLinks: 13, FirstGroup: 0, NGroups: 2, Gateway: 0},
				{Name: "n1", Index: 1, MachineName: "Dancer", FirstCore: 8, NCores: 8, FirstDomain: 2, NDomains: 2, FirstLink: 13, NLinks: 13, FirstGroup: 2, NGroups: 2, Gateway: 2},
				{Name: "n2", Index: 2, MachineName: "Dancer", FirstCore: 16, NCores: 8, FirstDomain: 4, NDomains: 2, FirstLink: 26, NLinks: 13, FirstGroup: 4, NGroups: 2, Gateway: 4},
				{Name: "n3", Index: 3, MachineName: "Dancer", FirstCore: 24, NCores: 8, FirstDomain: 6, NDomains: 2, FirstLink: 39, NLinks: 13, FirstGroup: 6, NGroups: 2, Gateway: 6},
			},
			wantCores:    32,
			wantDomains:  8,
			wantBoards:   4,
			wantSwitchAt: -1,
		},
		{
			name: "switch plus extra direct link",
			cfg: ClusterConfig{
				Name:   "hybrid",
				Nodes:  nodes("Dancer", "Dancer"),
				Links:  []LinkSpec{{A: "n0", B: "n1", Name: "direct", BW: 5e9}},
				Switch: &SwitchSpec{Name: "sw", BW: 1.25e9},
			},
			want: []*ClusterNode{
				{Name: "n0", Index: 0, MachineName: "Dancer", FirstCore: 0, NCores: 8, FirstDomain: 0, NDomains: 2, FirstLink: 0, NLinks: 13, FirstGroup: 0, NGroups: 2, Gateway: 0},
				{Name: "n1", Index: 1, MachineName: "Dancer", FirstCore: 8, NCores: 8, FirstDomain: 2, NDomains: 2, FirstLink: 13, NLinks: 13, FirstGroup: 2, NGroups: 2, Gateway: 2},
			},
			wantCores:    16,
			wantDomains:  4,
			wantBoards:   2,
			wantSwitchAt: 4,
		},
		{
			name:    "missing name",
			cfg:     ClusterConfig{Nodes: nodes("Dancer")},
			wantErr: "cluster: missing name",
		},
		{
			name:    "no nodes",
			cfg:     ClusterConfig{Name: "c"},
			wantErr: "cluster c: no nodes",
		},
		{
			name: "duplicate node name",
			cfg: ClusterConfig{
				Name:  "c",
				Nodes: []NodeSpec{{Name: "n0", Machine: "Dancer"}, {Name: "n0", Machine: "Dancer"}},
			},
			wantErr: `cluster c: duplicate node "n0"`,
		},
		{
			name: "dangling machine reference",
			cfg: ClusterConfig{
				Name:  "c",
				Nodes: []NodeSpec{{Name: "n0", Machine: "Dancer"}, {Name: "n1", Machine: "NoSuchBox"}},
			},
			wantErr: `cluster c: node "n1": machine "NoSuchBox": unknown machine "NoSuchBox"`,
		},
		{
			name: "mixed machine specs",
			cfg: ClusterConfig{
				Name:   "c",
				Nodes:  nodes("Dancer", "Saturn"),
				Switch: &SwitchSpec{Name: "sw", BW: 1e9},
			},
			wantErr: `cluster c: node "n1" machine spec differs from node "n0" (all nodes must share one scalar spec)`,
		},
		{
			name: "zero-bandwidth link",
			cfg: ClusterConfig{
				Name:  "c",
				Nodes: nodes("Dancer", "Dancer"),
				Links: []LinkSpec{{A: "n0", B: "n1", Name: "eth0", BW: 0}},
			},
			wantErr: `cluster c: link "eth0": non-positive bandwidth`,
		},
		{
			name: "negative link latency",
			cfg: ClusterConfig{
				Name:  "c",
				Nodes: nodes("Dancer", "Dancer"),
				Links: []LinkSpec{{A: "n0", B: "n1", Name: "eth0", BW: 1e9, Lat: -1e-6}},
			},
			wantErr: `cluster c: link "eth0": negative latency`,
		},
		{
			name: "asymmetric duplicate link declaration",
			cfg: ClusterConfig{
				Name:  "c",
				Nodes: nodes("Dancer", "Dancer"),
				Links: []LinkSpec{
					{A: "n0", B: "n1", Name: "fwd", BW: 1e9},
					{A: "n1", B: "n0", Name: "rev", BW: 1e9},
				},
			},
			wantErr: "cluster c: duplicate link n0-n1 (fabric links are bidirectional; declare each pair once)",
		},
		{
			name: "link to unknown node",
			cfg: ClusterConfig{
				Name:  "c",
				Nodes: nodes("Dancer", "Dancer"),
				Links: []LinkSpec{{A: "n0", B: "n9", Name: "eth0", BW: 1e9}},
			},
			wantErr: `cluster c: link "eth0" references unknown node "n9"`,
		},
		{
			name: "self link",
			cfg: ClusterConfig{
				Name:  "c",
				Nodes: nodes("Dancer", "Dancer"),
				Links: []LinkSpec{
					{A: "n0", B: "n0", Name: "lo", BW: 1e9},
					{A: "n0", B: "n1", Name: "eth0", BW: 1e9},
				},
			},
			wantErr: `cluster c: link "lo" connects node "n0" to itself`,
		},
		{
			name: "unreachable node",
			cfg: ClusterConfig{
				Name:  "c",
				Nodes: nodes("Dancer", "Dancer", "Dancer"),
				Links: []LinkSpec{{A: "n0", B: "n1", Name: "eth0", BW: 1e9}},
			},
			wantErr: `cluster c: node "n2" unreachable over the fabric`,
		},
		{
			name: "zero-bandwidth switch",
			cfg: ClusterConfig{
				Name:   "c",
				Nodes:  nodes("Dancer"),
				Switch: &SwitchSpec{Name: "sw"},
			},
			wantErr: `cluster c: switch "sw": non-positive bandwidth`,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cl, err := CompileCluster(tc.cfg, builtinResolver)
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("compiled, want error %q", tc.wantErr)
				}
				if err.Error() != tc.wantErr {
					t.Fatalf("error = %q, want %q", err.Error(), tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(cl.Nodes, tc.want) {
				t.Errorf("nodes mismatch:\n got %v\nwant %v", dumpNodes(cl.Nodes), dumpNodes(tc.want))
			}
			g := cl.Global
			if g.NCores() != tc.wantCores || len(g.Domains) != tc.wantDomains || g.Boards() != tc.wantBoards {
				t.Errorf("global shape: cores=%d domains=%d boards=%d, want %d/%d/%d",
					g.NCores(), len(g.Domains), g.Boards(), tc.wantCores, tc.wantDomains, tc.wantBoards)
			}
			if cl.SwitchVertex != tc.wantSwitchAt {
				t.Errorf("switch vertex = %d, want %d", cl.SwitchVertex, tc.wantSwitchAt)
			}
			if g.Name != "cluster:"+tc.cfg.Name {
				t.Errorf("global name = %q", g.Name)
			}
			if cl.NNodes() != len(tc.want) {
				t.Errorf("NNodes = %d, want %d", cl.NNodes(), len(tc.want))
			}
			for _, n := range cl.Nodes {
				for c := n.FirstCore; c < n.FirstCore+n.NCores; c++ {
					if cl.NodeOfCore(c) != n.Index {
						t.Fatalf("NodeOfCore(%d) = %d, want %d", c, cl.NodeOfCore(c), n.Index)
					}
				}
			}
		})
	}
}

func dumpNodes(ns []*ClusterNode) string {
	var sb strings.Builder
	for _, n := range ns {
		fmt.Fprintf(&sb, "%+v ", *n)
	}
	return sb.String()
}

// Fabric latency shows up on cross-node paths and nowhere else, and the
// compiled cluster contends fabric flows through the ordinary link graph.
func TestClusterFabricLatency(t *testing.T) {
	cl, err := CompileCluster(ClusterConfig{
		Name:   "quad",
		Nodes:  []NodeSpec{{Name: "a", Machine: "Dancer"}, {Name: "b", Machine: "Dancer"}},
		Switch: &SwitchSpec{Name: "sw", BW: 1.25e9, Lat: 2e-6},
	}, builtinResolver)
	if err != nil {
		t.Fatal(err)
	}
	g := cl.Global
	if !g.HasLatency() {
		t.Fatal("cluster with switch latency should report HasLatency")
	}
	// Cross-node: gateway → switch → gateway, two hops of 2 µs.
	a, b := cl.Nodes[0], cl.Nodes[1]
	got := g.PathLatency(g.Cores[a.FirstCore].Vertex, g.Cores[b.FirstCore].Vertex)
	if got != 4e-6 {
		t.Fatalf("cross-node path latency = %g, want 4e-6", got)
	}
	// Intra-node paths carry no fabric latency.
	if lat := g.PathLatency(g.Cores[0].Vertex, g.Cores[7].Vertex); lat != 0 {
		t.Fatalf("intra-node path latency = %g, want 0", lat)
	}
	// Single-node machines keep reporting no latency at all.
	if Dancer().HasLatency() {
		t.Fatal("Dancer should have no latency")
	}
}

// Compiling the same config twice yields structurally identical clusters —
// the memo cache keys sweeps by machine fingerprint, so this must hold.
func TestCompileClusterDeterministic(t *testing.T) {
	cfg, err := ParseCluster(strings.NewReader(sampleCluster))
	if err != nil {
		t.Fatal(err)
	}
	a, err := CompileCluster(cfg, builtinResolver)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CompileCluster(cfg, builtinResolver)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Nodes, b.Nodes) {
		t.Fatal("node slices differ between compiles")
	}
	if len(a.Global.Links) != len(b.Global.Links) {
		t.Fatal("global link counts differ between compiles")
	}
	for i := range a.Global.Links {
		la, lb := a.Global.Links[i], b.Global.Links[i]
		if la.Name != lb.Name || la.BW != lb.BW || la.Lat != lb.Lat {
			t.Fatalf("link %d differs: %+v vs %+v", i, *la, *lb)
		}
	}
}

func TestParseCluster(t *testing.T) {
	cfg, err := ParseCluster(strings.NewReader(sampleCluster))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Name != "quad" || len(cfg.Nodes) != 4 || len(cfg.Links) != 0 {
		t.Fatalf("parsed shape: %+v", cfg)
	}
	if cfg.Nodes[2] != (NodeSpec{Name: "n2", Machine: "Dancer"}) {
		t.Fatalf("node 2 = %+v", cfg.Nodes[2])
	}
	if cfg.Switch == nil || cfg.Switch.BW != 1.25e9 || cfg.Switch.Lat != 2e-6 {
		t.Fatalf("switch = %+v", cfg.Switch)
	}

	bad := []struct{ in, wantErr string }{
		{"node a machine=Dancer", "cluster file: missing 'cluster <name>' line"},
		{"cluster a\ncluster b", "cluster file line 2: duplicate cluster directive"},
		{"cluster a\nnode x", "cluster file line 2: node wants: node <name> machine=<ref>"},
		{"cluster a\nnode x cpu=4", `cluster file line 2: unknown node field "cpu"`},
		{"cluster a\nlink x y l 0G", `cluster file line 2: link bw: bad rate "0"`},
		{"cluster a\nlink x y l 1G lat=-3u", `cluster file line 2: link lat: bad time "-3"`},
		{"cluster a\nswitch s bw=1G\nswitch t bw=1G", "cluster file line 3: duplicate switch directive"},
		{"cluster a\nswitch s lat=1u", "cluster file line 2: switch s needs positive bw"},
		{"cluster a\nbogus x", `cluster file line 2: unknown directive "bogus"`},
	}
	for _, tc := range bad {
		if _, err := ParseCluster(strings.NewReader(tc.in)); err == nil || err.Error() != tc.wantErr {
			t.Errorf("ParseCluster(%q) error = %v, want %q", tc.in, err, tc.wantErr)
		}
	}
}

// FuzzClusterConfig asserts the cluster parser never panics, keeps its
// errors one-line, and round-trips: a successfully parsed config renders
// to canonical text that re-parses to the same canonical text.
func FuzzClusterConfig(f *testing.F) {
	f.Add(sampleCluster)
	f.Add("cluster x\nnode a machine=Dancer\n")
	f.Add("cluster x\nnode a machine=Dancer\nnode b machine=Dancer\nlink a b l 1G lat=2u\nswitch s bw=3G lat=1u\n")
	f.Add("cluster x\nlink a b l 1.25G\n# comment\n")
	f.Add("garbage\x00\xff")
	f.Fuzz(func(t *testing.T, in string) {
		cfg, err := ParseCluster(strings.NewReader(in))
		if err != nil {
			if strings.ContainsRune(err.Error(), '\n') {
				t.Fatalf("multi-line error: %q", err)
			}
			return
		}
		r1 := cfg.Render()
		cfg2, err := ParseCluster(strings.NewReader(r1))
		if err != nil {
			t.Fatalf("re-parse of rendered config failed: %v\nrendered:\n%s", err, r1)
		}
		if r2 := cfg2.Render(); r1 != r2 {
			t.Fatalf("render not idempotent:\n%s\nvs\n%s", r1, r2)
		}
	})
}
