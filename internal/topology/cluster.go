package topology

import (
	"fmt"
)

// Cluster support: a declarative multi-node configuration (N nodes, each a
// .machine spec, joined by a modeled fabric of latency/bandwidth links
// and/or a central switch) compiled into one composite Machine. Every
// node's vertex/link/domain/cache/core structure is replicated into the
// composite graph and the node gateways are joined by fabric links, so the
// existing max-min-fair water-filling solver in internal/memsim resolves
// switch and uplink contention exactly like any intra-node bus: fabric
// links are first-class capacitated flows. Fabric latency rides on the
// links (Link.Lat) and is charged by the shared-memory transport's control
// path for cross-node messages.

// NodeSpec declares one cluster node: a name and the machine model it runs
// (a built-in name like "Dancer" or a .machine file reference, resolved by
// the MachineResolver given to CompileCluster).
type NodeSpec struct {
	Name    string
	Machine string
}

// LinkSpec declares one bidirectional point-to-point fabric link between
// two nodes. BW is bytes/second; Lat is the per-traversal wire latency in
// seconds. Each unordered node pair may be declared at most once.
type LinkSpec struct {
	A, B string
	Name string
	BW   float64
	Lat  float64
}

// SwitchSpec declares a central fabric switch: every node gets an uplink
// of the given port bandwidth to one switch vertex, so concurrent
// cross-node transfers contend on the shared uplinks under the
// water-filling solver (incast congests the receiver's uplink, exactly as
// on a real top-of-rack switch). Lat is the per-hop latency, charged once
// per uplink traversal.
type SwitchSpec struct {
	Name string
	BW   float64
	Lat  float64
}

// ClusterConfig is the declarative form of a cluster, as parsed from a
// .cluster file (ParseCluster) or assembled directly in tests.
type ClusterConfig struct {
	Name   string
	Nodes  []NodeSpec
	Links  []LinkSpec
	Switch *SwitchSpec
}

// ClusterNode is one compiled node: its slice of the composite machine.
// Cores, domains, and boards are packed node-major, so node i's cores are
// the contiguous range [FirstCore, FirstCore+NCores).
type ClusterNode struct {
	Name        string
	Index       int
	MachineName string
	FirstCore   int
	NCores      int
	FirstDomain int
	NDomains    int
	// FirstLink/NLinks is this node's contiguous slice of Global.Links:
	// its interconnect edges, memory buses, cache ports, and core engine
	// links, in replication order. Fabric links (switch uplinks and
	// point-to-point links) come after every node's range. The intra-cell
	// partitioner keys per-node memsim partitions off these ranges.
	FirstLink int
	NLinks    int
	// FirstGroup/NGroups is the node's contiguous slice of Global.Groups
	// (cache groups), used to scope cache-coherence scans per node.
	FirstGroup int
	NGroups    int
	// Gateway is the composite-machine vertex where this node attaches to
	// the fabric (the node's first memory domain vertex).
	Gateway int
}

// Cluster is a validated, immutable compiled cluster topology.
type Cluster struct {
	Name   string
	Config ClusterConfig
	Nodes  []*ClusterNode
	// Global is the composite machine spanning every node plus the fabric;
	// it runs through memsim/mpi like any single machine.
	Global *Machine
	// SwitchVertex is the switch's vertex in Global, or -1 without one.
	SwitchVertex int

	nodeOfCore []int
}

// NNodes returns the number of nodes.
func (c *Cluster) NNodes() int { return len(c.Nodes) }

// Lookahead returns the conservative-window lookahead for intra-cell
// parallel execution of this cluster: the minimum simulated latency of
// any interaction that crosses a partition boundary. Partitions split
// member ranks (per node) from the leader/fabric domain, and the only
// cross-partition traffic is intra-node member↔leader control messages,
// whose latency is Spec.CtrlLatency plus a non-negative path latency —
// so CtrlLatency itself is the exact floor (fabric link latencies only
// add on top for inter-node hops, which stay inside the fabric
// partition). A zero control latency admits no conservative window and
// is rejected with a one-line error.
func (c *Cluster) Lookahead() (float64, error) {
	if la := c.Global.Spec.CtrlLatency; la > 0 {
		return la, nil
	}
	return 0, fmt.Errorf("cluster %s: zero ctrl latency leaves no lookahead for intra-cell parallelism", c.Name)
}

// NodeOfCore returns the index of the node owning the given global core.
func (c *Cluster) NodeOfCore(core int) int { return c.nodeOfCore[core] }

// MachineResolver resolves a NodeSpec.Machine reference to a machine
// model. CompileCluster uses LoadMachine (built-in names, then files) when
// given nil; tests inject synthetic machines.
type MachineResolver func(ref string) (*Machine, error)

// CompileCluster validates a cluster configuration and compiles it into an
// immutable Cluster with one composite Machine. Validation failures return
// one-line errors naming the offending node or link.
//
// Constraints enforced here: at least one node; unique node names; every
// machine reference resolvable; identical scalar Specs across nodes (the
// composite machine carries a single Spec); positive link bandwidths;
// non-negative latencies; link endpoints that exist and differ; each node
// pair linked at most once; and a fabric (links plus switch) that reaches
// every node.
func CompileCluster(cfg ClusterConfig, resolve MachineResolver) (*Cluster, error) {
	if resolve == nil {
		resolve = LoadMachine
	}
	if cfg.Name == "" {
		return nil, fmt.Errorf("cluster: missing name")
	}
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("cluster %s: no nodes", cfg.Name)
	}
	index := make(map[string]int, len(cfg.Nodes))
	machines := make([]*Machine, len(cfg.Nodes))
	for i, ns := range cfg.Nodes {
		if _, dup := index[ns.Name]; dup {
			return nil, fmt.Errorf("cluster %s: duplicate node %q", cfg.Name, ns.Name)
		}
		index[ns.Name] = i
		m, err := resolve(ns.Machine)
		if err != nil {
			return nil, fmt.Errorf("cluster %s: node %q: machine %q: %v", cfg.Name, ns.Name, ns.Machine, err)
		}
		machines[i] = m
		if m.Spec != machines[0].Spec {
			return nil, fmt.Errorf("cluster %s: node %q machine spec differs from node %q (all nodes must share one scalar spec)",
				cfg.Name, ns.Name, cfg.Nodes[0].Name)
		}
	}

	type pair [2]int
	linked := make(map[pair]bool, len(cfg.Links))
	for _, l := range cfg.Links {
		a, ok := index[l.A]
		if !ok {
			return nil, fmt.Errorf("cluster %s: link %q references unknown node %q", cfg.Name, l.Name, l.A)
		}
		b, ok := index[l.B]
		if !ok {
			return nil, fmt.Errorf("cluster %s: link %q references unknown node %q", cfg.Name, l.Name, l.B)
		}
		if a == b {
			return nil, fmt.Errorf("cluster %s: link %q connects node %q to itself", cfg.Name, l.Name, l.A)
		}
		if l.BW <= 0 {
			return nil, fmt.Errorf("cluster %s: link %q: non-positive bandwidth", cfg.Name, l.Name)
		}
		if l.Lat < 0 {
			return nil, fmt.Errorf("cluster %s: link %q: negative latency", cfg.Name, l.Name)
		}
		p := pair{min(a, b), max(a, b)}
		if linked[p] {
			return nil, fmt.Errorf("cluster %s: duplicate link %s-%s (fabric links are bidirectional; declare each pair once)",
				cfg.Name, cfg.Nodes[p[0]].Name, cfg.Nodes[p[1]].Name)
		}
		linked[p] = true
	}
	if sw := cfg.Switch; sw != nil {
		if sw.BW <= 0 {
			return nil, fmt.Errorf("cluster %s: switch %q: non-positive bandwidth", cfg.Name, sw.Name)
		}
		if sw.Lat < 0 {
			return nil, fmt.Errorf("cluster %s: switch %q: negative latency", cfg.Name, sw.Name)
		}
	}

	// The fabric must reach every node before Build routes the composite
	// graph (an unreachable vertex would panic deep in route()).
	if cfg.Switch == nil {
		reach := make([]bool, len(cfg.Nodes))
		reach[0] = true
		queue := []int{0}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for p := range linked {
				for _, v := range []int{p[0], p[1]} {
					if (p[0] == u || p[1] == u) && !reach[v] {
						reach[v] = true
						queue = append(queue, v)
					}
				}
			}
		}
		for i, ok := range reach {
			if !ok {
				return nil, fmt.Errorf("cluster %s: node %q unreachable over the fabric", cfg.Name, cfg.Nodes[i].Name)
			}
		}
	}

	// Replicate every node machine into one composite builder: vertices,
	// interconnect links (node-prefixed names), domains (boards offset per
	// node so Boards() stays meaningful), cache groups, cores.
	b := NewBuilder("cluster:"+cfg.Name, machines[0].Spec)
	cl := &Cluster{Name: cfg.Name, Config: cfg, SwitchVertex: -1}
	gw := make([]int, len(cfg.Nodes))
	boardBase := 0
	nCores, nDomains := 0, 0
	for i, ns := range cfg.Nodes {
		m := machines[i]
		firstLink, firstGroup := len(b.m.Links), len(b.m.Groups)
		vmap := make([]int, m.NVerts())
		for v := range vmap {
			vmap[v] = b.Vertex(fmt.Sprintf("%s/v%d", ns.Name, v))
		}
		for _, e := range m.Edges() {
			b.ConnectLat(vmap[e.U], vmap[e.V], ns.Name+"/"+e.Link.Name, e.Link.BW, e.Link.Lat)
		}
		doms := make([]*MemDomain, len(m.Domains))
		for di, d := range m.Domains {
			doms[di] = b.DomainOnBoard(vmap[d.Vertex], d.Bus.BW, boardBase+d.Board)
		}
		grps := make([]*CacheGroup, len(m.Groups))
		for gi, g := range m.Groups {
			grps[gi] = b.Group(vmap[g.Vertex], g.Size, g.Port.BW)
		}
		for _, c := range m.Cores {
			var g *CacheGroup
			if c.Group != nil {
				g = grps[c.Group.ID]
			}
			b.Core(vmap[c.Vertex], doms[c.Domain.ID], g)
			cl.nodeOfCore = append(cl.nodeOfCore, i)
		}
		gw[i] = vmap[m.Domains[0].Vertex]
		cl.Nodes = append(cl.Nodes, &ClusterNode{
			Name:        ns.Name,
			Index:       i,
			MachineName: m.Name,
			FirstCore:   nCores,
			NCores:      m.NCores(),
			FirstDomain: nDomains,
			NDomains:    len(m.Domains),
			FirstLink:   firstLink,
			NLinks:      len(b.m.Links) - firstLink,
			FirstGroup:  firstGroup,
			NGroups:     len(b.m.Groups) - firstGroup,
			Gateway:     gw[i],
		})
		boardBase += m.Boards()
		nCores += m.NCores()
		nDomains += len(m.Domains)
	}
	if sw := cfg.Switch; sw != nil {
		sv := b.Vertex("switch/" + sw.Name)
		cl.SwitchVertex = sv
		for i, ns := range cfg.Nodes {
			b.ConnectLat(gw[i], sv, sw.Name+"/"+ns.Name, sw.BW, sw.Lat)
		}
	}
	for _, l := range cfg.Links {
		b.ConnectLat(gw[index[l.A]], gw[index[l.B]], "fabric/"+l.Name, l.BW, l.Lat)
	}
	cl.Global = b.Build()
	return cl, nil
}
