package topology

import (
	"strings"
	"testing"
)

const sampleMachine = `
# two-socket NUMA box
machine twobox
spec corebw=4.5G trap=100n setup=500n pin=40n ctrl=300n flops=5.5G
domain n0 bus=16G cores=4 cache=8Mi port=30G
domain n1 bus=16G cores=4 cache=8Mi port=30G
link n0 n1 qpi 11G
`

func TestParseMachine(t *testing.T) {
	m, err := ParseMachine(strings.NewReader(sampleMachine))
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "twobox" || m.NCores() != 8 || len(m.Domains) != 2 || len(m.Groups) != 2 {
		t.Fatalf("shape: %s cores=%d domains=%d groups=%d", m.Name, m.NCores(), len(m.Domains), len(m.Groups))
	}
	close := func(a, b float64) bool { d := a - b; return d < 1e-12*b && d > -1e-12*b }
	if !close(m.Spec.CoreCopyBW, 4.5e9) || !close(m.Spec.KernelTrap, 100e-9) || !close(m.Spec.CopySetup, 500e-9) {
		t.Fatalf("spec: %+v", m.Spec)
	}
	if m.Domains[0].Bus.BW != 16e9 {
		t.Fatalf("bus bw = %g", m.Domains[0].Bus.BW)
	}
	if m.Groups[1].Size != 8<<20 || m.Groups[1].Port.BW != 30e9 {
		t.Fatalf("group: size=%d port=%g", m.Groups[1].Size, m.Groups[1].Port.BW)
	}
	if m.DomainDistance(m.Domains[0], m.Domains[1]) != 1 {
		t.Fatal("domains not connected")
	}
	p := m.PathToDomain(m.Domains[0].Cores[0], m.Domains[1])
	if len(p) != 2 || p[0].Name != "qpi" {
		t.Fatalf("cross path = %v", p)
	}
}

// A parsed machine is equivalent to the built-in Dancer when given the
// same parameters — same broadcast timing.
func TestParsedMachineMatchesBuiltin(t *testing.T) {
	m, err := ParseMachine(strings.NewReader(sampleMachine))
	if err != nil {
		t.Fatal(err)
	}
	d := Dancer()
	if len(m.Links) != len(d.Links) {
		t.Fatalf("link counts differ: %d vs %d", len(m.Links), len(d.Links))
	}
	for i := range m.Links {
		if m.Links[i].BW != d.Links[i].BW {
			t.Fatalf("link %d bw %g vs %g", i, m.Links[i].BW, d.Links[i].BW)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"no-machine", "domain a bus=1G cores=1 cache=1Mi port=1G"},
		{"no-corebw", "machine x\ndomain a bus=1G cores=1 cache=1Mi port=1G"},
		{"bad-directive", "machine x\nspec corebw=1G\nfoo bar"},
		{"bad-kv", "machine x\nspec corebw"},
		{"bad-rate", "machine x\nspec corebw=abc"},
		{"dup-domain", "machine x\nspec corebw=1G\ndomain a bus=1G cores=1 cache=1Mi port=1G\ndomain a bus=1G cores=1 cache=1Mi port=1G"},
		{"unknown-link-dom", "machine x\nspec corebw=1G\ndomain a bus=1G cores=1 cache=1Mi port=1G\nlink a b l 1G"},
		{"disconnected", "machine x\nspec corebw=1G\ndomain a bus=1G cores=1 cache=1Mi port=1G\ndomain b bus=1G cores=1 cache=1Mi port=1G"},
		{"zero-cores", "machine x\nspec corebw=1G\ndomain a bus=1G cores=0 cache=1Mi port=1G"},
		{"bad-size", "machine x\nspec corebw=1G\ndomain a bus=1G cores=1 cache=oops port=1G"},
		{"link-arity", "machine x\nspec corebw=1G\ndomain a bus=1G cores=1 cache=1Mi port=1G\nlink a"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ParseMachine(strings.NewReader(c.in)); err == nil {
				t.Fatalf("no error for %q", c.in)
			}
		})
	}
}

func TestParseUnits(t *testing.T) {
	if v, _ := parseRate("2.5K"); v != 2500 {
		t.Errorf("2.5K = %g", v)
	}
	if v, _ := parseTime("3u"); v != 3e-6 {
		t.Errorf("3u = %g", v)
	}
	if v, _ := parseTime("2m"); v != 2e-3 {
		t.Errorf("2m = %g", v)
	}
	if v, _ := parseBytes("2Ki"); v != 2048 {
		t.Errorf("2Ki = %d", v)
	}
	if v, _ := parseBytes("1Gi"); v != 1<<30 {
		t.Errorf("1Gi = %d", v)
	}
}
