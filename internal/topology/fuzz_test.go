package topology

import (
	"strings"
	"testing"
)

// FuzzParseMachine asserts the parser never panics and either returns a
// valid machine or an error, for arbitrary inputs.
func FuzzParseMachine(f *testing.F) {
	f.Add(sampleMachine)
	f.Add("machine x\nspec corebw=1G\ndomain a bus=1G cores=1 cache=1Mi port=1G")
	f.Add("machine x\nspec corebw=1G trap=1u\n# comment\ndomain a bus=2G cores=2 cache=4Ki port=9G\ndomain b bus=2G cores=2 cache=4Ki port=9G\nlink a b l 3G")
	f.Add("garbage\x00\xff")
	f.Fuzz(func(t *testing.T, in string) {
		m, err := ParseMachine(strings.NewReader(in))
		if err == nil && m != nil {
			// A successful parse must yield a routable machine.
			if m.NCores() < 1 {
				t.Fatal("parsed machine with no cores")
			}
			for _, a := range m.Domains {
				for _, b := range m.Domains {
					_ = m.DomainDistance(a, b) // must not panic
				}
			}
		}
	})
}
