package topology

import "fmt"

// This file defines the four experimental platforms of the paper's §VI-A.
// Link bandwidths and scalar costs are calibrated from the named hardware
// (memory generation and channel count, FSB vs QPI vs HyperTransport, cache
// sizes); they are not measurements of the authors' testbed, so absolute
// simulated times are indicative while relative behaviour (who contends on
// what) follows the hardware structure.

const (
	kb = 1 << 10
	mb = 1 << 20
	gb = 1e9 // bandwidth unit: 1 GB/s
)

// Zoot models the 16-core SMP: 4 sockets, quad-core Intel Xeon Tigerton
// E7340 at 2.40 GHz, 4 MB L2 shared per core pair, and a single SMP memory
// controller in the north-bridge connecting all sockets to shared memory.
// It is UMA: one memory domain, with per-socket front-side buses feeding a
// single DRAM bus — the classic "memory wall" layout of §I.
func Zoot() *Machine {
	b := NewBuilder("Zoot", Spec{
		CoreCopyBW:  2.2 * gb,
		KernelTrap:  100e-9,
		CopySetup:   500e-9,
		PinPerPage:  40e-9,
		CtrlLatency: 500e-9,
		Flops:       4.8e9,
	})
	nb := b.Vertex("northbridge")
	dom := b.Domain(nb, 6.4*gb) // single shared DRAM bus
	for s := 0; s < 4; s++ {
		sv := b.Vertex("socket")
		b.Connect(sv, nb, "fsb", 3.0*gb)
		for pair := 0; pair < 2; pair++ {
			g := b.Group(sv, 4*mb, 18*gb) // 4 MB L2 shared per pair
			for c := 0; c < 2; c++ {
				b.Core(sv, dom, g)
			}
		}
	}
	return b.Build()
}

// Dancer models the 8-core NUMA node: 2 sockets, quad-core Intel Xeon
// Nehalem-EP E5520 at 2.27 GHz, 8 MB L3 and 2 GB of memory per socket,
// QPI between the sockets. Hyper-threading disabled.
func Dancer() *Machine {
	b := NewBuilder("Dancer", Spec{
		CoreCopyBW:  4.5 * gb,
		KernelTrap:  100e-9,
		CopySetup:   500e-9,
		PinPerPage:  40e-9,
		CtrlLatency: 300e-9,
		Flops:       5.5e9,
	})
	v := []int{b.Vertex("numa0"), b.Vertex("numa1")}
	b.Connect(v[0], v[1], "qpi", 11*gb)
	for s := 0; s < 2; s++ {
		dom := b.Domain(v[s], 16*gb) // triple-channel DDR3
		g := b.Group(v[s], 8*mb, 30*gb)
		for c := 0; c < 4; c++ {
			b.Core(v[s], dom, g)
		}
	}
	return b.Build()
}

// Saturn models the 16-core NUMA node: 2 sockets, octo-core Intel Xeon
// Nehalem-EX X7550 at 2.00 GHz, 18 MB L3 and 32 GB of memory per socket.
// Hyper-threading enabled but unused.
func Saturn() *Machine {
	b := NewBuilder("Saturn", Spec{
		CoreCopyBW:  4.0 * gb,
		KernelTrap:  100e-9,
		CopySetup:   500e-9,
		PinPerPage:  40e-9,
		CtrlLatency: 300e-9,
		Flops:       5.0e9,
	})
	v := []int{b.Vertex("numa0"), b.Vertex("numa1")}
	b.Connect(v[0], v[1], "qpi", 12*gb)
	for s := 0; s < 2; s++ {
		dom := b.Domain(v[s], 20*gb)
		g := b.Group(v[s], 18*mb, 32*gb)
		for c := 0; c < 8; c++ {
			b.Core(v[s], dom, g)
		}
	}
	return b.Build()
}

// IG models the 48-core many-core NUMA node: 8 sockets, six-core AMD
// Opteron 8439 SE at 2.8 GHz, 5 MB of L3 and 16 GB of memory per NUMA node.
// Sockets sit four to a board (HyperTransport-connected, complete graph);
// the two boards are joined by a low-performance interlink (§VI-A), which
// gives the machine a genuinely hierarchical interconnect and makes it the
// paper's stress platform for topology-aware collectives.
func IG() *Machine {
	b := NewBuilder("IG", Spec{
		CoreCopyBW:  3.0 * gb,
		KernelTrap:  100e-9,
		CopySetup:   500e-9,
		PinPerPage:  40e-9,
		CtrlLatency: 400e-9,
		Flops:       5.6e9,
	})
	var v [8]int
	for n := 0; n < 8; n++ {
		v[n] = b.Vertex("numa")
	}
	// Complete HT graph within each board.
	for board := 0; board < 2; board++ {
		base := board * 4
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				b.Connect(v[base+i], v[base+j], "ht", 6*gb)
			}
		}
	}
	// Low-performance inter-board interlink: each socket reaches the
	// other board through two bridge links slightly slower than on-board
	// HT, and most cross-board routes take two hops (transiting on-board
	// links). Cross-board communication therefore pays in hops and in
	// shared capacity — the "low performance interlink" of §VI-A that
	// makes IG the paper's topology-stress platform — while staying wide
	// enough that a handful of full-rate streams (the hierarchical
	// broadcast's one-per-NUMA-node transfers) do not bottleneck on it.
	for i := 0; i < 4; i++ {
		b.Connect(v[i], v[i+4], "interboard", 5.0*gb)
		b.Connect(v[i], v[4+(i+1)%4], "interboard", 5.0*gb)
	}
	for n := 0; n < 8; n++ {
		dom := b.DomainOnBoard(v[n], 10*gb, n/4) // dual-channel DDR2-800 class
		g := b.Group(v[n], 5*mb, 24*gb)
		for c := 0; c < 6; c++ {
			b.Core(v[n], dom, g)
		}
	}
	return b.Build()
}

// Machines returns the four evaluation platforms keyed by name.
func Machines() map[string]*Machine {
	return map[string]*Machine{
		"Zoot":   Zoot(),
		"Dancer": Dancer(),
		"Saturn": Saturn(),
		"IG":     IG(),
	}
}

// ByName returns the named evaluation platform, or nil.
func ByName(name string) *Machine {
	switch name {
	case "Zoot", "zoot":
		return Zoot()
	case "Dancer", "dancer":
		return Dancer()
	case "Saturn", "saturn":
		return Saturn()
	case "IG", "ig":
		return IG()
	case "MC128", "mc128":
		return ManyCore(128)
	case "MC512", "mc512":
		return ManyCore(512)
	}
	return nil
}

// ManyCore models the post-paper "many-core" target of the ROADMAP: a
// 128- or 512-core NUMA node in the IG mold (eight-core sockets behind a
// hierarchical interconnect) with bandwidths scaled to a modern DDR4/IF
// class part. The paper's largest platform is the 48-core IG; these
// machines are the scale points the engine and sweep layers are gated on
// (cmd/simbench scale cells, `make scale-smoke`).
func ManyCore(cores int) *Machine {
	spec := Spec{
		CoreCopyBW:  8 * gb,
		KernelTrap:  100e-9,
		CopySetup:   500e-9,
		PinPerPage:  40e-9,
		CtrlLatency: 250e-9,
		Flops:       16e9,
	}
	switch cores {
	case 128:
		return Synthetic(SyntheticSpec{
			Name: "MC128", Boards: 2, SocketsPerBoard: 8, CoresPerSocket: 8,
			BusBW: 35 * gb, LinkBW: 18 * gb, BoardLinkBW: 14 * gb,
			CacheSize: 32 * mb, CachePortBW: 60 * gb,
			Spec: spec,
		})
	case 512:
		return Synthetic(SyntheticSpec{
			Name: "MC512", Boards: 4, SocketsPerBoard: 16, CoresPerSocket: 8,
			BusBW: 35 * gb, LinkBW: 18 * gb, BoardLinkBW: 14 * gb,
			CacheSize: 32 * mb, CachePortBW: 60 * gb,
			Spec: spec,
		})
	}
	panic(fmt.Sprintf("topology: ManyCore(%d): supported core counts are 128 and 512", cores))
}

// SyntheticSpec parameterizes Synthetic machines for tests and what-if
// studies.
type SyntheticSpec struct {
	Name            string // machine name (default "synthetic")
	Boards          int
	SocketsPerBoard int
	CoresPerSocket  int
	BusBW           float64 // per-domain DRAM bus
	LinkBW          float64 // intra-board socket interconnect
	BoardLinkBW     float64 // inter-board link (ignored if Boards == 1)
	CacheSize       int64
	CachePortBW     float64
	Spec            Spec
}

// Synthetic builds a regular machine: Boards × SocketsPerBoard sockets, one
// memory domain and cache group per socket, complete interconnect within a
// board, and a chain of board links between board heads.
func Synthetic(s SyntheticSpec) *Machine {
	if s.Boards < 1 || s.SocketsPerBoard < 1 || s.CoresPerSocket < 1 {
		panic("topology: Synthetic with non-positive shape")
	}
	name := s.Name
	if name == "" {
		name = "synthetic"
	}
	b := NewBuilder(name, s.Spec)
	verts := make([]int, 0, s.Boards*s.SocketsPerBoard)
	for board := 0; board < s.Boards; board++ {
		base := len(verts)
		for i := 0; i < s.SocketsPerBoard; i++ {
			verts = append(verts, b.Vertex("numa"))
		}
		for i := 0; i < s.SocketsPerBoard; i++ {
			for j := i + 1; j < s.SocketsPerBoard; j++ {
				b.Connect(verts[base+i], verts[base+j], "link", s.LinkBW)
			}
		}
		if board > 0 {
			b.Connect(verts[(board-1)*s.SocketsPerBoard], verts[base], "boardlink", s.BoardLinkBW)
		}
	}
	for i, v := range verts {
		dom := b.DomainOnBoard(v, s.BusBW, i/s.SocketsPerBoard)
		g := b.Group(v, s.CacheSize, s.CachePortBW)
		for c := 0; c < s.CoresPerSocket; c++ {
			b.Core(v, dom, g)
		}
	}
	return b.Build()
}
