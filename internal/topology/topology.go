// Package topology models intra-node hardware: cores, shared caches, NUMA
// memory domains, and the link graph connecting them (memory buses, FSB,
// QPI, HyperTransport, inter-board interlinks).
//
// The model is the one the paper's collective algorithms consume through
// hwloc: which cores share a cache, which cores share a NUMA memory bank,
// and how far apart two cores are. It additionally carries the quantities
// the memory simulator needs: link capacities in bytes/second and routed
// paths between cores and memory.
//
// A machine is a graph of vertices connected by capacitated links. Cores
// attach to vertices; each memory domain's DRAM hangs off its vertex
// through a bus link; each cache group has a local access link. Routing is
// shortest-path by hop count with deterministic tie-breaking.
package topology

import (
	"fmt"
	"math"
)

// Link is a capacitated resource (a bus, interconnect hop, cache port, core
// copy engine, or DMA engine). Index is dense within a Machine so users can
// keep per-link state in slices.
type Link struct {
	Index int
	Name  string
	// BW is the link capacity in bytes per second.
	BW float64
	// Lat is the per-traversal latency of the link in seconds. Intra-node
	// links have zero latency (the paper's model charges control latency
	// separately); cluster fabric links carry real wire latency.
	Lat float64
}

// Core is a processing unit. Every core has a private copy engine link
// modelling the bandwidth a single core can move by itself (load/store
// streams): one core can rarely saturate a memory bus, which is exactly the
// effect the paper's receiver-parallel collectives exploit.
type Core struct {
	ID     int
	Vertex int
	Domain *MemDomain
	Group  *CacheGroup
	Engine *Link
}

// MemDomain is a NUMA memory domain: a set of cores with a local DRAM bus.
// Board groups domains that share a physical board (or blade); machines
// with a flat interconnect put every domain on board 0.
type MemDomain struct {
	ID     int
	Vertex int
	Board  int
	Bus    *Link
	Cores  []*Core
}

// CacheGroup is a set of cores sharing a last-level cache.
type CacheGroup struct {
	ID     int
	Vertex int
	Cores  []*Core
	// Size is the aggregate shared cache capacity in bytes.
	Size int64
	// Port is the access link used when a transfer is served from this
	// cache instead of DRAM.
	Port *Link
}

// Spec carries per-machine scalar parameters.
type Spec struct {
	// CoreCopyBW is the copy bandwidth of a single core (bytes/s).
	CoreCopyBW float64
	// KernelTrap is the cost of entering the kernel for one KNEM ioctl
	// (the ~100 ns trap the paper cites in §V-A).
	KernelTrap float64
	// CopySetup is the in-kernel per-copy setup cost beyond the bare
	// trap: region lookup, iovec walk, copy bookkeeping. It is what makes
	// kernel-assisted copies unprofitable below ~16 KiB.
	CopySetup float64
	// PinPerPage is the cost of pinning one 4 KiB page when declaring a
	// region (get_user_pages); registration cost therefore scales with
	// region size, which is why re-registering the same buffer for every
	// peer or fragment hurts (§III-A).
	PinPerPage float64
	// CtrlLatency is the latency of a small out-of-band control message
	// through the shared-memory transport.
	CtrlLatency float64
	// Flops is the sustained per-core floating/integer op rate, used by
	// applications to charge compute time.
	Flops float64
	// DMABw, when > 0, is the bandwidth of a per-domain I/OAT-style DMA
	// copy engine.
	DMABw float64
}

// Machine is a complete hardware model.
type Machine struct {
	Name    string
	Spec    Spec
	Links   []*Link
	Cores   []*Core
	Domains []*MemDomain
	Groups  []*CacheGroup
	DMA     []*Link // per-domain DMA engine links (nil entries if disabled)

	nVerts int
	adj    [][]edge // adjacency by vertex
	paths  [][][]*Link
	hops   [][]int
	hasLat bool        // any interconnect link with nonzero latency
	lats   [][]float64 // per vertex pair: summed link latency along the route
}

type edge struct {
	to   int
	link *Link
}

// Builder constructs machines.
type Builder struct {
	m      *Machine
	vnames []string
}

// NewBuilder starts a machine description.
func NewBuilder(name string, spec Spec) *Builder {
	return &Builder{m: &Machine{Name: name, Spec: spec}}
}

// Vertex adds a routing vertex and returns its id.
func (b *Builder) Vertex(name string) int {
	b.vnames = append(b.vnames, name)
	b.m.nVerts++
	return b.m.nVerts - 1
}

func (b *Builder) newLink(name string, bw float64) *Link {
	if bw <= 0 {
		panic(fmt.Sprintf("topology: link %s with non-positive bandwidth", name))
	}
	l := &Link{Index: len(b.m.Links), Name: name, BW: bw}
	b.m.Links = append(b.m.Links, l)
	return l
}

// Connect adds a bidirectional interconnect link between two vertices.
func (b *Builder) Connect(u, v int, name string, bw float64) *Link {
	return b.ConnectLat(u, v, name, bw, 0)
}

// ConnectLat adds a bidirectional interconnect link with a per-traversal
// latency (cluster fabric links; intra-node links use Connect).
func (b *Builder) ConnectLat(u, v int, name string, bw, lat float64) *Link {
	l := b.newLink(name, bw)
	l.Lat = lat
	for len(b.m.adj) < b.m.nVerts {
		b.m.adj = append(b.m.adj, nil)
	}
	b.m.adj[u] = append(b.m.adj[u], edge{to: v, link: l})
	b.m.adj[v] = append(b.m.adj[v], edge{to: u, link: l})
	return l
}

// Domain adds a memory domain whose DRAM attaches at vertex through a bus
// of the given bandwidth, on board 0. Use DomainOnBoard for multi-board
// machines.
func (b *Builder) Domain(vertex int, busBW float64) *MemDomain {
	return b.DomainOnBoard(vertex, busBW, 0)
}

// DomainOnBoard adds a memory domain on the given board.
func (b *Builder) DomainOnBoard(vertex int, busBW float64, board int) *MemDomain {
	d := &MemDomain{ID: len(b.m.Domains), Vertex: vertex, Board: board}
	d.Bus = b.newLink(fmt.Sprintf("mem%d", d.ID), busBW)
	b.m.Domains = append(b.m.Domains, d)
	b.m.DMA = append(b.m.DMA, nil)
	if b.m.Spec.DMABw > 0 {
		b.m.DMA[d.ID] = b.newLink(fmt.Sprintf("dma%d", d.ID), b.m.Spec.DMABw)
	}
	return d
}

// Group adds a cache group at vertex with the given capacity and port
// bandwidth.
func (b *Builder) Group(vertex int, size int64, portBW float64) *CacheGroup {
	g := &CacheGroup{ID: len(b.m.Groups), Vertex: vertex, Size: size}
	g.Port = b.newLink(fmt.Sprintf("cache%d", g.ID), portBW)
	b.m.Groups = append(b.m.Groups, g)
	return g
}

// Core adds a core at vertex, belonging to the given domain and cache group.
func (b *Builder) Core(vertex int, d *MemDomain, g *CacheGroup) *Core {
	c := &Core{ID: len(b.m.Cores), Vertex: vertex, Domain: d, Group: g}
	c.Engine = b.newLink(fmt.Sprintf("core%d", c.ID), b.m.Spec.CoreCopyBW)
	b.m.Cores = append(b.m.Cores, c)
	d.Cores = append(d.Cores, c)
	if g != nil {
		g.Cores = append(g.Cores, c)
	}
	return c
}

// Build finalizes the machine: routes all vertex pairs and validates the
// model. It panics on malformed descriptions (disconnected graphs, domains
// without cores).
func (b *Builder) Build() *Machine {
	m := b.m
	for len(m.adj) < m.nVerts {
		m.adj = append(m.adj, nil)
	}
	if len(m.Cores) == 0 {
		panic("topology: machine with no cores")
	}
	for _, d := range m.Domains {
		if len(d.Cores) == 0 {
			panic(fmt.Sprintf("topology: domain %d has no cores", d.ID))
		}
	}
	m.route()
	return m
}

// route computes shortest paths between all vertex pairs (BFS per source,
// deterministic neighbor order).
func (m *Machine) route() {
	n := m.nVerts
	m.paths = make([][][]*Link, n)
	m.hops = make([][]int, n)
	for s := 0; s < n; s++ {
		prevEdge := make([]edge, n)
		dist := make([]int, n)
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, e := range m.adj[u] {
				if dist[e.to] == -1 {
					dist[e.to] = dist[u] + 1
					prevEdge[e.to] = edge{to: u, link: e.link}
					queue = append(queue, e.to)
				}
			}
		}
		m.paths[s] = make([][]*Link, n)
		m.hops[s] = dist
		for t := 0; t < n; t++ {
			if dist[t] < 0 {
				panic(fmt.Sprintf("topology: %s: vertex %d unreachable from %d", m.Name, t, s))
			}
			var rev []*Link
			for v := t; v != s; v = prevEdge[v].to {
				rev = append(rev, prevEdge[v].link)
			}
			for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
				rev[i], rev[j] = rev[j], rev[i]
			}
			m.paths[s][t] = rev
		}
	}
	for _, l := range m.Links {
		if l.Lat != 0 {
			m.hasLat = true
			break
		}
	}
	if m.hasLat {
		m.lats = make([][]float64, n)
		for s := 0; s < n; s++ {
			m.lats[s] = make([]float64, n)
			for t := 0; t < n; t++ {
				var sum float64
				for _, l := range m.paths[s][t] {
					sum += l.Lat
				}
				m.lats[s][t] = sum
			}
		}
	}
}

// HasLatency reports whether any interconnect link carries a nonzero
// latency (true only for cluster machines; the fast path of the transports
// skips latency lookups entirely when false).
func (m *Machine) HasLatency() bool { return m.hasLat }

// PathLatency returns the summed link latency along the route between two
// vertices (zero on machines without latencied links).
func (m *Machine) PathLatency(u, v int) float64 {
	if !m.hasLat {
		return 0
	}
	return m.lats[u][v]
}

// NVerts returns the number of routing vertices.
func (m *Machine) NVerts() int { return m.nVerts }

// Edge is one interconnect connection as declared by Connect/ConnectLat,
// recoverable from a built machine (CompileCluster replicates node graphs
// through it).
type Edge struct {
	U, V int
	Link *Link
}

// Edges returns every interconnect link with its endpoints, in a
// deterministic order (ascending lower endpoint, then declaration order).
// Bus, cache-port, core-engine, and DMA links have no endpoints and are not
// included.
func (m *Machine) Edges() []Edge {
	seen := make(map[*Link]bool)
	var out []Edge
	for u := 0; u < m.nVerts; u++ {
		for _, e := range m.adj[u] {
			if seen[e.link] {
				continue
			}
			seen[e.link] = true
			out = append(out, Edge{U: u, V: e.to, Link: e.link})
		}
	}
	return out
}

// VertexPath returns the interconnect links between two vertices.
func (m *Machine) VertexPath(u, v int) []*Link { return m.paths[u][v] }

// Hops returns the hop count between two vertices.
func (m *Machine) Hops(u, v int) int { return m.hops[u][v] }

// PathToDomain returns the links a core traverses to reach a domain's DRAM:
// the interconnect hops plus the domain's memory bus. The core's own copy
// engine is not included.
func (m *Machine) PathToDomain(c *Core, d *MemDomain) []*Link {
	p := m.paths[c.Vertex][d.Vertex]
	out := make([]*Link, 0, len(p)+1)
	out = append(out, p...)
	out = append(out, d.Bus)
	return out
}

// PathToGroup returns the links a core traverses to read from a cache
// group: the interconnect hops plus the group's port.
func (m *Machine) PathToGroup(c *Core, g *CacheGroup) []*Link {
	p := m.paths[c.Vertex][g.Vertex]
	out := make([]*Link, 0, len(p)+1)
	out = append(out, p...)
	out = append(out, g.Port)
	return out
}

// CoreDistance returns the hop distance between two cores' vertices. Cores
// in the same domain are distance 0 from each other in NUMA terms even if
// on different cache groups.
func (m *Machine) CoreDistance(a, b *Core) int { return m.hops[a.Vertex][b.Vertex] }

// DomainDistance returns the hop distance between two domains.
func (m *Machine) DomainDistance(a, b *MemDomain) int { return m.hops[a.Vertex][b.Vertex] }

// NCores returns the number of cores.
func (m *Machine) NCores() int { return len(m.Cores) }

// Boards returns the number of distinct boards.
func (m *Machine) Boards() int {
	max := 0
	for _, d := range m.Domains {
		if d.Board > max {
			max = d.Board
		}
	}
	return max + 1
}

// MaxDomainDistance returns the largest hop distance between any two
// domains; > 1 indicates a hierarchical interconnect (e.g. IG's two boards).
func (m *Machine) MaxDomainDistance() int {
	max := 0
	for _, a := range m.Domains {
		for _, b := range m.Domains {
			if h := m.hops[a.Vertex][b.Vertex]; h > max {
				max = h
			}
		}
	}
	return max
}

// MinBW returns the smallest capacity along a path; useful for bounds in
// tests.
func MinBW(path []*Link) float64 {
	min := math.Inf(1)
	for _, l := range path {
		if l.BW < min {
			min = l.BW
		}
	}
	return min
}

// PackedMapping returns the identity rank-to-core mapping: ranks fill
// domains in order (the dense placement MPI launchers default to).
func (m *Machine) PackedMapping(np int) []int {
	out := make([]int, np)
	for i := range out {
		out[i] = i
	}
	return out
}

// ScatterMapping distributes np ranks round-robin over the machine's
// domains, spreading memory pressure across all controllers.
func (m *Machine) ScatterMapping(np int) []int {
	out := make([]int, 0, np)
	next := make([]int, len(m.Domains))
	for len(out) < np {
		d := len(out) % len(m.Domains)
		if next[d] >= len(m.Domains[d].Cores) {
			// This domain is full; fall back to packed for the rest.
			for c := 0; len(out) < np && c < m.NCores(); c++ {
				used := false
				for _, id := range out {
					if id == c {
						used = true
					}
				}
				if !used {
					out = append(out, c)
				}
			}
			return out
		}
		out = append(out, m.Domains[d].Cores[next[d]].ID)
		next[d]++
	}
	return out
}
