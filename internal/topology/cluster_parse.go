package topology

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// ParseCluster reads a cluster description. The format is line-oriented;
// '#' starts a comment. Example:
//
//	cluster quad
//	node n0 machine=Dancer
//	node n1 machine=Dancer
//	node n2 machine=Dancer
//	node n3 machine=Dancer
//	switch sw0 bw=1.25G lat=2u
//	link n0 n1 eth0 1.25G lat=50u
//
// Rates take decimal suffixes (K/M/G); latencies take n/u/m. A machine
// reference is a built-in name or a .machine file path (resolved relative
// to the cluster file by LoadCluster). Parsing is purely syntactic —
// semantic validation (unknown nodes, duplicate links, connectivity) is
// CompileCluster's job, so a parsed config can be rendered and re-parsed
// even when it would not compile.
func ParseCluster(rd io.Reader) (ClusterConfig, error) {
	var cfg ClusterConfig
	sc := bufio.NewScanner(rd)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		fail := func(format string, args ...any) error {
			return fmt.Errorf("cluster file line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}
		switch fields[0] {
		case "cluster":
			if len(fields) != 2 {
				return ClusterConfig{}, fail("cluster wants one name")
			}
			if cfg.Name != "" {
				return ClusterConfig{}, fail("duplicate cluster directive")
			}
			cfg.Name = fields[1]
		case "node":
			if len(fields) != 3 {
				return ClusterConfig{}, fail("node wants: node <name> machine=<ref>")
			}
			k, v, err := splitKV(fields[2])
			if err != nil {
				return ClusterConfig{}, fail("%v", err)
			}
			if k != "machine" {
				return ClusterConfig{}, fail("unknown node field %q", k)
			}
			cfg.Nodes = append(cfg.Nodes, NodeSpec{Name: fields[1], Machine: v})
		case "link":
			if len(fields) != 5 && len(fields) != 6 {
				return ClusterConfig{}, fail("link wants: link <nodeA> <nodeB> <name> <bw> [lat=<time>]")
			}
			l := LinkSpec{A: fields[1], B: fields[2], Name: fields[3]}
			var err error
			if l.BW, err = parseRate(fields[4]); err != nil {
				return ClusterConfig{}, fail("link bw: %v", err)
			}
			if len(fields) == 6 {
				k, v, err := splitKV(fields[5])
				if err != nil {
					return ClusterConfig{}, fail("%v", err)
				}
				if k != "lat" {
					return ClusterConfig{}, fail("unknown link field %q", k)
				}
				if l.Lat, err = parseTime(v); err != nil {
					return ClusterConfig{}, fail("link lat: %v", err)
				}
			}
			cfg.Links = append(cfg.Links, l)
		case "switch":
			if cfg.Switch != nil {
				return ClusterConfig{}, fail("duplicate switch directive")
			}
			if len(fields) < 3 {
				return ClusterConfig{}, fail("switch wants: switch <name> bw=<rate> [lat=<time>]")
			}
			sw := SwitchSpec{Name: fields[1]}
			for _, kv := range fields[2:] {
				k, v, err := splitKV(kv)
				if err != nil {
					return ClusterConfig{}, fail("%v", err)
				}
				switch k {
				case "bw":
					sw.BW, err = parseRate(v)
				case "lat":
					sw.Lat, err = parseTime(v)
				default:
					return ClusterConfig{}, fail("unknown switch field %q", k)
				}
				if err != nil {
					return ClusterConfig{}, fail("%s: %v", k, err)
				}
			}
			if sw.BW <= 0 {
				return ClusterConfig{}, fail("switch %s needs positive bw", sw.Name)
			}
			cfg.Switch = &sw
		default:
			return ClusterConfig{}, fail("unknown directive %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return ClusterConfig{}, err
	}
	if cfg.Name == "" {
		return ClusterConfig{}, fmt.Errorf("cluster file: missing 'cluster <name>' line")
	}
	return cfg, nil
}

// Render writes the configuration back out in canonical form: one
// directive per line, nodes then switch then links in declaration order,
// rates and latencies as plain %g numbers (parseRate and parseTime accept
// scientific notation). Render∘Parse is idempotent, which the cluster
// fuzzer exploits: parsing a rendered config yields an identical config.
func (cfg ClusterConfig) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cluster %s\n", cfg.Name)
	for _, n := range cfg.Nodes {
		fmt.Fprintf(&sb, "node %s machine=%s\n", n.Name, n.Machine)
	}
	if sw := cfg.Switch; sw != nil {
		fmt.Fprintf(&sb, "switch %s bw=%g", sw.Name, sw.BW)
		if sw.Lat != 0 {
			fmt.Fprintf(&sb, " lat=%g", sw.Lat)
		}
		sb.WriteByte('\n')
	}
	for _, l := range cfg.Links {
		fmt.Fprintf(&sb, "link %s %s %s %g", l.A, l.B, l.Name, l.BW)
		if l.Lat != 0 {
			fmt.Fprintf(&sb, " lat=%g", l.Lat)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// LoadCluster parses and compiles a .cluster file. Node machine references
// resolve as built-in names first, then as file paths relative to the
// cluster file's directory.
func LoadCluster(path string) (*Cluster, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("topology: cluster file: %w", err)
	}
	defer f.Close()
	cfg, err := ParseCluster(f)
	if err != nil {
		return nil, err
	}
	dir := filepath.Dir(path)
	return CompileCluster(cfg, func(ref string) (*Machine, error) {
		if m := ByName(ref); m != nil {
			return m, nil
		}
		p := ref
		if !filepath.IsAbs(p) {
			p = filepath.Join(dir, p)
		}
		return LoadMachine(p)
	})
}
