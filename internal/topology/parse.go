package topology

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ParseMachine reads a machine description, letting users model their own
// hardware without writing Go. The format is line-oriented; '#' starts a
// comment. Example:
//
//	machine mybox
//	spec corebw=3G trap=100n setup=500n pin=40n ctrl=400n flops=5.6G
//	domain n0 bus=10G cores=6 cache=5Mi port=24G
//	domain n1 bus=10G cores=6 cache=5Mi port=24G
//	link n0 n1 ht 6G
//
// Bandwidths and rates take decimal suffixes (K=1e3, M=1e6, G=1e9);
// times take n/u/m (nano/micro/milli seconds); cache sizes take binary
// suffixes (Ki, Mi, Gi). Every domain doubles as one cache group. Links
// connect domains by name.
func ParseMachine(rd io.Reader) (*Machine, error) {
	sc := bufio.NewScanner(rd)
	var name string
	var spec Spec
	type domSpec struct {
		name  string
		bus   float64
		cores int
		cache int64
		port  float64
		board int
	}
	var doms []domSpec
	type linkSpec struct {
		a, b, name string
		bw         float64
	}
	var links []linkSpec

	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		fail := func(format string, args ...any) error {
			return fmt.Errorf("machine file line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}
		switch fields[0] {
		case "machine":
			if len(fields) != 2 {
				return nil, fail("machine wants one name")
			}
			name = fields[1]
		case "spec":
			for _, kv := range fields[1:] {
				k, v, err := splitKV(kv)
				if err != nil {
					return nil, fail("%v", err)
				}
				switch k {
				case "corebw":
					spec.CoreCopyBW, err = parseRate(v)
				case "trap":
					spec.KernelTrap, err = parseTime(v)
				case "setup":
					spec.CopySetup, err = parseTime(v)
				case "pin":
					spec.PinPerPage, err = parseTime(v)
				case "ctrl":
					spec.CtrlLatency, err = parseTime(v)
				case "flops":
					spec.Flops, err = parseRate(v)
				case "dma":
					spec.DMABw, err = parseRate(v)
				default:
					return nil, fail("unknown spec field %q", k)
				}
				if err != nil {
					return nil, fail("%s: %v", k, err)
				}
			}
		case "domain":
			if len(fields) < 2 {
				return nil, fail("domain wants a name")
			}
			d := domSpec{name: fields[1]}
			for _, kv := range fields[2:] {
				k, v, err := splitKV(kv)
				if err != nil {
					return nil, fail("%v", err)
				}
				switch k {
				case "bus":
					d.bus, err = parseRate(v)
				case "cores":
					d.cores, err = strconv.Atoi(v)
				case "cache":
					d.cache, err = parseBytes(v)
				case "port":
					d.port, err = parseRate(v)
				case "board":
					d.board, err = strconv.Atoi(v)
				default:
					return nil, fail("unknown domain field %q", k)
				}
				if err != nil {
					return nil, fail("%s: %v", k, err)
				}
			}
			if d.bus <= 0 || d.cores <= 0 || d.cache <= 0 || d.port <= 0 {
				return nil, fail("domain %s needs positive bus, cores, cache, port", d.name)
			}
			doms = append(doms, d)
		case "link":
			if len(fields) != 5 {
				return nil, fail("link wants: link <domA> <domB> <name> <bw>")
			}
			bw, err := parseRate(fields[4])
			if err != nil {
				return nil, fail("link bw: %v", err)
			}
			links = append(links, linkSpec{a: fields[1], b: fields[2], name: fields[3], bw: bw})
		default:
			return nil, fail("unknown directive %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if name == "" {
		return nil, fmt.Errorf("machine file: missing 'machine <name>' line")
	}
	if spec.CoreCopyBW <= 0 {
		return nil, fmt.Errorf("machine file: spec corebw is required")
	}
	if len(doms) == 0 {
		return nil, fmt.Errorf("machine file: at least one domain is required")
	}

	b := NewBuilder(name, spec)
	verts := make(map[string]int, len(doms))
	for _, d := range doms {
		if _, dup := verts[d.name]; dup {
			return nil, fmt.Errorf("machine file: duplicate domain %q", d.name)
		}
		verts[d.name] = b.Vertex(d.name)
	}
	for _, l := range links {
		va, ok := verts[l.a]
		if !ok {
			return nil, fmt.Errorf("machine file: link references unknown domain %q", l.a)
		}
		vb, ok := verts[l.b]
		if !ok {
			return nil, fmt.Errorf("machine file: link references unknown domain %q", l.b)
		}
		b.Connect(va, vb, l.name, l.bw)
	}
	for _, d := range doms {
		dom := b.DomainOnBoard(verts[d.name], d.bus, d.board)
		g := b.Group(verts[d.name], d.cache, d.port)
		for i := 0; i < d.cores; i++ {
			b.Core(verts[d.name], dom, g)
		}
	}
	if len(doms) > 1 && len(links) == 0 {
		return nil, fmt.Errorf("machine file: %d domains but no links", len(doms))
	}
	return b.Build(), nil
}

func splitKV(s string) (string, string, error) {
	k, v, ok := strings.Cut(s, "=")
	if !ok || k == "" || v == "" {
		return "", "", fmt.Errorf("malformed field %q (want key=value)", s)
	}
	return k, v, nil
}

// parseRate parses decimal-suffixed rates: 3G = 3e9 (per second).
func parseRate(s string) (float64, error) {
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "G"):
		mult, s = 1e9, s[:len(s)-1]
	case strings.HasSuffix(s, "M"):
		mult, s = 1e6, s[:len(s)-1]
	case strings.HasSuffix(s, "K"):
		mult, s = 1e3, s[:len(s)-1]
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("bad rate %q", s)
	}
	return v * mult, nil
}

// parseTime parses n/u/m-suffixed durations in seconds: 100n = 100e-9.
func parseTime(s string) (float64, error) {
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "n"):
		mult, s = 1e-9, s[:len(s)-1]
	case strings.HasSuffix(s, "u"):
		mult, s = 1e-6, s[:len(s)-1]
	case strings.HasSuffix(s, "m"):
		mult, s = 1e-3, s[:len(s)-1]
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad time %q", s)
	}
	return v * mult, nil
}

// parseBytes parses binary-suffixed sizes: 5Mi = 5 << 20.
func parseBytes(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "Gi"):
		mult, s = 1<<30, s[:len(s)-2]
	case strings.HasSuffix(s, "Mi"):
		mult, s = 1<<20, s[:len(s)-2]
	case strings.HasSuffix(s, "Ki"):
		mult, s = 1<<10, s[:len(s)-2]
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return v * mult, nil
}

// LoadMachine resolves a machine by built-in name (Zoot, Dancer, Saturn,
// IG) or, failing that, by reading a machine-description file at the given
// path.
func LoadMachine(nameOrPath string) (*Machine, error) {
	if m := ByName(nameOrPath); m != nil {
		return m, nil
	}
	f, err := os.Open(nameOrPath)
	if err != nil {
		return nil, fmt.Errorf("topology: %q is not a built-in machine and not a readable file: %w", nameOrPath, err)
	}
	defer f.Close()
	return ParseMachine(f)
}
