package serve

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// hist is a lock-free log2-bucketed latency histogram: bucket i counts
// observations in [2^(i-1), 2^i) microseconds (bucket 0 is everything
// under 1 µs, the top bucket is open-ended). Thirty-four buckets cover
// sub-microsecond cache hits through multi-hour outliers, observation is
// one atomic add on the serving hot path, and quantiles are read out of
// the bucket counts — conservative upper bounds, which is the right
// direction for a latency SLO.
const histBuckets = 34

type hist struct {
	counts [histBuckets]atomic.Int64
	total  atomic.Int64
	sumNs  atomic.Int64
}

func histBucket(d time.Duration) int {
	us := uint64(d / time.Microsecond)
	b := bits.Len64(us) // 0 for <1us, 1 for 1us, 2 for 2-3us, ...
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// upperBoundSeconds is bucket b's inclusive upper latency bound.
func upperBoundSeconds(b int) float64 {
	return float64(uint64(1)<<uint(b)) * 1e-6
}

func (h *hist) observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[histBucket(d)].Add(1)
	h.total.Add(1)
	h.sumNs.Add(int64(d))
}

// quantile returns an upper bound on the q-quantile in seconds (0 when
// nothing was observed).
func (h *hist) quantile(q float64) float64 {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			return upperBoundSeconds(i)
		}
	}
	return upperBoundSeconds(len(h.counts) - 1)
}

// HistBucket is one non-empty histogram bucket in a stats response.
type HistBucket struct {
	// LeSeconds is the bucket's inclusive upper latency bound.
	LeSeconds float64 `json:"le_seconds"`
	Count     int64   `json:"count"`
}

// HistStats is the rendered histogram: counts, mean, and quantile upper
// bounds, with only the populated buckets listed (in latency order).
type HistStats struct {
	Count       int64        `json:"count"`
	MeanSeconds float64      `json:"mean_seconds"`
	P50Seconds  float64      `json:"p50_seconds"`
	P99Seconds  float64      `json:"p99_seconds"`
	Buckets     []HistBucket `json:"buckets,omitempty"`
}

func (h *hist) stats() HistStats {
	s := HistStats{
		Count:      h.total.Load(),
		P50Seconds: h.quantile(0.50),
		P99Seconds: h.quantile(0.99),
	}
	if s.Count > 0 {
		s.MeanSeconds = float64(h.sumNs.Load()) / 1e9 / float64(s.Count)
	}
	for i := range h.counts {
		if n := h.counts[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, HistBucket{LeSeconds: upperBoundSeconds(i), Count: n})
		}
	}
	return s
}
