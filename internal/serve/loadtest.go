package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// LoadOptions drives one load-test run against a live simd server.
type LoadOptions struct {
	// BaseURL of the server, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Request is the batch posted by every client on every repetition.
	Request BatchRequest
	// Concurrency is the number of concurrent clients (default 4).
	Concurrency int
	// Repetitions per client (default 4).
	Repetitions int
	// Client overrides the HTTP client (default http.DefaultClient).
	Client *http.Client
}

// LoadReport summarises a load-test run. Quantiles are exact (computed
// from every request's wall time, not bucketed).
type LoadReport struct {
	Requests    int     `json:"requests"`
	Cells       int     `json:"cells"` // cells served across all requests
	MeanSeconds float64 `json:"mean_seconds"`
	P50Seconds  float64 `json:"p50_seconds"`
	P99Seconds  float64 `json:"p99_seconds"`
	// HitRate is the server-side cache hit rate over this run's window:
	// the fraction of served cells answered without a fresh simulation —
	// from the LRU, the persistent memo layer, or a singleflight wait.
	HitRate float64 `json:"hit_rate"`
	// Body is the byte-identical response body every request returned.
	Body []byte `json:"-"`
}

// Load posts the same batch from Concurrency clients × Repetitions each
// and fails unless every response is byte-identical — the service's
// determinism contract, checked under real concurrency. The report's
// latency quantiles are client-observed request times; the hit rate is
// read from /v1/stats deltas around the run.
func Load(ctx context.Context, opts LoadOptions) (*LoadReport, error) {
	if opts.Concurrency <= 0 {
		opts.Concurrency = 4
	}
	if opts.Repetitions <= 0 {
		opts.Repetitions = 4
	}
	client := opts.Client
	if client == nil {
		client = http.DefaultClient
	}
	body, err := json.Marshal(&opts.Request)
	if err != nil {
		return nil, err
	}

	before, err := fetchStats(ctx, client, opts.BaseURL)
	if err != nil {
		return nil, err
	}

	total := opts.Concurrency * opts.Repetitions
	durs := make([]time.Duration, total)
	bodies := make([][]byte, total)
	errs := make([]error, total)
	var wg sync.WaitGroup
	for c := 0; c < opts.Concurrency; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < opts.Repetitions; r++ {
				i := c*opts.Repetitions + r
				t0 := time.Now()
				bodies[i], errs[i] = postCells(ctx, client, opts.BaseURL, body)
				durs[i] = time.Since(t0)
			}
		}(c)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("request %d: %v", i, err)
		}
	}
	for i := 1; i < total; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			return nil, fmt.Errorf("determinism violation: response %d differs from response 0:\n%s\nvs\n%s",
				i, bodies[i], bodies[0])
		}
	}

	after, err := fetchStats(ctx, client, opts.BaseURL)
	if err != nil {
		return nil, err
	}

	sort.Slice(durs, func(a, b int) bool { return durs[a] < durs[b] })
	var sum time.Duration
	for _, d := range durs {
		sum += d
	}
	rep := &LoadReport{
		Requests:    total,
		Cells:       total * len(opts.Request.Cells),
		MeanSeconds: (sum / time.Duration(total)).Seconds(),
		P50Seconds:  quantileDur(durs, 0.50).Seconds(),
		P99Seconds:  quantileDur(durs, 0.99).Seconds(),
		Body:        bodies[0],
	}
	served := after.CellLatency.Count - before.CellLatency.Count
	simmed := after.SimLatency.Count - before.SimLatency.Count
	memoHits := after.Cache.SimHits - before.Cache.SimHits
	if served > 0 {
		rep.HitRate = float64(served-simmed+memoHits) / float64(served)
	}
	return rep, nil
}

// quantileDur returns the q-quantile of a sorted duration slice using the
// nearest-rank method.
func quantileDur(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted)) + 0.5)
	if i < 1 {
		i = 1
	}
	if i > len(sorted) {
		i = len(sorted)
	}
	return sorted[i-1]
}

func postCells(ctx context.Context, client *http.Client, base string, body []byte) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/cells", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(b))
	}
	return b, nil
}

func fetchStats(ctx context.Context, client *http.Client, base string) (*StatsResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("stats: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(b))
	}
	st := &StatsResponse{}
	if err := json.NewDecoder(resp.Body).Decode(st); err != nil {
		return nil, fmt.Errorf("stats: %v", err)
	}
	return st, nil
}
