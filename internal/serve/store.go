package serve

import (
	"container/list"
	"hash/maphash"
	"sort"
	"sync"
	"sync/atomic"
)

// store is the serving tier's bounded in-memory cell cache: a sharded LRU
// keyed by the same content-addressed cell key the bench memo layer uses
// (bench.CellKey), holding only the served payload (the cell's seconds).
// It sits between the HTTP handlers and the runner — singleflight → LRU →
// disk shards → runner — so a long-running daemon's hot set answers in
// nanoseconds without the process growing with every cell it has ever
// served: eviction drops the serving copy while the bench layer's
// persistent shards still make the next access a disk hit, not a
// re-simulation. Sharding (one mutex per shard, keys spread by hash)
// keeps concurrent batch requests from serializing on one lock.
type store struct {
	shards []storeShard
	seed   maphash.Seed
	hits   atomic.Int64
	misses atomic.Int64
}

type storeShard struct {
	mu  sync.Mutex
	cap int
	m   map[string]*list.Element
	l   list.List // front = most recently used
}

type storeEnt struct {
	key     string
	seconds float64
}

// storeShards is the fixed shard count; capacity is divided across shards.
const storeShards = 16

// newStore builds a store bounded to roughly capacity entries (at least
// one per shard).
func newStore(capacity int) *store {
	if capacity < storeShards {
		capacity = storeShards
	}
	s := &store{shards: make([]storeShard, storeShards), seed: maphash.MakeSeed()}
	per := (capacity + storeShards - 1) / storeShards
	for i := range s.shards {
		s.shards[i].cap = per
		s.shards[i].m = make(map[string]*list.Element)
	}
	return s
}

func (s *store) shard(key string) *storeShard {
	return &s.shards[maphash.String(s.seed, key)%storeShards]
}

// get returns the cached seconds for key, refreshing its recency.
func (s *store) get(key string) (float64, bool) {
	sh := s.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.m[key]; ok {
		sh.l.MoveToFront(el)
		s.hits.Add(1)
		return el.Value.(*storeEnt).seconds, true
	}
	s.misses.Add(1)
	return 0, false
}

// put records a freshly computed cell, evicting the shard's least recently
// used entry when the shard is full.
func (s *store) put(key string, seconds float64) {
	sh := s.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.m[key]; ok {
		el.Value.(*storeEnt).seconds = seconds
		sh.l.MoveToFront(el)
		return
	}
	if sh.l.Len() >= sh.cap {
		back := sh.l.Back()
		delete(sh.m, back.Value.(*storeEnt).key)
		sh.l.Remove(back)
	}
	sh.m[key] = sh.l.PushFront(&storeEnt{key: key, seconds: seconds})
}

// len returns the resident entry count across shards.
func (s *store) len() int {
	n := 0
	for i := range s.shards {
		s.shards[i].mu.Lock()
		n += s.shards[i].l.Len()
		s.shards[i].mu.Unlock()
	}
	return n
}

// counts returns the hit/miss counters.
func (s *store) counts() (hits, misses int64) {
	return s.hits.Load(), s.misses.Load()
}

// snapshot returns every resident entry, sorted by key so dumps of the
// same hot set are byte-identical regardless of shard hashing or recency.
func (s *store) snapshot() []WarmEntry {
	var out []WarmEntry
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for el := sh.l.Front(); el != nil; el = el.Next() {
			e := el.Value.(*storeEnt)
			out = append(out, WarmEntry{Key: e.key, Seconds: e.seconds})
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Key < out[b].Key })
	return out
}
