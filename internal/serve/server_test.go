package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/topology"
	"repro/internal/tune"
)

// testBatch is a small mixed batch: cheap cells, two components, defaults
// exercised (np/iters omitted on one cell).
func testBatch() BatchRequest {
	return BatchRequest{
		Machine: "Zoot",
		Cells: []CellSpec{
			{Comp: "KNEM-Coll", Op: "bcast", Size: 4096, NP: 4, Iters: 1},
			{Comp: "Tuned-SM", Op: "bcast", Size: 4096, NP: 4, Iters: 1},
			{Comp: "KNEM-Coll", Op: "gather", Size: 1024, NP: 4, Iters: 1},
			{Comp: "KNEM-Coll", Op: "barrier", Size: 0, NP: 4, Iters: 1},
		},
	}
}

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// TestBatchDeterministicAcrossConcurrency is the tentpole contract: the
// same batch posted from many concurrent clients, twice over, yields
// byte-identical bodies every time, and the second round is served
// entirely from cache (no cell reaches the simulation runner).
func TestBatchDeterministicAcrossConcurrency(t *testing.T) {
	if err := bench.EnableCache(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	defer bench.DisableCache()
	s, ts := newTestServer(t, Options{})

	ctx := context.Background()
	first, err := Load(ctx, LoadOptions{BaseURL: ts.URL, Request: testBatch(), Concurrency: 6, Repetitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	simsAfterFirst := s.histSim.total.Load()
	if simsAfterFirst < int64(len(testBatch().Cells)) {
		t.Fatalf("first round simulated %d cells, want >= %d", simsAfterFirst, len(testBatch().Cells))
	}

	second, err := Load(ctx, LoadOptions{BaseURL: ts.URL, Request: testBatch(), Concurrency: 6, Repetitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Body, second.Body) {
		t.Fatalf("cached round not byte-identical to cold round:\n%s\nvs\n%s", second.Body, first.Body)
	}
	if second.HitRate != 1.0 {
		t.Fatalf("second round hit rate %v, want 1.0", second.HitRate)
	}
	if got := s.histSim.total.Load(); got != simsAfterFirst {
		t.Fatalf("second round reached the runner: %d sims, want %d", got, simsAfterFirst)
	}

	// Response echoes effective defaults and carries no cache annotations.
	var resp BatchResponse
	if err := json.Unmarshal(first.Body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Cells != 4 || len(resp.Results) != 4 {
		t.Fatalf("batch shape: %d cells, %d results", resp.Cells, len(resp.Results))
	}
	for i, r := range resp.Results {
		if r.NP != 4 || r.Iters != 1 || r.Seconds <= 0 {
			t.Fatalf("result %d not echoed/filled: %+v", i, r)
		}
	}
	if bytes.Contains(first.Body, []byte("cached")) || bytes.Contains(first.Body, []byte("hit")) {
		t.Fatalf("response body leaks cache state: %s", first.Body)
	}
}

// TestBatchMatchesMeasure pins the serving path to the library: every
// served seconds value equals a direct bench.Measure of the same cell.
func TestBatchMatchesMeasure(t *testing.T) {
	bench.DisableCache()
	_, ts := newTestServer(t, Options{})
	body, err := postCells(context.Background(), http.DefaultClient, ts.URL, mustJSON(t, testBatch()))
	if err != nil {
		t.Fatal(err)
	}
	var resp BatchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	m := topology.ByName("Zoot")
	comps := compsByName()
	for i, c := range testBatch().Cells {
		want := bench.MustMeasure(bench.Config{
			Machine: m, NP: c.NP, Comp: comps[strings.ToLower(c.Comp)],
			Op: bench.Op(c.Op), Size: c.Size, Iters: c.Iters,
		})
		if resp.Results[i].Seconds != want.Seconds {
			t.Fatalf("cell %d: served %v, measured %v", i, resp.Results[i].Seconds, want.Seconds)
		}
	}
}

// TestSweepStreams checks POST /v1/sweep: one NDJSON line per cell (any
// order, deterministic contents matching the batch endpoint) plus a final
// done line.
func TestSweepStreams(t *testing.T) {
	bench.DisableCache()
	_, ts := newTestServer(t, Options{})
	req := testBatch()

	batchBody, err := postCells(context.Background(), http.DefaultClient, ts.URL, mustJSON(t, req))
	if err != nil {
		t.Fatal(err)
	}
	var batch BatchResponse
	if err := json.Unmarshal(batchBody, &batch); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(mustJSON(t, req)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("sweep content type %q", ct)
	}
	dec := json.NewDecoder(resp.Body)
	got := map[int]CellResult{}
	var done struct {
		Done *int `json:"done"`
	}
	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			t.Fatalf("stream decode: %v", err)
		}
		if json.Unmarshal(raw, &done) == nil && done.Done != nil {
			break
		}
		var line SweepLine
		if err := json.Unmarshal(raw, &line); err != nil {
			t.Fatal(err)
		}
		got[line.I] = line.CellResult
	}
	if *done.Done != len(req.Cells) || len(got) != len(req.Cells) {
		t.Fatalf("sweep streamed %d lines, done=%d, want %d", len(got), *done.Done, len(req.Cells))
	}
	for i, want := range batch.Results {
		if got[i] != want {
			t.Fatalf("sweep line %d = %+v, batch says %+v", i, got[i], want)
		}
	}
}

// TestDecisionsEndpoint exercises GET /v1/decisions against an installed
// table: tuned machines answer with the resolved cell, untuned ones with
// found=false.
func TestDecisionsEndpoint(t *testing.T) {
	m := topology.ByName("IG")
	table := &tune.Table{Version: tune.TableVersion, Machine: m.Name, Fingerprint: tune.Fingerprint(m)}
	table.Cells = append(table.Cells, tune.Cell{
		Op: tune.OpBcast, NP: 48, Size: 64 << 10,
		Choice: tune.Choice{Comp: "KNEM-Coll", Seg: 32 << 10}, Seconds: 1e-4,
	})
	table.Sort()
	set := tune.NewSet()
	set.Add(table)
	_, ts := newTestServer(t, Options{Decisions: set})

	var resp DecisionResponse
	getJSON(t, ts.URL+"/v1/decisions?machine=IG&op=bcast&np=48&size=65536", &resp)
	if !resp.Found || resp.Cell == nil || resp.Cell.Choice.Comp != "KNEM-Coll" {
		t.Fatalf("tuned lookup: %+v", resp)
	}
	resp = DecisionResponse{}
	getJSON(t, ts.URL+"/v1/decisions?machine=Zoot&op=bcast&size=65536", &resp)
	if resp.Found || resp.Cell != nil {
		t.Fatalf("untuned machine claims a decision: %+v", resp)
	}
	if resp.NP != topology.ByName("Zoot").NCores() {
		t.Fatalf("np default = %d, want core count", resp.NP)
	}
}

// TestValidation: every malformed request is a one-line 400 naming the
// problem; nothing reaches the runner.
func TestValidation(t *testing.T) {
	s, ts := newTestServer(t, Options{MaxCells: 8})
	cases := []struct {
		name string
		body string
		want string
	}{
		{"empty body", `{}`, "no machine"},
		{"unknown machine", `{"machine":"Cray-1","cells":[{"comp":"KNEM-Coll","op":"bcast","size":1}]}`, `unknown machine "Cray-1"`},
		{"no cells", `{"machine":"Zoot","cells":[]}`, "no cells"},
		{"unknown comp", `{"machine":"Zoot","cells":[{"comp":"FTL","op":"bcast","size":1}]}`, `cell 0: unknown component "FTL"`},
		{"unknown op", `{"machine":"Zoot","cells":[{"comp":"KNEM-Coll","op":"warp","size":1}]}`, `cell 0: unknown op "warp"`},
		{"negative size", `{"machine":"Zoot","cells":[{"comp":"KNEM-Coll","op":"bcast","size":-1}]}`, "cell 0: negative size"},
		{"np too big", `{"machine":"Zoot","cells":[{"comp":"KNEM-Coll","op":"bcast","size":1,"np":512}]}`, "cell 0: np 512 out of range"},
		{"bad root", `{"machine":"Zoot","cells":[{"comp":"KNEM-Coll","op":"bcast","size":1,"np":4,"root":4}]}`, "cell 0: root 4 out of range"},
		{"unknown field", `{"machine":"Zoot","threads":9}`, "bad request body"},
		{"not json", `hello`, "bad request body"},
		{"too many cells", fmt.Sprintf(`{"machine":"Zoot","cells":[%s]}`,
			strings.TrimSuffix(strings.Repeat(`{"comp":"KNEM-Coll","op":"bcast","size":1},`, 9), ",")),
			"9 cells exceeds the per-request limit of 8"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/cells", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			msg := strings.TrimSpace(buf.String())
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, body %q", resp.StatusCode, msg)
			}
			if !strings.Contains(msg, tc.want) {
				t.Fatalf("error %q does not mention %q", msg, tc.want)
			}
			if strings.Contains(msg, "\n") {
				t.Fatalf("error is not one line: %q", msg)
			}
		})
	}
	if s.histSim.total.Load() != 0 {
		t.Fatalf("invalid requests reached the runner")
	}
}

// TestStatsEndpoint sanity-checks the counters after known traffic.
func TestStatsEndpoint(t *testing.T) {
	bench.DisableCache()
	_, ts := newTestServer(t, Options{LRUSize: 64})
	body := mustJSON(t, testBatch())
	if _, err := postCells(context.Background(), http.DefaultClient, ts.URL, body); err != nil {
		t.Fatal(err)
	}
	if _, err := postCells(context.Background(), http.DefaultClient, ts.URL, body); err != nil {
		t.Fatal(err)
	}
	var st StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	n := int64(len(testBatch().Cells))
	if st.Batches != 2 || st.CellLatency.Count != 2*n {
		t.Fatalf("batches=%d cells=%d, want 2 and %d", st.Batches, st.CellLatency.Count, 2*n)
	}
	// Second batch is LRU-served even with the bench memo disabled.
	if st.SimLatency.Count != n || st.Cache.LRUHits != n {
		t.Fatalf("sims=%d lru_hits=%d, want %d each", st.SimLatency.Count, st.Cache.LRUHits, n)
	}
	if st.Cache.HitRate != 0.5 {
		t.Fatalf("hit rate %v, want 0.5", st.Cache.HitRate)
	}
	if st.UptimeSeconds <= 0 || st.InFlight != 0 {
		t.Fatalf("uptime=%v inflight=%d", st.UptimeSeconds, st.InFlight)
	}
	if st.BatchLatency.Count != 2 || st.BatchLatency.P99Seconds < st.BatchLatency.P50Seconds {
		t.Fatalf("batch latency hist: %+v", st.BatchLatency)
	}
}

// TestClientDisconnectMidBatch cancels a request while its cells simulate;
// the server must stay healthy and a follow-up request must succeed with
// correct results (the aborted cells released their engine shards).
func TestClientDisconnectMidBatch(t *testing.T) {
	bench.DisableCache()
	_, ts := newTestServer(t, Options{})
	req := BatchRequest{Machine: "IG", Cells: []CellSpec{
		{Comp: "KNEM-Coll", Op: "alltoall", Size: 1 << 20, Iters: 2},
		{Comp: "KNEM-Coll", Op: "alltoall", Size: 2 << 20, Iters: 2},
	}}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postCells(ctx, http.DefaultClient, ts.URL, mustJSON(t, req)) // error expected
	}()
	cancel()
	wg.Wait()

	body, err := postCells(context.Background(), http.DefaultClient, ts.URL, mustJSON(t, testBatch()))
	if err != nil {
		t.Fatalf("server unhealthy after client disconnect: %v", err)
	}
	var resp BatchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	want := bench.MustMeasure(bench.Config{
		Machine: topology.ByName("Zoot"), NP: 4, Comp: bench.KNEMColl(),
		Op: bench.OpBcast, Size: 4096, Iters: 1,
	})
	if resp.Results[0].Seconds != want.Seconds {
		t.Fatalf("post-disconnect result diverges: %v vs %v", resp.Results[0].Seconds, want.Seconds)
	}
}

// TestLRUEviction bounds the store: a server with a tiny LRU keeps serving
// correctly while resident entries never exceed the cap.
func TestLRUEviction(t *testing.T) {
	st := newStore(storeShards) // one entry per shard
	for i := 0; i < 10*storeShards; i++ {
		st.put(fmt.Sprintf("key-%d", i), float64(i))
	}
	if n := st.len(); n > storeShards {
		t.Fatalf("store holds %d entries, cap %d", n, storeShards)
	}
	// Update-in-place must not grow the store.
	st.put("key-1", 99)
	st.put("key-1", 100)
	if n := st.len(); n > storeShards {
		t.Fatalf("update grew the store to %d", n)
	}
	if v, ok := st.get("key-1"); ok && v != 100 {
		t.Fatalf("updated entry reads %v", v)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
