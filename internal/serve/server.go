// Package serve turns the deterministic sweep-and-tune library into a
// long-running HTTP/JSON service: batch cell evaluation over the pooled
// measurement runner, streamed sweeps, tuned-decision lookups, and live
// cache/latency statistics.
//
// The serving stack, top to bottom:
//
//	handler → singleflight (bench) → bounded sharded LRU (store) →
//	persistent disk shards (bench memo) → pooled engine shards (runner)
//
// and the determinism contract is per request: the response body of
// POST /v1/cells is a pure function of the request — same machine, cells,
// and installed decision tables produce byte-identical bodies whether the
// cells are simulated, deduplicated against an identical in-flight
// request, served from the LRU, or replayed from disk, at any concurrency.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/topology"
	"repro/internal/tune"
)

// Options configures a Server.
type Options struct {
	// Machines resolves a request's machine name. Nil means the built-in
	// evaluation platforms only (topology.ByName) — requests can never
	// reach the filesystem.
	Machines func(name string) *topology.Machine
	// Decisions backs GET /v1/decisions and steers measured cells exactly
	// like imb -decisions (tables apply to matching machines).
	Decisions *tune.Set
	// LRUSize bounds the in-memory serving cache, in cells (default 4096).
	LRUSize int
	// Workers caps concurrently simulating cells server-wide (default
	// GOMAXPROCS): batches saturate the cores through the shard pool while
	// cache hits bypass the limit entirely.
	Workers int
	// MaxCells bounds the cells of one batch/sweep request (default 4096).
	MaxCells int
}

// Server is the sweep-and-tune daemon's handler state. Construct with New;
// serve via Handler.
type Server struct {
	opts  Options
	store *store
	mux   *http.ServeMux
	sem   chan struct{}
	start time.Time

	inflight atomic.Int64 // cells currently being evaluated
	batches  atomic.Int64
	sweeps   atomic.Int64
	lookups  atomic.Int64

	histBatch hist // whole POST /v1/cells requests
	histCell  hist // every served cell (hits and simulations alike)
	histSim   hist // cells that reached the runner (LRU misses)
}

// New builds a Server.
func New(opts Options) *Server {
	if opts.Machines == nil {
		opts.Machines = topology.ByName
	}
	if opts.LRUSize <= 0 {
		opts.LRUSize = 4096
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.MaxCells <= 0 {
		opts.MaxCells = 4096
	}
	s := &Server{
		opts:  opts,
		store: newStore(opts.LRUSize),
		sem:   make(chan struct{}, opts.Workers),
		start: time.Now(),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/cells", s.handleCells)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("GET /v1/decisions", s.handleDecisions)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	return s
}

// Handler returns the HTTP handler serving the /v1 API.
func (s *Server) Handler() http.Handler { return s.mux }

// WarmEntry is one persisted serving-cache cell: the content-addressed
// cell key and its simulated seconds. A daemon dumps its hot set as warm
// entries on drain and preloads them on the next boot, so a restart
// starts with yesterday's working set already resident instead of paying
// a cold LRU.
type WarmEntry struct {
	Key     string  `json:"key"`
	Seconds float64 `json:"seconds"`
}

// WarmSnapshot returns the serving cache's resident entries, sorted by
// key (so dumps of the same hot set are byte-identical).
func (s *Server) WarmSnapshot() []WarmEntry { return s.store.snapshot() }

// WarmPreload seeds the serving cache from a previous run's snapshot and
// reports how many entries were loaded. Entries are inserted in order, so
// if the snapshot exceeds the cache's capacity the later (higher-keyed)
// entries win. Determinism is unaffected: a warm entry holds exactly the
// seconds the simulator would recompute for its key.
func (s *Server) WarmPreload(entries []WarmEntry) int {
	for _, e := range entries {
		s.store.put(e.Key, e.Seconds)
	}
	return len(entries)
}

// CellSpec is one requested measurement cell. Zero NP and Iters take the
// measurement harness defaults (all cores, 3 iterations); responses echo
// the effective values so identical work is always described identically.
type CellSpec struct {
	Comp     string `json:"comp"`
	Op       string `json:"op"`
	Size     int64  `json:"size"`
	NP       int    `json:"np,omitempty"`
	Iters    int    `json:"iters,omitempty"`
	OffCache bool   `json:"offcache,omitempty"`
	Root     int    `json:"root,omitempty"`
}

// BatchRequest is the body of POST /v1/cells and POST /v1/sweep.
type BatchRequest struct {
	Machine string     `json:"machine"`
	Cells   []CellSpec `json:"cells"`
}

// CellResult is one evaluated cell: the effective spec plus its simulated
// time. Deliberately no served-from-where annotation — the body must be
// byte-identical however the cell was obtained.
type CellResult struct {
	Comp     string  `json:"comp"`
	Op       string  `json:"op"`
	Size     int64   `json:"size"`
	NP       int     `json:"np"`
	Iters    int     `json:"iters"`
	OffCache bool    `json:"offcache"`
	Root     int     `json:"root"`
	Seconds  float64 `json:"seconds"`
}

// BatchResponse is the body of POST /v1/cells.
type BatchResponse struct {
	Machine string       `json:"machine"`
	Cells   int          `json:"cells"`
	Results []CellResult `json:"results"`
}

// SweepLine is one NDJSON line of POST /v1/sweep: a cell result tagged
// with its request index. Lines stream in completion order (which may vary
// run to run); each line's content is deterministic, and sorting by i
// reconstructs the batch response's result order.
type SweepLine struct {
	I int `json:"i"`
	CellResult
}

// DecisionResponse is the body of GET /v1/decisions.
type DecisionResponse struct {
	Machine string     `json:"machine"`
	Op      string     `json:"op"`
	NP      int        `json:"np"`
	Size    int64      `json:"size"`
	Found   bool       `json:"found"`
	Cell    *tune.Cell `json:"cell,omitempty"`
}

// CacheStats is the layered cache picture in GET /v1/stats.
type CacheStats struct {
	LRUHits    int64   `json:"lru_hits"`
	LRUMisses  int64   `json:"lru_misses"`
	LRULen     int     `json:"lru_len"`
	LRUCap     int     `json:"lru_cap"`
	HitRate    float64 `json:"hit_rate"` // LRU + memo hits over all cells
	SimHits    int64   `json:"sim_hits"` // bench memo layer (memory + disk)
	SimMisses  int64   `json:"sim_misses"`
	SimDeduped int64   `json:"sim_deduped"` // singleflight waits
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	UptimeSeconds float64    `json:"uptime_seconds"`
	InFlight      int64      `json:"inflight_cells"`
	Batches       int64      `json:"batch_requests"`
	Sweeps        int64      `json:"sweep_requests"`
	Decisions     int64      `json:"decision_requests"`
	Cache         CacheStats `json:"cache"`
	// Shards is the measurement-shard pool's high-water footprint (arena
	// bytes and slab counts) — the resident cost a warm simulation worker
	// holds between cells.
	Shards bench.ShardStats `json:"shards"`
	// EngineGroups is the intra-cell parallel runner's pool-wide activity:
	// engine-group leases, the high-water engine count, conservative time
	// windows executed, the deepest cross-partition export queue seen in
	// one window, and how often the post-run audit demoted a cell to a
	// serial re-run.
	EngineGroups bench.EngineGroupStats `json:"engine_groups"`
	BatchLatency HistStats              `json:"batch_latency"`
	CellLatency  HistStats              `json:"cell_latency"`
	SimLatency   HistStats              `json:"sim_latency"`
}

// compsByName is the closed set of components a request may name.
func compsByName() map[string]bench.Comp {
	all := append(bench.PaperComponents(), bench.BasicSM(), bench.SMColl())
	m := make(map[string]bench.Comp, len(all))
	for _, c := range all {
		m[strings.ToLower(c.Name)] = c
	}
	return m
}

var validOps = map[bench.Op]bool{
	bench.OpBcast: true, bench.OpGather: true, bench.OpScatter: true,
	bench.OpAllgather: true, bench.OpAlltoall: true, bench.OpAlltoallv: true,
	bench.OpBarrier: true, bench.OpPingPong: true,
}

// cellConfigs validates one batch request and compiles it into measurement
// configs plus the echoed effective specs. Every problem is a one-line
// 400-class error naming the offending cell.
func (s *Server) cellConfigs(req *BatchRequest) (*topology.Machine, []bench.Config, []CellResult, error) {
	if req.Machine == "" {
		return nil, nil, nil, fmt.Errorf("no machine")
	}
	m := s.opts.Machines(req.Machine)
	if m == nil {
		return nil, nil, nil, fmt.Errorf("unknown machine %q", req.Machine)
	}
	if len(req.Cells) == 0 {
		return nil, nil, nil, fmt.Errorf("no cells")
	}
	if len(req.Cells) > s.opts.MaxCells {
		return nil, nil, nil, fmt.Errorf("%d cells exceeds the per-request limit of %d", len(req.Cells), s.opts.MaxCells)
	}
	comps := compsByName()
	cfgs := make([]bench.Config, len(req.Cells))
	echo := make([]CellResult, len(req.Cells))
	for i, c := range req.Cells {
		comp, ok := comps[strings.ToLower(c.Comp)]
		if !ok {
			return nil, nil, nil, fmt.Errorf("cell %d: unknown component %q", i, c.Comp)
		}
		if !validOps[bench.Op(c.Op)] {
			return nil, nil, nil, fmt.Errorf("cell %d: unknown op %q", i, c.Op)
		}
		if c.Size < 0 {
			return nil, nil, nil, fmt.Errorf("cell %d: negative size %d", i, c.Size)
		}
		np := c.NP
		if np == 0 {
			np = m.NCores()
		}
		if np < 1 || np > m.NCores() {
			return nil, nil, nil, fmt.Errorf("cell %d: np %d out of range for %d cores", i, np, m.NCores())
		}
		iters := c.Iters
		if iters == 0 {
			iters = 3
		}
		if iters < 1 {
			return nil, nil, nil, fmt.Errorf("cell %d: iters %d out of range", i, c.Iters)
		}
		if c.Root < 0 || c.Root >= np {
			return nil, nil, nil, fmt.Errorf("cell %d: root %d out of range for np %d", i, c.Root, np)
		}
		cfgs[i] = bench.Config{
			Machine: m, NP: np, Comp: comp, Op: bench.Op(c.Op), Size: c.Size,
			Iters: iters, OffCache: c.OffCache, Root: c.Root,
		}
		echo[i] = CellResult{
			Comp: comp.Name, Op: c.Op, Size: c.Size, NP: np, Iters: iters,
			OffCache: c.OffCache, Root: c.Root,
		}
	}
	return m, cfgs, echo, nil
}

// evalCell serves one cell through the layered caches, recording latency
// and in-flight accounting.
func (s *Server) evalCell(ctx context.Context, cfg bench.Config) (float64, error) {
	t0 := time.Now()
	s.inflight.Add(1)
	defer func() {
		s.inflight.Add(-1)
		s.histCell.observe(time.Since(t0))
	}()
	key, keyed := bench.CellKey(cfg)
	if keyed {
		if secs, ok := s.store.get(key); ok {
			return secs, nil
		}
	}
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		return 0, ctx.Err()
	}
	tSim := time.Now()
	res, err := bench.MeasureCtx(ctx, cfg)
	<-s.sem
	s.histSim.observe(time.Since(tSim))
	if err != nil {
		return 0, err
	}
	if keyed {
		s.store.put(key, res.Seconds)
	}
	return res.Seconds, nil
}

// evalAll evaluates every cell concurrently (bounded by the worker
// semaphore), delivering each completed result to done(i, result) and
// returning the lowest-indexed error, if any. done is called from many
// goroutines; the batch handler writes into a slot array, the sweep
// handler serializes through a channel.
func (s *Server) evalAll(ctx context.Context, cfgs []bench.Config, echo []CellResult, done func(i int, r CellResult)) error {
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		errAt  = -1
		errVal error
	)
	for i := range cfgs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			secs, err := s.evalCell(ctx, cfgs[i])
			if err != nil {
				mu.Lock()
				if errAt < 0 || i < errAt {
					errAt, errVal = i, err
				}
				mu.Unlock()
				return
			}
			r := echo[i]
			r.Seconds = secs
			done(i, r)
		}(i)
	}
	wg.Wait()
	return errVal
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf("simd: "+format, args...), code)
}

func (s *Server) decodeBatch(w http.ResponseWriter, r *http.Request) (*BatchRequest, []bench.Config, []CellResult, bool) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	req := &BatchRequest{}
	if err := dec.Decode(req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return nil, nil, nil, false
	}
	_, cfgs, echo, err := s.cellConfigs(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return nil, nil, nil, false
	}
	return req, cfgs, echo, true
}

// handleCells is POST /v1/cells: evaluate the batch, respond with results
// in request order — byte-deterministic for a given request and decision
// state.
func (s *Server) handleCells(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	s.batches.Add(1)
	req, cfgs, echo, ok := s.decodeBatch(w, r)
	if !ok {
		return
	}
	results := make([]CellResult, len(cfgs))
	err := s.evalAll(r.Context(), cfgs, echo, func(i int, res CellResult) {
		results[i] = res
	})
	if err != nil {
		if r.Context().Err() != nil {
			return // client is gone; nothing to write
		}
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	body, err := json.Marshal(&BatchResponse{Machine: req.Machine, Cells: len(results), Results: results})
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(body, '\n'))
	s.histBatch.observe(time.Since(t0))
}

// handleSweep is POST /v1/sweep: the same batch, streamed as NDJSON with
// one line per cell as it completes plus a final done line. Line contents
// are deterministic; line order is completion order.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	s.sweeps.Add(1)
	_, cfgs, echo, ok := s.decodeBatch(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	lines := make(chan SweepLine, len(cfgs))
	evalErr := make(chan error, 1)
	go func() {
		evalErr <- s.evalAll(r.Context(), cfgs, echo, func(i int, res CellResult) {
			lines <- SweepLine{I: i, CellResult: res}
		})
		close(lines)
	}()
	enc := json.NewEncoder(w)
	n := 0
	for line := range lines {
		if enc.Encode(&line) != nil {
			// Client went away; drain so the evaluators finish cancelling.
			continue
		}
		n++
		if flusher != nil {
			flusher.Flush()
		}
	}
	if err := <-evalErr; err != nil {
		// Mid-stream failure: headers are long gone, so report in-band.
		enc.Encode(map[string]string{"error": err.Error()})
		return
	}
	enc.Encode(map[string]int{"done": n})
}

// handleDecisions is GET /v1/decisions: a tune-table lookup for
// ?machine=&op=&np=&size= through the same nearest-cell interpolation the
// runtime components use.
func (s *Server) handleDecisions(w http.ResponseWriter, r *http.Request) {
	s.lookups.Add(1)
	q := r.URL.Query()
	name, op := q.Get("machine"), q.Get("op")
	if name == "" || op == "" {
		httpError(w, http.StatusBadRequest, "machine and op query parameters are required")
		return
	}
	m := s.opts.Machines(name)
	if m == nil {
		httpError(w, http.StatusBadRequest, "unknown machine %q", name)
		return
	}
	np := m.NCores()
	if v := q.Get("np"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "bad np %q", v)
			return
		}
		np = n
	}
	var size int64
	if v := q.Get("size"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "bad size %q", v)
			return
		}
		size = n
	}
	resp := DecisionResponse{Machine: m.Name, Op: op, NP: np, Size: size}
	if d := s.opts.Decisions.For(m); d != nil {
		if cell, ok := d.Lookup(op, np, size); ok {
			resp.Found, resp.Cell = true, &cell
		}
	}
	writeJSON(w, &resp)
}

// handleStats is GET /v1/stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	lruHits, lruMisses := s.store.counts()
	simHits, simMisses := bench.CacheCounts()
	cells := s.histCell.total.Load()
	resp := StatsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		InFlight:      s.inflight.Load(),
		Batches:       s.batches.Load(),
		Sweeps:        s.sweeps.Load(),
		Decisions:     s.lookups.Load(),
		Cache: CacheStats{
			LRUHits: lruHits, LRUMisses: lruMisses,
			LRULen: s.store.len(), LRUCap: s.opts.LRUSize,
			SimHits: simHits, SimMisses: simMisses, SimDeduped: bench.DedupedCount(),
		},
		Shards:       bench.Shards(),
		EngineGroups: bench.EngineGroups(),
		BatchLatency: s.histBatch.stats(),
		CellLatency:  s.histCell.stats(),
		SimLatency:   s.histSim.stats(),
	}
	if cells > 0 {
		resp.Cache.HitRate = float64(cells-s.histSim.total.Load()+simHits) / float64(cells)
	}
	writeJSON(w, &resp)
}

func writeJSON(w http.ResponseWriter, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(body, '\n'))
}
