package mpi

import (
	"fmt"

	"repro/internal/knem"
	"repro/internal/memsim"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
)

// AnySource and AnyTag are matching wildcards.
const (
	AnySource = -1
	AnyTag    = -1
)

// Rank is one MPI process, pinned to a core and executed by a simulated
// process. Rank methods must only be called from the rank's own body
// function (they block the rank's process in simulated time).
type Rank struct {
	w    *World
	rt   *partRT // this rank's partition runtime (== &w.parts[0] unpartitioned)
	id   int
	proc *sim.Proc
	core *topology.Core

	// Point-to-point engine state (see p2p.go).
	posted     []*Request // posted receives awaiting a match
	unexpected []*inHdr   // arrived headers with no matching receive
	oobQ       []oobMsg   // out-of-band messages awaiting RecvOOB
	credits    map[int]int
	sendSeq    map[int]int64
	activeRecv map[int64]*Request
	activeSend map[int64]*Request
	nextReq    int64
	collSeq    int64
}

// initRank readies one slot of the world's dense rank table. Slots come
// from the engine arena with the previous run's contents ("stale"), so
// every field is reinitialized here — and the expensive ones are
// recycled rather than rebuilt: the four p2p maps keep their buckets via
// clear (reinsertion up to the high-water peer count allocates nothing),
// and the queue slices keep their capacity.
func initRank(r *Rank, w *World, rt *partRT, id int) {
	r.w, r.rt, r.id, r.core = w, rt, id, rt.tr.Core(id)
	r.proc = nil
	clear(r.posted)
	r.posted = r.posted[:0]
	clear(r.unexpected)
	r.unexpected = r.unexpected[:0]
	clear(r.oobQ)
	r.oobQ = r.oobQ[:0]
	if r.credits == nil {
		r.credits = make(map[int]int)
		r.sendSeq = make(map[int]int64)
		r.activeRecv = make(map[int64]*Request)
		r.activeSend = make(map[int64]*Request)
	} else {
		clear(r.credits)
		clear(r.sendSeq)
		clear(r.activeRecv)
		clear(r.activeSend)
	}
	r.nextReq, r.collSeq = 0, 0
}

// ID returns the rank number in [0, Size).
func (r *Rank) ID() int { return r.id }

// Size returns the world size.
func (r *Rank) Size() int { return len(r.w.ranks) }

// World returns the enclosing world.
func (r *Rank) World() *World { return r.w }

// Core returns the core this rank is pinned to.
func (r *Rank) Core() *topology.Core { return r.core }

// Net returns the memory-system view this rank executes on (its
// partition's slice of a partitioned world; the whole net otherwise).
func (r *Rank) Net() *memsim.Net { return r.rt.net }

// Knem returns the KNEM module serving this rank. All partitions of one
// world share a region table, so a cookie created by any rank resolves
// through any rank's module.
func (r *Rank) Knem() *knem.Module { return r.rt.kn }

// Stats returns the counter sink this rank charges. On a partitioned
// world each partition accumulates privately; the runner merges the sinks
// in partition order afterwards, so totals match the single-engine run.
func (r *Rank) Stats() *trace.Stats { return r.rt.net.Stats() }

// Proc returns the simulated process executing this rank.
func (r *Rank) Proc() *sim.Proc { return r.proc }

// Now returns the current simulated time.
func (r *Rank) Now() sim.Time { return r.proc.Now() }

// Alloc allocates a buffer on this rank's memory domain (first-touch
// locality, as an MPI process touching its own buffers would get).
func (r *Rank) Alloc(size int64) *memsim.Buffer {
	return r.rt.net.Alloc(r.core.Domain, size, r.w.opts.WithData)
}

// AllocData allocates a byte-backed buffer regardless of the world's
// WithData setting.
func (r *Rank) AllocData(size int64) *memsim.Buffer {
	return r.rt.net.Alloc(r.core.Domain, size, true)
}

// LocalCopy copies src to dst with this rank's own core (a plain memcpy in
// the rank's address space).
func (r *Rank) LocalCopy(dst, src memsim.View) {
	r.rt.net.Copy(r.proc, r.core, dst, src)
}

// Compute charges ops operations of local computation at the machine's
// per-core rate.
func (r *Rank) Compute(ops float64) {
	if ops <= 0 {
		return
	}
	r.proc.Wait(ops / r.w.opts.Machine.Spec.Flops)
}

// Sleep advances this rank's local time.
func (r *Rank) Sleep(d sim.Time) { r.proc.Wait(d) }

// TouchCache records the cache footprint of a charged compute phase: the
// simulator only sees communication, so applications whose computation
// streams large working sets (polluting the cache) or keeps hot buffers
// resident report that here, after the corresponding Compute call.
func (r *Rank) TouchCache(v memsim.View, write bool) {
	r.rt.net.Touch(r.core, v, write)
}

// --- Collective dispatch -------------------------------------------------

func (r *Rank) coll() Coll {
	if r.w.coll == nil {
		panic(fmt.Sprintf("mpi: rank %d: no collective component configured", r.id))
	}
	return r.w.coll
}

// Barrier blocks until every rank has entered it.
func (r *Rank) Barrier() { r.coll().Barrier(r) }

// Bcast broadcasts root's v to every rank's v.
func (r *Rank) Bcast(v memsim.View, root int) { r.coll().Bcast(r, v, root) }

// Scatter distributes root's send blocks; each rank receives into recv.
func (r *Rank) Scatter(send, recv memsim.View, root int) { r.coll().Scatter(r, send, recv, root) }

// Gather collects every rank's send into root's recv.
func (r *Rank) Gather(send, recv memsim.View, root int) { r.coll().Gather(r, send, recv, root) }

// Allgather gathers every rank's send into every rank's recv.
func (r *Rank) Allgather(send, recv memsim.View) { r.coll().Allgather(r, send, recv) }

// Alltoall performs a personalized all-to-all exchange.
func (r *Rank) Alltoall(send, recv memsim.View) { r.coll().Alltoall(r, send, recv) }

// Gatherv is Gather with per-rank counts and displacements (bytes).
func (r *Rank) Gatherv(send, recv memsim.View, rcounts, rdispls []int64, root int) {
	r.coll().Gatherv(r, send, recv, rcounts, rdispls, root)
}

// Scatterv is Scatter with per-rank counts and displacements (bytes).
func (r *Rank) Scatterv(send memsim.View, scounts, sdispls []int64, recv memsim.View, root int) {
	r.coll().Scatterv(r, send, scounts, sdispls, recv, root)
}

// Allgatherv is Allgather with per-rank counts and displacements.
func (r *Rank) Allgatherv(send, recv memsim.View, rcounts, rdispls []int64) {
	r.coll().Allgatherv(r, send, recv, rcounts, rdispls)
}

// Alltoallv is Alltoall with per-rank counts and displacements.
func (r *Rank) Alltoallv(send memsim.View, scounts, sdispls []int64, recv memsim.View, rcounts, rdispls []int64) {
	r.coll().Alltoallv(r, send, scounts, sdispls, recv, rcounts, rdispls)
}

// Reduce combines every rank's send into root's recv with op.
func (r *Rank) Reduce(send, recv memsim.View, op ReduceOp, root int) {
	r.coll().Reduce(r, send, recv, op, root)
}

// Allreduce combines every rank's send into every rank's recv.
func (r *Rank) Allreduce(send, recv memsim.View, op ReduceOp) {
	r.coll().Allreduce(r, send, recv, op)
}

// ReduceScatterBlock combines and scatters equal blocks of the result.
func (r *Rank) ReduceScatterBlock(send, recv memsim.View, op ReduceOp) {
	r.coll().ReduceScatterBlock(r, send, recv, op)
}

// CollTag returns a fresh internal tag for one collective invocation.
// Collective calls are ordered identically on every rank (an MPI
// requirement), so local counters agree globally. Tags are spaced so an
// algorithm may use tag..tag+15 for internal phases.
func (r *Rank) CollTag() int {
	r.collSeq++
	return collTagBase + int(r.collSeq%collTagMod)*16
}

const (
	collTagBase = 1 << 28
	collTagMod  = 1 << 20
)

// Ranker is the surface the generic collective algorithms (package coll)
// program against: rank identity, point-to-point, local memory, and
// out-of-band messaging. *Rank implements it over the world communicator;
// *CommRank implements it over a sub-communicator with rank translation
// and a private tag space.
type Ranker interface {
	ID() int
	Size() int
	Isend(to, tag int, v memsim.View) *Request
	Irecv(src, tag int, v memsim.View) *Request
	Send(to, tag int, v memsim.View)
	Recv(src, tag int, v memsim.View) (int, int64)
	Sendrecv(to, stag int, sv memsim.View, from, rtag int, rv memsim.View)
	Wait(reqs ...*Request)
	LocalCopy(dst, src memsim.View)
	Alloc(size int64) *memsim.Buffer
	CollTag() int
	SendOOB(to, tag int, data any)
	RecvOOB(src, tag int) (any, int)
	ApplyReduce(op ReduceOp, dst, src memsim.View)
	Compute(ops float64)
}

var _ Ranker = (*Rank)(nil)
