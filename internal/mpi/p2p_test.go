package mpi

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/memsim"
	"repro/internal/topology"
)

func opts(btl BTLKind) Options {
	return Options{Machine: topology.Dancer(), BTL: btl, WithData: true}
}

func fill(b *memsim.Buffer, seed byte) {
	for i := range b.Data {
		b.Data[i] = byte(i)*3 + seed
	}
}

func runWorld(t *testing.T, o Options, body func(r *Rank)) *World {
	t.Helper()
	_, w, err := Run(o, body)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestEagerRoundtrip(t *testing.T) {
	for _, btl := range []BTLKind{BTLSM, BTLKNEM} {
		t.Run(btl.String(), func(t *testing.T) {
			runWorld(t, opts(btl), func(r *Rank) {
				switch r.ID() {
				case 0:
					b := r.Alloc(1024)
					fill(b, 9)
					r.Send(1, 42, b.Whole())
				case 1:
					b := r.Alloc(1024)
					src, n := r.Recv(0, 42, b.Whole())
					if src != 0 || n != 1024 {
						t.Errorf("src=%d n=%d", src, n)
					}
					for i := range b.Data {
						if b.Data[i] != byte(i)*3+9 {
							t.Errorf("byte %d corrupted", i)
							return
						}
					}
				}
			})
		})
	}
}

func TestRendezvousLargeMessage(t *testing.T) {
	const sz = 3<<20 + 12345 // not fragment aligned
	for _, btl := range []BTLKind{BTLSM, BTLKNEM} {
		t.Run(btl.String(), func(t *testing.T) {
			w := runWorld(t, opts(btl), func(r *Rank) {
				switch r.ID() {
				case 2:
					b := r.Alloc(sz)
					fill(b, 5)
					r.Send(6, 7, b.Whole())
				case 6:
					b := r.Alloc(sz)
					r.Recv(2, 7, b.Whole())
					for i := 0; i < sz; i += 997 {
						if b.Data[i] != byte(i)*3+5 {
							t.Errorf("byte %d corrupted", i)
							return
						}
					}
				}
			})
			if btl == BTLKNEM {
				if w.Stats().Copies != 1 {
					t.Errorf("KNEM rendezvous: copies = %d, want 1", w.Stats().Copies)
				}
				if w.Stats().Registrations != 1 {
					t.Errorf("registrations = %d, want 1", w.Stats().Registrations)
				}
				if w.Knem().ActiveRegions() != 0 {
					t.Error("region leaked")
				}
			} else {
				// Double copy: every fragment copied in and out.
				if w.Stats().BytesCopied != 2*sz {
					t.Errorf("SM rendezvous bytes = %d, want %d", w.Stats().BytesCopied, 2*sz)
				}
			}
		})
	}
}

// For messages larger than the shared cache under bus contention, the SM
// double copy pays DRAM traffic for its FIFO slots (the streaming payload
// keeps evicting them — cache pollution), while KNEM moves every byte
// once; KNEM must win. (Smaller messages keep the slots cache-resident
// and the two transports roughly tie, as on real hardware.)
func TestKnemFasterThanSMForLarge(t *testing.T) {
	const sz = 12 << 20 // exceeds Dancer's 8 MiB L3
	times := map[BTLKind]float64{}
	for _, btl := range []BTLKind{BTLSM, BTLKNEM} {
		o := opts(btl)
		o.WithData = false
		var end float64
		runWorld(t, o, func(r *Rank) {
			if r.ID() < 4 { // four concurrent senders on socket 0
				b := r.Alloc(sz)
				r.Send(r.ID()+4, 1, b.Whole())
			} else {
				b := r.Alloc(sz)
				r.Recv(r.ID()-4, 1, b.Whole())
				if r.Now() > end {
					end = r.Now()
				}
			}
		})
		times[btl] = end
	}
	if times[BTLKNEM] >= times[BTLSM] {
		t.Fatalf("KNEM (%g) not faster than SM (%g) under contention", times[BTLKNEM], times[BTLSM])
	}
}

func TestTagMatchingOrder(t *testing.T) {
	runWorld(t, opts(BTLSM), func(r *Rank) {
		switch r.ID() {
		case 0:
			a, b := r.Alloc(8), r.Alloc(8)
			a.Data[0], b.Data[0] = 1, 2
			r.Send(1, 100, a.Whole())
			r.Send(1, 200, b.Whole())
		case 1:
			// Receive in reverse tag order.
			b2 := r.Alloc(8)
			r.Recv(0, 200, b2.Whole())
			a2 := r.Alloc(8)
			r.Recv(0, 100, a2.Whole())
			if b2.Data[0] != 2 || a2.Data[0] != 1 {
				t.Errorf("tag matching wrong: %d %d", a2.Data[0], b2.Data[0])
			}
		}
	})
}

func TestSameTagFIFO(t *testing.T) {
	runWorld(t, opts(BTLSM), func(r *Rank) {
		switch r.ID() {
		case 0:
			for i := 0; i < 5; i++ {
				b := r.Alloc(8)
				b.Data[0] = byte(i)
				r.Send(1, 9, b.Whole())
			}
		case 1:
			for i := 0; i < 5; i++ {
				b := r.Alloc(8)
				r.Recv(0, 9, b.Whole())
				if b.Data[0] != byte(i) {
					t.Errorf("message %d out of order (got %d)", i, b.Data[0])
				}
			}
		}
	})
}

func TestAnySource(t *testing.T) {
	runWorld(t, opts(BTLSM), func(r *Rank) {
		if r.ID() >= 1 && r.ID() <= 3 {
			b := r.Alloc(16)
			b.Data[0] = byte(r.ID())
			r.Send(0, 5, b.Whole())
		}
		if r.ID() == 0 {
			seen := map[int]bool{}
			for i := 0; i < 3; i++ {
				b := r.Alloc(16)
				src, _ := r.Recv(AnySource, 5, b.Whole())
				if int(b.Data[0]) != src {
					t.Errorf("source mismatch: %d vs %d", b.Data[0], src)
				}
				seen[src] = true
			}
			if len(seen) != 3 {
				t.Errorf("sources = %v", seen)
			}
		}
	})
}

func TestAnyTag(t *testing.T) {
	runWorld(t, opts(BTLSM), func(r *Rank) {
		switch r.ID() {
		case 0:
			b := r.Alloc(8)
			r.Send(1, 77, b.Whole())
		case 1:
			b := r.Alloc(8)
			q := r.Irecv(0, AnyTag, b.Whole())
			r.Wait(q)
			if q.tag != AnyTag { // request keeps wildcard; header had 77
				t.Errorf("unexpected request mutation")
			}
		}
	})
}

func TestSelfSendRecv(t *testing.T) {
	for _, sz := range []int64{64, 1 << 20} {
		runWorld(t, opts(BTLSM), func(r *Rank) {
			if r.ID() != 0 {
				return
			}
			a := r.Alloc(sz)
			fill(a, 3)
			b := r.Alloc(sz)
			q := r.Irecv(0, 1, b.Whole())
			s := r.Isend(0, 1, a.Whole())
			r.Wait(s, q)
			if !bytes.Equal(a.Data, b.Data) {
				t.Errorf("self message corrupted at size %d", sz)
			}
		})
	}
}

func TestUnexpectedEagerParked(t *testing.T) {
	w := runWorld(t, opts(BTLSM), func(r *Rank) {
		switch r.ID() {
		case 0:
			b := r.Alloc(512)
			fill(b, 1)
			r.Send(1, 3, b.Whole())
			// Force rank1 to notice the message before posting: send an
			// OOB it is waiting on.
			r.SendOOB(1, 0, "go")
		case 1:
			r.RecvOOB(0, 0) // progresses: eager arrives unexpected
			b := r.Alloc(512)
			r.Recv(0, 3, b.Whole())
			for i := range b.Data {
				if b.Data[i] != byte(i)*3+1 {
					t.Errorf("parked payload corrupted")
					return
				}
			}
		}
	})
	// copy-in + copy-out-to-temp + temp-to-user = 3 copies.
	if w.Stats().Copies != 3 {
		t.Errorf("copies = %d, want 3 for unexpected eager", w.Stats().Copies)
	}
}

func TestBidirectionalStreamsNoDeadlock(t *testing.T) {
	const sz = 2 << 20
	for _, btl := range []BTLKind{BTLSM, BTLKNEM} {
		runWorld(t, opts(btl), func(r *Rank) {
			if r.ID() > 1 {
				return
			}
			peer := 1 - r.ID()
			a := r.Alloc(sz)
			b := r.Alloc(sz)
			r.Sendrecv(peer, 1, a.Whole(), peer, 1, b.Whole())
		})
	}
}

func TestAllPairsStress(t *testing.T) {
	// Every rank sends a large message to every other rank simultaneously.
	const sz = 256 << 10
	for _, btl := range []BTLKind{BTLSM, BTLKNEM} {
		runWorld(t, opts(btl), func(r *Rank) {
			P := r.Size()
			var reqs []*Request
			bufs := make([]*memsim.Buffer, P)
			for p := 0; p < P; p++ {
				if p == r.ID() {
					continue
				}
				bufs[p] = r.Alloc(sz)
				reqs = append(reqs, r.Irecv(p, 1, bufs[p].Whole()))
			}
			for p := 0; p < P; p++ {
				if p == r.ID() {
					continue
				}
				s := r.Alloc(sz)
				s.Data[0] = byte(r.ID())
				reqs = append(reqs, r.Isend(p, 1, s.Whole()))
			}
			r.Wait(reqs...)
			for p := 0; p < P; p++ {
				if p != r.ID() && bufs[p].Data[0] != byte(p) {
					t.Errorf("rank %d: from %d got %d", r.ID(), p, bufs[p].Data[0])
				}
			}
		})
	}
}

func TestOOBTagged(t *testing.T) {
	runWorld(t, opts(BTLSM), func(r *Rank) {
		switch r.ID() {
		case 0:
			r.SendOOB(1, 8, 123)
			r.SendOOB(1, 9, 456)
		case 1:
			v, src := r.RecvOOB(0, 9)
			if v.(int) != 456 || src != 0 {
				t.Errorf("OOB tag 9 = %v from %d", v, src)
			}
			v, _ = r.RecvOOB(AnySource, 8)
			if v.(int) != 123 {
				t.Errorf("OOB tag 8 = %v", v)
			}
		}
	})
}

func TestComputeCharges(t *testing.T) {
	runWorld(t, opts(BTLSM), func(r *Rank) {
		if r.ID() != 0 {
			return
		}
		t0 := r.Now()
		r.Compute(5.5e9) // exactly 1 second at Dancer's 5.5 GFlops
		if d := r.Now() - t0; d != 1.0 {
			t.Errorf("compute time = %g, want 1.0", d)
		}
	})
}

func TestMappingValidation(t *testing.T) {
	if _, err := NewWorld(Options{Machine: topology.Dancer(), NP: 99}); err == nil {
		t.Error("NP too large accepted")
	}
	if _, err := NewWorld(Options{Machine: topology.Dancer(), NP: 2, Mapping: []int{0, 0}}); err == nil {
		t.Error("duplicate core mapping accepted")
	}
	if _, err := NewWorld(Options{}); err == nil {
		t.Error("missing machine accepted")
	}
}

func TestCustomMapping(t *testing.T) {
	o := opts(BTLSM)
	o.NP = 2
	o.Mapping = []int{7, 3}
	runWorld(t, o, func(r *Rank) {
		want := []int{7, 3}[r.ID()]
		if r.Core().ID != want {
			t.Errorf("rank %d on core %d, want %d", r.ID(), r.Core().ID, want)
		}
	})
}

// Property: a random message matrix (sizes spanning eager and rendezvous,
// random tags) is delivered intact on both BTLs.
func TestRandomTrafficProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		type msg struct {
			from, to, tag int
			size          int64
		}
		var msgs []msg
		count := rng.Intn(12) + 1
		for i := 0; i < count; i++ {
			msgs = append(msgs, msg{
				from: rng.Intn(8),
				to:   rng.Intn(8),
				tag:  rng.Intn(3),
				size: 1 + rng.Int63n(200_000),
			})
		}
		btl := BTLKind(rng.Intn(2))
		okAll := true
		_, _, err := Run(opts(btl), func(r *Rank) {
			var reqs []*Request
			var checks []func() bool
			for i, m := range msgs {
				if m.to == r.ID() {
					b := r.Alloc(m.size)
					i := i
					q := r.Irecv(m.from, m.tag+i*10, b.Whole())
					reqs = append(reqs, q)
					checks = append(checks, func() bool {
						return b.Data[0] == byte(i+1) && b.Data[m.size-1] == byte(i+1)
					})
				}
			}
			for i, m := range msgs {
				if m.from == r.ID() {
					b := r.Alloc(m.size)
					for j := range b.Data {
						b.Data[j] = byte(i + 1)
					}
					reqs = append(reqs, r.Isend(m.to, m.tag+i*10, b.Whole()))
				}
			}
			r.Wait(reqs...)
			for _, c := range checks {
				if !c() {
					okAll = false
				}
			}
		})
		return err == nil && okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRunReturnsDeadlock(t *testing.T) {
	_, _, err := Run(opts(BTLSM), func(r *Rank) {
		if r.ID() == 0 {
			b := r.Alloc(64)
			r.Recv(1, 1, b.Whole()) // never sent
		}
	})
	if err == nil {
		t.Fatal("deadlock not reported")
	}
}

func TestStatsString(t *testing.T) {
	w := runWorld(t, opts(BTLSM), func(r *Rank) {
		if r.ID() == 0 {
			b := r.Alloc(64)
			r.Send(1, 1, b.Whole())
		} else if r.ID() == 1 {
			b := r.Alloc(64)
			r.Recv(0, 1, b.Whole())
		}
	})
	s := fmt.Sprint(w.Stats())
	if s == "" {
		t.Fatal("empty stats")
	}
}

func TestProbeAndIprobe(t *testing.T) {
	runWorld(t, opts(BTLSM), func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Sleep(1e-3)
			b := r.Alloc(2048)
			fill(b, 4)
			r.Send(1, 55, b.Whole())
		case 1:
			// Nothing there yet.
			if _, ok := r.Iprobe(0, 55); ok {
				t.Error("Iprobe matched before send")
			}
			st := r.Probe(0, 55) // blocks until the eager message lands
			if st.Source != 0 || st.Tag != 55 || st.Len != 2048 {
				t.Errorf("probe status = %+v", st)
			}
			// Probe must not consume: Iprobe still sees it, Recv gets it.
			if _, ok := r.Iprobe(AnySource, AnyTag); !ok {
				t.Error("Iprobe lost the probed message")
			}
			b := r.Alloc(2048)
			src, n := r.Recv(0, 55, b.Whole())
			if src != 0 || n != 2048 || b.Data[5] != byte(5)*3+4 {
				t.Errorf("recv after probe wrong: src=%d n=%d", src, n)
			}
		}
	})
}

func TestProbeRendezvous(t *testing.T) {
	const sz = 1 << 20
	runWorld(t, opts(BTLSM), func(r *Rank) {
		switch r.ID() {
		case 2:
			b := r.Alloc(sz)
			r.Send(3, 9, b.Whole())
		case 3:
			st := r.Probe(2, 9)
			if st.Len != sz {
				t.Errorf("probed len = %d", st.Len)
			}
			b := r.Alloc(sz)
			r.Recv(2, 9, b.Whole())
		}
	})
}

func TestWaitanyAndTestall(t *testing.T) {
	runWorld(t, opts(BTLSM), func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Sleep(2e-3)
			b := r.Alloc(64)
			r.Send(2, 1, b.Whole())
		case 1:
			r.Sleep(1e-3)
			b := r.Alloc(64)
			r.Send(2, 2, b.Whole())
		case 2:
			b1 := r.Alloc(64)
			b2 := r.Alloc(64)
			q1 := r.Irecv(0, 1, b1.Whole())
			q2 := r.Irecv(1, 2, b2.Whole())
			if r.Testall(q1, q2) {
				t.Error("Testall true before any send")
			}
			idx := r.Waitany(q1, q2)
			if idx != 1 {
				t.Errorf("Waitany = %d, want 1 (rank 1 sends first)", idx)
			}
			r.Wait(q1, q2)
			if !r.Testall(q1, q2) {
				t.Error("Testall false after Wait")
			}
		}
	})
}
