package mpi

import (
	"encoding/binary"
	"math"

	"repro/internal/memsim"
)

// ReduceOp is an MPI reduction operator. Apply combines src into dst
// element-wise (dst = dst OP src); both slices have the same length, a
// multiple of ElemSize. Operators must be associative and commutative
// (the algorithms reorder combinations freely, as MPI permits for
// predefined operators).
type ReduceOp interface {
	Name() string
	ElemSize() int64
	Apply(dst, src []byte)
}

// Predefined operators over little-endian elements, matching the layout
// helpers in package asp and the examples.
var (
	OpSumInt32   ReduceOp = sumInt32{}
	OpMaxInt32   ReduceOp = maxInt32{}
	OpMinInt32   ReduceOp = minInt32{}
	OpSumFloat64 ReduceOp = sumFloat64{}
	OpBandUint8  ReduceOp = bandUint8{}
)

type sumInt32 struct{}

func (sumInt32) Name() string    { return "sum_int32" }
func (sumInt32) ElemSize() int64 { return 4 }
func (sumInt32) Apply(dst, src []byte) {
	for i := 0; i+4 <= len(dst); i += 4 {
		v := int32(binary.LittleEndian.Uint32(dst[i:])) + int32(binary.LittleEndian.Uint32(src[i:]))
		binary.LittleEndian.PutUint32(dst[i:], uint32(v))
	}
}

type maxInt32 struct{}

func (maxInt32) Name() string    { return "max_int32" }
func (maxInt32) ElemSize() int64 { return 4 }
func (maxInt32) Apply(dst, src []byte) {
	for i := 0; i+4 <= len(dst); i += 4 {
		a := int32(binary.LittleEndian.Uint32(dst[i:]))
		b := int32(binary.LittleEndian.Uint32(src[i:]))
		if b > a {
			binary.LittleEndian.PutUint32(dst[i:], uint32(b))
		}
	}
}

type minInt32 struct{}

func (minInt32) Name() string    { return "min_int32" }
func (minInt32) ElemSize() int64 { return 4 }
func (minInt32) Apply(dst, src []byte) {
	for i := 0; i+4 <= len(dst); i += 4 {
		a := int32(binary.LittleEndian.Uint32(dst[i:]))
		b := int32(binary.LittleEndian.Uint32(src[i:]))
		if b < a {
			binary.LittleEndian.PutUint32(dst[i:], uint32(b))
		}
	}
}

type sumFloat64 struct{}

func (sumFloat64) Name() string    { return "sum_float64" }
func (sumFloat64) ElemSize() int64 { return 8 }
func (sumFloat64) Apply(dst, src []byte) {
	for i := 0; i+8 <= len(dst); i += 8 {
		v := math.Float64frombits(binary.LittleEndian.Uint64(dst[i:])) +
			math.Float64frombits(binary.LittleEndian.Uint64(src[i:]))
		binary.LittleEndian.PutUint64(dst[i:], math.Float64bits(v))
	}
}

type bandUint8 struct{}

func (bandUint8) Name() string    { return "band_uint8" }
func (bandUint8) ElemSize() int64 { return 1 }
func (bandUint8) Apply(dst, src []byte) {
	for i := range dst {
		dst[i] &= src[i]
	}
}

// reduceOpsPerByte is the charged computational cost of combining one byte
// (load + op + store at the machines' nominal rates).
const reduceOpsPerByte = 0.75

// ApplyReduce combines src into dst with op: real bytes are combined when
// present, and the combine cost is charged to the simulated clock either
// way.
func (r *Rank) ApplyReduce(op ReduceOp, dst, src memsim.View) {
	if dst.Len != src.Len {
		panic("mpi: ApplyReduce length mismatch")
	}
	if d, s := dst.Bytes(), src.Bytes(); d != nil && s != nil {
		op.Apply(d, s)
	}
	r.Compute(float64(dst.Len) * reduceOpsPerByte)
}
