package mpi_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/topology"
)

// A two-rank ping-pong over the shared-memory transport: the canonical
// smallest MPI program on the simulated machine.
func Example() {
	elapsed, _, err := mpi.Run(mpi.Options{
		Machine:  topology.Dancer(),
		NP:       2,
		WithData: true,
	}, func(r *mpi.Rank) {
		buf := r.Alloc(1024)
		switch r.ID() {
		case 0:
			buf.Data[0] = 42
			r.Send(1, 7, buf.Whole())
			r.Recv(1, 8, buf.Whole())
			fmt.Printf("rank 0 got back %d\n", buf.Data[0])
		case 1:
			r.Recv(0, 7, buf.Whole())
			buf.Data[0]++
			r.Send(0, 8, buf.Whole())
		}
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("deterministic simulated time: %.3f us\n", elapsed*1e6)
	// Output:
	// rank 0 got back 43
	// deterministic simulated time: 1.810 us
}

// A broadcast through the paper's KNEM collective component, showing the
// single persistent registration shared by every receiver.
func Example_knemBroadcast() {
	_, w, err := mpi.Run(mpi.Options{
		Machine:  topology.Dancer(),
		WithData: true,
		Coll: func(w *mpi.World) mpi.Coll {
			return core.NewWithConfig(w, core.Config{Mode: core.ModeLinear})
		},
	}, func(r *mpi.Rank) {
		buf := r.Alloc(64 << 10)
		if r.ID() == 0 {
			buf.Data[100] = 9
		}
		r.Bcast(buf.Whole(), 0)
		if buf.Data[100] != 9 {
			panic("wrong data")
		}
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("registrations: %d, kernel copies: %d\n",
		w.Stats().Registrations, w.Stats().Copies)
	// Output:
	// registrations: 1, kernel copies: 7
}
