package mpi

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/memsim"
	"repro/internal/topology"
)

// abortColl panics out of Bcast the way components abort on unrecoverable
// errors; everything else completes silently.
type abortColl struct{}

func (abortColl) Name() string    { return "abort" }
func (abortColl) Barrier(r *Rank) {}
func (abortColl) Bcast(r *Rank, v memsim.View, root int) {
	panic("abort: broadcast cannot complete")
}
func (abortColl) Scatter(r *Rank, send, recv memsim.View, root int) {}
func (abortColl) Gather(r *Rank, send, recv memsim.View, root int)  {}
func (abortColl) Allgather(r *Rank, send, recv memsim.View)         {}
func (abortColl) Alltoall(r *Rank, send, recv memsim.View)          {}
func (abortColl) Gatherv(r *Rank, send, recv memsim.View, rcounts, rdispls []int64, root int) {
}
func (abortColl) Scatterv(r *Rank, send memsim.View, scounts, sdispls []int64, recv memsim.View, root int) {
}
func (abortColl) Allgatherv(r *Rank, send, recv memsim.View, rcounts, rdispls []int64) {}
func (abortColl) Alltoallv(r *Rank, send memsim.View, scounts, sdispls []int64, recv memsim.View, rcounts, rdispls []int64) {
}
func (abortColl) Reduce(r *Rank, send, recv memsim.View, op ReduceOp, root int) {}
func (abortColl) Allreduce(r *Rank, send, recv memsim.View, op ReduceOp)        {}
func (abortColl) ReduceScatterBlock(r *Rank, send, recv memsim.View, op ReduceOp) {
	panic(errors.New("abort: reduce-scatter cannot complete"))
}

func TestTryCollConvertsAbortToError(t *testing.T) {
	_, _, err := Run(Options{
		Machine: topology.Dancer(), NP: 1, WithData: true,
		Coll: func(w *World) Coll { return abortColl{} },
	}, func(r *Rank) {
		if err := r.TryBarrier(); err != nil {
			t.Errorf("TryBarrier on a clean collective: %v", err)
		}
		b := r.Alloc(64)
		err := r.TryBcast(b.Whole(), 0)
		var ce *CollError
		if !errors.As(err, &ce) {
			t.Fatalf("TryBcast returned %v, want *CollError", err)
		}
		if ce.Op != "Bcast" || ce.Rank != 0 {
			t.Errorf("CollError = {%q, %d}, want {Bcast, 0}", ce.Op, ce.Rank)
		}
		if !strings.Contains(ce.Error(), "broadcast cannot complete") {
			t.Errorf("error message %q lost the abort reason", ce.Error())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Non-string, non-error panic values are the simulator's own control flow
// and must pass through tryColl untouched.
func TestTryCollReraisesControlPanics(t *testing.T) {
	_, _, err := Run(Options{
		Machine: topology.Dancer(), NP: 1, WithData: true,
		Coll: func(w *World) Coll { return abortColl{} },
	}, func(r *Rank) {
		defer func() {
			if p := recover(); p != 42 {
				t.Errorf("recovered %v, want the original control panic 42", p)
			}
		}()
		r.tryColl("X", func() { panic(42) })
		t.Error("tryColl swallowed a control panic")
	})
	if err != nil {
		t.Fatal(err)
	}
}
