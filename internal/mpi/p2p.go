package mpi

import (
	"fmt"

	"repro/internal/knem"
	"repro/internal/memsim"
	"repro/internal/shm"
)

// Point-to-point engine. Three protocols, selected by message size and the
// world's BTL:
//
//   - eager (size <= shm EagerMax): the sender copies the payload into a
//     FIFO slot inside MPI_Isend and signals with a control message; an
//     unmatched arrival is copied once more into an unexpected buffer.
//
//   - SM rendezvous: RTS/CTS handshake, then the payload streams through
//     bounded FIFO slots — copy-in by the sender core, copy-out by the
//     receiver core: the double copy of copy-in/copy-out transports.
//
//   - KNEM rendezvous (BTLKNEM): the sender declares its buffer to the
//     kernel module and ships the cookie in the RTS; the receiver performs
//     one single-copy read and replies FIN, after which the sender
//     deregisters. One registration and one copy per message — but a new
//     registration for every message and every peer, which is precisely
//     the overhead the paper's collective component amortizes away.
//
// Flow control uses credits: each ordered pair starts with Depth credits;
// consuming a slot costs one, and the receiver returns one after each
// copy-out. A rank that must wait (for credits, a match, or completion)
// processes its incoming control messages, so cyclic communication
// patterns (e.g. all-to-all) cannot deadlock.

type reqKind int

const (
	reqSend reqKind = iota
	reqRecv
)

type reqState int

const (
	statePending reqState = iota
	stateStreaming
	stateDone
)

// Request is a nonblocking operation handle.
type Request struct {
	r     *Rank
	kind  reqKind
	peer  int
	tag   int
	view  memsim.View
	id    int64
	state reqState

	// Receive side.
	received    int64
	total       int64
	matchedFrom int

	// Send side.
	recvID int64
	cookie knem.Cookie
}

// Done reports completion.
func (q *Request) Done() bool { return q.state == stateDone }

// Source returns the matched source of a completed receive (useful with
// AnySource).
func (q *Request) Source() int { return q.matchedFrom }

// Len returns the actual number of bytes of a completed receive.
func (q *Request) Len() int64 { return q.total }

// Control message payloads.
type (
	eagerMsg struct {
		tag     int
		n       int64
		slotSeq int64
	}
	rtsMsg struct {
		tag    int
		n      int64
		sendID int64
		cookie knem.Cookie // 0 for SM rendezvous
	}
	ctsMsg struct {
		sendID int64
		recvID int64
	}
	fragMsg struct {
		recvID  int64
		slotSeq int64
		n       int64
		off     int64
	}
	finMsg struct {
		sendID int64
	}
	creditMsg struct{}
	oobCtrl   struct {
		tag  int
		data any
	}
)

type oobMsg struct {
	from int
	tag  int
	data any
}

// inHdr is an arrived message header with no matching posted receive.
type inHdr struct {
	src  int
	tag  int
	n    int64
	temp *memsim.Buffer // eager payload parked in an unexpected buffer
	rts  *rtsMsg        // rendezvous waiting for a matching receive
}

func match(src, tag, wantSrc, wantTag int) bool {
	return (wantSrc == AnySource || wantSrc == src) && (wantTag == AnyTag || wantTag == tag)
}

// Isend starts a send. Eager sends copy the payload before returning (as
// real shared-memory MPIs do inside MPI_Isend); rendezvous sends return
// immediately and progress during Wait.
func (r *Rank) Isend(to, tag int, v memsim.View) *Request {
	if to < 0 || to >= r.Size() {
		panic(fmt.Sprintf("mpi: Isend to invalid rank %d", to))
	}
	q := &Request{r: r, kind: reqSend, peer: to, tag: tag, view: v}
	if v.Len <= r.rt.tr.Cfg.EagerMax {
		r.takeCredit(to)
		seq := r.sendSeq[to]
		r.sendSeq[to]++
		slot := r.rt.tr.Pair(r.id, to).Slot(seq)
		r.rt.tr.CopyIn(r.proc, r.id, slot, v)
		r.rt.tr.SendCtrl(r.id, to, eagerMsg{tag: tag, n: v.Len, slotSeq: seq})
		q.state = stateDone
		return q
	}
	r.nextReq++
	q.id = r.nextReq
	r.activeSend[q.id] = q
	rts := rtsMsg{tag: tag, n: v.Len, sendID: q.id}
	if r.w.opts.BTL == BTLKNEM && v.Len >= r.w.opts.KnemMin {
		c, err := r.rt.kn.Create(r.proc, r.id, []memsim.View{v}, knem.DirRead)
		if err == nil {
			q.cookie = c
			rts.cookie = c
		} else {
			// Registration failed (pinned-page exhaustion or an injected
			// fault): degrade this message to the SM fragment pipeline.
			// The RTS carries no cookie, so the receiver runs the
			// copy-in/copy-out rendezvous.
			r.rt.net.Stats().Fallbacks++
		}
	}
	r.rt.tr.SendCtrl(r.id, to, rts)
	return q
}

// Irecv posts a receive. The buffer must be at least as large as the
// incoming message.
func (r *Rank) Irecv(src, tag int, v memsim.View) *Request {
	q := &Request{r: r, kind: reqRecv, peer: src, tag: tag, view: v, matchedFrom: -1}
	for i, h := range r.unexpected {
		if match(h.src, h.tag, src, tag) {
			r.unexpected = append(r.unexpected[:i], r.unexpected[i+1:]...)
			r.deliver(q, h)
			return q
		}
	}
	r.posted = append(r.posted, q)
	return q
}

// deliver completes or activates a receive from an unexpected header.
func (r *Rank) deliver(q *Request, h *inHdr) {
	q.matchedFrom = h.src
	q.total = h.n
	if h.n > q.view.Len {
		panic(fmt.Sprintf("mpi: rank %d: message of %d bytes truncated into %d-byte buffer (src=%d tag=%d)",
			r.id, h.n, q.view.Len, h.src, h.tag))
	}
	if h.temp != nil {
		// Parked eager payload: one more local copy to the user buffer.
		r.LocalCopy(q.view.SubView(0, h.n), h.temp.View(0, h.n))
		q.state = stateDone
		return
	}
	r.matchRTS(q, h.src, h.rts)
}

// matchRTS runs the receiver side of a rendezvous.
func (r *Rank) matchRTS(q *Request, src int, rts *rtsMsg) {
	dst := q.view.SubView(0, rts.n)
	if rts.cookie != 0 {
		// KNEM single copy, performed by the receiving core.
		err := r.rt.kn.Copy(r.proc, r.core, []memsim.View{dst}, rts.cookie, 0, knem.DirRead)
		if err == nil {
			r.rt.tr.SendCtrl(r.id, src, finMsg{sendID: rts.sendID})
			q.state = stateDone
			return
		}
		if r.rt.kn.Injector() == nil {
			panic("mpi: knem copy failed: " + err.Error())
		}
		// The single copy failed under a fault plan (transient fault or
		// invalidated cookie): degrade to the SM fragment pipeline. The
		// CTS tells the sender to drop its region and stream instead.
		r.rt.net.Stats().Fallbacks++
	}
	r.nextReq++
	q.id = r.nextReq
	r.activeRecv[q.id] = q
	r.rt.tr.SendCtrl(r.id, src, ctsMsg{sendID: rts.sendID, recvID: q.id})
}

// Wait blocks until all given requests complete, progressing the rank's
// message engine (and pushing rendezvous fragments) meanwhile.
func (r *Rank) Wait(reqs ...*Request) {
	for {
		r.pushStreams()
		allDone := true
		for _, q := range reqs {
			if q.state != stateDone {
				allDone = false
			}
		}
		if allDone {
			return
		}
		r.progressOne()
	}
}

// pushStreams drains every send whose CTS has arrived. Any rendezvous send
// of this rank can become streamable while it blocks in an unrelated call;
// pushing them all here keeps cyclic patterns deadlock-free.
func (r *Rank) pushStreams() {
	for {
		var pick *Request
		for _, q := range r.activeSend {
			if q.state == stateStreaming && (pick == nil || q.id < pick.id) {
				pick = q
			}
		}
		if pick == nil {
			return
		}
		r.stream(pick)
	}
}

// Send is a blocking send.
func (r *Rank) Send(to, tag int, v memsim.View) { r.Wait(r.Isend(to, tag, v)) }

// Recv is a blocking receive; it returns the matched source and length.
func (r *Rank) Recv(src, tag int, v memsim.View) (int, int64) {
	q := r.Irecv(src, tag, v)
	r.Wait(q)
	return q.matchedFrom, q.total
}

// Sendrecv posts the receive, runs the send, and waits for both.
func (r *Rank) Sendrecv(to, stag int, sv memsim.View, from, rtag int, rv memsim.View) {
	q := r.Irecv(from, rtag, rv)
	s := r.Isend(to, stag, sv)
	r.Wait(s, q)
}

// stream pushes the fragments of an SM rendezvous send.
func (r *Rank) stream(q *Request) {
	frag := r.rt.tr.Cfg.FragSize
	pair := r.rt.tr.Pair(r.id, q.peer)
	for off := int64(0); off < q.view.Len; {
		n := frag
		if rem := q.view.Len - off; rem < n {
			n = rem
		}
		r.takeCredit(q.peer)
		seq := r.sendSeq[q.peer]
		r.sendSeq[q.peer]++
		slot := pair.Slot(seq)
		r.rt.tr.CopyIn(r.proc, r.id, slot, q.view.SubView(off, n))
		r.rt.tr.SendCtrl(r.id, q.peer, fragMsg{recvID: q.recvID, slotSeq: seq, n: n, off: off})
		off += n
	}
	q.state = stateDone
	delete(r.activeSend, q.id)
}

// takeCredit consumes one FIFO credit toward rank to, progressing until
// one is available.
func (r *Rank) takeCredit(to int) {
	if _, ok := r.credits[to]; !ok {
		r.credits[to] = r.rt.tr.Cfg.Depth
	}
	for r.credits[to] == 0 {
		r.progressOne()
	}
	r.credits[to]--
}

// progressOne blocks on the control mailbox and dispatches one message.
func (r *Rank) progressOne() {
	r.dispatch(r.rt.tr.RecvCtrl(r.proc, r.id))
}

// dispatch routes one delivered control message.
func (r *Rank) dispatch(msg shm.Msg) {
	switch m := msg.Payload.(type) {
	case eagerMsg:
		r.onEager(msg.From, m)
	case rtsMsg:
		r.onRTS(msg.From, m)
	case ctsMsg:
		q := r.activeSend[m.sendID]
		if q == nil {
			panic("mpi: CTS for unknown send")
		}
		if q.cookie != 0 {
			// The receiver degraded a KNEM rendezvous to SM streaming;
			// the region is no longer needed (and may already be gone
			// if a fault invalidated it).
			if err := r.rt.kn.Destroy(r.proc, q.cookie); err != nil && err != knem.ErrInvalidCookie {
				panic("mpi: knem destroy failed: " + err.Error())
			}
			q.cookie = 0
		}
		q.recvID = m.recvID
		q.state = stateStreaming
	case fragMsg:
		r.onFrag(msg.From, m)
	case finMsg:
		q := r.activeSend[m.sendID]
		if q == nil {
			panic("mpi: FIN for unknown send")
		}
		if err := r.rt.kn.Destroy(r.proc, q.cookie); err != nil {
			panic("mpi: knem destroy failed: " + err.Error())
		}
		q.state = stateDone
		delete(r.activeSend, m.sendID)
	case creditMsg:
		r.credits[msg.From]++
	case *oobCtrl:
		r.oobQ = append(r.oobQ, oobMsg{from: msg.From, tag: m.tag, data: m.data})
		m.data = nil
		r.rt.oobPool = append(r.rt.oobPool, m)
	default:
		panic(fmt.Sprintf("mpi: unknown control payload %T", msg.Payload))
	}
}

// onEager handles an arrived eager fragment.
func (r *Rank) onEager(src int, m eagerMsg) {
	slot := r.rt.tr.Pair(src, r.id).Slot(m.slotSeq)
	if q := r.takePosted(src, m.tag); q != nil {
		if m.n > q.view.Len {
			panic("mpi: eager truncation")
		}
		q.matchedFrom = src
		q.total = m.n
		r.rt.tr.CopyOut(r.proc, r.id, q.view.SubView(0, m.n), slot)
		r.rt.tr.SendCtrl(r.id, src, creditMsg{})
		q.state = stateDone
		return
	}
	// Unexpected: park the payload so the slot frees in FIFO order.
	temp := r.rt.net.Alloc(r.core.Domain, m.n, q0data(slot))
	r.rt.tr.CopyOut(r.proc, r.id, temp.Whole(), slot)
	r.rt.tr.SendCtrl(r.id, src, creditMsg{})
	r.unexpected = append(r.unexpected, &inHdr{src: src, tag: m.tag, n: m.n, temp: temp})
}

// q0data reports whether the slot carries real bytes (so the parked copy
// does too).
func q0data(v memsim.View) bool { return v.Bytes() != nil }

// onRTS handles a rendezvous request.
func (r *Rank) onRTS(src int, m rtsMsg) {
	mm := m
	if q := r.takePosted(src, m.tag); q != nil {
		q.matchedFrom = src
		q.total = m.n
		if m.n > q.view.Len {
			panic("mpi: rendezvous truncation")
		}
		r.matchRTS(q, src, &mm)
		return
	}
	r.unexpected = append(r.unexpected, &inHdr{src: src, tag: m.tag, n: m.n, rts: &mm})
}

// onFrag handles one rendezvous fragment.
func (r *Rank) onFrag(src int, m fragMsg) {
	q := r.activeRecv[m.recvID]
	if q == nil {
		panic("mpi: fragment for unknown receive")
	}
	if m.off != q.received {
		panic("mpi: out-of-order fragment")
	}
	slot := r.rt.tr.Pair(src, r.id).Slot(m.slotSeq)
	r.rt.tr.CopyOut(r.proc, r.id, q.view.SubView(m.off, m.n), slot)
	r.rt.tr.SendCtrl(r.id, src, creditMsg{})
	q.received += m.n
	if q.received == q.total {
		q.state = stateDone
		delete(r.activeRecv, q.id)
	}
}

// takePosted removes and returns the first posted receive matching
// (src, tag), or nil.
func (r *Rank) takePosted(src, tag int) *Request {
	for i, q := range r.posted {
		if match(src, tag, q.peer, q.tag) {
			r.posted = append(r.posted[:i], r.posted[i+1:]...)
			return q
		}
	}
	return nil
}

// --- Out-of-band messaging ----------------------------------------------

// SendOOB delivers a small out-of-band value (cookie, sync token) to rank
// to. It models an inline cache-line exchange: control latency only, no
// bandwidth. This is the "shared memory BTL as out-of-band channel" of
// §V-A.
func (r *Rank) SendOOB(to, tag int, data any) {
	var m *oobCtrl
	if k := len(r.rt.oobPool); k > 0 {
		m = r.rt.oobPool[k-1]
		r.rt.oobPool[k-1] = nil
		r.rt.oobPool = r.rt.oobPool[:k-1]
	} else {
		m = &oobCtrl{}
	}
	m.tag, m.data = tag, data
	r.rt.tr.SendCtrl(r.id, to, m)
}

// RecvOOB blocks until an out-of-band value with the given tag arrives
// from src (or AnySource); it returns the value and the actual source.
func (r *Rank) RecvOOB(src, tag int) (any, int) {
	for {
		for i, m := range r.oobQ {
			if match(m.from, m.tag, src, tag) {
				r.oobQ = append(r.oobQ[:i], r.oobQ[i+1:]...)
				return m.data, m.from
			}
		}
		r.pushStreams()
		r.progressOne()
	}
}

// TryRecvOOB returns a matching out-of-band value if one has already
// arrived, draining delivered control traffic without blocking. Fault
// recovery uses it to service resend requests while waiting for protocol
// tokens.
func (r *Rank) TryRecvOOB(src, tag int) (any, int, bool) {
	for {
		for i, m := range r.oobQ {
			if match(m.from, m.tag, src, tag) {
				r.oobQ = append(r.oobQ[:i], r.oobQ[i+1:]...)
				return m.data, m.from, true
			}
		}
		msg, ok := r.rt.tr.TryRecvCtrl(r.id)
		if !ok {
			return nil, 0, false
		}
		r.dispatch(msg)
	}
}

// ProgressOOB pushes pending rendezvous streams and blocks until one more
// control message is delivered. Service loops alternate TryRecvOOB polls
// with ProgressOOB so they advance simulated time only when idle.
func (r *Rank) ProgressOOB() {
	r.pushStreams()
	r.progressOne()
}

// --- Probing --------------------------------------------------------------

// Status describes a matched but not yet received message.
type Status struct {
	Source int
	Tag    int
	Len    int64
}

// findHeader scans the unexpected queue for a match.
func (r *Rank) findHeader(src, tag int) (Status, bool) {
	for _, h := range r.unexpected {
		if match(h.src, h.tag, src, tag) {
			return Status{Source: h.src, Tag: h.tag, Len: h.n}, true
		}
	}
	return Status{}, false
}

// Iprobe reports whether a message matching (src, tag) has arrived,
// without receiving it. It progresses pending protocol traffic first.
func (r *Rank) Iprobe(src, tag int) (Status, bool) {
	for {
		if st, ok := r.findHeader(src, tag); ok {
			return st, true
		}
		msg, ok := r.rt.tr.TryRecvCtrl(r.id)
		if !ok {
			return Status{}, false
		}
		r.dispatch(msg)
	}
}

// Probe blocks until a message matching (src, tag) is available and
// returns its envelope; the message stays queued for a subsequent Recv.
func (r *Rank) Probe(src, tag int) Status {
	for {
		if st, ok := r.findHeader(src, tag); ok {
			return st
		}
		r.pushStreams()
		r.progressOne()
	}
}

// Waitany blocks until at least one of the requests completes and returns
// its index.
func (r *Rank) Waitany(reqs ...*Request) int {
	if len(reqs) == 0 {
		panic("mpi: Waitany with no requests")
	}
	for {
		r.pushStreams()
		for i, q := range reqs {
			if q.state == stateDone {
				return i
			}
		}
		r.progressOne()
	}
}

// Testall reports whether every request has completed, progressing any
// already-delivered protocol traffic without blocking.
func (r *Rank) Testall(reqs ...*Request) bool {
	for {
		r.pushStreams()
		done := true
		for _, q := range reqs {
			if q.state != stateDone {
				done = false
			}
		}
		if done {
			return true
		}
		msg, ok := r.rt.tr.TryRecvCtrl(r.id)
		if !ok {
			return false
		}
		r.dispatch(msg)
	}
}
