// Package mpi implements an MPI-like runtime on top of the simulated
// machine: ranks are simulated processes pinned to cores, point-to-point
// messages move through the shared-memory transport (copy-in/copy-out) or
// through KNEM single-copy rendezvous, and collective operations dispatch
// to a pluggable collective component — mirroring Open MPI's COLL/BTL
// component architecture (§V-A of the paper).
//
// The runtime is intra-node only, matching the paper's scope: a single
// "world" communicator spanning all ranks on one machine.
package mpi

import (
	"fmt"
	"strconv"
	"sync"

	"repro/internal/fault"
	"repro/internal/knem"
	"repro/internal/memsim"
	"repro/internal/shm"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/tune"
)

// BTLKind selects the point-to-point transport for large messages.
type BTLKind int

const (
	// BTLSM is pure copy-in/copy-out through shared FIFOs (Open MPI SM
	// BTL, MPICH2 Nemesis).
	BTLSM BTLKind = iota
	// BTLKNEM uses KNEM single-copy rendezvous for messages above the
	// eager threshold (Open MPI SM/KNEM BTL, MPICH2 DMA LMT).
	BTLKNEM
)

func (b BTLKind) String() string {
	if b == BTLKNEM {
		return "KNEM"
	}
	return "SM"
}

// Coll is a collective component. All methods are called collectively: every
// rank of the world invokes the same operation in the same order, each
// passing its own rank handle and local buffers. Buffer conventions follow
// MPI: rooted operations ignore the non-root side's unused buffer (pass a
// zero View).
type Coll interface {
	Name() string
	Barrier(r *Rank)
	Bcast(r *Rank, v memsim.View, root int)
	// Scatter sends the i-th recv.Len-sized block of send (significant at
	// root) to rank i's recv.
	Scatter(r *Rank, send, recv memsim.View, root int)
	// Gather collects each rank's send into the root's recv, block i at
	// offset i*send.Len.
	Gather(r *Rank, send, recv memsim.View, root int)
	Allgather(r *Rank, send, recv memsim.View)
	// Alltoall sends block i of send to rank i and receives block i of
	// recv from rank i; block size is send.Len/P.
	Alltoall(r *Rank, send, recv memsim.View)
	// Vector variants: counts[i]/displs[i] give the length and offset of
	// the block exchanged with rank i, in bytes.
	Gatherv(r *Rank, send memsim.View, recv memsim.View, rcounts, rdispls []int64, root int)
	Scatterv(r *Rank, send memsim.View, scounts, sdispls []int64, recv memsim.View, root int)
	Allgatherv(r *Rank, send memsim.View, recv memsim.View, rcounts, rdispls []int64)
	Alltoallv(r *Rank, send memsim.View, scounts, sdispls []int64, recv memsim.View, rcounts, rdispls []int64)
	// Reduce combines every rank's send into the root's recv with op.
	Reduce(r *Rank, send, recv memsim.View, op ReduceOp, root int)
	// Allreduce combines and delivers the result to every rank's recv.
	Allreduce(r *Rank, send, recv memsim.View, op ReduceOp)
	// ReduceScatterBlock combines element-wise and scatters equal blocks:
	// rank i receives block i of the reduction (send is P*recv.Len).
	ReduceScatterBlock(r *Rank, send, recv memsim.View, op ReduceOp)
}

// Options configures a World.
type Options struct {
	Machine *topology.Machine
	// NP is the number of ranks; defaults to the machine's core count.
	NP int
	// Mapping pins rank i to core Mapping[i]; defaults to the identity.
	Mapping []int
	// BTL selects the large-message point-to-point transport.
	BTL BTLKind
	// KnemMin is the smallest message routed through KNEM when BTL is
	// BTLKNEM; smaller rendezvous fall back to the SM fragment pipeline.
	// It models MPICH2's LMT activation threshold (64 KiB); zero means
	// every rendezvous-sized message uses KNEM (Open MPI SM/KNEM).
	KnemMin int64
	// SHM sizes the shared-memory transport.
	SHM shm.Config
	// Coll builds the collective component once per world; nil leaves
	// collective dispatch unset (p2p-only worlds).
	Coll func(w *World) Coll
	// Stats receives counters; a fresh sink is created if nil.
	Stats *trace.Stats
	// WithData backs user allocations with real bytes (tests); phantom
	// otherwise (large benchmark sweeps).
	WithData bool
	// Timeline, when non-nil, records every memory copy as a span for
	// Gantt rendering and utilization analysis.
	Timeline *trace.Timeline
	// Fault, when non-nil and non-empty, attaches a deterministic fault
	// injector to the world: the KNEM module, the memory system, and the
	// collective components consult it. A nil or empty plan leaves every
	// code path identical to the fault-free runtime.
	Fault *fault.Plan
	// Decider, when non-nil, offers empirically tuned algorithm decisions
	// (internal/tune) to the collective components built for this world.
	// Components constructed with an all-default configuration adopt it;
	// explicitly configured ones (fixed segments, forced modes) keep
	// their settings. Nil leaves every hardcoded switch point in force.
	Decider *tune.Decider
	// Engine and Net, when non-nil, run the world on an existing simulation
	// engine and the memory system built on it for Machine instead of
	// constructing fresh ones. Both must be set together, freshly
	// constructed or Reset — the sharded sweep runner in internal/bench
	// recycles a warmed engine/net pair per worker this way, so repeated
	// cells reuse event slabs, coroutine objects, and cache-entry pools. A
	// provided Net's stats sink stands as installed by memsim.New/Reset;
	// the Stats field is ignored in that case.
	Engine *sim.Engine
	Net    *memsim.Net
}

// World is one MPI job on one machine. Worlds are carved from the
// engine's arena (sim.SlabFor) and their rank table is one dense []Rank
// from the same arena: a warmed shard rebuilds a world without heap
// allocations, reusing the previous run's rank maps, OOB envelopes, and
// transport state, and sequential-by-rank access walks contiguous
// memory.
type World struct {
	eng      *sim.Engine
	net      *memsim.Net
	tr       *shm.Transport
	kn       *knem.Module
	ranks    []Rank
	opts     Options
	coll     Coll
	body     func(r *Rank) // SPMD body for the current Run
	nextComm int

	// oobPool recycles the boxed OOB envelopes (SendOOB allocates one per
	// message otherwise). The simulation is single-threaded, so a
	// world-level pool shared by all ranks needs no locking; dispatch
	// returns each envelope after copying its fields out. The pool
	// survives arena recycling, so a reused world slot starts warm.
	oobPool []*oobCtrl
}

// NewWorld builds the runtime but does not start rank bodies; most callers
// use Run.
func NewWorld(opts Options) (*World, error) {
	if opts.Machine == nil {
		return nil, fmt.Errorf("mpi: no machine")
	}
	if opts.NP == 0 {
		opts.NP = opts.Machine.NCores()
	}
	if opts.NP < 1 || opts.NP > opts.Machine.NCores() {
		return nil, fmt.Errorf("mpi: NP=%d out of range for %d cores", opts.NP, opts.Machine.NCores())
	}
	if opts.Mapping != nil && len(opts.Mapping) != opts.NP {
		return nil, fmt.Errorf("mpi: mapping length %d != NP %d", len(opts.Mapping), opts.NP)
	}
	if (opts.Engine == nil) != (opts.Net == nil) {
		return nil, fmt.Errorf("mpi: Engine and Net must be provided together")
	}
	eng, net := opts.Engine, opts.Net
	if eng == nil {
		eng = sim.NewEngine()
		net = memsim.New(eng, opts.Machine, opts.Stats)
	} else if net.Engine() != eng || net.Machine() != opts.Machine {
		return nil, fmt.Errorf("mpi: provided Net is not built on the provided Engine and Machine")
	}
	if opts.Timeline != nil {
		net.SetTimeline(opts.Timeline)
	}
	arena := eng.Arena()
	cores := sim.SlicesFor[*topology.Core](arena).Stale(opts.NP)
	if opts.Mapping == nil {
		// Identity mapping: valid by the NP range check above, no
		// duplicate scan needed.
		m := sim.SlicesFor[int](arena).Stale(opts.NP)
		for i := range m {
			m[i] = i
			cores[i] = opts.Machine.Cores[i]
		}
		opts.Mapping = m
	} else {
		seen := make(map[int]bool, opts.NP)
		for i, c := range opts.Mapping {
			if c < 0 || c >= opts.Machine.NCores() || seen[c] {
				return nil, fmt.Errorf("mpi: bad core mapping %v", opts.Mapping)
			}
			seen[c] = true
			cores[i] = opts.Machine.Cores[c]
		}
	}
	opts.SHM.WithData = opts.WithData
	w := sim.SlabFor[World](arena).Get()
	w.eng, w.net = eng, net
	w.tr = shm.New(net, cores, opts.SHM)
	w.kn = knem.New(net)
	w.opts = opts
	w.coll, w.body = nil, nil
	w.nextComm = 1 // 0 = the world component's tag space, 1 = WorldComm
	// w.oobPool is kept: recycled envelopes stay valid across runs.
	if !opts.Fault.Empty() {
		inj := fault.NewInjector(*opts.Fault, eng, net.Stats(), opts.Timeline)
		w.kn.SetInjector(inj)
		net.SetLinkScaler(inj)
	}
	w.ranks = sim.SlicesFor[Rank](arena).Stale(opts.NP)
	for i := range w.ranks {
		initRank(&w.ranks[i], w, i)
	}
	if opts.Coll != nil {
		w.coll = opts.Coll(w)
	}
	return w, nil
}

// Run executes body once per rank (SPMD) and drives the simulation to
// completion. It returns the final simulated time.
func Run(opts Options, body func(r *Rank)) (sim.Time, *World, error) {
	w, err := NewWorld(opts)
	if err != nil {
		return 0, nil, err
	}
	w.body = body
	for i := range w.ranks {
		w.eng.SpawnArg(rankName(i), runRankBody, &w.ranks[i])
	}
	if err := w.eng.Run(); err != nil {
		return w.eng.Now(), w, err
	}
	return w.eng.Now(), w, nil
}

// runRankBody is the shared process body for every rank: SpawnArg applies
// it to the rank handle, so a mass spawn allocates no per-rank closure.
func runRankBody(p *sim.Proc, arg any) {
	r := arg.(*Rank)
	r.proc = p
	r.w.body(r)
}

// rankNames interns the "rankN" process names once per program: repeat
// cells on warmed shards respawn ranks without re-rendering names. The
// table is shared by every concurrent sweep worker, hence the lock (the
// simulation itself is single-threaded per engine).
var (
	rankNameMu sync.Mutex
	rankNames  []string
)

func rankName(i int) string {
	rankNameMu.Lock()
	defer rankNameMu.Unlock()
	for len(rankNames) <= i {
		rankNames = append(rankNames, "rank"+strconv.Itoa(len(rankNames)))
	}
	return rankNames[i]
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// Machine returns the hardware model.
func (w *World) Machine() *topology.Machine { return w.opts.Machine }

// Net returns the memory simulator.
func (w *World) Net() *memsim.Net { return w.net }

// Knem returns the node's KNEM module.
func (w *World) Knem() *knem.Module { return w.kn }

// Decider returns the tuned decision source attached to the world, or nil
// when the hardcoded switch points are in force.
func (w *World) Decider() *tune.Decider { return w.opts.Decider }

// BTL reports the world's large-message point-to-point transport.
func (w *World) BTL() BTLKind { return w.opts.BTL }

// Transport returns the shared-memory transport.
func (w *World) Transport() *shm.Transport { return w.tr }

// Engine returns the simulation engine.
func (w *World) Engine() *sim.Engine { return w.eng }

// Stats returns the counter sink.
func (w *World) Stats() *trace.Stats { return w.net.Stats() }

// Rank returns rank i's handle (for cross-rank inspection in tests).
func (w *World) Rank(i int) *Rank { return &w.ranks[i] }

// Coll returns the world's collective component.
func (w *World) Coll() Coll { return w.coll }
