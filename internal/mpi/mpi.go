// Package mpi implements an MPI-like runtime on top of the simulated
// machine: ranks are simulated processes pinned to cores, point-to-point
// messages move through the shared-memory transport (copy-in/copy-out) or
// through KNEM single-copy rendezvous, and collective operations dispatch
// to a pluggable collective component — mirroring Open MPI's COLL/BTL
// component architecture (§V-A of the paper).
//
// The runtime is intra-node only, matching the paper's scope: a single
// "world" communicator spanning all ranks on one machine.
package mpi

import (
	"fmt"
	"strconv"
	"sync"

	"repro/internal/fault"
	"repro/internal/knem"
	"repro/internal/memsim"
	"repro/internal/shm"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/tune"
)

// BTLKind selects the point-to-point transport for large messages.
type BTLKind int

const (
	// BTLSM is pure copy-in/copy-out through shared FIFOs (Open MPI SM
	// BTL, MPICH2 Nemesis).
	BTLSM BTLKind = iota
	// BTLKNEM uses KNEM single-copy rendezvous for messages above the
	// eager threshold (Open MPI SM/KNEM BTL, MPICH2 DMA LMT).
	BTLKNEM
)

func (b BTLKind) String() string {
	if b == BTLKNEM {
		return "KNEM"
	}
	return "SM"
}

// Coll is a collective component. All methods are called collectively: every
// rank of the world invokes the same operation in the same order, each
// passing its own rank handle and local buffers. Buffer conventions follow
// MPI: rooted operations ignore the non-root side's unused buffer (pass a
// zero View).
type Coll interface {
	Name() string
	Barrier(r *Rank)
	Bcast(r *Rank, v memsim.View, root int)
	// Scatter sends the i-th recv.Len-sized block of send (significant at
	// root) to rank i's recv.
	Scatter(r *Rank, send, recv memsim.View, root int)
	// Gather collects each rank's send into the root's recv, block i at
	// offset i*send.Len.
	Gather(r *Rank, send, recv memsim.View, root int)
	Allgather(r *Rank, send, recv memsim.View)
	// Alltoall sends block i of send to rank i and receives block i of
	// recv from rank i; block size is send.Len/P.
	Alltoall(r *Rank, send, recv memsim.View)
	// Vector variants: counts[i]/displs[i] give the length and offset of
	// the block exchanged with rank i, in bytes.
	Gatherv(r *Rank, send memsim.View, recv memsim.View, rcounts, rdispls []int64, root int)
	Scatterv(r *Rank, send memsim.View, scounts, sdispls []int64, recv memsim.View, root int)
	Allgatherv(r *Rank, send memsim.View, recv memsim.View, rcounts, rdispls []int64)
	Alltoallv(r *Rank, send memsim.View, scounts, sdispls []int64, recv memsim.View, rcounts, rdispls []int64)
	// Reduce combines every rank's send into the root's recv with op.
	Reduce(r *Rank, send, recv memsim.View, op ReduceOp, root int)
	// Allreduce combines and delivers the result to every rank's recv.
	Allreduce(r *Rank, send, recv memsim.View, op ReduceOp)
	// ReduceScatterBlock combines element-wise and scatters equal blocks:
	// rank i receives block i of the reduction (send is P*recv.Len).
	ReduceScatterBlock(r *Rank, send, recv memsim.View, op ReduceOp)
}

// Options configures a World.
type Options struct {
	Machine *topology.Machine
	// NP is the number of ranks; defaults to the machine's core count.
	NP int
	// Mapping pins rank i to core Mapping[i]; defaults to the identity.
	Mapping []int
	// BTL selects the large-message point-to-point transport.
	BTL BTLKind
	// KnemMin is the smallest message routed through KNEM when BTL is
	// BTLKNEM; smaller rendezvous fall back to the SM fragment pipeline.
	// It models MPICH2's LMT activation threshold (64 KiB); zero means
	// every rendezvous-sized message uses KNEM (Open MPI SM/KNEM).
	KnemMin int64
	// SHM sizes the shared-memory transport.
	SHM shm.Config
	// Coll builds the collective component once per world; nil leaves
	// collective dispatch unset (p2p-only worlds).
	Coll func(w *World) Coll
	// Stats receives counters; a fresh sink is created if nil.
	Stats *trace.Stats
	// WithData backs user allocations with real bytes (tests); phantom
	// otherwise (large benchmark sweeps).
	WithData bool
	// Timeline, when non-nil, records every memory copy as a span for
	// Gantt rendering and utilization analysis.
	Timeline *trace.Timeline
	// Fault, when non-nil and non-empty, attaches a deterministic fault
	// injector to the world: the KNEM module, the memory system, and the
	// collective components consult it. A nil or empty plan leaves every
	// code path identical to the fault-free runtime.
	Fault *fault.Plan
	// Decider, when non-nil, offers empirically tuned algorithm decisions
	// (internal/tune) to the collective components built for this world.
	// Components constructed with an all-default configuration adopt it;
	// explicitly configured ones (fixed segments, forced modes) keep
	// their settings. Nil leaves every hardcoded switch point in force.
	Decider *tune.Decider
	// Engine and Net, when non-nil, run the world on an existing simulation
	// engine and the memory system built on it for Machine instead of
	// constructing fresh ones. Both must be set together, freshly
	// constructed or Reset — the sharded sweep runner in internal/bench
	// recycles a warmed engine/net pair per worker this way, so repeated
	// cells reuse event slabs, coroutine objects, and cache-entry pools. A
	// provided Net's stats sink stands as installed by memsim.New/Reset;
	// the Stats field is ignored in that case.
	Engine *sim.Engine
	Net    *memsim.Net
	// Part, when non-nil, splits the world across several engines run
	// under a conservative time-window group (sim.Group): each rank lives
	// on its partition's engine and memory-system slice, and control
	// messages crossing partitions are exported to the coordinator, which
	// re-injects them at their exact delivery timestamps between windows.
	// Mutually exclusive with Engine/Net, Fault, and Timeline.
	Part *PartitionSpec
}

// PartitionSpec describes a partitioned world. The caller (internal/bench)
// compiles the partitioning: per-partition engines, memsim partition views
// (memsim.Net.NewPartition) index-aligned with the group's engine order,
// and the rank→partition map.
type PartitionSpec struct {
	// Of maps rank id to partition index.
	Of []int32
	// Engines and Nets are index-aligned with each other and with the
	// engine order Group was built with; Nets[i] must be built on
	// Engines[i].
	Engines []*sim.Engine
	Nets    []*memsim.Net
	// Group coordinates the engines. NewWorld installs one importer per
	// engine on it; Run drives it instead of a lone engine.
	Group *sim.Group
}

// World is one MPI job on one machine. Worlds are carved from the
// engine's arena (sim.SlabFor) and their rank table is one dense []Rank
// from the same arena: a warmed shard rebuilds a world without heap
// allocations, reusing the previous run's rank maps, OOB envelopes, and
// transport state, and sequential-by-rank access walks contiguous
// memory.
type World struct {
	// parts holds one runtime slice per partition; an unpartitioned world
	// has exactly one, and the world-level accessors answer from parts[0].
	parts    []partRT
	ranks    []Rank
	opts     Options
	coll     Coll
	body     func(r *Rank) // SPMD body for the current Run
	nextComm int
}

// partRT is one partition's runtime: its engine, its memory-system view,
// its transport shard, and its KNEM module. Every rank holds a pointer to
// its partition's partRT and reaches the fabric exclusively through it, so
// concurrent partitions never share mutable transport state.
type partRT struct {
	eng *sim.Engine
	net *memsim.Net
	tr  *shm.Transport
	kn  *knem.Module

	// oobPool recycles the boxed OOB envelopes (SendOOB allocates one per
	// message otherwise). Each partition's engine is single-threaded, so a
	// per-partition pool needs no locking; dispatch returns each envelope
	// to the *receiving* rank's pool after copying its fields out (an
	// envelope may migrate pools by crossing partitions — safe, because a
	// pool is only ever touched by its own engine). The pool survives
	// arena recycling, so a reused world slot starts warm.
	oobPool []*oobCtrl
}

// ctrlXfer is one control message crossing partitions: staged as a group
// export by the sending transport, re-injected into the owning transport's
// mailbox by the importer at its exact delivery time.
type ctrlXfer struct {
	to int
	m  shm.Msg
}

// NewWorld builds the runtime but does not start rank bodies; most callers
// use Run.
func NewWorld(opts Options) (*World, error) {
	if opts.Machine == nil {
		return nil, fmt.Errorf("mpi: no machine")
	}
	if opts.NP == 0 {
		opts.NP = opts.Machine.NCores()
	}
	if opts.NP < 1 || opts.NP > opts.Machine.NCores() {
		return nil, fmt.Errorf("mpi: NP=%d out of range for %d cores", opts.NP, opts.Machine.NCores())
	}
	if opts.Mapping != nil && len(opts.Mapping) != opts.NP {
		return nil, fmt.Errorf("mpi: mapping length %d != NP %d", len(opts.Mapping), opts.NP)
	}
	if (opts.Engine == nil) != (opts.Net == nil) {
		return nil, fmt.Errorf("mpi: Engine and Net must be provided together")
	}
	if ps := opts.Part; ps != nil {
		if opts.Engine != nil || opts.Net != nil {
			return nil, fmt.Errorf("mpi: Part is mutually exclusive with Engine/Net")
		}
		if ps.Group == nil || len(ps.Engines) == 0 || len(ps.Engines) != len(ps.Nets) {
			return nil, fmt.Errorf("mpi: Part needs a Group and matching Engines/Nets")
		}
		if len(ps.Of) != opts.NP {
			return nil, fmt.Errorf("mpi: Part.Of length %d != NP %d", len(ps.Of), opts.NP)
		}
		for i, pi := range ps.Of {
			if pi < 0 || int(pi) >= len(ps.Engines) {
				return nil, fmt.Errorf("mpi: rank %d assigned to invalid partition %d", i, pi)
			}
		}
		for i, pn := range ps.Nets {
			if pn.Engine() != ps.Engines[i] || pn.Machine() != opts.Machine {
				return nil, fmt.Errorf("mpi: partition net %d is not built on its engine and the machine", i)
			}
		}
		if !opts.Fault.Empty() {
			return nil, fmt.Errorf("mpi: fault injection is not supported on a partitioned world")
		}
		if opts.Timeline != nil {
			return nil, fmt.Errorf("mpi: timeline capture is not supported on a partitioned world")
		}
	}
	eng, net := opts.Engine, opts.Net
	if opts.Part != nil {
		eng, net = opts.Part.Engines[0], opts.Part.Nets[0]
	} else if eng == nil {
		eng = sim.NewEngine()
		net = memsim.New(eng, opts.Machine, opts.Stats)
	} else if net.Engine() != eng || net.Machine() != opts.Machine {
		return nil, fmt.Errorf("mpi: provided Net is not built on the provided Engine and Machine")
	}
	if opts.Timeline != nil {
		net.SetTimeline(opts.Timeline)
	}
	arena := eng.Arena()
	cores := sim.SlicesFor[*topology.Core](arena).Stale(opts.NP)
	if opts.Mapping == nil {
		// Identity mapping: valid by the NP range check above, no
		// duplicate scan needed.
		m := sim.SlicesFor[int](arena).Stale(opts.NP)
		for i := range m {
			m[i] = i
			cores[i] = opts.Machine.Cores[i]
		}
		opts.Mapping = m
	} else {
		seen := make(map[int]bool, opts.NP)
		for i, c := range opts.Mapping {
			if c < 0 || c >= opts.Machine.NCores() || seen[c] {
				return nil, fmt.Errorf("mpi: bad core mapping %v", opts.Mapping)
			}
			seen[c] = true
			cores[i] = opts.Machine.Cores[c]
		}
	}
	opts.SHM.WithData = opts.WithData
	w := sim.SlabFor[World](arena).Get()
	w.opts = opts
	w.coll, w.body = nil, nil
	w.nextComm = 1 // 0 = the world component's tag space, 1 = WorldComm
	npart := 1
	if opts.Part != nil {
		npart = len(opts.Part.Engines)
	}
	// Stale slots keep the previous run's oobPool: recycled envelopes stay
	// valid across runs.
	w.parts = sim.SlicesFor[partRT](arena).Stale(npart)
	if opts.Part == nil {
		p := &w.parts[0]
		p.eng, p.net = eng, net
		p.tr = shm.New(net, cores, opts.SHM)
		p.kn = knem.New(net)
		if !opts.Fault.Empty() {
			inj := fault.NewInjector(*opts.Fault, eng, net.Stats(), opts.Timeline)
			p.kn.SetInjector(inj)
			net.SetLinkScaler(inj)
		}
	} else {
		ps := opts.Part
		of, g := ps.Of, ps.Group
		for i := range w.parts {
			p := &w.parts[i]
			p.eng, p.net = ps.Engines[i], ps.Nets[i]
			src := i
			p.tr = shm.NewPartitioned(p.net, cores, opts.SHM, int32(i), of,
				func(to int, at sim.Time, m shm.Msg) {
					g.Stage(src, sim.Export{Dest: int(of[to]), At: at, Data: &ctrlXfer{to: to, m: m}})
				})
			if i == 0 {
				p.kn = knem.New(p.net)
			} else {
				// Partitions share one region table (single-writer by the
				// collective envelope); stats and view pools stay local.
				p.kn = knem.NewLinked(p.net, w.parts[0].kn)
			}
			g.SetImporter(src, func(at sim.Time, data any) {
				x := data.(*ctrlXfer)
				p.tr.InjectCtrlAt(at, x.to, x.m)
			})
		}
	}
	w.ranks = sim.SlicesFor[Rank](arena).Stale(opts.NP)
	for i := range w.ranks {
		rt := &w.parts[0]
		if opts.Part != nil {
			rt = &w.parts[opts.Part.Of[i]]
		}
		initRank(&w.ranks[i], w, rt, i)
	}
	if opts.Coll != nil {
		w.coll = opts.Coll(w)
	}
	return w, nil
}

// Run executes body once per rank (SPMD) and drives the simulation to
// completion. It returns the final simulated time.
func Run(opts Options, body func(r *Rank)) (sim.Time, *World, error) {
	w, err := NewWorld(opts)
	if err != nil {
		return 0, nil, err
	}
	w.body = body
	// Ranks spawn in global rank order so two ranks of one partition keep
	// the same relative spawn sequence a single engine would give them.
	for i := range w.ranks {
		r := &w.ranks[i]
		r.rt.eng.SpawnArg(rankName(i), runRankBody, r)
	}
	if w.opts.Part != nil {
		err = w.opts.Part.Group.Run()
	} else {
		err = w.parts[0].eng.Run()
	}
	return w.now(), w, err
}

// now returns the latest time reached by any partition engine (the lone
// engine's clock on an unpartitioned world).
func (w *World) now() sim.Time {
	t := w.parts[0].eng.Now()
	for i := 1; i < len(w.parts); i++ {
		if n := w.parts[i].eng.Now(); n > t {
			t = n
		}
	}
	return t
}

// runRankBody is the shared process body for every rank: SpawnArg applies
// it to the rank handle, so a mass spawn allocates no per-rank closure.
func runRankBody(p *sim.Proc, arg any) {
	r := arg.(*Rank)
	r.proc = p
	r.w.body(r)
}

// rankNames interns the "rankN" process names once per program: repeat
// cells on warmed shards respawn ranks without re-rendering names. The
// table is shared by every concurrent sweep worker, hence the lock (the
// simulation itself is single-threaded per engine).
var (
	rankNameMu sync.Mutex
	rankNames  []string
)

func rankName(i int) string {
	rankNameMu.Lock()
	defer rankNameMu.Unlock()
	for len(rankNames) <= i {
		rankNames = append(rankNames, "rank"+strconv.Itoa(len(rankNames)))
	}
	return rankNames[i]
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// Machine returns the hardware model.
func (w *World) Machine() *topology.Machine { return w.opts.Machine }

// Net returns the memory simulator (partition 0's view on a partitioned
// world).
func (w *World) Net() *memsim.Net { return w.parts[0].net }

// Knem returns the node's KNEM module (partition 0's on a partitioned
// world; all partitions share one region table).
func (w *World) Knem() *knem.Module { return w.parts[0].kn }

// Decider returns the tuned decision source attached to the world, or nil
// when the hardcoded switch points are in force.
func (w *World) Decider() *tune.Decider { return w.opts.Decider }

// BTL reports the world's large-message point-to-point transport.
func (w *World) BTL() BTLKind { return w.opts.BTL }

// Transport returns the shared-memory transport (partition 0's shard on a
// partitioned world).
func (w *World) Transport() *shm.Transport { return w.parts[0].tr }

// Engine returns the simulation engine (partition 0's on a partitioned
// world).
func (w *World) Engine() *sim.Engine { return w.parts[0].eng }

// Stats returns the counter sink (partition 0's on a partitioned world;
// per-partition sinks are merged by the caller afterwards).
func (w *World) Stats() *trace.Stats { return w.parts[0].net.Stats() }

// Rank returns rank i's handle (for cross-rank inspection in tests).
func (w *World) Rank(i int) *Rank { return &w.ranks[i] }

// Coll returns the world's collective component.
func (w *World) Coll() Coll { return w.coll }
