package mpi

import (
	"encoding/binary"
	"math"
	"testing"
	"testing/quick"
)

func packI32(vals ...int32) []byte {
	b := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(b[i*4:], uint32(v))
	}
	return b
}

func unpackI32(b []byte) []int32 {
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

func TestIntOps(t *testing.T) {
	dst := packI32(1, -5, 100, 0)
	src := packI32(2, -7, 50, 0)

	d := append([]byte(nil), dst...)
	OpSumInt32.Apply(d, src)
	if got := unpackI32(d); got[0] != 3 || got[1] != -12 || got[2] != 150 || got[3] != 0 {
		t.Fatalf("sum = %v", got)
	}
	d = append([]byte(nil), dst...)
	OpMaxInt32.Apply(d, src)
	if got := unpackI32(d); got[0] != 2 || got[1] != -5 || got[2] != 100 || got[3] != 0 {
		t.Fatalf("max = %v", got)
	}
	d = append([]byte(nil), dst...)
	OpMinInt32.Apply(d, src)
	if got := unpackI32(d); got[0] != 1 || got[1] != -7 || got[2] != 50 || got[3] != 0 {
		t.Fatalf("min = %v", got)
	}
}

func TestFloatAndBandOps(t *testing.T) {
	d := make([]byte, 16)
	s := make([]byte, 16)
	binary.LittleEndian.PutUint64(d, math.Float64bits(1.5))
	binary.LittleEndian.PutUint64(d[8:], math.Float64bits(-2.0))
	binary.LittleEndian.PutUint64(s, math.Float64bits(2.25))
	binary.LittleEndian.PutUint64(s[8:], math.Float64bits(0.5))
	OpSumFloat64.Apply(d, s)
	if v := math.Float64frombits(binary.LittleEndian.Uint64(d)); v != 3.75 {
		t.Fatalf("fsum[0] = %g", v)
	}
	if v := math.Float64frombits(binary.LittleEndian.Uint64(d[8:])); v != -1.5 {
		t.Fatalf("fsum[1] = %g", v)
	}

	bd := []byte{0xFF, 0x0F, 0xAA}
	bs := []byte{0xF0, 0xFF, 0x0F}
	OpBandUint8.Apply(bd, bs)
	if bd[0] != 0xF0 || bd[1] != 0x0F || bd[2] != 0x0A {
		t.Fatalf("band = %v", bd)
	}
}

func TestOpMetadata(t *testing.T) {
	cases := []struct {
		op   ReduceOp
		name string
		elem int64
	}{
		{OpSumInt32, "sum_int32", 4},
		{OpMaxInt32, "max_int32", 4},
		{OpMinInt32, "min_int32", 4},
		{OpSumFloat64, "sum_float64", 8},
		{OpBandUint8, "band_uint8", 1},
	}
	for _, c := range cases {
		if c.op.Name() != c.name || c.op.ElemSize() != c.elem {
			t.Errorf("%s: name=%q elem=%d", c.name, c.op.Name(), c.op.ElemSize())
		}
	}
}

// Property: the integer operators are associative and commutative on
// random vectors (the freedom the collective algorithms rely on).
func TestOpAlgebraProperty(t *testing.T) {
	f := func(a, b, c []int32) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if len(c) < n {
			n = len(c)
		}
		if n == 0 {
			return true
		}
		a, b, c = a[:n], b[:n], c[:n]
		for _, op := range []ReduceOp{OpSumInt32, OpMaxInt32, OpMinInt32} {
			// (a op b) op c == a op (b op c)
			left := packI32(a...)
			op.Apply(left, packI32(b...))
			op.Apply(left, packI32(c...))
			bc := packI32(b...)
			op.Apply(bc, packI32(c...))
			right := packI32(a...)
			op.Apply(right, bc)
			for i := range left {
				if left[i] != right[i] {
					return false
				}
			}
			// a op b == b op a
			ab := packI32(a...)
			op.Apply(ab, packI32(b...))
			ba := packI32(b...)
			op.Apply(ba, packI32(a...))
			for i := range ab {
				if ab[i] != ba[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
