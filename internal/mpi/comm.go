package mpi

import (
	"fmt"
	"sort"

	"repro/internal/memsim"
)

// Comm is a sub-communicator: an ordered subset of the world's ranks with
// its own rank numbering and a private tag space (so concurrent
// collectives on disjoint communicators never interfere). The world's
// pluggable collective component serves the world communicator through the
// Rank methods; communicator collectives run a fixed menu of the generic
// algorithms (binomial, pipelined chain, ring, recursive doubling) through
// the Ranker abstraction — see CommRank.Bcast and friends.
//
// Communicators are created collectively with Split (MPI_Comm_split
// semantics): every member of the parent calls it with a color and key.
type Comm struct {
	w       *World
	id      int
	members []int       // world ranks in comm-rank order
	index   map[int]int // world rank -> comm rank
}

// commTagStride spaces the tag namespaces of distinct communicators; it
// exceeds the world component's collective-tag range (collTagMod * 16) so
// the spaces are disjoint. Comm id 0 is reserved for the world component's
// own tags; WorldComm uses id 1; Split-created communicators get ids >= 2.
const commTagStride = 1 << 25

func newComm(w *World, id int, members []int) *Comm {
	c := &Comm{w: w, id: id, members: members, index: make(map[int]int, len(members))}
	for i, m := range members {
		c.index[m] = i
	}
	return c
}

// NewComm creates a communicator over the given world ranks (in comm-rank
// order) without the collective Split exchange. It is meant for component
// constructors that carve the world into statically known groups — e.g.
// the hierarchical family's per-node and leader communicators — before any
// rank body runs; each call allocates a fresh disjoint tag space. Members
// must be distinct, valid world ranks.
func (w *World) NewComm(members []int) *Comm {
	if len(members) == 0 {
		panic("mpi: NewComm with no members")
	}
	seen := make(map[int]bool, len(members))
	for _, m := range members {
		if m < 0 || m >= len(w.ranks) || seen[m] {
			panic(fmt.Sprintf("mpi: NewComm with bad members %v", members))
		}
		seen[m] = true
	}
	w.nextComm++
	return newComm(w, w.nextComm, append([]int(nil), members...))
}

// Size returns the number of members.
func (c *Comm) Size() int { return len(c.members) }

// Members returns the world ranks, in comm-rank order.
func (c *Comm) Members() []int { return append([]int(nil), c.members...) }

// WorldRank translates a comm rank to a world rank.
func (c *Comm) WorldRank(commRank int) int { return c.members[commRank] }

// Rank binds the communicator to the calling rank, yielding the handle
// its members use for communication. It panics if r is not a member.
func (c *Comm) Rank(r *Rank) *CommRank {
	me, ok := c.index[r.id]
	if !ok {
		panic(fmt.Sprintf("mpi: rank %d is not a member of this communicator", r.id))
	}
	return &CommRank{c: c, r: r, me: me}
}

type splitReq struct {
	color, key, rank int
}

type splitResp struct {
	id      int
	members []int
}

// Split partitions the parent communicator: members calling with the same
// color form a new communicator, ordered by key (ties by parent rank).
// Every member must call Split; each receives its own new communicator
// (MPI_Comm_split). A negative color returns nil for that caller, but the
// caller still participates in the collective.
func (c *Comm) Split(r *Rank, color, key int) *Comm {
	me, ok := c.index[r.id]
	if !ok {
		panic(fmt.Sprintf("mpi: rank %d splitting a communicator it is not in", r.id))
	}
	tag := commSplitTagBase + c.id*16
	coord := c.members[0]
	if me != 0 {
		r.SendOOB(coord, tag, splitReq{color: color, key: key, rank: r.id})
		resp, _ := r.RecvOOB(coord, tag+1)
		sr := resp.(splitResp)
		if sr.members == nil {
			return nil
		}
		return newComm(c.w, sr.id, sr.members)
	}
	// Coordinator: gather (color, key) from every member, form the groups,
	// assign globally consistent ids, and answer everyone.
	reqs := make([]splitReq, c.Size())
	reqs[0] = splitReq{color: color, key: key, rank: r.id}
	for i := 1; i < c.Size(); i++ {
		m, _ := r.RecvOOB(AnySource, tag)
		sr := m.(splitReq)
		reqs[c.index[sr.rank]] = sr
	}
	groups := map[int][]splitReq{}
	var colors []int
	for _, q := range reqs {
		if q.color < 0 {
			continue
		}
		if _, seen := groups[q.color]; !seen {
			colors = append(colors, q.color)
		}
		groups[q.color] = append(groups[q.color], q)
	}
	sort.Ints(colors)
	assigned := map[int]splitResp{} // world rank -> response
	for _, col := range colors {
		g := groups[col]
		sort.Slice(g, func(i, j int) bool {
			if g[i].key != g[j].key {
				return g[i].key < g[j].key
			}
			return g[i].rank < g[j].rank
		})
		members := make([]int, len(g))
		for i, q := range g {
			members[i] = q.rank
		}
		c.w.nextComm++
		id := c.w.nextComm
		for _, q := range g {
			assigned[q.rank] = splitResp{id: id, members: members}
		}
	}
	for i := 1; i < c.Size(); i++ {
		r.SendOOB(c.members[i], tag+1, assigned[c.members[i]])
	}
	mine, ok := assigned[r.id]
	if !ok {
		return nil
	}
	return newComm(c.w, mine.id, mine.members)
}

const commSplitTagBase = 1 << 27

// WorldComm returns the communicator spanning every rank. Collectives on
// it run the generic algorithms of package coll; the world's pluggable
// component remains available through the Rank collective methods.
func (w *World) WorldComm() *Comm {
	members := make([]int, w.Size())
	for i := range members {
		members[i] = i
	}
	return newComm(w, 1, members)
}

// CommRank is one member's handle on a communicator; it implements Ranker
// with comm-local numbering and a comm-private tag space, so every generic
// algorithm in package coll runs unchanged on it.
type CommRank struct {
	c       *Comm
	r       *Rank
	me      int
	collSeq int64
}

var _ Ranker = (*CommRank)(nil)

// ID returns the comm-local rank.
func (g *CommRank) ID() int { return g.me }

// Size returns the communicator size.
func (g *CommRank) Size() int { return g.c.Size() }

// Comm returns the communicator.
func (g *CommRank) Comm() *Comm { return g.c }

// World returns the underlying world rank handle.
func (g *CommRank) World() *Rank { return g.r }

func (g *CommRank) xlate(tag int) int { return tag + g.c.id*commTagStride }

// Isend sends to a comm rank.
func (g *CommRank) Isend(to, tag int, v memsim.View) *Request {
	return g.r.Isend(g.c.members[to], g.xlate(tag), v)
}

// Irecv receives from a comm rank (or AnySource within the comm — matched
// by the comm-scoped tag).
func (g *CommRank) Irecv(src, tag int, v memsim.View) *Request {
	wsrc := AnySource
	if src != AnySource {
		wsrc = g.c.members[src]
	}
	return g.r.Irecv(wsrc, g.xlate(tag), v)
}

// Send is the blocking send.
func (g *CommRank) Send(to, tag int, v memsim.View) { g.r.Wait(g.Isend(to, tag, v)) }

// Recv is the blocking receive; the returned source is comm-local.
func (g *CommRank) Recv(src, tag int, v memsim.View) (int, int64) {
	q := g.Irecv(src, tag, v)
	g.r.Wait(q)
	return g.c.index[q.matchedFrom], q.total
}

// Sendrecv pairs a send and a receive.
func (g *CommRank) Sendrecv(to, stag int, sv memsim.View, from, rtag int, rv memsim.View) {
	q := g.Irecv(from, rtag, rv)
	s := g.Isend(to, stag, sv)
	g.r.Wait(s, q)
}

// Wait forwards to the world rank's progress engine.
func (g *CommRank) Wait(reqs ...*Request) { g.r.Wait(reqs...) }

// LocalCopy forwards to the world rank.
func (g *CommRank) LocalCopy(dst, src memsim.View) { g.r.LocalCopy(dst, src) }

// Alloc forwards to the world rank.
func (g *CommRank) Alloc(size int64) *memsim.Buffer { return g.r.Alloc(size) }

// Compute forwards to the world rank.
func (g *CommRank) Compute(ops float64) { g.r.Compute(ops) }

// ApplyReduce forwards to the world rank.
func (g *CommRank) ApplyReduce(op ReduceOp, dst, src memsim.View) { g.r.ApplyReduce(op, dst, src) }

// SendOOB sends an out-of-band value to a comm rank.
func (g *CommRank) SendOOB(to, tag int, data any) {
	g.r.SendOOB(g.c.members[to], g.xlate(tag), data)
}

// RecvOOB receives an out-of-band value; the returned source is comm-local.
func (g *CommRank) RecvOOB(src, tag int) (any, int) {
	wsrc := AnySource
	if src != AnySource {
		wsrc = g.c.members[src]
	}
	data, from := g.r.RecvOOB(wsrc, g.xlate(tag))
	return data, g.c.index[from]
}

// CollTag returns a fresh comm-scoped collective tag. As with the world
// communicator, collective calls must be identically ordered on every
// member.
func (g *CommRank) CollTag() int {
	g.collSeq++
	return collTagBase + g.c.id*commTagStride + int(g.collSeq%collTagMod)*16
}
