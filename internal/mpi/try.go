package mpi

import (
	"fmt"

	"repro/internal/memsim"
)

// Error-returning collective entry points. The component interface and the
// plain Rank methods keep MPI's abort-on-error discipline (a failed
// collective panics the simulation); the Try variants convert that abort
// into an error so harnesses and applications can observe, report, and
// tear down cleanly instead of crashing the process.
//
// A returned error still means the world's collective state is broken —
// peers may be blocked inside the failed operation — so the only safe
// follow-ups are inspection and shutdown, not further collectives.

// CollError reports a collective operation that aborted on this rank.
type CollError struct {
	Op     string // operation name, e.g. "Bcast"
	Rank   int    // rank that observed the abort
	Reason any    // the recovered panic value
}

func (e *CollError) Error() string {
	return fmt.Sprintf("mpi: %s aborted on rank %d: %v", e.Op, e.Rank, e.Reason)
}

// tryColl runs fn, converting a collective abort into a CollError.
// Only string and error panics are captured: those are the runtime's and
// the components' abort values. Anything else (in particular the
// simulator's internal control panics) propagates untouched.
func (r *Rank) tryColl(op string, fn func()) (err error) {
	defer func() {
		switch p := recover(); p.(type) {
		case nil:
		case string, error:
			err = &CollError{Op: op, Rank: r.id, Reason: p}
		default:
			panic(p)
		}
	}()
	fn()
	return nil
}

// TryBarrier is Barrier returning an error instead of aborting.
func (r *Rank) TryBarrier() error {
	return r.tryColl("Barrier", func() { r.Barrier() })
}

// TryBcast is Bcast returning an error instead of aborting.
func (r *Rank) TryBcast(v memsim.View, root int) error {
	return r.tryColl("Bcast", func() { r.Bcast(v, root) })
}

// TryScatter is Scatter returning an error instead of aborting.
func (r *Rank) TryScatter(send, recv memsim.View, root int) error {
	return r.tryColl("Scatter", func() { r.Scatter(send, recv, root) })
}

// TryGather is Gather returning an error instead of aborting.
func (r *Rank) TryGather(send, recv memsim.View, root int) error {
	return r.tryColl("Gather", func() { r.Gather(send, recv, root) })
}

// TryAllgather is Allgather returning an error instead of aborting.
func (r *Rank) TryAllgather(send, recv memsim.View) error {
	return r.tryColl("Allgather", func() { r.Allgather(send, recv) })
}

// TryAlltoall is Alltoall returning an error instead of aborting.
func (r *Rank) TryAlltoall(send, recv memsim.View) error {
	return r.tryColl("Alltoall", func() { r.Alltoall(send, recv) })
}

// TryReduce is Reduce returning an error instead of aborting.
func (r *Rank) TryReduce(send, recv memsim.View, op ReduceOp, root int) error {
	return r.tryColl("Reduce", func() { r.Reduce(send, recv, op, root) })
}

// TryAllreduce is Allreduce returning an error instead of aborting.
func (r *Rank) TryAllreduce(send, recv memsim.View, op ReduceOp) error {
	return r.tryColl("Allreduce", func() { r.Allreduce(send, recv, op) })
}
