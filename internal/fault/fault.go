// Package fault provides a deterministic, seed-driven fault injector for
// the simulated KNEM stack. A Plan describes which faults to inject —
// pinned-page exhaustion and transient failures in region registration,
// cookie invalidation and transient failures in copies, DMA engine stalls
// and failures, degraded links, straggler ranks — and an Injector executes
// it against the counters of one simulation run.
//
// Determinism: the simulation engine is single-threaded in effect, so
// every injector decision happens in a globally ordered sequence of calls.
// Counter-based triggers (every Nth create/copy) are exactly reproducible;
// probability-based triggers draw from a rand.Rand seeded by Plan.Seed and
// are reproducible for a fixed seed and workload. The injector never reads
// wall-clock time or global randomness.
//
// Layering: this package depends only on trace and sim, so the layers it
// instruments (knem, memsim, mpi, core) can import it without cycles.
// knem consults the injector inside Create/Copy/CopyDMA, memsim consults
// it for link bandwidth scaling, and the collective component consults it
// for retry policy and straggler delays.
package fault

import (
	"fmt"
	"math/rand"

	"repro/internal/sim"
	"repro/internal/trace"
)

// Plan describes the faults to inject during one run. The zero value
// injects nothing.
type Plan struct {
	// Seed drives the probability-based triggers. Two runs with the same
	// plan and workload produce identical fault sequences.
	Seed int64

	// PinnedPageBudget caps the number of concurrently pinned pages
	// across all live regions; a Create that would exceed it fails with
	// knem.ErrNoMem (the simulated ENOMEM from get_user_pages). 0 means
	// unlimited.
	PinnedPageBudget int64
	// CreateFailEvery makes every Nth Create fail with knem.ErrNoMem
	// (counted across the whole run). 0 disables.
	CreateFailEvery int
	// CreateTransient is the probability that a Create fails with
	// knem.ErrAgain (a retry may succeed).
	CreateTransient float64

	// CopyTransient is the probability that a Copy attempt fails with
	// knem.ErrAgain.
	CopyTransient float64
	// InvalidateEvery destroys the target region of every Nth Copy before
	// the copy runs, yielding knem.ErrInvalidCookie — a cookie invalidated
	// mid-collective. 0 disables.
	InvalidateEvery int

	// DMAFailEvery makes every Nth CopyDMA submission fail with
	// knem.ErrDMA. 0 disables.
	DMAFailEvery int
	// DMAStallEvery stalls every Nth CopyDMA submission by DMAStall
	// seconds before it is accepted (a busy or throttled engine).
	DMAStallEvery int
	// DMAStall is the stall duration in seconds (default 10 µs when
	// DMAStallEvery is set).
	DMAStall float64

	// LinkSlowdown scales the bandwidth of named machine links by a
	// factor in (0, 1] — degraded interconnects, thermally throttled
	// memory buses, or (core engine links are links too) slow cores.
	LinkSlowdown map[string]float64
	// Straggler delays the named ranks by the given seconds at every
	// collective entry, modelling uneven per-rank progress.
	Straggler map[int]float64
	// LeaderDown marks world ranks as ineligible to act as node leaders
	// in hierarchical collectives: the hierarchical component re-elects
	// around them at construction, modelling a node whose designated
	// leader process failed before the job's collective phase.
	LeaderDown map[int]bool

	// MaxRetries bounds the collective component's retries of a transient
	// fault before it degrades the operation (default 3).
	MaxRetries int
	// RetryBackoff is the first retry delay in seconds, doubled per
	// attempt (default 1 µs).
	RetryBackoff float64
}

// Empty reports whether the plan injects no faults at all (retry policy
// and seed alone do not count).
func (p *Plan) Empty() bool {
	return p == nil ||
		(p.PinnedPageBudget == 0 && p.CreateFailEvery == 0 && p.CreateTransient == 0 &&
			p.CopyTransient == 0 && p.InvalidateEvery == 0 &&
			p.DMAFailEvery == 0 && p.DMAStallEvery == 0 &&
			len(p.LinkSlowdown) == 0 && len(p.Straggler) == 0 &&
			len(p.LeaderDown) == 0)
}

// Outcome is the injector's verdict on one module call.
type Outcome int

const (
	// OK lets the call proceed normally.
	OK Outcome = iota
	// Transient fails the call with a retryable error (EAGAIN).
	Transient
	// NoMem fails a Create with the non-retryable pinned-page error.
	NoMem
	// Invalidated destroys the target region before the copy.
	Invalidated
)

// Clock exposes the simulation time used to stamp fault spans; *sim.Engine
// implements it.
type Clock interface {
	Now() sim.Time
}

// Injector executes a Plan against one run. It is not safe for concurrent
// use; the simulator is single-threaded in effect.
type Injector struct {
	plan  Plan
	rng   *rand.Rand
	clock Clock
	stats *trace.Stats
	tl    *trace.Timeline

	nCreate int64
	nCopy   int64
	nDMA    int64
	pinned  int64
}

// NewInjector builds an injector for the given plan. stats must be the
// run's counter sink; clock and tl may be nil (no spans recorded).
func NewInjector(plan Plan, clock Clock, stats *trace.Stats, tl *trace.Timeline) *Injector {
	if stats == nil {
		stats = &trace.Stats{}
	}
	return &Injector{
		plan:  plan,
		rng:   rand.New(rand.NewSource(plan.Seed)),
		clock: clock,
		stats: stats,
		tl:    tl,
	}
}

// Plan returns the plan being executed.
func (in *Injector) Plan() Plan { return in.plan }

// PinnedPages returns the pages currently accounted against the budget.
func (in *Injector) PinnedPages() int64 { return in.pinned }

// note records one injected fault in the counters and on the timeline.
func (in *Injector) note(kind, detail string) {
	in.stats.FaultsInjected++
	in.Event(kind, detail)
}

// Event records a zero-width span on the "faults" lane (also used by the
// collective component for fallback and resend events).
func (in *Injector) Event(kind, detail string) {
	if in.tl == nil {
		return
	}
	now := 0.0
	if in.clock != nil {
		now = in.clock.Now()
	}
	in.tl.Add("faults", kind, now, now, detail)
}

// Create decides the fate of the next region registration of the given
// page count and reserves the pages on success. Release must be called
// with the same count when the region is destroyed.
func (in *Injector) Create(pages int64) Outcome {
	in.nCreate++
	if n := in.plan.CreateFailEvery; n > 0 && in.nCreate%int64(n) == 0 {
		in.stats.CreateFaults++
		in.note("create-enomem", fmt.Sprintf("create #%d", in.nCreate))
		return NoMem
	}
	if p := in.plan.CreateTransient; p > 0 && in.rng.Float64() < p {
		in.stats.CreateFaults++
		in.note("create-eagain", fmt.Sprintf("create #%d", in.nCreate))
		return Transient
	}
	if b := in.plan.PinnedPageBudget; b > 0 && in.pinned+pages > b {
		in.stats.CreateFaults++
		in.note("create-enomem", fmt.Sprintf("budget: %d+%d > %d pages", in.pinned, pages, b))
		return NoMem
	}
	in.pinned += pages
	return OK
}

// Release returns a destroyed region's pages to the budget.
func (in *Injector) Release(pages int64) {
	in.pinned -= pages
	if in.pinned < 0 {
		in.pinned = 0
	}
}

// Copy decides the fate of the next region copy.
func (in *Injector) Copy() Outcome {
	in.nCopy++
	if n := in.plan.InvalidateEvery; n > 0 && in.nCopy%int64(n) == 0 {
		in.stats.CopyFaults++
		in.note("cookie-invalidated", fmt.Sprintf("copy #%d", in.nCopy))
		return Invalidated
	}
	if p := in.plan.CopyTransient; p > 0 && in.rng.Float64() < p {
		in.stats.CopyFaults++
		in.note("copy-eagain", fmt.Sprintf("copy #%d", in.nCopy))
		return Transient
	}
	return OK
}

// DMA decides the fate of the next DMA submission: an extra stall before
// acceptance (0 for none) and whether the submission fails outright.
func (in *Injector) DMA() (stall float64, failed bool) {
	in.nDMA++
	if n := in.plan.DMAFailEvery; n > 0 && in.nDMA%int64(n) == 0 {
		in.stats.DMAFaults++
		in.note("dma-fail", fmt.Sprintf("dma #%d", in.nDMA))
		return 0, true
	}
	if n := in.plan.DMAStallEvery; n > 0 && in.nDMA%int64(n) == 0 {
		d := in.plan.DMAStall
		if d <= 0 {
			d = 10e-6
		}
		in.stats.DMAFaults++
		in.note("dma-stall", fmt.Sprintf("dma #%d +%gs", in.nDMA, d))
		return d, false
	}
	return 0, false
}

// LinkScale returns the bandwidth multiplier for the named link (1 when
// the plan leaves it alone). memsim consults this once per link.
func (in *Injector) LinkScale(name string) float64 {
	if f, ok := in.plan.LinkSlowdown[name]; ok && f > 0 && f <= 1 {
		return f
	}
	return 1
}

// Straggle returns the extra delay the given rank suffers at each
// collective entry (0 for non-stragglers).
func (in *Injector) Straggle(rank int) float64 {
	return in.plan.Straggler[rank]
}

// LeaderDown reports whether the given rank is barred from serving as a
// node leader in hierarchical collectives.
func (in *Injector) LeaderDown(rank int) bool {
	return in.plan.LeaderDown[rank]
}

// MaxRetries returns the plan's retry bound (default 3).
func (in *Injector) MaxRetries() int {
	if in.plan.MaxRetries > 0 {
		return in.plan.MaxRetries
	}
	return 3
}

// Backoff returns the delay before retry number attempt (0-based),
// doubling from RetryBackoff (default 1 µs).
func (in *Injector) Backoff(attempt int) float64 {
	b := in.plan.RetryBackoff
	if b <= 0 {
		b = 1e-6
	}
	if attempt > 30 {
		attempt = 30
	}
	return b * float64(int64(1)<<attempt)
}
