package fault

import (
	"testing"

	"repro/internal/trace"
)

func TestEmpty(t *testing.T) {
	var nilPlan *Plan
	if !nilPlan.Empty() {
		t.Error("nil plan not empty")
	}
	if !(&Plan{Seed: 7, MaxRetries: 5, RetryBackoff: 1e-6}).Empty() {
		t.Error("policy-only plan not empty")
	}
	cases := []Plan{
		{PinnedPageBudget: 100},
		{CreateFailEvery: 2},
		{CreateTransient: 0.5},
		{CopyTransient: 0.5},
		{InvalidateEvery: 3},
		{DMAFailEvery: 4},
		{DMAStallEvery: 4},
		{LinkSlowdown: map[string]float64{"qpi": 0.5}},
		{Straggler: map[int]float64{1: 1e-3}},
	}
	for i, p := range cases {
		if p.Empty() {
			t.Errorf("case %d reported empty", i)
		}
	}
}

func TestCreateEveryNthAndBudget(t *testing.T) {
	st := &trace.Stats{}
	in := NewInjector(Plan{CreateFailEvery: 3, PinnedPageBudget: 10}, nil, st, nil)
	var outs []Outcome
	for i := 0; i < 6; i++ {
		outs = append(outs, in.Create(2))
	}
	// Creates 3 and 6 fail with NoMem; the others reserve 2 pages each.
	want := []Outcome{OK, OK, NoMem, OK, OK, NoMem}
	for i := range want {
		if outs[i] != want[i] {
			t.Fatalf("create %d: got %v want %v", i+1, outs[i], want[i])
		}
	}
	if in.PinnedPages() != 8 {
		t.Fatalf("pinned = %d, want 8", in.PinnedPages())
	}
	// The budget now rejects anything over 2 more pages.
	if out := in.Create(100); out != NoMem {
		t.Fatalf("over-budget create: got %v", out)
	}
	in.Release(8)
	if in.PinnedPages() != 0 {
		t.Fatalf("pinned after release = %d", in.PinnedPages())
	}
	if st.CreateFaults != 3 || st.FaultsInjected != 3 {
		t.Fatalf("stats: createFaults=%d faults=%d", st.CreateFaults, st.FaultsInjected)
	}
}

func TestCopyInvalidateEveryNth(t *testing.T) {
	st := &trace.Stats{}
	in := NewInjector(Plan{InvalidateEvery: 4}, nil, st, nil)
	for i := 1; i <= 8; i++ {
		out := in.Copy()
		if (i%4 == 0) != (out == Invalidated) {
			t.Fatalf("copy %d: got %v", i, out)
		}
	}
	if st.CopyFaults != 2 {
		t.Fatalf("copyFaults = %d", st.CopyFaults)
	}
}

func TestDeterministicTransients(t *testing.T) {
	run := func() []Outcome {
		in := NewInjector(Plan{Seed: 42, CreateTransient: 0.3, CopyTransient: 0.3}, nil, &trace.Stats{}, nil)
		var outs []Outcome
		for i := 0; i < 50; i++ {
			outs = append(outs, in.Create(1), in.Copy())
		}
		return outs
	}
	a, b := run(), run()
	saw := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d: %v vs %v", i, a[i], b[i])
		}
		if a[i] == Transient {
			saw = true
		}
	}
	if !saw {
		t.Fatal("no transient fault in 100 draws at p=0.3")
	}
}

func TestDMAAndPolicy(t *testing.T) {
	st := &trace.Stats{}
	in := NewInjector(Plan{DMAFailEvery: 2, DMAStallEvery: 3, DMAStall: 5e-6}, nil, st, nil)
	// #1 ok, #2 fail, #3 stall, #4 fail, #5 ok, #6 fail (fail wins ties).
	type res struct {
		stall  float64
		failed bool
	}
	var got []res
	for i := 0; i < 6; i++ {
		s, f := in.DMA()
		got = append(got, res{s, f})
	}
	want := []res{{0, false}, {0, true}, {5e-6, false}, {0, true}, {0, false}, {0, true}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dma %d: got %+v want %+v", i+1, got[i], want[i])
		}
	}
	if st.DMAFaults != 4 {
		t.Fatalf("dmaFaults = %d", st.DMAFaults)
	}

	if in.MaxRetries() != 3 {
		t.Fatalf("default MaxRetries = %d", in.MaxRetries())
	}
	if b := in.Backoff(2); b != 4e-6 {
		t.Fatalf("backoff(2) = %g", b)
	}
	in2 := NewInjector(Plan{MaxRetries: 7, RetryBackoff: 2e-6}, nil, &trace.Stats{}, nil)
	if in2.MaxRetries() != 7 || in2.Backoff(1) != 4e-6 {
		t.Fatalf("explicit policy: retries=%d backoff=%g", in2.MaxRetries(), in2.Backoff(1))
	}
}

func TestLinkScaleAndStraggler(t *testing.T) {
	in := NewInjector(Plan{
		LinkSlowdown: map[string]float64{"qpi": 0.25, "bogus": 7},
		Straggler:    map[int]float64{3: 2e-3},
	}, nil, &trace.Stats{}, nil)
	if in.LinkScale("qpi") != 0.25 {
		t.Fatalf("qpi scale = %g", in.LinkScale("qpi"))
	}
	if in.LinkScale("bogus") != 1 || in.LinkScale("other") != 1 {
		t.Fatal("out-of-range or unknown link not clamped to 1")
	}
	if in.Straggle(3) != 2e-3 || in.Straggle(0) != 0 {
		t.Fatal("straggler lookup wrong")
	}
}

func TestTimelineSpans(t *testing.T) {
	tl := &trace.Timeline{}
	in := NewInjector(Plan{CreateFailEvery: 1}, nil, &trace.Stats{}, tl)
	in.Create(1)
	if len(tl.Spans) != 1 || tl.Spans[0].Lane != "faults" || tl.Spans[0].Kind != "create-enomem" {
		t.Fatalf("spans: %+v", tl.Spans)
	}
}
