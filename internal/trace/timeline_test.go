package trace

import (
	"strings"
	"testing"
)

func TestTimelineNilSafe(t *testing.T) {
	var tl *Timeline
	tl.Add("x", "copy", 0, 1, "") // must not panic
}

func TestWindowAndLanes(t *testing.T) {
	tl := &Timeline{}
	tl.Add("b", "copy", 2, 5, "")
	tl.Add("a", "copy", 1, 3, "")
	lo, hi := tl.Window()
	if lo != 1 || hi != 5 {
		t.Fatalf("window = [%g,%g]", lo, hi)
	}
	lanes := tl.Lanes()
	if len(lanes) != 2 || lanes[0] != "a" || lanes[1] != "b" {
		t.Fatalf("lanes = %v", lanes)
	}
}

func TestUtilizationMergesOverlaps(t *testing.T) {
	tl := &Timeline{}
	tl.Add("a", "copy", 0, 4, "")
	tl.Add("a", "copy", 2, 6, "") // overlaps: union busy = [0,6]
	tl.Add("b", "copy", 0, 10, "")
	if u := tl.Utilization("a"); u < 0.59 || u > 0.61 {
		t.Fatalf("a utilization = %g, want 0.6", u)
	}
	if u := tl.Utilization("b"); u != 1.0 {
		t.Fatalf("b utilization = %g, want 1", u)
	}
}

func TestGanttRenders(t *testing.T) {
	tl := &Timeline{}
	tl.Add("core0", "copy", 0, 1e-3, "1MB")
	tl.Add("core1", "copy", 0.5e-3, 1e-3, "0.5MB")
	var sb strings.Builder
	tl.Gantt(&sb, 10)
	out := sb.String()
	if !strings.Contains(out, "core0") || !strings.Contains(out, "core1") {
		t.Fatalf("gantt missing lanes:\n%s", out)
	}
	if !strings.Contains(out, "100%") || !strings.Contains(out, "50%") {
		t.Fatalf("gantt utilization wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// core0 busy everywhere, core1 only in the second half.
	c0, c1 := lines[1], lines[2]
	if strings.Count(c0, "#") != 10 {
		t.Fatalf("core0 row: %q", c0)
	}
	if strings.Count(c1, "#") != 5 {
		t.Fatalf("core1 row: %q", c1)
	}
}

func TestGanttEmpty(t *testing.T) {
	tl := &Timeline{}
	var sb strings.Builder
	tl.Gantt(&sb, 10)
	if !strings.Contains(sb.String(), "empty") {
		t.Fatal("empty timeline not reported")
	}
}

func TestStatsResetAndString(t *testing.T) {
	s := &Stats{}
	s.AddLinkBytes("qpi", 100)
	s.Copies = 3
	if !strings.Contains(s.String(), "qpi=100") {
		t.Fatalf("string: %s", s.String())
	}
	s.Reset()
	if s.Copies != 0 || len(s.LinkBytes) != 0 {
		t.Fatal("reset incomplete")
	}
}
