package trace

import (
	"fmt"
	"io"
	"sort"
)

// Span is one traced activity on a lane (a core, a DMA engine, a rank).
type Span struct {
	Lane   string
	Kind   string
	Start  float64
	End    float64
	Detail string
}

// Timeline collects spans from the simulator when enabled; the zero value
// is a disabled timeline that costs one nil check per event.
type Timeline struct {
	Spans []Span
}

// Add records a span. Nil receivers are silently ignored so call sites can
// hold an optional *Timeline.
func (tl *Timeline) Add(lane, kind string, start, end float64, detail string) {
	if tl == nil {
		return
	}
	tl.Spans = append(tl.Spans, Span{Lane: lane, Kind: kind, Start: start, End: end, Detail: detail})
}

// Lanes returns the lane names, sorted.
func (tl *Timeline) Lanes() []string {
	seen := map[string]bool{}
	for _, s := range tl.Spans {
		seen[s.Lane] = true
	}
	out := make([]string, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Window returns the earliest start and latest end across all spans.
func (tl *Timeline) Window() (float64, float64) {
	if len(tl.Spans) == 0 {
		return 0, 0
	}
	lo, hi := tl.Spans[0].Start, tl.Spans[0].End
	for _, s := range tl.Spans {
		if s.Start < lo {
			lo = s.Start
		}
		if s.End > hi {
			hi = s.End
		}
	}
	return lo, hi
}

// Utilization returns the busy fraction of a lane over the timeline's
// window (overlapping spans on one lane count once).
func (tl *Timeline) Utilization(lane string) float64 {
	lo, hi := tl.Window()
	if hi <= lo {
		return 0
	}
	type iv struct{ a, b float64 }
	var ivs []iv
	for _, s := range tl.Spans {
		if s.Lane == lane {
			ivs = append(ivs, iv{s.Start, s.End})
		}
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].a < ivs[j].a })
	busy, end := 0.0, lo
	for _, v := range ivs {
		a := v.a
		if a < end {
			a = end
		}
		if v.b > a {
			busy += v.b - a
			end = v.b
		}
	}
	return busy / (hi - lo)
}

// Gantt renders the timeline as a per-lane text chart with the given
// number of time buckets. Bucket shading reflects the busy fraction.
func (tl *Timeline) Gantt(w io.Writer, buckets int) {
	lo, hi := tl.Window()
	if hi <= lo || buckets < 1 {
		fmt.Fprintln(w, "(empty timeline)")
		return
	}
	width := (hi - lo) / float64(buckets)
	fmt.Fprintf(w, "timeline %.1fus..%.1fus, bucket %.2fus\n", lo*1e6, hi*1e6, width*1e6)
	for _, lane := range tl.Lanes() {
		busy := make([]float64, buckets)
		for _, s := range tl.Spans {
			if s.Lane != lane {
				continue
			}
			b0 := int((s.Start - lo) / width)
			b1 := int((s.End - lo) / width)
			for b := b0; b <= b1 && b < buckets; b++ {
				bs, be := lo+float64(b)*width, lo+float64(b+1)*width
				a, z := s.Start, s.End
				if a < bs {
					a = bs
				}
				if z > be {
					z = be
				}
				if z > a {
					busy[b] += (z - a) / width
				}
			}
		}
		fmt.Fprintf(w, "%-8s|", lane)
		for _, f := range busy {
			switch {
			case f > 0.75:
				fmt.Fprint(w, "#")
			case f > 0.5:
				fmt.Fprint(w, "=")
			case f > 0.25:
				fmt.Fprint(w, "-")
			case f > 0:
				fmt.Fprint(w, ".")
			default:
				fmt.Fprint(w, " ")
			}
		}
		fmt.Fprintf(w, "| %4.0f%%\n", 100*tl.Utilization(lane))
	}
}
