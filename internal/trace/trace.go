// Package trace collects counters from the simulated memory system and
// communication layers: copies, bytes per link, cache hits, kernel traps,
// KNEM region registrations. Tests use them to assert structural properties
// (e.g. a KNEM broadcast performs exactly one registration and N-1 copies);
// the benchmark harness reports them alongside timings.
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Stats accumulates counters. The zero value is ready to use. Stats is not
// safe for concurrent use; the simulator is single-threaded in effect, so
// no locking is needed.
type Stats struct {
	Copies        int64 // memory transfers started
	BytesCopied   int64 // payload bytes moved
	CacheHits     int64 // transfers whose read side was served by a cache
	CacheMisses   int64 // transfers whose read side went to DRAM
	KernelTraps   int64 // simulated ioctl/syscall entries
	Registrations int64 // KNEM region creations
	CtrlMsgs      int64 // out-of-band control messages
	LinkBytes     map[string]int64

	// Dense per-link accumulator, used by the memory simulator's hot path
	// instead of the string-keyed map (SetLinkNames/AddLinkBytesIdx).
	// FlushLinks folds it into LinkBytes; accessors that expose the map
	// call it first, so readers never see a stale view.
	links     []int64
	linkNames []string

	// Fault-injection counters (zero unless a fault.Plan is active).
	FaultsInjected int64 // discrete faults injected by the plan
	CreateFaults   int64 // failed region registrations (ENOMEM/EAGAIN)
	CopyFaults     int64 // failed copies (EAGAIN/invalidated cookie)
	DMAFaults      int64 // failed or stalled DMA submissions
	Invalidations  int64 // live regions destroyed by cookie invalidation
	Retries        int64 // transient faults retried by the component
	Fallbacks      int64 // operations degraded to a non-KNEM delivery path
	Resends        int64 // blocks re-delivered over p2p after a fault
}

// AddLinkBytes accounts payload bytes crossing the named link.
func (s *Stats) AddLinkBytes(name string, n int64) {
	if s.LinkBytes == nil {
		s.LinkBytes = make(map[string]int64)
	}
	s.LinkBytes[name] += n
}

// SetLinkNames installs the dense accumulator for links 0..len(names)-1.
// The simulator calls it once per run so per-copy accounting is a slice
// add, not a map write.
func (s *Stats) SetLinkNames(names []string) {
	s.linkNames = names
	s.links = make([]int64, len(names))
}

// AddLinkBytesIdx accounts payload bytes on the link with dense index i.
// SetLinkNames must have been called.
func (s *Stats) AddLinkBytesIdx(i int, n int64) { s.links[i] += n }

// FlushLinks folds the dense accumulator into the LinkBytes map. Safe to
// call at any time; totals are unaffected by when or how often it runs.
func (s *Stats) FlushLinks() {
	for i, v := range s.links {
		if v != 0 {
			s.AddLinkBytes(s.linkNames[i], v)
			s.links[i] = 0
		}
	}
}

// Snapshot flushes the dense accumulator and returns a value copy without
// it, so snapshots taken live compare equal (reflect.DeepEqual, JSON) to
// ones round-tripped through serialization.
func (s *Stats) Snapshot() Stats {
	s.FlushLinks()
	out := *s
	out.links, out.linkNames = nil, nil
	return out
}

// Merge folds other's counters into s. Every field is an additive total
// (there are no gauges), so merging the per-partition sinks of an
// intra-cell parallel run in partition order yields exactly the counters
// a single shared sink would have accumulated. Both sinks' dense link
// accumulators are flushed first; other is left flushed but otherwise
// unchanged.
func (s *Stats) Merge(other *Stats) {
	s.FlushLinks()
	other.FlushLinks()
	s.Copies += other.Copies
	s.BytesCopied += other.BytesCopied
	s.CacheHits += other.CacheHits
	s.CacheMisses += other.CacheMisses
	s.KernelTraps += other.KernelTraps
	s.Registrations += other.Registrations
	s.CtrlMsgs += other.CtrlMsgs
	s.FaultsInjected += other.FaultsInjected
	s.CreateFaults += other.CreateFaults
	s.CopyFaults += other.CopyFaults
	s.DMAFaults += other.DMAFaults
	s.Invalidations += other.Invalidations
	s.Retries += other.Retries
	s.Fallbacks += other.Fallbacks
	s.Resends += other.Resends
	for name, n := range other.LinkBytes {
		s.AddLinkBytes(name, n)
	}
}

// Reset zeroes every counter. The dense link accumulator keeps its shape
// (names and capacity) so resetting mid-run costs nothing on the hot path.
func (s *Stats) Reset() {
	links, names := s.links, s.linkNames
	*s = Stats{}
	for i := range links {
		links[i] = 0
	}
	s.links, s.linkNames = links, names
}

// String renders the counters compactly, links sorted by name.
func (s *Stats) String() string {
	s.FlushLinks()
	var b strings.Builder
	fmt.Fprintf(&b, "copies=%d bytes=%d cacheHits=%d cacheMisses=%d traps=%d regs=%d ctrl=%d",
		s.Copies, s.BytesCopied, s.CacheHits, s.CacheMisses, s.KernelTraps, s.Registrations, s.CtrlMsgs)
	if s.FaultsInjected != 0 || s.Retries != 0 || s.Fallbacks != 0 || s.Resends != 0 {
		fmt.Fprintf(&b, " faults=%d createFaults=%d copyFaults=%d dmaFaults=%d invalidations=%d retries=%d fallbacks=%d resends=%d",
			s.FaultsInjected, s.CreateFaults, s.CopyFaults, s.DMAFaults, s.Invalidations, s.Retries, s.Fallbacks, s.Resends)
	}
	if len(s.LinkBytes) > 0 {
		names := make([]string, 0, len(s.LinkBytes))
		for n := range s.LinkBytes {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(&b, " %s=%d", n, s.LinkBytes[n])
		}
	}
	return b.String()
}
