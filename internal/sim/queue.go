package sim

import "slices"

// The event queue is a bucketed calendar / ladder queue specialised for
// discrete-event workloads: a short sorted "near" tier that events fire
// from, a window of constant-width buckets covering the near future, and
// an unsorted overflow ladder for everything beyond the window. All three
// tiers hold concrete *Event values (no interface boxing) and all
// steady-state operations append into retained slices, so schedule, fire
// and cancel are allocation-free once capacities warm up.
//
// Fire order is exactly the engine's historical (time, seq) order: the
// near tier is fully sorted, each bucket is sorted by (time, seq) when it
// is promoted into the near tier, and the overflow ladder is organised
// into a fresh bucket window when the current window drains. Because seq
// strictly increases, an insert at time t always sorts after every queued
// event with the same t, which keeps the sorted-insert path a pure
// binary search on t.
//
// Tier invariants (nearTop is the exclusive upper bound of the near
// tier's coverage; winEnd is the exclusive upper bound of the bucket
// window):
//   - every queued event with t <  nearTop is in near;
//   - with an active window (cur < numBuckets), every queued event with
//     nearTop <= t < winEnd is in bucket[i] where t lies in
//     [lo(i), lo(i+1)); bucket bounds are lo(i) = base + i*width,
//     evaluated by exactly one function so routing and promotion can
//     never disagree about a boundary under floating-point rounding;
//   - everything else is in the overflow ladder.
//
// Cancellation removes the event from its tier immediately (swap-pop in
// a bucket or the ladder, memmove in near), so heavy schedule/cancel
// churn — the memory simulator rescheduling its completion event on
// every flow change — does not grow the queue with dead entries and
// pooled events recycle eagerly, exactly as under the old binary heap.

// Event queue location tags (Event.where).
const (
	qNone   int32 = iota // not queued: fired, cancelled, or never scheduled
	qNear                // near[slot]
	qBucket              // bucket[bkt][slot]
	qOver                // over[slot]
)

const (
	numBuckets = 256
	// nearSpill caps the pending near tier while no bucket window is
	// active: once more events than this are waiting, the far half is
	// spilled to the overflow ladder (and nearTop lowered) so sorted
	// inserts stay cheap and the next window rebuild re-organises them.
	nearSpill = 64
)

type calQueue struct {
	near    []*Event // sorted ascending (t, seq); consumed from nearPos
	nearPos int
	nearTop Time // exclusive upper bound of near-tier coverage

	bucket [numBuckets][]*Event // unsorted; bucket[cur:] is the live window
	cur    int                  // next bucket to promote; numBuckets = no window
	base   Time                 // lower bound of bucket 0
	width  Time                 // bucket width (> 0 while a window is active)
	winEnd Time                 // lo(numBuckets): exclusive end of the window

	over []*Event // unsorted overflow ladder: t >= winEnd

	size int
}

// The zero calQueue is ready to use: nearTop = 0 and winEnd = 0 route the
// first push to the overflow ladder, and the first pop builds a window.

// lo returns the lower bound of bucket i. Routing, promotion and rebuild
// all share this one expression so floating-point rounding cannot put an
// event on the wrong side of a boundary that another code path computed.
func (q *calQueue) lo(i int) Time { return q.base + Time(i)*q.width }

func (q *calQueue) push(ev *Event) {
	q.size++
	t := ev.t
	if t < q.nearTop {
		q.nearInsert(ev)
		return
	}
	if q.cur < numBuckets && t < q.winEnd {
		f := (t - q.base) / q.width
		var i int
		switch {
		case f >= numBuckets || f != f: // range/NaN guard before int conversion
			i = numBuckets - 1
		case f > 0:
			i = int(f)
		}
		if i < q.cur {
			i = q.cur
		}
		// float division may land one bucket off its half-open range;
		// settle against the canonical bounds (at most one step each way).
		for i > q.cur && t < q.lo(i) {
			i--
		}
		for i < numBuckets-1 && t >= q.lo(i+1) {
			i++
		}
		ev.where, ev.bkt, ev.slot = qBucket, int32(i), int32(len(q.bucket[i]))
		q.bucket[i] = append(q.bucket[i], ev)
		return
	}
	ev.where, ev.slot = qOver, int32(len(q.over))
	q.over = append(q.over, ev)
}

// nearInsert places ev into the sorted near tier by (t, seq). A freshly
// scheduled event carries the largest seq issued so far, but a retimed
// event (Engine.Retime) re-enters with its original seq, so the search
// compares the full key.
func (q *calQueue) nearInsert(ev *Event) {
	lo, hi := q.nearPos, len(q.near)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		m := q.near[mid]
		if m.t < ev.t || (m.t == ev.t && m.seq < ev.seq) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	q.near = append(q.near, nil)
	copy(q.near[lo+1:], q.near[lo:])
	q.near[lo] = ev
	ev.where = qNear
	for i := lo; i < len(q.near); i++ {
		q.near[i].slot = int32(i)
	}
	if q.cur == numBuckets && len(q.near)-q.nearPos > nearSpill {
		q.spill()
	}
}

// spill moves the far half of the pending near tier to the overflow
// ladder and lowers nearTop to the cut time. Only valid with no active
// window (everything >= nearTop then belongs to the ladder). Events with
// t equal to the cut that stay in near carry smaller seqs than any
// future push at that time, and the ladder is only consulted after near
// drains, so (t, seq) order is preserved.
func (q *calQueue) spill() {
	n := len(q.near)
	m := q.nearPos + (n-q.nearPos)/2
	cut := q.near[m].t
	for i := m; i < n; i++ {
		ev := q.near[i]
		ev.where, ev.slot = qOver, int32(len(q.over))
		q.over = append(q.over, ev)
		q.near[i] = nil
	}
	q.near = q.near[:m]
	q.nearTop = cut
}

// peek returns the next event to fire without removing it, organising
// tiers as needed: it promotes the next non-empty bucket into near, and
// rebuilds the bucket window from the overflow ladder when the window
// drains. Returns nil when the queue is empty.
func (q *calQueue) peek() *Event {
	for {
		if q.nearPos < len(q.near) {
			return q.near[q.nearPos]
		}
		if q.nearPos > 0 {
			q.near, q.nearPos = q.near[:0], 0
		}
		if q.cur < numBuckets {
			b := q.cur
			for b < numBuckets && len(q.bucket[b]) == 0 {
				b++
			}
			if b == numBuckets {
				q.cur = numBuckets
				q.nearTop = q.winEnd
				continue
			}
			q.promote(b)
			continue
		}
		if len(q.over) > 0 {
			q.rebuild()
			continue
		}
		return nil
	}
}

func (q *calQueue) popMin() *Event {
	ev := q.peek()
	if ev == nil {
		return nil
	}
	q.near[q.nearPos] = nil
	q.nearPos++
	if q.nearPos == len(q.near) {
		q.near, q.nearPos = q.near[:0], 0
	}
	ev.where = qNone
	q.size--
	return ev
}

// promote sorts bucket b by (t, seq) and makes it the near tier.
func (q *calQueue) promote(b int) {
	evs := q.bucket[b]
	slices.SortFunc(evs, func(x, y *Event) int {
		if x.t != y.t {
			if x.t < y.t {
				return -1
			}
			return 1
		}
		if x.seq < y.seq {
			return -1
		}
		return 1
	})
	q.near = append(q.near[:0], evs...)
	for i, ev := range q.near {
		ev.where, ev.slot = qNear, int32(i)
		evs[i] = nil
	}
	q.bucket[b] = evs[:0]
	q.nearPos = 0
	q.nearTop = q.lo(b + 1)
	q.cur = b + 1
}

// rebuild opens a fresh bucket window over the overflow ladder. Width
// adapts to the ladder's population (target ~4 events per bucket) but is
// floored so each window covers a meaningful slice of the remaining span
// and scanning the ladder stays amortised. Events beyond the new window
// stay in the ladder for a later rebuild.
func (q *calQueue) rebuild() {
	tmin, tmax := q.over[0].t, q.over[0].t
	for _, ev := range q.over[1:] {
		if ev.t < tmin {
			tmin = ev.t
		}
		if ev.t > tmax {
			tmax = ev.t
		}
	}
	span := tmax - tmin
	width := span * 4 / Time(len(q.over))
	if minw := span / 2048; width < minw {
		width = minw
	}
	if !(width > 0) {
		width = 1
	}
	q.base = tmin
	// Guard against widths that vanish under the magnitude of base: the
	// window must make progress past its own origin.
	for q.base+Time(numBuckets)*width <= q.base {
		width *= 2
	}
	q.width = width
	q.cur = 0
	q.winEnd = q.lo(numBuckets)
	q.nearTop = q.base
	keep := q.over[:0]
	for _, ev := range q.over {
		if ev.t < q.winEnd {
			q.size-- // push re-counts it
			q.push(ev)
			continue
		}
		ev.slot = int32(len(keep))
		keep = append(keep, ev)
	}
	for i := len(keep); i < len(q.over); i++ {
		q.over[i] = nil
	}
	q.over = keep
}

// remove unlinks a queued event from its tier (cancellation).
func (q *calQueue) remove(ev *Event) {
	switch ev.where {
	case qNear:
		i := int(ev.slot)
		last := len(q.near) - 1
		copy(q.near[i:], q.near[i+1:])
		q.near[last] = nil
		q.near = q.near[:last]
		for j := i; j < last; j++ {
			q.near[j].slot = int32(j)
		}
		if q.nearPos == len(q.near) {
			q.near, q.nearPos = q.near[:0], 0
		}
	case qBucket:
		b := q.bucket[ev.bkt]
		i, last := int(ev.slot), len(b)-1
		b[i] = b[last]
		b[i].slot = int32(i)
		b[last] = nil
		q.bucket[ev.bkt] = b[:last]
	case qOver:
		i, last := int(ev.slot), len(q.over)-1
		q.over[i] = q.over[last]
		q.over[i].slot = int32(i)
		q.over[last] = nil
		q.over = q.over[:last]
	default:
		return
	}
	ev.where = qNone
	q.size--
}

// reset empties the queue back to its zero state, keeping slice
// capacities warm for reuse. Any still-queued events are dropped.
func (q *calQueue) reset() {
	for i := range q.near {
		if ev := q.near[i]; ev != nil {
			ev.where = qNone
		}
		q.near[i] = nil
	}
	q.near, q.nearPos, q.nearTop = q.near[:0], 0, 0
	for b := range q.bucket {
		for i, ev := range q.bucket[b] {
			ev.where = qNone
			q.bucket[b][i] = nil
		}
		q.bucket[b] = q.bucket[b][:0]
	}
	q.cur, q.base, q.width, q.winEnd = 0, 0, 0, 0
	for i, ev := range q.over {
		ev.where = qNone
		q.over[i] = nil
	}
	q.over = q.over[:0]
	q.size = 0
}
