package sim

import (
	"errors"
	"testing"
)

// TestInterruptAborts pins the SetInterrupt contract: once the poll
// returns an error, Run stops after the current event, kills parked
// processes (running their body defers), and returns an *InterruptError
// unwrapping to the poll's error.
func TestInterruptAborts(t *testing.T) {
	cause := errors.New("cancelled")
	e := NewEngine()
	polls, cleaned := 0, false
	e.SetInterrupt(func() error {
		polls++
		if polls >= 3 {
			return cause
		}
		return nil
	})
	e.Spawn("worker", func(p *Proc) {
		defer func() { cleaned = true }()
		for {
			p.Wait(1e-9)
		}
	})
	err := e.Run()
	var ie *InterruptError
	if !errors.As(err, &ie) {
		t.Fatalf("Run returned %v, want *InterruptError", err)
	}
	if !errors.Is(err, cause) {
		t.Fatalf("InterruptError does not unwrap to the poll's error: %v", err)
	}
	if !cleaned {
		t.Fatal("parked process was not killed (its defer never ran)")
	}
}

// TestInterruptPollIsInvisible proves an installed-but-never-firing poll
// changes nothing: the same workload with and without a poll produces
// identical final times and event counts, and a Reset engine that ran an
// interrupted cell replays a fresh cell bit-identically.
func TestInterruptPollIsInvisible(t *testing.T) {
	run := func(e *Engine) (Time, int64) {
		e.Spawn("a", func(p *Proc) {
			for i := 0; i < 5000; i++ {
				p.Wait(1e-9)
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Now(), e.Fired()
	}
	plain := NewEngine()
	wantT, wantN := run(plain)

	polled := NewEngine()
	polled.SetInterrupt(func() error { return nil })
	gotT, gotN := run(polled)
	if gotT != wantT || gotN != wantN {
		t.Fatalf("poll changed the run: t=%v fired=%d, want t=%v fired=%d", gotT, gotN, wantT, wantN)
	}

	// Interrupt a run, then Reset and replay without the poll: the reused
	// engine must be indistinguishable from a fresh one.
	reused := NewEngine()
	reused.SetInterrupt(func() error { return errors.New("stop") })
	reused.Spawn("b", func(p *Proc) {
		for {
			p.Wait(1e-9)
		}
	})
	if err := reused.Run(); err == nil {
		t.Fatal("interrupted run returned nil")
	}
	reused.Reset()
	reused.SetInterrupt(nil)
	gotT, gotN = run(reused)
	if gotT != wantT || gotN != wantN {
		t.Fatalf("post-interrupt Reset replay diverges: t=%v fired=%d, want t=%v fired=%d", gotT, gotN, wantT, wantN)
	}
}
