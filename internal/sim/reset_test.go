package sim

import (
	"fmt"
	"math"
	"testing"
)

// driveResetWorkload runs a fixed mixed workload — plain and owned events,
// cancellations, spawned processes that sleep and park/wake — and returns
// the exact fire log (time bits and label per firing) plus the final time.
func driveResetWorkload(e *Engine) ([]string, Time) {
	var log []string
	rec := func(tag string) {
		log = append(log, fmt.Sprintf("%s@%016x", tag, math.Float64bits(e.Now())))
	}
	for i := 0; i < 20; i++ {
		i := i
		d := Time(i%7) * 1.25e-9
		e.Schedule(d, func() { rec(fmt.Sprintf("ev%d", i)) })
	}
	doomed := e.Schedule(3e-9, func() { rec("never") })
	doomed.Cancel()
	var woken *Proc
	woken = e.Spawn("sleeper", func(p *Proc) {
		p.Wait(2e-9)
		rec("slept")
		p.Park("reset test")
		rec("woken")
	})
	e.Spawn("waker", func(p *Proc) {
		p.Wait(5e-9)
		rec("waking")
		woken.Wake()
	})
	e.Schedule(4e-9, func() {
		e.ScheduleOwned(1e-9, func() { rec("owned") })
	})
	if err := e.Run(); err != nil {
		panic(err)
	}
	return log, e.Now()
}

// TestResetBitIdentical pins the Reset contract the sharded sweep runner
// relies on: a reset engine replays a workload with exactly the fire
// order, timestamps, and final clock of a fresh engine.
func TestResetBitIdentical(t *testing.T) {
	fresh := NewEngine()
	wantLog, wantEnd := driveResetWorkload(fresh)

	e := NewEngine()
	driveResetWorkload(e) // dirty the engine
	for round := 0; round < 3; round++ {
		e.Reset()
		if e.Now() != 0 || e.Fired() != 0 {
			t.Fatalf("round %d: reset engine at t=%g fired=%d", round, e.Now(), e.Fired())
		}
		gotLog, gotEnd := driveResetWorkload(e)
		if gotEnd != wantEnd {
			t.Fatalf("round %d: final time %016x, fresh %016x",
				round, math.Float64bits(gotEnd), math.Float64bits(wantEnd))
		}
		if len(gotLog) != len(wantLog) {
			t.Fatalf("round %d: %d firings, fresh %d", round, len(gotLog), len(wantLog))
		}
		for i := range gotLog {
			if gotLog[i] != wantLog[i] {
				t.Fatalf("round %d: firing %d = %q, fresh %q", round, i, gotLog[i], wantLog[i])
			}
		}
	}
}

// TestResetReusesProcs verifies Reset parks finished coroutine objects for
// the next run's spawns instead of dropping them.
func TestResetReusesProcs(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 8; i++ {
		e.Spawn("p", func(p *Proc) { p.Wait(1e-9) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	e.Reset()
	if got := len(e.procPool); got != 8 {
		t.Fatalf("procPool holds %d procs after Reset, want 8", got)
	}
	for i := 0; i < 8; i++ {
		e.Spawn("p", func(p *Proc) { p.Wait(1e-9) })
	}
	if got := len(e.procPool); got != 0 {
		t.Fatalf("respawn left %d pooled procs, want 0", got)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestRetimeKeepsSeqTieBreak pins Retime's contract: a retimed event
// keeps its original scheduling position among events at its new
// instant, firing before anything scheduled after it — even though the
// later events were pushed first at that time.
func TestRetimeKeepsSeqTieBreak(t *testing.T) {
	e := NewEngine()
	var order []string
	early := e.Schedule(1e-9, func() { order = append(order, "early") }) // seq 1
	e.Schedule(5e-9, func() { order = append(order, "a") })              // seq 2
	e.Schedule(5e-9, func() { order = append(order, "b") })              // seq 3
	e.Retime(early, 5e-9)                                                // still seq 1
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"early", "a", "b"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fire order %v, want %v", order, want)
		}
	}
}

// TestRetimeDeadPanics pins the misuse guards.
func TestRetimeDeadPanics(t *testing.T) {
	e := NewEngine()
	ev := e.Schedule(1e-9, func() {})
	ev.Cancel()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Retime of a cancelled event did not panic")
			}
		}()
		e.Retime(ev, 2e-9)
	}()
}
