package sim

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(2, func() { got = append(got, 2) })
	e.Schedule(1, func() { got = append(got, 1) })
	e.Schedule(3, func() { got = append(got, 3) })
	e.Schedule(1, func() { got = append(got, 10) }) // same time: FIFO after first 1
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 10, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 3 {
		t.Fatalf("final time = %g, want 3", e.Now())
	}
}

func TestScheduleCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(1, func() { fired = true })
	e.Schedule(0.5, func() { ev.Cancel() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Schedule(-1, func() {})
}

func TestProcWait(t *testing.T) {
	e := NewEngine()
	var times []Time
	e.Spawn("a", func(p *Proc) {
		p.Wait(1)
		times = append(times, p.Now())
		p.Wait(2.5)
		times = append(times, p.Now())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(times) != 2 || times[0] != 1 || times[1] != 3.5 {
		t.Fatalf("times = %v", times)
	}
}

func TestTwoProcsInterleave(t *testing.T) {
	e := NewEngine()
	var trace []string
	e.Spawn("a", func(p *Proc) {
		p.Wait(1)
		trace = append(trace, fmt.Sprintf("a@%g", p.Now()))
		p.Wait(2)
		trace = append(trace, fmt.Sprintf("a@%g", p.Now()))
	})
	e.Spawn("b", func(p *Proc) {
		p.Wait(2)
		trace = append(trace, fmt.Sprintf("b@%g", p.Now()))
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a@1", "b@2", "a@3"}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine()
	ch := NewChan[int](e, 0)
	e.Spawn("stuck", func(p *Proc) {
		ch.Recv(p)
	})
	err := e.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(de.Parked) != 1 || de.Parked[0] != "stuck: chan recv" {
		t.Fatalf("parked = %v", de.Parked)
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	n := 0
	e.Spawn("looper", func(p *Proc) {
		for {
			p.Wait(1)
			n++
			if n == 5 {
				e.Stop()
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("n = %d, want 5", n)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		ch := NewChan[int](e, 3)
		var trace []string
		for i := 0; i < 4; i++ {
			i := i
			e.Spawn(fmt.Sprintf("producer%d", i), func(p *Proc) {
				for j := 0; j < 5; j++ {
					p.Wait(float64(i+1) * 0.1)
					ch.Send(p, i*10+j)
				}
			})
		}
		e.Spawn("consumer", func(p *Proc) {
			for k := 0; k < 20; k++ {
				v := ch.Recv(p)
				trace = append(trace, fmt.Sprintf("%d@%.3f", v, p.Now()))
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a, b := run(), run()
	if len(a) != 20 || len(b) != 20 {
		t.Fatalf("lengths %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

// Property: for any sequence of positive waits, observed times are the
// prefix sums (time is exact and monotone).
func TestWaitPrefixSumsProperty(t *testing.T) {
	f := func(durs []uint16) bool {
		if len(durs) > 50 {
			durs = durs[:50]
		}
		e := NewEngine()
		var obs []Time
		e.Spawn("w", func(p *Proc) {
			for _, d := range durs {
				p.Wait(float64(d))
				obs = append(obs, p.Now())
			}
		})
		if err := e.Run(); err != nil {
			return false
		}
		sum := 0.0
		for i, d := range durs {
			sum += float64(d)
			if obs[i] != sum {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: events fire in nondecreasing time order regardless of the
// order they were scheduled in.
func TestEventOrderProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		var fired []Time
		for i := 0; i < int(n%64)+1; i++ {
			e.Schedule(rng.Float64()*100, func() {
				fired = append(fired, e.Now())
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNestedSchedule(t *testing.T) {
	e := NewEngine()
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 10 {
			e.Schedule(1, rec)
		}
	}
	e.Schedule(0, rec)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if depth != 10 || e.Now() != 9 {
		t.Fatalf("depth=%d now=%g", depth, e.Now())
	}
}

func TestSpawnFromProc(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Spawn("parent", func(p *Proc) {
		p.Wait(1)
		p.eng.Spawn("child", func(c *Proc) {
			c.Wait(1)
			order = append(order, "child")
		})
		p.Wait(0.5)
		order = append(order, "parent")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "parent" || order[1] != "child" {
		t.Fatalf("order = %v", order)
	}
}

func TestWatchdog(t *testing.T) {
	e := NewEngine()
	e.SetMaxEvents(100)
	ch := NewChan[int](e, 0)
	// Two processes ping-ponging forever.
	e.Spawn("a", func(p *Proc) {
		for {
			ch.Send(p, 1)
			ch.Recv(p)
		}
	})
	e.Spawn("b", func(p *Proc) {
		for {
			ch.Recv(p)
			p.Wait(1e-9)
			ch.Send(p, 2)
		}
	})
	err := e.Run()
	we, ok := err.(*WatchdogError)
	if !ok {
		t.Fatalf("err = %v, want WatchdogError", err)
	}
	if we.Fired < 100 || e.Fired() < 100 {
		t.Fatalf("fired = %d", we.Fired)
	}
}

func TestFiredCounts(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.Schedule(float64(i), func() {})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Fired() != 5 {
		t.Fatalf("fired = %d, want 5", e.Fired())
	}
}
