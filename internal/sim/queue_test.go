package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// This file differentially tests the calendar/ladder event queue against
// the binary heap it replaced: the same randomized schedule — duplicate
// timestamps, immediate and far-future events, cancels, owned (pooled)
// events — runs through a real Engine and through a retained
// container/heap reference, and the fire orders must match exactly,
// timestamp bits and all. FuzzEventQueue drives the same machinery from
// a fuzzer-controlled decision stream.

// decSrc supplies small bounded decisions. The property test draws them
// from a seeded PRNG, the fuzz target from the input bytes. Both the real
// and the reference run consume an identical stream in fire order, so as
// long as the orders agree the decisions stay in lockstep; the first
// divergence shows up in the fire logs.
type decSrc interface {
	next(n int) int
}

type rngSrc struct{ r *rand.Rand }

func (s rngSrc) next(n int) int { return s.r.Intn(n) }

type byteSrc struct {
	data []byte
	pos  int
}

func (s *byteSrc) next(n int) int {
	if n <= 1 || s.pos >= len(s.data) {
		return 0
	}
	v := int(s.data[s.pos])
	s.pos++
	return v % n
}

// scheduleDeltas deliberately repeats values so distinct events collide
// on the same timestamp (seq tie-break), and spans from same-instant to
// far-future (overflow-ladder) delays.
var scheduleDeltas = []Time{0, 0, 1e-9, 1e-9, 2.5e-9, 4e-8, 1e-6, 1e-6, 3e-4, 1.0, 1e3}

type fireRec struct {
	t  Time
	id int
}

// --- reference implementation: the engine's former container/heap queue ---

type refEvent struct {
	t    Time
	seq  int64
	id   int
	dead bool
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(*refEvent)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// script holds the shared bookkeeping both runs maintain identically:
// live handle ids in insertion order (cancel picks by index) and the
// schedule budget that bounds the run.
type script struct {
	src    decSrc
	budget int
	nextID int
	hids   []int
}

func (s *script) dropID(id int) {
	for i, v := range s.hids {
		if v == id {
			s.hids = append(s.hids[:i], s.hids[i+1:]...)
			return
		}
	}
}

// decide is called once per fired event (and once at setup with setup =
// true): it returns how many events to schedule, their kinds and deltas,
// and which live handle (if any) to cancel. Both runs call it with
// identical state, so the returned choices match.
type choice struct {
	kind  int // 0 Schedule, 1 ScheduleOwned, 2 ScheduleOwnedArg
	delta Time
	id    int
}

func (s *script) decide(setup bool) (sched []choice, cancelID int) {
	cancelID = -1
	n := s.src.next(4) // 0..3 new events
	if setup {
		n = 12
	}
	for i := 0; i < n && s.budget > 0; i++ {
		s.budget--
		c := choice{
			kind:  s.src.next(3),
			delta: scheduleDeltas[s.src.next(len(scheduleDeltas))],
			id:    s.nextID,
		}
		s.nextID++
		s.hids = append(s.hids, c.id)
		sched = append(sched, c)
	}
	if len(s.hids) > 0 && s.src.next(4) == 0 {
		cancelID = s.hids[s.src.next(len(s.hids))]
	}
	return sched, cancelID
}

// runReal executes the script on a real Engine (calendar queue).
func runReal(src decSrc, budget int) []fireRec {
	e := NewEngine()
	s := &script{src: src, budget: budget}
	handles := map[int]*Event{}
	var log []fireRec
	var act func(id int)
	schedule := func(c choice) {
		id := c.id
		switch c.kind {
		case 0:
			handles[id] = e.Schedule(c.delta, func() { act(id) })
		case 1:
			handles[id] = e.ScheduleOwned(c.delta, func() { act(id) })
		default:
			handles[id] = e.ScheduleOwnedArg(c.delta, func(arg any) { act(arg.(int)) }, id)
		}
	}
	act = func(id int) {
		log = append(log, fireRec{e.Now(), id})
		s.dropID(id)
		delete(handles, id)
		sched, cancelID := s.decide(false)
		for _, c := range sched {
			schedule(c)
		}
		if cancelID >= 0 {
			handles[cancelID].Cancel()
			delete(handles, cancelID)
			s.dropID(cancelID)
		}
	}
	sched, cancelID := s.decide(true)
	for _, c := range sched {
		schedule(c)
	}
	if cancelID >= 0 {
		handles[cancelID].Cancel()
		delete(handles, cancelID)
		s.dropID(cancelID)
	}
	if err := e.Run(); err != nil {
		panic(err)
	}
	return log
}

// runRef executes the same script on the retained binary-heap reference.
func runRef(src decSrc, budget int) []fireRec {
	s := &script{src: src, budget: budget}
	var (
		now Time
		seq int64
		h   refHeap
	)
	events := map[int]*refEvent{}
	var log []fireRec
	schedule := func(c choice) {
		seq++
		ev := &refEvent{t: now + c.delta, seq: seq, id: c.id}
		events[c.id] = ev
		heap.Push(&h, ev)
	}
	doCancel := func(id int) {
		events[id].dead = true
		delete(events, id)
		s.dropID(id)
	}
	sched, cancelID := s.decide(true)
	for _, c := range sched {
		schedule(c)
	}
	if cancelID >= 0 {
		doCancel(cancelID)
	}
	for h.Len() > 0 {
		ev := heap.Pop(&h).(*refEvent)
		if ev.dead {
			continue
		}
		now = ev.t
		log = append(log, fireRec{now, ev.id})
		s.dropID(ev.id)
		delete(events, ev.id)
		sched, cancelID := s.decide(false)
		for _, c := range sched {
			schedule(c)
		}
		if cancelID >= 0 {
			doCancel(cancelID)
		}
	}
	return log
}

func diffLogs(t *testing.T, real, ref []fireRec) {
	t.Helper()
	if len(real) != len(ref) {
		t.Fatalf("fire count: calendar queue %d, heap reference %d", len(real), len(ref))
	}
	for i := range real {
		if real[i] != ref[i] {
			t.Fatalf("fire %d: calendar queue (t=%.12g id=%d), heap reference (t=%.12g id=%d)",
				i, real[i].t, real[i].id, ref[i].t, ref[i].id)
		}
	}
}

// TestQueueMatchesHeapReference is the differential property test: many
// seeds, a few thousand events each, identical fire order required.
func TestQueueMatchesHeapReference(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		real := runReal(rngSrc{rand.New(rand.NewSource(seed))}, 3000)
		ref := runRef(rngSrc{rand.New(rand.NewSource(seed))}, 3000)
		if len(real) == 0 {
			t.Fatalf("seed %d: empty run", seed)
		}
		diffLogs(t, real, ref)
	}
}

// FuzzEventQueue lets the fuzzer steer the schedule/cancel decisions.
func FuzzEventQueue(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 250, 128, 40, 7})
	f.Add([]byte("calendar-queue-vs-binary-heap"))
	f.Fuzz(func(t *testing.T, data []byte) {
		real := runReal(&byteSrc{data: data}, 600)
		ref := runRef(&byteSrc{data: data}, 600)
		diffLogs(t, real, ref)
	})
}
