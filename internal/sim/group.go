// Conservative time-windowed execution of several engines as one
// simulation (Chandy–Misra-style null-message-free windowing).
//
// A Group partitions one logical simulation across engines whose only
// coupling is message passing with a known minimum latency L (the
// lookahead). Each round the Group computes T = the minimum next-event
// time across all engines and runs every engine with work before the
// horizon H = T + L, concurrently, via Engine.RunUntil(H). Any event an
// engine schedules for a peer during the window is not delivered
// directly (that would race); it is staged as an Export and injected
// into the destination engine between windows. Because every
// cross-engine effect carries at least L of latency, an export produced
// at time t < H is deliverable no earlier than t + L >= T + L... but t
// can be as late as H, so the guarantee callers must uphold — checked
// here — is deliverAt >= H: nothing injected can land inside the window
// that produced it, so no engine ever sees an event in its past.
//
// Determinism: staged exports are injected in (At, source partition,
// staging order) order, and injection uses ScheduleAt on the destination
// engine, which assigns a fresh seq there. Runs are bit-identical across
// repeats and across GOMAXPROCS because the injection order is a pure
// function of simulated time, not goroutine interleaving.
package sim

import (
	"fmt"
	"sort"
	"sync"
)

// Export is a cross-engine message staged during a window: at simulated
// time At, Data must be delivered to partition Dest (an index into the
// Group's engine slice). The Group hands (At, Data) to the destination
// partition's importer between windows.
type Export struct {
	Dest int
	At   Time
	Data any
}

// Group runs a set of engines in conservative time windows. Construct
// with NewGroup; Run replaces the individual engines' Run.
type Group struct {
	engines   []*Engine
	lookahead Time
	// importers[i] delivers one import into engine i: it must schedule
	// the payload at the given absolute time (typically via ScheduleAt)
	// and runs between windows, on the coordinating goroutine.
	importers []func(at Time, data any)
	staged    [][]Export // per-source-partition staging areas
	inject    []groupInjection

	windows   int64 // windows executed
	maxStaged int   // high-water exports staged in any one window
}

// groupInjection is one staged export tagged for the deterministic
// between-window sort: src/idx break At ties by source partition and
// staging order.
type groupInjection struct {
	Export
	src, idx int
}

// NewGroup creates a windowed coordinator over engines (one per
// partition). lookahead is the minimum simulated latency of any
// cross-partition interaction; it must be positive — with zero lookahead
// conservative windowing cannot make progress.
func NewGroup(engines []*Engine, lookahead Time) (*Group, error) {
	if lookahead <= 0 {
		return nil, fmt.Errorf("sim: group lookahead must be positive, got %g (a zero-latency cross-partition link admits no conservative window)", lookahead)
	}
	g := &Group{
		engines:   engines,
		lookahead: lookahead,
		importers: make([]func(Time, any), len(engines)),
		staged:    make([][]Export, len(engines)),
	}
	return g, nil
}

// SetImporter installs the import callback for partition i. It runs
// between windows on the coordinating goroutine and must schedule data
// on engine i at the given absolute time.
func (g *Group) SetImporter(i int, fn func(at Time, data any)) { g.importers[i] = fn }

// Stage records a cross-engine export produced by partition src during
// the current window. It must be called from src's engine (i.e. from
// inside event callbacks of that engine) — each partition has its own
// staging area, so concurrent windows do not contend.
func (g *Group) Stage(src int, e Export) {
	g.staged[src] = append(g.staged[src], e)
}

// Windows returns the number of windows executed by Run.
func (g *Group) Windows() int64 { return g.windows }

// MaxStaged returns the high-water count of exports staged in any single
// window (the peak export-queue depth).
func (g *Group) MaxStaged() int { return g.maxStaged }

// Run executes the group to completion: windows advance until every
// engine's queue drains. It returns the first error (watchdog,
// interrupt, or an engine-local deadlock/abort), attributed to the
// lowest-indexed failing engine; if all queues drain while processes
// remain parked anywhere in the group, it returns one aggregated
// *DeadlockError. All parked processes in every engine are killed before
// Run returns.
func (g *Group) Run() error {
	for i, e := range g.engines {
		if e.running {
			panic("sim: Group.Run with an engine already running")
		}
		if g.importers[i] == nil {
			panic(fmt.Sprintf("sim: Group.Run with no importer for partition %d", i))
		}
	}
	errs := make([]error, len(g.engines))
	for {
		// T = earliest pending event anywhere; done when all queues drain.
		haveT := false
		var t Time
		for _, e := range g.engines {
			if nt, ok := e.NextEventTime(); ok && (!haveT || nt < t) {
				t, haveT = nt, true
			}
		}
		if !haveT {
			break
		}
		h := t + g.lookahead

		// Run every engine with work before the horizon. The common
		// inter-node phase wakes only the fabric engine; run that lone
		// engine inline rather than paying a goroutine round trip.
		var runnable []*Engine
		var runnableIdx []int
		for i, e := range g.engines {
			if nt, ok := e.NextEventTime(); ok && nt < h {
				runnable = append(runnable, e)
				runnableIdx = append(runnableIdx, i)
			}
		}
		if len(runnable) == 1 {
			errs[runnableIdx[0]] = runnable[0].RunUntil(h)
		} else {
			var wg sync.WaitGroup
			for k, e := range runnable {
				wg.Add(1)
				go func(idx int, e *Engine) {
					defer wg.Done()
					errs[idx] = e.RunUntil(h)
				}(runnableIdx[k], e)
			}
			wg.Wait()
		}
		g.windows++
		for _, err := range errs {
			if err != nil {
				g.killAll()
				return firstErr(errs)
			}
		}

		// Deliver staged exports deterministically: order by (At, source
		// partition, staging order), then inject via the destination's
		// importer, which assigns fresh seq numbers there.
		g.inject = g.inject[:0]
		for src := range g.staged {
			for idx, ex := range g.staged[src] {
				g.inject = append(g.inject, groupInjection{Export: ex, src: src, idx: idx})
			}
			g.staged[src] = g.staged[src][:0]
		}
		if n := len(g.inject); n > 0 {
			if n > g.maxStaged {
				g.maxStaged = n
			}
			sort.SliceStable(g.inject, func(a, b int) bool {
				x, y := &g.inject[a], &g.inject[b]
				if x.At != y.At {
					return x.At < y.At
				}
				if x.src != y.src {
					return x.src < y.src
				}
				return x.idx < y.idx
			})
			for i := range g.inject {
				in := &g.inject[i]
				if in.At < h {
					g.killAll()
					return fmt.Errorf("sim: lookahead violation: partition %d exported an event for t=%.9fs inside the window ending at %.9fs", in.src, in.At, h)
				}
				g.importers[in.Dest](in.At, in.Data)
				in.Data = nil
			}
		}
	}

	// All queues drained. Live processes anywhere mean a cross-engine
	// deadlock: aggregate every parked process into one error.
	liveTotal := 0
	var at Time
	for _, e := range g.engines {
		liveTotal += e.Live()
		if e.Now() > at {
			at = e.Now()
		}
	}
	var err error
	if liveTotal > 0 {
		d := &DeadlockError{At: at}
		for _, e := range g.engines {
			d.Parked = e.ParkedReasons(d.Parked)
		}
		sort.Strings(d.Parked)
		err = d
	}
	g.killAll()
	return err
}

func (g *Group) killAll() {
	for _, e := range g.engines {
		e.KillParked()
	}
}

func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
