package sim

import "reflect"

// Arena is a per-engine slab allocator for per-run state. Everything the
// higher layers (mpi worlds, transports, collective components, buffers)
// build for one simulation run is carved from typed pools owned by the
// engine, and Engine.Reset rewinds every pool to empty while keeping its
// backing memory. A warmed shard therefore rebuilds a cell's whole
// per-rank state — rank tables, mailboxes, component tables, buffer
// headers — without touching the heap: the second cell on a shard gets
// the first cell's memory back, chunk-contiguous and index-addressed, so
// construction is allocation-free up to the shard's high-water mark and
// sequential-by-rank access walks dense arrays instead of chasing
// scattered pointers.
//
// Two pool shapes cover the consumers:
//
//   - Slab[T] hands out *T object slots carved from fixed-size chunks.
//     Rewound slots are handed out again with their previous contents
//     intact ("stale"), so a consumer that reinitializes every scalar
//     field can keep the expensive parts — maps keep their buckets via
//     clear(), slices keep their capacity via [:0], sub-pools keep their
//     free lists.
//
//   - Slices[T] is a bump allocator for dense arrays ([]Rank, []int
//     tables, []float64 scratch). Make returns a zeroed slice; Stale
//     returns the region as-is for consumers that overwrite (or
//     reinitialize) every element and want to recycle element-owned
//     state across runs.
//
// Ownership contract: an arena allocation is valid until the owning
// engine's next Reset, and its contents may be recycled afterwards.
// Persistent structures that survive Reset (the memory system's caches,
// interned routes, stats sinks) must therefore never retain arena
// pointers past the reset boundary — in the sharded sweep runner the
// engine is Reset at lease time, before the leased Net is, so the only
// window in which a Net still references dead arena objects is one in
// which nothing runs.
//
// An Arena belongs to one engine and, like the engine, is confined to a
// single goroutine at a time; it needs and takes no locks.
type Arena struct {
	pools map[reflect.Type]any // *Slab[T] or *Slices[T], keyed by T
	order []arenaPool          // rewind/stats order (registration order)
}

// arenaPool is the untyped surface of one typed pool.
type arenaPool interface {
	rewind()
	footprint() (bytes int64, objects int64)
}

// ArenaStats summarizes an arena's retained footprint: the bytes of
// backing memory its pools keep across resets, the number of typed pools
// registered, and the high-water object/element count handed out by any
// single run. The bench shard layer aggregates these across the shard
// pool so a daemon's resident cost per shard is observable.
type ArenaStats struct {
	Bytes   int64
	Pools   int
	Objects int64
}

func newArena() *Arena {
	return &Arena{pools: make(map[reflect.Type]any)}
}

// rewind returns every pool to empty, keeping backing memory.
func (a *Arena) rewind() {
	for _, p := range a.order {
		p.rewind()
	}
}

// Stats reports the arena's retained footprint.
func (a *Arena) Stats() ArenaStats {
	st := ArenaStats{Pools: len(a.order)}
	for _, p := range a.order {
		b, o := p.footprint()
		st.Bytes += b
		st.Objects += o
	}
	return st
}

// Arena returns the engine's arena, creating it on first use. Its pools
// are rewound by Engine.Reset.
func (e *Engine) Arena() *Arena {
	if e.arena == nil {
		e.arena = newArena()
	}
	return e.arena
}

// slabChunk is the number of T slots carved per backing chunk: large
// enough that sequential-by-index access is effectively contiguous,
// small enough that a low-water type wastes little.
const slabChunk = 256

// Slab is a typed object pool. Get hands out slots in deterministic
// order; rewinding (Engine.Reset) hands the same slots out again in the
// same order with their previous contents intact. Callers must therefore
// reinitialize every field they read — and get to keep field-owned state
// (map buckets, slice capacity, free lists) warm across runs.
type Slab[T any] struct {
	chunks [][]T
	used   int
	high   int
}

// SlabFor returns the arena's slab for type T, creating it on first use.
func SlabFor[T any](a *Arena) *Slab[T] {
	t := reflect.TypeFor[T]()
	if p, ok := a.pools[t]; ok {
		return p.(*Slab[T])
	}
	s := &Slab[T]{}
	a.pools[t] = s
	a.order = append(a.order, s)
	return s
}

// Get returns the next slot. Its contents are whatever the slot held
// when the arena was last rewound ("stale"): zero on first use, the
// previous run's object afterwards.
func (s *Slab[T]) Get() *T {
	ci, cj := s.used/slabChunk, s.used%slabChunk
	if ci == len(s.chunks) {
		s.chunks = append(s.chunks, make([]T, slabChunk))
	}
	s.used++
	if s.used > s.high {
		s.high = s.used
	}
	return &s.chunks[ci][cj]
}

func (s *Slab[T]) rewind() { s.used = 0 }

func (s *Slab[T]) footprint() (int64, int64) {
	var t T
	size := int64(reflect.TypeOf(&t).Elem().Size())
	return int64(len(s.chunks)) * slabChunk * size, int64(s.high)
}

// Slices is a typed bump allocator for dense arrays. One backing array
// serves every Make/Stale call of a run; rewinding resets the offset so
// the next run reuses the same memory. A run that outgrows the backing
// array gets a larger one (earlier slices of the run stay valid on the
// old array); the high-water capacity is kept from then on.
type Slices[T any] struct {
	buf  []T
	off  int
	high int
}

// SlicesFor returns the arena's bump allocator for []T, creating it on
// first use. It shares the type registry with SlabFor: use distinct
// element types (or one shape per type) per consumer.
func SlicesFor[T any](a *Arena) *Slices[T] {
	t := reflect.TypeFor[[]T]()
	if p, ok := a.pools[t]; ok {
		return p.(*Slices[T])
	}
	s := &Slices[T]{}
	a.pools[t] = s
	a.order = append(a.order, s)
	return s
}

// Make returns a zeroed length-n slice with exact capacity.
func (s *Slices[T]) Make(n int) []T {
	v := s.Stale(n)
	clear(v)
	return v
}

// Stale returns a length-n slice with exact capacity and unspecified
// (previous-run) contents. Use it when every element is overwritten or
// reinitialized anyway, to recycle element-owned state (a dense []Rank
// keeps each rank's map buckets warm this way).
func (s *Slices[T]) Stale(n int) []T {
	if s.off+n > len(s.buf) {
		c := 2 * len(s.buf)
		if c < s.off+n {
			c = s.off + n
		}
		s.buf = make([]T, c)
		s.off = 0
	}
	v := s.buf[s.off : s.off+n : s.off+n]
	s.off += n
	if s.off > s.high {
		s.high = s.off
	}
	return v
}

func (s *Slices[T]) rewind() { s.off = 0 }

func (s *Slices[T]) footprint() (int64, int64) {
	var t T
	size := int64(reflect.TypeOf(&t).Elem().Size())
	return int64(len(s.buf)) * size, int64(s.high)
}
