package sim

import "testing"

type arenaObj struct {
	id int
	m  map[string]int
}

func TestSlabStaleReuseAcrossRewind(t *testing.T) {
	e := NewEngine()
	a := e.Arena()
	s := SlabFor[arenaObj](a)

	first := make([]*arenaObj, 10)
	for i := range first {
		o := s.Get()
		if o.id != 0 || o.m != nil {
			t.Fatalf("slot %d not zero on first use: %+v", i, *o)
		}
		o.id = i + 1
		o.m = map[string]int{"k": i}
		first[i] = o
	}

	e.Reset()

	for i := range first {
		o := s.Get()
		if o != first[i] {
			t.Fatalf("slot %d: rewound slab handed out different pointer", i)
		}
		if o.id != i+1 || o.m["k"] != i {
			t.Fatalf("slot %d: stale contents lost: %+v", i, *o)
		}
	}
}

func TestSlabSameTypeSharedDifferentTypeDistinct(t *testing.T) {
	a := NewEngine().Arena()
	if SlabFor[arenaObj](a) != SlabFor[arenaObj](a) {
		t.Fatal("SlabFor returned distinct pools for the same type")
	}
	st := a.Stats()
	if st.Pools != 1 {
		t.Fatalf("Pools = %d, want 1", st.Pools)
	}
	SlabFor[int64](a)
	if got := a.Stats().Pools; got != 2 {
		t.Fatalf("Pools after second type = %d, want 2", got)
	}
}

func TestSlabChunkGrowth(t *testing.T) {
	e := NewEngine()
	s := SlabFor[int](e.Arena())

	n := 3*slabChunk + 7
	ptrs := make([]*int, n)
	for i := range ptrs {
		ptrs[i] = s.Get()
		*ptrs[i] = i
	}
	// Crossing a chunk boundary must not move earlier slots.
	for i, p := range ptrs {
		if *p != i {
			t.Fatalf("slot %d clobbered after growth: got %d", i, *p)
		}
	}

	e.Reset()
	for i := 0; i < n; i++ {
		if p := s.Get(); p != ptrs[i] {
			t.Fatalf("slot %d: different pointer after rewind past chunk boundary", i)
		}
	}
}

func TestSlicesMakeZeroedStaleRecycled(t *testing.T) {
	e := NewEngine()
	sl := SlicesFor[int](e.Arena())

	v := sl.Make(8)
	for i := range v {
		v[i] = i + 100
	}

	e.Reset()

	// Stale hands the same region back with the previous run's contents.
	w := sl.Stale(8)
	if &w[0] != &v[0] {
		t.Fatal("Stale after rewind did not reuse the backing region")
	}
	for i := range w {
		if w[i] != i+100 {
			t.Fatalf("Stale[%d] = %d, want %d", i, w[i], i+100)
		}
	}

	e.Reset()

	// Make hands the same region back zeroed.
	z := sl.Make(8)
	if &z[0] != &v[0] {
		t.Fatal("Make after rewind did not reuse the backing region")
	}
	for i, x := range z {
		if x != 0 {
			t.Fatalf("Make[%d] = %d, want 0", i, x)
		}
	}
}

func TestSlicesExactCapNoNeighborClobber(t *testing.T) {
	sl := SlicesFor[int](NewEngine().Arena())
	a := sl.Make(4)
	b := sl.Make(4)
	if cap(a) != 4 || cap(b) != 4 {
		t.Fatalf("caps = %d, %d, want 4, 4", cap(a), cap(b))
	}
	// Appending past a's cap must reallocate, not overwrite b.
	b[0] = 42
	a = append(a, 99)
	if b[0] != 42 {
		t.Fatalf("append past cap clobbered the next allocation: b[0] = %d", b[0])
	}
	_ = a
}

func TestSlicesGrowthKeepsEarlierSlicesValid(t *testing.T) {
	sl := SlicesFor[int](NewEngine().Arena())
	a := sl.Make(4)
	a[0] = 7
	// Outgrow the backing array mid-run: a stays valid on the old array.
	b := sl.Make(1 << 16)
	if a[0] != 7 {
		t.Fatalf("earlier slice invalidated by growth: a[0] = %d", a[0])
	}
	if len(b) != 1<<16 {
		t.Fatalf("len(b) = %d", len(b))
	}
}

func TestArenaStatsHighWater(t *testing.T) {
	e := NewEngine()
	a := e.Arena()
	s := SlabFor[int64](a)
	sl := SlicesFor[float64](a)

	for i := 0; i < 10; i++ {
		s.Get()
	}
	sl.Make(100)

	st := a.Stats()
	if st.Pools != 2 {
		t.Fatalf("Pools = %d, want 2", st.Pools)
	}
	if st.Objects != 110 {
		t.Fatalf("Objects = %d, want 110", st.Objects)
	}
	// One int64 chunk plus the float64 backing array.
	wantBytes := int64(slabChunk*8 + 100*8)
	if st.Bytes != wantBytes {
		t.Fatalf("Bytes = %d, want %d", st.Bytes, wantBytes)
	}

	// A smaller second run keeps the high-water object count.
	e.Reset()
	s.Get()
	sl.Make(10)
	if got := a.Stats().Objects; got != 110 {
		t.Fatalf("Objects after smaller run = %d, want high-water 110", got)
	}
}

func TestArenaZeroAllocSteadyState(t *testing.T) {
	e := NewEngine()
	a := e.Arena()
	s := SlabFor[arenaObj](a)
	sl := SlicesFor[int](a)

	// Warm to high-water.
	for i := 0; i < 100; i++ {
		s.Get()
	}
	sl.Make(1000)
	e.Reset()

	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 100; i++ {
			s.Get()
		}
		sl.Stale(1000)
		e.Reset()
	})
	if allocs != 0 {
		t.Fatalf("warm arena run allocated %v times, want 0", allocs)
	}
}
