package sim

// Chan is a typed FIFO channel between simulated processes. A capacity of
// zero gives rendezvous semantics (Send blocks until a Recv arrives, and
// vice versa); a positive capacity buffers that many elements.
type Chan[T any] struct {
	eng   *Engine
	cap   int
	buf   []T
	sendQ []*chanWaiter[T]
	recvQ []*chanWaiter[T]
}

type chanWaiter[T any] struct {
	p *Proc
	v T
}

// NewChan creates a channel with the given buffer capacity (>= 0).
func NewChan[T any](e *Engine, capacity int) *Chan[T] {
	if capacity < 0 {
		panic("sim: negative channel capacity")
	}
	return &Chan[T]{eng: e, cap: capacity}
}

// Len returns the number of buffered elements.
func (c *Chan[T]) Len() int { return len(c.buf) }

// Send delivers v, blocking p in simulated time while the channel is full
// (or, for capacity zero, until a receiver arrives).
func (c *Chan[T]) Send(p *Proc, v T) {
	if len(c.recvQ) > 0 {
		w := c.recvQ[0]
		c.recvQ = c.recvQ[1:]
		w.v = v
		w.p.Wake()
		return
	}
	if len(c.buf) < c.cap {
		c.buf = append(c.buf, v)
		return
	}
	w := &chanWaiter[T]{p: p, v: v}
	c.sendQ = append(c.sendQ, w)
	p.Park("chan send")
}

// TrySend delivers v without blocking; it reports whether delivery happened.
func (c *Chan[T]) TrySend(v T) bool {
	if len(c.recvQ) > 0 {
		w := c.recvQ[0]
		c.recvQ = c.recvQ[1:]
		w.v = v
		w.p.Wake()
		return true
	}
	if len(c.buf) < c.cap {
		c.buf = append(c.buf, v)
		return true
	}
	return false
}

// Recv returns the next element, blocking p while the channel is empty.
func (c *Chan[T]) Recv(p *Proc) T {
	if len(c.buf) > 0 {
		v := c.buf[0]
		c.buf = c.buf[1:]
		if len(c.sendQ) > 0 {
			w := c.sendQ[0]
			c.sendQ = c.sendQ[1:]
			c.buf = append(c.buf, w.v)
			w.p.Wake()
		}
		return v
	}
	if len(c.sendQ) > 0 { // capacity 0 rendezvous
		w := c.sendQ[0]
		c.sendQ = c.sendQ[1:]
		w.p.Wake()
		return w.v
	}
	w := &chanWaiter[T]{p: p}
	c.recvQ = append(c.recvQ, w)
	p.Park("chan recv")
	return w.v
}

// TryRecv returns the next element without blocking; ok reports whether an
// element was available.
func (c *Chan[T]) TryRecv() (v T, ok bool) {
	if len(c.buf) > 0 {
		v = c.buf[0]
		c.buf = c.buf[1:]
		if len(c.sendQ) > 0 {
			w := c.sendQ[0]
			c.sendQ = c.sendQ[1:]
			c.buf = append(c.buf, w.v)
			w.p.Wake()
		}
		return v, true
	}
	if len(c.sendQ) > 0 {
		w := c.sendQ[0]
		c.sendQ = c.sendQ[1:]
		w.p.Wake()
		return w.v, true
	}
	return v, false
}

// Semaphore is a counting semaphore in simulated time.
type Semaphore struct {
	count int
	waitQ []*semWaiter
}

type semWaiter struct {
	p *Proc
	n int
}

// NewSemaphore creates a semaphore with the given initial count.
func NewSemaphore(initial int) *Semaphore {
	if initial < 0 {
		panic("sim: negative semaphore count")
	}
	return &Semaphore{count: initial}
}

// Acquire takes n units, blocking p until they are available.
func (s *Semaphore) Acquire(p *Proc, n int) {
	if n <= 0 {
		panic("sim: Acquire of non-positive count")
	}
	if len(s.waitQ) == 0 && s.count >= n {
		s.count -= n
		return
	}
	s.waitQ = append(s.waitQ, &semWaiter{p: p, n: n})
	p.Park("semaphore acquire")
}

// Release returns n units and wakes eligible waiters in FIFO order.
func (s *Semaphore) Release(n int) {
	if n <= 0 {
		panic("sim: Release of non-positive count")
	}
	s.count += n
	for len(s.waitQ) > 0 && s.count >= s.waitQ[0].n {
		w := s.waitQ[0]
		s.waitQ = s.waitQ[1:]
		s.count -= w.n
		w.p.Wake()
	}
}

// Count returns the currently available units.
func (s *Semaphore) Count() int { return s.count }

// Barrier synchronizes a fixed set of n participants: each call to Arrive
// blocks until all n have arrived, then all are released and the barrier
// resets for reuse.
type Barrier struct {
	n       int
	arrived []*Proc
}

// NewBarrier creates a barrier for n participants (n >= 1).
func NewBarrier(n int) *Barrier {
	if n < 1 {
		panic("sim: barrier size < 1")
	}
	return &Barrier{n: n}
}

// Arrive blocks p until all participants have arrived.
func (b *Barrier) Arrive(p *Proc) {
	if len(b.arrived)+1 == b.n {
		for _, q := range b.arrived {
			q.Wake()
		}
		b.arrived = b.arrived[:0]
		return
	}
	b.arrived = append(b.arrived, p)
	p.Park("barrier")
}

// WaitGroup counts outstanding work in simulated time.
type WaitGroup struct {
	count int
	waitQ []*Proc
}

// Add adjusts the outstanding count by delta.
func (wg *WaitGroup) Add(delta int) {
	wg.count += delta
	if wg.count < 0 {
		panic("sim: negative WaitGroup count")
	}
	if wg.count == 0 {
		for _, p := range wg.waitQ {
			p.Wake()
		}
		wg.waitQ = nil
	}
}

// Done decrements the outstanding count.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Wait blocks p until the count reaches zero.
func (wg *WaitGroup) Wait(p *Proc) {
	if wg.count == 0 {
		return
	}
	wg.waitQ = append(wg.waitQ, p)
	p.Park("waitgroup")
}
