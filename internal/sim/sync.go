package sim

// Chan is a typed FIFO channel between simulated processes. A capacity of
// zero gives rendezvous semantics (Send blocks until a Recv arrives, and
// vice versa); a positive capacity buffers that many elements.
//
// Buffer and waiter queues keep their capacity across drain/refill cycles,
// and waiter records are recycled on a per-channel free list, so
// steady-state send/recv traffic allocates nothing.
type Chan[T any] struct {
	eng   *Engine
	cap   int
	buf   fifo[T]
	sendQ fifo[*chanWaiter[T]]
	recvQ fifo[*chanWaiter[T]]
	wpool []*chanWaiter[T]
}

type chanWaiter[T any] struct {
	p *Proc
	v T
}

// NewChan creates a channel with the given buffer capacity (>= 0).
func NewChan[T any](e *Engine, capacity int) *Chan[T] {
	if capacity < 0 {
		panic("sim: negative channel capacity")
	}
	return &Chan[T]{eng: e, cap: capacity}
}

// ReinitChan readies a recycled channel (typically a stale Slab slot) for
// a new run: buffered elements and waiter queues are dropped — their
// processes are gone — while the waiter free list and every backing
// array keep their capacity. A reinitialized channel is observably
// identical to NewChan(e, capacity).
func ReinitChan[T any](c *Chan[T], e *Engine, capacity int) {
	if capacity < 0 {
		panic("sim: negative channel capacity")
	}
	c.eng, c.cap = e, capacity
	c.buf.reset()
	c.sendQ.reset()
	c.recvQ.reset()
}

// newWaiter takes a waiter from the pool or allocates one.
func (c *Chan[T]) newWaiter() *chanWaiter[T] {
	if k := len(c.wpool); k > 0 {
		w := c.wpool[k-1]
		c.wpool[k-1] = nil
		c.wpool = c.wpool[:k-1]
		return w
	}
	return &chanWaiter[T]{}
}

// freeWaiter recycles a waiter whose wait has completed. The parked side
// recycles after Park returns, when the peer no longer holds the record.
func (c *Chan[T]) freeWaiter(w *chanWaiter[T]) {
	var zero T
	w.p, w.v = nil, zero
	c.wpool = append(c.wpool, w)
}

// Len returns the number of buffered elements.
func (c *Chan[T]) Len() int { return c.buf.len() }

// Send delivers v, blocking p in simulated time while the channel is full
// (or, for capacity zero, until a receiver arrives).
func (c *Chan[T]) Send(p *Proc, v T) {
	if c.recvQ.len() > 0 {
		w := c.recvQ.pop()
		w.v = v
		w.p.Wake()
		return
	}
	if c.buf.len() < c.cap {
		c.buf.push(v)
		return
	}
	w := c.newWaiter()
	w.p, w.v = p, v
	c.sendQ.push(w)
	p.Park("chan send")
	c.freeWaiter(w)
}

// TrySend delivers v without blocking; it reports whether delivery happened.
func (c *Chan[T]) TrySend(v T) bool {
	if c.recvQ.len() > 0 {
		w := c.recvQ.pop()
		w.v = v
		w.p.Wake()
		return true
	}
	if c.buf.len() < c.cap {
		c.buf.push(v)
		return true
	}
	return false
}

// Recv returns the next element, blocking p while the channel is empty.
func (c *Chan[T]) Recv(p *Proc) T {
	if c.buf.len() > 0 {
		v := c.buf.pop()
		if c.sendQ.len() > 0 {
			w := c.sendQ.pop()
			c.buf.push(w.v)
			w.p.Wake()
		}
		return v
	}
	if c.sendQ.len() > 0 { // capacity 0 rendezvous
		w := c.sendQ.pop()
		w.p.Wake()
		return w.v
	}
	w := c.newWaiter()
	w.p = p
	c.recvQ.push(w)
	p.Park("chan recv")
	v := w.v
	c.freeWaiter(w)
	return v
}

// TryRecv returns the next element without blocking; ok reports whether an
// element was available.
func (c *Chan[T]) TryRecv() (v T, ok bool) {
	if c.buf.len() > 0 {
		v = c.buf.pop()
		if c.sendQ.len() > 0 {
			w := c.sendQ.pop()
			c.buf.push(w.v)
			w.p.Wake()
		}
		return v, true
	}
	if c.sendQ.len() > 0 {
		w := c.sendQ.pop()
		w.p.Wake()
		return w.v, true
	}
	return v, false
}

// Semaphore is a counting semaphore in simulated time.
type Semaphore struct {
	count int
	waitQ fifo[semWaiter]
}

type semWaiter struct {
	p *Proc
	n int
}

// NewSemaphore creates a semaphore with the given initial count.
func NewSemaphore(initial int) *Semaphore {
	if initial < 0 {
		panic("sim: negative semaphore count")
	}
	return &Semaphore{count: initial}
}

// ReinitSemaphore readies a recycled semaphore for a new run: the count
// is restored and stale waiters dropped, keeping the queue's capacity.
func ReinitSemaphore(s *Semaphore, initial int) {
	if initial < 0 {
		panic("sim: negative semaphore count")
	}
	s.count = initial
	s.waitQ.reset()
}

// Acquire takes n units, blocking p until they are available.
func (s *Semaphore) Acquire(p *Proc, n int) {
	if n <= 0 {
		panic("sim: Acquire of non-positive count")
	}
	if s.waitQ.len() == 0 && s.count >= n {
		s.count -= n
		return
	}
	s.waitQ.push(semWaiter{p: p, n: n})
	p.Park("semaphore acquire")
}

// Release returns n units and wakes eligible waiters in FIFO order.
func (s *Semaphore) Release(n int) {
	if n <= 0 {
		panic("sim: Release of non-positive count")
	}
	s.count += n
	for s.waitQ.len() > 0 && s.count >= s.waitQ.peek().n {
		w := s.waitQ.pop()
		s.count -= w.n
		w.p.Wake()
	}
}

// Count returns the currently available units.
func (s *Semaphore) Count() int { return s.count }

// Barrier synchronizes a fixed set of n participants: each call to Arrive
// blocks until all n have arrived, then all are released and the barrier
// resets for reuse.
type Barrier struct {
	n       int
	arrived []*Proc
}

// NewBarrier creates a barrier for n participants (n >= 1).
func NewBarrier(n int) *Barrier {
	if n < 1 {
		panic("sim: barrier size < 1")
	}
	return &Barrier{n: n}
}

// Arrive blocks p until all participants have arrived.
func (b *Barrier) Arrive(p *Proc) {
	if len(b.arrived)+1 == b.n {
		for i, q := range b.arrived {
			q.Wake()
			b.arrived[i] = nil
		}
		b.arrived = b.arrived[:0]
		return
	}
	b.arrived = append(b.arrived, p)
	p.Park("barrier")
}

// WaitGroup counts outstanding work in simulated time.
type WaitGroup struct {
	count int
	waitQ []*Proc
}

// Add adjusts the outstanding count by delta.
func (wg *WaitGroup) Add(delta int) {
	wg.count += delta
	if wg.count < 0 {
		panic("sim: negative WaitGroup count")
	}
	if wg.count == 0 {
		for i, p := range wg.waitQ {
			p.Wake()
			wg.waitQ[i] = nil
		}
		wg.waitQ = wg.waitQ[:0]
	}
}

// Done decrements the outstanding count.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Wait blocks p until the count reaches zero.
func (wg *WaitGroup) Wait(p *Proc) {
	if wg.count == 0 {
		return
	}
	wg.waitQ = append(wg.waitQ, p)
	p.Park("waitgroup")
}
