package sim

import (
	"reflect"
	"testing"
)

// TestDeadlockReportsAllParkSites checks that a deadlock report names every
// parked process with its park-site reason, sorted by name — the property
// the coroutine switcher must preserve from the goroutine engine, since
// fault-injection tests grep these strings.
func TestDeadlockReportsAllParkSites(t *testing.T) {
	e := NewEngine()
	e.Spawn("rank2", func(p *Proc) { p.Park("knem recv") })
	e.Spawn("rank0", func(p *Proc) { p.Park("barrier") })
	e.Spawn("rank1", func(p *Proc) {
		sem := NewSemaphore(0)
		sem.Acquire(p, 1)
	})
	err := e.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	want := []string{"rank0: barrier", "rank1: semaphore acquire", "rank2: knem recv"}
	if !reflect.DeepEqual(de.Parked, want) {
		t.Fatalf("parked = %v, want %v", de.Parked, want)
	}
}

// TestDeadlockSkipsFinishedProcs checks that processes whose bodies have
// returned do not show up as park sites.
func TestDeadlockSkipsFinishedProcs(t *testing.T) {
	e := NewEngine()
	e.Spawn("done", func(p *Proc) { p.Wait(1) })
	e.Spawn("stuck", func(p *Proc) {
		p.Wait(2)
		p.Park("forever")
	})
	err := e.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	want := []string{"stuck: forever"}
	if !reflect.DeepEqual(de.Parked, want) {
		t.Fatalf("parked = %v, want %v", de.Parked, want)
	}
}

// TestKillUnwindRunsDefers checks that killing parked processes at engine
// teardown unwinds their bodies normally: defers run, and the unwind stays
// confined to the process (Run still returns the deadlock, not a panic).
func TestKillUnwindRunsDefers(t *testing.T) {
	e := NewEngine()
	cleaned := []string{}
	for _, name := range []string{"a", "b"} {
		name := name
		e.Spawn(name, func(p *Proc) {
			defer func() { cleaned = append(cleaned, name) }()
			p.Park("stuck")
		})
	}
	err := e.Run()
	if _, ok := err.(*DeadlockError); !ok {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if !reflect.DeepEqual(cleaned, []string{"a", "b"}) {
		t.Fatalf("cleaned = %v, want both defers to have run", cleaned)
	}
}

// TestBodyPanicPropagates checks that a genuine panic in a process body is
// not swallowed by the kill-unwind recovery: it reaches Run's caller.
func TestBodyPanicPropagates(t *testing.T) {
	e := NewEngine()
	e.Spawn("bug", func(p *Proc) {
		p.Wait(1)
		panic("boom")
	})
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recover() = %v, want boom", r)
		}
	}()
	e.Run()
	t.Fatal("Run returned, want panic")
}

// TestWakeNonParkedPanics checks the misuse guard: waking a process that is
// not parked when the wake dispatches is a bug in the caller and must
// panic rather than corrupt the coroutine state.
func TestWakeNonParkedPanics(t *testing.T) {
	e := NewEngine()
	var target *Proc
	target = e.Spawn("target", func(p *Proc) { p.Park("once") })
	e.Spawn("waker", func(p *Proc) {
		p.Wait(1)
		target.Wake()
		target.Wake() // second wake dispatches after target has finished
	})
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("Run returned, want panic from double wake")
		}
	}()
	e.Run()
}

// TestParkWakeZeroAllocs pins the hot-path guarantee the coroutine
// switcher was built for: a park/wake round trip performs no heap
// allocations. Setup cost (engine, coroutines, pool warm-up) is identical
// in both runs, so the allocation counts must match exactly.
func TestParkWakeZeroAllocs(t *testing.T) {
	run := func(iters int) float64 {
		return testing.AllocsPerRun(3, func() {
			e := NewEngine()
			var w *Proc
			w = e.Spawn("waiter", func(p *Proc) {
				for i := 0; i < iters; i++ {
					p.Park("bench")
				}
			})
			e.Spawn("waker", func(p *Proc) {
				for i := 0; i < iters; i++ {
					w.Wake()
					p.Wait(1e-9)
				}
			})
			if err := e.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
	small, large := run(100), run(10100)
	if large != small {
		t.Fatalf("park/wake allocates: %v extra allocs over 10000 extra round trips", large-small)
	}
}

// TestWaitZeroAllocs pins the same property for the timer path (pooled
// events + prebuilt dispatch closures).
func TestWaitZeroAllocs(t *testing.T) {
	run := func(iters int) float64 {
		return testing.AllocsPerRun(3, func() {
			e := NewEngine()
			e.Spawn("sleeper", func(p *Proc) {
				for i := 0; i < iters; i++ {
					p.Wait(1e-9)
				}
			})
			if err := e.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
	small, large := run(100), run(10100)
	if large != small {
		t.Fatalf("wait allocates: %v extra allocs over 10000 extra waits", large-small)
	}
}
