package sim

import "testing"

// BenchmarkScheduleFire measures the engine's event lifecycle: schedule one
// callback and drain it, as every flow event and timer does.
func BenchmarkScheduleFire(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.Schedule(1e-9, tick)
		}
	}
	e.Schedule(1e-9, tick)
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkScheduleOwnedFire is the pooled variant used by the memsim and
// proc hot paths: the fired event returns to the free list before its
// callback runs, so a fire→schedule chain reuses one object forever.
func BenchmarkScheduleOwnedFire(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.ScheduleOwned(1e-9, tick)
		}
	}
	e.ScheduleOwned(1e-9, tick)
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkScheduleCancel measures the cancel path: schedule a far-future
// event and immediately cancel it, the memsim reschedule pattern.
func BenchmarkScheduleCancel(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(1e3, func() {}).Cancel()
	}
}

// BenchmarkParkWake measures one process handoff: a parked process woken by
// another, the primitive under every message and copy completion.
func BenchmarkParkWake(b *testing.B) {
	e := NewEngine()
	var waiter, waker *Proc
	b.ReportAllocs()
	b.ResetTimer()
	waiter = e.Spawn("waiter", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Park("bench")
		}
	})
	waker = e.Spawn("waker", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			waiter.Wake()
			p.Wait(1e-9)
		}
	})
	_ = waker
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkWait measures a bare timer sleep per op.
func BenchmarkWait(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	e.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Wait(1e-9)
		}
	})
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
