package sim

import (
	"errors"
	"strings"
	"testing"
)

// TestRunUntilPauseResume checks that RunUntil fires only events strictly
// before the limit and that a later RunUntil resumes seamlessly, with
// same-instant FIFO order preserved across the boundary re-push.
func TestRunUntilPauseResume(t *testing.T) {
	e := NewEngine()
	var log []string
	e.ScheduleAt(1, func() { log = append(log, "t1") })
	e.ScheduleAt(2, func() { log = append(log, "t2a") })
	e.ScheduleAt(2, func() { log = append(log, "t2b") })
	e.ScheduleAt(3, func() { log = append(log, "t3") })

	if err := e.RunUntil(2); err != nil {
		t.Fatalf("RunUntil(2): %v", err)
	}
	if got, want := strings.Join(log, ","), "t1"; got != want {
		t.Fatalf("after RunUntil(2): fired %q, want %q", got, want)
	}
	if e.Now() != 1 {
		t.Fatalf("Now() = %g, want 1", e.Now())
	}
	if nt, ok := e.NextEventTime(); !ok || nt != 2 {
		t.Fatalf("NextEventTime() = %g,%v, want 2,true", nt, ok)
	}
	if err := e.RunUntil(10); err != nil {
		t.Fatalf("RunUntil(10): %v", err)
	}
	if got, want := strings.Join(log, ","), "t1,t2a,t2b,t3"; got != want {
		t.Fatalf("final order %q, want %q", got, want)
	}
}

// pingPong wires two engines into a Group exchanging a token with
// latency L and returns the recorded (engine, time) trace.
func pingPong(t *testing.T, n int) ([]string, *Group) {
	t.Helper()
	const L = 0.5
	engines := []*Engine{NewEngine(), NewEngine()}
	g, err := NewGroup(engines, L)
	if err != nil {
		t.Fatalf("NewGroup: %v", err)
	}
	var log []string
	var send func(src int, hops int)
	send = func(src int, hops int) {
		if hops == 0 {
			return
		}
		e := engines[src]
		log = append(log, formatHop(src, e.Now()))
		g.Stage(src, Export{Dest: 1 - src, At: e.Now() + L, Data: hops - 1})
	}
	for i := range engines {
		i := i
		g.SetImporter(i, func(at Time, data any) {
			engines[i].ScheduleAt(at, func() { send(i, data.(int)) })
		})
	}
	engines[0].ScheduleAt(0, func() { send(0, n) })
	if err := g.Run(); err != nil {
		t.Fatalf("Group.Run: %v", err)
	}
	return log, g
}

func formatHop(src int, now Time) string {
	return string(rune('A'+src)) + "@" + trimFloat(now)
}

func trimFloat(f Time) string {
	s := []byte{}
	// one decimal place is enough for the 0.5-step trace
	whole := int(f)
	frac := int((f - Time(whole)) * 10)
	s = append(s, byte('0'+whole%10))
	s = append(s, '.')
	s = append(s, byte('0'+frac))
	return string(s)
}

// TestGroupPingPong drives a token between two engines through the
// staged-export path and checks the trace is exactly the serial
// alternation, bit-identical across runs.
func TestGroupPingPong(t *testing.T) {
	first, g1 := pingPong(t, 6)
	want := "A@0.0,B@0.5,A@1.0,B@1.5,A@2.0,B@2.5"
	if got := strings.Join(first, ","); got != want {
		t.Fatalf("trace %q, want %q", got, want)
	}
	if g1.Windows() == 0 || g1.MaxStaged() != 1 {
		t.Fatalf("windows=%d maxStaged=%d, want >0 and 1", g1.Windows(), g1.MaxStaged())
	}
	for i := 0; i < 3; i++ {
		again, _ := pingPong(t, 6)
		if strings.Join(again, ",") != want {
			t.Fatalf("run %d diverged: %q", i, strings.Join(again, ","))
		}
	}
}

// TestGroupZeroLookahead checks the one-line rejection of a zero-latency
// partition boundary.
func TestGroupZeroLookahead(t *testing.T) {
	if _, err := NewGroup([]*Engine{NewEngine()}, 0); err == nil {
		t.Fatal("NewGroup with zero lookahead: want error, got nil")
	} else if !strings.Contains(err.Error(), "lookahead") {
		t.Fatalf("error %q does not mention lookahead", err)
	}
}

// TestGroupLookaheadViolation checks that an export stamped inside its
// own window aborts the run instead of silently reordering events.
func TestGroupLookaheadViolation(t *testing.T) {
	engines := []*Engine{NewEngine(), NewEngine()}
	g, err := NewGroup(engines, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range engines {
		i := i
		g.SetImporter(i, func(at Time, data any) { engines[i].ScheduleAt(at, func() {}) })
	}
	engines[0].ScheduleAt(0, func() {
		// Claims delivery 0.5 into a window of lookahead 1.0.
		g.Stage(0, Export{Dest: 1, At: engines[0].Now() + 0.5, Data: nil})
	})
	err = g.Run()
	if err == nil || !strings.Contains(err.Error(), "lookahead violation") {
		t.Fatalf("Group.Run = %v, want lookahead violation", err)
	}
}

// TestGroupDeadlockAggregation checks that parked processes on several
// engines surface as one aggregated DeadlockError.
func TestGroupDeadlockAggregation(t *testing.T) {
	engines := []*Engine{NewEngine(), NewEngine()}
	g, err := NewGroup(engines, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range engines {
		i := i
		g.SetImporter(i, func(at Time, data any) { engines[i].ScheduleAt(at, func() {}) })
	}
	for i, e := range engines {
		e := e
		name := []string{"waiter-a", "waiter-b"}[i]
		ch := NewChan[int](e, 1)
		e.Spawn(name, func(p *Proc) {
			ch.Recv(p)
		})
	}
	err = g.Run()
	var d *DeadlockError
	if !errors.As(err, &d) {
		t.Fatalf("Group.Run = %v, want DeadlockError", err)
	}
	joined := strings.Join(d.Parked, "; ")
	if !strings.Contains(joined, "waiter-a") || !strings.Contains(joined, "waiter-b") {
		t.Fatalf("aggregated parked list %q missing a waiter", joined)
	}
}
