// Package sim provides a deterministic discrete-event simulation engine
// with cooperative, virtual-time processes.
//
// Exactly one simulated process runs at any instant: each process body is
// a coroutine (an iter.Pull pull-iterator) that the engine resumes and
// that yields back when it parks, so a handoff is a direct in-thread
// switch — no goroutine scheduler round trip — and a simulation is
// single-threaded in effect and bit-for-bit reproducible. Events
// scheduled for the same instant fire in scheduling order (FIFO).
//
// The engine detects deadlock: if the event queue drains while processes
// are still parked, Run returns a DeadlockError naming every parked process
// and the reason recorded at its park site.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
)

// Time is simulated time in seconds.
type Time = float64

// Event is a handle to a scheduled callback; it can be cancelled. The
// callback is either fn, or argFn applied to arg (ScheduleOwnedArg) — the
// latter lets hot paths schedule a persistent function with per-event state
// without allocating a closure.
type Event struct {
	eng     *Engine
	t       Time
	seq     int64
	fn      func()
	argFn   func(any)
	arg     any
	dead    bool
	pooled  bool
	heapIdx int
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op. The event is removed from the queue
// immediately, so heavy schedule/cancel churn (the memory simulator
// rescheduling its completion event on every flow change) does not grow
// the heap with dead entries.
func (ev *Event) Cancel() {
	if ev.dead {
		return
	}
	ev.dead = true
	ev.fn, ev.argFn, ev.arg = nil, nil, nil
	if ev.heapIdx >= 0 {
		heap.Remove(&ev.eng.events, ev.heapIdx)
		ev.heapIdx = -1
		if ev.pooled {
			ev.eng.recycle(ev)
		}
	}
}

// Time returns the instant the event is scheduled for.
func (ev *Event) Time() Time { return ev.t }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.heapIdx = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	ev.heapIdx = -1
	return ev
}

// Engine is a discrete-event simulator. The zero value is not usable;
// construct with NewEngine.
type Engine struct {
	now    Time
	events eventHeap
	seq    int64

	procs   []*Proc
	live    int // spawned processes that have not finished
	current *Proc
	running bool
	stopped bool

	free []*Event // pool for owned events (ScheduleOwned)

	fired     int64
	maxEvents int64
}

// NewEngine returns an empty simulation at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Schedule registers fn to run after delay d (>= 0) from the current time.
// It returns a cancellable handle. fn runs in engine context: it must not
// block in simulated time (use Spawn for that).
func (e *Engine) Schedule(d Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: Schedule with negative delay %g", d))
	}
	return e.at(e.now+d, fn, false)
}

// ScheduleOwned is Schedule for hot paths: the returned event comes from a
// free list and is recycled as soon as it fires or is cancelled. The caller
// must therefore drop the handle at those points — it may Cancel the event
// at most once, before it fires, and must not touch the handle afterwards.
// Callers that cannot guarantee this (e.g. that keep handles past firing)
// must use Schedule, whose events are never reused.
func (e *Engine) ScheduleOwned(d Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: ScheduleOwned with negative delay %g", d))
	}
	return e.at(e.now+d, fn, true)
}

// ScheduleOwnedArg is ScheduleOwned for callbacks that need per-event
// state: fn(arg) runs at the scheduled time. Passing a persistent fn and a
// pointer-typed arg keeps the call allocation-free where a capturing
// closure would not. The ownership rules of ScheduleOwned apply.
func (e *Engine) ScheduleOwnedArg(d Time, fn func(any), arg any) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: ScheduleOwnedArg with negative delay %g", d))
	}
	ev := e.at(e.now+d, nil, true)
	ev.argFn, ev.arg = fn, arg
	return ev
}

// ScheduleAt registers fn to run at absolute time t (>= Now()).
func (e *Engine) ScheduleAt(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: ScheduleAt %g before now %g", t, e.now))
	}
	return e.at(t, fn, false)
}

func (e *Engine) at(t Time, fn func(), pooled bool) *Event {
	var ev *Event
	if pooled && len(e.free) > 0 {
		ev = e.free[len(e.free)-1]
		e.free[len(e.free)-1] = nil
		e.free = e.free[:len(e.free)-1]
	} else {
		ev = &Event{}
	}
	e.seq++
	ev.eng, ev.t, ev.seq, ev.fn, ev.dead, ev.pooled = e, t, e.seq, fn, false, pooled
	heap.Push(&e.events, ev)
	return ev
}

// recycle returns a pooled event to the free list once no live handle may
// touch it (fired, or cancelled and removed from the heap).
func (e *Engine) recycle(ev *Event) {
	ev.fn, ev.argFn, ev.arg = nil, nil, nil
	e.free = append(e.free, ev)
}

// Stop aborts the simulation: Run returns after the current event completes.
// Parked processes are killed.
func (e *Engine) Stop() { e.stopped = true }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() int64 { return e.fired }

// SetMaxEvents installs a watchdog: Run returns a WatchdogError once n
// events have fired. Use in tests to turn livelocking algorithms (e.g. a
// protocol ping-ponging forever) into failures instead of hangs. Zero
// disables the watchdog (the default).
func (e *Engine) SetMaxEvents(n int64) { e.maxEvents = n }

// WatchdogError reports that the event budget set by SetMaxEvents ran out.
type WatchdogError struct {
	Fired int64
	At    Time
}

func (w *WatchdogError) Error() string {
	return fmt.Sprintf("sim: watchdog: %d events fired by t=%.9fs", w.Fired, w.At)
}

// DeadlockError reports that the event queue drained while processes were
// still parked.
type DeadlockError struct {
	// Parked lists "name: reason" for every parked process.
	Parked []string
	At     Time
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at t=%.9fs; parked: %s", d.At, strings.Join(d.Parked, "; "))
}

// Run executes events until the queue drains or Stop is called. It returns
// a *DeadlockError if processes remain parked when the queue drains, and
// nil otherwise. Run kills all parked processes before returning so their
// goroutines do not leak.
func (e *Engine) Run() error {
	if e.running {
		panic("sim: Run called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.events) > 0 && !e.stopped {
		ev := heap.Pop(&e.events).(*Event)
		if ev.dead {
			continue
		}
		if ev.t < e.now {
			panic("sim: time went backwards")
		}
		e.now = ev.t
		e.fired++
		fn, argFn, arg := ev.fn, ev.argFn, ev.arg
		ev.dead = true
		if ev.pooled {
			// Recycle before running fn so a reschedule chain (fire ->
			// schedule next) reuses this object with zero allocations.
			e.recycle(ev)
		} else {
			ev.fn = nil
		}
		if argFn != nil {
			argFn(arg)
		} else {
			fn()
		}
		if e.maxEvents > 0 && e.fired >= e.maxEvents {
			e.killParked()
			return &WatchdogError{Fired: e.fired, At: e.now}
		}
	}
	var err error
	if !e.stopped && e.live > 0 {
		d := &DeadlockError{At: e.now}
		for _, p := range e.procs {
			if p.state == procParked {
				d.Parked = append(d.Parked, p.name+": "+p.blockReason)
			}
		}
		sort.Strings(d.Parked)
		err = d
	}
	e.killParked()
	return err
}

func (e *Engine) killParked() {
	for _, p := range e.procs {
		if p.state == procParked {
			prev := e.current
			e.current = p
			// stop resumes the coroutine with yield reporting false; Park
			// turns that into a procKilled unwind, running the body's
			// deferred cleanup before stop returns.
			p.stop()
			e.current = prev
		}
	}
}

// dispatch transfers control to p and returns when p parks or finishes.
// The switch is a runtime coroutine switch (iter.Pull), not a scheduler
// round trip, so it stays on the calling OS thread.
func (e *Engine) dispatch(p *Proc) {
	prev := e.current
	e.current = p
	p.next()
	e.current = prev
}
